// Package datastaging is a library for scheduling data requests in an
// oversubscribed network with priorities and deadlines — a full
// reproduction of the data staging heuristics of Theys, Tan, Beck, Siegel,
// and Jurczyk (ICDCS 2000).
//
// The problem: machines hold data items, other machines request them with
// deadlines and priorities, and unidirectional virtual communication links
// (each with an availability window and a bandwidth) move copies around.
// Not every request can be satisfied; the goal is a communication schedule
// maximizing the weighted sum of priorities of satisfied requests.
//
// The package offers:
//
//   - Three Dijkstra-based scheduling heuristics (PartialPath,
//     FullPathOneDest, FullPathAllDests) × four cost criteria (C1–C4) —
//     the paper's eleven meaningful pairs — plus C5, the bounded-ratio
//     criterion the paper's future work asks for. See Schedule.
//   - The paper's bounds and baselines: UpperBound, PossibleSatisfy,
//     RandomDijkstra, SingleDijkstraRandom, and PriorityFirst — and an
//     exhaustive branch-and-bound optimum for tiny instances
//     (ExhaustiveSearch).
//   - A workload generator matching the paper's BADD-like evaluation
//     parameters (Generate, DefaultParams) and JSON scenario I/O.
//   - An experiment harness reproducing the paper's figures and the
//     extension sweeps (RunStudy, CongestionSweep, GammaSweep,
//     FailureSweep, SerialComparison) and an independent schedule
//     validator (ValidateSchedule).
//   - Dynamic staging (Simulate): ad-hoc request arrivals and link
//     failures with event-driven re-planning — the paper's stated future
//     work.
//
// Quick start:
//
//	sc, _ := datastaging.Generate(datastaging.DefaultParams(), 42)
//	cfg := datastaging.Config{
//		Heuristic: datastaging.FullPathOneDest,
//		Criterion: datastaging.C4,
//		EU:        datastaging.EUFromLog10(2),
//		Weights:   datastaging.Weights1x10x100,
//	}
//	res, _ := datastaging.Schedule(sc, cfg)
//	fmt.Println(datastaging.Measure(sc, res, cfg.Weights))
package datastaging

import (
	"io"
	"time"

	"datastaging/internal/bounds"
	"datastaging/internal/core"
	"datastaging/internal/dynamic"
	"datastaging/internal/eval"
	"datastaging/internal/exhaustive"
	"datastaging/internal/experiment"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/validator"
)

// Model types. Aliases expose the internal implementations as the public
// API; see the aliased types for field documentation.
type (
	// Scenario is one problem instance: network, items, requests, γ.
	Scenario = scenario.Scenario
	// Network is the communication system.
	Network = model.Network
	// Machine is one node: server, client, and/or staging intermediate.
	Machine = model.Machine
	// VirtualLink is one unidirectional link window.
	VirtualLink = model.VirtualLink
	// Item is a requested data item with sources and requests.
	Item = model.Item
	// Source is one initial location of an item.
	Source = model.Source
	// Request is a destination, deadline, and priority.
	Request = model.Request
	// Priority is a request's importance class.
	Priority = model.Priority
	// Weights maps priorities to objective weights W[p].
	Weights = model.Weights
	// MachineID, ItemID, LinkID, and RequestID identify entities.
	MachineID = model.MachineID
	ItemID    = model.ItemID
	LinkID    = model.LinkID
	RequestID = model.RequestID
	// Instant is a point on the simulated clock; Interval a half-open
	// span between instants.
	Instant  = simtime.Instant
	Interval = simtime.Interval
)

// Scheduling types.
type (
	// Config selects a heuristic/cost-criterion pair and its weightings.
	Config = core.Config
	// Heuristic selects among the paper's three strategies.
	Heuristic = core.Heuristic
	// Criterion selects among the four cost criteria.
	Criterion = core.Criterion
	// Pair names one heuristic/criterion combination.
	Pair = core.Pair
	// EUWeights holds the W_E/W_U weighting of priority vs urgency.
	EUWeights = core.EUWeights
	// Result is a computed schedule with statistics.
	Result = core.Result
	// Transfer is one committed communication step.
	Transfer = state.Transfer
	// Metrics summarizes a schedule's quality.
	Metrics = eval.Metrics
)

// Dynamic staging (the paper's future-work extension): event-driven
// re-planning with ad-hoc request releases and link failures.
type (
	// Event is one dynamic occurrence: an item release or a link failure.
	Event = dynamic.Event
	// EventKind discriminates dynamic events.
	EventKind = dynamic.EventKind
	// DynamicOutcome is a dynamic simulation's result.
	DynamicOutcome = dynamic.Outcome
)

// Dynamic event kinds.
const (
	ItemRelease = dynamic.ItemRelease
	LinkFail    = dynamic.LinkFail
)

// Simulate runs the event-driven dynamic staging loop: the configured
// heuristic plans at time zero, then re-plans at each event epoch with the
// committed past locked in.
func Simulate(sc *Scenario, cfg Config, events []Event) (*DynamicOutcome, error) {
	return dynamic.Simulate(sc, cfg, events)
}

// Workload generation and experiments.
type (
	// GenParams configures the random scenario generator.
	GenParams = gen.Params
	// StudyOptions configures a full simulation study.
	StudyOptions = experiment.Options
	// StudyResult is the aggregated study output.
	StudyResult = experiment.Result
	// SweepPoint is one E-U ratio sweep position.
	SweepPoint = experiment.SweepPoint
	// CongestionResult is the output of CongestionSweep.
	CongestionResult = experiment.CongestionResult
)

// Priority classes used by the paper's evaluation.
const (
	Low    = model.Low
	Medium = model.Medium
	High   = model.High
)

// The three heuristics (§4.5–4.7).
const (
	PartialPath      = core.PartialPath
	FullPathOneDest  = core.FullPathOneDest
	FullPathAllDests = core.FullPathAllDests
)

// The four cost criteria of §4.8, plus C5 — this library's bounded-ratio
// extension implementing the paper's future-work suggestion for a fixed C3.
const (
	C1 = core.C1
	C2 = core.C2
	C3 = core.C3
	C4 = core.C4
	C5 = core.C5
)

// PairsWithExtensions enumerates the paper's eleven pairs plus the C5
// extension under every heuristic.
func PairsWithExtensions() []Pair { return core.PairsWithExtensions() }

// The paper's two priority weighting schemes (§5.3).
var (
	Weights1x5x10   = model.Weights1x5x10
	Weights1x10x100 = model.Weights1x10x100
)

// The extreme E-U sweep points: priority-only ("inf") and urgency-only
// ("-inf").
var (
	EUPriorityOnly = core.EUPriorityOnly
	EUUrgencyOnly  = core.EUUrgencyOnly
)

// EUFromLog10 returns interior sweep weights W_E = 10^l, W_U = 1.
func EUFromLog10(l float64) EUWeights { return core.EUFromLog10(l) }

// Schedule runs one heuristic/cost-criterion pair on a scenario.
func Schedule(sc *Scenario, cfg Config) (*Result, error) { return core.Schedule(sc, cfg) }

// Pairs enumerates the eleven meaningful heuristic/criterion pairs.
func Pairs() []Pair { return core.Pairs() }

// Measure computes quality metrics of a schedule under the given weights.
func Measure(sc *Scenario, res *Result, w Weights) Metrics { return eval.Measure(sc, res, w) }

// ValidateSchedule independently replays a schedule against the scenario
// and reports the first violated feasibility constraint, if any.
func ValidateSchedule(sc *Scenario, transfers []Transfer) error {
	return validator.Validate(sc, transfers)
}

// UpperBound is the loose upper bound: the total weight of all requests.
func UpperBound(sc *Scenario, w Weights) float64 { return bounds.Upper(sc, w) }

// PossibleSatisfy is the tighter upper bound: the weight satisfiable if
// each request were alone in the system, plus the request count.
func PossibleSatisfy(sc *Scenario, w Weights) (float64, int) { return bounds.PossibleSatisfy(sc, w) }

// RandomDijkstra is the paper's tighter lower bound scheduler.
func RandomDijkstra(sc *Scenario, w Weights, seed int64) (*Result, error) {
	return bounds.RandomDijkstra(sc, w, seed)
}

// SingleDijkstraRandom is the paper's looser lower bound scheduler.
func SingleDijkstraRandom(sc *Scenario, w Weights, seed int64) (*Result, error) {
	return bounds.SingleDijkstraRandom(sc, w, seed)
}

// PriorityFirst is the §5.4 strict-priority-order baseline scheduler.
func PriorityFirst(sc *Scenario, w Weights) (*Result, error) {
	return bounds.PriorityFirst(sc, w)
}

// DefaultParams returns the paper's §5.3 generator parameterization.
func DefaultParams() GenParams { return gen.Default() }

// Generate builds a random scenario; deterministic per seed.
func Generate(p GenParams, seed int64) (*Scenario, error) { return gen.Generate(p, seed) }

// NewNetwork validates machines and links into a Network.
func NewNetwork(machines []Machine, links []VirtualLink) (*Network, error) {
	return model.NewNetwork(machines, links)
}

// DecodeScenario reads and validates a JSON scenario.
func DecodeScenario(r io.Reader) (*Scenario, error) { return scenario.Decode(r) }

// ScenarioStats summarizes an instance (counts, sizes, deadline span).
type ScenarioStats = scenario.Stats

// ExhaustiveResult is the outcome of ExhaustiveSearch.
type ExhaustiveResult = exhaustive.Result

// ExhaustiveMaxRequests is the largest request count ExhaustiveSearch
// accepts (the search is factorial in it).
const ExhaustiveMaxRequests = exhaustive.MaxRequests

// ExhaustiveSearch finds the best greedy-order schedule of a tiny instance
// by branch-and-bound over request service orders: ground truth for
// measuring a heuristic's optimality gap. Instances with more than
// ExhaustiveMaxRequests requests are rejected.
func ExhaustiveSearch(sc *Scenario, w Weights) (*ExhaustiveResult, error) {
	return exhaustive.Search(sc, w)
}

// RunStudy executes a full simulation study (figures 2–5 inputs).
func RunStudy(opts StudyOptions) (*StudyResult, error) { return experiment.Run(opts) }

// StandardSweep returns the paper's eleven E-U sweep points.
func StandardSweep() []SweepPoint { return experiment.StandardSweep() }

// CongestionSweep runs the paper's future-work congestion experiment.
func CongestionSweep(opts StudyOptions, loads []int, pair Pair, eu EUWeights) (*CongestionResult, error) {
	return experiment.CongestionSweep(opts, loads, pair, eu)
}

// GammaPoint, FailurePoint, SerialPoint, and ArrivalPoint are the rows of
// the ablation sweeps.
type (
	GammaPoint   = experiment.GammaPoint
	FailurePoint = experiment.FailurePoint
	SerialPoint  = experiment.SerialPoint
	ArrivalPoint = experiment.ArrivalPoint
)

// GammaSweep ablates the garbage-collection delay γ across retention
// levels.
func GammaSweep(opts StudyOptions, gammas []time.Duration, pair Pair, eu EUWeights) ([]GammaPoint, error) {
	return experiment.GammaSweep(opts, gammas, pair, eu)
}

// FailureSweep measures schedule resilience under random link failures
// with dynamic re-planning.
func FailureSweep(opts StudyOptions, failureCounts []int, pair Pair, eu EUWeights) ([]FailurePoint, error) {
	return experiment.FailureSweep(opts, failureCounts, pair, eu)
}

// SerialComparison quantifies the §3 parallel-send assumption: the same
// pair on the same cases with and without per-machine port serialization.
func SerialComparison(opts StudyOptions, pair Pair, eu EUWeights) (*SerialPoint, error) {
	return experiment.SerialComparison(opts, pair, eu)
}

// ArrivalSweep measures the cost of late knowledge: a fraction of items'
// requests arrive dynamically and the event-driven scheduler re-plans,
// compared against the clairvoyant offline schedule.
func ArrivalSweep(opts StudyOptions, fractions []float64, pair Pair, eu EUWeights) ([]ArrivalPoint, error) {
	return experiment.ArrivalSweep(opts, fractions, pair, eu)
}
