package datastaging_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRunEndToEnd executes every example binary and checks its
// headline output — the examples double as acceptance tests of the public
// API.
func TestExamplesRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run for every example")
	}
	tests := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"satisfied", "weighted value"}},
		{"badd", []string{"BADD scenario", "priority_first", "single_Dij_random"}},
		{"weathermap", []string{"satisfied 18", "europe-weather-2200"}},
		{"euratio", []string{"-inf", "inf", "%"}},
		{"dynamic", []string{"ABORTED", "3/3 requests satisfied"}},
		{"optimalitygap", []string{"exhaustive optimum", "full_all/C5"}},
	}
	for _, tc := range tests {
		t.Run(tc.dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run: %v\n%s", err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
