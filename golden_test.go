package datastaging_test

import (
	"testing"

	"datastaging"
)

// TestGoldenStudyNumbers pins exact aggregate values of a tiny seeded
// study. Everything in the pipeline is engineered to be deterministic —
// seeded generation, deterministic tie-breaking, ordered aggregation — so
// any drift here means scheduler behavior changed, intentionally or not.
// When a deliberate change shifts these numbers, regenerate them and say
// why in the commit.
func TestGoldenStudyNumbers(t *testing.T) {
	p := datastaging.DefaultParams()
	p.Machines.Min, p.Machines.Max = 5, 5
	p.RequestsPerMachine.Min, p.RequestsPerMachine.Max = 4, 4
	res, err := datastaging.RunStudy(datastaging.StudyOptions{
		Params: p, NumCases: 2, BaseSeed: 1, Weights: datastaging.Weights1x10x100,
		Sweep: []datastaging.SweepPoint{
			{Label: "-inf", EU: datastaging.EUUrgencyOnly},
			{Label: "0", EU: datastaging.EUFromLog10(0)},
			{Label: "inf", EU: datastaging.EUPriorityOnly},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string]float64{
		"upper_bound":          res.Upper.Mean,
		"possible_satisfy":     res.PossibleSatisfy.Mean,
		"random_Dijkstra":      res.RandomDijkstra.Mean,
		"single_Dij_random":    res.SingleDijkstraRandom.Mean,
		"priority_first_value": res.PriorityFirst.Mean,
	} {
		want := map[string]float64{
			"upper_bound":          537.5,
			"possible_satisfy":     255,
			"random_Dijkstra":      254.5,
			"single_Dij_random":    187.5,
			"priority_first_value": 249,
		}[name]
		if got != want {
			t.Errorf("%s: got %v, want %v", name, got, want)
		}
	}

	golden := map[datastaging.Pair][3]float64{
		{Heuristic: datastaging.PartialPath, Criterion: datastaging.C1}:      {254.5, 254.5, 249},
		{Heuristic: datastaging.PartialPath, Criterion: datastaging.C2}:      {254.5, 254.5, 249},
		{Heuristic: datastaging.PartialPath, Criterion: datastaging.C3}:      {254, 254, 254},
		{Heuristic: datastaging.PartialPath, Criterion: datastaging.C4}:      {254.5, 254.5, 249},
		{Heuristic: datastaging.FullPathOneDest, Criterion: datastaging.C1}:  {254.5, 254.5, 249},
		{Heuristic: datastaging.FullPathOneDest, Criterion: datastaging.C2}:  {254.5, 254.5, 249},
		{Heuristic: datastaging.FullPathOneDest, Criterion: datastaging.C3}:  {254, 254, 254},
		{Heuristic: datastaging.FullPathOneDest, Criterion: datastaging.C4}:  {254.5, 254.5, 249},
		{Heuristic: datastaging.FullPathAllDests, Criterion: datastaging.C2}: {254.5, 254.5, 249},
		{Heuristic: datastaging.FullPathAllDests, Criterion: datastaging.C3}: {254, 254, 254},
		{Heuristic: datastaging.FullPathAllDests, Criterion: datastaging.C4}: {254.5, 254.5, 249},
	}
	if len(res.Pairs) != len(golden) {
		t.Fatalf("pairs: got %d, want %d", len(res.Pairs), len(golden))
	}
	for _, ps := range res.Pairs {
		want, ok := golden[ps.Pair]
		if !ok {
			t.Errorf("unexpected pair %v", ps.Pair)
			continue
		}
		for i := 0; i < 3; i++ {
			if got := ps.Points[i].Value.Mean; got != want[i] {
				t.Errorf("%v point %d: got %v, want %v", ps.Pair, i, got, want[i])
			}
		}
	}
}
