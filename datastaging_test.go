package datastaging_test

import (
	"bytes"
	"testing"
	"time"

	"datastaging"
)

// buildTinyScenario constructs a scenario entirely through the public API:
// 0 → 1 → 2 chain with a reverse link, one item at 0 requested by 2.
func buildTinyScenario(t *testing.T) *datastaging.Scenario {
	t.Helper()
	machines := []datastaging.Machine{
		{ID: 0, CapacityBytes: 1 << 20},
		{ID: 1, CapacityBytes: 1 << 20},
		{ID: 2, CapacityBytes: 1 << 20},
	}
	day := datastaging.Interval{Start: 0, End: datastaging.Instant(24 * time.Hour)}
	links := []datastaging.VirtualLink{
		{ID: 0, From: 0, To: 1, Window: day, BandwidthBPS: 80_000},
		{ID: 1, From: 1, To: 2, Window: day, BandwidthBPS: 80_000},
		{ID: 2, From: 2, To: 0, Window: day, BandwidthBPS: 80_000},
	}
	net, err := datastaging.NewNetwork(machines, links)
	if err != nil {
		t.Fatal(err)
	}
	sc := &datastaging.Scenario{
		Name:    "public-api",
		Network: net,
		Items: []datastaging.Item{{
			ID:        0,
			SizeBytes: 10 << 10,
			Sources:   []datastaging.Source{{Machine: 0, Available: 0}},
			Requests: []datastaging.Request{{
				Machine:  2,
				Deadline: datastaging.Instant(30 * time.Minute),
				Priority: datastaging.High,
			}},
		}},
		GarbageCollect: 6 * time.Minute,
		Horizon:        datastaging.Instant(24 * time.Hour),
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestPublicAPIScheduleAndValidate(t *testing.T) {
	sc := buildTinyScenario(t)
	cfg := datastaging.Config{
		Heuristic: datastaging.FullPathOneDest,
		Criterion: datastaging.C4,
		EU:        datastaging.EUFromLog10(0),
		Weights:   datastaging.Weights1x10x100,
	}
	res, err := datastaging.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Satisfied) != 1 {
		t.Errorf("satisfied: got %d, want 1", len(res.Satisfied))
	}
	if err := datastaging.ValidateSchedule(sc, res.Transfers); err != nil {
		t.Errorf("ValidateSchedule: %v", err)
	}
	m := datastaging.Measure(sc, res, cfg.Weights)
	if m.WeightedValue != 100 {
		t.Errorf("WeightedValue: got %v", m.WeightedValue)
	}
	if up := datastaging.UpperBound(sc, cfg.Weights); up != 100 {
		t.Errorf("UpperBound: got %v", up)
	}
	if ps, n := datastaging.PossibleSatisfy(sc, cfg.Weights); ps != 100 || n != 1 {
		t.Errorf("PossibleSatisfy: got %v, %d", ps, n)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	sc := buildTinyScenario(t)
	w := datastaging.Weights1x10x100
	if res, err := datastaging.RandomDijkstra(sc, w, 1); err != nil || len(res.Satisfied) != 1 {
		t.Errorf("RandomDijkstra: %v, %+v", err, res)
	}
	if res, err := datastaging.SingleDijkstraRandom(sc, w, 1); err != nil || len(res.Satisfied) != 1 {
		t.Errorf("SingleDijkstraRandom: %v, %+v", err, res)
	}
	if res, err := datastaging.PriorityFirst(sc, w); err != nil || len(res.Satisfied) != 1 {
		t.Errorf("PriorityFirst: %v, %+v", err, res)
	}
}

func TestPublicAPIGenerateEncodeDecode(t *testing.T) {
	sc, err := datastaging.Generate(datastaging.DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := datastaging.DecodeScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRequests() != sc.NumRequests() {
		t.Errorf("round trip lost requests: %d vs %d", back.NumRequests(), sc.NumRequests())
	}
}

func TestPublicAPIStudy(t *testing.T) {
	p := datastaging.DefaultParams()
	p.Machines.Min, p.Machines.Max = 5, 5
	p.RequestsPerMachine.Min, p.RequestsPerMachine.Max = 4, 4
	res, err := datastaging.RunStudy(datastaging.StudyOptions{
		Params:   p,
		NumCases: 2,
		Weights:  datastaging.Weights1x5x10,
		Sweep:    datastaging.StandardSweep()[4:6],
		Pairs:    []datastaging.Pair{{Heuristic: datastaging.PartialPath, Criterion: datastaging.C3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || len(res.SweepLabels) != 2 {
		t.Errorf("study shape: %d pairs, %v labels", len(res.Pairs), res.SweepLabels)
	}
	if len(datastaging.Pairs()) != 11 {
		t.Errorf("Pairs: got %d", len(datastaging.Pairs()))
	}
}
