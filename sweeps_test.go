package datastaging_test

import (
	"testing"
	"time"

	"datastaging"
)

func tinyStudyOptions() datastaging.StudyOptions {
	p := datastaging.DefaultParams()
	p.Machines.Min, p.Machines.Max = 5, 5
	p.RequestsPerMachine.Min, p.RequestsPerMachine.Max = 4, 4
	return datastaging.StudyOptions{
		Params: p, NumCases: 2, BaseSeed: 1, Weights: datastaging.Weights1x10x100,
	}
}

func TestPublicAPISweeps(t *testing.T) {
	opts := tinyStudyOptions()
	pair := datastaging.Pair{Heuristic: datastaging.FullPathOneDest, Criterion: datastaging.C4}
	eu := datastaging.EUFromLog10(2)

	if pts, err := datastaging.GammaSweep(opts, []time.Duration{0, 6 * time.Minute}, pair, eu); err != nil || len(pts) != 2 {
		t.Errorf("GammaSweep: %v, %d points", err, len(pts))
	}
	if pts, err := datastaging.FailureSweep(opts, []int{0, 3}, pair, eu); err != nil || len(pts) != 2 {
		t.Errorf("FailureSweep: %v, %d points", err, len(pts))
	}
	if pt, err := datastaging.SerialComparison(opts, pair, eu); err != nil || pt.Serial.Mean > pt.Parallel.Mean {
		t.Errorf("SerialComparison: %v, %+v", err, pt)
	}
	if cr, err := datastaging.CongestionSweep(opts, []int{3, 6}, pair, eu); err != nil || len(cr.Points) != 2 {
		t.Errorf("CongestionSweep: %v", err)
	}
	if got := len(datastaging.PairsWithExtensions()); got != 14 {
		t.Errorf("PairsWithExtensions: got %d", got)
	}
}

func TestPublicAPIExhaustive(t *testing.T) {
	p := datastaging.DefaultParams()
	p.Machines.Min, p.Machines.Max = 4, 4
	p.RequestsPerMachine.Min, p.RequestsPerMachine.Max = 1, 1
	p.DestsPerItem.Min, p.DestsPerItem.Max = 1, 1
	sc, err := datastaging.Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumRequests() > datastaging.ExhaustiveMaxRequests {
		t.Skip("instance too large for the exhaustive cap")
	}
	opt, err := datastaging.ExhaustiveSearch(sc, datastaging.Weights1x10x100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := datastaging.Config{
		Heuristic: datastaging.FullPathOneDest, Criterion: datastaging.C4,
		EU: datastaging.EUFromLog10(2), Weights: datastaging.Weights1x10x100,
	}
	res, err := datastaging.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.WeightedValue(sc, cfg.Weights); v > opt.Value {
		t.Errorf("heuristic (%v) above exhaustive optimum (%v)", v, opt.Value)
	}
	// Stats are exposed through the facade too.
	st := sc.Stats()
	if st.Machines != 4 || st.Requests != sc.NumRequests() {
		t.Errorf("ScenarioStats: %+v", st)
	}
}
