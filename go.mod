module datastaging

go 1.22
