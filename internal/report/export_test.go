package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/testnet"
)

func TestDOT(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	out := DOT(sc)
	for _, want := range []string{
		"digraph network", "m0 [label=", "m0 -> m1", "m2 -> m1", "8 kbit/s", "1 win",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Edge count: one per physical link (Line has 4 unidirectional links).
	if got := strings.Count(out, "->"); got != 4 {
		t.Errorf("edges: got %d, want 4", got)
	}
}

func TestBytesAndBpsLabels(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{500, "500 B"}, {2 << 10, "2.0 KB"}, {3 << 20, "3.0 MB"}, {4 << 30, "4.0 GB"},
	} {
		if got := bytesLabel(tc.n); got != tc.want {
			t.Errorf("bytesLabel(%d): got %q, want %q", tc.n, got, tc.want)
		}
	}
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{500, "500 bit/s"}, {56_000, "56 kbit/s"}, {1_500_000, "1.5 Mbit/s"},
	} {
		if got := bpsLabel(tc.n); got != tc.want {
			t.Errorf("bpsLabel(%d): got %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestTransfersCSV(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	res, err := core.Schedule(sc, core.Config{
		Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := TransfersCSV(&buf, sc, res.Transfers); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 { // header + 2 hops
		t.Fatalf("lines: got %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "item,name,from,to,link") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "item0") || !strings.Contains(lines[1], "0.000") {
		t.Errorf("row: %q", lines[1])
	}
}
