package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/state"
)

// DOT renders the network topology as a Graphviz digraph: one node per
// machine (with its storage), one edge per physical link (with its
// bandwidth and how many availability windows it contributes). Feed it to
// `dot -Tsvg` to see a scenario's shape.
func DOT(sc *scenario.Scenario) string {
	var b strings.Builder
	b.WriteString("digraph network {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	for _, m := range sc.Network.Machines {
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("m%d", m.ID)
		}
		fmt.Fprintf(&b, "  m%d [label=\"%s\\n%s\"];\n", m.ID, name, bytesLabel(m.CapacityBytes))
	}
	type physKey struct {
		phys int
	}
	type physAgg struct {
		from, to model.MachineID
		bps      int64
		windows  int
	}
	agg := make(map[physKey]*physAgg)
	var order []physKey
	for _, l := range sc.Network.Links {
		k := physKey{l.Physical}
		a := agg[k]
		if a == nil {
			a = &physAgg{from: l.From, to: l.To, bps: l.BandwidthBPS}
			agg[k] = a
			order = append(order, k)
		}
		a.windows++
	}
	sort.Slice(order, func(i, j int) bool { return order[i].phys < order[j].phys })
	for _, k := range order {
		a := agg[k]
		fmt.Fprintf(&b, "  m%d -> m%d [label=\"%s, %d win\"];\n",
			a.from, a.to, bpsLabel(a.bps), a.windows)
	}
	b.WriteString("}\n")
	return b.String()
}

func bytesLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func bpsLabel(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1f Mbit/s", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.0f kbit/s", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d bit/s", n)
	}
}

// TransfersCSV writes a committed schedule as CSV for external analysis:
// one row per transfer with item, endpoints, link, and timing in seconds.
func TransfersCSV(w io.Writer, sc *scenario.Scenario, transfers []state.Transfer) error {
	if _, err := fmt.Fprintln(w, "item,name,from,to,link,startSec,durationSec,arrivalSec"); err != nil {
		return err
	}
	for _, tr := range transfers {
		_, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%.3f,%.3f,%.3f\n",
			tr.Item, escapeCSV(sc.Item(tr.Item).Name), tr.From, tr.To, tr.Link,
			tr.Start.Seconds(), tr.Duration.Seconds(), tr.Arrival.Seconds())
		if err != nil {
			return err
		}
	}
	return nil
}
