// Package report renders study results for terminals and files: ASCII line
// charts that mirror the paper's figures, aligned text tables, and CSV for
// external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Series is one named line of a chart: a value per x position.
type Series struct {
	Name   string
	Values []float64
}

// markers label series in a chart, in order.
const markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

// Chart renders the series as an ASCII line chart over categorical x
// labels. Each series is drawn with a letter marker; colliding points
// render as '+'. The y axis starts at zero (the paper's figures do) and is
// labeled on the left.
func Chart(title string, xLabels []string, series []Series, height int) string {
	if height < 2 {
		height = 2
	}
	if len(xLabels) == 0 || len(series) == 0 {
		return title + "\n(no data)\n"
	}
	maxV := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	const colWidth = 6 // characters per x position
	width := colWidth * len(xLabels)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		r := height - 1 - int(math.Round(v/maxV*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for xi, v := range s.Values {
			if xi >= len(xLabels) || math.IsNaN(v) {
				continue
			}
			col := xi*colWidth + colWidth/2
			r := row(v)
			if grid[r][col] != ' ' && grid[r][col] != mark {
				grid[r][col] = '+'
			} else {
				grid[r][col] = mark
			}
		}
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	for r := range grid {
		yVal := maxV * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%10.0f |%s\n", yVal, grid[r])
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(strings.Repeat(" ", 11) + " ")
	for _, xl := range xLabels {
		fmt.Fprintf(&b, "%*s", colWidth, center(xl, colWidth))
	}
	b.WriteString("\n")
	for si, s := range series {
		fmt.Fprintf(&b, "%12c = %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-len(s)-left)
}

// CSV writes the series as comma-separated values: a header row of x labels
// preceded by "series", then one row per series.
func CSV(w io.Writer, xLabels []string, series []Series) error {
	if _, err := fmt.Fprintf(w, "series,%s\n", strings.Join(xLabels, ",")); err != nil {
		return err
	}
	for _, s := range series {
		cells := make([]string, 0, len(s.Values)+1)
		cells = append(cells, escapeCSV(s.Name))
		for _, v := range s.Values {
			cells = append(cells, formatFloat(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func escapeCSV(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(headers, "\t")); err != nil {
		return err
	}
	rule := make([]string, len(headers))
	for i, h := range headers {
		rule[i] = strings.Repeat("-", len(h))
	}
	if _, err := fmt.Fprintln(tw, strings.Join(rule, "\t")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}
