package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/experiment"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// counterClock makes every admission epoch last exactly 1 ms, so the
// rendered latency columns are byte-stable.
func counterClock() func() time.Time {
	var ticks int64
	return func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	}
}

// TestSaturationTableGolden pins the rendered saturation report for a fixed
// seed: same spec, same network, same loads must produce this exact table.
func TestSaturationTableGolden(t *testing.T) {
	base, err := gen.NetworkOnly(gen.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.Builtin("burst")
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.Saturate(workload.SaturationOptions{
		Spec:  spec,
		Loads: []float64{0.5, 2},
		Base:  base,
		Config: core.Config{
			Heuristic: core.FullPathOneDest,
			Criterion: core.C4,
			EU:        core.EUFromLog10(2),
			Weights:   model.Weights1x10x100,
		},
		Now: counterClock(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	h, rows := SaturationRows(res)
	if err := Table(&buf, h, rows); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "saturation.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("saturation report differs from golden %s (run with -update to regenerate)\ngot:\n%s", golden, buf.Bytes())
	}
}

func TestSaturationAggregateRows(t *testing.T) {
	agg := &experiment.SaturationAggregate{
		Spec:  "burst",
		Cases: 2,
		Points: []experiment.SaturationAggPoint{
			{Load: 1, MeanOffered: 70, AdmissionRate: experiment.Stat{Mean: 0.99, Min: 0.98, Max: 1},
				Efficiency: experiment.Stat{Mean: 0.97}, MeanP99: time.Millisecond},
			{Load: 4, MeanOffered: 290, AdmissionRate: experiment.Stat{Mean: 0.85, Min: 0.8, Max: 0.9},
				Efficiency: experiment.Stat{Mean: 0.84}, MeanP99: 2 * time.Millisecond},
		},
		KneeIndex: 1,
		KneeLoad:  4,
	}
	h, rows := SaturationAggregateRows(agg)
	if len(h) != len(rows[0]) {
		t.Fatalf("header has %d columns, rows have %d", len(h), len(rows[0]))
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if got := rows[1][0]; got != "4 *knee*" {
		t.Fatalf("knee row not marked: %q", got)
	}
	var buf bytes.Buffer
	if err := Table(&buf, h, rows); err != nil {
		t.Fatal(err)
	}
}
