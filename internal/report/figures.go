package report

import (
	"fmt"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/experiment"
	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/workload"
)

// flat repeats a bound across every sweep point so it renders as a
// horizontal line, as in the paper's Figure 2.
func flat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Figure2 assembles the paper's Figure 2: the two upper bounds, the two
// random lower bounds, and each heuristic's best cost criterion (C4) across
// the E-U sweep.
func Figure2(res *experiment.Result) ([]string, []Series) {
	n := len(res.SweepLabels)
	series := []Series{
		{Name: "upper_bound", Values: flat(res.Upper.Mean, n)},
		{Name: "possible_satisfy", Values: flat(res.PossibleSatisfy.Mean, n)},
	}
	for _, h := range []core.Heuristic{core.PartialPath, core.FullPathOneDest, core.FullPathAllDests} {
		if ps, ok := res.PairByName(h, core.C4); ok {
			series = append(series, Series{Name: h.String() + " (C4)", Values: pairValues(ps)})
		}
	}
	series = append(series,
		Series{Name: "random_Dijkstra", Values: flat(res.RandomDijkstra.Mean, n)},
		Series{Name: "single_Dij_random", Values: flat(res.SingleDijkstraRandom.Mean, n)},
	)
	return res.SweepLabels, series
}

// FigureCriteria assembles Figures 3, 4, or 5: one heuristic's cost
// criteria across the E-U sweep. The C5 extension appears as an extra
// series when the study included it.
func FigureCriteria(res *experiment.Result, h core.Heuristic) ([]string, []Series) {
	var series []Series
	for _, c := range []core.Criterion{core.C1, core.C2, core.C3, core.C4, core.C5} {
		ps, ok := res.PairByName(h, c)
		if !ok {
			continue
		}
		series = append(series, Series{Name: c.String(), Values: pairValues(ps)})
	}
	return res.SweepLabels, series
}

func pairValues(ps *experiment.PairSweep) []float64 {
	out := make([]float64, len(ps.Points))
	for i := range ps.Points {
		out[i] = ps.Points[i].Value.Mean
	}
	return out
}

// BoundsRows renders the bound and baseline aggregates as table rows.
func BoundsRows(res *experiment.Result) ([]string, [][]string) {
	headers := []string{"series", "mean", "min", "max"}
	row := func(name string, s experiment.Stat) []string {
		return []string{name, fmt.Sprintf("%.1f", s.Mean), fmt.Sprintf("%.1f", s.Min), fmt.Sprintf("%.1f", s.Max)}
	}
	return headers, [][]string{
		row("upper_bound", res.Upper),
		row("possible_satisfy", res.PossibleSatisfy),
		row("priority_first", res.PriorityFirst),
		row("random_Dijkstra", res.RandomDijkstra),
		row("single_Dij_random", res.SingleDijkstraRandom),
	}
}

// ExtrasRows renders the technical-report extras for every pair at its best
// sweep point: weighted value with min/max band, mean hops per satisfied
// request, mean Dijkstra executions, mean heuristic execution time, and the
// mean busy fraction of each run's bottleneck link.
func ExtrasRows(res *experiment.Result) ([]string, [][]string) {
	headers := []string{"pair", "best E-U", "mean", "min", "max", "hops", "dijkstras", "exec time", "bneck busy"}
	var rows [][]string
	for i := range res.Pairs {
		ps := &res.Pairs[i]
		bi := ps.BestPoint()
		pt := &ps.Points[bi]
		rows = append(rows, []string{
			ps.Pair.String(),
			res.SweepLabels[bi],
			fmt.Sprintf("%.1f", pt.Value.Mean),
			fmt.Sprintf("%.1f", pt.Value.Min),
			fmt.Sprintf("%.1f", pt.Value.Max),
			fmt.Sprintf("%.2f", pt.MeanHops),
			fmt.Sprintf("%.0f", pt.MeanDijkstraRuns),
			pt.MeanElapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", pt.MeanBottleneckBusy),
		})
	}
	return headers, rows
}

// WeightingRows renders the §5.4 weighting-scheme comparison: per-priority
// mean satisfied counts for one pair at its best sweep point, under two
// studies that differ only in the weighting scheme.
func WeightingRows(name1 string, res1 *experiment.Result, name2 string, res2 *experiment.Result, h core.Heuristic, c core.Criterion) ([]string, [][]string, error) {
	ps1, ok1 := res1.PairByName(h, c)
	ps2, ok2 := res2.PairByName(h, c)
	if !ok1 || !ok2 {
		return nil, nil, fmt.Errorf("report: pair %v/%v missing from a study", h, c)
	}
	pt1 := ps1.Points[ps1.BestPoint()]
	pt2 := ps2.Points[ps2.BestPoint()]
	headers := []string{"priority", name1 + " satisfied", name2 + " satisfied"}
	classes := len(pt1.SatisfiedByPriority)
	if len(pt2.SatisfiedByPriority) > classes {
		classes = len(pt2.SatisfiedByPriority)
	}
	var rows [][]string
	for p := classes - 1; p >= 0; p-- {
		rows = append(rows, []string{
			priorityName(p),
			fmt.Sprintf("%.1f", at(pt1.SatisfiedByPriority, p)),
			fmt.Sprintf("%.1f", at(pt2.SatisfiedByPriority, p)),
		})
	}
	return headers, rows, nil
}

// PriorityFirstRows renders the §5.4 baseline comparison: the priority-first
// scheduler against every pair at its best sweep point.
func PriorityFirstRows(res *experiment.Result) ([]string, [][]string) {
	headers := []string{"scheduler", "mean value", "vs priority_first"}
	rows := [][]string{{
		"priority_first", fmt.Sprintf("%.1f", res.PriorityFirst.Mean), "—",
	}}
	for i := range res.Pairs {
		ps := &res.Pairs[i]
		pt := ps.Points[ps.BestPoint()]
		delta := pt.Value.Mean - res.PriorityFirst.Mean
		rows = append(rows, []string{
			ps.Pair.String(),
			fmt.Sprintf("%.1f", pt.Value.Mean),
			fmt.Sprintf("%+.1f", delta),
		})
	}
	return headers, rows
}

// ArrivalRows renders the online-arrival sweep.
func ArrivalRows(points []experiment.ArrivalPoint) ([]string, [][]string) {
	headers := []string{"dynamic fraction", "offline value", "online value", "retained", "replans"}
	var rows [][]string
	for _, pt := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", pt.DynamicFraction),
			fmt.Sprintf("%.1f", pt.OfflineValue.Mean),
			fmt.Sprintf("%.1f", pt.OnlineValue.Mean),
			fmt.Sprintf("%.3f", pt.RetainedFraction),
			fmt.Sprintf("%.1f", pt.MeanReplans),
		})
	}
	return headers, rows
}

// CongestionRows renders the congestion sweep.
func CongestionRows(cr *experiment.CongestionResult) ([]string, [][]string) {
	headers := []string{"req/machine", "value", "possible_satisfy", "upper", "satisfied fraction"}
	var rows [][]string
	for _, pt := range cr.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.RequestsPerMachine),
			fmt.Sprintf("%.1f", pt.Value.Mean),
			fmt.Sprintf("%.1f", pt.PossibleSatisfy.Mean),
			fmt.Sprintf("%.1f", pt.Upper.Mean),
			fmt.Sprintf("%.3f", pt.SatisfiedFraction),
		})
	}
	return headers, rows
}

// GammaRows renders the garbage-collection ablation.
func GammaRows(points []experiment.GammaPoint) ([]string, [][]string) {
	headers := []string{"gamma", "value", "min", "max", "mean satisfied"}
	var rows [][]string
	for _, pt := range points {
		rows = append(rows, []string{
			pt.Gamma.String(),
			fmt.Sprintf("%.1f", pt.Value.Mean),
			fmt.Sprintf("%.1f", pt.Value.Min),
			fmt.Sprintf("%.1f", pt.Value.Max),
			fmt.Sprintf("%.1f", pt.MeanSatisfied),
		})
	}
	return headers, rows
}

// FailureRows renders the link-failure resilience sweep.
func FailureRows(points []experiment.FailurePoint) ([]string, [][]string) {
	headers := []string{"failed links", "static value", "dynamic value", "retained", "aborted", "replans"}
	var rows [][]string
	for _, pt := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.FailedLinks),
			fmt.Sprintf("%.1f", pt.StaticValue.Mean),
			fmt.Sprintf("%.1f", pt.DynamicValue.Mean),
			fmt.Sprintf("%.3f", pt.RetainedFraction),
			fmt.Sprintf("%.1f", pt.MeanAborted),
			fmt.Sprintf("%.1f", pt.MeanReplans),
		})
	}
	return headers, rows
}

func priorityName(p int) string {
	switch p {
	case 0:
		return "low"
	case 1:
		return "medium"
	case 2:
		return "high"
	default:
		return fmt.Sprintf("p%d", p)
	}
}

func at(vals []float64, i int) float64 {
	if i < len(vals) {
		return vals[i]
	}
	return 0
}

// SaturationRows renders a single-network saturation sweep: one row per
// load point plus a trailing knee line. The latency columns are wall-clock
// unless the analyzer ran with an injected deterministic clock.
func SaturationRows(res *workload.SaturationResult) ([]string, [][]string) {
	headers := []string{"load", "arrivals", "requests", "admitted", "adm rate",
		"value", "upper", "efficiency", "p50 decide", "p99 decide", "epochs"}
	var rows [][]string
	for i, pt := range res.Points {
		load := fmt.Sprintf("%.2g", pt.Load)
		if i == res.KneeIndex {
			load += " *knee*"
		}
		rows = append(rows, []string{
			load,
			fmt.Sprintf("%d", pt.Arrivals),
			fmt.Sprintf("%d", pt.Requests),
			fmt.Sprintf("%d", pt.Admitted),
			fmt.Sprintf("%.3f", pt.AdmissionRate),
			fmt.Sprintf("%.1f", pt.WeightedValue),
			fmt.Sprintf("%.1f", pt.UpperBound),
			fmt.Sprintf("%.3f", pt.Efficiency),
			pt.P50.Round(time.Microsecond).String(),
			pt.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", pt.Epochs),
		})
	}
	return headers, rows
}

// AuditClassRows renders per-priority-class audit summaries (the stageload
// -class-summary table): how each class fared across admission, rejection,
// and preemption, with decision-latency quantiles.
func AuditClassRows(sums []lifecycle.ClassSummary) ([]string, [][]string) {
	headers := []string{"class", "requests", "admitted", "rejected", "preempted",
		"adm rate", "p50 decide", "p99 decide"}
	var rows [][]string
	for _, cs := range sums {
		rows = append(rows, []string{
			priorityName(cs.Class),
			fmt.Sprintf("%d", cs.Requests),
			fmt.Sprintf("%d", cs.Admitted),
			fmt.Sprintf("%d", cs.Rejected),
			fmt.Sprintf("%d", cs.Preempted),
			fmt.Sprintf("%.3f", cs.AdmissionRate),
			cs.P50.Round(time.Microsecond).String(),
			cs.P99.Round(time.Microsecond).String(),
		})
	}
	return headers, rows
}

// SaturationAggregateRows renders the cross-case saturation aggregate.
func SaturationAggregateRows(agg *experiment.SaturationAggregate) ([]string, [][]string) {
	headers := []string{"load", "mean offered", "adm rate", "min", "max",
		"efficiency", "mean p99 decide"}
	var rows [][]string
	for i, pt := range agg.Points {
		load := fmt.Sprintf("%.2g", pt.Load)
		if i == agg.KneeIndex {
			load += " *knee*"
		}
		rows = append(rows, []string{
			load,
			fmt.Sprintf("%.1f", pt.MeanOffered),
			fmt.Sprintf("%.3f", pt.AdmissionRate.Mean),
			fmt.Sprintf("%.3f", pt.AdmissionRate.Min),
			fmt.Sprintf("%.3f", pt.AdmissionRate.Max),
			fmt.Sprintf("%.3f", pt.Efficiency.Mean),
			pt.MeanP99.Round(time.Microsecond).String(),
		})
	}
	return headers, rows
}
