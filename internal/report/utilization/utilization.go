// Package utilization computes exact per-resource utilization profiles of
// a committed schedule: for every virtual link (and, in serialized
// scenarios, every machine port) the busy time as a fraction of its
// availability window, for every machine the peak bytes staged, and a
// bottleneck-attribution table that aggregates, over every unsatisfied
// request, which link's saturation the explain diagnosis blames. The paper
// frames its heuristics as ways to spend scarce link-seconds in an
// oversubscribed network; this package measures where they were actually
// spent.
//
// Everything here is derived from the scenario and the committed
// []state.Transfer, so a profile can be computed for any finished run —
// static or dynamic — without access to the planner's internal state. The
// invariant tests cross-check the arithmetic against the resource
// timelines a replay of the schedule produces.
package utilization

import (
	"fmt"
	"sort"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// LinkProfile is one virtual link's share of the schedule.
type LinkProfile struct {
	Link model.LinkID
	From model.MachineID
	To   model.MachineID
	// Transfers is how many committed transfers used the link.
	Transfers int
	// Busy is the total committed transmission time; Window the length of
	// the link's availability window. Busy never exceeds Window (the link
	// is a serial resource and every transfer fits inside the window).
	Busy   time.Duration
	Window time.Duration
	// BusyFraction is Busy/Window (zero for a zero-length window).
	BusyFraction float64
}

// PortDir distinguishes a machine's send port from its receive port.
type PortDir int

// The two port directions.
const (
	Send PortDir = iota
	Recv
)

// String names the direction.
func (d PortDir) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// PortProfile is one machine port's share of a serialized schedule. Ports
// exist the whole run, so the busy fraction is taken over the scenario
// horizon.
type PortProfile struct {
	Machine      model.MachineID
	Dir          PortDir
	Transfers    int
	Busy         time.Duration
	BusyFraction float64
}

// StorageProfile is one machine's staging high-water mark: the peak bytes
// simultaneously reserved for staged copies (initial source copies are
// not charged, mirroring model.Machine.CapacityBytes semantics).
type StorageProfile struct {
	Machine       model.MachineID
	PeakBytes     int64
	CapacityBytes int64
	// PeakFraction is PeakBytes/CapacityBytes (zero for zero capacity).
	PeakFraction float64
}

// Profile is the full utilization picture of one committed schedule.
type Profile struct {
	// Links has one entry per virtual link the schedule used, ordered by
	// link ID. Idle links are omitted.
	Links []LinkProfile
	// Ports has send/receive port profiles (serialized scenarios only),
	// ordered by (machine, direction). Idle ports are omitted.
	Ports []PortProfile
	// Storage has one entry per machine that staged at least one copy,
	// ordered by machine ID.
	Storage []StorageProfile

	// TotalBusy is the sum of committed transfer durations across every
	// link — the schedule's total spent link-seconds.
	TotalBusy time.Duration
	// MaxLinkBusyFraction and MeanLinkBusyFraction summarize the used
	// links' busy fractions; BottleneckLink is the most-utilized link
	// (lowest ID on ties), -1 when the schedule is empty.
	MaxLinkBusyFraction  float64
	MeanLinkBusyFraction float64
	BottleneckLink       model.LinkID
}

// Compute derives the utilization profile of a committed schedule.
func Compute(sc *scenario.Scenario, transfers []state.Transfer) *Profile {
	p := &Profile{BottleneckLink: -1}

	busy := make(map[model.LinkID]*LinkProfile)
	for _, tr := range transfers {
		lp, ok := busy[tr.Link]
		if !ok {
			l := sc.Network.Link(tr.Link)
			lp = &LinkProfile{Link: tr.Link, From: l.From, To: l.To, Window: l.Window.Length()}
			busy[tr.Link] = lp
		}
		lp.Transfers++
		lp.Busy += tr.Duration
		p.TotalBusy += tr.Duration
	}
	p.Links = make([]LinkProfile, 0, len(busy))
	for _, lp := range busy {
		if lp.Window > 0 {
			lp.BusyFraction = lp.Busy.Seconds() / lp.Window.Seconds()
		}
		p.Links = append(p.Links, *lp)
	}
	sort.Slice(p.Links, func(a, b int) bool { return p.Links[a].Link < p.Links[b].Link })

	var sum float64
	for i := range p.Links {
		lp := &p.Links[i]
		sum += lp.BusyFraction
		if lp.BusyFraction > p.MaxLinkBusyFraction || p.BottleneckLink < 0 {
			p.MaxLinkBusyFraction = lp.BusyFraction
			p.BottleneckLink = lp.Link
		}
	}
	if len(p.Links) > 0 {
		p.MeanLinkBusyFraction = sum / float64(len(p.Links))
	}

	if sc.SerialTransfers {
		p.Ports = portProfiles(sc, transfers)
	}
	p.Storage = storageProfiles(sc, transfers)
	return p
}

func portProfiles(sc *scenario.Scenario, transfers []state.Transfer) []PortProfile {
	type key struct {
		m   model.MachineID
		dir PortDir
	}
	acc := make(map[key]*PortProfile)
	add := func(m model.MachineID, dir PortDir, d time.Duration) {
		k := key{m, dir}
		pp, ok := acc[k]
		if !ok {
			pp = &PortProfile{Machine: m, Dir: dir}
			acc[k] = pp
		}
		pp.Transfers++
		pp.Busy += d
	}
	for _, tr := range transfers {
		add(tr.From, Send, tr.Duration)
		add(tr.To, Recv, tr.Duration)
	}
	out := make([]PortProfile, 0, len(acc))
	horizon := sc.Horizon.Seconds()
	for _, pp := range acc {
		if horizon > 0 {
			pp.BusyFraction = pp.Busy.Seconds() / horizon
		}
		out = append(out, *pp)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Machine != out[b].Machine {
			return out[a].Machine < out[b].Machine
		}
		return out[a].Dir < out[b].Dir
	})
	return out
}

// storageProfiles computes each machine's peak staged bytes by sweeping
// the reservation deltas a replay of the schedule would make: +size at
// arrival, -size when the copy is released (never for destination copies,
// the GC instant for intermediates — state.HoldEnd semantics).
func storageProfiles(sc *scenario.Scenario, transfers []state.Transfer) []StorageProfile {
	type delta struct {
		at    simtime.Instant
		bytes int64
	}
	deltas := make(map[model.MachineID][]delta)
	for _, tr := range transfers {
		it := sc.Item(tr.Item)
		end := sc.GCInstant(it)
		for _, rq := range it.Requests {
			if rq.Machine == tr.To {
				end = simtime.Forever
				break
			}
		}
		deltas[tr.To] = append(deltas[tr.To], delta{tr.Arrival, it.SizeBytes})
		if end != simtime.Forever {
			deltas[tr.To] = append(deltas[tr.To], delta{end, -it.SizeBytes})
		}
	}
	out := make([]StorageProfile, 0, len(deltas))
	for m, ds := range deltas {
		// Releases sort before arrivals at the same instant: capacity
		// intervals are half-open, so a copy ending at t frees its bytes
		// for one arriving at t.
		sort.Slice(ds, func(a, b int) bool {
			if ds[a].at != ds[b].at {
				return ds[a].at < ds[b].at
			}
			return ds[a].bytes < ds[b].bytes
		})
		var level, peak int64
		for _, d := range ds {
			level += d.bytes
			if level > peak {
				peak = level
			}
		}
		sp := StorageProfile{
			Machine:       m,
			PeakBytes:     peak,
			CapacityBytes: sc.Network.Machines[m].CapacityBytes,
		}
		if sp.CapacityBytes > 0 {
			sp.PeakFraction = float64(sp.PeakBytes) / float64(sp.CapacityBytes)
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Machine < out[b].Machine })
	return out
}

// Export publishes the profile's summary as util.* gauges so it appears in
// metrics snapshots, report.MetricsRows tables, and the introspection
// server's /metrics exposition. Nil-safe on o.
func (p *Profile) Export(o *obs.Obs) {
	o.Gauge("util.links_used").Set(float64(len(p.Links)))
	o.Gauge("util.total_link_busy_seconds").Set(p.TotalBusy.Seconds())
	o.Gauge("util.max_link_busy_fraction").Set(p.MaxLinkBusyFraction)
	o.Gauge("util.mean_link_busy_fraction").Set(p.MeanLinkBusyFraction)
	o.Gauge("util.bottleneck_link").Set(float64(p.BottleneckLink))
	var peak float64
	for _, sp := range p.Storage {
		if sp.PeakFraction > peak {
			peak = sp.PeakFraction
		}
	}
	o.Gauge("util.max_storage_peak_fraction").Set(peak)
}

// LinkRows renders the per-link profile as text-report table rows.
func (p *Profile) LinkRows() ([]string, [][]string) {
	headers := []string{"link", "route", "transfers", "busy", "window", "busy frac"}
	rows := make([][]string, 0, len(p.Links))
	for _, lp := range p.Links {
		rows = append(rows, []string{
			fmt.Sprintf("L%d", lp.Link),
			fmt.Sprintf("m%d→m%d", lp.From, lp.To),
			fmt.Sprintf("%d", lp.Transfers),
			lp.Busy.Round(time.Millisecond).String(),
			lp.Window.String(),
			fmt.Sprintf("%.3f", lp.BusyFraction),
		})
	}
	return headers, rows
}

// PortRows renders the per-port profile as table rows (empty for
// non-serialized scenarios).
func (p *Profile) PortRows() ([]string, [][]string) {
	headers := []string{"machine", "port", "transfers", "busy", "busy frac"}
	rows := make([][]string, 0, len(p.Ports))
	for _, pp := range p.Ports {
		rows = append(rows, []string{
			fmt.Sprintf("m%d", pp.Machine),
			pp.Dir.String(),
			fmt.Sprintf("%d", pp.Transfers),
			pp.Busy.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", pp.BusyFraction),
		})
	}
	return headers, rows
}

// StorageRows renders the per-machine staging peaks as table rows.
func (p *Profile) StorageRows() ([]string, [][]string) {
	headers := []string{"machine", "peak staged", "capacity", "peak frac"}
	rows := make([][]string, 0, len(p.Storage))
	for _, sp := range p.Storage {
		rows = append(rows, []string{
			fmt.Sprintf("m%d", sp.Machine),
			fmt.Sprintf("%d", sp.PeakBytes),
			fmt.Sprintf("%d", sp.CapacityBytes),
			fmt.Sprintf("%.3f", sp.PeakFraction),
		})
	}
	return headers, rows
}
