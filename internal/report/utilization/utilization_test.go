package utilization

import (
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
)

func schedule(t *testing.T, sc *scenario.Scenario) *core.Result {
	t.Helper()
	res, err := core.Schedule(sc, core.Config{
		Heuristic:   core.PartialPath,
		Criterion:   core.C4,
		EU:          core.EUFromLog10(0),
		Weights:     model.Weights1x5x10,
		Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// contended builds a single-link scenario where two items compete for one
// narrow window and only one can make its deadline: item0 (high priority)
// wins, item1's request starves.
func contended(t *testing.T) *scenario.Scenario {
	t.Helper()
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	// 1 MB at 1 kbps ≈ 8389 s ≈ 2.33 h per transfer; the 3 h window fits one.
	b.Link(ms[0], ms[1], 0, 3*time.Hour, testnet.KBPS(1))
	b.Item(1<<20,
		[]model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 3*time.Hour, model.High)})
	b.Item(1<<20,
		[]model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 3*time.Hour, model.Low)})
	return b.Build("contended")
}

func TestProfileInvariants(t *testing.T) {
	for name, sc := range map[string]*scenario.Scenario{
		"line":      testnet.Line(4, 1<<20, testnet.KBPS(1000), time.Hour),
		"diamond":   testnet.Diamond(1<<20, time.Hour),
		"contended": contended(t),
	} {
		t.Run(name, func(t *testing.T) {
			res := schedule(t, sc)
			if len(res.Transfers) == 0 {
				t.Fatal("fixture scheduled nothing; invariants would be vacuous")
			}
			p := Compute(sc, res.Transfers)

			// Per-link utilization never exceeds the availability window.
			var linkSum time.Duration
			for _, lp := range p.Links {
				if lp.Busy > lp.Window {
					t.Errorf("L%d busy %v exceeds window %v", lp.Link, lp.Busy, lp.Window)
				}
				if lp.BusyFraction < 0 || lp.BusyFraction > 1 {
					t.Errorf("L%d busy fraction %v outside [0,1]", lp.Link, lp.BusyFraction)
				}
				linkSum += lp.Busy
			}

			// Summed busy time equals the sum of committed transfer durations.
			var want time.Duration
			for _, tr := range res.Transfers {
				want += tr.Duration
			}
			if linkSum != want || p.TotalBusy != want {
				t.Errorf("busy sum %v / total %v, want %v (sum of transfer durations)",
					linkSum, p.TotalBusy, want)
			}

			// Cross-check each link's busy time against the resource
			// timeline a replay of the schedule produces.
			st := state.New(sc)
			for _, tr := range res.Transfers {
				if _, err := st.Commit(tr.Item, tr.Link, tr.Start); err != nil {
					t.Fatalf("replay: %v", err)
				}
			}
			for _, lp := range p.Links {
				if got := st.LinkTimeline(lp.Link).BusyTime(); got != lp.Busy {
					t.Errorf("L%d profile busy %v != replayed timeline busy %v", lp.Link, lp.Busy, got)
				}
			}

			if p.BottleneckLink < 0 || p.MaxLinkBusyFraction < p.MeanLinkBusyFraction {
				t.Errorf("summary inconsistent: bottleneck %d max %v mean %v",
					p.BottleneckLink, p.MaxLinkBusyFraction, p.MeanLinkBusyFraction)
			}
		})
	}
}

func TestPortProfilesSerial(t *testing.T) {
	sc := testnet.Line(3, 1<<20, testnet.KBPS(1000), time.Hour)
	sc.SerialTransfers = true
	res := schedule(t, sc)
	p := Compute(sc, res.Transfers)
	if len(p.Ports) == 0 {
		t.Fatal("serialized scenario produced no port profiles")
	}
	var portBusy, linkBusy time.Duration
	for _, pp := range p.Ports {
		portBusy += pp.Busy
		if pp.BusyFraction < 0 || pp.BusyFraction > 1 {
			t.Errorf("port m%d/%v busy fraction %v outside [0,1]", pp.Machine, pp.Dir, pp.BusyFraction)
		}
	}
	for _, lp := range p.Links {
		linkBusy += lp.Busy
	}
	// Every transfer occupies exactly one send and one receive port.
	if portBusy != 2*linkBusy {
		t.Errorf("port busy %v != 2× link busy %v", portBusy, linkBusy)
	}

	// Cross-check each port's busy time against the port timelines a
	// replay of the schedule produces.
	st := state.New(sc)
	for _, tr := range res.Transfers {
		if _, err := st.Commit(tr.Item, tr.Link, tr.Start); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	for _, pp := range p.Ports {
		tl := st.SendPortTimeline(pp.Machine)
		if pp.Dir == Recv {
			tl = st.RecvPortTimeline(pp.Machine)
		}
		if tl == nil {
			t.Fatalf("port m%d/%v: nil timeline on serialized state", pp.Machine, pp.Dir)
		}
		if got := tl.BusyTime(); got != pp.Busy {
			t.Errorf("port m%d/%v profile busy %v != replayed timeline busy %v", pp.Machine, pp.Dir, pp.Busy, got)
		}
	}

	// Non-serialized scenarios have no port profiles.
	if p2 := Compute(testnet.Line(3, 1<<20, testnet.KBPS(1000), time.Hour), res.Transfers); len(p2.Ports) != 0 {
		t.Error("non-serialized profile has port entries")
	}
}

func TestStorageProfiles(t *testing.T) {
	sc := testnet.Line(3, 1<<20, testnet.KBPS(1000), time.Hour)
	res := schedule(t, sc)
	p := Compute(sc, res.Transfers)
	// The line fixture stages through m1 and delivers to m2: both must
	// show a peak of the item size.
	if len(p.Storage) != 2 {
		t.Fatalf("storage profiles: %+v", p.Storage)
	}
	for _, sp := range p.Storage {
		if sp.PeakBytes != 1<<20 {
			t.Errorf("m%d peak %d, want %d", sp.Machine, sp.PeakBytes, 1<<20)
		}
		if sp.PeakFraction <= 0 || sp.PeakFraction > 1 {
			t.Errorf("m%d peak fraction %v", sp.Machine, sp.PeakFraction)
		}
	}
}

func TestAttributeBlamesSaturatedLink(t *testing.T) {
	sc := contended(t)
	res := schedule(t, sc)
	if len(res.Satisfied) != 1 {
		t.Fatalf("fixture should satisfy exactly one request, got %d", len(res.Satisfied))
	}
	a, err := Attribute(sc, res.Transfers, res.Satisfied)
	if err != nil {
		t.Fatal(err)
	}
	if a.Unsatisfied != 1 || a.Starved != 1 {
		t.Fatalf("attribution = %+v, want 1 starved request", a)
	}
	if len(a.Bottlenecks) != 1 {
		t.Fatalf("bottlenecks = %+v, want the single contended link", a.Bottlenecks)
	}
	b := a.Bottlenecks[0]
	if b.Link != 0 || b.Blamed != 1 || b.BlockedTime <= 0 {
		t.Errorf("bottleneck = %+v", b)
	}
	if len(b.Requests) != 1 || b.Requests[0].Item != 1 {
		t.Errorf("blamed requests = %v, want item 1's request", b.Requests)
	}
	if s := a.Summary(); s == "" || s == "all requests satisfied" {
		t.Errorf("summary = %q", s)
	}
	headers, rows := a.Rows()
	if len(headers) == 0 || len(rows) != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestAttributeAllSatisfied(t *testing.T) {
	sc := testnet.Line(3, 1<<20, testnet.KBPS(1000), time.Hour)
	res := schedule(t, sc)
	a, err := Attribute(sc, res.Transfers, res.Satisfied)
	if err != nil {
		t.Fatal(err)
	}
	if a.Unsatisfied != 0 || len(a.Bottlenecks) != 0 {
		t.Errorf("attribution = %+v, want empty", a)
	}
	if a.Summary() != "all requests satisfied" {
		t.Errorf("summary = %q", a.Summary())
	}
}

func TestExportGauges(t *testing.T) {
	sc := testnet.Line(3, 1<<20, testnet.KBPS(1000), time.Hour)
	res := schedule(t, sc)
	p := Compute(sc, res.Transfers)
	o := obs.New()
	p.Export(o)
	snap := o.Snapshot()
	if got := snap.Gauges["util.total_link_busy_seconds"]; got != p.TotalBusy.Seconds() {
		t.Errorf("util.total_link_busy_seconds = %v, want %v", got, p.TotalBusy.Seconds())
	}
	if got := snap.Gauges["util.max_link_busy_fraction"]; got != p.MaxLinkBusyFraction {
		t.Errorf("util.max_link_busy_fraction = %v, want %v", got, p.MaxLinkBusyFraction)
	}
	if got := snap.Gauges["util.bottleneck_link"]; got != float64(p.BottleneckLink) {
		t.Errorf("util.bottleneck_link = %v, want %v", got, p.BottleneckLink)
	}
	// Nil obs must not panic.
	p.Export(nil)

	// Table renderers produce one row per entry.
	if _, rows := p.LinkRows(); len(rows) != len(p.Links) {
		t.Errorf("LinkRows = %d rows, want %d", len(rows), len(p.Links))
	}
	if _, rows := p.StorageRows(); len(rows) != len(p.Storage) {
		t.Errorf("StorageRows = %d rows, want %d", len(rows), len(p.Storage))
	}
	if _, rows := p.PortRows(); len(rows) != 0 {
		t.Errorf("PortRows on non-serial profile = %d rows", len(rows))
	}
}
