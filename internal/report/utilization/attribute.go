package utilization

import (
	"fmt"
	"sort"
	"time"

	"datastaging/internal/explain"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Bottleneck aggregates blame for one link: how many unsatisfied requests
// the explain diagnosis traced to contention on it, and how much of the
// schedule's traffic occupied it while those requests needed it.
type Bottleneck struct {
	Link model.LinkID
	From model.MachineID
	To   model.MachineID
	// Blamed is the number of starved requests whose ideal path was most
	// obstructed on this link.
	Blamed int
	// Requests lists them, in (item, index) order.
	Requests []model.RequestID
	// BlockedTime is the total time committed transfers overlapped those
	// requests' ideal slots on this link.
	BlockedTime time.Duration
}

// Attribution is the bottleneck-attribution table of one run: every
// unsatisfied request classified by its explain verdict, and the starved
// ones aggregated by the link their starvation is blamed on.
type Attribution struct {
	Unsatisfied int
	// Starved, InfeasibleAlone, and DeliveredLate count the unsatisfied
	// requests per verdict.
	Starved         int
	InfeasibleAlone int
	DeliveredLate   int
	// Bottlenecks is ordered most-blamed first (ties: lower link ID).
	Bottlenecks []Bottleneck
}

// Attribute diagnoses every unsatisfied request of a finished run and
// aggregates the blame: for each request the explain package classifies as
// starved, the ideal-path link whose committed traffic overlapped the
// request's ideal slots the longest is charged. The result is the paper's
// oversubscription made visible — which links' scarcity cost how many
// requests.
func Attribute(sc *scenario.Scenario, transfers []state.Transfer, satisfied map[model.RequestID]simtime.Instant) (*Attribution, error) {
	a := &Attribution{}
	byLink := make(map[model.LinkID]*Bottleneck)
	for _, id := range sc.Requests() {
		if _, ok := satisfied[id]; ok {
			continue
		}
		a.Unsatisfied++
		rep, err := explain.Diagnose(sc, transfers, id)
		if err != nil {
			return nil, fmt.Errorf("utilization: %v: %w", id, err)
		}
		switch rep.Verdict {
		case explain.InfeasibleAlone:
			a.InfeasibleAlone++
		case explain.DeliveredLate:
			a.DeliveredLate++
		case explain.Starved:
			a.Starved++
			link, blocked, ok := rep.BlamedLink()
			if !ok {
				continue
			}
			b, seen := byLink[link]
			if !seen {
				l := sc.Network.Link(link)
				b = &Bottleneck{Link: link, From: l.From, To: l.To}
				byLink[link] = b
			}
			b.Blamed++
			b.Requests = append(b.Requests, id)
			b.BlockedTime += blocked
		}
	}
	a.Bottlenecks = make([]Bottleneck, 0, len(byLink))
	for _, b := range byLink {
		a.Bottlenecks = append(a.Bottlenecks, *b)
	}
	sort.Slice(a.Bottlenecks, func(i, j int) bool {
		if a.Bottlenecks[i].Blamed != a.Bottlenecks[j].Blamed {
			return a.Bottlenecks[i].Blamed > a.Bottlenecks[j].Blamed
		}
		return a.Bottlenecks[i].Link < a.Bottlenecks[j].Link
	})
	return a, nil
}

// Rows renders the attribution as text-report table rows: one line per
// blamed link, most-blamed first.
func (a *Attribution) Rows() ([]string, [][]string) {
	headers := []string{"link", "route", "starved reqs", "blocked time"}
	rows := make([][]string, 0, len(a.Bottlenecks))
	for _, b := range a.Bottlenecks {
		rows = append(rows, []string{
			fmt.Sprintf("L%d", b.Link),
			fmt.Sprintf("m%d→m%d", b.From, b.To),
			fmt.Sprintf("%d", b.Blamed),
			b.BlockedTime.Round(time.Millisecond).String(),
		})
	}
	return headers, rows
}

// Summary returns a one-line synopsis of the attribution for report
// headers and logs.
func (a *Attribution) Summary() string {
	if a.Unsatisfied == 0 {
		return "all requests satisfied"
	}
	s := fmt.Sprintf("%d unsatisfied (%d starved, %d infeasible alone, %d late)",
		a.Unsatisfied, a.Starved, a.InfeasibleAlone, a.DeliveredLate)
	if len(a.Bottlenecks) > 0 {
		b := a.Bottlenecks[0]
		s += fmt.Sprintf("; top bottleneck L%d m%d→m%d blamed for %d",
			b.Link, b.From, b.To, b.Blamed)
	}
	return s
}
