package report

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"datastaging/internal/core"
	"datastaging/internal/experiment"
	"datastaging/internal/gen"
	"datastaging/internal/model"
)

func TestChartRendersSeries(t *testing.T) {
	out := Chart("demo", []string{"a", "b", "c"},
		[]Series{
			{Name: "one", Values: []float64{0, 50, 100}},
			{Name: "two", Values: []float64{100, 50, 0}},
		}, 5)
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "A = one") || !strings.Contains(out, "B = two") {
		t.Errorf("missing legend:\n%s", out)
	}
	// The middle point collides: both series at 50.
	if !strings.Contains(out, "+") {
		t.Errorf("expected collision marker:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "c") {
		t.Errorf("missing x labels:\n%s", out)
	}
}

func TestChartManySeriesWrapsMarkers(t *testing.T) {
	series := make([]Series, 30)
	for i := range series {
		series[i] = Series{Name: "s", Values: []float64{float64(i)}}
	}
	out := Chart("many", []string{"x"}, series, 8)
	// Marker letters wrap modulo 26: series 26 reuses 'A'.
	if !strings.Contains(out, "A = s") {
		t.Errorf("legend missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 30 {
		t.Errorf("expected 30 legend lines plus the grid, got %d lines total", lines)
	}
}

func TestChartDegenerate(t *testing.T) {
	if out := Chart("empty", nil, nil, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
	out := Chart("zeros", []string{"x"}, []Series{{Name: "z", Values: []float64{0}}}, 1)
	if out == "" {
		t.Error("zero-value chart should render")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"-inf", "0", "inf"}, []Series{
		{Name: "plain", Values: []float64{1, 2.5, 3}},
		{Name: `with,comma "q"`, Values: []float64{4, 5, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "series,-inf,0,inf\nplain,1,2.5,3\n\"with,comma \"\"q\"\"\",4,5,6\n"
	if got != want {
		t.Errorf("CSV:\ngot  %q\nwant %q", got, want)
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "value"}, [][]string{{"x", "1"}, {"longer-name", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: got %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing rule: %q", lines[1])
	}
}

func studyFixture(t *testing.T) *experiment.Result {
	t.Helper()
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 5, Max: 5}
	p.RequestsPerMachine = gen.IntRange{Min: 4, Max: 4}
	res, err := experiment.Run(experiment.Options{
		Params:   p,
		NumCases: 2,
		BaseSeed: 1,
		Weights:  model.Weights1x10x100,
		Sweep: []SweepPointAlias{
			{Label: "-inf", EU: core.EUUrgencyOnly},
			{Label: "0", EU: core.EUFromLog10(0)},
			{Label: "inf", EU: core.EUPriorityOnly},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// SweepPointAlias keeps the fixture terse.
type SweepPointAlias = experiment.SweepPoint

func TestFigureAssemblers(t *testing.T) {
	res := studyFixture(t)

	labels, series := Figure2(res)
	if len(labels) != 3 {
		t.Fatalf("Figure2 labels: %v", labels)
	}
	if len(series) != 7 { // 2 upper + 3 heuristics + 2 lower
		t.Fatalf("Figure2 series: got %d, want 7", len(series))
	}
	for _, s := range series {
		if len(s.Values) != 3 {
			t.Errorf("series %q: %d values", s.Name, len(s.Values))
		}
	}
	// Upper bound dominates everything at every point.
	for _, s := range series[1:] {
		for i, v := range s.Values {
			if v > series[0].Values[i]+1e-9 {
				t.Errorf("series %q exceeds upper bound at %d", s.Name, i)
			}
		}
	}

	_, s3 := FigureCriteria(res, core.PartialPath)
	if len(s3) != 4 {
		t.Errorf("Figure3 series: got %d, want 4 (C1..C4)", len(s3))
	}
	_, s5 := FigureCriteria(res, core.FullPathAllDests)
	if len(s5) != 3 {
		t.Errorf("Figure5 series: got %d, want 3 (no C1)", len(s5))
	}

	h, rows := BoundsRows(res)
	if len(h) != 4 || len(rows) != 5 {
		t.Errorf("BoundsRows: %d headers, %d rows", len(h), len(rows))
	}
	h, rows = ExtrasRows(res)
	if len(rows) != 11 {
		t.Errorf("ExtrasRows: got %d rows, want 11", len(rows))
	}
	if len(h) != 9 || h[len(h)-1] != "bneck busy" {
		t.Errorf("ExtrasRows headers: %v", h)
	}
	for _, row := range rows {
		busy, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil || busy < 0 || busy > 1 {
			t.Errorf("ExtrasRows bottleneck busy %q not a fraction: %v", row[len(row)-1], err)
		}
	}
	h, rows = PriorityFirstRows(res)
	if len(rows) != 12 { // baseline + 11 pairs
		t.Errorf("PriorityFirstRows: got %d rows", len(rows))
	}
	_ = h
}

func TestWeightingRows(t *testing.T) {
	res := studyFixture(t)
	headers, rows, err := WeightingRows("1/10/100", res, "1/5/10", res, core.FullPathOneDest, core.C4)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 3 || len(rows) != 3 {
		t.Errorf("WeightingRows: %d headers, %d rows", len(headers), len(rows))
	}
	if rows[0][0] != "high" || rows[2][0] != "low" {
		t.Errorf("priority order: %v", rows)
	}
	if _, _, err := WeightingRows("a", res, "b", res, core.FullPathAllDests, core.C1); err == nil {
		t.Error("missing pair should error")
	}
}

func TestGammaAndFailureRows(t *testing.T) {
	gh, grows := GammaRows([]experiment.GammaPoint{
		{Gamma: 0, Value: experiment.Stat{Mean: 10, Min: 5, Max: 15}, MeanSatisfied: 3},
		{Gamma: 6 * 60e9, Value: experiment.Stat{Mean: 9}, MeanSatisfied: 2.5},
	})
	if len(gh) != 5 || len(grows) != 2 {
		t.Errorf("GammaRows: %d headers %d rows", len(gh), len(grows))
	}
	if grows[1][0] != "6m0s" {
		t.Errorf("gamma label: %q", grows[1][0])
	}
	fh, frows := FailureRows([]experiment.FailurePoint{
		{FailedLinks: 5, StaticValue: experiment.Stat{Mean: 10}, DynamicValue: experiment.Stat{Mean: 9},
			RetainedFraction: 0.9, MeanAborted: 1.5, MeanReplans: 6},
	})
	if len(fh) != 6 || len(frows) != 1 {
		t.Errorf("FailureRows: %d headers %d rows", len(fh), len(frows))
	}
	if frows[0][3] != "0.900" {
		t.Errorf("retained cell: %q", frows[0][3])
	}
}

func TestCongestionRows(t *testing.T) {
	cr := &experiment.CongestionResult{
		Points: []experiment.CongestionPoint{
			{RequestsPerMachine: 10, SatisfiedFraction: 0.9},
			{RequestsPerMachine: 40, SatisfiedFraction: 0.5},
		},
	}
	h, rows := CongestionRows(cr)
	if len(h) != 5 || len(rows) != 2 {
		t.Errorf("CongestionRows: %d headers, %d rows", len(h), len(rows))
	}
}
