package report

import (
	"bytes"
	"strings"
	"testing"

	"datastaging/internal/obs"
)

func TestMetricsRows(t *testing.T) {
	o := obs.New()
	o.Counter("core.commits_total").Add(7)
	o.Gauge("dijkstra.heap_high_water").Set(42)
	h := o.Histogram("core.replan_seconds", obs.DurationBuckets)
	h.Observe(0.5)
	h.Observe(1.5)

	headers, rows := MetricsRows(o.Snapshot())
	if len(headers) != 3 {
		t.Fatalf("headers: %v", headers)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d: %v", len(rows), rows)
	}
	// Rows are sorted by metric name.
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0] > rows[i][0] {
			t.Errorf("rows not sorted: %q before %q", rows[i-1][0], rows[i][0])
		}
	}
	want := map[string][2]string{
		"core.commits_total":       {"counter", "7"},
		"dijkstra.heap_high_water": {"gauge", "42"},
		"core.replan_seconds":      {"histogram", "n=2 mean=1 sum=2"},
	}
	for _, row := range rows {
		exp, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected row %v", row)
			continue
		}
		if row[1] != exp[0] || row[2] != exp[1] {
			t.Errorf("row %q = (%q, %q), want (%q, %q)", row[0], row[1], row[2], exp[0], exp[1])
		}
	}
	// The rows feed straight into Table.
	var buf bytes.Buffer
	if err := Table(&buf, headers, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "core.commits_total") {
		t.Errorf("table output missing metric name:\n%s", buf.String())
	}
}

func TestMetricsRowsDeterministicOnNameTies(t *testing.T) {
	// A counter, gauge, and histogram sharing one name used to land in
	// map-iteration order; the type column must break the tie.
	render := func() [][]string {
		o := obs.New()
		o.Counter("shared").Inc()
		o.Gauge("shared").Set(1)
		o.Histogram("shared", obs.CountBuckets).Observe(1)
		_, rows := MetricsRows(o.Snapshot())
		return rows
	}
	first := render()
	if len(first) != 3 {
		t.Fatalf("expected 3 rows, got %v", first)
	}
	wantTypes := []string{"counter", "gauge", "histogram"}
	for i, row := range first {
		if row[1] != wantTypes[i] {
			t.Fatalf("tie order = %v, want types %v", first, wantTypes)
		}
	}
	for trial := 0; trial < 20; trial++ {
		again := render()
		for i := range first {
			if first[i][1] != again[i][1] {
				t.Fatalf("row order not deterministic: %v vs %v", first, again)
			}
		}
	}
}

func TestMetricsRowsEmpty(t *testing.T) {
	_, rows := MetricsRows(obs.Snapshot{})
	if len(rows) != 0 {
		t.Errorf("empty snapshot produced rows: %v", rows)
	}
}
