package report

import (
	"fmt"
	"sort"

	"datastaging/internal/obs"
)

// MetricsRows renders a metrics snapshot as table rows, one instrument per
// row sorted by (name, type), for the CLI's post-run summary. Counters
// print their value, gauges their current reading, histograms their
// observation count, mean, and total. The order is fully deterministic
// even when a counter, gauge, and histogram share a name — the type breaks
// the tie — so -metrics-out-style output diffs cleanly across runs.
func MetricsRows(snap obs.Snapshot) ([]string, [][]string) {
	headers := []string{"metric", "type", "value"}
	type entry struct {
		name string
		row  []string
	}
	var entries []entry
	for name, v := range snap.Counters {
		entries = append(entries, entry{name, []string{name, "counter", fmt.Sprintf("%d", v)}})
	}
	for name, v := range snap.Gauges {
		entries = append(entries, entry{name, []string{name, "gauge", fmt.Sprintf("%g", v)}})
	}
	for name, h := range snap.Histograms {
		entries = append(entries, entry{name, []string{name, "histogram",
			fmt.Sprintf("n=%d mean=%.4g sum=%.4g", h.Count, h.Mean(), h.Sum)}})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].name != entries[b].name {
			return entries[a].name < entries[b].name
		}
		return entries[a].row[1] < entries[b].row[1]
	})
	rows := make([][]string, len(entries))
	for i := range entries {
		rows[i] = entries[i].row
	}
	return headers, rows
}
