package validator

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
)

func TestValidateAcceptsHeuristicOutput(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(sc, res.Transfers); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	sat, err := SatisfiedSet(sc, res.Transfers)
	if err != nil {
		t.Fatal(err)
	}
	if len(sat) != len(res.Satisfied) {
		t.Errorf("SatisfiedSet size %d != scheduler's %d", len(sat), len(res.Satisfied))
	}
	for id, at := range res.Satisfied {
		if sat[id] != at {
			t.Errorf("request %v: validator arrival %v, scheduler %v", id, sat[id], at)
		}
	}
}

func corrupt(trs []state.Transfer) []state.Transfer {
	out := make([]state.Transfer, len(trs))
	copy(out, trs)
	return out
}

func TestValidateRejectsCorruptedSchedules(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := res.Transfers
	if len(good) != 3 {
		t.Fatalf("fixture: %d transfers", len(good))
	}
	tests := []struct {
		name   string
		mutate func(trs []state.Transfer) []state.Transfer
		substr string
		kind   Kind
	}{
		{"unknown item", func(trs []state.Transfer) []state.Transfer { trs[0].Item = 99; return trs }, "unknown item", KindShape},
		{"unknown link", func(trs []state.Transfer) []state.Transfer { trs[0].Link = 99; return trs }, "unknown link", KindShape},
		{"endpoint mismatch", func(trs []state.Transfer) []state.Transfer { trs[0].To = 3; return trs }, "do not match", KindShape},
		{"wrong duration", func(trs []state.Transfer) []state.Transfer { trs[0].Duration++; return trs }, "duration", KindShape},
		{"wrong arrival", func(trs []state.Transfer) []state.Transfer { trs[0].Arrival++; return trs }, "arrival", KindShape},
		{"outside window", func(trs []state.Transfer) []state.Transfer {
			trs[0].Start = simtime.At(25 * time.Hour)
			trs[0].Arrival = trs[0].Start.Add(trs[0].Duration)
			return trs
		}, "window", KindShape},
		{"duplicate delivery", func(trs []state.Transfer) []state.Transfer {
			// Replay the final hop in a later, non-overlapping slot.
			dup := trs[2]
			dup.Start = dup.Start.Add(30 * time.Minute)
			dup.Arrival = dup.Start.Add(dup.Duration)
			return append(trs, dup)
		}, "already holds", KindDuplicateDelivery},
		{"missing copy", func(trs []state.Transfer) []state.Transfer {
			// Keep only the last hop: its sender never received the item.
			return trs[2:]
		}, "never holds", KindMissingCopy},
		{"starts before copy", func(trs []state.Transfer) []state.Transfer {
			trs[1].Start = 0
			trs[1].Arrival = trs[1].Start.Add(trs[1].Duration)
			return trs
		}, "before copy", KindCopyLifetime},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			trs := tc.mutate(corrupt(good))
			err := Validate(sc, trs)
			if err == nil {
				t.Fatal("corrupted schedule accepted")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not contain %q", err, tc.substr)
			}
			var v *Violation
			if !errors.As(err, &v) {
				t.Fatalf("error %T is not a *Violation", err)
			}
			if v.Kind != tc.kind {
				t.Errorf("violation kind %v, want %v", v.Kind, tc.kind)
			}
		})
	}
}

func TestValidateRejectsLinkOverlap(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	link := b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	itemA := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	itemB := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.Low)})
	sc := b.Build("overlap")
	d := sc.Network.Link(link).TransferDuration(1024)
	mk := func(item model.ItemID, start time.Duration) state.Transfer {
		return state.Transfer{
			Item: item, Link: link, From: ms[0], To: ms[1],
			Start: simtime.At(start), Duration: d, Arrival: simtime.At(start).Add(d),
		}
	}
	trs := []state.Transfer{mk(itemA, 0), mk(itemB, 500*time.Millisecond)}
	err := Validate(sc, trs)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlapping transfers: got %v", err)
	}
}

func TestValidateRejectsCapacityOverflowAndGCViolation(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1500) // fits one copy
	l01 := b.Link(ms[0], ms[1], 0, 24*time.Hour, 80000)
	b.Link(ms[1], ms[2], 0, 24*time.Hour, 80000)
	b.Link(ms[2], ms[0], 0, 24*time.Hour, 80000)
	itemA := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.High)})
	itemB := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.Low)})
	sc := b.Build("capviolation")
	d := sc.Network.Link(l01).TransferDuration(1024)
	mk := func(item model.ItemID, start time.Duration) state.Transfer {
		return state.Transfer{
			Item: item, Link: l01, From: ms[0], To: ms[1],
			Start: simtime.At(start), Duration: d, Arrival: simtime.At(start).Add(d),
		}
	}
	// Both copies staged at machine 1 during overlapping holds: overflow.
	trs := []state.Transfer{mk(itemA, 0), mk(itemB, time.Second)}
	err := Validate(sc, trs)
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("capacity overflow: got %v", err)
	}
	// After itemA's copy is collected (30m + 6m), itemB fits.
	trs = []state.Transfer{mk(itemA, 0), mk(itemB, 37*time.Minute)}
	if err := Validate(sc, trs); err != nil {
		t.Errorf("post-gc schedule rejected: %v", err)
	}
	// A transfer out of machine 1 after garbage collection must fail.
	l12 := sc.Network.Link(1)
	d12 := l12.TransferDuration(1024)
	trs = []state.Transfer{mk(itemA, 0), {
		Item: itemA, Link: 1, From: ms[1], To: ms[2],
		Start: simtime.At(40 * time.Minute), Duration: d12,
		Arrival: simtime.At(40 * time.Minute).Add(d12),
	}}
	err = Validate(sc, trs)
	if err == nil || !strings.Contains(err.Error(), "collected") {
		t.Errorf("post-gc send: got %v", err)
	}
}

func TestValidatePortExclusivity(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	l01 := b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000)
	l02 := b.Link(ms[0], ms[2], 0, 24*time.Hour, 8000)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	b.Link(ms[2], ms[0], 0, 24*time.Hour, 8000)
	itemA := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	itemB := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.Low)})
	sc := b.Build("ports")
	d := sc.Network.Link(l01).TransferDuration(1024)
	mk := func(item model.ItemID, link model.LinkID, to model.MachineID, start time.Duration) state.Transfer {
		return state.Transfer{
			Item: item, Link: link, From: ms[0], To: to,
			Start: simtime.At(start), Duration: d, Arrival: simtime.At(start).Add(d),
		}
	}
	overlapping := []state.Transfer{mk(itemA, l01, ms[1], 0), mk(itemB, l02, ms[2], 0)}
	// Fine under the paper's parallel-send model...
	if err := Validate(sc, overlapping); err != nil {
		t.Fatalf("parallel model rejected concurrent sends: %v", err)
	}
	// ...rejected once transfers are serialized.
	sc.SerialTransfers = true
	err := Validate(sc, overlapping)
	if err == nil || !strings.Contains(err.Error(), "send port") {
		t.Errorf("serialized model: got %v", err)
	}
	// Sequential sends pass in both modes.
	sequential := []state.Transfer{mk(itemA, l01, ms[1], 0), mk(itemB, l02, ms[2], 2*time.Second)}
	if err := Validate(sc, sequential); err != nil {
		t.Errorf("sequential sends rejected: %v", err)
	}
}

// TestEverySchedulerProducesValidSchedules is the central integration test:
// every heuristic/criterion pair, both random lower bounds, and the
// priority-first baseline must emit schedules the independent validator
// accepts, with a satisfied set that matches exactly.
func TestEverySchedulerProducesValidSchedules(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 8}
	p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 12}
	w := model.Weights1x10x100
	for seed := int64(1); seed <= 3; seed++ {
		sc := gen.MustGenerate(p, seed)
		type run struct {
			name string
			res  *core.Result
			err  error
		}
		var runs []run
		for _, pair := range core.Pairs() {
			for _, eu := range []core.EUWeights{core.EUUrgencyOnly, core.EUFromLog10(0), core.EUPriorityOnly} {
				cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu, Weights: w}
				res, err := core.Schedule(sc, cfg)
				runs = append(runs, run{
					name: cfg.Heuristic.String() + "/" + cfg.Criterion.String() + "@" + eu.Label(),
					res:  res, err: err,
				})
			}
		}
		rd, err := core.RandomDijkstra(sc, w, seed)
		runs = append(runs, run{name: "random_Dijkstra", res: rd, err: err})
		sd, err := core.SingleDijkstraRandom(sc, w, seed)
		runs = append(runs, run{name: "single_Dij_random", res: sd, err: err})
		pf, err := core.PriorityFirst(sc, w)
		runs = append(runs, run{name: "priority_first", res: pf, err: err})

		for _, r := range runs {
			if r.err != nil {
				t.Fatalf("seed %d %s: %v", seed, r.name, r.err)
			}
			if err := Validate(sc, r.res.Transfers); err != nil {
				t.Errorf("seed %d %s: invalid schedule: %v", seed, r.name, err)
				continue
			}
			sat, err := SatisfiedSet(sc, r.res.Transfers)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, r.name, err)
			}
			if len(sat) != len(r.res.Satisfied) {
				t.Errorf("seed %d %s: validator satisfied %d, scheduler %d",
					seed, r.name, len(sat), len(r.res.Satisfied))
			}
		}
	}
}
