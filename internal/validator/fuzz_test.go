package validator

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// fuzzSeedScenario is the same valid encoding internal/scenario's
// FuzzDecode seeds with, so the two fuzzers explore from a shared corpus
// shape: a 2-machine ring with one item and one request.
const fuzzSeedScenario = `{
  "network": {
    "machines": [
      {"id": 0, "capacityBytes": 1000},
      {"id": 1, "capacityBytes": 1000}
    ],
    "links": [
      {"id": 0, "from": 0, "to": 1, "window": {"start": 0, "end": 1000000000}, "bandwidthBPS": 8000},
      {"id": 1, "from": 1, "to": 0, "window": {"start": 0, "end": 1000000000}, "bandwidthBPS": 8000}
    ]
  },
  "items": [
    {"id": 0, "sizeBytes": 10, "sources": [{"machine": 0, "available": 0}],
     "requests": [{"machine": 1, "deadline": 900000000, "priority": 2}]}
  ],
  "garbageCollect": 360000000000,
  "horizon": 86400000000000
}`

// fuzzSeedScenario3 adds an intermediate hop so the missing-copy mutation
// (class 2) has a dependent transfer to orphan.
const fuzzSeedScenario3 = `{
  "network": {
    "machines": [
      {"id": 0, "capacityBytes": 100000},
      {"id": 1, "capacityBytes": 100000},
      {"id": 2, "capacityBytes": 100000}
    ],
    "links": [
      {"id": 0, "from": 0, "to": 1, "window": {"start": 0, "end": 100000000000}, "bandwidthBPS": 8000},
      {"id": 1, "from": 1, "to": 2, "window": {"start": 0, "end": 100000000000}, "bandwidthBPS": 8000},
      {"id": 2, "from": 2, "to": 0, "window": {"start": 0, "end": 100000000000}, "bandwidthBPS": 8000}
    ]
  },
  "items": [
    {"id": 0, "sizeBytes": 1024, "sources": [{"machine": 0, "available": 0}],
     "requests": [{"machine": 2, "deadline": 90000000000, "priority": 1}]}
  ],
  "garbageCollect": 360000000000,
  "horizon": 86400000000000
}`

// fuzzWeights covers every priority class present in the scenario, so the
// scheduler's objective never collapses to zero on exotic priorities.
func fuzzWeights(sc *scenario.Scenario) model.Weights {
	maxPrio := 0
	for i := range sc.Items {
		for _, rq := range sc.Items[i].Requests {
			if int(rq.Priority) > maxPrio {
				maxPrio = int(rq.Priority)
			}
		}
	}
	w := make(model.Weights, maxPrio+1)
	for i := range w {
		w[i] = float64(i + 1)
	}
	return w
}

// FuzzValidateRoundTrip is the round-trip oracle for the validator: any
// scenario the decoder accepts must yield a schedule the validator
// accepts, and every class of mutation applied to that valid schedule
// must be rejected with a *Violation of the expected Kind. The mutation
// classes:
//
//	0 — shift a transfer's start while keeping its arrival → KindShape
//	1 — swap a transfer onto a link with different endpoints → KindShape
//	2 — drop a transfer a later hop depends on → KindMissingCopy
//	3 — append a duplicate delivery in a later slot →
//	    {KindLinkConflict, KindPortConflict, KindDuplicateDelivery}
//	4 — move a transfer's slot past the link window → KindShape
func FuzzValidateRoundTrip(f *testing.F) {
	for mut := uint8(0); mut < 5; mut++ {
		f.Add(fuzzSeedScenario, mut, uint16(0), int64(1))
		f.Add(fuzzSeedScenario3, mut, uint16(1), int64(7000))
	}

	f.Fuzz(func(t *testing.T, data string, mutation uint8, pick uint16, shift int64) {
		sc, err := scenario.Decode(strings.NewReader(data))
		if err != nil {
			return // decoder rejection is out of scope here (FuzzDecode owns it)
		}
		// Keep the scheduling step cheap on fuzzer-grown inputs.
		if len(sc.Items) > 16 || sc.Network.NumMachines() > 10 ||
			len(sc.Network.Links) > 32 || sc.NumRequests() > 64 {
			return
		}
		cfg := core.Config{Heuristic: core.FullPathOneDest, Criterion: core.C4,
			EU: core.EUFromLog10(0), Weights: fuzzWeights(sc)}
		res, err := core.Schedule(sc, cfg)
		if err != nil {
			t.Fatalf("scheduler failed on accepted scenario: %v", err)
		}
		// Round trip: the independent validator must accept every schedule
		// the heuristic emits.
		if err := Validate(sc, res.Transfers); err != nil {
			t.Fatalf("valid schedule rejected: %v", err)
		}
		if len(res.Transfers) == 0 {
			return // nothing to mutate
		}

		trs := make([]state.Transfer, len(res.Transfers))
		copy(trs, res.Transfers)
		k := int(pick) % len(trs)
		var want []Kind
		switch mutation % 5 {
		case 0: // shift start, keep arrival: arrival != start+duration
			d := time.Duration(shift%int64(time.Hour)) + time.Nanosecond
			trs[k].Start = trs[k].Start.Add(d)
			want = []Kind{KindShape}
		case 1: // swap onto a link with different endpoints
			tr := trs[k]
			swapped := false
			for id := range sc.Network.Links {
				l := sc.Network.Link(model.LinkID(id))
				if l.From != tr.From || l.To != tr.To {
					trs[k].Link = model.LinkID(id)
					swapped = true
					break
				}
			}
			if !swapped {
				return // every link shares endpoints; mutation impossible
			}
			want = []Kind{KindShape}
		case 2: // drop a transfer a later hop depends on
			hasSource := func(item model.ItemID, m model.MachineID) bool {
				for _, src := range sc.Item(item).Sources {
					if src.Machine == m {
						return true
					}
				}
				return false
			}
			dropped := -1
			for i := range trs {
				if hasSource(trs[i].Item, trs[i].To) {
					continue // receiver is also a source; copy exists anyway
				}
				for j := range trs {
					if j != i && trs[j].Item == trs[i].Item && trs[j].From == trs[i].To {
						dropped = i
						break
					}
				}
				if dropped >= 0 {
					break
				}
			}
			if dropped < 0 {
				return // schedule has no relay hops to orphan
			}
			trs = append(trs[:dropped], trs[dropped+1:]...)
			want = []Kind{KindMissingCopy}
		case 3: // append a duplicate delivery in a later in-window slot
			dup := trs[k]
			dup.Start = dup.Start.Add(time.Duration(shift%int64(time.Hour)) + time.Nanosecond)
			dup.Arrival = dup.Start.Add(dup.Duration)
			l := sc.Network.Link(dup.Link)
			if !l.Window.ContainsInterval(simtime.Span(dup.Start, dup.Duration)) {
				return // slot fell off the window; that is mutation class 4
			}
			trs = append(trs, dup)
			want = []Kind{KindLinkConflict, KindPortConflict, KindDuplicateDelivery}
		case 4: // move the slot past the link window
			l := sc.Network.Link(trs[k].Link)
			if l.Window.End == simtime.Forever {
				return // unbounded window; nothing is "outside"
			}
			trs[k].Start = l.Window.End
			trs[k].Arrival = trs[k].Start.Add(trs[k].Duration)
			want = []Kind{KindShape}
		}

		err = Validate(sc, trs)
		if err == nil {
			t.Fatalf("mutation %d on transfer %d accepted:\n  %+v", mutation%5, k, trs)
		}
		var v *Violation
		if !errors.As(err, &v) {
			t.Fatalf("mutation %d: error %T is not a *Violation: %v", mutation%5, err, err)
		}
		for _, w := range want {
			if v.Kind == w {
				return
			}
		}
		t.Fatalf("mutation %d on transfer %d: kind %v not in %v: %v", mutation%5, k, v.Kind, want, err)
	})
}
