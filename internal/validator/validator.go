// Package validator replays a communication schedule against a pristine
// scenario and independently re-derives every feasibility constraint of the
// model: link windows and exclusivity, copy presence and lifetime at the
// sending machine, single delivery per machine, and storage capacity over
// time. It shares no bookkeeping with internal/state — it is the
// cross-check that the schedulers' output is physically executable, used by
// integration tests for every heuristic and baseline.
//
// Every violation is reported as a *Violation carrying a Kind, so callers
// (and the fuzz harness in fuzz_test.go) can assert not just that a broken
// schedule is rejected but that it is rejected for the right reason.
package validator

import (
	"fmt"
	"sort"

	"datastaging/internal/model"
	"datastaging/internal/resource"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Kind classifies a constraint violation.
type Kind int

// The violation classes, one per independent feasibility constraint.
const (
	// KindShape: a transfer is malformed in isolation — unknown item or
	// link, endpoints that do not match the link, wrong duration or
	// arrival, or a slot outside the link's window.
	KindShape Kind = iota + 1
	// KindLinkConflict: two transfers overlap on one virtual link.
	KindLinkConflict
	// KindPortConflict: under SerialTransfers, a machine sends or
	// receives two transfers at once.
	KindPortConflict
	// KindDuplicateDelivery: a transfer delivers an item to a machine
	// that already holds it.
	KindDuplicateDelivery
	// KindMissingCopy: a transfer's sending machine never holds the item.
	KindMissingCopy
	// KindCopyLifetime: the sender's copy exists, but the transfer starts
	// before it is available or ends after it is garbage-collected.
	KindCopyLifetime
	// KindCapacity: a machine's storage profile goes over capacity.
	KindCapacity
)

func (k Kind) String() string {
	switch k {
	case KindShape:
		return "shape"
	case KindLinkConflict:
		return "link-conflict"
	case KindPortConflict:
		return "port-conflict"
	case KindDuplicateDelivery:
		return "duplicate-delivery"
	case KindMissingCopy:
		return "missing-copy"
	case KindCopyLifetime:
		return "copy-lifetime"
	case KindCapacity:
		return "capacity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Violation is one violated feasibility constraint. It satisfies error;
// use errors.As to recover the Kind from a Validate result.
type Violation struct {
	// Kind is the constraint class that was violated.
	Kind Kind
	// Transfer is the index (in the input slice) of the offending
	// transfer, or -1 when the violation is not tied to a single one.
	Transfer int
	msg      string
	wrapped  error
}

func (v *Violation) Error() string { return v.msg }

// Unwrap exposes the underlying cause (set only for KindCapacity, where
// the resource layer reports the overflow).
func (v *Violation) Unwrap() error { return v.wrapped }

func violation(kind Kind, transfer int, format string, args ...any) *Violation {
	return &Violation{Kind: kind, Transfer: transfer, msg: fmt.Sprintf(format, args...)}
}

// Validate replays the transfers and returns the first violated constraint
// as a *Violation, or nil if the schedule is executable.
func Validate(sc *scenario.Scenario, transfers []state.Transfer) error {
	if err := validateShape(sc, transfers); err != nil {
		return err
	}
	if err := validateLinkExclusivity(sc, transfers); err != nil {
		return err
	}
	if sc.SerialTransfers {
		if err := validatePortExclusivity(sc, transfers); err != nil {
			return err
		}
	}
	if err := validateCopyLifetimes(sc, transfers); err != nil {
		return err
	}
	return validateCapacity(sc, transfers)
}

// validateShape checks each transfer in isolation: real link, matching
// endpoints, exact duration and arrival, inside the window.
func validateShape(sc *scenario.Scenario, transfers []state.Transfer) error {
	for i, tr := range transfers {
		if int(tr.Item) < 0 || int(tr.Item) >= len(sc.Items) {
			return violation(KindShape, i, "validator: transfer %d: unknown item %d", i, tr.Item)
		}
		if int(tr.Link) < 0 || int(tr.Link) >= len(sc.Network.Links) {
			return violation(KindShape, i, "validator: transfer %d: unknown link %d", i, tr.Link)
		}
		l := sc.Network.Link(tr.Link)
		if tr.From != l.From || tr.To != l.To {
			return violation(KindShape, i, "validator: transfer %d: endpoints %d→%d do not match link %d (%d→%d)",
				i, tr.From, tr.To, tr.Link, l.From, l.To)
		}
		wantDur := l.TransferDuration(sc.Item(tr.Item).SizeBytes)
		if tr.Duration != wantDur {
			return violation(KindShape, i, "validator: transfer %d: duration %v, link requires %v", i, tr.Duration, wantDur)
		}
		if tr.Arrival != tr.Start.Add(tr.Duration) {
			return violation(KindShape, i, "validator: transfer %d: arrival %v != start+duration %v",
				i, tr.Arrival, tr.Start.Add(tr.Duration))
		}
		if !l.Window.ContainsInterval(simtime.Span(tr.Start, tr.Duration)) {
			return violation(KindShape, i, "validator: transfer %d: slot [%v,%v) outside link window %v",
				i, tr.Start, tr.Arrival, l.Window)
		}
	}
	return nil
}

// validateLinkExclusivity checks that no two transfers overlap on one
// virtual link.
func validateLinkExclusivity(sc *scenario.Scenario, transfers []state.Transfer) error {
	byLink := make(map[model.LinkID][]int)
	for i, tr := range transfers {
		byLink[tr.Link] = append(byLink[tr.Link], i)
	}
	for link, idxs := range byLink {
		sort.Slice(idxs, func(a, b int) bool { return transfers[idxs[a]].Start < transfers[idxs[b]].Start })
		for k := 1; k < len(idxs); k++ {
			prev, cur := transfers[idxs[k-1]], transfers[idxs[k]]
			if cur.Start < prev.Arrival {
				return violation(KindLinkConflict, idxs[k],
					"validator: link %d: transfers %d and %d overlap ([%v,%v) vs [%v,%v))",
					link, idxs[k-1], idxs[k], prev.Start, prev.Arrival, cur.Start, cur.Arrival)
			}
		}
	}
	return nil
}

// validatePortExclusivity checks the SerialTransfers extension: no machine
// sends two transfers at once or receives two at once.
func validatePortExclusivity(sc *scenario.Scenario, transfers []state.Transfer) error {
	check := func(port string, of func(state.Transfer) model.MachineID) error {
		byMachine := make(map[model.MachineID][]int)
		for i, tr := range transfers {
			m := of(tr)
			byMachine[m] = append(byMachine[m], i)
		}
		for m, idxs := range byMachine {
			sort.Slice(idxs, func(a, b int) bool { return transfers[idxs[a]].Start < transfers[idxs[b]].Start })
			for k := 1; k < len(idxs); k++ {
				prev, cur := transfers[idxs[k-1]], transfers[idxs[k]]
				if cur.Start < prev.Arrival {
					return violation(KindPortConflict, idxs[k],
						"validator: machine %d %s port: transfers %d and %d overlap",
						m, port, idxs[k-1], idxs[k])
				}
			}
		}
		return nil
	}
	if err := check("send", func(tr state.Transfer) model.MachineID { return tr.From }); err != nil {
		return err
	}
	return check("receive", func(tr state.Transfer) model.MachineID { return tr.To })
}

// copy is a reconstructed item copy at a machine.
type copyRecord struct {
	avail simtime.Instant
	end   simtime.Instant
}

// reconstructCopies derives every copy the schedule creates, verifying that
// each machine receives an item at most once and never re-receives what it
// already holds.
func reconstructCopies(sc *scenario.Scenario, transfers []state.Transfer) (map[deliveredKey]copyRecord, error) {
	copies := make(map[deliveredKey]copyRecord)
	for i := range sc.Items {
		it := &sc.Items[i]
		for _, src := range it.Sources {
			copies[deliveredKey{model.ItemID(i), src.Machine}] = copyRecord{
				avail: src.Available,
				end:   simtime.Forever,
			}
		}
	}
	// Transfers are in commit order, but physical time order is what
	// matters for existence; process by start time.
	order := make([]int, len(transfers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return transfers[order[a]].Start < transfers[order[b]].Start })
	for _, i := range order {
		tr := transfers[i]
		key := deliveredKey{tr.Item, tr.To}
		if _, dup := copies[key]; dup {
			return nil, violation(KindDuplicateDelivery, i,
				"validator: transfer %d delivers item %d to machine %d which already holds it",
				i, tr.Item, tr.To)
		}
		end := gcEnd(sc, tr.Item, tr.To)
		copies[key] = copyRecord{avail: tr.Arrival, end: end}
	}
	return copies, nil
}

type deliveredKey struct {
	item    model.ItemID
	machine model.MachineID
}

func gcEnd(sc *scenario.Scenario, item model.ItemID, m model.MachineID) simtime.Instant {
	for _, rq := range sc.Item(item).Requests {
		if rq.Machine == m {
			return simtime.Forever // final destination copies persist
		}
	}
	return sc.GCInstant(sc.Item(item))
}

// validateCopyLifetimes checks each transfer's sending machine actually
// holds a live copy for the whole transmission.
func validateCopyLifetimes(sc *scenario.Scenario, transfers []state.Transfer) error {
	copies, err := reconstructCopies(sc, transfers)
	if err != nil {
		return err
	}
	for i, tr := range transfers {
		c, ok := copies[deliveredKey{tr.Item, tr.From}]
		if !ok {
			return violation(KindMissingCopy, i,
				"validator: transfer %d: machine %d never holds item %d", i, tr.From, tr.Item)
		}
		if tr.Start.Before(c.avail) {
			return violation(KindCopyLifetime, i,
				"validator: transfer %d: starts %v before copy at machine %d exists (%v)",
				i, tr.Start, tr.From, c.avail)
		}
		if c.end != simtime.Forever && tr.Arrival.After(c.end) {
			return violation(KindCopyLifetime, i,
				"validator: transfer %d: ends %v after copy at machine %d is collected (%v)",
				i, tr.Arrival, tr.From, c.end)
		}
	}
	return nil
}

// validateCapacity rebuilds every machine's storage profile from the
// delivered copies and checks it never goes negative. Initial source copies
// are not charged (net-capacity convention, DESIGN.md §2).
func validateCapacity(sc *scenario.Scenario, transfers []state.Transfer) error {
	caps := make([]*resource.Capacity, sc.Network.NumMachines())
	for i, m := range sc.Network.Machines {
		caps[i] = resource.NewCapacity(m.CapacityBytes)
	}
	for i, tr := range transfers {
		size := sc.Item(tr.Item).SizeBytes
		iv := simtime.Interval{Start: tr.Arrival, End: gcEnd(sc, tr.Item, tr.To)}
		if err := caps[tr.To].Reserve(size, iv); err != nil {
			v := violation(KindCapacity, i,
				"validator: transfer %d: machine %d over capacity for item %d over %v: %v",
				i, tr.To, tr.Item, iv, err)
			v.wrapped = err
			return v
		}
	}
	return nil
}

// SatisfiedSet independently re-derives which requests the schedule
// satisfies: the item's copy reaches the requesting machine at or before
// the deadline.
func SatisfiedSet(sc *scenario.Scenario, transfers []state.Transfer) (map[model.RequestID]simtime.Instant, error) {
	copies, err := reconstructCopies(sc, transfers)
	if err != nil {
		return nil, err
	}
	out := make(map[model.RequestID]simtime.Instant)
	for i := range sc.Items {
		for k, rq := range sc.Items[i].Requests {
			c, ok := copies[deliveredKey{model.ItemID(i), rq.Machine}]
			if ok && !c.avail.After(rq.Deadline) {
				out[model.RequestID{Item: model.ItemID(i), Index: k}] = c.avail
			}
		}
	}
	return out, nil
}
