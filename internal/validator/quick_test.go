package validator

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// TestQuickStateAndValidatorAgree is the two-implementations cross-check:
// internal/state (the scheduler's incremental bookkeeping) and this package
// (batch replay) encode the same model rules independently. Any schedule
// state accepts, the validator must accept — in both the parallel and the
// serialized-port models — and their satisfied sets must match.
func TestQuickStateAndValidatorAgree(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 4, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 3, Max: 6}
	property := func(seed int64, serial bool) bool {
		sc := gen.MustGenerate(p, seed%10000)
		sc.SerialTransfers = serial
		st := state.New(sc)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			item := model.ItemID(rng.Intn(len(sc.Items)))
			link := model.LinkID(rng.Intn(len(sc.Network.Links)))
			start := simtime.At(time.Duration(rng.Int63n(int64(3 * time.Hour))))
			st.Commit(item, link, start) // errors are expected and fine
		}
		if err := Validate(sc, st.Transfers()); err != nil {
			t.Logf("seed %d serial=%v: validator rejected state-accepted schedule: %v", seed, serial, err)
			return false
		}
		sat, err := SatisfiedSet(sc, st.Transfers())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(sat) != len(st.Satisfied()) {
			t.Logf("seed %d serial=%v: satisfied sets differ: %d vs %d",
				seed, serial, len(sat), len(st.Satisfied()))
			return false
		}
		for id, at := range st.Satisfied() {
			if sat[id] != at {
				t.Logf("seed %d: request %v arrival differs", seed, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
