// Package workload generates realistic request streams for the data
// staging system. The §5.3 generator (internal/gen) draws every request
// from one stationary distribution; real inter-datacenter traffic is
// bursty, diurnal, and cohort-structured. This package adds the missing
// temporal axis as three composable layers:
//
//   - A declarative multi-phase arrival Spec: consecutive time windows,
//     each with its own Poisson arrival rate, priority mix, item-size
//     range, deadline tightness, and fan-in/fan-out. Compile turns a spec
//     into a deterministic, seeded arrival stream.
//   - A canonical versioned trace format (.trace.json) with a writer and a
//     strict, typed-error reader, so any generated or live-captured
//     workload replays bit-identically through dynamic.Simulate, the
//     stagesim CLI, and the stagesvc HTTP path.
//   - A saturation analyzer that sweeps offered load over a spec, finds
//     the admission-rate knee, and reports p99 decision latency and
//     weighted-value efficiency per load point.
//
// Everything is deterministic for a fixed seed: the same spec compiled
// against the same machine count yields byte-identical traces, and the
// same trace materialized over the same network yields the identical
// scenario and event list no matter which driver replays it.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"datastaging/internal/dynamic"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
)

// Phase is one window of a multi-phase arrival spec. Phases are laid out
// back to back starting at the scheduling epoch; an arrival's properties
// are drawn from the phase it falls in.
type Phase struct {
	// Name labels the phase; it is carried through to each arrival for
	// provenance (trace version 2).
	Name string `json:"name,omitempty"`
	// Duration is the window length. Phases abut: phase i+1 starts where
	// phase i ends.
	Duration time.Duration `json:"duration"`
	// PerHour is the mean Poisson arrival rate inside the window. Zero is
	// a legal quiet period.
	PerHour float64 `json:"perHour"`
	// PriorityWeights draws each request's priority class: class p is
	// chosen with probability PriorityWeights[p] / sum. Length fixes the
	// number of classes.
	PriorityWeights []float64 `json:"priorityWeights"`
	// SizeMinBytes/SizeMaxBytes bound the log-uniform item-size draw.
	SizeMinBytes int64 `json:"sizeMinBytes"`
	SizeMaxBytes int64 `json:"sizeMaxBytes"`
	// SlackMin/SlackMax bound the deadline tightness: each request's
	// deadline is its arrival instant plus a uniform slack draw.
	SlackMin time.Duration `json:"slackMin"`
	SlackMax time.Duration `json:"slackMax"`
	// MaxSources/MaxDests bound an arrival's fan-in and fan-out (both
	// default to 1). Sources and destinations are always disjoint.
	MaxSources int `json:"maxSources,omitempty"`
	MaxDests   int `json:"maxDests,omitempty"`
}

// Spec is a declarative multi-phase workload description. The zero value
// is invalid; build one by hand or start from a Builtin.
type Spec struct {
	Name string `json:"name"`
	// Seed makes compilation deterministic. Each phase derives its own
	// sub-stream, so editing one phase does not reshuffle the others.
	Seed   int64   `json:"seed"`
	Phases []Phase `json:"phases"`
}

// Validate rejects malformed specs with a descriptive error.
func (s *Spec) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: spec %q has no phases", s.Name)
	}
	for i, ph := range s.Phases {
		switch {
		case ph.Duration <= 0:
			return fmt.Errorf("workload: phase %d: non-positive duration %v", i, ph.Duration)
		case ph.PerHour < 0 || math.IsNaN(ph.PerHour) || math.IsInf(ph.PerHour, 0):
			return fmt.Errorf("workload: phase %d: bad rate %v", i, ph.PerHour)
		case ph.SizeMinBytes <= 0 || ph.SizeMaxBytes < ph.SizeMinBytes:
			return fmt.Errorf("workload: phase %d: bad size range [%d, %d]", i, ph.SizeMinBytes, ph.SizeMaxBytes)
		case ph.SlackMin <= 0 || ph.SlackMax < ph.SlackMin:
			return fmt.Errorf("workload: phase %d: bad slack range [%v, %v]", i, ph.SlackMin, ph.SlackMax)
		case ph.MaxSources < 0 || ph.MaxDests < 0:
			return fmt.Errorf("workload: phase %d: negative fan bound", i)
		case len(ph.PriorityWeights) == 0:
			return fmt.Errorf("workload: phase %d: no priority weights", i)
		}
		var sum float64
		for p, w := range ph.PriorityWeights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("workload: phase %d: bad priority weight %v for class %d", i, w, p)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("workload: phase %d: priority weights sum to zero", i)
		}
	}
	return nil
}

// Duration is the total span of all phases.
func (s *Spec) Duration() time.Duration {
	var d time.Duration
	for _, ph := range s.Phases {
		d += ph.Duration
	}
	return d
}

// ScaleRate returns a copy of the spec with every phase's arrival rate
// multiplied by f. The saturation analyzer sweeps offered load this way.
func (s Spec) ScaleRate(f float64) Spec {
	out := s
	out.Phases = append([]Phase(nil), s.Phases...)
	for i := range out.Phases {
		out.Phases[i].PerHour *= f
	}
	return out
}

// ArrivalSource is one initial copy of an arriving item.
type ArrivalSource struct {
	Machine int `json:"machine"`
	// Available is when the copy exists; generated arrivals use the
	// arrival instant itself.
	Available simtime.Instant `json:"available"`
}

// ArrivalRequest is one deadline-bearing destination of an arrival.
type ArrivalRequest struct {
	Machine  int             `json:"machine"`
	Deadline simtime.Instant `json:"deadline"`
	Priority int             `json:"priority"`
}

// Arrival is one item entering the system at instant At: the shared
// currency of the workload layer. It converts losslessly to a scenario
// item plus a dynamic.ItemRelease event (offline replay) and to a
// serve.Submission (online replay).
type Arrival struct {
	At   simtime.Instant `json:"at"`
	Name string          `json:"name,omitempty"`
	// Phase records which spec phase produced the arrival (trace v2).
	Phase     string           `json:"phase,omitempty"`
	SizeBytes int64            `json:"sizeBytes"`
	Sources   []ArrivalSource  `json:"sources"`
	Requests  []ArrivalRequest `json:"requests"`
}

// Item converts the arrival into the scenario item it becomes once known
// to the scheduler.
func (a *Arrival) Item(id model.ItemID) model.Item {
	it := model.Item{ID: id, Name: a.Name, SizeBytes: a.SizeBytes}
	if it.Name == "" {
		it.Name = fmt.Sprintf("arrival-%d", id)
	}
	for _, src := range a.Sources {
		it.Sources = append(it.Sources, model.Source{
			Machine: model.MachineID(src.Machine), Available: src.Available,
		})
	}
	for _, rq := range a.Requests {
		it.Requests = append(it.Requests, model.Request{
			Machine:  model.MachineID(rq.Machine),
			Deadline: rq.Deadline,
			Priority: model.Priority(rq.Priority),
		})
	}
	return it
}

// validate mirrors the checks the trace reader and the admission service
// apply, so a compiled arrival is accepted by every replay path.
func (a *Arrival) validate(machines int) error {
	switch {
	case a.At < 0:
		return fmt.Errorf("negative arrival instant %v", a.At)
	case a.SizeBytes <= 0:
		return fmt.Errorf("non-positive size %d", a.SizeBytes)
	case len(a.Sources) == 0:
		return fmt.Errorf("no sources")
	case len(a.Requests) == 0:
		return fmt.Errorf("no requests")
	}
	srcs := make(map[int]bool, len(a.Sources))
	for _, src := range a.Sources {
		if src.Machine < 0 || src.Machine >= machines {
			return fmt.Errorf("source machine %d out of range [0,%d)", src.Machine, machines)
		}
		if srcs[src.Machine] {
			return fmt.Errorf("duplicate source machine %d", src.Machine)
		}
		if src.Available < 0 {
			return fmt.Errorf("negative availability %v", src.Available)
		}
		srcs[src.Machine] = true
	}
	dests := make(map[int]bool, len(a.Requests))
	for _, rq := range a.Requests {
		if rq.Machine < 0 || rq.Machine >= machines {
			return fmt.Errorf("request machine %d out of range [0,%d)", rq.Machine, machines)
		}
		if srcs[rq.Machine] {
			return fmt.Errorf("request machine %d is also a source", rq.Machine)
		}
		if dests[rq.Machine] {
			return fmt.Errorf("duplicate request machine %d", rq.Machine)
		}
		dests[rq.Machine] = true
		if rq.Priority < 0 {
			return fmt.Errorf("negative priority %d", rq.Priority)
		}
		if rq.Deadline <= 0 {
			return fmt.Errorf("deadline %v not after the epoch", rq.Deadline)
		}
	}
	return nil
}

// NumRequests sums the request counts of all arrivals.
func NumRequests(arrivals []Arrival) int {
	n := 0
	for i := range arrivals {
		n += len(arrivals[i].Requests)
	}
	return n
}

// Compile turns the spec into a deterministic arrival stream against a
// network of the given machine count. Arrivals are sorted by instant (ties
// keep phase order), which is the canonical trace order and the submission
// order every replay path uses.
func (s Spec) Compile(machines int) ([]Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if machines < 2 {
		return nil, fmt.Errorf("workload: need at least 2 machines, got %d", machines)
	}
	var out []Arrival
	var start time.Duration
	for pi, ph := range s.Phases {
		// A per-phase sub-stream: editing one phase leaves the draws of
		// every other phase untouched.
		rng := rand.New(rand.NewSource(s.Seed + int64(pi)*0x9E3779B9))
		if ph.PerHour > 0 {
			mean := float64(time.Hour) / ph.PerHour
			gap := func() time.Duration {
				g := time.Duration(rng.ExpFloat64() * mean)
				if g < time.Nanosecond {
					g = time.Nanosecond // keep time strictly advancing
				}
				return g
			}
			for t := start + gap(); t < start+ph.Duration; t += gap() {
				out = append(out, drawArrival(ph, rng, machines, simtime.At(t)))
			}
		}
		start += ph.Duration
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	for i := range out {
		out[i].Name = fmt.Sprintf("%s-%d", nameOr(s.Name, "w"), i)
		if err := out[i].validate(machines); err != nil {
			return nil, fmt.Errorf("workload: compiled arrival %d invalid: %w", i, err)
		}
	}
	return out, nil
}

func nameOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func drawArrival(ph Phase, rng *rand.Rand, machines int, at simtime.Instant) Arrival {
	ns, nd := ph.MaxSources, ph.MaxDests
	if ns < 1 {
		ns = 1
	}
	if nd < 1 {
		nd = 1
	}
	if ns > 1 {
		ns = 1 + rng.Intn(ns)
	}
	if nd > 1 {
		nd = 1 + rng.Intn(nd)
	}
	// Sources and destinations must be distinct machines.
	if ns+nd > machines {
		ns = 1
		if nd > machines-1 {
			nd = machines - 1
		}
	}
	perm := rng.Perm(machines)
	a := Arrival{At: at, Phase: ph.Name, SizeBytes: drawSize(ph, rng)}
	for _, m := range perm[:ns] {
		a.Sources = append(a.Sources, ArrivalSource{Machine: m, Available: at})
	}
	for _, m := range perm[ns : ns+nd] {
		a.Requests = append(a.Requests, ArrivalRequest{
			Machine:  m,
			Deadline: at.Add(drawSlack(ph, rng)),
			Priority: drawPriority(ph, rng),
		})
	}
	return a
}

func drawSize(ph Phase, rng *rand.Rand) int64 {
	if ph.SizeMaxBytes <= ph.SizeMinBytes {
		return ph.SizeMinBytes
	}
	lo, hi := float64(ph.SizeMinBytes), float64(ph.SizeMaxBytes)
	// Log-uniform: small items common, large items rare — the shape a
	// shared staging network actually sees.
	return int64(lo * math.Pow(hi/lo, rng.Float64()))
}

func drawSlack(ph Phase, rng *rand.Rand) time.Duration {
	if ph.SlackMax <= ph.SlackMin {
		return ph.SlackMin
	}
	return ph.SlackMin + time.Duration(rng.Int63n(int64(ph.SlackMax-ph.SlackMin)))
}

func drawPriority(ph Phase, rng *rand.Rand) int {
	var sum float64
	for _, w := range ph.PriorityWeights {
		sum += w
	}
	x := rng.Float64() * sum
	for p, w := range ph.PriorityWeights {
		if x < w {
			return p
		}
		x -= w
	}
	return len(ph.PriorityWeights) - 1
}

// Materialize turns a trace into the offline replay inputs: a copy of the
// base scenario with the arrivals appended as items (in trace order, with
// sequential IDs — the same numbering the admission service assigns in
// submission order) and the ItemRelease events for every arrival after the
// epoch. The base scenario contributes the network, horizon, and
// garbage-collection policy; it is not mutated.
func (tr *Trace) Materialize(base *scenario.Scenario) (*scenario.Scenario, []dynamic.Event, error) {
	if base == nil || base.Network == nil {
		return nil, nil, fmt.Errorf("workload: materialize needs a base scenario with a network")
	}
	if n := base.Network.NumMachines(); n < tr.Machines {
		return nil, nil, fmt.Errorf("workload: trace %q wants %d machines, base network has %d",
			tr.Name, tr.Machines, n)
	}
	sc := *base
	sc.Items = append([]model.Item(nil), base.Items...)
	if tr.Name != "" {
		sc.Name = fmt.Sprintf("%s+%s", nameOr(base.Name, "base"), tr.Name)
	}
	var events []dynamic.Event
	for i := range tr.Arrivals {
		a := &tr.Arrivals[i]
		id := model.ItemID(len(sc.Items))
		sc.Items = append(sc.Items, a.Item(id))
		if a.At > 0 {
			events = append(events, dynamic.Event{At: a.At, Kind: dynamic.ItemRelease, Item: id})
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: materialized scenario invalid: %w", err)
	}
	return &sc, events, nil
}
