package workload

import (
	"fmt"
	"sort"
	"time"
)

// Builtin returns one of the named built-in specs. Every built-in is sized
// for the paper's §5.3 network (10 Kbit/s–1.5 Mbit/s links over a 24 h
// day): item sizes are large enough that an offered-load multiplier of a
// few times unity saturates the network, which is what the saturation
// analyzer sweeps.
func Builtin(name string) (Spec, error) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown builtin spec %q (have %v)", name, BuiltinNames())
}

// BuiltinNames lists the built-in spec names, sorted.
func BuiltinNames() []string {
	specs := Builtins()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Builtins returns the built-in multi-phase specs. All are deterministic
// (fixed seeds) and span at most the 24 h day the generated networks'
// link windows cover.
func Builtins() []Spec {
	uniform := []float64{1, 1, 1}
	bulk := []float64{1, 0, 0}        // low priority only
	interactive := []float64{0, 3, 7} // medium/high skew
	business := []float64{0.2, 0.4, 0.4}

	return []Spec{
		{
			// steady: the stationary baseline — one flat window, the
			// temporal shape the §5.3 generator already models.
			Name: "steady",
			Seed: 11,
			Phases: []Phase{
				{Name: "flat", Duration: 24 * time.Hour, PerHour: 3,
					PriorityWeights: uniform,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 192 << 20,
					SlackMin: 45 * time.Minute, SlackMax: 3 * time.Hour},
			},
		},
		{
			// burst: a calm background with a one-hour spike an order of
			// magnitude above it — the flash-crowd shape.
			Name: "burst",
			Seed: 12,
			Phases: []Phase{
				{Name: "calm", Duration: 4 * time.Hour, PerHour: 2,
					PriorityWeights: uniform,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 192 << 20,
					SlackMin: 45 * time.Minute, SlackMax: 3 * time.Hour},
				{Name: "spike", Duration: time.Hour, PerHour: 40,
					PriorityWeights: interactive,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 128 << 20,
					SlackMin: 30 * time.Minute, SlackMax: 90 * time.Minute},
				{Name: "cooldown", Duration: 19 * time.Hour, PerHour: 2,
					PriorityWeights: uniform,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 192 << 20,
					SlackMin: 45 * time.Minute, SlackMax: 3 * time.Hour},
			},
		},
		{
			// diurnal: a stepped day/night cycle — quiet night, morning
			// ramp, busy afternoon, evening taper.
			Name: "diurnal",
			Seed: 13,
			Phases: []Phase{
				{Name: "night", Duration: 6 * time.Hour, PerHour: 1,
					PriorityWeights: uniform,
					SizeMinBytes:    32 << 20, SizeMaxBytes: 256 << 20,
					SlackMin: time.Hour, SlackMax: 4 * time.Hour},
				{Name: "morning", Duration: 4 * time.Hour, PerHour: 6,
					PriorityWeights: business,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 128 << 20,
					SlackMin: time.Hour, SlackMax: 4 * time.Hour},
				{Name: "afternoon", Duration: 6 * time.Hour, PerHour: 10,
					PriorityWeights: business,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 128 << 20,
					SlackMin: time.Hour, SlackMax: 4 * time.Hour},
				{Name: "evening", Duration: 8 * time.Hour, PerHour: 3,
					PriorityWeights: uniform,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 192 << 20,
					SlackMin: time.Hour, SlackMax: 3 * time.Hour},
			},
		},
		{
			// cohort: distinct traffic populations per window — overnight
			// bulk staging (big, patient, low priority), business-hours
			// interactive requests (small, tight, high priority), then a
			// mixed tail. Multi-source/multi-destination fan is on.
			Name: "cohort",
			Seed: 14,
			Phases: []Phase{
				{Name: "bulk", Duration: 8 * time.Hour, PerHour: 4,
					PriorityWeights: bulk,
					SizeMinBytes:    64 << 20, SizeMaxBytes: 384 << 20,
					SlackMin: 2 * time.Hour, SlackMax: 6 * time.Hour,
					MaxSources: 2, MaxDests: 3},
				{Name: "interactive", Duration: 8 * time.Hour, PerHour: 6,
					PriorityWeights: interactive,
					SizeMinBytes:    4 << 20, SizeMaxBytes: 64 << 20,
					SlackMin: 30 * time.Minute, SlackMax: 2 * time.Hour},
				{Name: "mixed", Duration: 8 * time.Hour, PerHour: 2,
					PriorityWeights: uniform,
					SizeMinBytes:    16 << 20, SizeMaxBytes: 192 << 20,
					SlackMin: 45 * time.Minute, SlackMax: 3 * time.Hour,
					MaxDests: 2},
			},
		},
	}
}
