package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"datastaging/internal/bounds"
	"datastaging/internal/core"
	"datastaging/internal/dynamic"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
)

// SaturationOptions configures one saturation sweep: the spec whose rates
// are scaled, the load multipliers, the base network, and the heuristic
// configuration each replay runs.
type SaturationOptions struct {
	// Spec is the workload shape; each load point replays Spec with every
	// phase rate multiplied by the point's load factor.
	Spec Spec
	// Loads are the offered-load multipliers, in sweep order (conventionally
	// ascending).
	Loads []float64
	// Base contributes the network, horizon, and γ. Its own items (if any)
	// are scheduled too but not counted in the admission rate.
	Base *scenario.Scenario
	// Config is the heuristic/criterion pair each admission epoch runs;
	// Config.Weights also defines the weighted objective.
	Config core.Config
	// KneeFraction locates the knee: the first load point whose admission
	// rate falls below KneeFraction times the first point's rate (default
	// 0.9).
	KneeFraction float64
	// Now is the clock used to measure decision latency (default
	// time.Now). Tests inject a deterministic counter so the report is
	// byte-stable.
	Now func() time.Time
}

// SaturationPoint is one load point of the sweep.
type SaturationPoint struct {
	// Load is the offered-load multiplier on the spec's phase rates.
	Load float64 `json:"load"`
	// Arrivals and Requests count the offered work at this load.
	Arrivals int `json:"arrivals"`
	Requests int `json:"requests"`
	// Admitted counts requests satisfied by the final committed schedule;
	// AdmissionRate is Admitted / Requests.
	Admitted      int     `json:"admitted"`
	AdmissionRate float64 `json:"admissionRate"`
	// WeightedValue is the objective achieved; UpperBound is the §5.2
	// everything-ignoring-capacity bound on the same scenario, and
	// Efficiency their ratio — how much of the theoretically available
	// weighted value survived the contention at this load.
	WeightedValue float64 `json:"weightedValue"`
	UpperBound    float64 `json:"upperBound"`
	Efficiency    float64 `json:"efficiency"`
	// P50/P99 are decision-latency percentiles: each request's latency is
	// the wall duration of the admission epoch that first decided it.
	P50 time.Duration `json:"p50DecisionLatency"`
	P99 time.Duration `json:"p99DecisionLatency"`
	// Epochs counts admission epochs (distinct arrival instants).
	Epochs int `json:"epochs"`
}

// SaturationResult is the sweep outcome and the JSON artifact schema.
type SaturationResult struct {
	Spec     string            `json:"spec"`
	Seed     int64             `json:"seed"`
	Machines int               `json:"machines"`
	Scenario string            `json:"scenario"`
	Points   []SaturationPoint `json:"points"`
	// KneeIndex is the first load point past the admission knee, -1 when
	// the sweep never saturates; KneeLoad is its multiplier (0 when none).
	KneeIndex int     `json:"kneeIndex"`
	KneeLoad  float64 `json:"kneeLoad"`
}

// WriteJSON emits the artifact: indented, deterministic field order.
func (r *SaturationResult) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Saturate sweeps offered load over the spec and locates the admission
// knee. Each load point compiles the rate-scaled spec (same seed — load
// points differ only in offered traffic), materializes it over the base
// network, and replays it epoch by epoch through the incremental engine,
// timing every admission epoch. Scheduling results are deterministic for a
// fixed seed; latencies are wall-clock unless Now is injected.
func Saturate(opts SaturationOptions) (*SaturationResult, error) {
	if opts.Base == nil || opts.Base.Network == nil {
		return nil, fmt.Errorf("workload: saturation needs a base scenario")
	}
	if len(opts.Loads) == 0 {
		return nil, fmt.Errorf("workload: saturation needs at least one load point")
	}
	if len(opts.Config.Weights) == 0 {
		return nil, fmt.Errorf("workload: saturation config has no priority weights")
	}
	if opts.KneeFraction <= 0 || opts.KneeFraction >= 1 {
		opts.KneeFraction = 0.9
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	machines := opts.Base.Network.NumMachines()
	res := &SaturationResult{
		Spec:      opts.Spec.Name,
		Seed:      opts.Spec.Seed,
		Machines:  machines,
		Scenario:  opts.Base.Name,
		KneeIndex: -1,
	}
	for _, load := range opts.Loads {
		if load <= 0 {
			return nil, fmt.Errorf("workload: non-positive load multiplier %v", load)
		}
		pt, err := saturatePoint(opts, load, machines, now)
		if err != nil {
			return nil, fmt.Errorf("workload: load %v: %w", load, err)
		}
		res.Points = append(res.Points, pt)
	}
	if base := res.Points[0].AdmissionRate; base > 0 {
		for i, pt := range res.Points {
			if pt.AdmissionRate < opts.KneeFraction*base {
				res.KneeIndex = i
				res.KneeLoad = pt.Load
				break
			}
		}
	}
	return res, nil
}

func saturatePoint(opts SaturationOptions, load float64, machines int, now func() time.Time) (SaturationPoint, error) {
	arrivals, err := opts.Spec.ScaleRate(load).Compile(machines)
	if err != nil {
		return SaturationPoint{}, err
	}
	tr := NewTrace(opts.Spec.Name, machines, nil, arrivals)
	sc, events, err := tr.Materialize(opts.Base)
	if err != nil {
		return SaturationPoint{}, err
	}
	eng, err := dynamic.NewEngine(sc, opts.Config)
	if err != nil {
		return SaturationPoint{}, err
	}

	// Replay exactly as dynamic.Simulate does — withhold future items,
	// release per distinct instant — but time each admission epoch and
	// attribute its duration to every request decided in it.
	firstItem := len(opts.Base.Items)
	for _, ev := range events {
		eng.Withhold(ev.Item)
	}
	latencies := make([]time.Duration, 0, NumRequests(arrivals))
	epochs := 0
	epoch := func(at simtime.Instant, items []model.ItemID) error {
		begin := now()
		if _, err := eng.ReplanAt(at); err != nil {
			return err
		}
		d := now().Sub(begin)
		epochs++
		for _, id := range items {
			for range sc.Items[id].Requests {
				latencies = append(latencies, d)
			}
		}
		return nil
	}

	// Epoch 0 decides the base items plus any arrival at the epoch itself.
	var batch []model.ItemID
	for i := range tr.Arrivals {
		if tr.Arrivals[i].At == 0 {
			batch = append(batch, model.ItemID(firstItem+i))
		}
	}
	if err := epoch(0, batch); err != nil {
		return SaturationPoint{}, err
	}
	for i := 0; i < len(events); {
		at := events[i].At
		batch = batch[:0]
		for ; i < len(events) && events[i].At == at; i++ {
			eng.Release(events[i].Item)
			batch = append(batch, events[i].Item)
		}
		if err := epoch(at, batch); err != nil {
			return SaturationPoint{}, err
		}
	}

	sat := eng.Satisfied()
	pt := SaturationPoint{
		Load:     load,
		Arrivals: len(arrivals),
		Requests: NumRequests(arrivals),
		Epochs:   epochs,
	}
	var value float64
	for id := range sat {
		value += opts.Config.Weights.Of(sc.Request(id).Priority)
		if int(id.Item) >= firstItem {
			pt.Admitted++
		}
	}
	if pt.Requests > 0 {
		pt.AdmissionRate = float64(pt.Admitted) / float64(pt.Requests)
	}
	pt.WeightedValue = value
	pt.UpperBound = bounds.Upper(sc, opts.Config.Weights)
	if pt.UpperBound > 0 {
		pt.Efficiency = value / pt.UpperBound
	}
	// Quantiles come from the shared histogram interpolation (the same
	// obs.DurationBuckets the admission service's /metrics gauges use), so
	// analyzer and service report comparable numbers.
	secs := make([]float64, len(latencies))
	for i, d := range latencies {
		secs[i] = d.Seconds()
	}
	snap := obs.SnapshotValues(obs.DurationBuckets, secs)
	pt.P50 = time.Duration(snap.Quantile(0.50) * float64(time.Second))
	pt.P99 = time.Duration(snap.Quantile(0.99) * float64(time.Second))
	return pt, nil
}

// CheckMonotone verifies the admission rate never rises by more than
// tolerance as load grows — the sanity gate the CI saturation smoke
// asserts. Returns a descriptive error naming the violating pair.
func (r *SaturationResult) CheckMonotone(tolerance float64) error {
	for i := 1; i < len(r.Points); i++ {
		prev, cur := r.Points[i-1], r.Points[i]
		if cur.AdmissionRate > prev.AdmissionRate+tolerance {
			return fmt.Errorf(
				"workload: admission rate rose with load: %.3f at load %v -> %.3f at load %v (tolerance %.3f)",
				prev.AdmissionRate, prev.Load, cur.AdmissionRate, cur.Load, tolerance)
		}
	}
	return nil
}
