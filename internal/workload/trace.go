package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"datastaging/internal/simtime"
)

// Trace format versions. Version 1 is the initial format: header plus
// arrivals. Version 2 adds provenance — the generating Spec and per-arrival
// phase labels. The reader accepts every version up to TraceVersion; the
// writer preserves the trace's declared version (NewTrace stamps the
// current one).
const (
	TraceVersion   = 2
	traceVersionV1 = 1
)

// Trace is the canonical replayable workload: a versioned header plus the
// arrival stream, serialized as indented JSON (conventionally a
// .trace.json file). A trace is network-independent except for the machine
// count it was compiled against; replaying it requires a base scenario
// with at least that many machines.
type Trace struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	// Machines is the machine count the arrival stream addresses; every
	// source/destination index is below it.
	Machines int `json:"machines"`
	// Spec, when present, records the generating spec (version ≥ 2;
	// live-captured traces have none).
	Spec     *Spec     `json:"spec,omitempty"`
	Arrivals []Arrival `json:"arrivals"`
}

// TraceErrorKind classifies trace read failures.
type TraceErrorKind string

// The reader's failure classes.
const (
	// TraceBadJSON: the bytes are not the JSON shape the format requires.
	TraceBadJSON TraceErrorKind = "bad-json"
	// TraceBadVersion: the version field is missing, zero, or newer than
	// this reader understands.
	TraceBadVersion TraceErrorKind = "bad-version"
	// TraceBadHeader: a header field is invalid (machine count, spec).
	TraceBadHeader TraceErrorKind = "bad-header"
	// TraceBadArrival: an arrival fails validation (Err.Index names it).
	TraceBadArrival TraceErrorKind = "bad-arrival"
	// TraceUnsorted: arrivals are not in non-decreasing instant order,
	// the canonical (and replay-required) ordering.
	TraceUnsorted TraceErrorKind = "unsorted"
)

// TraceError is the typed failure every trace-reading path returns:
// malformed input is rejected with a classification, never a panic.
type TraceError struct {
	Kind TraceErrorKind
	// Index is the offending arrival (-1 for header-level failures).
	Index int
	Msg   string
}

func (e *TraceError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("workload: %s trace: arrival %d: %s", e.Kind, e.Index, e.Msg)
	}
	return fmt.Sprintf("workload: %s trace: %s", e.Kind, e.Msg)
}

func traceErr(kind TraceErrorKind, index int, format string, args ...any) error {
	return &TraceError{Kind: kind, Index: index, Msg: fmt.Sprintf(format, args...)}
}

// NewTrace bundles a compiled arrival stream into a current-version trace.
func NewTrace(name string, machines int, spec *Spec, arrivals []Arrival) *Trace {
	return &Trace{
		Version:  TraceVersion,
		Name:     name,
		Machines: machines,
		Spec:     spec,
		Arrivals: arrivals,
	}
}

// Validate applies the full format contract; the reader calls it, and a
// writer-bound trace must pass it too.
func (tr *Trace) Validate() error {
	if tr.Version < traceVersionV1 || tr.Version > TraceVersion {
		return traceErr(TraceBadVersion, -1,
			"version %d outside supported [%d, %d]", tr.Version, traceVersionV1, TraceVersion)
	}
	if tr.Machines < 2 {
		return traceErr(TraceBadHeader, -1, "machine count %d below 2", tr.Machines)
	}
	if tr.Spec != nil {
		if tr.Version < 2 {
			return traceErr(TraceBadHeader, -1, "version %d traces cannot carry a spec", tr.Version)
		}
		if err := tr.Spec.Validate(); err != nil {
			return traceErr(TraceBadHeader, -1, "embedded spec: %v", err)
		}
	}
	prev := simtime.Instant(-1)
	for i := range tr.Arrivals {
		a := &tr.Arrivals[i]
		if err := a.validate(tr.Machines); err != nil {
			return traceErr(TraceBadArrival, i, "%v", err)
		}
		if a.At < prev {
			return traceErr(TraceUnsorted, i, "instant %v precedes previous arrival's %v", a.At, prev)
		}
		prev = a.At
	}
	return nil
}

// WriteTrace emits the canonical serialization: indented JSON with a
// trailing newline, byte-stable for a given trace value.
func WriteTrace(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: encode trace: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace parses and validates a trace. Every failure is a *TraceError;
// arbitrary input never panics. Unknown fields are rejected so a
// future-version trace fails loudly instead of replaying half-blind.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr Trace
	if err := dec.Decode(&tr); err != nil {
		return nil, traceErr(TraceBadJSON, -1, "%v", err)
	}
	// Trailing garbage after the document is malformed input, not a trace.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, traceErr(TraceBadJSON, -1, "trailing data after the trace document")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// ReadTraceFile is ReadTrace over a file path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// WriteTraceFile is WriteTrace to a file path.
func WriteTraceFile(path string, tr *Trace) error {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
