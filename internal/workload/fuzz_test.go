package workload

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzTraceRoundTrip feeds arbitrary bytes to the trace reader. The
// contract under fuzz: the reader never panics; every rejection is a typed
// *TraceError; and any accepted input re-emits and re-parses to a
// deeply-equal trace with a byte-stable second serialization (parse →
// emit → parse is a fixed point).
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed with the canonical serializations of the builtins (rate-scaled
	// down so the corpus stays small and mutation throughput high) plus a
	// hand-written v1 document and a few near-misses.
	for _, spec := range Builtins() {
		spec = spec.ScaleRate(0.05)
		arrivals, err := spec.Compile(6)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, NewTrace(spec.Name, 6, &spec, arrivals)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"version":1,"machines":2,"arrivals":[{"at":1,"sizeBytes":5,"sources":[{"machine":0}],"requests":[{"machine":1,"deadline":9}]}]}`))
	f.Add([]byte(`{"version":2,"machines":2,"arrivals":[]}`))
	f.Add([]byte(`{"version":99,"machines":2,"arrivals":[]}`))
	f.Add([]byte(`{"version":2,"machines":1,"arrivals":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`not a trace`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			var te *TraceError
			if !errors.As(err, &te) {
				t.Fatalf("rejection is not a *TraceError: %T %v", err, err)
			}
			if te.Kind == "" {
				t.Fatalf("typed error with empty kind: %v", te)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-emit: %v", err)
		}
		tr2, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-emitted trace rejected: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("parse -> emit -> parse is not a fixed point")
		}
		var out2 bytes.Buffer
		if err := WriteTrace(&out2, tr2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("second serialization is not byte-stable")
		}
	})
}
