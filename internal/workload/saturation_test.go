package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/obs"
)

// counterClock returns a deterministic Now: each call advances 1 ms, so
// every admission epoch "takes" exactly 1 ms regardless of the machine.
func counterClock() func() time.Time {
	var ticks int64
	return func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	}
}

func satConfig() core.Config {
	return core.Config{
		Heuristic: core.FullPathOneDest,
		Criterion: core.C4,
		EU:        core.EUFromLog10(2),
		Weights:   model.Weights1x10x100,
	}
}

func TestSaturateDeterministic(t *testing.T) {
	base, err := gen.NetworkOnly(gen.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := SaturationOptions{
		Spec:   tinySpec(),
		Loads:  []float64{0.5, 2},
		Base:   base,
		Config: satConfig(),
		Now:    counterClock(),
	}
	res1, err := Saturate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Now = counterClock()
	res2, err := Saturate(opts)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := res1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := res2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("saturation artifact not byte-stable under the fake clock")
	}

	for i, pt := range res1.Points {
		if pt.Requests <= 0 || pt.Arrivals <= 0 {
			t.Fatalf("point %d offered no work: %+v", i, pt)
		}
		if pt.Admitted > pt.Requests {
			t.Fatalf("point %d admitted %d of %d requests", i, pt.Admitted, pt.Requests)
		}
		if pt.AdmissionRate < 0 || pt.AdmissionRate > 1 {
			t.Fatalf("point %d admission rate %v", i, pt.AdmissionRate)
		}
		if pt.Efficiency < 0 || pt.Efficiency > 1+1e-9 {
			t.Fatalf("point %d efficiency %v", i, pt.Efficiency)
		}
		if pt.WeightedValue > pt.UpperBound+1e-9 {
			t.Fatalf("point %d value %v exceeds upper bound %v", i, pt.WeightedValue, pt.UpperBound)
		}
		// Under the counter clock every epoch lasts exactly one tick, so
		// the quantiles must equal the shared bucket interpolation of a
		// pure-1ms sample — the same math the service's /metrics gauges use.
		one := obs.SnapshotValues(obs.DurationBuckets, []float64{0.001})
		wantP50 := time.Duration(one.Quantile(0.50) * float64(time.Second))
		wantP99 := time.Duration(one.Quantile(0.99) * float64(time.Second))
		if pt.P50 != wantP50 || pt.P99 != wantP99 {
			t.Fatalf("point %d latencies p50=%v p99=%v, want interpolated %v/%v",
				i, pt.P50, pt.P99, wantP50, wantP99)
		}
		if pt.Epochs <= 0 {
			t.Fatalf("point %d ran no epochs", i)
		}
	}
	if res1.Points[1].Requests <= res1.Points[0].Requests {
		t.Fatal("4x load did not increase offered requests")
	}
}

func TestSaturateFindsKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point saturation sweep is slow in -short mode")
	}
	base, err := gen.NetworkOnly(gen.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Builtin("burst")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Saturate(SaturationOptions{
		Spec:   spec,
		Loads:  []float64{0.5, 4, 8},
		Base:   base,
		Config: satConfig(),
		Now:    counterClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KneeIndex < 0 {
		t.Fatal("burst spec at 8x load did not saturate the paper network")
	}
	if res.KneeLoad != res.Points[res.KneeIndex].Load {
		t.Fatalf("knee load %v does not match knee point %d", res.KneeLoad, res.KneeIndex)
	}
	if err := res.CheckMonotone(0.05); err != nil {
		t.Fatalf("admission rate not monotone non-increasing: %v", err)
	}
}

func TestSaturateRejectsBadOptions(t *testing.T) {
	base, err := gen.NetworkOnly(gen.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	good := SaturationOptions{Spec: tinySpec(), Loads: []float64{1}, Base: base, Config: satConfig()}
	cases := []struct {
		name string
		edit func(*SaturationOptions)
		want string
	}{
		{"no base", func(o *SaturationOptions) { o.Base = nil }, "base scenario"},
		{"no loads", func(o *SaturationOptions) { o.Loads = nil }, "load point"},
		{"bad load", func(o *SaturationOptions) { o.Loads = []float64{-1} }, "non-positive load"},
		{"no weights", func(o *SaturationOptions) { o.Config.Weights = nil }, "weights"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := good
			tc.edit(&o)
			_, err := Saturate(o)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestCheckMonotone(t *testing.T) {
	res := &SaturationResult{Points: []SaturationPoint{
		{Load: 1, AdmissionRate: 1.0},
		{Load: 2, AdmissionRate: 0.97},
		{Load: 4, AdmissionRate: 0.80},
	}}
	if err := res.CheckMonotone(0.05); err != nil {
		t.Fatalf("non-increasing curve rejected: %v", err)
	}
	res.Points[2].AdmissionRate = 0.99 // within nothing: 0.97 -> 0.99 is a 0.02 rise
	if err := res.CheckMonotone(0.05); err != nil {
		t.Fatalf("rise within tolerance rejected: %v", err)
	}
	res.Points[2].AdmissionRate = 1.05
	if err := res.CheckMonotone(0.05); err == nil {
		t.Fatal("rise beyond tolerance accepted")
	}
}
