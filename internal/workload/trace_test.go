package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// marshalUnchecked serializes without WriteTrace's validation, for feeding
// the reader deliberately broken traces.
func marshalUnchecked(tr *Trace) ([]byte, error) {
	return json.Marshal(tr)
}

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace is the fixed trace the byte-stability test pins: the tiny
// spec compiled against 6 machines.
func goldenTrace(t *testing.T) *Trace {
	t.Helper()
	spec := tinySpec()
	arrivals, err := spec.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	return NewTrace(spec.Name, 6, &spec, arrivals)
}

func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenTrace(t)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tiny.trace.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace serialization differs from golden %s (run with -update to regenerate)", golden)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := goldenTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("trace did not round-trip through the canonical serialization")
	}
	var again bytes.Buffer
	if err := WriteTrace(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-serialized trace differs byte-for-byte")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := goldenTrace(t)
	path := filepath.Join(t.TempDir(), "t.trace.json")
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("trace did not round-trip through a file")
	}
}

// TestTraceV1Loads pins version skew: a version-1 trace (no spec, no phase
// labels) written by an older build must still load and replay.
func TestTraceV1Loads(t *testing.T) {
	tr, err := ReadTraceFile(filepath.Join("testdata", "v1.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version != 1 {
		t.Fatalf("v1 fixture has version %d", tr.Version)
	}
	if tr.Spec != nil {
		t.Fatal("v1 traces cannot carry a spec")
	}
	if len(tr.Arrivals) == 0 {
		t.Fatal("v1 fixture has no arrivals")
	}
	for i, a := range tr.Arrivals {
		if a.Phase != "" {
			t.Fatalf("v1 arrival %d carries a phase label %q", i, a.Phase)
		}
	}
}

func TestReadTraceTypedErrors(t *testing.T) {
	valid := func() *Trace { return goldenTrace(t) }
	cases := []struct {
		name string
		raw  string // used verbatim when non-empty
		edit func(*Trace)
		want TraceErrorKind
	}{
		{name: "not json", raw: "not json at all", want: TraceBadJSON},
		{name: "wrong shape", raw: `[1,2,3]`, want: TraceBadJSON},
		{name: "unknown field", raw: `{"version":2,"machines":6,"arrivals":[],"futureField":1}`, want: TraceBadJSON},
		{name: "trailing data", raw: `{"version":2,"machines":6,"arrivals":[]} {"more":true}`, want: TraceBadJSON},
		{name: "missing version", raw: `{"machines":6,"arrivals":[]}`, want: TraceBadVersion},
		{name: "future version", edit: func(tr *Trace) { tr.Version = TraceVersion + 1 }, want: TraceBadVersion},
		{name: "one machine", edit: func(tr *Trace) { tr.Machines = 1 }, want: TraceBadHeader},
		{name: "v1 with spec", edit: func(tr *Trace) { tr.Version = 1 }, want: TraceBadHeader},
		{name: "bad spec", edit: func(tr *Trace) { tr.Spec.Phases = nil }, want: TraceBadHeader},
		{name: "bad arrival", edit: func(tr *Trace) { tr.Arrivals[0].SizeBytes = 0 }, want: TraceBadArrival},
		{name: "machine out of range", edit: func(tr *Trace) { tr.Machines = 3 }, want: TraceBadArrival},
		{name: "unsorted", edit: func(tr *Trace) {
			tr.Arrivals[0], tr.Arrivals[1] = tr.Arrivals[1], tr.Arrivals[0]
		}, want: TraceUnsorted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := []byte(tc.raw)
			if tc.raw == "" {
				tr := valid()
				tc.edit(tr)
				// Serialize without WriteTrace's validation so the reader is
				// the one that must reject it.
				b, err := marshalUnchecked(tr)
				if err != nil {
					t.Fatal(err)
				}
				raw = b
			}
			_, err := ReadTrace(bytes.NewReader(raw))
			var te *TraceError
			if !errors.As(err, &te) {
				t.Fatalf("want *TraceError, got %v", err)
			}
			if te.Kind != tc.want {
				t.Fatalf("want kind %s, got %s (%v)", tc.want, te.Kind, te)
			}
		})
	}
}

func TestWriteTraceRejectsInvalid(t *testing.T) {
	tr := goldenTrace(t)
	tr.Machines = 0
	var buf bytes.Buffer
	err := WriteTrace(&buf, tr)
	var te *TraceError
	if !errors.As(err, &te) || te.Kind != TraceBadHeader {
		t.Fatalf("want bad-header *TraceError, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatal("invalid trace still produced output")
	}
}

func TestTraceErrorMessage(t *testing.T) {
	header := &TraceError{Kind: TraceBadHeader, Index: -1, Msg: "x"}
	if s := header.Error(); !strings.Contains(s, "bad-header") || strings.Contains(s, "arrival") {
		t.Fatalf("header error message %q", s)
	}
	arrival := &TraceError{Kind: TraceBadArrival, Index: 3, Msg: "x"}
	if s := arrival.Error(); !strings.Contains(s, "arrival 3") {
		t.Fatalf("arrival error message %q", s)
	}
}
