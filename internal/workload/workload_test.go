package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"datastaging/internal/gen"
	"datastaging/internal/simtime"
)

// tinySpec is a small two-phase spec used across the tests: a calm hour
// and a busy hour, compiled against a handful of machines.
func tinySpec() Spec {
	return Spec{
		Name: "tiny",
		Seed: 7,
		Phases: []Phase{
			{Name: "calm", Duration: time.Hour, PerHour: 3,
				PriorityWeights: []float64{1, 1, 1},
				SizeMinBytes:    1 << 20, SizeMaxBytes: 8 << 20,
				SlackMin: time.Hour, SlackMax: 2 * time.Hour},
			{Name: "busy", Duration: time.Hour, PerHour: 12,
				PriorityWeights: []float64{0, 1, 2},
				SizeMinBytes:    1 << 20, SizeMaxBytes: 4 << 20,
				SlackMin: 30 * time.Minute, SlackMax: time.Hour,
				MaxSources: 2, MaxDests: 2},
		},
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec := tinySpec()
	a, err := spec.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec and machine count compiled to different streams")
	}
	if len(a) == 0 {
		t.Fatal("tiny spec compiled to zero arrivals")
	}
	var buf1, buf2 bytes.Buffer
	if err := WriteTrace(&buf1, NewTrace(spec.Name, 6, &spec, a)); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&buf2, NewTrace(spec.Name, 6, &spec, b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("serialized traces differ for identical compilations")
	}
}

func TestCompilePhaseIsolation(t *testing.T) {
	spec := tinySpec()
	base, err := spec.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	// Raising the second phase's rate must not reshuffle the first phase's
	// draws: each phase has its own sub-stream.
	edited := spec
	edited.Phases = append([]Phase(nil), spec.Phases...)
	edited.Phases[1].PerHour *= 3
	got, err := edited.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	strip := func(arrivals []Arrival, phase string) []Arrival {
		var out []Arrival
		for _, a := range arrivals {
			if a.Phase == phase {
				a.Name = "" // names depend on the global sort position
				out = append(out, a)
			}
		}
		return out
	}
	if !reflect.DeepEqual(strip(base, "calm"), strip(got, "calm")) {
		t.Fatal("editing phase 2 changed phase 1's arrivals")
	}
}

func TestCompileSortedAndInWindow(t *testing.T) {
	spec := tinySpec()
	arrivals, err := spec.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	total := spec.Duration()
	for i, a := range arrivals {
		if i > 0 && a.At < arrivals[i-1].At {
			t.Fatalf("arrival %d at %v precedes arrival %d", i, a.At, i-1)
		}
		if a.At <= 0 || a.At >= simtime.At(total) {
			t.Fatalf("arrival %d instant %v outside (0, %v)", i, a.At, total)
		}
		if a.Phase != "calm" && a.Phase != "busy" {
			t.Fatalf("arrival %d has unknown phase %q", i, a.Phase)
		}
	}
}

func TestScaleRateScalesArrivals(t *testing.T) {
	spec := tinySpec()
	base, err := spec.Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := spec.ScaleRate(4).Compile(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaled) < 2*len(base) {
		t.Fatalf("4x rate produced %d arrivals vs %d at 1x; want at least double", len(scaled), len(base))
	}
	// ScaleRate must not mutate the receiver.
	if spec.Phases[0].PerHour != 3 {
		t.Fatalf("ScaleRate mutated the original spec: rate now %v", spec.Phases[0].PerHour)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"bad duration", func(s *Spec) { s.Phases[0].Duration = 0 }, "duration"},
		{"negative rate", func(s *Spec) { s.Phases[0].PerHour = -1 }, "bad rate"},
		{"bad sizes", func(s *Spec) { s.Phases[0].SizeMinBytes = 0 }, "size range"},
		{"bad slack", func(s *Spec) { s.Phases[0].SlackMax = s.Phases[0].SlackMin - 1 }, "slack range"},
		{"no weights", func(s *Spec) { s.Phases[0].PriorityWeights = nil }, "priority weights"},
		{"zero weights", func(s *Spec) { s.Phases[0].PriorityWeights = []float64{0, 0} }, "sum to zero"},
		{"negative weight", func(s *Spec) { s.Phases[0].PriorityWeights = []float64{-1, 2} }, "bad priority weight"},
		{"negative fan", func(s *Spec) { s.Phases[0].MaxDests = -1 }, "fan bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tinySpec()
			tc.edit(&spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	good := tinySpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestCompileNeedsTwoMachines(t *testing.T) {
	spec := tinySpec()
	if _, err := spec.Compile(1); err == nil {
		t.Fatal("compiling against one machine should fail")
	}
}

func TestBuiltinsCompile(t *testing.T) {
	for _, spec := range Builtins() {
		arrivals, err := spec.Compile(10)
		if err != nil {
			t.Fatalf("builtin %s: %v", spec.Name, err)
		}
		if len(arrivals) == 0 {
			t.Fatalf("builtin %s compiled to zero arrivals", spec.Name)
		}
		if spec.Duration() > 24*time.Hour {
			t.Fatalf("builtin %s spans %v, beyond the generated networks' day", spec.Name, spec.Duration())
		}
	}
	if _, err := Builtin("no-such-spec"); err == nil {
		t.Fatal("unknown builtin name should fail")
	}
	names := BuiltinNames()
	if len(names) != len(Builtins()) {
		t.Fatalf("BuiltinNames lists %d of %d specs", len(names), len(Builtins()))
	}
}

func TestMaterialize(t *testing.T) {
	base, err := gen.NetworkOnly(gen.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec()
	arrivals, err := spec.Compile(base.Network.NumMachines())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(spec.Name, base.Network.NumMachines(), &spec, arrivals)
	sc, events, err := tr.Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Items) != len(arrivals) {
		t.Fatalf("materialized %d items from %d arrivals", len(sc.Items), len(arrivals))
	}
	if len(base.Items) != 0 {
		t.Fatal("materialize mutated the base scenario")
	}
	// Every arrival strictly after the epoch needs a release event.
	want := 0
	for _, a := range arrivals {
		if a.At > 0 {
			want++
		}
	}
	if len(events) != want {
		t.Fatalf("%d release events for %d post-epoch arrivals", len(events), want)
	}
	for i, ev := range events {
		if int(ev.Item) < 0 || int(ev.Item) >= len(sc.Items) {
			t.Fatalf("event %d releases out-of-range item %d", i, ev.Item)
		}
		if ev.At != sc.Items[ev.Item].Sources[0].Available {
			t.Fatalf("event %d at %v but item available at %v", i, ev.At, sc.Items[ev.Item].Sources[0].Available)
		}
	}

	// A trace can demand more machines than the base provides.
	small := *base
	tooBig := NewTrace("big", base.Network.NumMachines()+1, nil, nil)
	if _, _, err := tooBig.Materialize(&small); err == nil {
		t.Fatal("materializing a trace against a too-small network should fail")
	}
}
