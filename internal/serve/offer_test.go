package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"datastaging/internal/obs"
	"datastaging/internal/testnet"
)

// newOfferEngine: two machines, one generous always-open link.
func newOfferEngine(t *testing.T) *Engine {
	t.Helper()
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 1e6)
	eng, err := New(b.Build("offer"), Options{
		Config:       cfgC4(obs.New()),
		VirtualClock: true,
		MaxBatch:     1,
		QueueCap:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestProposeCommit: a feasible offer reports admission, a positive
// objective delta, and a completion instant; committing it registers a
// live, decided ticket backed by the committed schedule.
func TestProposeCommit(t *testing.T) {
	eng := newOfferEngine(t)
	defer eng.Drain(context.Background())

	p, err := eng.Propose(lineSubmission(2*time.Hour, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Admitted() {
		t.Fatal("feasible proposal not admitted")
	}
	if p.ObjectiveDelta() <= 0 {
		t.Fatalf("ObjectiveDelta = %v, want > 0", p.ObjectiveDelta())
	}
	if p.At() != eng.Now() {
		t.Fatalf("At = %v, engine now %v", p.At(), eng.Now())
	}
	if !strings.HasPrefix(p.TicketID(), "r-") {
		t.Fatalf("TicketID = %q", p.TicketID())
	}
	cmp, ok := p.Completion(0)
	if !ok || cmp <= 0 {
		t.Fatalf("Completion(0) = %v, %v", cmp, ok)
	}

	tk := p.Commit()
	select {
	case <-tk.Done():
	default:
		t.Fatal("committed ticket not decided")
	}
	v := tk.View()
	if v.Status != StatusAdmitted || v.Requests[0].Completion.Instant() != cmp {
		t.Fatalf("committed view %+v, want admitted at %v", v, cmp)
	}
	if sv := eng.Schedule(); sv.Satisfied != 1 || sv.Items != 1 {
		t.Fatalf("schedule after commit: %+v", sv)
	}
	if _, ok := eng.TicketView(tk.ID()); !ok {
		t.Fatal("committed ticket not registered")
	}
}

// TestProposeAbort: aborting an offer restores the world bit-identically —
// same transfers, same objective, same item count — and the engine keeps
// serving; an unsatisfiable offer reports !Admitted so the coordinator can
// abort it.
func TestProposeAbort(t *testing.T) {
	eng := newOfferEngine(t)
	defer eng.Drain(context.Background())

	// Commit a baseline so abort has real state to preserve.
	p0, err := eng.Propose(lineSubmission(2*time.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	p0.Commit()
	before := eng.Schedule()

	p, err := eng.Propose(lineSubmission(3*time.Hour, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Admitted() {
		t.Fatal("second offer not admitted")
	}
	p.Abort()
	after := eng.Schedule()
	if !reflect.DeepEqual(before.Transfers, after.Transfers) ||
		before.WeightedValue != after.WeightedValue || before.Items != after.Items {
		t.Fatalf("abort did not restore the world: before %+v after %+v", before, after)
	}

	// Impossible deadline: the offer plans, reports no admission, aborts.
	pi, err := eng.Propose(lineSubmission(time.Nanosecond, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pi.Admitted() {
		t.Fatal("impossible offer admitted")
	}
	if _, ok := pi.Completion(0); ok {
		t.Fatal("impossible offer has a completion")
	}
	pi.Abort()

	// The engine still serves the normal path after aborted offers.
	tk, err := eng.Submit(lineSubmission(2*time.Hour, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	<-tk.Done()
	if tk.View().Status != StatusAdmitted {
		t.Fatalf("post-abort submit: %+v", tk.View())
	}

	// Validation errors and draining engines refuse offers up front.
	if _, err := eng.Propose(Submission{}); err == nil {
		t.Fatal("empty submission proposed")
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Propose(lineSubmission(time.Hour, 0)); !errors.Is(err, ErrDraining) {
		t.Fatalf("propose on drained engine: %v", err)
	}
}
