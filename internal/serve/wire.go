package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Instant is a simtime.Instant that accepts two JSON encodings: a number
// (nanoseconds since the scheduling epoch, the repo's native encoding) or a
// Go duration string like "90m" (the curl-friendly form). It always
// marshals as a number, matching scenario JSON.
type Instant simtime.Instant

// Instant converts to the simulator's time type.
func (t Instant) Instant() simtime.Instant { return simtime.Instant(t) }

// MarshalJSON emits nanoseconds since the epoch.
func (t Instant) MarshalJSON() ([]byte, error) {
	return json.Marshal(int64(t))
}

// UnmarshalJSON accepts either a nanosecond count or a duration string.
func (t *Instant) UnmarshalJSON(b []byte) error {
	var ns int64
	if err := json.Unmarshal(b, &ns); err == nil {
		*t = Instant(ns)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("serve: instant must be a nanosecond count or a duration string: %s", b)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("serve: bad duration %q: %w", s, err)
	}
	*t = Instant(d)
	return nil
}

// SourceSpec is one initial location of a submitted item.
type SourceSpec struct {
	Machine int `json:"machine"`
	// Available is when the copy exists there (default: the epoch).
	Available Instant `json:"available,omitempty"`
}

// RequestSpec is one deadline-bearing request of a submitted item.
type RequestSpec struct {
	Machine  int     `json:"machine"`
	Deadline Instant `json:"deadline"`
	Priority int     `json:"priority"`
}

// Submission is one client request to stage a data item: the item's size
// and sources plus every destination that wants it. It is both the POST
// /v1/requests body and the in-process Submit argument.
type Submission struct {
	Name      string        `json:"name,omitempty"`
	SizeBytes int64         `json:"sizeBytes"`
	Sources   []SourceSpec  `json:"sources"`
	Requests  []RequestSpec `json:"requests"`
}

// item converts the submission into the scenario item it becomes at
// admission time.
func (s Submission) item(id model.ItemID) model.Item {
	it := model.Item{
		ID:        id,
		Name:      s.Name,
		SizeBytes: s.SizeBytes,
	}
	if it.Name == "" {
		it.Name = fmt.Sprintf("submit-%d", id)
	}
	for _, src := range s.Sources {
		it.Sources = append(it.Sources, model.Source{
			Machine:   model.MachineID(src.Machine),
			Available: src.Available.Instant(),
		})
	}
	for _, rq := range s.Requests {
		it.Requests = append(it.Requests, model.Request{
			Machine:  model.MachineID(rq.Machine),
			Deadline: rq.Deadline.Instant(),
			Priority: model.Priority(rq.Priority),
		})
	}
	return it
}

// Item converts the submission into the scenario item it becomes at
// admission time (the sharded front-end builds its global scenario from
// these).
func (s Submission) Item(id model.ItemID) model.Item { return s.item(id) }

// Validate rejects malformed submissions against a network of the given
// size, mirroring scenario.Validate's per-item invariants. Engines run it
// on Submit; the sharded front-end runs it once against the global network
// before classifying the submission.
func (s Submission) Validate(numMachines int) error { return s.validate(numMachines) }

// validate rejects malformed submissions before they enter the intake
// queue, mirroring scenario.Validate's per-item invariants.
func (s Submission) validate(numMachines int) error {
	if s.SizeBytes <= 0 {
		return fmt.Errorf("serve: non-positive item size %d", s.SizeBytes)
	}
	if len(s.Sources) == 0 {
		return fmt.Errorf("serve: submission has no sources")
	}
	if len(s.Requests) == 0 {
		return fmt.Errorf("serve: submission has no requests")
	}
	srcs := make(map[int]bool, len(s.Sources))
	for _, src := range s.Sources {
		if src.Machine < 0 || src.Machine >= numMachines {
			return fmt.Errorf("serve: source machine %d out of range [0,%d)", src.Machine, numMachines)
		}
		if srcs[src.Machine] {
			return fmt.Errorf("serve: duplicate source machine %d", src.Machine)
		}
		srcs[src.Machine] = true
	}
	dests := make(map[int]bool, len(s.Requests))
	for _, rq := range s.Requests {
		if rq.Machine < 0 || rq.Machine >= numMachines {
			return fmt.Errorf("serve: request machine %d out of range [0,%d)", rq.Machine, numMachines)
		}
		if srcs[rq.Machine] {
			return fmt.Errorf("serve: request machine %d is also a source", rq.Machine)
		}
		if dests[rq.Machine] {
			return fmt.Errorf("serve: duplicate request machine %d", rq.Machine)
		}
		dests[rq.Machine] = true
		if rq.Priority < 0 {
			return fmt.Errorf("serve: negative priority %d", rq.Priority)
		}
		if rq.Deadline <= 0 {
			return fmt.Errorf("serve: deadline %v not after the epoch", rq.Deadline.Instant())
		}
	}
	return nil
}

// Status is the lifecycle state of a submission or of one of its requests.
type Status string

// The admission verdicts.
const (
	// StatusQueued: accepted into the intake queue, awaiting its admission
	// epoch.
	StatusQueued Status = "queued"
	// StatusAdmitted: the epoch replan committed transfers that deliver the
	// item by the request's deadline.
	StatusAdmitted Status = "admitted"
	// StatusRejected: no feasible schedule satisfies the request alongside
	// the committed load.
	StatusRejected Status = "rejected"
	// StatusPreempted: a previously admitted request lost its delivery to a
	// higher-priority arrival (only with Options.Preemption).
	StatusPreempted Status = "preempted"
)

// RequestVerdict is the admission decision for one request of a submission.
type RequestVerdict struct {
	// Request is the scenario-level id the request was assigned.
	Request model.RequestID `json:"request"`
	Machine int             `json:"machine"`
	Status  Status          `json:"status"`
	// Deadline echoes the request; Completion is the committed delivery
	// instant (admitted only).
	Deadline   Instant `json:"deadline"`
	Completion Instant `json:"completion,omitempty"`
	// Reason classifies a rejection (explain's verdict: starved-by-contention,
	// infeasible-even-alone, delivered-late).
	Reason string `json:"reason,omitempty"`
	// BlamedLink is the most-obstructed link of a starved request's ideal
	// path (-1 when no single link is to blame).
	BlamedLink int `json:"blamedLink,omitempty"`
}

// TicketView is the externally visible state of one submission: the JSON
// document of GET /v1/requests/{id}.
type TicketView struct {
	ID string `json:"id"`
	// Status aggregates the per-request verdicts: admitted if any request
	// is admitted, preempted if an admit was displaced, rejected otherwise;
	// queued before the admission epoch ran.
	Status Status `json:"status"`
	// Item is the scenario item id assigned at admission (-1 while queued).
	Item int `json:"item"`
	// Epoch is the instant of the admission epoch that decided the ticket.
	Epoch    Instant          `json:"epoch,omitempty"`
	Arrived  Instant          `json:"arrived"`
	Requests []RequestVerdict `json:"requests,omitempty"`
	// Route is the item's committed transfer chain (admitted tickets).
	Route []state.Transfer `json:"route,omitempty"`
}

// TraceView is the audit trail of one submission: the JSON document of GET
// /v1/requests/{id}/trace. Records is empty for a ticket still awaiting its
// admission epoch.
type TraceView struct {
	ID      string             `json:"id"`
	Records []lifecycle.Record `json:"records"`
}

// ScheduleView is the committed-schedule snapshot served at GET
// /v1/schedule.
type ScheduleView struct {
	Now           Instant          `json:"now"`
	Epochs        int              `json:"epochs"`
	Items         int              `json:"items"`
	TotalRequests int              `json:"totalRequests"`
	Satisfied     int              `json:"satisfied"`
	WeightedValue float64          `json:"weightedValue"`
	Transfers     []state.Transfer `json:"transfers"`
}

// Info is the service description served at GET /v1/info: what a load
// generator needs to synthesize valid submissions, plus live queue state.
// A sharded service (stagesvc -shards) additionally reports the partition:
// one ShardInfo per region plus the cut-link summary.
type Info struct {
	Scenario  string  `json:"scenario"`
	Machines  int     `json:"machines"`
	Links     int     `json:"links"`
	Items     int     `json:"items"`
	Horizon   Instant `json:"horizon"`
	Now       Instant `json:"now"`
	Queue     int     `json:"queue"`
	QueueCap  int     `json:"queueCap"`
	MaxBatch  int     `json:"maxBatch"`
	Virtual   bool    `json:"virtualClock"`
	Scheduler string  `json:"scheduler"`
	Draining  bool    `json:"draining"`
	// Shards describes each admission region of a sharded service, in
	// shard order; absent on a single-engine service.
	Shards []ShardInfo `json:"shards,omitempty"`
	// CutLinks counts the virtual links the partition severed (links whose
	// endpoints live in different shards); those carry only coordinator-
	// committed cross-shard transfers.
	CutLinks int `json:"cutLinks,omitempty"`
}

// ShardInfo summarizes one admission shard of a sharded service: its
// region size, its projected sub-network, and its live epoch/queue state.
type ShardInfo struct {
	Shard    int `json:"shard"`
	Machines int `json:"machines"`
	Links    int `json:"links"`
	Items    int `json:"items"`
	Epochs   int `json:"epochs"`
	Queue    int `json:"queue"`
}
