// The bursty end-to-end equivalence contract, in an external test package:
// it exercises only the exported surface — workload compilation, trace
// serialization, ReplayTrace over a real HTTP server — exactly as the
// stagesvc/stageload binaries do.
package serve_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"datastaging/internal/core"
	"datastaging/internal/dynamic"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/serve"
	"datastaging/internal/validator"
	"datastaging/internal/workload"
)

// replayNet is the shared base network for the bursty equivalence tests: a
// small instance of the paper's generator, request book empty.
func replayNet(t testing.TB) *gen.Params {
	t.Helper()
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	return &p
}

// TestHTTPEquivalenceBursty extends the equivalence contract to every
// built-in multi-phase workload: each spec, serialized through the
// canonical trace format and replayed over HTTP in virtual-clock mode,
// must produce transfers and a weighted objective bit-identical to
// dynamic.Simulate replaying the same trace offline — under replan
// parallelism 1 and 4.
func TestHTTPEquivalenceBursty(t *testing.T) {
	params := replayNet(t)
	base, err := gen.NetworkOnly(*params, 9)
	if err != nil {
		t.Fatal(err)
	}
	machines := base.Network.NumMachines()

	for _, spec := range workload.Builtins() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			arrivals, err := spec.Compile(machines)
			if err != nil {
				t.Fatal(err)
			}
			tr := workload.NewTrace(spec.Name, machines, &spec, arrivals)

			// Round-trip through the canonical serialization first: the replayed
			// artifact is the file format, not the in-memory struct.
			var buf bytes.Buffer
			if err := workload.WriteTrace(&buf, tr); err != nil {
				t.Fatal(err)
			}
			tr, err = workload.ReadTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			sc, events, err := tr.Materialize(base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{
				Heuristic: core.FullPathOneDest,
				Criterion: core.C4,
				EU:        core.EUFromLog10(2),
				Weights:   model.Weights1x10x100,
			}

			// Offline reference, then the same replay with parallel replanning:
			// parallelism must never change the schedule.
			want, err := dynamic.Simulate(sc, cfg, events)
			if err != nil {
				t.Fatal(err)
			}
			cfg4 := cfg
			cfg4.Parallelism = 4
			want4, err := dynamic.Simulate(sc, cfg4, events)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Transfers) != len(want4.Transfers) {
				t.Fatalf("parallelism changed the transfer count: %d vs %d",
					len(want.Transfers), len(want4.Transfers))
			}
			for i := range want.Transfers {
				if want.Transfers[i] != want4.Transfers[i] {
					t.Fatalf("transfer %d differs across parallelism: %+v vs %+v",
						i, want.Transfers[i], want4.Transfers[i])
				}
			}
			var wantValue float64
			for id := range want.Satisfied {
				wantValue += cfg.Weights.Of(sc.Request(id).Priority)
			}

			// Online replay over a real HTTP server.
			empty := *base
			eng, err := serve.New(&empty, serve.Options{
				Config:       cfg,
				VirtualClock: true,
				MaxBatch:     len(arrivals) + 1, // flush only on Advance
				QueueCap:     len(arrivals) + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(eng.Handler())
			defer srv.Close()
			c := &serve.Client{BaseURL: srv.URL}
			ctx := context.Background()

			rep, err := serve.ReplayTrace(ctx, c, tr)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Admitted+rep.Rejected+rep.Preempted != len(arrivals) {
				t.Fatalf("replay decided %d of %d arrivals",
					rep.Admitted+rep.Rejected+rep.Preempted, len(arrivals))
			}

			got, err := c.Schedule(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got.WeightedValue != wantValue {
				t.Errorf("weighted value %v over HTTP, %v from Simulate", got.WeightedValue, wantValue)
			}
			if got.Satisfied != len(want.Satisfied) {
				t.Errorf("satisfied %d over HTTP, %d from Simulate", got.Satisfied, len(want.Satisfied))
			}
			if len(got.Transfers) != len(want.Transfers) {
				t.Fatalf("transfers %d over HTTP, %d from Simulate", len(got.Transfers), len(want.Transfers))
			}
			for i := range want.Transfers {
				if got.Transfers[i] != want.Transfers[i] {
					t.Fatalf("transfer %d: %+v over HTTP, %+v from Simulate",
						i, got.Transfers[i], want.Transfers[i])
				}
			}
			if err := validator.Validate(eng.Scenario(), got.Transfers); err != nil {
				t.Errorf("service schedule failed independent validation: %v", err)
			}
		})
	}
}

// TestReplayTraceGuards pins the preconditions that keep a replay
// bit-identical: a wall-clock service is rejected, as is a batching
// configuration that could split one arrival instant across epochs.
func TestReplayTraceGuards(t *testing.T) {
	base, err := gen.NetworkOnly(*replayNet(t), 9)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{Name: "g", Seed: 3, Phases: []workload.Phase{{
		Duration: 2 * 3600e9, PerHour: 6, PriorityWeights: []float64{1},
		SizeMinBytes: 1 << 20, SizeMaxBytes: 1 << 20,
		SlackMin: 3600e9, SlackMax: 2 * 3600e9,
	}}}
	arrivals, err := spec.Compile(base.Network.NumMachines())
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.NewTrace(spec.Name, base.Network.NumMachines(), &spec, arrivals)
	cfg := core.Config{Heuristic: core.FullPathOneDest, Criterion: core.C4,
		EU: core.EUFromLog10(2), Weights: model.Weights1x10x100}
	ctx := context.Background()

	// Wall-clock service: refused.
	empty := *base
	wall, err := serve.New(&empty, serve.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wall.Handler())
	defer srv.Close()
	if _, err := serve.ReplayTrace(ctx, &serve.Client{BaseURL: srv.URL}, tr); err == nil {
		t.Fatal("replay against a wall-clock service should fail")
	}

	// Virtual clock but a max-batch small enough to split an epoch: refused.
	empty2 := *base
	tiny, err := serve.New(&empty2, serve.Options{Config: cfg, VirtualClock: true, MaxBatch: 1, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(tiny.Handler())
	defer srv2.Close()
	if _, err := serve.ReplayTrace(ctx, &serve.Client{BaseURL: srv2.URL}, tr); err == nil {
		t.Fatal("replay with max-batch 1 should fail rather than split an epoch")
	}
}
