package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
	"datastaging/internal/validator"
)

// TestSubmitHammer slams Submit from 16 goroutines in wall-clock mode —
// the configuration the race detector cares about, since epochs flush
// concurrently with intake — then drains and checks the books: every
// ticket resolved, metrics consistent with verdicts, and the final
// schedule clean under the independent validator with the scheduler's own
// paranoid self-checks enabled throughout.
func TestSubmitHammer(t *testing.T) {
	const (
		goroutines = 16
		perG       = 8
	)
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<30)
	for i := 0; i < 3; i++ {
		b.Link(ms[i], ms[i+1], 0, 24*time.Hour, 1<<20)
		b.Link(ms[i+1], ms[i], 0, 24*time.Hour, 1<<20)
	}
	sc := b.Build("hammer")

	o := obs.New()
	cfg := cfgC4(o)
	cfg.Paranoid = true
	eng, err := New(sc, Options{
		Config:    cfg,
		MaxBatch:  12,
		MaxWait:   time.Millisecond,
		QueueCap:  64,
		TimeScale: 1, // the whole run fits in the first simulated seconds
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		tickets []*Ticket
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := g % 3 // machines 0..2; destination 3 is never a source
			for i := 0; i < perG; i++ {
				sub := Submission{
					Name:      fmt.Sprintf("g%d-%d", g, i),
					SizeBytes: 64 << 10,
					Sources:   []SourceSpec{{Machine: src}},
					Requests: []RequestSpec{{
						Machine:  3,
						Deadline: Instant(simtime.At(20 * time.Hour)),
						Priority: (g + i) % 3,
					}},
				}
				for {
					tk, err := eng.Submit(sub)
					if err == ErrOverloaded {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("g%d submit %d: %v", g, i, err)
						return
					}
					mu.Lock()
					tickets = append(tickets, tk)
					mu.Unlock()
					break
				}
			}
		}(g)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if len(tickets) != goroutines*perG {
		t.Fatalf("placed %d submissions, want %d", len(tickets), goroutines*perG)
	}
	admitted := 0
	for _, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %s unresolved after drain", tk.ID())
		}
		v := tk.View()
		switch v.Status {
		case StatusAdmitted:
			admitted++
		case StatusQueued:
			t.Errorf("ticket %s still queued", tk.ID())
		}
	}
	if admitted == 0 {
		t.Error("hammer admitted nothing on an uncongested network")
	}
	if n := o.Counter("serve.admitted_total").Value(); n != int64(admitted) {
		t.Errorf("serve.admitted_total = %d, but %d tickets are admitted", n, admitted)
	}
	if epochs := eng.Schedule().Epochs; int64(epochs) != o.Counter("serve.epochs_total").Value() {
		t.Errorf("epoch count mismatch: view %d vs counter %d",
			epochs, o.Counter("serve.epochs_total").Value())
	}

	sv := eng.Schedule()
	if err := validator.Validate(eng.Scenario(), sv.Transfers); err != nil {
		t.Errorf("hammered schedule failed independent validation: %v", err)
	}
	// The weighted objective must equal the sum over admitted verdicts.
	var want float64
	for _, tk := range tickets {
		for _, rv := range tk.View().Requests {
			if rv.Status == StatusAdmitted {
				want += model.Weights1x10x100.Of(model.Priority(
					eng.Scenario().Items[tk.View().Item].Requests[rv.Request.Index].Priority))
			}
		}
	}
	if sv.WeightedValue != want {
		t.Errorf("weighted value %v, verdicts sum to %v", sv.WeightedValue, want)
	}
}
