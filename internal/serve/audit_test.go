package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/simtime"
)

// auditedEngine builds a virtual-clock engine over the narrow network with
// auditing on, streaming to sink.
func auditedEngine(t *testing.T, o *obs.Obs, sink *bytes.Buffer, opts Options) *Engine {
	t.Helper()
	opts.Config = cfgC4(o)
	opts.VirtualClock = true
	opts.Audit = lifecycle.New(lifecycle.Options{Obs: o, Sink: sink})
	eng, err := New(narrowNet(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestAuditTraceVerdicts drives one engine through every verdict shape —
// admitted, rejected-with-blame, preempted (a revision), and a 429
// backpressure shed — and checks each shape's audit trail over HTTP.
func TestAuditTraceVerdicts(t *testing.T) {
	o := obs.New()
	var sink bytes.Buffer
	eng := auditedEngine(t, o, &sink, Options{
		MaxBatch:   100,
		QueueCap:   2,
		Preemption: true,
	})

	// Epoch 30s: r-0 (low) books the link's only feasible slot, then r-1
	// (high) displaces it — r-0's decision is later revised to preempted.
	if _, err := eng.Submit(lineSubmission(61500*time.Millisecond, int(model.Low))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Advance(simtime.At(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(lineSubmission(61500*time.Millisecond, int(model.High))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	// r-2 wants the same slot once it is gone: rejected with an explain
	// reason.
	if _, err := eng.Submit(lineSubmission(61500*time.Millisecond, int(model.Low))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fill the intake queue and shed one submission at the door.
	for i := 0; i < 2; i++ {
		if _, err := eng.Submit(lineSubmission(10*time.Minute, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Submit(lineSubmission(10*time.Minute, 0)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull queue: got %v, want ErrOverloaded", err)
	}

	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Preempted: a decision record then a revision carrying the objective
	// delta of the displacement.
	tr, err := c.Trace(ctx, "r-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("r-0 trace has %d records, want decision+revision: %+v", len(tr.Records), tr.Records)
	}
	dec, rev := tr.Records[0], tr.Records[1]
	if dec.Kind != lifecycle.KindDecision || dec.Status != string(StatusAdmitted) {
		t.Errorf("r-0 first record = %s/%s, want decision/admitted", dec.Kind, dec.Status)
	}
	if rev.Kind != lifecycle.KindRevision || rev.Status != string(StatusPreempted) {
		t.Errorf("r-0 second record = %s/%s, want revision/preempted", rev.Kind, rev.Status)
	}
	if rev.ObjectiveDelta <= 0 {
		t.Errorf("preemption revision has objective delta %v, want > 0", rev.ObjectiveDelta)
	}
	if rev.Requests[0].Reason == "" {
		t.Error("preempted outcome has no reason")
	}
	if dec.Epoch != 1 || rev.Epoch != 2 {
		t.Errorf("r-0 epochs = %d then %d, want 1 then 2", dec.Epoch, rev.Epoch)
	}

	// Admitted: completion instant committed, full lifecycle timeline.
	tr, err = c.Trace(ctx, "r-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || tr.Records[0].Status != string(StatusAdmitted) {
		t.Fatalf("r-1 trace = %+v, want one admitted decision", tr.Records)
	}
	adm := tr.Records[0]
	if adm.Requests[0].Completion <= 0 {
		t.Error("admitted outcome has no completion instant")
	}
	wantStages := []string{
		lifecycle.StageReceived, lifecycle.StageEnqueued, lifecycle.StageEpochStart,
		lifecycle.StagePlanned, lifecycle.StageDecided, lifecycle.StageSettled,
	}
	if len(adm.Timeline) != len(wantStages) {
		t.Fatalf("timeline %+v, want stages %v", adm.Timeline, wantStages)
	}
	for i, hop := range adm.Timeline {
		if hop.Stage != wantStages[i] {
			t.Errorf("timeline[%d] = %q, want %q", i, hop.Stage, wantStages[i])
		}
	}
	if adm.Timeline[0].V != int64(simtime.At(30*time.Second)) || adm.EpochAt != adm.Timeline[2].V {
		t.Errorf("timeline instants wrong: %+v", adm.Timeline)
	}
	// Advance flushed r-0 before the clock moved, so r-1 flushed alone.
	if adm.BatchSize != 1 || adm.QueueDepth != 0 {
		t.Errorf("r-1 batch size %d / queue depth %d, want 1 / 0", adm.BatchSize, adm.QueueDepth)
	}

	// Rejected: the explain blame survives into the audit record.
	tr, err = c.Trace(ctx, "r-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || tr.Records[0].Status != string(StatusRejected) {
		t.Fatalf("r-2 trace = %+v, want one rejected decision", tr.Records)
	}
	if tr.Records[0].Requests[0].Reason == "" {
		t.Error("rejected outcome has no explain reason")
	}

	// Backpressure: no ticket, so the shed shows up in the bulk stream.
	recs, err := c.Audit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var shed *lifecycle.Record
	for i := range recs {
		if recs[i].Kind == lifecycle.KindBackpressure {
			if shed != nil {
				t.Fatal("more than one backpressure record")
			}
			shed = &recs[i]
		}
	}
	if shed == nil {
		t.Fatal("no backpressure record in the audit stream")
	}
	if shed.QueueDepth != 2 || shed.RetryAfterS != retryAfterSeconds || shed.Item != -1 {
		t.Errorf("backpressure record = %+v", shed)
	}

	// Virtual-clock engines are deterministic: no wall-clock field may leak
	// into the stream.
	if strings.Contains(sink.String(), "wallS") || strings.Contains(sink.String(), "decisionLatencyS") {
		t.Error("deterministic audit stream leaks wall-clock fields")
	}
	// Unknown tickets 404.
	if _, err := c.Trace(ctx, "nope"); err == nil {
		t.Error("trace of unknown ticket did not fail")
	}
}

// TestAuditDisabled404: without a recorder the trace and audit endpoints
// answer 404 and the engine carries no recorder.
func TestAuditDisabled404(t *testing.T) {
	eng, err := New(narrowNet(), Options{Config: cfgC4(nil), VirtualClock: true, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Audit().Enabled() {
		t.Fatal("engine without Options.Audit reports auditing enabled")
	}
	if _, err := eng.Submit(lineSubmission(10*time.Minute, 0)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	var st *ErrStatus
	if _, err := c.Trace(context.Background(), "r-0"); !errors.As(err, &st) || st.Code != 404 {
		t.Errorf("trace on unaudited engine: got %v, want 404", err)
	}
	if _, err := c.Audit(context.Background()); !errors.As(err, &st) || st.Code != 404 {
		t.Errorf("audit on unaudited engine: got %v, want 404", err)
	}
}

// TestAuditByteStability: two engines fed the identical virtual-clock
// workload emit byte-identical audit streams.
func TestAuditByteStability(t *testing.T) {
	run := func() *bytes.Buffer {
		var sink bytes.Buffer
		eng := auditedEngine(t, obs.New(), &sink, Options{MaxBatch: 100, Preemption: true})
		if _, err := eng.Submit(lineSubmission(61500*time.Millisecond, int(model.Low))); err != nil {
			t.Fatal(err)
		}
		if err := eng.Advance(simtime.At(30 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Submit(lineSubmission(61500*time.Millisecond, int(model.High))); err != nil {
			t.Fatal(err)
		}
		if err := eng.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return &sink
	}
	a, b := run(), run()
	if a.Len() == 0 {
		t.Fatal("empty audit stream")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("audit streams differ across identical runs:\n%s\n----\n%s", a.String(), b.String())
	}
}

// TestAuditMetricsAgreement runs a wall-clock engine and checks the /metrics
// per-class p99 gauge agrees with the quantile re-derived from the audit
// stream's latencies — same values, same buckets, so they match exactly.
func TestAuditMetricsAgreement(t *testing.T) {
	o := obs.New()
	var sink bytes.Buffer
	rec := lifecycle.New(lifecycle.Options{Obs: o, Sink: &sink, SLO: time.Nanosecond})
	eng, err := New(narrowNet(), Options{
		Config:    cfgC4(o),
		MaxBatch:  100,
		MaxWait:   time.Millisecond,
		TimeScale: 86400,
		Audit:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Drain(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const n = 4
	for i := 0; i < n; i++ {
		if _, err := eng.SubmitWait(ctx, lineSubmission(20*time.Hour, int(model.High))); err != nil {
			t.Fatal(err)
		}
	}

	class := int(model.High)
	var lats []float64
	for _, r := range rec.Records() {
		if r.Kind != lifecycle.KindDecision {
			continue
		}
		if r.DecisionLatencyS <= 0 {
			t.Fatalf("wall-clock decision without latency: %+v", r)
		}
		lats = append(lats, r.DecisionLatency())
	}
	if len(lats) != n {
		t.Fatalf("%d decision records, want %d", len(lats), n)
	}
	snap := o.Snapshot()
	for _, q := range []struct {
		name string
		p    float64
	}{
		{"serve.decision_latency_class2_p50_seconds", 0.50},
		{"serve.decision_latency_class2_p99_seconds", 0.99},
	} {
		gauge, ok := snap.Gauges[q.name]
		if !ok {
			t.Fatalf("gauge %s missing; class %d", q.name, class)
		}
		derived := obs.SnapshotValues(obs.DurationBuckets, lats).Quantile(q.p)
		if gauge != derived {
			t.Errorf("%s = %v but audit-derived quantile = %v", q.name, gauge, derived)
		}
	}
	if got := snap.Counters["serve.slo_decision_latency_violations_total"]; got != n {
		t.Errorf("slo violations = %d, want %d (1ns budget)", got, n)
	}
}
