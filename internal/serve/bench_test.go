package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
)

func benchNet() func() *Engine {
	b := testnet.NewBuilder()
	ms := b.Machines(6, 1<<30)
	for i := 0; i < 5; i++ {
		b.Link(ms[i], ms[i+1], 0, 24*time.Hour, 8<<20)
		b.Link(ms[i+1], ms[i], 0, 24*time.Hour, 8<<20)
	}
	sc := b.Build("bench")
	return func() *Engine {
		eng, err := New(sc, Options{
			Config:       cfgC4(nil),
			VirtualClock: true,
			MaxBatch:     1 << 20, // flush only on demand
			QueueCap:     1 << 20,
		})
		if err != nil {
			panic(err)
		}
		return eng
	}
}

func benchSub(i int) Submission {
	return Submission{
		Name:      fmt.Sprintf("b-%d", i),
		SizeBytes: 256 << 10,
		Sources:   []SourceSpec{{Machine: i % 5}},
		Requests: []RequestSpec{{
			Machine:  5,
			Deadline: Instant(simtime.At(20 * time.Hour)),
			Priority: i % 3,
		}},
	}
}

// BenchmarkServeSoak measures the admission service under a growing world:
// one timed iteration is a complete soak of soakLen submissions, each
// flushed as its own admission epoch on the virtual clock, so the
// committed schedule accumulates within the iteration exactly as it does
// in a long-running daemon. The soak length is fixed — per-epoch cost that
// grows with history shows up as a larger per-soak total, not as an
// unbounded run — and the fullreplay sub-benchmark pins the old
// rebuild-per-epoch cost (O(soakLen²) transfer replays per soak) as the
// baseline the incremental engine (O(soakLen) total) is judged against.
// Diagnosis is off so the replanning path is what's timed.
func BenchmarkServeSoak(b *testing.B) {
	const soakLen = 512
	mkSoak := func(full bool) *Engine {
		bd := testnet.NewBuilder()
		ms := bd.Machines(6, 16<<30)
		for i := 0; i < 5; i++ {
			bd.Link(ms[i], ms[i+1], 0, 24*time.Hour, 8<<20)
			bd.Link(ms[i+1], ms[i], 0, 24*time.Hour, 8<<20)
		}
		sc := bd.Build("soak")
		eng, err := New(sc, Options{
			Config:          cfgC4(nil),
			VirtualClock:    true,
			MaxBatch:        1 << 20, // flush only on Advance
			QueueCap:        1 << 20,
			SkipDiagnosis:   true,
			ForceFullReplay: full,
		})
		if err != nil {
			panic(err)
		}
		return eng
	}
	for _, mode := range []struct {
		name string
		full bool
	}{
		{"incremental", false},
		{"fullreplay", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := mkSoak(mode.full)
				b.StartTimer()
				for j := 0; j < soakLen; j++ {
					if _, err := eng.Submit(benchSub(j)); err != nil {
						b.Fatal(err)
					}
					if err := eng.Advance(simtime.At(time.Duration(j+1) * 100 * time.Millisecond)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

var benchSink atomic.Int64

// BenchmarkServeRead measures the monitoring pattern: parallel readers
// polling Schedule and Info (the /v1/schedule and /v1/info endpoints) while
// a background goroutine keeps flushing admission epochs. Reads load the
// atomically-published world snapshot instead of taking the engine mutex,
// so poll latency stays flat no matter how heavy the concurrent epochs are
// — before the snapshot layer every poll serialized behind replanning.
func BenchmarkServeRead(b *testing.B) {
	eng := benchNet()()
	for j := 0; j < 64; j++ {
		if _, err := eng.Submit(benchSub(j)); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // admission load: one epoch per submission until stopped
		defer close(done)
		for j := 64; ; j++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Submit(benchSub(j)); err != nil {
				return
			}
			if err := eng.Flush(); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		n := 0
		for pb.Next() {
			v := eng.Schedule()
			in := eng.Info()
			n += len(v.Transfers) + in.Queue
		}
		benchSink.Add(int64(n))
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkServeAdmission measures one admission epoch of 32 submissions:
// intake (serial or from 8 goroutines) plus the epoch replan that decides
// them. The engine is rebuilt per iteration so the committed history —
// which grows with every admit — does not skew later iterations.
func BenchmarkServeAdmission(b *testing.B) {
	const batch = 32
	mk := benchNet()

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := mk()
			b.StartTimer()
			for j := 0; j < batch; j++ {
				if _, err := eng.Submit(benchSub(j)); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("concurrent8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := mk()
			b.StartTimer()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for j := 0; j < batch/8; j++ {
						if _, err := eng.Submit(benchSub(g*batch/8 + j)); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
