package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
)

func benchNet() func() *Engine {
	b := testnet.NewBuilder()
	ms := b.Machines(6, 1<<30)
	for i := 0; i < 5; i++ {
		b.Link(ms[i], ms[i+1], 0, 24*time.Hour, 8<<20)
		b.Link(ms[i+1], ms[i], 0, 24*time.Hour, 8<<20)
	}
	sc := b.Build("bench")
	return func() *Engine {
		eng, err := New(sc, Options{
			Config:       cfgC4(nil),
			VirtualClock: true,
			MaxBatch:     1 << 20, // flush only on demand
			QueueCap:     1 << 20,
		})
		if err != nil {
			panic(err)
		}
		return eng
	}
}

func benchSub(i int) Submission {
	return Submission{
		Name:      fmt.Sprintf("b-%d", i),
		SizeBytes: 256 << 10,
		Sources:   []SourceSpec{{Machine: i % 5}},
		Requests: []RequestSpec{{
			Machine:  5,
			Deadline: Instant(simtime.At(20 * time.Hour)),
			Priority: i % 3,
		}},
	}
}

// BenchmarkServeAdmission measures one admission epoch of 32 submissions:
// intake (serial or from 8 goroutines) plus the epoch replan that decides
// them. The engine is rebuilt per iteration so the committed history —
// which grows with every admit — does not skew later iterations.
func BenchmarkServeAdmission(b *testing.B) {
	const batch = 32
	mk := benchNet()

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := mk()
			b.StartTimer()
			for j := 0; j < batch; j++ {
				if _, err := eng.Submit(benchSub(j)); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("concurrent8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := mk()
			b.StartTimer()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for j := 0; j < batch/8; j++ {
						if _, err := eng.Submit(benchSub(g*batch/8 + j)); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
