package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxBodyBytes bounds a request body; submissions are small documents.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP API on a fresh mux:
//
//	POST /v1/requests             submit (body: Submission JSON; ?wait=1
//	                              blocks until the admission epoch decides)
//	GET  /v1/requests/{id}        one ticket's current verdict
//	GET  /v1/requests/{id}/trace  the ticket's full audit trail (404 when
//	                              auditing is off)
//	GET  /v1/schedule             committed schedule + weighted objective
//	GET  /v1/audit                the whole audit log as JSONL
//	POST /v1/advance              move the virtual clock (body: {"to": Instant})
//	GET  /v1/info                 service description for clients
//	GET  /healthz                 liveness
//
// When the engine was built with an introspection server, its endpoints
// (/metrics, /events, /runinfo, /debug/pprof/) are mounted on the same mux.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", e.handleSubmit)
	mux.HandleFunc("GET /v1/requests/{id}", e.handleTicket)
	mux.HandleFunc("GET /v1/requests/{id}/trace", e.handleTrace)
	mux.HandleFunc("GET /v1/schedule", e.handleSchedule)
	mux.HandleFunc("GET /v1/audit", e.handleAudit)
	mux.HandleFunc("POST /v1/advance", e.handleAdvance)
	mux.HandleFunc("GET /v1/info", e.handleInfo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if e.intro != nil {
		e.intro.Register(mux)
	}
	return mux
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	if !decodeBody(w, r, &sub) {
		return
	}
	t, err := e.Submit(sub)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-t.Done():
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/requests/"+t.ID())
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.View())
}

func (e *Engine) handleTicket(w http.ResponseWriter, r *http.Request) {
	v, ok := e.TicketView(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such request %q", r.PathValue("id")))
		return
	}
	writeJSON(w, v)
}

func (e *Engine) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !e.audit.Enabled() {
		httpError(w, http.StatusNotFound, errors.New("auditing is disabled on this engine"))
		return
	}
	if _, ok := e.TicketView(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such request %q", id))
		return
	}
	writeJSON(w, TraceView{ID: id, Records: e.audit.ForTicket(id)})
}

func (e *Engine) handleAudit(w http.ResponseWriter, _ *http.Request) {
	if !e.audit.Enabled() {
		httpError(w, http.StatusNotFound, errors.New("auditing is disabled on this engine"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = e.audit.WriteJSONL(w)
}

func (e *Engine) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, e.Schedule())
}

// advanceBody is the POST /v1/advance document.
type advanceBody struct {
	To Instant `json:"to"`
}

func (e *Engine) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var body advanceBody
	if !decodeBody(w, r, &body) {
		return
	}
	if err := e.Advance(body.To.Instant()); err != nil {
		code := http.StatusBadRequest
		if e.Err() != nil {
			code = http.StatusInternalServerError
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, e.Schedule())
}

func (e *Engine) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, e.Info())
}
