package serve

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"datastaging/internal/simtime"
)

// TestSnapshotBoundedStaleness pins the read-side contract: Schedule and
// Info observe the world published by the last completed admission epoch.
// Queued-but-unflushed submissions are visible only as intake depth; the
// committed schedule, item and request counts, and the objective all move
// together, atomically, when the epoch flushes.
func TestSnapshotBoundedStaleness(t *testing.T) {
	eng := benchNet()()

	before := eng.Schedule()
	if before.Epochs != 0 || before.Items != 0 || before.TotalRequests != 0 ||
		before.Satisfied != 0 || len(before.Transfers) != 0 {
		t.Fatalf("epoch-zero snapshot not empty: %+v", before)
	}

	for j := 0; j < 3; j++ {
		if _, err := eng.Submit(benchSub(j)); err != nil {
			t.Fatal(err)
		}
	}
	mid := eng.Schedule()
	if mid.Epochs != 0 || mid.Items != 0 || mid.TotalRequests != 0 || len(mid.Transfers) != 0 {
		t.Fatalf("queued submissions leaked into the snapshot before their epoch: %+v", mid)
	}
	if q := eng.Info().Queue; q != 3 {
		t.Fatalf("Info.Queue = %d, want 3 pending", q)
	}

	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	after := eng.Schedule()
	if after.Epochs != 1 || after.Items != 3 || after.TotalRequests != 3 {
		t.Fatalf("post-flush snapshot wrong shape: %+v", after)
	}
	if after.Satisfied == 0 || after.WeightedValue <= 0 || len(after.Transfers) == 0 {
		t.Fatalf("post-flush snapshot shows no admitted work: %+v", after)
	}
	if q := eng.Info().Queue; q != 0 {
		t.Fatalf("Info.Queue = %d after flush, want 0", q)
	}

	if eng.Info().Draining {
		t.Fatal("Draining before Drain")
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !eng.Info().Draining {
		t.Fatal("Draining not visible after Drain")
	}
}

// TestSnapshotConsistencyHammer is the race oracle for the lock-free read
// path: 16 reader goroutines poll Schedule/Info/Now while the main goroutine
// drives 50 admission epochs. Every read must be a consistent world — epoch
// counts monotone per reader, item and request counts from the same publish
// (each submission carries exactly one request, so they must always be
// equal), transfers readable without tearing. Run under `make race`.
func TestSnapshotConsistencyHammer(t *testing.T) {
	eng := benchNet()()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastEpoch := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := eng.Schedule()
				if v.Epochs < lastEpoch {
					t.Errorf("epochs went backwards: %d after %d", v.Epochs, lastEpoch)
					return
				}
				lastEpoch = v.Epochs
				if v.TotalRequests != v.Items {
					t.Errorf("torn snapshot: %d requests, %d items (must match 1:1)",
						v.TotalRequests, v.Items)
					return
				}
				if v.Satisfied > v.TotalRequests {
					t.Errorf("satisfied %d exceeds total %d", v.Satisfied, v.TotalRequests)
					return
				}
				for i := range v.Transfers {
					if v.Transfers[i].Arrival.Before(v.Transfers[i].Start) {
						t.Errorf("transfer %d arrives before it starts", i)
						return
					}
				}
				in := eng.Info()
				if in.Queue < 0 || in.Queue > 4 {
					t.Errorf("intake depth %d out of range", in.Queue)
					return
				}
				_ = eng.Now()
				runtime.Gosched()
			}
		}()
	}
	for j := 0; j < 200; j++ {
		if _, err := eng.Submit(benchSub(j)); err != nil {
			t.Fatal(err)
		}
		if j%4 == 3 {
			if err := eng.Advance(simtime.At(time.Duration(j) * 50 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	final := eng.Schedule()
	if final.Epochs != 50 || final.Items != 200 || final.TotalRequests != 200 {
		t.Fatalf("final world wrong: %+v", final)
	}
}

// TestReadPathAllocs gates the read endpoints' allocation budget: Now is
// allocation-free, and Schedule/Info allocate only the caller-owned copies
// (the transfer slice; Sprintf's scratch) — no per-call map walks or
// re-derivations.
func TestReadPathAllocs(t *testing.T) {
	eng := benchNet()()
	for j := 0; j < 8; j++ {
		if _, err := eng.Submit(benchSub(j)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() { _ = eng.Now() }); a != 0 {
		t.Errorf("Now allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { _ = eng.Schedule() }); a > 3 {
		t.Errorf("Schedule allocates %.1f per call, want <= 3", a)
	}
	if a := testing.AllocsPerRun(100, func() { _ = eng.Info() }); a > 4 {
		t.Errorf("Info allocates %.1f per call, want <= 4", a)
	}
}
