package serve

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"datastaging/internal/workload"
)

// LoadParams shapes the synthetic submission stream of the load generator.
// The zero value is useless; start from DefaultLoadParams.
type LoadParams struct {
	// Seed makes the generated submission stream deterministic: the same
	// seed against the same service Info yields the same submissions.
	Seed int64
	// Requests is the total number of submissions to drive.
	Requests int
	// Workers is the closed-loop concurrency: each worker keeps exactly one
	// submission in flight.
	Workers int
	// SizeBytes is the item-size range, drawn log-uniformly.
	SizeMin, SizeMax int64
	// Slack is the deadline slack range: a deadline lands uniformly in
	// [now+SlackMin, now+SlackMax], clamped under the horizon.
	SlackMin, SlackMax time.Duration
	// MaxPriority draws priorities uniformly from [0, MaxPriority].
	MaxPriority int
	// Backoff is the base retry delay after a 429 (the retry re-submits
	// the same submission; it still counts once).
	Backoff time.Duration
	// BackoffMax caps the jittered exponential retry schedule: attempt a
	// sleeps a seeded-random duration in [b/2, b) where b is Backoff
	// doubled a times, capped at BackoffMax. The jitter is drawn from the
	// generator's own seed (mixed with the submission index and attempt),
	// so a load run's retry timing is as reproducible as its submission
	// stream. A BackoffMax at or below Backoff restores the legacy fixed
	// delay.
	BackoffMax time.Duration
}

// DefaultLoadParams returns the stageload defaults: small items with an
// hour-scale slack against the paper's day-long horizon.
func DefaultLoadParams(seed int64, n int) LoadParams {
	return LoadParams{
		Seed:        seed,
		Requests:    n,
		Workers:     8,
		SizeMin:     64 << 10,
		SizeMax:     16 << 20,
		SlackMin:    time.Hour,
		SlackMax:    8 * time.Hour,
		MaxPriority: 2,
		Backoff:     50 * time.Millisecond,
		BackoffMax:  time.Second,
	}
}

// BackoffDelay returns the retry delay of the i-th submission's attempt-th
// 429 (attempt counts from 0). Deterministic: the jitter RNG is seeded
// from the load seed, the submission index, and the attempt, so two runs
// of the same parameters sleep identically. The exponential-with-jitter
// schedule decorrelates the retry herd a fixed delay creates: when a
// flushed epoch sheds a whole batch, fixed-backoff workers all come back
// in the same instant and collide again.
func BackoffDelay(p LoadParams, i, attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	if p.BackoffMax <= p.Backoff {
		return p.Backoff // legacy fixed delay
	}
	base := p.Backoff
	for a := 0; a < attempt && base < p.BackoffMax; a++ {
		base *= 2
	}
	if base > p.BackoffMax {
		base = p.BackoffMax
	}
	if base < 2 {
		return base
	}
	rng := rand.New(rand.NewSource(p.Seed ^ int64(i)*0x5851F42D4C957F2D ^ int64(attempt+1)*0x2545F4914F6CDD1D))
	return base/2 + time.Duration(rng.Int63n(int64(base/2)))
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Requests   int
	Admitted   int
	Rejected   int
	Preempted  int
	Errors     int
	Overloaded int // 429 responses (retried; counts shed attempts)
	Elapsed    time.Duration
	// Latencies of every decided submission (submit → verdict), sorted.
	Latencies []time.Duration
	// Ordered holds the same latencies in completion order. Windowed means
	// over it are the soak check: per-epoch admission cost that grows with
	// the committed history shows up as a rising tail of windows, while the
	// incremental engine should hold them flat.
	Ordered []time.Duration
}

// WindowMeans splits the completion-ordered latencies into k contiguous
// windows and returns each window's mean. Fewer than k samples yield one
// window per sample.
func (r *LoadReport) WindowMeans(k int) []time.Duration {
	n := len(r.Ordered)
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]time.Duration, 0, k)
	for w := 0; w < k; w++ {
		lo, hi := w*n/k, (w+1)*n/k
		var sum time.Duration
		for _, d := range r.Ordered[lo:hi] {
			sum += d
		}
		out = append(out, sum/time.Duration(hi-lo))
	}
	return out
}

// Slope is the ratio of the last window's mean latency to the first's over
// k completion-order windows: ~1 when per-epoch admission cost is flat,
// rising when it scales with the committed schedule. It is the quantity
// the soak smoke test gates on.
func (r *LoadReport) Slope(k int) float64 {
	means := r.WindowMeans(k)
	if len(means) < 2 || means[0] <= 0 {
		return 1
	}
	return float64(means[len(means)-1]) / float64(means[0])
}

// Percentile returns the p-th (0–100) latency percentile.
func (r *LoadReport) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(r.Latencies)-1))
	return r.Latencies[idx]
}

// Write prints the human-readable summary stageload ends with.
func (r *LoadReport) Write(w io.Writer) {
	fmt.Fprintf(w, "requests   %d\n", r.Requests)
	fmt.Fprintf(w, "admitted   %d (%.1f%%)\n", r.Admitted, pct(r.Admitted, r.Requests))
	fmt.Fprintf(w, "rejected   %d (%.1f%%)\n", r.Rejected, pct(r.Rejected, r.Requests))
	if r.Preempted > 0 {
		fmt.Fprintf(w, "preempted  %d\n", r.Preempted)
	}
	if r.Errors > 0 {
		fmt.Fprintf(w, "errors     %d\n", r.Errors)
	}
	fmt.Fprintf(w, "overloaded %d (429s, retried)\n", r.Overloaded)
	fmt.Fprintf(w, "elapsed    %v\n", r.Elapsed.Round(time.Millisecond))
	if len(r.Latencies) > 0 {
		fmt.Fprintf(w, "latency    p50 %v  p90 %v  p99 %v  max %v\n",
			r.Percentile(50).Round(time.Microsecond),
			r.Percentile(90).Round(time.Microsecond),
			r.Percentile(99).Round(time.Microsecond),
			r.Latencies[len(r.Latencies)-1].Round(time.Microsecond))
	}
	rate := float64(r.Requests) / r.Elapsed.Seconds()
	fmt.Fprintf(w, "throughput %.1f submissions/s\n", rate)
}

func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}

// GenSubmission synthesizes the i-th submission of a seeded stream against
// a service description. Exposed so tests can replay the exact stream a
// load run produced.
func GenSubmission(p LoadParams, info Info, i int) Submission {
	rng := rand.New(rand.NewSource(p.Seed + int64(i)))
	src := rng.Intn(info.Machines)
	dst := rng.Intn(info.Machines - 1)
	if dst >= src {
		dst++
	}
	size := p.SizeMin
	if p.SizeMax > p.SizeMin {
		// Log-uniform: small items common, large items rare — the shape a
		// shared staging network actually sees.
		lo, hi := float64(p.SizeMin), float64(p.SizeMax)
		size = int64(lo * math.Pow(hi/lo, rng.Float64()))
	}
	slack := p.SlackMin
	if p.SlackMax > p.SlackMin {
		slack += time.Duration(rng.Int63n(int64(p.SlackMax - p.SlackMin)))
	}
	deadline := Instant(info.Now) + Instant(slack)
	if info.Horizon > 0 && deadline > info.Horizon {
		deadline = info.Horizon
	}
	return Submission{
		Name:      fmt.Sprintf("load-%d", i),
		SizeBytes: size,
		Sources:   []SourceSpec{{Machine: src}},
		Requests: []RequestSpec{{
			Machine:  dst,
			Deadline: deadline,
			Priority: rng.Intn(p.MaxPriority + 1),
		}},
	}
}

// SubmissionFromArrival converts a canonical-trace arrival into the
// submission the admission API accepts. The conversion is lossless modulo
// the arrival instant, which the replay driver supplies by advancing the
// virtual clock to Arrival.At before submitting.
func SubmissionFromArrival(a workload.Arrival) Submission {
	sub := Submission{Name: a.Name, SizeBytes: a.SizeBytes}
	for _, src := range a.Sources {
		sub.Sources = append(sub.Sources, SourceSpec{
			Machine: src.Machine, Available: Instant(src.Available),
		})
	}
	for _, rq := range a.Requests {
		sub.Requests = append(sub.Requests, RequestSpec{
			Machine: rq.Machine, Deadline: Instant(rq.Deadline), Priority: rq.Priority,
		})
	}
	return sub
}

// ReplayTrace replays a canonical trace against a stagesvc endpoint,
// bit-identically to the offline engine: advance the virtual clock to each
// distinct arrival instant (flushing the previous instant's batch into one
// admission epoch), submit that instant's arrivals, and flush the final
// batch. Requires a virtual-clock service whose max-batch and queue-cap
// exceed the largest same-instant batch — otherwise a batch would split
// across epochs and the replay would diverge from the offline schedule.
// Each decided submission's latency is the wall duration of the Advance
// call that flushed its epoch.
func ReplayTrace(ctx context.Context, c *Client, tr *workload.Trace) (*LoadReport, error) {
	info, err := c.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: cannot describe service: %w", err)
	}
	if !info.Virtual {
		return nil, fmt.Errorf("serve: trace replay needs a virtual-clock service (stagesvc -virtual-clock)")
	}
	if info.Machines < tr.Machines {
		return nil, fmt.Errorf("serve: trace %q wants %d machines, service has %d",
			tr.Name, tr.Machines, info.Machines)
	}
	maxGroup := 0
	for i, g := 0, 0; i < len(tr.Arrivals); i++ {
		if i == 0 || tr.Arrivals[i-1].At != tr.Arrivals[i].At {
			g = 0
		}
		g++
		if g > maxGroup {
			maxGroup = g
		}
	}
	if info.MaxBatch <= maxGroup || info.QueueCap < maxGroup {
		return nil, fmt.Errorf(
			"serve: largest same-instant batch is %d submissions; raise -max-batch above it (now %d) and -queue-cap to at least it (now %d)",
			maxGroup, info.MaxBatch, info.QueueCap)
	}

	rep := &LoadReport{Requests: len(tr.Arrivals)}
	begin := time.Now()
	ids := make([]string, 0, len(tr.Arrivals))
	pending := 0
	flush := func(to Instant) error {
		t0 := time.Now()
		if _, err := c.Advance(ctx, to); err != nil {
			return fmt.Errorf("serve: advance to %v: %w", to, err)
		}
		d := time.Since(t0)
		for ; pending > 0; pending-- {
			rep.Latencies = append(rep.Latencies, d)
			rep.Ordered = append(rep.Ordered, d)
		}
		return nil
	}
	for i := range tr.Arrivals {
		a := &tr.Arrivals[i]
		if i == 0 || tr.Arrivals[i-1].At != a.At {
			if err := flush(Instant(a.At)); err != nil {
				return nil, err
			}
		}
		view, err := c.Submit(ctx, SubmissionFromArrival(*a), false)
		if err != nil {
			return nil, fmt.Errorf("serve: submit arrival %d: %w", i, err)
		}
		ids = append(ids, view.ID)
		pending++
	}
	if len(tr.Arrivals) > 0 {
		// Advancing to the current instant is a pure flush of the last batch.
		if err := flush(Instant(tr.Arrivals[len(tr.Arrivals)-1].At)); err != nil {
			return nil, err
		}
	}
	for _, id := range ids {
		view, err := c.Ticket(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("serve: ticket %s: %w", id, err)
		}
		switch view.Status {
		case StatusAdmitted:
			rep.Admitted++
		case StatusRejected:
			rep.Rejected++
		case StatusPreempted:
			rep.Preempted++
		default:
			rep.Errors++
		}
	}
	rep.Elapsed = time.Since(begin)
	sort.Slice(rep.Latencies, func(a, b int) bool { return rep.Latencies[a] < rep.Latencies[b] })
	return rep, nil
}

// RunLoad drives a deterministic closed-loop load against a stagesvc
// endpoint: Workers goroutines each submit with ?wait=1, retrying on 429
// on the BackoffDelay schedule, until Requests submissions have a verdict.
func RunLoad(ctx context.Context, c *Client, p LoadParams) (*LoadReport, error) {
	if p.Requests <= 0 {
		return nil, fmt.Errorf("serve: load run needs a positive request count")
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	info, err := c.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: cannot describe service: %w", err)
	}
	if info.Machines < 2 {
		return nil, fmt.Errorf("serve: scenario has %d machines; need at least 2", info.Machines)
	}

	var (
		mu  sync.Mutex
		rep = LoadReport{Requests: p.Requests}
	)
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < p.Requests; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sub := GenSubmission(p, info, i)
				start := time.Now()
				var view TicketView
				for attempt := 0; ; attempt++ {
					var err error
					view, err = c.Submit(ctx, sub, true)
					if st, ok := err.(*ErrStatus); ok && st.IsOverloaded() {
						mu.Lock()
						rep.Overloaded++
						mu.Unlock()
						select {
						case <-time.After(BackoffDelay(p, i, attempt)):
							continue
						case <-ctx.Done():
							return
						}
					}
					if err != nil {
						mu.Lock()
						rep.Errors++
						mu.Unlock()
					}
					break
				}
				lat := time.Since(start)
				mu.Lock()
				decided := true
				switch view.Status {
				case StatusAdmitted:
					rep.Admitted++
				case StatusRejected:
					rep.Rejected++
				case StatusPreempted:
					rep.Preempted++
				default:
					decided = false
				}
				if decided {
					rep.Latencies = append(rep.Latencies, lat)
					rep.Ordered = append(rep.Ordered, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(begin)
	sort.Slice(rep.Latencies, func(a, b int) bool { return rep.Latencies[a] < rep.Latencies[b] })
	if err := ctx.Err(); err != nil {
		return &rep, err
	}
	return &rep, nil
}
