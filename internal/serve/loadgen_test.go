package serve

import (
	"testing"
	"time"
)

func TestBackoffDelay(t *testing.T) {
	p := DefaultLoadParams(7, 100) // Backoff 50ms, BackoffMax 1s

	// Deterministic: same (seed, submission, attempt) → same delay.
	for attempt := 0; attempt < 8; attempt++ {
		a := BackoffDelay(p, 3, attempt)
		b := BackoffDelay(p, 3, attempt)
		if a != b {
			t.Fatalf("attempt %d not deterministic: %v vs %v", attempt, a, b)
		}
	}

	// Every delay of attempt a lies in [b/2, b) for b = Backoff·2^a capped
	// at BackoffMax.
	for i := 0; i < 20; i++ {
		for attempt := 0; attempt < 10; attempt++ {
			base := p.Backoff
			for a := 0; a < attempt && base < p.BackoffMax; a++ {
				base *= 2
			}
			if base > p.BackoffMax {
				base = p.BackoffMax
			}
			d := BackoffDelay(p, i, attempt)
			if d < base/2 || d >= base {
				t.Fatalf("submission %d attempt %d: delay %v outside [%v, %v)", i, attempt, d, base/2, base)
			}
		}
	}

	// The schedule grows towards the cap: a late attempt's floor exceeds the
	// first attempt's ceiling, and the cap is never crossed.
	if early, late := BackoffDelay(p, 1, 0), BackoffDelay(p, 1, 6); late <= early {
		t.Fatalf("no growth: attempt 0 %v, attempt 6 %v", early, late)
	}
	if d := BackoffDelay(p, 1, 40); d >= p.BackoffMax {
		t.Fatalf("attempt 40 delay %v not under cap %v", d, p.BackoffMax)
	}

	// Jitter decorrelates submissions and attempts.
	if BackoffDelay(p, 1, 5) == BackoffDelay(p, 2, 5) &&
		BackoffDelay(p, 1, 6) == BackoffDelay(p, 2, 6) &&
		BackoffDelay(p, 1, 7) == BackoffDelay(p, 2, 7) {
		t.Fatal("jitter identical across submissions on three attempts")
	}

	// Different seeds reshuffle the jitter.
	q := p
	q.Seed = 8
	if BackoffDelay(p, 1, 5) == BackoffDelay(q, 1, 5) &&
		BackoffDelay(p, 1, 6) == BackoffDelay(q, 1, 6) &&
		BackoffDelay(p, 1, 7) == BackoffDelay(q, 1, 7) {
		t.Fatal("jitter identical across seeds on three attempts")
	}

	// BackoffMax at or below Backoff: the legacy fixed delay, no jitter.
	q = p
	q.BackoffMax = p.Backoff
	for attempt := 0; attempt < 4; attempt++ {
		if d := BackoffDelay(q, 0, attempt); d != p.Backoff {
			t.Fatalf("legacy mode attempt %d: %v, want fixed %v", attempt, d, p.Backoff)
		}
	}

	// No backoff configured: no sleep.
	q = p
	q.Backoff = 0
	if d := BackoffDelay(q, 0, 0); d != 0 {
		t.Fatalf("zero backoff slept %v", d)
	}

	// Sub-nanosecond bases cannot draw jitter; returned as-is.
	q = p
	q.Backoff = 1
	q.BackoffMax = 10 * time.Millisecond
	if d := BackoffDelay(q, 0, 0); d != 1 {
		t.Fatalf("1ns base returned %v", d)
	}
}
