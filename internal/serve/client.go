package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"datastaging/internal/obs/lifecycle"
)

// Client is a typed client for the stagesvc HTTP API, used by the load
// generator and the end-to-end tests. Zero-value-safe apart from BaseURL.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// ErrStatus is a non-2xx API response.
type ErrStatus struct {
	Code int
	// RetryAfter echoes the Retry-After header on 429 responses.
	RetryAfter time.Duration
	Message    string
}

func (e *ErrStatus) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Message)
}

// IsOverloaded reports whether the server shed the request with 429.
func (e *ErrStatus) IsOverloaded() bool { return e.Code == http.StatusTooManyRequests }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		st := &ErrStatus{Code: resp.StatusCode}
		if ra, err := time.ParseDuration(resp.Header.Get("Retry-After") + "s"); err == nil {
			st.RetryAfter = ra
		}
		var eb errorBody
		if json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&eb) == nil && eb.Error != "" {
			st.Message = eb.Error
		} else {
			st.Message = resp.Status
		}
		return st
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out)
}

// Submit posts a submission; when wait is true the call blocks until the
// admission epoch decides and the returned view carries the verdict.
func (c *Client) Submit(ctx context.Context, sub Submission, wait bool) (TicketView, error) {
	path := "/v1/requests"
	if wait {
		path += "?wait=1"
	}
	var v TicketView
	err := c.do(ctx, http.MethodPost, path, sub, &v)
	return v, err
}

// Ticket fetches one submission's current verdict.
func (c *Client) Ticket(ctx context.Context, id string) (TicketView, error) {
	var v TicketView
	err := c.do(ctx, http.MethodGet, "/v1/requests/"+id, nil, &v)
	return v, err
}

// Trace fetches one submission's full audit trail. Fails with a 404
// ErrStatus when the service runs without auditing.
func (c *Client) Trace(ctx context.Context, id string) (TraceView, error) {
	var v TraceView
	err := c.do(ctx, http.MethodGet, "/v1/requests/"+id+"/trace", nil, &v)
	return v, err
}

// Audit fetches and validates the service's whole audit log (the /v1/audit
// JSONL stream).
func (c *Client) Audit(ctx context.Context) ([]lifecycle.Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.BaseURL, "/")+"/v1/audit", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &ErrStatus{Code: resp.StatusCode, Message: resp.Status}
	}
	return lifecycle.ReadJSONL(resp.Body)
}

// Schedule fetches the committed-schedule snapshot.
func (c *Client) Schedule(ctx context.Context) (ScheduleView, error) {
	var v ScheduleView
	err := c.do(ctx, http.MethodGet, "/v1/schedule", nil, &v)
	return v, err
}

// Advance moves the service's virtual clock (virtual-clock mode only) and
// returns the schedule after the flush.
func (c *Client) Advance(ctx context.Context, to Instant) (ScheduleView, error) {
	var v ScheduleView
	err := c.do(ctx, http.MethodPost, "/v1/advance", advanceBody{To: to}, &v)
	return v, err
}

// Info fetches the service description.
func (c *Client) Info(ctx context.Context) (Info, error) {
	var v Info
	err := c.do(ctx, http.MethodGet, "/v1/info", nil, &v)
	return v, err
}
