// Package serve is the online admission service: the bridge from "a client
// submits a data request" to "the scheduler admits or rejects it" while the
// system runs. It owns a live scheduling world (a dynamic.Engine), accepts
// Submit calls from many goroutines, micro-batches them into admission
// epochs — a batch flushes when it reaches MaxBatch submissions or when the
// oldest has waited MaxWait, whichever comes first — and per epoch runs the
// configured heuristic incrementally with the already-committed schedule
// locked in, exactly the paper's §4.5 rule that scheduled transfers remain
// in the system.
//
// Each submission receives a per-request verdict: admitted (with the
// committed route and delivery instant), rejected (with an explain blame:
// starved-by-contention and the most-obstructed link, or
// infeasible-even-alone), or — when preemption is enabled — preempted,
// meaning a lower-priority earlier admit was displaced by a higher-priority
// arrival. Preemption is conservative: only transfers that have not started
// by the epoch instant are candidates, only items whose every request sits
// strictly below the new arrival's priority may be displaced, and the
// displacement is kept only if it strictly increases the weighted
// objective; otherwise the world is rolled back bit-identically.
//
// The intake queue is bounded: when it is full, Submit fails fast with
// ErrOverloaded and the HTTP layer translates that into 429 + Retry-After,
// so overload sheds load at the door instead of growing latency without
// bound. Draining stops intake (ErrDraining → 503), completes the in-flight
// epoch, and leaves the committed schedule queryable.
//
// Time is pluggable: in wall-clock mode the epoch instant is the elapsed
// run time scaled by TimeScale; in virtual-clock mode time only moves via
// Advance, which makes runs fully deterministic — the end-to-end test
// replays an arrival trace through HTTP and checks the final schedule is
// bit-identical to dynamic.Simulate replaying the same trace offline.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/dynamic"
	"datastaging/internal/explain"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/obs/introspect"
	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Sentinel intake errors. Anything else returned by Submit is a validation
// failure of the submission itself.
var (
	// ErrOverloaded: the bounded intake queue is full; retry later.
	ErrOverloaded = errors.New("serve: intake queue full")
	// ErrDraining: the engine is shutting down and accepts no new work.
	ErrDraining = errors.New("serve: draining, intake closed")
)

// retryAfterSeconds is the backoff hint a shed submission receives, both as
// the HTTP Retry-After header and in its backpressure audit record.
const retryAfterSeconds = 1

// Options configures an admission engine.
type Options struct {
	// Config is the heuristic/criterion pair each admission epoch runs
	// (Config.Obs, when set, receives all serve.* metrics too).
	Config core.Config
	// MaxBatch flushes the intake queue into an epoch when this many
	// submissions are pending (default 16).
	MaxBatch int
	// MaxWait bounds how long a pending submission waits for its epoch in
	// wall-clock mode (default 25ms). Ignored with VirtualClock.
	MaxWait time.Duration
	// QueueCap bounds the intake queue; a full queue rejects submissions
	// with ErrOverloaded (default 256).
	QueueCap int
	// VirtualClock freezes time: the current instant only moves via
	// Advance, and batches flush on MaxBatch, Advance, Flush, or Drain.
	// Deterministic; used by tests and trace replay.
	VirtualClock bool
	// TimeScale maps wall time to simulated time in wall-clock mode:
	// simulated = elapsed * TimeScale (default 1). A scale of 60 makes one
	// wall second one simulated minute, so a day-long scenario can be
	// driven in minutes.
	TimeScale float64
	// Preemption lets a higher-priority arrival displace not-yet-started
	// transfers of strictly lower-priority items when that strictly
	// increases the weighted objective.
	Preemption bool
	// SkipDiagnosis leaves fresh rejections without an explain blame.
	// Diagnosis walks the whole committed schedule per rejection, which
	// dominates epoch cost in long reject-heavy soaks; soak drivers that
	// only care about admission latency turn it off.
	SkipDiagnosis bool
	// ForceFullReplay pins every admission epoch to the full-replay
	// rebuild path (the incremental engine's correctness oracle). Used by
	// benchmarks and soak baselines; production keeps it off.
	ForceFullReplay bool
	// Intro, when non-nil, receives the live epoch phase for /runinfo.
	Intro *introspect.Server
	// Audit, when non-nil, receives one lifecycle record per admission
	// decision (plus revisions and backpressure sheds). A nil recorder
	// disables auditing entirely; the admission path then skips every
	// audit hook, keeping steady-state allocations unchanged. With
	// VirtualClock the recorder is forced deterministic so replayed audit
	// streams are byte-stable.
	Audit *lifecycle.Recorder
	// TicketPrefix prefixes every minted ticket id (e.g. "s0-" yields
	// "s0-r-0"). A front-end that multiplexes several engines behind one
	// API (internal/shard) uses it to keep ids globally unique and
	// routable back to their engine. Empty for the classic single-engine
	// service, so existing ids ("r-0") are unchanged.
	TicketPrefix string
	// Shard, when non-nil, tags every audit record this engine emits with
	// the shard index, so a shared recorder's stream stays attributable.
	Shard *int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 25 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	return o
}

// Ticket tracks one submission through the engine. All state is guarded by
// the engine; read it through View.
type Ticket struct {
	eng *Engine
	id  string
	sub Submission

	done chan struct{} // closed at the first verdict

	// Guarded by eng.mu.
	arrived  simtime.Instant
	epoch    simtime.Instant
	item     model.ItemID // -1 while queued
	status   Status
	verdicts []RequestVerdict
	route    []state.Transfer
	resolved bool

	// Audit context, captured only when the engine has a recorder.
	arrivedWall time.Time
	queueDepth  int // intake depth when the submission arrived
}

// ID returns the server-assigned ticket id.
func (t *Ticket) ID() string { return t.id }

// Done is closed when the ticket's admission epoch has run and the first
// verdict is available. The verdict may still change later (late admission,
// preemption); View always returns the current one.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// View returns a consistent snapshot of the ticket.
func (t *Ticket) View() TicketView {
	t.eng.mu.Lock()
	defer t.eng.mu.Unlock()
	return t.viewLocked()
}

func (t *Ticket) viewLocked() TicketView {
	v := TicketView{
		ID:      t.id,
		Status:  t.status,
		Item:    int(t.item),
		Epoch:   Instant(t.epoch),
		Arrived: Instant(t.arrived),
	}
	v.Requests = append(v.Requests, t.verdicts...)
	v.Route = append(v.Route, t.route...)
	return v
}

// Engine is the concurrency-safe admission engine. Create with New, feed
// with Submit (any number of goroutines), and stop with Drain.
type Engine struct {
	opts  Options
	o     *obs.Obs
	intro *introspect.Server
	audit *lifecycle.Recorder
	start time.Time

	mAdmitted, mRejected, mPreempted, mBackpressure, mEpochs *obs.Counter
	mEpochsFull, mEpochsIncremental                          *obs.Counter
	mReplayTransfers, mDeltaItems                            *obs.Counter
	gQueue                                                   *obs.Gauge
	hBatch                                                   *obs.Histogram
	epochTimer                                               *obs.PhaseTimer

	mu        sync.Mutex
	dyn       *dynamic.Engine
	sc        scenario.Scenario // private copy; Items grows as submissions are admitted
	queue     []*Ticket
	flushed   []*Ticket // tickets whose epoch has run, in admission order
	unsettled []*Ticket // flushed tickets with an unsatisfied request (late-admission candidates)
	tickets   map[string]*Ticket
	preempted map[model.RequestID]bool
	nextID    int
	epochs    int
	lastEpoch simtime.Instant
	// epochObjDelta is the weighted-objective gain of the kept preemption
	// displacement in the in-flight epoch (0 when none happened); audit
	// records of preempted tickets carry it.
	epochObjDelta float64
	oldest    time.Time // wall enqueue time of the oldest pending submission
	fatal     error     // first replan failure; the engine wedges closed

	// totalReqs is the request count across every item the engine has ever
	// seen (base scenario plus all flushed submissions), maintained
	// incrementally so publishing a snapshot never walks the item list.
	totalReqs int
	// Incremental weighted-objective tracker: satValue is the weighted sum
	// over the first satConsumed entries of satState's satisfaction log.
	// weightedValueLocked folds in only the log suffix each call and
	// restarts from zero when the dynamic engine swapped in a rebuilt
	// state (full replay), whose fresh log re-derives the whole sum.
	satState    *state.State
	satConsumed int
	satValue    float64

	// Read-side state, loaded lock-free by Schedule, Info, and Now so
	// heavy polling never contends with admission. snap is the immutable
	// world published at the end of every epoch; the scalars move outside
	// epochs too (intake, clock, drain).
	snap     atomic.Pointer[worldSnap]
	qdepth   atomic.Int64
	vnow     atomic.Int64 // virtual-clock current instant (simtime.Instant)
	draining atomic.Bool

	kick    chan struct{} // wall loop wakeup
	drainCh chan struct{}
	stopped chan struct{} // wall loop exited
}

// worldSnap is one consistent, immutable view of the committed world,
// published with an atomic pointer swap at the end of every admission epoch
// (and once at construction). Readers observe bounded staleness: while an
// epoch is in flight they see the previous epoch's world, never a torn
// intermediate.
type worldSnap struct {
	epochs        int
	items         int
	totalReqs     int
	satisfied     int
	weightedValue float64
	// transfers is a cap-clamped window of the committed history. The
	// dynamic engine only ever appends beyond this window's length (or
	// swaps in a freshly-built slice on history rewrites), so the window's
	// contents never change after publication.
	transfers []state.Transfer
}

// publishLocked snapshots the current world and swaps it in for readers.
// Call with e.mu held (New calls it before the engine escapes, which is
// just as exclusive).
func (e *Engine) publishLocked() {
	trs := e.dyn.Transfers()
	e.snap.Store(&worldSnap{
		epochs:        e.epochs,
		items:         len(e.sc.Items),
		totalReqs:     e.totalReqs,
		satisfied:     len(e.dyn.Satisfied()),
		weightedValue: e.weightedValueLocked(),
		transfers:     trs[:len(trs):len(trs)],
	})
}

// New builds an engine over a base scenario, which contributes the network,
// the garbage-collection policy, and any items already known at time zero
// (they are planned in the first epoch alongside the first batch). The base
// scenario is copied; the caller's value is never mutated.
func New(base *scenario.Scenario, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		opts:      opts,
		o:         opts.Config.Obs,
		intro:     opts.Intro,
		audit:     opts.Audit,
		start:     time.Now(),
		sc:        *base,
		tickets:   make(map[string]*Ticket),
		preempted: make(map[model.RequestID]bool),
		kick:      make(chan struct{}, 1),
		drainCh:   make(chan struct{}),
		stopped:   make(chan struct{}),
	}
	// Deep-copy the item list: flushes append to it.
	e.sc.Items = append([]model.Item(nil), base.Items...)
	dyn, err := dynamic.NewEngine(&e.sc, opts.Config)
	if err != nil {
		return nil, err
	}
	e.dyn = dyn
	if opts.ForceFullReplay {
		dyn.SetFullReplay(true)
	}
	if opts.VirtualClock {
		// Virtual-clock runs must replay byte-identically; strip wall-clock
		// fields from every audit record.
		e.audit.SetDeterministic(true)
	}

	e.mAdmitted = e.o.Counter("serve.admitted_total")
	e.mEpochsFull = e.o.Counter("serve.epochs_full_total")
	e.mEpochsIncremental = e.o.Counter("serve.epochs_incremental_total")
	e.mReplayTransfers = e.o.Counter("serve.epoch_replay_transfers")
	e.mDeltaItems = e.o.Counter("serve.epoch_delta_items")
	e.mRejected = e.o.Counter("serve.rejected_total")
	e.mPreempted = e.o.Counter("serve.preempted_total")
	e.mBackpressure = e.o.Counter("serve.rejected_backpressure_total")
	e.mEpochs = e.o.Counter("serve.epochs_total")
	e.gQueue = e.o.Gauge("serve.queue_depth")
	e.hBatch = e.o.Histogram("serve.batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	e.epochTimer = e.o.Phase("serve.epoch")
	e.intro.SetPhase("idle")
	e.totalReqs = (&e.sc).NumRequests()
	e.publishLocked() // epoch-zero world for readers that poll before the first flush

	if opts.VirtualClock {
		close(e.stopped) // no background loop to wait for
	} else {
		go e.loop()
	}
	return e, nil
}

// Now returns the engine's current simulated instant. Lock-free: the
// virtual clock is an atomic, wall time is arithmetic on immutable fields.
func (e *Engine) Now() simtime.Instant {
	if !e.opts.VirtualClock {
		return e.wallNow()
	}
	return simtime.Instant(e.vnow.Load())
}

func (e *Engine) wallNow() simtime.Instant {
	return simtime.At(time.Duration(float64(time.Since(e.start)) * e.opts.TimeScale))
}

func (e *Engine) nowLocked() simtime.Instant {
	if e.opts.VirtualClock {
		return simtime.Instant(e.vnow.Load())
	}
	return e.wallNow()
}

// Submit validates the submission and places it on the intake queue,
// returning a ticket immediately. The verdict arrives when the submission's
// admission epoch flushes (Done). Errors: a validation error (malformed
// submission), ErrOverloaded (queue full — back off and retry), or
// ErrDraining.
func (e *Engine) Submit(sub Submission) (*Ticket, error) {
	if err := sub.validate(e.sc.Network.NumMachines()); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.draining.Load() || e.fatal != nil {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	if len(e.queue) >= e.opts.QueueCap {
		e.mBackpressure.Inc()
		if e.audit.Enabled() {
			e.audit.Append(&lifecycle.Record{
				Kind: lifecycle.KindBackpressure,
				Item: -1,
				Name: sub.Name,
				Timeline: []lifecycle.Hop{
					{Stage: lifecycle.StageReceived, V: int64(e.nowLocked())},
				},
				QueueDepth:  len(e.queue),
				Status:      "backpressure",
				RetryAfterS: retryAfterSeconds,
				Shard:       e.opts.Shard,
			})
		}
		e.mu.Unlock()
		return nil, ErrOverloaded
	}
	t := &Ticket{
		eng:     e,
		id:      fmt.Sprintf("%sr-%d", e.opts.TicketPrefix, e.nextID),
		sub:     sub,
		done:    make(chan struct{}),
		arrived: e.nowLocked(),
		item:    -1,
		status:  StatusQueued,
	}
	if e.audit.Enabled() {
		t.arrivedWall = time.Now()
		t.queueDepth = len(e.queue)
	}
	e.nextID++
	if len(e.queue) == 0 {
		e.oldest = time.Now()
	}
	e.queue = append(e.queue, t)
	e.tickets[t.id] = t
	e.gQueue.Set(float64(len(e.queue)))
	e.qdepth.Store(int64(len(e.queue)))
	if e.opts.VirtualClock && len(e.queue) >= e.opts.MaxBatch {
		e.flushLocked(e.nowLocked())
	}
	e.mu.Unlock()
	if !e.opts.VirtualClock {
		select {
		case e.kick <- struct{}{}:
		default:
		}
	}
	return t, nil
}

// SubmitWait is Submit plus a blocking wait for the first verdict. In
// virtual-clock mode the verdict only arrives once someone advances the
// clock or the batch fills, so pair SubmitWait with a driver goroutine.
func (e *Engine) SubmitWait(ctx context.Context, sub Submission) (*Ticket, error) {
	t, err := e.Submit(sub)
	if err != nil {
		return nil, err
	}
	select {
	case <-t.Done():
		return t, nil
	case <-ctx.Done():
		return t, ctx.Err()
	}
}

// Advance moves the virtual clock to instant to (which must not precede the
// current instant), flushing any pending submissions first at the instant
// they arrived. Calling Advance with to equal to the current instant is a
// pure flush. Errors in wall-clock mode.
func (e *Engine) Advance(to simtime.Instant) error {
	if !e.opts.VirtualClock {
		return errors.New("serve: Advance requires the virtual clock")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := simtime.Instant(e.vnow.Load())
	if to.Before(now) {
		return fmt.Errorf("serve: cannot advance backwards (%v < %v)", to, now)
	}
	e.flushLocked(now)
	e.vnow.Store(int64(to))
	return e.fatal
}

// Flush forces a pending batch into an admission epoch at the current
// instant without waiting for MaxBatch or MaxWait.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flushLocked(e.nowLocked())
	return e.fatal
}

// Drain closes intake, completes the in-flight epoch (flushing whatever is
// queued), and stops the background flusher. Safe to call more than once.
// After Drain returns, the committed schedule is final and the read-side
// accessors remain usable.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if e.draining.Load() {
		e.mu.Unlock()
		select {
		case <-e.stopped:
			return e.fatal
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	e.draining.Store(true)
	if e.opts.VirtualClock {
		e.flushLocked(e.nowLocked())
		e.mu.Unlock()
		return e.fatal
	}
	e.mu.Unlock()
	close(e.drainCh)
	select {
	case <-e.stopped:
		return e.fatal
	case <-ctx.Done():
		return ctx.Err()
	}
}

// loop is the wall-clock flusher: it runs epochs when a batch fills or the
// oldest pending submission has waited MaxWait.
func (e *Engine) loop() {
	defer close(e.stopped)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	for {
		select {
		case <-e.kick:
		case <-timer.C:
			armed = false
		case <-e.drainCh:
			disarm()
			e.mu.Lock()
			e.flushLocked(e.nowLocked())
			e.mu.Unlock()
			return
		}
		e.mu.Lock()
		switch {
		case len(e.queue) == 0:
			e.mu.Unlock()
			disarm()
		case len(e.queue) >= e.opts.MaxBatch || time.Since(e.oldest) >= e.opts.MaxWait:
			e.flushLocked(e.nowLocked())
			e.mu.Unlock()
			disarm()
		default:
			wait := e.opts.MaxWait - time.Since(e.oldest)
			e.mu.Unlock()
			disarm()
			timer.Reset(wait)
			armed = true
		}
	}
}

// flushLocked runs one admission epoch at instant at over everything
// pending: extend the scenario with the batch's items, replan with the
// committed schedule locked in, optionally attempt preemption, then assign
// verdicts. Call with e.mu held.
func (e *Engine) flushLocked(at simtime.Instant) {
	if len(e.queue) == 0 || e.fatal != nil {
		return
	}
	batch := e.queue
	e.queue = nil
	e.gQueue.Set(0)
	e.qdepth.Store(0)
	span := e.epochTimer.Start()
	auditing := e.audit.Enabled()
	var aw auditWalls
	if auditing {
		e.epochObjDelta = 0
		aw.epochStart = time.Now()
	}
	e.epochs++
	e.mEpochs.Inc()
	e.lastEpoch = at
	e.intro.SetPhase(fmt.Sprintf("epoch %d @ %v (%d submissions)", e.epochs, at, len(batch)))
	e.hBatch.Observe(float64(len(batch)))

	for _, t := range batch {
		id := model.ItemID(len(e.sc.Items))
		t.item = id
		t.epoch = at
		e.sc.Items = append(e.sc.Items, t.sub.item(id))
		e.totalReqs += len(t.sub.Requests)
	}
	// The engine holds &e.sc, so this is the trusted same-pointer path;
	// an error can only mean the append-only contract broke, which wedges
	// the engine like any other internal failure.
	if err := e.dyn.SetScenario(&e.sc); err != nil {
		e.failLocked(err, batch)
		span.Stop()
		return
	}

	if err := e.replanLocked(at); err != nil {
		e.failLocked(err, batch)
		span.Stop()
		return
	}
	if auditing {
		aw.planned = time.Now()
	}
	if e.opts.Preemption {
		e.preemptLocked(at, batch)
		if e.fatal != nil {
			span.Stop()
			return
		}
	}
	revised := e.settleLocked(batch)
	if auditing {
		aw.decided = time.Now()
	}
	e.publishLocked()
	if auditing {
		aw.settled = time.Now()
		e.emitAuditLocked(at, batch, revised, aw)
	}
	for _, t := range batch {
		e.flushed = append(e.flushed, t)
		if !t.resolved {
			t.resolved = true
			close(t.done)
		}
	}
	span.Stop()
	e.intro.SetPhase("idle")
}

// replanLocked runs one engine replan at instant at and records which
// path it took: per-path epoch counters, cumulative replayed-transfer and
// delta-item counts, and the live /runinfo stats.
func (e *Engine) replanLocked(at simtime.Instant) error {
	if _, err := e.dyn.ReplanAt(at); err != nil {
		return err
	}
	es := e.dyn.LastEpoch()
	path := "incremental"
	if es.Full {
		path = "full"
		e.mEpochsFull.Inc()
		e.mReplayTransfers.Add(int64(es.ReplayedTransfers))
	} else {
		e.mEpochsIncremental.Inc()
	}
	if es.DeltaItems > 0 {
		e.mDeltaItems.Add(int64(es.DeltaItems))
	}
	e.intro.SetStat("epoch_path", path)
	e.intro.SetStat("epoch_replay_transfers", strconv.Itoa(es.ReplayedTransfers))
	e.intro.SetStat("epoch_delta_items", strconv.Itoa(es.DeltaItems))
	return nil
}

// failLocked wedges the engine after a replan failure: the batch (and any
// future submission) is rejected with the internal error, and Drain
// surfaces it.
func (e *Engine) failLocked(err error, batch []*Ticket) {
	e.fatal = err
	for _, t := range batch {
		t.status = StatusRejected
		for k, rq := range t.sub.Requests {
			t.verdicts = append(t.verdicts, RequestVerdict{
				Request:    model.RequestID{Item: t.item, Index: k},
				Machine:    rq.Machine,
				Status:     StatusRejected,
				Deadline:   rq.Deadline,
				Reason:     "internal: " + err.Error(),
				BlamedLink: -1,
			})
		}
		if !t.resolved {
			t.resolved = true
			close(t.done)
		}
	}
	e.publishLocked()
}

// preemptLocked attempts to displace not-yet-started transfers of strictly
// lower-priority items on behalf of unsatisfied new requests. The
// displacement is kept only when it strictly improves the weighted
// objective; otherwise the checkpoint is rolled back and the world replans
// to the bit-identical pre-speculation schedule.
func (e *Engine) preemptLocked(at simtime.Instant, batch []*Ticket) {
	sat := e.dyn.Satisfied()
	maxPri := -1
	for _, t := range batch {
		for k, rq := range e.sc.Items[t.item].Requests {
			if _, ok := sat[model.RequestID{Item: t.item, Index: k}]; !ok && int(rq.Priority) > maxPri {
				maxPri = int(rq.Priority)
			}
		}
	}
	if maxPri <= 0 {
		return // nothing unsatisfied, or nothing that outranks any priority
	}
	prevValue := e.weightedValueLocked()
	prevSat := make(map[model.RequestID]simtime.Instant, len(sat))
	for id, t := range sat {
		prevSat[id] = t
	}
	cp := e.dyn.Checkpoint()
	dropped := e.dyn.DropHistory(func(tr state.Transfer) bool {
		return !tr.Start.Before(at) && e.itemMaxPriorityLocked(tr.Item) < maxPri
	})
	if dropped == 0 {
		return
	}
	if err := e.replanLocked(at); err != nil {
		e.failLocked(err, batch)
		return
	}
	if newValue := e.weightedValueLocked(); newValue > prevValue {
		e.epochObjDelta = newValue - prevValue
		newSat := e.dyn.Satisfied()
		for id := range prevSat {
			if _, ok := newSat[id]; !ok {
				e.preempted[id] = true
				e.mPreempted.Inc()
			}
		}
		return
	}
	e.dyn.Rollback(cp)
	if err := e.replanLocked(at); err != nil {
		e.failLocked(err, batch)
	}
}

func (e *Engine) itemMaxPriorityLocked(item model.ItemID) int {
	max := -1
	for _, rq := range e.sc.Items[item].Requests {
		if int(rq.Priority) > max {
			max = int(rq.Priority)
		}
	}
	return max
}

// weightedValueLocked returns the weighted objective over every satisfied
// request. Incremental: the state's satisfaction log is append-only, so each
// call folds in only the suffix past what the tracker already summed. A
// full-replay epoch swaps in a rebuilt state whose fresh log re-derives the
// sum from scratch (the state pointer is the generation tag), which is what
// keeps preemption's before/after comparisons correct across rollbacks.
func (e *Engine) weightedValueLocked() float64 {
	st := e.dyn.State()
	if st == nil {
		return 0
	}
	log := st.SatisfiedLog()
	if st != e.satState || len(log) < e.satConsumed {
		e.satState, e.satConsumed, e.satValue = st, 0, 0
	}
	for _, id := range log[e.satConsumed:] {
		e.satValue += e.opts.Config.Weights.Of((&e.sc).Request(id).Priority)
	}
	e.satConsumed = len(log)
	return e.satValue
}

// settleLocked refreshes ticket verdicts against the current satisfaction
// map. New tickets (the batch) get full verdicts with an explain diagnosis
// on rejection; older tickets only transition status (late admission,
// preemption) without re-diagnosing.
//
// The old-ticket pass is incremental: committed transfers survive an
// incremental epoch, so a fully-admitted ticket's verdicts cannot change
// without a history rewrite — only tickets with an unsatisfied request
// (the unsettled list) can late-admit and need re-examining. Full-replay
// epochs rewrote the past (preemption, rollback), so every flushed ticket
// is re-settled and the unsettled list is rebuilt from scratch.
// settleLocked returns the previously-flushed tickets whose verdicts this
// epoch changed (late admission, preemption) — the revision records the
// audit log emits. Revision detection only runs when auditing is on; the
// returned slice is nil otherwise.
func (e *Engine) settleLocked(batch []*Ticket) (revised []*Ticket) {
	sat := e.dyn.Satisfied()
	st := e.dyn.State()
	auditing := e.audit.Enabled()

	resettle := func(t *Ticket) {
		if !auditing {
			e.settleTicketLocked(t, sat, st, false)
			return
		}
		before := t.verdictStatuses()
		e.settleTicketLocked(t, sat, st, false)
		if t.verdictsChanged(before) {
			revised = append(revised, t)
		}
	}

	if e.dyn.LastEpoch().Full {
		for _, t := range e.flushed {
			resettle(t)
		}
		e.unsettled = e.unsettled[:0]
		for _, t := range e.flushed {
			if !e.settledForGoodLocked(t) {
				e.unsettled = append(e.unsettled, t)
			}
		}
	} else {
		keep := e.unsettled[:0]
		for _, t := range e.unsettled {
			resettle(t)
			if !e.settledForGoodLocked(t) {
				keep = append(keep, t)
			}
		}
		e.unsettled = keep
	}
	for _, t := range batch {
		e.settleTicketLocked(t, sat, st, true)
		if !e.settledForGoodLocked(t) {
			e.unsettled = append(e.unsettled, t)
		}
	}
	return revised
}

// settledForGoodLocked reports whether no later epoch can change the
// ticket's verdicts without a history rewrite: either every request is
// admitted, or the planner has permanently retired the item (its remaining
// requests are unsatisfiable at every future floor). Either way the ticket
// leaves the unsettled list, which is what keeps the per-epoch settle cost
// proportional to the late-admission candidates instead of the run length.
func (e *Engine) settledForGoodLocked(t *Ticket) bool {
	if e.dyn.ItemRetired(t.item) {
		return true
	}
	for i := range t.verdicts {
		if t.verdicts[i].Status != StatusAdmitted {
			return false
		}
	}
	return true
}

func (e *Engine) settleTicketLocked(t *Ticket, sat map[model.RequestID]simtime.Instant,
	st *state.State, fresh bool) {

	if fresh {
		t.verdicts = make([]RequestVerdict, 0, len(t.sub.Requests))
		for k, rq := range t.sub.Requests {
			t.verdicts = append(t.verdicts, RequestVerdict{
				Request:    model.RequestID{Item: t.item, Index: k},
				Machine:    rq.Machine,
				Deadline:   rq.Deadline,
				BlamedLink: -1,
			})
		}
	}
	admitted := 0
	preempted := 0
	for k := range t.verdicts {
		v := &t.verdicts[k]
		if arr, ok := sat[v.Request]; ok {
			if !fresh && v.Status != StatusAdmitted {
				// Late admission: a replan for a later epoch found room.
				e.mAdmitted.Inc()
			}
			delete(e.preempted, v.Request)
			v.Status = StatusAdmitted
			v.Completion = Instant(arr)
			v.Reason = ""
			v.BlamedLink = -1
			admitted++
			continue
		}
		switch {
		case fresh:
			v.Status = StatusRejected
			e.mRejected.Inc()
			e.diagnoseLocked(v)
		case v.Status == StatusAdmitted && e.preempted[v.Request]:
			v.Status = StatusPreempted
			v.Completion = 0
			v.Reason = "displaced by a higher-priority arrival"
		case v.Status == StatusAdmitted:
			// Lost satisfaction without a preemption marker (cannot happen
			// without link failures, which serve does not inject).
			v.Status = StatusRejected
			v.Completion = 0
		}
		if v.Status == StatusPreempted {
			preempted++
		}
	}
	switch {
	case admitted > 0:
		t.status = StatusAdmitted
	case preempted > 0:
		t.status = StatusPreempted
	default:
		t.status = StatusRejected
	}
	t.route = st.TransfersFor(t.item)
	if fresh {
		e.mAdmitted.Add(int64(admitted))
	}
}

// diagnoseLocked fills a fresh rejection's blame via explain: the verdict
// class and, for contention, the most-obstructed link of the ideal path.
// With SkipDiagnosis the rejection is left unexplained (diagnosis walks
// the whole committed schedule, which dominates reject-heavy soaks).
func (e *Engine) diagnoseLocked(v *RequestVerdict) {
	if e.opts.SkipDiagnosis {
		v.Reason = "rejected (diagnosis disabled)"
		return
	}
	rep, err := explain.Diagnose(&e.sc, e.dyn.Transfers(), v.Request)
	if err != nil {
		v.Reason = "undiagnosed: " + err.Error()
		return
	}
	v.Reason = rep.Verdict.String()
	if link, _, ok := rep.BlamedLink(); ok {
		v.BlamedLink = int(link)
	}
}

// TicketView returns the current state of one submission.
func (e *Engine) TicketView(id string) (TicketView, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tickets[id]
	if !ok {
		return TicketView{}, false
	}
	return t.viewLocked(), true
}

// Schedule returns a snapshot of the committed schedule and objective.
// Lock-free: it reads the world published by the last completed epoch, so
// pollers never contend with admission. During an in-flight epoch the view
// is the previous epoch's — consistent, at most one epoch stale.
func (e *Engine) Schedule() ScheduleView {
	s := e.snap.Load()
	v := ScheduleView{
		Now:           Instant(e.Now()),
		Epochs:        s.epochs,
		Items:         s.items,
		TotalRequests: s.totalReqs,
		Satisfied:     s.satisfied,
		WeightedValue: s.weightedValue,
	}
	v.Transfers = append(v.Transfers, s.transfers...)
	return v
}

// Info describes the service for clients (notably the load generator).
// Lock-free: static fields are immutable after New, the rest come from the
// published snapshot and the intake/clock/drain atomics.
func (e *Engine) Info() Info {
	s := e.snap.Load()
	return Info{
		Scenario:  e.sc.Name,
		Machines:  e.sc.Network.NumMachines(),
		Links:     len(e.sc.Network.Links),
		Items:     s.items,
		Horizon:   Instant(e.sc.Horizon),
		Now:       Instant(e.Now()),
		Queue:     int(e.qdepth.Load()),
		QueueCap:  e.opts.QueueCap,
		MaxBatch:  e.opts.MaxBatch,
		Virtual:   e.opts.VirtualClock,
		Scheduler: fmt.Sprintf("%v/%v", e.opts.Config.Heuristic, e.opts.Config.Criterion),
		Draining:  e.draining.Load(),
	}
}

// Scenario returns the engine's scenario including every admitted item.
// Only safe once the engine is quiescent (after Drain); used by tests to
// run the independent validator over the final schedule.
func (e *Engine) Scenario() *scenario.Scenario {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &e.sc
}

// Result synthesizes a core.Result over the committed world — the shape the
// offline renderers (report tables, chrometrace) consume. Like Scenario,
// only safe once the engine is quiescent (after Drain).
func (e *Engine) Result() *core.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	sat := e.dyn.Satisfied()
	out := &core.Result{
		Config:    e.opts.Config,
		Transfers: append([]state.Transfer(nil), e.dyn.Transfers()...),
		Satisfied: make(map[model.RequestID]simtime.Instant, len(sat)),
	}
	for id, at := range sat {
		out.Satisfied[id] = at
	}
	return out
}

// Err reports the first fatal replan error, if any.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fatal
}
