package serve

import (
	"strings"
	"testing"
	"time"
)

// TestLoadReportStats pins the window/percentile arithmetic the soak gate
// and the stageload summary are built on.
func TestLoadReportStats(t *testing.T) {
	r := &LoadReport{
		Requests: 8, Admitted: 5, Rejected: 3, Preempted: 1, Errors: 2,
		Overloaded: 4, Elapsed: 2 * time.Second,
		Latencies: []time.Duration{1, 2, 3, 4, 5, 6, 7, 8},
		Ordered:   []time.Duration{2, 2, 4, 4, 6, 6, 8, 8},
	}
	means := r.WindowMeans(4)
	want := []time.Duration{2, 4, 6, 8}
	if len(means) != 4 {
		t.Fatalf("WindowMeans(4) = %v", means)
	}
	for i := range want {
		if means[i] != want[i] {
			t.Fatalf("WindowMeans(4) = %v, want %v", means, want)
		}
	}
	if got := r.Slope(4); got != 4 {
		t.Fatalf("Slope(4) = %v, want 4", got)
	}
	// More windows than samples degrade to one window per sample.
	if ms := r.WindowMeans(100); len(ms) != len(r.Ordered) {
		t.Fatalf("WindowMeans(100) has %d windows, want %d", len(ms), len(r.Ordered))
	}
	if ms := r.WindowMeans(0); ms != nil {
		t.Fatalf("WindowMeans(0) = %v, want nil", ms)
	}
	if got := (&LoadReport{}).Slope(4); got != 1 {
		t.Fatalf("empty Slope = %v, want 1", got)
	}
	if got := r.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := r.Percentile(100); got != 8 {
		t.Fatalf("p100 = %v, want 8", got)
	}
	if got := (&LoadReport{}).Percentile(50); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}

	var sb strings.Builder
	r.Write(&sb)
	out := sb.String()
	for _, want := range []string{
		"requests   8", "admitted   5 (62.5%)", "rejected   3 (37.5%)",
		"preempted  1", "errors     2", "overloaded 4", "latency", "throughput 4.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// The zero-request report must not divide by zero.
	var zb strings.Builder
	(&LoadReport{Elapsed: time.Second}).Write(&zb)
	if !strings.Contains(zb.String(), "admitted   0 (0.0%)") {
		t.Errorf("zero report:\n%s", zb.String())
	}
}

// TestGenSubmission: the synthetic stream is deterministic, in-range, and
// never sources and requests the same machine.
func TestGenSubmission(t *testing.T) {
	p := DefaultLoadParams(7, 100)
	info := Info{Machines: 10, Now: Instant(time.Hour), Horizon: Instant(24 * time.Hour)}
	for i := 0; i < 100; i++ {
		a, b := GenSubmission(p, info, i), GenSubmission(p, info, i)
		if a.Name != b.Name || a.SizeBytes != b.SizeBytes ||
			a.Sources[0] != b.Sources[0] || a.Requests[0] != b.Requests[0] {
			t.Fatalf("submission %d not deterministic: %+v vs %+v", i, a, b)
		}
		if a.Sources[0].Machine == a.Requests[0].Machine {
			t.Fatalf("submission %d: source == destination %d", i, a.Sources[0].Machine)
		}
		if a.SizeBytes < p.SizeMin || a.SizeBytes > p.SizeMax {
			t.Fatalf("submission %d: size %d outside [%d, %d]", i, a.SizeBytes, p.SizeMin, p.SizeMax)
		}
		rq := a.Requests[0]
		if rq.Deadline < info.Now+Instant(p.SlackMin) || rq.Deadline > info.Horizon {
			t.Fatalf("submission %d: deadline %v outside slack/horizon", i, rq.Deadline)
		}
		if rq.Priority < 0 || rq.Priority > p.MaxPriority {
			t.Fatalf("submission %d: priority %d", i, rq.Priority)
		}
	}
	// A tight horizon clamps the deadline.
	tight := Info{Machines: 3, Now: 0, Horizon: Instant(time.Minute)}
	if d := GenSubmission(p, tight, 0).Requests[0].Deadline; d != tight.Horizon {
		t.Fatalf("deadline %v not clamped to horizon %v", d, tight.Horizon)
	}
}
