package serve

import (
	"time"

	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/simtime"
)

// Audit returns the engine's lifecycle recorder (nil when auditing is off).
func (e *Engine) Audit() *lifecycle.Recorder { return e.audit }

// auditWalls are the wall-clock stamps of one admission epoch's phases,
// captured only when auditing is enabled. In deterministic (virtual-clock)
// mode the recorder strips them again, so capturing is harmless there.
type auditWalls struct {
	epochStart, planned, decided, settled time.Time
}

// verdictStatuses snapshots the per-request statuses before an old ticket is
// re-settled, so a revising epoch can be detected. Call with e.mu held.
func (t *Ticket) verdictStatuses() []Status {
	out := make([]Status, len(t.verdicts))
	for i := range t.verdicts {
		out[i] = t.verdicts[i].Status
	}
	return out
}

// verdictsChanged reports whether any request's status differs from the
// snapshot taken before re-settling.
func (t *Ticket) verdictsChanged(before []Status) bool {
	if len(before) != len(t.verdicts) {
		return true
	}
	for i := range t.verdicts {
		if t.verdicts[i].Status != before[i] {
			return true
		}
	}
	return false
}

// auditRecordLocked builds the wide event for one ticket as decided (or
// revised) by the epoch that just ran at instant at. Call with e.mu held,
// after settleLocked has assigned verdicts.
func (e *Engine) auditRecordLocked(kind lifecycle.Kind, t *Ticket,
	at simtime.Instant, batchSize int, aw auditWalls) *lifecycle.Record {

	es := e.dyn.LastEpoch()
	path := "incremental"
	if es.Full {
		path = "full"
	}
	// Wall offsets are seconds since the submission was received; clock
	// skew and unset stamps clamp to zero so the timeline stays monotone.
	wall := func(w time.Time) float64 {
		if t.arrivedWall.IsZero() || w.IsZero() {
			return 0
		}
		if d := w.Sub(t.arrivedWall); d > 0 {
			return d.Seconds()
		}
		return 0
	}
	rec := &lifecycle.Record{
		Kind:   kind,
		Ticket: t.id,
		Item:   int(t.item),
		Name:   t.sub.Name,
		Timeline: []lifecycle.Hop{
			{Stage: lifecycle.StageReceived, V: int64(t.arrived)},
			{Stage: lifecycle.StageEnqueued, V: int64(t.arrived)},
			{Stage: lifecycle.StageEpochStart, V: int64(at), WallS: wall(aw.epochStart)},
			{Stage: lifecycle.StagePlanned, V: int64(at), WallS: wall(aw.planned)},
			{Stage: lifecycle.StageDecided, V: int64(at), WallS: wall(aw.decided)},
			{Stage: lifecycle.StageSettled, V: int64(at), WallS: wall(aw.settled)},
		},
		QueueDepth:        t.queueDepth,
		Epoch:             e.epochs,
		EpochAt:           int64(at),
		EpochPath:         path,
		BatchSize:         batchSize,
		ReplayedTransfers: es.ReplayedTransfers,
		DeltaItems:        es.DeltaItems,
		Status:            string(t.status),
		DecisionLatencyS:  wall(aw.decided),
		Shard:             e.opts.Shard,
	}
	if t.status == StatusPreempted && e.epochObjDelta != 0 {
		rec.ObjectiveDelta = e.epochObjDelta
	}
	for k := range t.verdicts {
		v := &t.verdicts[k]
		pri := 0
		if k < len(t.sub.Requests) {
			pri = t.sub.Requests[k].Priority
		}
		rec.Requests = append(rec.Requests, lifecycle.RequestOutcome{
			Item:       int(v.Request.Item),
			Index:      v.Request.Index,
			Machine:    v.Machine,
			Priority:   pri,
			Status:     string(v.Status),
			Deadline:   int64(v.Deadline),
			Completion: int64(v.Completion),
			Reason:     v.Reason,
			BlamedLink: v.BlamedLink,
		})
	}
	return rec
}

// emitAuditLocked appends the epoch's audit records: one decision per batch
// ticket, then one revision per older ticket whose verdicts this epoch
// changed. Call with e.mu held, before the done channels close, so a waiter
// that wakes on Done always finds its trace.
func (e *Engine) emitAuditLocked(at simtime.Instant, batch, revised []*Ticket, aw auditWalls) {
	for _, t := range batch {
		e.audit.Append(e.auditRecordLocked(lifecycle.KindDecision, t, at, len(batch), aw))
	}
	for _, t := range revised {
		e.audit.Append(e.auditRecordLocked(lifecycle.KindRevision, t, at, len(batch), aw))
	}
}
