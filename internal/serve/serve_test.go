package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/dynamic"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/obs/introspect"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
	"datastaging/internal/validator"
)

func cfgC4(o *obs.Obs) core.Config {
	return core.Config{
		Heuristic: core.FullPathOneDest,
		Criterion: core.C4,
		EU:        core.EUFromLog10(2),
		Weights:   model.Weights1x10x100,
		Obs:       o,
	}
}

// subFromItem converts a scenario item back into the submission that would
// create it, for trace replay.
func subFromItem(it model.Item) Submission {
	sub := Submission{Name: it.Name, SizeBytes: it.SizeBytes}
	for _, src := range it.Sources {
		sub.Sources = append(sub.Sources, SourceSpec{
			Machine: int(src.Machine), Available: Instant(src.Available),
		})
	}
	for _, rq := range it.Requests {
		sub.Requests = append(sub.Requests, RequestSpec{
			Machine:  int(rq.Machine),
			Deadline: Instant(rq.Deadline),
			Priority: int(rq.Priority),
		})
	}
	return sub
}

// TestHTTPEquivalence is the end-to-end contract: replaying an arrival
// trace through the HTTP API in virtual-clock mode yields a final schedule
// that is validator-clean and bit-identical — transfers and weighted
// objective — to dynamic.Simulate replaying the same trace offline.
func TestHTTPEquivalence(t *testing.T) {
	sc := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 6, Max: 6}
		p.RequestsPerMachine = gen.IntRange{Min: 6, Max: 6}
		return p
	}(), 7)

	// The trace: item i arrives at (i mod 3) * 20 min. Reorder items so
	// arrival times are non-decreasing, because the service numbers items
	// in submission order.
	type timed struct {
		item    model.Item
		arrival simtime.Instant
	}
	arrivals := make([]timed, len(sc.Items))
	for i, it := range sc.Items {
		arrivals[i] = timed{it, simtime.At(time.Duration(i%3) * 20 * time.Minute)}
	}
	sort.SliceStable(arrivals, func(a, b int) bool { return arrivals[a].arrival < arrivals[b].arrival })
	var events []dynamic.Event
	for i := range arrivals {
		arrivals[i].item.ID = model.ItemID(i)
		sc.Items[i] = arrivals[i].item
		if arrivals[i].arrival > 0 {
			events = append(events, dynamic.Event{
				At: arrivals[i].arrival, Kind: dynamic.ItemRelease, Item: model.ItemID(i),
			})
		}
	}

	want, err := dynamic.Simulate(sc, cfgC4(nil), events)
	if err != nil {
		t.Fatal(err)
	}
	var wantValue float64
	for id := range want.Satisfied {
		wantValue += model.Weights1x10x100.Of(sc.Request(id).Priority)
	}

	// Boot the service over the same network with an empty request book and
	// replay the trace through HTTP.
	empty := *sc
	empty.Items = nil
	eng, err := New(&empty, Options{
		Config:       cfgC4(obs.New()),
		VirtualClock: true,
		MaxBatch:     len(sc.Items) + 1, // flush only on Advance
		QueueCap:     len(sc.Items) + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	for i := range arrivals {
		at := arrivals[i].arrival
		if i == 0 || arrivals[i-1].arrival != at {
			if _, err := c.Advance(ctx, Instant(at)); err != nil {
				t.Fatalf("advance to %v: %v", at, err)
			}
		}
		view, err := c.Submit(ctx, subFromItem(arrivals[i].item), false)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if view.Status != StatusQueued {
			t.Fatalf("submission %d: status %q before its epoch", i, view.Status)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := c.Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.WeightedValue != wantValue {
		t.Errorf("weighted value %v over HTTP, %v from Simulate", got.WeightedValue, wantValue)
	}
	if got.Satisfied != len(want.Satisfied) {
		t.Errorf("satisfied %d over HTTP, %d from Simulate", got.Satisfied, len(want.Satisfied))
	}
	if len(got.Transfers) != len(want.Transfers) {
		t.Fatalf("transfers %d over HTTP, %d from Simulate", len(got.Transfers), len(want.Transfers))
	}
	for i := range want.Transfers {
		if got.Transfers[i] != want.Transfers[i] {
			t.Fatalf("transfer %d: %+v over HTTP, %+v from Simulate",
				i, got.Transfers[i], want.Transfers[i])
		}
	}
	if err := validator.Validate(eng.Scenario(), got.Transfers); err != nil {
		t.Errorf("service schedule failed independent validation: %v", err)
	}

	// Every admitted ticket exposes a non-empty committed route; every
	// rejected one carries an explain reason.
	views := ticketSweep(t, c, len(arrivals))
	for _, v := range views {
		switch v.Status {
		case StatusAdmitted:
			if len(v.Route) == 0 {
				t.Errorf("ticket %s admitted with no route", v.ID)
			}
		case StatusRejected:
			for _, rv := range v.Requests {
				if rv.Status == StatusRejected && rv.Reason == "" {
					t.Errorf("ticket %s rejected without a reason", v.ID)
				}
			}
		default:
			t.Errorf("ticket %s still %q after the final flush", v.ID, v.Status)
		}
	}
}

func ticketSweep(t *testing.T, c *Client, n int) []TicketView {
	t.Helper()
	out := make([]TicketView, 0, n)
	for i := 0; i < n; i++ {
		v, err := c.Ticket(context.Background(), fmt.Sprintf("r-%d", i))
		if err != nil {
			t.Fatalf("ticket r-%d: %v", i, err)
		}
		out = append(out, v)
	}
	return out
}

func lineSubmission(deadline time.Duration, pri int) Submission {
	return Submission{
		SizeBytes: 1024,
		Sources:   []SourceSpec{{Machine: 0}},
		Requests:  []RequestSpec{{Machine: 1, Deadline: Instant(simtime.At(deadline)), Priority: pri}},
	}
}

// narrowNet is a two-machine network whose single link opens at 60s and
// fits exactly one 1024-byte transfer per second.
func narrowNet() *scenario.Scenario {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<20)
	b.Link(ms[0], ms[1], 60*time.Second, 24*time.Hour, 8192)
	return b.Build("narrow")
}

// TestBackpressure: the intake queue bound sheds load with ErrOverloaded
// and counts it, both in-process and as HTTP 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	o := obs.New()
	eng, err := New(narrowNet(), Options{
		Config:       cfgC4(o),
		VirtualClock: true,
		MaxBatch:     100, // never flush on batch size
		QueueCap:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Submit(lineSubmission(10*time.Minute, 0)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := eng.Submit(lineSubmission(10*time.Minute, 0)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull queue: got %v, want ErrOverloaded", err)
	}
	if n := o.Counter("serve.rejected_backpressure_total").Value(); n != 1 {
		t.Errorf("serve.rejected_backpressure_total = %d, want 1", n)
	}

	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	_, err = c.Submit(context.Background(), lineSubmission(10*time.Minute, 0), false)
	var st *ErrStatus
	if !errors.As(err, &st) || !st.IsOverloaded() {
		t.Fatalf("HTTP submit on full queue: got %v, want 429", err)
	}
	if st.RetryAfter <= 0 {
		t.Errorf("429 without Retry-After")
	}
	if n := o.Counter("serve.rejected_backpressure_total").Value(); n != 2 {
		t.Errorf("serve.rejected_backpressure_total = %d, want 2", n)
	}

	// Draining the backlog admits it: the queue was full, not the network —
	// the link serializes the two transfers well before the deadline.
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := o.Counter("serve.admitted_total").Value(); n != 2 {
		t.Errorf("serve.admitted_total = %d, want 2", n)
	}
}

// TestPreemption: a higher-priority arrival displaces a not-yet-started
// lower-priority transfer exactly when Options.Preemption is on and the
// weighted objective strictly improves.
func TestPreemption(t *testing.T) {
	run := func(preempt bool) (*Engine, *obs.Obs) {
		t.Helper()
		o := obs.New()
		eng, err := New(narrowNet(), Options{
			Config:       cfgC4(o),
			VirtualClock: true,
			MaxBatch:     100,
			Preemption:   preempt,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Epoch 0: a low-priority submission books the link's opening slot
		// [60s, 61s). Its deadline leaves no second slot before 61.5s.
		if _, err := eng.Submit(lineSubmission(61500*time.Millisecond, int(model.Low))); err != nil {
			t.Fatal(err)
		}
		if err := eng.Advance(simtime.At(30 * time.Second)); err != nil {
			t.Fatal(err)
		}
		// Epoch 30s: a high-priority arrival needs that same slot.
		if _, err := eng.Submit(lineSubmission(61500*time.Millisecond, int(model.High))); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		return eng, o
	}

	eng, o := run(true)
	low, _ := eng.TicketView("r-0")
	high, _ := eng.TicketView("r-1")
	if high.Status != StatusAdmitted {
		t.Fatalf("with preemption: high-priority ticket %q, want admitted", high.Status)
	}
	if low.Status != StatusPreempted {
		t.Fatalf("with preemption: low-priority ticket %q, want preempted", low.Status)
	}
	if low.Requests[0].Reason == "" {
		t.Error("preempted verdict has no reason")
	}
	if n := o.Counter("serve.preempted_total").Value(); n != 1 {
		t.Errorf("serve.preempted_total = %d, want 1", n)
	}
	if v := eng.Schedule().WeightedValue; v != model.Weights1x10x100.Of(model.High) {
		t.Errorf("weighted value %v, want the high weight alone", v)
	}
	if err := validator.Validate(eng.Scenario(), eng.Schedule().Transfers); err != nil {
		t.Errorf("post-preemption schedule invalid: %v", err)
	}

	eng, o = run(false)
	low, _ = eng.TicketView("r-0")
	high, _ = eng.TicketView("r-1")
	if low.Status != StatusAdmitted {
		t.Fatalf("without preemption: low-priority ticket %q, want admitted", low.Status)
	}
	if high.Status != StatusRejected {
		t.Fatalf("without preemption: high-priority ticket %q, want rejected", high.Status)
	}
	if high.Requests[0].Reason == "" {
		t.Error("rejection has no explain reason")
	}
	if n := o.Counter("serve.preempted_total").Value(); n != 0 {
		t.Errorf("serve.preempted_total = %d, want 0", n)
	}
}

// TestDrain: draining closes intake, completes the pending epoch, and
// resolves every ticket; the HTTP layer answers 503 afterwards.
func TestDrain(t *testing.T) {
	o := obs.New()
	eng, err := New(narrowNet(), Options{
		Config:   cfgC4(o),
		MaxBatch: 100, // only the drain flushes
		MaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := eng.Submit(lineSubmission(10*time.Minute, 0))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := eng.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %s unresolved after drain", tk.ID())
		}
		if v := tk.View(); v.Status == StatusQueued {
			t.Errorf("ticket %s still queued after drain", tk.ID())
		}
	}
	if _, err := eng.Submit(lineSubmission(10*time.Minute, 0)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: got %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	_, err = (&Client{BaseURL: srv.URL}).Submit(context.Background(), lineSubmission(time.Minute, 0), false)
	var st *ErrStatus
	if !errors.As(err, &st) || st.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining over HTTP: got %v, want 503", err)
	}
}

// TestWallClockFlush: in wall-clock mode a lone submission flushes after
// MaxWait without reaching MaxBatch, and SubmitWait observes the verdict.
func TestWallClockFlush(t *testing.T) {
	eng, err := New(narrowNet(), Options{
		Config:   cfgC4(obs.New()),
		MaxBatch: 100,
		MaxWait:  5 * time.Millisecond,
		// A day of simulated time per wall second: the link's 60s window
		// opening is in the past by the first epoch.
		TimeScale: 86400,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Drain(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tk, err := eng.SubmitWait(ctx, lineSubmission(20*time.Hour, int(model.High)))
	if err != nil {
		t.Fatal(err)
	}
	if v := tk.View(); v.Status == StatusQueued {
		t.Fatalf("ticket still queued after SubmitWait")
	}
}

// TestHTTPAPI covers the remaining HTTP surface: validation errors, 404s,
// info, the advance guard rails, and the introspection mount.
func TestHTTPAPI(t *testing.T) {
	o := obs.New()
	intro := introspect.NewServer(o)
	eng, err := New(narrowNet(), Options{
		Config:       cfgC4(o),
		VirtualClock: true,
		MaxBatch:     1, // every submission flushes inline
		Intro:        intro,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	view, err := c.Submit(ctx, lineSubmission(10*time.Minute, int(model.Medium)), true)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusAdmitted {
		t.Fatalf("submission %q, want admitted", view.Status)
	}
	if view.Requests[0].Completion <= 0 {
		t.Error("admitted verdict has no completion instant")
	}

	if _, err := c.Ticket(ctx, "nope"); err == nil {
		t.Error("unknown ticket id did not 404")
	}
	var st *ErrStatus
	if _, err := c.Submit(ctx, Submission{}, false); !errors.As(err, &st) || st.Code != http.StatusBadRequest {
		t.Errorf("empty submission: got %v, want 400", err)
	}
	if _, err := c.Advance(ctx, Instant(-time.Second)); err == nil {
		t.Error("backwards advance accepted")
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Machines != 2 || !info.Virtual || info.Items != 1 {
		t.Errorf("info = %+v", info)
	}

	for _, path := range []string{"/healthz", "/metrics", "/runinfo", "/v1/schedule"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "serve_admitted_total 1") {
		t.Errorf("/metrics does not report serve_admitted_total 1:\n%s", sb.String())
	}
}

// TestInstantJSON: the wire Instant accepts both encodings and emits
// nanoseconds.
func TestInstantJSON(t *testing.T) {
	var in Instant
	if err := json.Unmarshal([]byte(`"90m"`), &in); err != nil || in.Instant() != simtime.At(90*time.Minute) {
		t.Errorf(`"90m" -> %v, %v`, in, err)
	}
	if err := json.Unmarshal([]byte(`5400000000000`), &in); err != nil || in.Instant() != simtime.At(90*time.Minute) {
		t.Errorf(`5400000000000 -> %v, %v`, in, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &in); err == nil {
		t.Error("bogus duration accepted")
	}
	b, err := json.Marshal(Instant(simtime.At(time.Second)))
	if err != nil || string(b) != "1000000000" {
		t.Errorf("marshal: %s, %v", b, err)
	}
}

// TestSubmissionValidation: malformed submissions never reach the queue.
func TestSubmissionValidation(t *testing.T) {
	eng, err := New(narrowNet(), Options{Config: cfgC4(nil), VirtualClock: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Submission{
		{},
		{SizeBytes: -1, Sources: []SourceSpec{{Machine: 0}}, Requests: []RequestSpec{{Machine: 1, Deadline: 1}}},
		{SizeBytes: 1, Requests: []RequestSpec{{Machine: 1, Deadline: 1}}},
		{SizeBytes: 1, Sources: []SourceSpec{{Machine: 0}}},
		{SizeBytes: 1, Sources: []SourceSpec{{Machine: 9}}, Requests: []RequestSpec{{Machine: 1, Deadline: 1}}},
		{SizeBytes: 1, Sources: []SourceSpec{{Machine: 0}, {Machine: 0}}, Requests: []RequestSpec{{Machine: 1, Deadline: 1}}},
		{SizeBytes: 1, Sources: []SourceSpec{{Machine: 0}}, Requests: []RequestSpec{{Machine: 0, Deadline: 1}}},
		{SizeBytes: 1, Sources: []SourceSpec{{Machine: 0}}, Requests: []RequestSpec{{Machine: 1, Deadline: 1}, {Machine: 1, Deadline: 1}}},
		{SizeBytes: 1, Sources: []SourceSpec{{Machine: 0}}, Requests: []RequestSpec{{Machine: 1, Deadline: 1, Priority: -1}}},
		{SizeBytes: 1, Sources: []SourceSpec{{Machine: 0}}, Requests: []RequestSpec{{Machine: 1, Deadline: 0}}},
	}
	for i, sub := range bad {
		if _, err := eng.Submit(sub); err == nil {
			t.Errorf("bad submission %d accepted: %+v", i, sub)
		}
	}
	if n := eng.Info().Queue; n != 0 {
		t.Errorf("queue depth %d after rejected submissions", n)
	}
}
