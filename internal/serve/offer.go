package serve

import (
	"fmt"
	"time"

	"datastaging/internal/dynamic"
	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

// Proposal is one speculative admission: Propose planned the submission
// into the engine's world and returns with the engine lock HELD, so the
// world cannot move until the caller settles the offer with exactly one of
// Commit or Abort. The two-level cross-shard admission path (internal/
// shard) builds an offer per touched shard, inspects earliest completions
// and the objective delta, and commits only on all-accept — otherwise each
// shard rolls back bit-identically via the engine's O(1) checkpoint.
//
// Holding the lock across the round is what makes an offer a real
// reservation rather than a racy estimate: no local submission, flush, or
// clock advance can invalidate the offered slots in between. Deadlock
// safety is the caller's contract — only a single coordinator may hold
// proposals on more than one engine at a time.
type Proposal struct {
	e  *Engine
	t  *Ticket
	cp dynamic.Checkpoint
	at simtime.Instant

	prevItems     int
	prevTotalReqs int
	delta         float64
	settled       bool
}

// Propose speculatively admits one submission at the engine's current
// instant: pending queued submissions are flushed first (the offer builds
// on a settled world), the world is checkpointed, the submission's item is
// appended, and one replan runs. The returned proposal holds the engine
// lock; the caller MUST call Commit or Abort. Errors (validation,
// draining, a wedged engine) leave the engine unlocked and unchanged.
func (e *Engine) Propose(sub Submission) (*Proposal, error) {
	if err := sub.validate(e.sc.Network.NumMachines()); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.draining.Load() || e.fatal != nil {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	at := e.nowLocked()
	e.flushLocked(at)
	if e.fatal != nil {
		e.mu.Unlock()
		return nil, e.fatal
	}
	p := &Proposal{
		e:             e,
		cp:            e.dyn.Checkpoint(),
		at:            at,
		prevItems:     len(e.sc.Items),
		prevTotalReqs: e.totalReqs,
	}
	prevValue := e.weightedValueLocked()
	t := &Ticket{
		eng:     e,
		id:      fmt.Sprintf("%sr-%d", e.opts.TicketPrefix, e.nextID),
		sub:     sub,
		done:    make(chan struct{}),
		arrived: at,
		epoch:   at,
		item:    model.ItemID(len(e.sc.Items)),
		status:  StatusQueued,
	}
	if e.audit.Enabled() {
		t.arrivedWall = time.Now()
	}
	e.nextID++
	e.sc.Items = append(e.sc.Items, sub.item(t.item))
	e.totalReqs += len(sub.Requests)
	if err := e.dyn.SetScenario(&e.sc); err != nil {
		e.failLocked(err, nil)
		e.mu.Unlock()
		return nil, err
	}
	if err := e.replanLocked(at); err != nil {
		e.failLocked(err, nil)
		e.mu.Unlock()
		return nil, err
	}
	p.t = t
	p.delta = e.weightedValueLocked() - prevValue
	return p, nil
}

// TicketID returns the id the ticket will carry if the offer commits.
func (p *Proposal) TicketID() string { return p.t.id }

// At returns the epoch instant the offer was planned at.
func (p *Proposal) At() simtime.Instant { return p.at }

// ObjectiveDelta is the weighted-objective gain of admitting the
// submission on top of the committed world — the per-shard term the
// coordinator sums when scoring an offer round.
func (p *Proposal) ObjectiveDelta() float64 { return p.delta }

// Admitted reports whether every request of the proposed submission is
// satisfied by the speculative plan (the all-accept criterion).
func (p *Proposal) Admitted() bool {
	sat := p.e.dyn.Satisfied()
	for k := range p.t.sub.Requests {
		if _, ok := sat[model.RequestID{Item: p.t.item, Index: k}]; !ok {
			return false
		}
	}
	return true
}

// Completion returns request k's committed delivery instant under the
// speculative plan, false when the request is not satisfied. The
// coordinator uses it as the earliest slot a downstream leg can build on.
func (p *Proposal) Completion(k int) (simtime.Instant, bool) {
	at, ok := p.e.dyn.Satisfied()[model.RequestID{Item: p.t.item, Index: k}]
	return at, ok
}

// Commit keeps the speculative plan: the ticket is registered, settled
// with full verdicts (metrics, diagnosis, audit), the world snapshot is
// republished, and the engine lock is released. Returns the live ticket.
func (p *Proposal) Commit() *Ticket {
	if p.settled {
		panic("serve: proposal settled twice")
	}
	p.settled = true
	e, t := p.e, p.t
	e.epochs++
	e.mEpochs.Inc()
	e.lastEpoch = p.at
	e.hBatch.Observe(1)
	var aw auditWalls
	auditing := e.audit.Enabled()
	if auditing {
		e.epochObjDelta = 0
		now := time.Now()
		aw = auditWalls{epochStart: now, planned: now, decided: now, settled: now}
	}
	e.tickets[t.id] = t
	e.settleTicketLocked(t, e.dyn.Satisfied(), e.dyn.State(), true)
	e.flushed = append(e.flushed, t)
	if !e.settledForGoodLocked(t) {
		e.unsettled = append(e.unsettled, t)
	}
	e.publishLocked()
	if auditing {
		e.emitAuditLocked(p.at, []*Ticket{t}, nil, aw)
	}
	t.resolved = true
	close(t.done)
	e.mu.Unlock()
	return t
}

// Abort discards the speculative plan and restores the pre-offer world
// bit-identically: the appended item is truncated, the checkpoint is
// rolled back, and one replan rebuilds the exact pre-speculation schedule
// (replay and heuristics are deterministic — the same guarantee the
// preemption path relies on). The engine lock is released.
func (p *Proposal) Abort() {
	if p.settled {
		panic("serve: proposal settled twice")
	}
	p.settled = true
	e := p.e
	e.sc.Items = e.sc.Items[:p.prevItems]
	e.totalReqs = p.prevTotalReqs
	e.dyn.Rollback(p.cp)
	if err := e.replanLocked(p.at); err != nil {
		e.failLocked(err, nil)
	}
	e.mu.Unlock()
}
