package model

import (
	"errors"
	"fmt"
)

// ErrNotStronglyConnected is returned by validation when the physical
// topology does not admit a path between every ordered pair of machines.
// The paper's test generator guarantees strong connectivity (§5.1).
var ErrNotStronglyConnected = errors.New("model: network is not strongly connected")

// Network is the communication system: the machine list and every virtual
// link, with adjacency precomputed for traversal.
type Network struct {
	Machines []Machine     `json:"machines"`
	Links    []VirtualLink `json:"links"`

	out [][]LinkID // outgoing virtual links per machine, lazily built
}

// NewNetwork validates the machines and links and returns a Network with
// adjacency built. The links slice is indexed by LinkID, so link IDs must
// equal their positions (same for machines).
func NewNetwork(machines []Machine, links []VirtualLink) (*Network, error) {
	n := &Network{Machines: machines, Links: links}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	n.buildAdjacency()
	return n, nil
}

// Validate checks structural invariants: positional IDs, in-range endpoints,
// no self-links, positive bandwidth, non-empty windows, non-negative
// capacities and latencies. It does not require strong connectivity; use
// StronglyConnected for that (the generator enforces it, hand-built
// scenarios need not).
func (n *Network) Validate() error {
	if len(n.Machines) == 0 {
		return errors.New("model: network has no machines")
	}
	for i, m := range n.Machines {
		if int(m.ID) != i {
			return fmt.Errorf("model: machine at index %d has ID %d", i, m.ID)
		}
		if m.CapacityBytes < 0 {
			return fmt.Errorf("model: machine %d has negative capacity", i)
		}
	}
	for i, l := range n.Links {
		if int(l.ID) != i {
			return fmt.Errorf("model: link at index %d has ID %d", i, l.ID)
		}
		if !n.validMachine(l.From) || !n.validMachine(l.To) {
			return fmt.Errorf("model: link %d endpoints (%d→%d) out of range", i, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("model: link %d is a self-link on machine %d", i, l.From)
		}
		if l.BandwidthBPS <= 0 {
			return fmt.Errorf("model: link %d has non-positive bandwidth %d", i, l.BandwidthBPS)
		}
		if l.Window.IsEmpty() {
			return fmt.Errorf("model: link %d has empty window %v", i, l.Window)
		}
		if l.Latency < 0 {
			return fmt.Errorf("model: link %d has negative latency %v", i, l.Latency)
		}
	}
	return nil
}

func (n *Network) validMachine(m MachineID) bool {
	return m >= 0 && int(m) < len(n.Machines)
}

func (n *Network) buildAdjacency() {
	n.out = make([][]LinkID, len(n.Machines))
	for _, l := range n.Links {
		n.out[l.From] = append(n.out[l.From], l.ID)
	}
}

// Outgoing returns the IDs of every virtual link departing machine m. The
// returned slice is shared; callers must not mutate it.
func (n *Network) Outgoing(m MachineID) []LinkID {
	if n.out == nil {
		n.buildAdjacency()
	}
	return n.out[m]
}

// Link returns the virtual link with the given ID.
func (n *Network) Link(id LinkID) *VirtualLink { return &n.Links[id] }

// Machine returns the machine with the given ID.
func (n *Network) Machine(id MachineID) *Machine { return &n.Machines[id] }

// NumMachines returns the machine count m.
func (n *Network) NumMachines() int { return len(n.Machines) }

// StronglyConnected reports whether the physical topology (ignoring link
// windows) has a directed path between every ordered pair of machines. It
// runs one forward and one backward reachability sweep from machine 0.
func (n *Network) StronglyConnected() bool {
	if len(n.Machines) == 0 {
		return false
	}
	fwd := make([][]MachineID, len(n.Machines))
	bwd := make([][]MachineID, len(n.Machines))
	for _, l := range n.Links {
		fwd[l.From] = append(fwd[l.From], l.To)
		bwd[l.To] = append(bwd[l.To], l.From)
	}
	return reachesAll(fwd, 0) && reachesAll(bwd, 0)
}

func reachesAll(adj [][]MachineID, start MachineID) bool {
	seen := make([]bool, len(adj))
	stack := []MachineID{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(adj)
}
