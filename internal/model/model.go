// Package model defines the entities of the ICDCS 2000 data staging problem
// (paper §3): machines with storage capacity, unidirectional virtual
// communication links with availability windows and bandwidths, uniquely
// named data items with initial source locations, and prioritized,
// deadline-bearing data requests.
//
// The types here are plain data with validation; mutable scheduling state
// lives in internal/state and the heuristics in internal/core.
package model

import (
	"fmt"
	"time"

	"datastaging/internal/simtime"
)

// MachineID identifies a machine M[i] by its index in the network's machine
// list.
type MachineID int

// ItemID identifies a data item δ[i] by its index in the scenario's item
// list. Only requested items (the paper's Rq set) appear in a scenario; an
// item nobody requests never moves and is irrelevant to scheduling.
type ItemID int

// LinkID identifies a virtual link by its index in the network's link list.
type LinkID int

// Priority is the importance class of a data request. The paper's model
// allows priorities 0..P; the evaluation uses three classes, so the
// generator and the weight tables are built around Low/Medium/High, but
// nothing in the scheduler assumes exactly three.
type Priority int

// The three priority classes used throughout the paper's evaluation (§5.3).
const (
	Low Priority = iota
	Medium
	High

	// NumPriorities is the number of classes the standard weight tables
	// cover.
	NumPriorities = 3
)

// String returns a human-readable class name.
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Weights maps a Priority to its relative weight W[p] (paper §3). The
// global objective is the weighted sum of priorities of satisfied requests.
type Weights []float64

// The two weighting schemes evaluated in the paper (§5.3).
var (
	Weights1x5x10   = Weights{1, 5, 10}
	Weights1x10x100 = Weights{1, 10, 100}
)

// Of returns the weight of priority p. Priorities outside the table get
// weight 0 so that malformed inputs show up as zero contribution rather
// than a panic deep inside a heuristic.
func (w Weights) Of(p Priority) float64 {
	if int(p) < 0 || int(p) >= len(w) {
		return 0
	}
	return w[p]
}

// Machine is one node of the communication system: possibly a server
// holding initial data, possibly a client issuing requests, and always a
// potential intermediate staging location.
type Machine struct {
	ID   MachineID `json:"id"`
	Name string    `json:"name,omitempty"`
	// CapacityBytes is the machine's available storage for staged copies,
	// Cap[i] in the paper. It is net capacity: initial source copies are
	// not charged against it.
	CapacityBytes int64 `json:"capacityBytes"`
}

// VirtualLink is one unidirectional virtual communication link L[i,j][k]: a
// physical link restricted to a single availability window. A physical link
// that is up during nl disjoint intervals appears as nl virtual links
// (paper §3). Each virtual link carries one transfer at a time.
type VirtualLink struct {
	ID   LinkID    `json:"id"`
	From MachineID `json:"from"`
	To   MachineID `json:"to"`
	// Window is [Lst, Let): the interval during which the link exists.
	Window simtime.Interval `json:"window"`
	// BandwidthBPS is the link bandwidth in bits per second.
	BandwidthBPS int64 `json:"bandwidthBPS"`
	// Latency is the fixed per-transfer overhead (network latency, format
	// conversion, ...) folded into D[i,j][k](|d|). The paper's evaluation
	// parameters leave it unspecified; the generator defaults it to zero.
	Latency time.Duration `json:"latency,omitempty"`
	// Physical identifies the physical transmission link this virtual link
	// is a window of. Virtual links of the same physical link never overlap
	// in time. Purely informational for the scheduler.
	Physical int `json:"physical"`
}

// TransferDuration returns D[i,j][k](|d|): the time the link is occupied
// when carrying sizeBytes, i.e. latency + size/bandwidth, rounded up to the
// nanosecond so a committed slot never undershoots the true occupancy.
func (l *VirtualLink) TransferDuration(sizeBytes int64) time.Duration {
	bits := sizeBytes * 8
	secs := float64(bits) / float64(l.BandwidthBPS)
	d := time.Duration(secs * float64(time.Second))
	// Round up: recompute the bits the truncated duration would carry.
	if d.Seconds()*float64(l.BandwidthBPS) < float64(bits) {
		d++
	}
	return d + l.Latency
}

// Source is one initial location of a data item: the machine that holds it
// and the instant δst at which it becomes available there.
type Source struct {
	Machine   MachineID       `json:"machine"`
	Available simtime.Instant `json:"available"`
}

// Request is one data request: a destination machine that needs the item by
// Deadline (Rft) with a given Priority. Requests for the same item from
// different machines may have different deadlines and priorities.
type Request struct {
	Machine  MachineID       `json:"machine"`
	Deadline simtime.Instant `json:"deadline"`
	Priority Priority        `json:"priority"`
}

// Item is a requested data item Rq[j]: its size, its initial sources, and
// every request for it.
type Item struct {
	ID        ItemID    `json:"id"`
	Name      string    `json:"name,omitempty"`
	SizeBytes int64     `json:"sizeBytes"`
	Sources   []Source  `json:"sources"`
	Requests  []Request `json:"requests"`
}

// LatestDeadline returns the latest deadline among the item's requests —
// the reference instant for garbage collection (§4.4): intermediate copies
// are removed γ after it.
func (it *Item) LatestDeadline() simtime.Instant {
	var latest simtime.Instant
	for i, r := range it.Requests {
		if i == 0 || r.Deadline.After(latest) {
			latest = r.Deadline
		}
	}
	return latest
}

// EarliestAvailable returns the earliest instant at which any source holds
// the item.
func (it *Item) EarliestAvailable() simtime.Instant {
	earliest := simtime.Never
	for _, s := range it.Sources {
		if s.Available.Before(earliest) {
			earliest = s.Available
		}
	}
	return earliest
}

// RequestID names one request globally: the k-th request of item Rq[j].
type RequestID struct {
	Item  ItemID `json:"item"`
	Index int    `json:"index"`
}

// String formats the request id as item/index.
func (r RequestID) String() string { return fmt.Sprintf("rq[%d,%d]", r.Item, r.Index) }
