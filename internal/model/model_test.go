package model

import (
	"testing"
	"time"

	"datastaging/internal/simtime"
)

func window(start, end time.Duration) simtime.Interval {
	return simtime.Interval{Start: simtime.At(start), End: simtime.At(end)}
}

func TestPriorityString(t *testing.T) {
	for _, tc := range []struct {
		p    Priority
		want string
	}{
		{Low, "low"}, {Medium, "medium"}, {High, "high"}, {Priority(7), "priority(7)"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Priority(%d).String: got %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestWeightsOf(t *testing.T) {
	w := Weights1x10x100
	if got := w.Of(Low); got != 1 {
		t.Errorf("Of(Low): got %v, want 1", got)
	}
	if got := w.Of(High); got != 100 {
		t.Errorf("Of(High): got %v, want 100", got)
	}
	if got := w.Of(Priority(-1)); got != 0 {
		t.Errorf("Of(-1): got %v, want 0", got)
	}
	if got := w.Of(Priority(99)); got != 0 {
		t.Errorf("Of(99): got %v, want 0", got)
	}
	if got := Weights1x5x10.Of(Medium); got != 5 {
		t.Errorf("1/5/10 Of(Medium): got %v, want 5", got)
	}
}

func TestTransferDuration(t *testing.T) {
	l := VirtualLink{BandwidthBPS: 8000} // 1000 bytes/sec
	if got := l.TransferDuration(2000); got != 2*time.Second {
		t.Errorf("TransferDuration(2000B @1000B/s): got %v, want 2s", got)
	}
	l.Latency = 100 * time.Millisecond
	if got := l.TransferDuration(1000); got != time.Second+100*time.Millisecond {
		t.Errorf("with latency: got %v, want 1.1s", got)
	}
	// Rounding never undershoots: 1 byte over 3 bit/s is 8/3 s.
	l3 := VirtualLink{BandwidthBPS: 3}
	d := l3.TransferDuration(1)
	if d.Seconds()*3 < 8 {
		t.Errorf("rounded duration %v carries fewer than 8 bits", d)
	}
	if d > 8*time.Second/3+time.Millisecond {
		t.Errorf("rounding overshoot: %v", d)
	}
	if got := l.TransferDuration(0); got != l.Latency {
		t.Errorf("zero-size transfer: got %v, want latency only", got)
	}
}

func TestItemDeadlinesAndAvailability(t *testing.T) {
	it := Item{
		SizeBytes: 1,
		Sources: []Source{
			{Machine: 0, Available: simtime.At(20 * time.Minute)},
			{Machine: 1, Available: simtime.At(5 * time.Minute)},
		},
		Requests: []Request{
			{Machine: 2, Deadline: simtime.At(30 * time.Minute), Priority: High},
			{Machine: 3, Deadline: simtime.At(45 * time.Minute), Priority: Low},
			{Machine: 4, Deadline: simtime.At(40 * time.Minute), Priority: Medium},
		},
	}
	if got := it.LatestDeadline(); got != simtime.At(45*time.Minute) {
		t.Errorf("LatestDeadline: got %v, want 45m", got)
	}
	if got := it.EarliestAvailable(); got != simtime.At(5*time.Minute) {
		t.Errorf("EarliestAvailable: got %v, want 5m", got)
	}
	empty := Item{}
	if got := empty.LatestDeadline(); got != simtime.Instant(0) {
		t.Errorf("empty LatestDeadline: got %v, want 0", got)
	}
	if got := empty.EarliestAvailable(); got != simtime.Never {
		t.Errorf("empty EarliestAvailable: got %v, want Never", got)
	}
}

func TestRequestIDString(t *testing.T) {
	r := RequestID{Item: 3, Index: 1}
	if got := r.String(); got != "rq[3,1]" {
		t.Errorf("RequestID.String: got %q", got)
	}
}

func twoMachines() []Machine {
	return []Machine{
		{ID: 0, CapacityBytes: 1000},
		{ID: 1, CapacityBytes: 1000},
	}
}

func TestNewNetworkValid(t *testing.T) {
	links := []VirtualLink{
		{ID: 0, From: 0, To: 1, Window: window(0, time.Hour), BandwidthBPS: 1000},
		{ID: 1, From: 1, To: 0, Window: window(0, time.Hour), BandwidthBPS: 1000},
	}
	n, err := NewNetwork(twoMachines(), links)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if got := n.NumMachines(); got != 2 {
		t.Errorf("NumMachines: got %d", got)
	}
	if got := n.Outgoing(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Outgoing(0): got %v", got)
	}
	if n.Link(1).From != 1 {
		t.Errorf("Link(1).From: got %d", n.Link(1).From)
	}
	if n.Machine(1).CapacityBytes != 1000 {
		t.Errorf("Machine(1): got %+v", n.Machine(1))
	}
	if !n.StronglyConnected() {
		t.Error("two-machine cycle should be strongly connected")
	}
}

func TestNewNetworkValidationErrors(t *testing.T) {
	good := func() ([]Machine, []VirtualLink) {
		return twoMachines(), []VirtualLink{
			{ID: 0, From: 0, To: 1, Window: window(0, time.Hour), BandwidthBPS: 1000},
		}
	}
	tests := []struct {
		name   string
		mutate func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink)
	}{
		{"no machines", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			return nil, ls
		}},
		{"bad machine id", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ms[1].ID = 5
			return ms, ls
		}},
		{"negative capacity", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ms[0].CapacityBytes = -1
			return ms, ls
		}},
		{"bad link id", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ls[0].ID = 9
			return ms, ls
		}},
		{"endpoint out of range", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ls[0].To = 7
			return ms, ls
		}},
		{"self link", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ls[0].To = 0
			return ms, ls
		}},
		{"zero bandwidth", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ls[0].BandwidthBPS = 0
			return ms, ls
		}},
		{"empty window", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ls[0].Window = window(time.Hour, time.Hour)
			return ms, ls
		}},
		{"negative latency", func(ms []Machine, ls []VirtualLink) ([]Machine, []VirtualLink) {
			ls[0].Latency = -time.Second
			return ms, ls
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ms, ls := good()
			ms, ls = tc.mutate(ms, ls)
			if _, err := NewNetwork(ms, ls); err == nil {
				t.Error("NewNetwork should have failed")
			}
		})
	}
}

func TestOutgoingLazyBuild(t *testing.T) {
	// A Network constructed directly (e.g. by JSON decoding) has no
	// adjacency; Outgoing must build it on first use.
	n := &Network{
		Machines: twoMachines(),
		Links: []VirtualLink{
			{ID: 0, From: 0, To: 1, Window: window(0, time.Hour), BandwidthBPS: 1},
		},
	}
	if got := n.Outgoing(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("lazy Outgoing: got %v", got)
	}
	if got := n.Outgoing(1); len(got) != 0 {
		t.Errorf("Outgoing(1): got %v", got)
	}
}

func TestStronglyConnected(t *testing.T) {
	machines := []Machine{{ID: 0}, {ID: 1}, {ID: 2}}
	mk := func(id LinkID, from, to MachineID) VirtualLink {
		return VirtualLink{ID: id, From: from, To: to, Window: window(0, time.Hour), BandwidthBPS: 1}
	}
	cycle, err := NewNetwork(machines, []VirtualLink{mk(0, 0, 1), mk(1, 1, 2), mk(2, 2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !cycle.StronglyConnected() {
		t.Error("3-cycle should be strongly connected")
	}
	chain, err := NewNetwork(machines, []VirtualLink{mk(0, 0, 1), mk(1, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if chain.StronglyConnected() {
		t.Error("chain without back edges should not be strongly connected")
	}
	lollipop, err := NewNetwork(machines, []VirtualLink{mk(0, 0, 1), mk(1, 1, 0), mk(2, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if lollipop.StronglyConnected() {
		t.Error("node 2 has no path back; should not be strongly connected")
	}
}
