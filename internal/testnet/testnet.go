// Package testnet provides a compact scenario builder and canonical fixture
// topologies for tests across the repository. It is test-support code, but
// it lives as a normal package (not _test files) so every internal package
// and the examples can share the same fixtures.
package testnet

import (
	"fmt"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
)

// Builder accumulates machines, links, and items and produces a validated
// scenario. Methods panic on misuse: builders run inside tests where a
// panic is an acceptable failure mode and keeps call sites terse.
type Builder struct {
	machines []model.Machine
	links    []model.VirtualLink
	items    []model.Item
	gc       time.Duration
	horizon  simtime.Instant
}

// NewBuilder returns a builder with the paper's γ of six minutes and a
// 24-hour horizon.
func NewBuilder() *Builder {
	return &Builder{gc: 6 * time.Minute, horizon: simtime.At(24 * time.Hour)}
}

// GC overrides the garbage-collection delay γ.
func (b *Builder) GC(d time.Duration) *Builder {
	b.gc = d
	return b
}

// Machine adds a machine with the given storage capacity and returns its ID.
func (b *Builder) Machine(capacityBytes int64) model.MachineID {
	id := model.MachineID(len(b.machines))
	b.machines = append(b.machines, model.Machine{
		ID:            id,
		Name:          fmt.Sprintf("m%d", id),
		CapacityBytes: capacityBytes,
	})
	return id
}

// Machines adds n machines with identical capacity.
func (b *Builder) Machines(n int, capacityBytes int64) []model.MachineID {
	out := make([]model.MachineID, n)
	for i := range out {
		out[i] = b.Machine(capacityBytes)
	}
	return out
}

// Link adds a virtual link available on [start, end) with the given
// bandwidth in bits per second and returns its ID. Each distinct call is
// its own physical link.
func (b *Builder) Link(from, to model.MachineID, start, end time.Duration, bps int64) model.LinkID {
	id := model.LinkID(len(b.links))
	b.links = append(b.links, model.VirtualLink{
		ID: id, From: from, To: to,
		Window:       simtime.Interval{Start: simtime.At(start), End: simtime.At(end)},
		BandwidthBPS: bps,
		Physical:     int(id),
	})
	return id
}

// LinkWindows adds one virtual link per window, all on a single physical
// link.
func (b *Builder) LinkWindows(from, to model.MachineID, bps int64, windows ...simtime.Interval) []model.LinkID {
	phys := len(b.links)
	out := make([]model.LinkID, 0, len(windows))
	for _, w := range windows {
		id := model.LinkID(len(b.links))
		b.links = append(b.links, model.VirtualLink{
			ID: id, From: from, To: to, Window: w, BandwidthBPS: bps, Physical: phys,
		})
		out = append(out, id)
	}
	return out
}

// Item adds a data item and returns its ID.
func (b *Builder) Item(sizeBytes int64, sources []model.Source, requests []model.Request) model.ItemID {
	id := model.ItemID(len(b.items))
	b.items = append(b.items, model.Item{
		ID:        id,
		Name:      fmt.Sprintf("item%d", id),
		SizeBytes: sizeBytes,
		Sources:   sources,
		Requests:  requests,
	})
	return id
}

// Src is a convenience constructor for a source.
func Src(m model.MachineID, available time.Duration) model.Source {
	return model.Source{Machine: m, Available: simtime.At(available)}
}

// Req is a convenience constructor for a request.
func Req(m model.MachineID, deadline time.Duration, p model.Priority) model.Request {
	return model.Request{Machine: m, Deadline: simtime.At(deadline), Priority: p}
}

// Build validates and returns the scenario, panicking on any error.
func (b *Builder) Build(name string) *scenario.Scenario {
	net, err := model.NewNetwork(b.machines, b.links)
	if err != nil {
		panic(fmt.Sprintf("testnet: %v", err))
	}
	s := &scenario.Scenario{
		Name:           name,
		Network:        net,
		Items:          b.items,
		GarbageCollect: b.gc,
		Horizon:        b.horizon,
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("testnet: %v", err))
	}
	return s
}

// KBPS converts kilobits per second to bits per second.
func KBPS(k int64) int64 { return k * 1000 }

// Line builds a bidirectional chain of n machines (0↔1↔...↔n-1), every link
// up for the whole day at the given bandwidth, with one item of the given
// size at machine 0 requested by machine n-1 with the given deadline and
// high priority. The simplest end-to-end staging fixture.
func Line(n int, sizeBytes int64, bps int64, deadline time.Duration) *scenario.Scenario {
	b := NewBuilder()
	ms := b.Machines(n, 1<<30)
	for i := 0; i < n-1; i++ {
		b.Link(ms[i], ms[i+1], 0, 24*time.Hour, bps)
		b.Link(ms[i+1], ms[i], 0, 24*time.Hour, bps)
	}
	b.Item(sizeBytes,
		[]model.Source{Src(ms[0], 0)},
		[]model.Request{Req(ms[n-1], deadline, model.High)})
	return b.Build(fmt.Sprintf("line%d", n))
}

// Diamond builds the four-machine diamond 0→{1,2}→3 with a reverse path
// 3→0 for strong connectivity. The top path (via 1) is fast, the bottom
// path (via 2) slow. One item at 0 requested by 3.
func Diamond(sizeBytes int64, deadline time.Duration) *scenario.Scenario {
	b := NewBuilder()
	ms := b.Machines(4, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[1], 0, day, KBPS(1000))
	b.Link(ms[1], ms[3], 0, day, KBPS(1000))
	b.Link(ms[0], ms[2], 0, day, KBPS(100))
	b.Link(ms[2], ms[3], 0, day, KBPS(100))
	b.Link(ms[3], ms[0], 0, day, KBPS(100))
	b.Item(sizeBytes,
		[]model.Source{Src(ms[0], 0)},
		[]model.Request{Req(ms[3], deadline, model.High)})
	return b.Build("diamond")
}
