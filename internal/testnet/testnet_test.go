package testnet

import (
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

func TestBuilderProducesValidScenario(t *testing.T) {
	b := NewBuilder().GC(10 * time.Minute)
	ms := b.Machines(3, 1000)
	if len(ms) != 3 || ms[2] != 2 {
		t.Fatalf("Machines: got %v", ms)
	}
	l := b.Link(ms[0], ms[1], time.Minute, time.Hour, KBPS(56))
	b.Link(ms[1], ms[2], 0, time.Hour, KBPS(56))
	b.Link(ms[2], ms[0], 0, time.Hour, KBPS(56))
	item := b.Item(100, []model.Source{Src(ms[0], time.Minute)},
		[]model.Request{Req(ms[2], 30*time.Minute, model.Medium)})
	sc := b.Build("built")

	if sc.Name != "built" || sc.GarbageCollect != 10*time.Minute {
		t.Errorf("scalars: %q %v", sc.Name, sc.GarbageCollect)
	}
	if got := sc.Network.Link(l).BandwidthBPS; got != 56000 {
		t.Errorf("KBPS: got %d", got)
	}
	if got := sc.Network.Link(l).Window.Start; got != simtime.At(time.Minute) {
		t.Errorf("window start: got %v", got)
	}
	if got := sc.Item(item).Requests[0].Priority; got != model.Medium {
		t.Errorf("request priority: got %v", got)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build of invalid scenario should panic")
		}
	}()
	b := NewBuilder()
	ms := b.Machines(2, 1000)
	b.Link(ms[0], ms[0], 0, time.Hour, 1) // self-link
	b.Build("bad")
}

func TestLinkWindowsSharePhysical(t *testing.T) {
	b := NewBuilder()
	ms := b.Machines(2, 1000)
	ids := b.LinkWindows(ms[0], ms[1], 1000,
		simtime.Interval{Start: 0, End: simtime.At(time.Hour)},
		simtime.Interval{Start: simtime.At(2 * time.Hour), End: simtime.At(3 * time.Hour)},
	)
	b.Link(ms[1], ms[0], 0, time.Hour, 1000)
	b.Item(10, []model.Source{Src(ms[0], 0)}, []model.Request{Req(ms[1], time.Hour, model.Low)})
	sc := b.Build("windows")
	if len(ids) != 2 {
		t.Fatalf("LinkWindows: got %d ids", len(ids))
	}
	if sc.Network.Link(ids[0]).Physical != sc.Network.Link(ids[1]).Physical {
		t.Error("windows of one physical link must share Physical")
	}
}

func TestLineFixture(t *testing.T) {
	sc := Line(5, 2048, 16000, 45*time.Minute)
	if sc.Network.NumMachines() != 5 {
		t.Errorf("machines: %d", sc.Network.NumMachines())
	}
	if !sc.Network.StronglyConnected() {
		t.Error("line fixture must be strongly connected")
	}
	if len(sc.Items) != 1 || sc.Items[0].Requests[0].Machine != 4 {
		t.Errorf("item: %+v", sc.Items)
	}
}

func TestDiamondFixture(t *testing.T) {
	sc := Diamond(1000, time.Hour)
	if sc.Network.NumMachines() != 4 || len(sc.Network.Links) != 5 {
		t.Errorf("diamond shape: %d machines %d links", sc.Network.NumMachines(), len(sc.Network.Links))
	}
	if !sc.Network.StronglyConnected() {
		t.Error("diamond must be strongly connected")
	}
}
