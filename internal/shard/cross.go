package shard

import (
	"fmt"
	"sort"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/serve"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// maxCutCandidates bounds how many alternative cut links the coordinator
// tries per destination shard before giving up on routing to it.
const maxCutCandidates = 8

// legRec is one per-shard offer inside a round: the proposal plus the map
// from leg-local request index to the submission's global request index
// (-1 for synthetic border-staging requests).
type legRec struct {
	shard  int
	prop   *serve.Proposal
	reqMap []int
}

// cutPlan is the coordinator's routing decision for one destination shard
// that holds no source: stage the item at border machine u (source shard),
// carry it over the chosen cut link u→v, hand it to shard g with the copy
// available at v from the cut transfer's arrival.
type cutPlan struct {
	group int // destination shard
	link  model.LinkID
	u, v  model.MachineID
	dur   time.Duration

	// How the coordinator learns when the copy exists at u: a synthetic
	// staging request in leg A (borderIdx ≥ 0), an existing leg-A
	// destination at u (uDestIdx ≥ 0), or u already being a source
	// (uSrcAvail).
	borderIdx int
	uDestIdx  int
	uSrcAvail simtime.Instant

	// vDest is the global request index delivered directly by the cut
	// arrival (v itself is a destination), -1 otherwise. lateDest records a
	// v-destination dropped because the cut arrives past its deadline while
	// the rest of the group still rides the round.
	vDest    int
	lateDest int

	start  simtime.Instant // committed cut slot (set when the group succeeds)
	failed string          // non-empty: why this group got no route this round
}

// submitCross runs the two-level offer/commit round for a submission whose
// sources and destinations span shards. One coordinator at a time (xmu):
// it builds one leg per involved shard (speculative Propose, engine lock
// held), reserves cut-link slots on its own ledger, and commits everything
// only once the round's shape is final — any abort rolls every engine back
// bit-identically via its checkpoint.
func (s *Service) submitCross(sub serve.Submission, srcShard int) (*Ticket, error) {
	s.xmu.Lock()
	defer s.xmu.Unlock()

	// Classify: which sources and which request indices live where.
	srcIn := make(map[int][]serve.SourceSpec)
	destIn := make(map[int][]int)
	for _, src := range sub.Sources {
		k := s.plan.Assign[src.Machine]
		srcIn[k] = append(srcIn[k], src)
	}
	for i, rq := range sub.Requests {
		k := s.plan.Assign[rq.Machine]
		destIn[k] = append(destIn[k], i)
	}
	var selfGroups, cutGroups []int
	for g := range destIn {
		if g == srcShard {
			continue
		}
		if len(srcIn[g]) > 0 {
			selfGroups = append(selfGroups, g)
		} else {
			cutGroups = append(cutGroups, g)
		}
	}
	sort.Ints(selfGroups)
	sort.Ints(cutGroups)

	// Candidate cut links per cut group: best bandwidth first, earliest
	// window on ties, capped. A group with no candidate can never be
	// reached from the source shard — its requests are rejected outright.
	cands := make(map[int][]model.LinkID)
	for _, id := range s.cut {
		l := s.base.Network.Link(id)
		if s.plan.Assign[l.From] != srcShard {
			continue
		}
		g := s.plan.Assign[l.To]
		if len(srcIn[g]) > 0 || len(destIn[g]) == 0 || g == srcShard {
			continue
		}
		cands[g] = append(cands[g], id)
	}
	// Rank each group's candidates by how likely the whole round is to
	// close: a feasible ledger slot that delivers before the group's
	// tightest deadline beats an infeasible one, a border machine that
	// already holds or receives a copy in leg A (no staging leg to get
	// rejected) beats one that needs staging, then earliest estimated
	// delivery, then bandwidth. The slot estimate ignores staging time —
	// the round itself re-checks with the true ready instant — but on a
	// windowed oversubscribed network it prunes the links whose window
	// cannot carry the item at all.
	now := s.engines[srcShard].Now()
	attempts := 1
	for g, ids := range cands {
		minDL := simtime.Never
		for _, gi := range destIn[g] {
			if dl := sub.Requests[gi].Deadline.Instant(); dl < minDL {
				minDL = dl
			}
		}
		type rank struct {
			feasible bool            // ledger slot delivers before the group deadline
			direct   bool            // v is itself a destination: the cut delivers it
			free     bool            // u already holds or receives a copy in leg A
			arr      simtime.Instant // estimated delivery of the cut transfer
			bw       int64
		}
		ranks := make(map[model.LinkID]rank, len(ids))
		for _, id := range ids {
			l := s.base.Network.Link(id)
			dur := l.TransferDuration(sub.SizeBytes)
			r := rank{arr: simtime.Never, bw: l.BandwidthBPS}
			if start, ok := s.ledger[id].EarliestSlot(now, dur); ok {
				r.arr = start.Add(dur)
				r.feasible = r.arr <= minDL
			}
			for _, ss := range sub.Sources {
				if model.MachineID(ss.Machine) == l.From {
					r.free = true
				}
			}
			for _, gi := range destIn[srcShard] {
				if model.MachineID(sub.Requests[gi].Machine) == l.From {
					r.free = true
				}
			}
			for _, gi := range destIn[g] {
				if model.MachineID(sub.Requests[gi].Machine) == l.To {
					r.direct = true
				}
			}
			ranks[id] = r
		}
		sort.Slice(ids, func(a, b int) bool {
			ra, rb := ranks[ids[a]], ranks[ids[b]]
			if ra.feasible != rb.feasible {
				return ra.feasible
			}
			if ra.direct != rb.direct {
				return ra.direct
			}
			if ra.free != rb.free {
				return ra.free
			}
			if ra.arr != rb.arr {
				return ra.arr < rb.arr
			}
			if ra.bw != rb.bw {
				return ra.bw > rb.bw
			}
			return ids[a] < ids[b]
		})
		if len(ids) > maxCutCandidates {
			ids = ids[:maxCutCandidates]
		}
		cands[g] = ids
		if len(ids) > attempts {
			attempts = len(ids)
		}
	}

	// Hold the submit-order lock of every shard that may mint an item for
	// this round, ascending — the same hierarchy the local path uses.
	involved := map[int]bool{srcShard: true}
	for _, g := range selfGroups {
		involved[g] = true
	}
	for _, g := range cutGroups {
		involved[g] = true
	}
	var locks []int
	for k := range involved {
		locks = append(locks, k)
	}
	sort.Ints(locks)
	for _, k := range locks {
		s.smu[k].Lock()
	}
	defer func() {
		for i := len(locks) - 1; i >= 0; i-- {
			s.smu[locks[i]].Unlock()
		}
	}()

	gid := s.allocGID(sub)
	now = s.engines[srcShard].Now() // re-read under the submit-order locks

	var legs []legRec
	var plans []*cutPlan
	var roundErr error
	for attempt := 0; attempt < attempts; attempt++ {
		legs, plans, roundErr = s.tryRound(sub, srcShard, srcIn, destIn, selfGroups, cutGroups, cands, now, attempt)
		if roundErr != nil {
			s.freeGID(gid, sub)
			return nil, roundErr
		}
		allRouted := true
		for _, cp := range plans {
			if cp.failed != "" {
				allRouted = false
			}
		}
		if allRouted || attempt == attempts-1 {
			break
		}
		// A group missed its route; roll the whole round back and retry
		// with the next candidate links.
		for i := len(legs) - 1; i >= 0; i-- {
			legs[i].prop.Abort()
		}
		s.mRollbacks.Inc()
	}

	// Commit phase: register each leg's item slot, then commit its
	// proposal (the registry entry must precede the engine's snapshot
	// publish), then reserve the cut slots on the coordinator ledger.
	verdicts := make([]serve.RequestVerdict, len(sub.Requests))
	for i, rq := range sub.Requests {
		verdicts[i] = serve.RequestVerdict{
			Request:    model.RequestID{Item: model.ItemID(gid), Index: i},
			Machine:    rq.Machine,
			Status:     serve.StatusRejected,
			Deadline:   rq.Deadline,
			Reason:     "cross-shard: no feasible offer/commit round",
			BlamedLink: -1,
		}
	}
	var legIDs []string
	var route []state.Transfer
	for _, leg := range legs {
		s.gmu.Lock()
		s.reg[leg.shard] = append(s.reg[leg.shard], gid)
		s.gmu.Unlock()
		t := leg.prop.Commit()
		legIDs = append(legIDs, t.ID())
		gv := s.projs[leg.shard].ViewToGlobal(t.View(), gid)
		for k, gi := range leg.reqMap {
			if gi < 0 {
				continue
			}
			v := gv.Requests[k]
			v.Request = model.RequestID{Item: model.ItemID(gid), Index: gi}
			verdicts[gi] = v
		}
		route = append(route, gv.Route...)
	}
	var cuts []state.Transfer
	for _, cp := range plans {
		if cp.failed != "" {
			for _, gi := range destIn[cp.group] {
				verdicts[gi].Reason = cp.failed
				verdicts[gi].BlamedLink = int(cp.link)
			}
			continue
		}
		if err := s.ledger[cp.link].Commit(cp.start, cp.dur); err != nil {
			// Unreachable: the slot came from EarliestSlot under xmu.
			panic(fmt.Sprintf("shard: cut ledger commit: %v", err))
		}
		arr := cp.start.Add(cp.dur)
		cuts = append(cuts, state.Transfer{
			Item:     model.ItemID(gid),
			Link:     cp.link,
			From:     cp.u,
			To:       cp.v,
			Start:    cp.start,
			Duration: cp.dur,
			Arrival:  arr,
		})
		if cp.vDest >= 0 {
			verdicts[cp.vDest].Status = serve.StatusAdmitted
			verdicts[cp.vDest].Completion = serve.Instant(arr)
			verdicts[cp.vDest].Reason = ""
			verdicts[cp.vDest].BlamedLink = 0
		}
		if cp.lateDest >= 0 {
			verdicts[cp.lateDest].Reason = fmt.Sprintf(
				"cross-shard: cut link %d delivers after the deadline", cp.link)
			verdicts[cp.lateDest].BlamedLink = int(cp.link)
		}
	}
	if len(cuts) > 0 {
		s.gmu.Lock()
		s.cutTransfers = append(s.cutTransfers, cuts...)
		s.gmu.Unlock()
		route = append(route, cuts...)
	}

	status := serve.StatusRejected
	for i := range verdicts {
		if verdicts[i].Status == serve.StatusAdmitted {
			status = serve.StatusAdmitted
			break
		}
	}
	view := serve.TicketView{
		Status:   status,
		Item:     gid,
		Epoch:    serve.Instant(now),
		Arrived:  serve.Instant(now),
		Requests: verdicts,
		Route:    route,
	}
	s.gmu.Lock()
	id := fmt.Sprintf("x-%d", s.nextCross)
	s.nextCross++
	view.ID = id
	s.cross[id] = &crossTicket{view: view, legs: legIDs}
	s.gmu.Unlock()
	s.mCross.Inc()
	return &Ticket{id: id, gid: gid, view: view, done: closedChan}, nil
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// tryRound builds and speculatively plans one round: leg A on the source
// shard (its sources, its destinations, plus one staging request per
// border machine), one self-contained leg per destination shard that holds
// its own source, and one leg B per cut group with the copy available at
// the cut arrival. On return every surviving proposal holds its engine
// lock; groups that found no route this round carry a non-empty failed
// reason in their cutPlan. A non-nil error means the round was fully
// aborted (draining or a wedged engine).
func (s *Service) tryRound(
	sub serve.Submission, srcShard int,
	srcIn map[int][]serve.SourceSpec, destIn map[int][]int,
	selfGroups, cutGroups []int, cands map[int][]model.LinkID,
	now simtime.Instant, attempt int,
) (legs []legRec, plans []*cutPlan, err error) {
	abortAll := func() {
		for i := len(legs) - 1; i >= 0; i-- {
			legs[i].prop.Abort()
		}
	}

	// Routing decisions for this attempt.
	for _, g := range cutGroups {
		ids := cands[g]
		if len(ids) == 0 {
			plans = append(plans, &cutPlan{
				group: g, link: -1, borderIdx: -1, uDestIdx: -1, vDest: -1, lateDest: -1,
				failed: fmt.Sprintf("cross-shard: no cut link from shard %d to shard %d", srcShard, g),
			})
			continue
		}
		idx := attempt
		if idx >= len(ids) {
			idx = len(ids) - 1
		}
		l := s.base.Network.Link(ids[idx])
		cp := &cutPlan{
			group: g, link: l.ID, u: l.From, v: l.To,
			dur:       l.TransferDuration(sub.SizeBytes),
			borderIdx: -1, uDestIdx: -1, vDest: -1, lateDest: -1,
		}
		for _, gi := range destIn[g] {
			if sub.Requests[gi].Machine == int(cp.v) {
				cp.vDest = gi
			}
		}
		plans = append(plans, cp)
	}

	// Leg A: the source shard's own load plus border staging.
	legA := serve.Submission{Name: sub.Name, SizeBytes: sub.SizeBytes}
	legA.Sources = append(legA.Sources, srcIn[srcShard]...)
	var reqMapA []int
	for _, gi := range destIn[srcShard] {
		legA.Requests = append(legA.Requests, sub.Requests[gi])
		reqMapA = append(reqMapA, gi)
	}
	type borderReq struct {
		deadline simtime.Instant
		priority int
	}
	border := make(map[model.MachineID]*borderReq)
	for _, cp := range plans {
		if cp.failed != "" {
			continue
		}
		// When u already holds a copy (source) or already receives one
		// (leg-A destination), no staging request is needed.
		src := false
		for _, ss := range srcIn[srcShard] {
			if model.MachineID(ss.Machine) == cp.u {
				cp.uSrcAvail = ss.Available.Instant()
				src = true
				break
			}
		}
		if src {
			continue
		}
		dest := false
		for j, gi := range reqMapA {
			if model.MachineID(sub.Requests[gi].Machine) == cp.u {
				cp.uDestIdx = j
				dest = true
				break
			}
		}
		if dest {
			continue
		}
		// Staging deadline: the group's tightest deadline minus the cut
		// duration — the latest instant staging can finish and still leave
		// the cut a chance. Leg-B admission enforces the real deadlines.
		minDL := simtime.Never
		maxPri := 0
		for _, gi := range destIn[cp.group] {
			if dl := sub.Requests[gi].Deadline.Instant(); dl < minDL {
				minDL = dl
			}
			if p := sub.Requests[gi].Priority; p > maxPri {
				maxPri = p
			}
		}
		dl := minDL.Add(-cp.dur)
		if dl <= now {
			cp.failed = fmt.Sprintf("cross-shard: staging window closed for cut link %d", cp.link)
			continue
		}
		if b, ok := border[cp.u]; ok {
			if dl < b.deadline {
				b.deadline = dl
			}
			if maxPri > b.priority {
				b.priority = maxPri
			}
		} else {
			border[cp.u] = &borderReq{deadline: dl, priority: maxPri}
		}
	}
	var borderMs []model.MachineID
	for u := range border {
		borderMs = append(borderMs, u)
	}
	sort.Slice(borderMs, func(a, b int) bool { return borderMs[a] < borderMs[b] })
	borderIdx := make(map[model.MachineID]int)
	for _, u := range borderMs {
		borderIdx[u] = len(legA.Requests)
		legA.Requests = append(legA.Requests, serve.RequestSpec{
			Machine:  int(u),
			Deadline: serve.Instant(border[u].deadline),
			Priority: border[u].priority,
		})
		reqMapA = append(reqMapA, -1)
	}
	for _, cp := range plans {
		if cp.failed == "" && cp.uDestIdx < 0 && cp.uSrcAvail == 0 {
			if j, ok := borderIdx[cp.u]; ok {
				cp.borderIdx = j
			}
		}
	}

	var legAProp *serve.Proposal
	if len(legA.Requests) > 0 {
		lsub, lerr := s.projs[srcShard].ToLocal(legA)
		if lerr != nil {
			abortAll()
			return nil, nil, lerr
		}
		legAProp, err = s.engines[srcShard].Propose(lsub)
		if err != nil {
			abortAll()
			return nil, nil, err
		}
		legs = append(legs, legRec{shard: srcShard, prop: legAProp, reqMap: reqMapA})
	}

	// Self-contained legs: destination shards with their own sources.
	for _, g := range selfGroups {
		legG := serve.Submission{Name: sub.Name, SizeBytes: sub.SizeBytes}
		legG.Sources = append(legG.Sources, srcIn[g]...)
		var reqMap []int
		for _, gi := range destIn[g] {
			legG.Requests = append(legG.Requests, sub.Requests[gi])
			reqMap = append(reqMap, gi)
		}
		lsub, lerr := s.projs[g].ToLocal(legG)
		if lerr != nil {
			abortAll()
			return nil, nil, lerr
		}
		prop, perr := s.engines[g].Propose(lsub)
		if perr != nil {
			abortAll()
			return nil, nil, perr
		}
		legs = append(legs, legRec{shard: g, prop: prop, reqMap: reqMap})
	}

	// Cut groups: slot the cut transfer after the copy exists at u, then
	// leg B distributes from v inside the destination shard.
	for _, cp := range plans {
		if cp.failed != "" {
			continue
		}
		t1 := cp.uSrcAvail
		if cp.borderIdx >= 0 || cp.uDestIdx >= 0 {
			j := cp.borderIdx
			if j < 0 {
				j = cp.uDestIdx
			}
			var ok bool
			t1, ok = legAProp.Completion(j)
			if !ok {
				cp.failed = fmt.Sprintf("cross-shard: staging at machine %d rejected by shard %d", cp.u, srcShard)
				continue
			}
		}
		ready := t1
		if now > ready {
			ready = now
		}
		start, ok := s.ledger[cp.link].EarliestSlot(ready, cp.dur)
		if !ok {
			cp.failed = fmt.Sprintf("cross-shard: no free slot on cut link %d", cp.link)
			continue
		}
		arr := start.Add(cp.dur)
		if cp.vDest >= 0 && arr > sub.Requests[cp.vDest].Deadline.Instant() {
			if len(destIn[cp.group]) == 1 {
				cp.failed = fmt.Sprintf("cross-shard: cut link %d delivers after the deadline at machine %d", cp.link, cp.v)
				continue
			}
			// v's own request misses the cut arrival; drop it alone and let
			// the rest of the group still ride this round.
			cp.lateDest, cp.vDest = cp.vDest, -1
		}
		var reqMap []int
		legB := serve.Submission{Name: sub.Name, SizeBytes: sub.SizeBytes}
		legB.Sources = []serve.SourceSpec{{Machine: int(cp.v), Available: serve.Instant(arr)}}
		for _, gi := range destIn[cp.group] {
			if gi == cp.vDest || gi == cp.lateDest {
				continue
			}
			legB.Requests = append(legB.Requests, sub.Requests[gi])
			reqMap = append(reqMap, gi)
		}
		cp.start = start
		if len(legB.Requests) == 0 {
			continue // the cut arrival itself serves the only destination
		}
		lsub, lerr := s.projs[cp.group].ToLocal(legB)
		if lerr != nil {
			abortAll()
			return nil, nil, lerr
		}
		prop, perr := s.engines[cp.group].Propose(lsub)
		if perr != nil {
			abortAll()
			return nil, nil, perr
		}
		if cp.vDest < 0 && !anyAdmitted(prop, len(reqMap)) {
			// Nothing in the group is deliverable: drop the leg and the
			// cut rather than ship a copy nobody uses.
			prop.Abort()
			cp.failed = fmt.Sprintf("cross-shard: shard %d admitted none of the group", cp.group)
			continue
		}
		legs = append(legs, legRec{shard: cp.group, prop: prop, reqMap: reqMap})
	}
	return legs, plans, nil
}

// anyAdmitted reports whether the proposal satisfies at least one of its
// first n requests.
func anyAdmitted(p *serve.Proposal, n int) bool {
	for k := 0; k < n; k++ {
		if _, ok := p.Completion(k); ok {
			return true
		}
	}
	return false
}
