package shard

import (
	"strings"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/testnet"
)

// ringNet builds n machines in a bidirectional ring (i↔i+1, wrapping) with
// generous capacity and day-long link windows.
func ringNet(t testing.TB, n int, bps int64) *scenario.Scenario {
	t.Helper()
	b := testnet.NewBuilder()
	ms := b.Machines(n, 1<<40)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.Link(ms[i], ms[j], 0, 24*time.Hour, bps)
		b.Link(ms[j], ms[i], 0, 24*time.Hour, bps)
	}
	return b.Build("ring")
}

func TestGreedyPartition(t *testing.T) {
	sc := ringNet(t, 16, 1e9)
	for _, k := range []int{1, 2, 4, 8, 16} {
		p, err := Greedy(sc.Network, k)
		if err != nil {
			t.Fatalf("Greedy(%d): %v", k, err)
		}
		if p.NumShards() != k {
			t.Fatalf("Greedy(%d): got %d shards", k, p.NumShards())
		}
		seen := 0
		for _, ms := range p.Shards {
			if len(ms) == 0 {
				t.Fatalf("Greedy(%d): empty shard", k)
			}
			seen += len(ms)
		}
		if seen != 16 {
			t.Fatalf("Greedy(%d): %d machines assigned, want 16", k, seen)
		}
		// A contiguous ring partition cuts exactly 2k directed links (k
		// boundaries, two directions each) — the greedy BFS growth should
		// find contiguous regions on a ring.
		if k > 1 {
			if cut := p.CutLinks(sc.Network); len(cut) != 2*k {
				t.Errorf("Greedy(%d): %d cut links, want %d", k, len(cut), 2*k)
			}
		}
	}
	if _, err := Greedy(sc.Network, 0); err == nil {
		t.Error("Greedy(0): want error")
	}
	if _, err := Greedy(sc.Network, 17); err == nil {
		t.Error("Greedy(17) on 16 machines: want error")
	}
	// Determinism: same inputs, same plan.
	a, _ := Greedy(sc.Network, 4)
	b, _ := Greedy(sc.Network, 4)
	for s := range a.Shards {
		if len(a.Shards[s]) != len(b.Shards[s]) {
			t.Fatalf("Greedy not deterministic: shard %d sizes differ", s)
		}
		for i := range a.Shards[s] {
			if a.Shards[s][i] != b.Shards[s][i] {
				t.Fatalf("Greedy not deterministic: shard %d differs", s)
			}
		}
	}
}

func TestPlanValidate(t *testing.T) {
	sc := ringNet(t, 4, 1e9)
	cases := []struct {
		name   string
		shards [][]model.MachineID
		want   string
	}{
		{"no shards", nil, "no shards"},
		{"empty shard", [][]model.MachineID{{0, 1, 2, 3}, {}}, "empty"},
		{"duplicate", [][]model.MachineID{{0, 1}, {1, 2, 3}}, "appears in shards"},
		{"missing", [][]model.MachineID{{0, 1}, {2}}, "in no shard"},
		{"out of range", [][]model.MachineID{{0, 1}, {2, 3, 4}}, "out of range"},
		{"too many shards", [][]model.MachineID{{0}, {1}, {2}, {3}, {0}}, "every shard needs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{Shards: tc.shards}
			err := p.Validate(sc.Network)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate: got %v, want error containing %q", err, tc.want)
			}
		})
	}
	p := &Plan{Shards: [][]model.MachineID{{1, 0}, {3, 2}}}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if p.Assign[0] != 0 || p.Assign[2] != 1 {
		t.Fatalf("Assign not filled: %v", p.Assign)
	}
	if p.Shards[0][0] != 0 || p.Shards[1][0] != 2 {
		t.Fatalf("shard machine lists not sorted: %v", p.Shards)
	}
}

func TestPlanReportDisconnected(t *testing.T) {
	// 0↔1 and 2↔3 connected pairs, one directed bridge 1→2. Putting {1,2}
	// in one shard leaves that region with only the 1→2 direction — not
	// strongly connected.
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<40)
	b.Link(ms[0], ms[1], 0, time.Hour, 1e9)
	b.Link(ms[1], ms[0], 0, time.Hour, 1e9)
	b.Link(ms[2], ms[3], 0, time.Hour, 1e9)
	b.Link(ms[3], ms[2], 0, time.Hour, 1e9)
	b.Link(ms[1], ms[2], 0, time.Hour, 1e9)
	sc := b.Build("bridge")

	p := &Plan{Shards: [][]model.MachineID{{0, 3}, {1, 2}}}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	rep := p.Report(sc.Network)
	if len(rep.Disconnected) != 2 {
		t.Errorf("Disconnected = %v, want both shards (shard 0 has no internal links either)", rep.Disconnected)
	}
	if rep.CutLinks != 4 {
		t.Errorf("CutLinks = %d, want 4", rep.CutLinks)
	}

	q := &Plan{Shards: [][]model.MachineID{{0, 1}, {2, 3}}}
	if err := q.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	qr := q.Report(sc.Network)
	if len(qr.Disconnected) != 0 {
		t.Errorf("Disconnected = %v, want none", qr.Disconnected)
	}
	if qr.CutLinks != 1 || qr.CutBandwidthBPS != 1e9 {
		t.Errorf("cut = %d links %d bps, want the single bridge", qr.CutLinks, qr.CutBandwidthBPS)
	}
}

func TestReadPlan(t *testing.T) {
	sc := ringNet(t, 4, 1e9)
	p, err := ReadPlan(strings.NewReader(`{"shards": [[0,1],[2,3]]}`), sc.Network)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 2 || p.Assign[3] != 1 {
		t.Fatalf("bad plan: %+v", p)
	}
	if _, err := ReadPlan(strings.NewReader(`{"shards": [[0,1]], "extra": 1}`), sc.Network); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadPlan(strings.NewReader(`{"shards": [[0,1],[1,2,3]]}`), sc.Network); err == nil {
		t.Error("duplicate machine accepted")
	}
}

func TestProjectRenumbers(t *testing.T) {
	sc := ringNet(t, 8, 1e9)
	p, err := Greedy(sc.Network, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		pr, err := Project(sc, p, s)
		if err != nil {
			t.Fatal(err)
		}
		n := pr.Scenario.Network
		if n.NumMachines() != len(p.Shards[s]) {
			t.Fatalf("shard %d: %d machines projected, want %d", s, n.NumMachines(), len(p.Shards[s]))
		}
		for i := range n.Machines {
			if int(n.Machines[i].ID) != i {
				t.Fatalf("shard %d: machine %d has ID %d", s, i, n.Machines[i].ID)
			}
		}
		for i := range n.Links {
			l := &n.Links[i]
			if int(l.ID) != i {
				t.Fatalf("shard %d: link %d has ID %d", s, i, l.ID)
			}
			// Round-trip: the global endpoints must be in-shard and map back.
			gf, gt := pr.ToGlobalM[l.From], pr.ToGlobalM[l.To]
			if p.Assign[gf] != s || p.Assign[gt] != s {
				t.Fatalf("shard %d: projected link %d spans shards", s, i)
			}
			gl := sc.Network.Link(pr.ToGlobalL[i])
			if gl.From != gf || gl.To != gt || gl.BandwidthBPS != l.BandwidthBPS {
				t.Fatalf("shard %d: link %d does not round-trip", s, i)
			}
		}
	}
}
