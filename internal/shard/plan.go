// Package shard horizontally scales the admission service: the network is
// partitioned into K regions, each region gets its own serve.Engine over a
// projected sub-network, and a thin coordinator settles the cross-shard
// minority through an offer/commit round (Mesos-style two-level
// scheduling: shards own their resources and decide locally; the
// coordinator only composes offers it cannot decide alone).
//
// The package has three layers: Plan (the partition and its validation),
// Projection (global↔local coordinate translation for one region), and
// Service (the router front-end that preserves the whole stagesvc HTTP
// surface — local submissions go straight to their shard's engine with
// zero coordination, cross-shard submissions run the offer/commit round,
// and /v1/schedule merges every shard's committed transfers plus the
// coordinator's cut-link transfers back into global coordinates).
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"datastaging/internal/model"
)

// Plan is a partition of a network's machines into K shards.
type Plan struct {
	// Shards lists each region's machines in ascending ID order.
	Shards [][]model.MachineID `json:"shards"`
	// Assign maps every machine ID to its shard index (derived from
	// Shards by Validate/normalize).
	Assign []int `json:"-"`
}

// NumShards returns K.
func (p *Plan) NumShards() int { return len(p.Shards) }

// Validate checks the plan against a network — every machine in exactly
// one shard, every listed machine in range, no empty shard — and fills
// Assign. A valid plan may still contain internally disconnected regions;
// those are reported by Report, not rejected, because the local engine
// simply rejects requests it cannot route.
func (p *Plan) Validate(n *model.Network) error {
	if len(p.Shards) == 0 {
		return fmt.Errorf("shard: plan has no shards")
	}
	if len(p.Shards) > n.NumMachines() {
		return fmt.Errorf("shard: %d shards for %d machines; every shard needs at least one machine",
			len(p.Shards), n.NumMachines())
	}
	assign := make([]int, n.NumMachines())
	for i := range assign {
		assign[i] = -1
	}
	for s, ms := range p.Shards {
		if len(ms) == 0 {
			return fmt.Errorf("shard: shard %d is empty", s)
		}
		for _, m := range ms {
			if int(m) < 0 || int(m) >= len(assign) {
				return fmt.Errorf("shard: shard %d lists machine %d, out of range [0,%d)", s, m, len(assign))
			}
			if assign[m] != -1 {
				return fmt.Errorf("shard: machine %d appears in shards %d and %d", m, assign[m], s)
			}
			assign[m] = s
		}
		sort.Slice(ms, func(a, b int) bool { return ms[a] < ms[b] })
	}
	for m, s := range assign {
		if s == -1 {
			return fmt.Errorf("shard: machine %d is in no shard", m)
		}
	}
	p.Assign = assign
	return nil
}

// CutLinks returns the IDs of every virtual link whose endpoints live in
// different shards, ascending. Those links are excluded from every
// projected sub-network; only the coordinator commits transfers on them.
// Call after Validate.
func (p *Plan) CutLinks(n *model.Network) []model.LinkID {
	var out []model.LinkID
	for i := range n.Links {
		l := &n.Links[i]
		if p.Assign[l.From] != p.Assign[l.To] {
			out = append(out, l.ID)
		}
	}
	return out
}

// Report describes a validated plan for operators: per-shard sizes, the
// cut, and any region that is not internally connected (requests whose
// route would need to leave the region are rejected by that shard).
type Report struct {
	Shards   int   `json:"shards"`
	Machines []int `json:"machines"`
	// Links counts each shard's in-region virtual links.
	Links []int `json:"links"`
	// CutLinks is the severed-link count; CutBandwidthBPS sums their
	// bandwidth (the capacity the partition leaves to the coordinator).
	CutLinks        int   `json:"cutLinks"`
	CutBandwidthBPS int64 `json:"cutBandwidthBPS"`
	// Disconnected lists shards whose induced sub-network is not strongly
	// connected (some in-region pair has no in-region route).
	Disconnected []int `json:"disconnected,omitempty"`
}

// Report computes the plan's report against a network. Call after
// Validate.
func (p *Plan) Report(n *model.Network) Report {
	rep := Report{
		Shards:   len(p.Shards),
		Machines: make([]int, len(p.Shards)),
		Links:    make([]int, len(p.Shards)),
	}
	for s, ms := range p.Shards {
		rep.Machines[s] = len(ms)
	}
	for i := range n.Links {
		l := &n.Links[i]
		if p.Assign[l.From] != p.Assign[l.To] {
			rep.CutLinks++
			rep.CutBandwidthBPS += l.BandwidthBPS
		} else {
			rep.Links[p.Assign[l.From]]++
		}
	}
	for s := range p.Shards {
		if !p.shardConnected(n, s) {
			rep.Disconnected = append(rep.Disconnected, s)
		}
	}
	return rep
}

// shardConnected reports whether shard s's induced sub-network is strongly
// connected (trivially true for a single machine).
func (p *Plan) shardConnected(n *model.Network, s int) bool {
	ms := p.Shards[s]
	if len(ms) <= 1 {
		return true
	}
	local := make(map[model.MachineID]int, len(ms))
	for i, m := range ms {
		local[m] = i
	}
	fwd := make([][]int, len(ms))
	bwd := make([][]int, len(ms))
	for i := range n.Links {
		l := &n.Links[i]
		if p.Assign[l.From] == s && p.Assign[l.To] == s {
			f, t := local[l.From], local[l.To]
			fwd[f] = append(fwd[f], t)
			bwd[t] = append(bwd[t], f)
		}
	}
	return reaches(fwd) == len(ms) && reaches(bwd) == len(ms)
}

func reaches(adj [][]int) int {
	seen := make([]bool, len(adj))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count
}

// Greedy partitions the network into k balanced regions with a small edge
// cut: k seeds spread evenly across the ID space grow in one multi-source
// breadth-first wave over the undirected link graph — each machine joins
// the region that reaches it first (Voronoi growth), capped at ceil(m/k)
// machines per region, which keeps regions connected wherever the topology
// allows. Machines every capped region walled off join the smallest
// adjacent region; machines no region can reach at all (disconnected
// topology) fall to the smallest region overall. Deterministic — same
// network and k, same plan.
func Greedy(n *model.Network, k int) (*Plan, error) {
	m := n.NumMachines()
	if k <= 0 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", k)
	}
	if k > m {
		return nil, fmt.Errorf("shard: %d shards for %d machines; every shard needs at least one machine", k, m)
	}
	adj := make([][]model.MachineID, m)
	for i := range n.Links {
		l := &n.Links[i]
		adj[l.From] = append(adj[l.From], l.To)
		adj[l.To] = append(adj[l.To], l.From)
	}
	for _, a := range adj {
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
	}
	assign := make([]int, m)
	for i := range assign {
		assign[i] = -1
	}
	limit := (m + k - 1) / k
	sizes := make([]int, k)
	queue := make([]model.MachineID, 0, m)
	for s := 0; s < k; s++ {
		seed := model.MachineID(s * m / k)
		for assign[seed] != -1 {
			seed++ // seeds collide only when m/k rounds down hard
		}
		assign[seed] = s
		sizes[s]++
		queue = append(queue, seed)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		s := assign[u]
		for _, v := range adj[u] {
			if assign[v] != -1 || sizes[s] >= limit {
				continue
			}
			assign[v] = s
			sizes[s]++
			queue = append(queue, v)
		}
	}
	// Leftovers: every region that could reach them filled up first. Join
	// the smallest adjacent region (keeps the region connected); a machine
	// with no assigned neighbor at all falls to the smallest region.
	// Iterate until stable so chains of leftovers attach one by one.
	for remaining := m - len(queue); remaining > 0; {
		progressed := false
		for i := range assign {
			if assign[i] != -1 {
				continue
			}
			best := -1
			for _, v := range adj[i] {
				if s := assign[v]; s != -1 && (best == -1 || sizes[s] < sizes[best]) {
					best = s
				}
			}
			if best == -1 {
				continue
			}
			assign[i] = best
			sizes[best]++
			remaining--
			progressed = true
		}
		if !progressed {
			for i := range assign {
				if assign[i] != -1 {
					continue
				}
				small := 0
				for s := 1; s < k; s++ {
					if sizes[s] < sizes[small] {
						small = s
					}
				}
				assign[i] = small
				sizes[small]++
				remaining--
			}
		}
	}
	p := &Plan{Shards: make([][]model.MachineID, k)}
	for i, s := range assign {
		p.Shards[s] = append(p.Shards[s], model.MachineID(i))
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	return p, nil
}

// planFile is the operator-supplied shard map document: an explicit
// machine list per shard.
type planFile struct {
	Shards [][]int `json:"shards"`
}

// ReadPlan decodes an operator shard map ({"shards": [[0,1],[2,3]]}) and
// validates it against the network.
func ReadPlan(r io.Reader, n *model.Network) (*Plan, error) {
	var pf planFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pf); err != nil {
		return nil, fmt.Errorf("shard: bad plan document: %w", err)
	}
	p := &Plan{Shards: make([][]model.MachineID, len(pf.Shards))}
	for s, ms := range pf.Shards {
		for _, m := range ms {
			p.Shards[s] = append(p.Shards[s], model.MachineID(m))
		}
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadPlanFile is ReadPlan over a file path (the -shard-map flag).
func ReadPlanFile(path string, n *model.Network) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadPlan(f, n)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
