package shard

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/obs/introspect"
	"datastaging/internal/resource"
	"datastaging/internal/scenario"
	"datastaging/internal/serve"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/validator"
)

// Options configures a sharded service.
type Options struct {
	// Engine is the per-shard engine template: every shard runs one
	// serve.Engine with these options over its projected sub-network.
	// Config.Obs (when set) is shared, so serve.* metrics aggregate across
	// shards; Audit (when set) is shared too, with records tagged by
	// shard. TicketPrefix and Shard are overwritten per shard.
	Engine serve.Options
	// Intro, when non-nil, receives per-shard live stats for /runinfo
	// (shard.N.epochs, shard.N.queue) and has its endpoints mounted on the
	// router mux. The per-shard engines themselves run without one: a
	// single live-phase slot makes no sense across K concurrent worlds.
	Intro *introspect.Server
}

// Service is the sharded admission service: K per-shard engines behind one
// router that preserves the single-engine HTTP surface. In-shard
// submissions (every source and destination inside one region) go straight
// to that shard's engine — zero cross-shard coordination. Cross-shard
// submissions run the offer/commit round in cross.go.
type Service struct {
	base    *scenario.Scenario
	plan    *Plan
	projs   []*Projection
	engines []*serve.Engine
	opts    Options
	o       *obs.Obs

	// cut is the severed-link set; ledger holds one timeline per cut link,
	// written only by the coordinator (under xmu).
	cut    []model.LinkID
	ledger map[model.LinkID]*resource.LinkTimeline

	mLocal, mCross, mRollbacks *obs.Counter

	// xmu serializes offer/commit rounds: exactly one coordinator may hold
	// proposals on multiple engines at a time (the deadlock contract of
	// serve.Propose).
	xmu sync.Mutex
	// smu[k] orders shard k's item registry against its engine's item
	// numbering: whoever creates the shard's next item (a local Submit or
	// a committed cross leg) holds it across {engine call, registry
	// append}. Locked before the engine's own lock on both paths.
	smu []sync.Mutex

	// gmu guards the global item registry and the cross-ticket book.
	gmu          sync.Mutex
	gItems       []model.Item // global scenario items; ID == index
	gTotalReqs   int
	freeGids     []int   // gids whose submission never entered a shard
	reg          [][]int // per shard: local item index -> global item id
	cross        map[string]*crossTicket
	nextCross    int
	cutTransfers []state.Transfer // global coordinates, coordinator-committed

	memoMu   sync.Mutex
	memoKey  string
	memoView serve.ScheduleView
}

// Ticket is the service-level handle of one submission: either a thin
// wrapper over a shard engine's ticket (local) or a synchronously decided
// cross-shard ticket.
type Ticket struct {
	id    string
	gid   int
	local *serve.Ticket
	pr    *Projection
	view  serve.TicketView // final view of a cross ticket
	done  chan struct{}
}

// ID returns the service-assigned ticket id ("s2-r-7" local, "x-3" cross).
func (t *Ticket) ID() string { return t.id }

// Done is closed when the first verdict is available (immediately for
// cross tickets — the offer/commit round is synchronous).
func (t *Ticket) Done() <-chan struct{} {
	if t.local != nil {
		return t.local.Done()
	}
	return t.done
}

// View returns the ticket's current state in global coordinates.
func (t *Ticket) View() serve.TicketView {
	if t.local != nil {
		return t.pr.ViewToGlobal(t.local.View(), t.gid)
	}
	return t.view
}

// crossTicket is the decided record of one cross-shard submission.
type crossTicket struct {
	view serve.TicketView
	legs []string // leg ticket ids, "s<k>-r-<n>", for the audit trail
}

// New builds the sharded service: one projection and engine per region.
// The base scenario contributes the network, horizon, and γ; it must carry
// no items (a sharded service always starts with an empty request book —
// pre-partitioning a global item load is not supported).
func New(base *scenario.Scenario, plan *Plan, opts Options) (*Service, error) {
	if err := plan.Validate(base.Network); err != nil {
		return nil, err
	}
	if len(base.Items) > 0 {
		return nil, fmt.Errorf("shard: base scenario carries %d items; a sharded service starts empty", len(base.Items))
	}
	if base.SerialTransfers && plan.NumShards() > 1 {
		return nil, fmt.Errorf("shard: serial-transfer scenarios are not shardable (cut transfers would bypass the per-machine port bookkeeping)")
	}
	s := &Service{
		base:   base,
		plan:   plan,
		opts:   opts,
		o:      opts.Engine.Config.Obs,
		ledger: make(map[model.LinkID]*resource.LinkTimeline),
		smu:    make([]sync.Mutex, plan.NumShards()),
		reg:    make([][]int, plan.NumShards()),
		cross:  make(map[string]*crossTicket),
	}
	s.cut = plan.CutLinks(base.Network)
	for _, id := range s.cut {
		s.ledger[id] = resource.NewLinkTimeline(base.Network.Link(id).Window)
	}
	s.mLocal = s.o.Counter("shard.admitted_total")
	s.mCross = s.o.Counter("shard.crossshard_total")
	s.mRollbacks = s.o.Counter("shard.offer_rollbacks_total")
	for k := 0; k < plan.NumShards(); k++ {
		pr, err := Project(base, plan, k)
		if err != nil {
			return nil, err
		}
		eo := opts.Engine
		eo.Intro = nil
		eo.TicketPrefix = fmt.Sprintf("s%d-", k)
		shardIdx := k
		eo.Shard = &shardIdx
		eng, err := serve.New(pr.Scenario, eo)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		s.projs = append(s.projs, pr)
		s.engines = append(s.engines, eng)
	}
	if opts.Intro != nil {
		opts.Intro.SetStat("shard.cut_links", strconv.Itoa(len(s.cut)))
		for k := range s.engines {
			eng := s.engines[k]
			opts.Intro.SetLiveStat(fmt.Sprintf("shard.%d.epochs", k), func() string {
				return strconv.Itoa(eng.Schedule().Epochs)
			})
			opts.Intro.SetLiveStat(fmt.Sprintf("shard.%d.queue", k), func() string {
				return strconv.Itoa(eng.Info().Queue)
			})
		}
	}
	return s, nil
}

// Plan returns the service's partition.
func (s *Service) Plan() *Plan { return s.plan }

// Engines exposes the per-shard engines (tests and per-shard info).
func (s *Service) Engines() []*serve.Engine { return s.engines }

// allocGID registers the submission's true item in the global scenario and
// returns its id, reusing a freed slot when one exists.
func (s *Service) allocGID(sub serve.Submission) int {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	var gid int
	if n := len(s.freeGids); n > 0 {
		gid = s.freeGids[n-1]
		s.freeGids = s.freeGids[:n-1]
		s.gItems[gid] = sub.Item(model.ItemID(gid))
	} else {
		gid = len(s.gItems)
		s.gItems = append(s.gItems, sub.Item(model.ItemID(gid)))
	}
	s.gTotalReqs += len(sub.Requests)
	return gid
}

// freeGID returns a gid whose submission never entered any shard
// (overload, validation race) so the slot can be reused.
func (s *Service) freeGID(gid int, sub serve.Submission) {
	s.gmu.Lock()
	s.freeGids = append(s.freeGids, gid)
	s.gTotalReqs -= len(sub.Requests)
	s.gmu.Unlock()
}

// shardsOf classifies a (globally validated) submission: the set of shards
// its sources and destinations touch, plus the primary source shard (the
// shard holding the most sources, lowest index on ties).
func (s *Service) shardsOf(sub serve.Submission) (touched []int, srcShard int) {
	seen := make(map[int]bool)
	srcCount := make(map[int]int)
	for _, src := range sub.Sources {
		k := s.plan.Assign[src.Machine]
		srcCount[k]++
		if !seen[k] {
			seen[k] = true
			touched = append(touched, k)
		}
	}
	for _, rq := range sub.Requests {
		k := s.plan.Assign[rq.Machine]
		if !seen[k] {
			seen[k] = true
			touched = append(touched, k)
		}
	}
	srcShard = -1
	for k, c := range srcCount {
		if srcShard == -1 || c > srcCount[srcShard] || (c == srcCount[srcShard] && k < srcShard) {
			srcShard = k
		}
	}
	return touched, srcShard
}

// Submit routes one submission: in-shard straight to its engine, cross-
// shard through the offer/commit round. Errors mirror serve.Submit
// (validation, serve.ErrOverloaded, serve.ErrDraining).
func (s *Service) Submit(sub serve.Submission) (*Ticket, error) {
	if err := sub.Validate(s.base.Network.NumMachines()); err != nil {
		return nil, err
	}
	touched, srcShard := s.shardsOf(sub)
	if len(touched) == 1 {
		return s.submitLocal(sub, touched[0])
	}
	return s.submitCross(sub, srcShard)
}

// submitLocal is the zero-coordination path: translate, register the item
// slot, hand the submission to the shard's engine.
func (s *Service) submitLocal(sub serve.Submission, k int) (*Ticket, error) {
	pr := s.projs[k]
	lsub, err := pr.ToLocal(sub)
	if err != nil {
		return nil, err
	}
	gid := s.allocGID(sub)
	s.smu[k].Lock()
	// The registry entry must exist before the engine can publish a
	// snapshot containing the item (a MaxBatch flush can run inside
	// Submit), so it goes in first and is popped if intake refuses.
	s.reg[k] = append(s.reg[k], gid)
	t, err := s.engines[k].Submit(lsub)
	if err != nil {
		s.reg[k] = s.reg[k][:len(s.reg[k])-1]
		s.smu[k].Unlock()
		s.freeGID(gid, sub)
		return nil, err
	}
	s.smu[k].Unlock()
	s.mLocal.Inc()
	return &Ticket{id: t.ID(), gid: gid, local: t, pr: pr}, nil
}

// Ticket resolves a service ticket id: "x-N" from the cross book, a shard
// prefix ("s2-r-7") from that shard's engine.
func (s *Service) Ticket(id string) (serve.TicketView, bool) {
	if strings.HasPrefix(id, "x-") {
		s.gmu.Lock()
		ct, ok := s.cross[id]
		s.gmu.Unlock()
		if !ok {
			return serve.TicketView{}, false
		}
		return ct.view, true
	}
	k, ok := s.shardOfTicket(id)
	if !ok {
		return serve.TicketView{}, false
	}
	v, ok := s.engines[k].TicketView(id)
	if !ok {
		return serve.TicketView{}, false
	}
	gid, ok := s.gidOf(k, v.Item)
	if !ok {
		return serve.TicketView{}, false
	}
	return s.projs[k].ViewToGlobal(v, gid), true
}

// legTickets returns a cross ticket's per-shard leg ticket ids.
func (s *Service) legTickets(id string) ([]string, bool) {
	s.gmu.Lock()
	ct, ok := s.cross[id]
	s.gmu.Unlock()
	if !ok {
		return nil, false
	}
	return ct.legs, true
}

func (s *Service) shardOfTicket(id string) (int, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 0 {
		return 0, false
	}
	k, err := strconv.Atoi(id[1:dash])
	if err != nil || k < 0 || k >= len(s.engines) {
		return 0, false
	}
	return k, true
}

// gidOf maps shard k's local item to its global id (-1 items — tickets
// still queued — map to -1).
func (s *Service) gidOf(k, localItem int) (int, bool) {
	if localItem < 0 {
		return -1, true
	}
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if localItem >= len(s.reg[k]) {
		return 0, false
	}
	return s.reg[k][localItem], true
}

// Advance moves every shard's virtual clock to the same instant, flushing
// pending batches (virtual-clock mode only).
func (s *Service) Advance(to simtime.Instant) error {
	for k, eng := range s.engines {
		if err := eng.Advance(to); err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
	}
	return nil
}

// Now returns the current instant (shard 0's clock; Advance keeps virtual
// clocks in lockstep).
func (s *Service) Now() simtime.Instant { return s.engines[0].Now() }

// Drain closes intake on every shard and completes in-flight epochs.
func (s *Service) Drain(ctx context.Context) error {
	var first error
	for k, eng := range s.engines {
		if err := eng.Drain(ctx); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", k, err)
		}
	}
	return first
}

// Scenario reconstructs the global scenario: the full network plus every
// true item the service has seen (border-leg synthetics excluded — they
// exist only inside shard-local worlds). Safe any time; the snapshot is
// consistent under the registry lock.
func (s *Service) Scenario() *scenario.Scenario {
	s.gmu.Lock()
	items := append([]model.Item(nil), s.gItems...)
	s.gmu.Unlock()
	return &scenario.Scenario{
		Name:           s.base.Name,
		Network:        s.base.Network,
		Items:          items,
		GarbageCollect: s.base.GarbageCollect,
		Horizon:        s.base.Horizon,
	}
}

// Schedule returns the merged committed schedule: every shard's transfers
// translated to global coordinates plus the coordinator's cut-link
// transfers, with the weighted objective recomputed over the true global
// scenario by the independent validator (border-leg deliveries don't
// count). Memoized on the epoch vector, so polling between epochs is
// cheap.
func (s *Service) Schedule() serve.ScheduleView {
	views := make([]serve.ScheduleView, len(s.engines))
	key := ""
	for k, eng := range s.engines {
		views[k] = eng.Schedule()
		key += strconv.Itoa(views[k].Epochs) + "."
	}
	s.gmu.Lock()
	key += strconv.Itoa(len(s.cutTransfers))
	s.memoMu.Lock()
	if key == s.memoKey {
		v := s.memoView
		s.memoMu.Unlock()
		s.gmu.Unlock()
		v.Now = serve.Instant(s.Now())
		return v
	}
	s.memoMu.Unlock()
	merged := make([]state.Transfer, 0, 64)
	for k := range views {
		pr := s.projs[k]
		for _, tr := range views[k].Transfers {
			merged = append(merged, pr.TransferToGlobal(tr, model.ItemID(s.reg[k][tr.Item])))
		}
	}
	merged = append(merged, s.cutTransfers...)
	items := append([]model.Item(nil), s.gItems...)
	totalReqs := s.gTotalReqs
	s.gmu.Unlock()

	gsc := &scenario.Scenario{
		Name:           s.base.Name,
		Network:        s.base.Network,
		Items:          items,
		GarbageCollect: s.base.GarbageCollect,
		Horizon:        s.base.Horizon,
	}
	view := serve.ScheduleView{
		Now:           serve.Instant(s.Now()),
		Items:         len(items),
		TotalRequests: totalReqs,
		Transfers:     merged,
	}
	for k := range views {
		view.Epochs += views[k].Epochs
	}
	if sat, err := validator.SatisfiedSet(gsc, merged); err == nil {
		view.Satisfied = len(sat)
		w := s.opts.Engine.Config.Weights
		for id := range sat {
			view.WeightedValue += w.Of(gsc.Request(id).Priority)
		}
	}
	s.memoMu.Lock()
	s.memoKey, s.memoView = key, view
	s.memoMu.Unlock()
	return view
}

// Info merges the per-shard descriptions into the global service
// description plus the partition summary.
func (s *Service) Info() serve.Info {
	first := s.engines[0].Info()
	out := serve.Info{
		Scenario:  s.base.Name,
		Machines:  s.base.Network.NumMachines(),
		Links:     len(s.base.Network.Links),
		Horizon:   serve.Instant(s.base.Horizon),
		Now:       serve.Instant(s.Now()),
		QueueCap:  first.QueueCap,
		MaxBatch:  first.MaxBatch,
		Virtual:   first.Virtual,
		Scheduler: first.Scheduler,
		CutLinks:  len(s.cut),
	}
	s.gmu.Lock()
	out.Items = len(s.gItems)
	s.gmu.Unlock()
	for k, eng := range s.engines {
		ei := eng.Info()
		out.Queue += ei.Queue
		if ei.QueueCap < out.QueueCap {
			out.QueueCap = ei.QueueCap
		}
		if ei.MaxBatch < out.MaxBatch {
			out.MaxBatch = ei.MaxBatch
		}
		out.Draining = out.Draining || ei.Draining
		sv := eng.Schedule()
		out.Shards = append(out.Shards, serve.ShardInfo{
			Shard:    k,
			Machines: len(s.plan.Shards[k]),
			Links:    ei.Links,
			Items:    ei.Items,
			Epochs:   sv.Epochs,
			Queue:    ei.Queue,
		})
	}
	return out
}
