package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/serve"
	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
	"datastaging/internal/validator"
	"datastaging/internal/workload"
)

// diffTolerance is the documented objective-gap bound: on the builtin
// workloads over the reference 16-machine topology, the sharded service's
// weighted objective stays within this fraction of the single-world
// engine's. The gap exists because cross-shard admission settles each
// submission in one offer/commit round (no later replan may move its
// transfers) and because cut-link routing considers at most
// maxCutCandidates alternatives.
const diffTolerance = 0.85

func cfgShard(o *obs.Obs) core.Config {
	return core.Config{
		Heuristic: core.FullPathOneDest,
		Criterion: core.C4,
		EU:        core.EUFromLog10(2),
		Weights:   model.Weights1x10x100,
		Obs:       o,
	}
}

// meshNet builds the reference differential topology: an n-machine
// bidirectional ring plus a full bidirectional mesh among the block leaders
// (machines 0, n/4, n/2, 3n/4), so every pair of contiguous quarter-blocks
// has a direct cut link in both directions.
func meshNet(t *testing.T, n int, bps int64) *scenario.Scenario {
	t.Helper()
	b := testnet.NewBuilder()
	ms := b.Machines(n, 1<<40)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.Link(ms[i], ms[j], 0, 24*time.Hour, bps)
		b.Link(ms[j], ms[i], 0, 24*time.Hour, bps)
	}
	hubs := []int{0, n / 4, n / 2, 3 * n / 4}
	for _, a := range hubs {
		for _, c := range hubs {
			if a != c {
				b.Link(ms[a], ms[c], 0, 24*time.Hour, bps)
			}
		}
	}
	return b.Build("mesh")
}

// blockPlan partitions machines [0,n) into k contiguous blocks.
func blockPlan(t testing.TB, sc *scenario.Scenario, n, k int) *Plan {
	t.Helper()
	p := &Plan{Shards: make([][]model.MachineID, k)}
	for i := 0; i < n; i++ {
		s := i * k / n
		p.Shards[s] = append(p.Shards[s], model.MachineID(i))
	}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	return p
}

// replayArrivals drives the same arrival stream through a submit/advance
// surface shared by serve.Engine and Service: advance the virtual clock to
// each distinct arrival instant, submit that instant's group, flush the
// tail.
type replayTarget interface {
	Advance(simtime.Instant) error
	Submit(serve.Submission) error
}

type engineTarget struct{ e *serve.Engine }

func (t engineTarget) Advance(to simtime.Instant) error { return t.e.Advance(to) }
func (t engineTarget) Submit(sub serve.Submission) error {
	_, err := t.e.Submit(sub)
	return err
}

type serviceTarget struct{ s *Service }

func (t serviceTarget) Advance(to simtime.Instant) error { return t.s.Advance(to) }
func (t serviceTarget) Submit(sub serve.Submission) error {
	_, err := t.s.Submit(sub)
	return err
}

func replayArrivals(t *testing.T, target replayTarget, arrivals []workload.Arrival) {
	t.Helper()
	var now simtime.Instant
	for i := range arrivals {
		a := &arrivals[i]
		if a.At > now {
			if err := target.Advance(a.At); err != nil {
				t.Fatalf("advance to %v: %v", a.At, err)
			}
			now = a.At
		}
		if err := target.Submit(serve.SubmissionFromArrival(*a)); err != nil {
			t.Fatalf("submit arrival %d: %v", i, err)
		}
	}
	if err := target.Advance(now); err != nil { // flush the final batch
		t.Fatalf("final flush: %v", err)
	}
}

// TestShardedK1Identity: with one shard the service is a pass-through — the
// committed schedule is bit-identical to a bare engine over the same
// scenario and submission stream.
func TestShardedK1Identity(t *testing.T) {
	sc := ringNet(t, 8, 1e9)
	subs := make([]serve.Submission, 0, 12)
	for i := 0; i < 12; i++ {
		subs = append(subs, serve.Submission{
			Name:      fmt.Sprintf("id-%d", i),
			SizeBytes: int64(4+i) << 20,
			Sources:   []serve.SourceSpec{{Machine: i % 8}},
			Requests: []serve.RequestSpec{{
				Machine:  (i + 3) % 8,
				Deadline: serve.Instant(time.Duration(2+i%4) * time.Hour),
				Priority: i % 3,
			}},
		})
	}
	eo := serve.Options{Config: cfgShard(obs.New()), VirtualClock: true, MaxBatch: 1, QueueCap: 64}
	eng, err := serve.New(sc, eo)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Greedy(sc.Network, 1)
	if err != nil {
		t.Fatal(err)
	}
	eo.Config = cfgShard(obs.New())
	svc, err := New(sc, plan, Options{Engine: eo})
	if err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		if _, err := eng.Submit(sub); err != nil {
			t.Fatalf("engine submit %d: %v", i, err)
		}
		tk, err := svc.Submit(sub)
		if err != nil {
			t.Fatalf("service submit %d: %v", i, err)
		}
		if !strings.HasPrefix(tk.ID(), "s0-") {
			t.Fatalf("K=1 ticket %q is not a shard-0 local ticket", tk.ID())
		}
	}
	ev, sv := eng.Schedule(), svc.Schedule()
	if !reflect.DeepEqual(ev.Transfers, sv.Transfers) {
		t.Fatalf("K=1 transfers diverge:\nengine:  %+v\nsharded: %+v", ev.Transfers, sv.Transfers)
	}
	if ev.Satisfied != sv.Satisfied || math.Abs(ev.WeightedValue-sv.WeightedValue) > 1e-9 {
		t.Fatalf("K=1 objective diverges: engine %d/%.1f, sharded %d/%.1f",
			ev.Satisfied, ev.WeightedValue, sv.Satisfied, sv.WeightedValue)
	}
	if err := validator.Validate(svc.Scenario(), sv.Transfers); err != nil {
		t.Fatalf("K=1 merged schedule invalid: %v", err)
	}
}

// TestCrossShardAdmit: a submission spanning both shards of a 4-machine
// network runs the offer/commit round — the in-shard destination via leg A,
// the cut receiver via the coordinator's cut transfer, the far destination
// via leg B — and the merged schedule passes the independent validator.
func TestCrossShardAdmit(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<40)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 1e9)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 1e9)
	b.Link(ms[2], ms[3], 0, 24*time.Hour, 1e9)
	b.Link(ms[3], ms[2], 0, 24*time.Hour, 1e9)
	b.Link(ms[0], ms[2], 0, 24*time.Hour, 1e9) // the single cut link
	sc := b.Build("twoshard")

	p := &Plan{Shards: [][]model.MachineID{{0, 1}, {2, 3}}}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	svc, err := New(sc, p, Options{Engine: serve.Options{
		Config: cfgShard(o), VirtualClock: true, MaxBatch: 1, QueueCap: 64,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Info().CutLinks; got != 1 {
		t.Fatalf("Info.CutLinks = %d, want 1", got)
	}

	tk, err := svc.Submit(serve.Submission{
		Name: "span", SizeBytes: 8 << 20,
		Sources: []serve.SourceSpec{{Machine: 0}},
		Requests: []serve.RequestSpec{
			{Machine: 1, Deadline: serve.Instant(2 * time.Hour), Priority: 2},
			{Machine: 2, Deadline: serve.Instant(2 * time.Hour), Priority: 1},
			{Machine: 3, Deadline: serve.Instant(2 * time.Hour), Priority: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID() != "x-0" {
		t.Fatalf("cross ticket id = %q, want x-0", tk.ID())
	}
	select {
	case <-tk.Done():
	default:
		t.Fatal("cross ticket not decided synchronously")
	}
	v := tk.View()
	if v.Status != serve.StatusAdmitted {
		t.Fatalf("cross ticket status = %q, want admitted; verdicts %+v", v.Status, v.Requests)
	}
	for i, rv := range v.Requests {
		if rv.Status != serve.StatusAdmitted {
			t.Errorf("request %d (machine %d): %q, reason %q", i, rv.Machine, rv.Status, rv.Reason)
		}
	}
	if got, ok := svc.Ticket("x-0"); !ok || got.Status != serve.StatusAdmitted {
		t.Fatalf("Ticket lookup: ok=%v view=%+v", ok, got)
	}
	legs, ok := svc.legTickets("x-0")
	if !ok || len(legs) != 2 {
		t.Fatalf("legTickets = %v, %v; want two legs (A on shard 0, B on shard 1)", legs, ok)
	}

	sv := svc.Schedule()
	cutID := svc.Plan().CutLinks(sc.Network)[0]
	foundCut := false
	for _, tr := range sv.Transfers {
		if tr.Link == cutID {
			foundCut = true
			if tr.From != 0 || tr.To != 2 {
				t.Errorf("cut transfer endpoints %d→%d, want 0→2", tr.From, tr.To)
			}
		}
	}
	if !foundCut {
		t.Fatalf("no transfer on the cut link in the merged schedule: %+v", sv.Transfers)
	}
	if sv.Satisfied != 3 {
		t.Fatalf("Satisfied = %d, want 3", sv.Satisfied)
	}
	if err := validator.Validate(svc.Scenario(), sv.Transfers); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}

	// A second, purely local submission takes the zero-coordination path.
	lt, err := svc.Submit(serve.Submission{
		Name: "local", SizeBytes: 4 << 20,
		Sources:  []serve.SourceSpec{{Machine: 2}},
		Requests: []serve.RequestSpec{{Machine: 3, Deadline: serve.Instant(3 * time.Hour), Priority: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(lt.ID(), "s1-") {
		t.Fatalf("local ticket id = %q, want shard-1 prefix", lt.ID())
	}
	if got, ok := svc.Ticket(lt.ID()); !ok || got.Status != serve.StatusAdmitted {
		t.Fatalf("local ticket lookup: ok=%v view=%+v", ok, got)
	}
	if lc, cc := o.Counter("shard.admitted_total").Value(), o.Counter("shard.crossshard_total").Value(); lc != 1 || cc != 1 {
		t.Fatalf("counters: local=%d cross=%d, want 1/1", lc, cc)
	}
	if err := validator.Validate(svc.Scenario(), svc.Schedule().Transfers); err != nil {
		t.Fatalf("merged schedule invalid after local submit: %v", err)
	}
}

// TestCrossShardNoCutLink: when the partition severs every path to a
// destination shard (no cut link from the source shard at all), the round
// rejects those requests with an explicit reason instead of wedging.
func TestCrossShardNoCutLink(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<40)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 1e9)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 1e9)
	b.Link(ms[2], ms[3], 0, 24*time.Hour, 1e9)
	b.Link(ms[3], ms[2], 0, 24*time.Hour, 1e9)
	sc := b.Build("islands")

	p := &Plan{Shards: [][]model.MachineID{{0, 1}, {2, 3}}}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	svc, err := New(sc, p, Options{Engine: serve.Options{
		Config: cfgShard(obs.New()), VirtualClock: true, MaxBatch: 1, QueueCap: 64,
	}})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := svc.Submit(serve.Submission{
		Name: "unreachable", SizeBytes: 1 << 20,
		Sources: []serve.SourceSpec{{Machine: 0}},
		Requests: []serve.RequestSpec{
			{Machine: 2, Deadline: serve.Instant(2 * time.Hour), Priority: 2},
			{Machine: 3, Deadline: serve.Instant(2 * time.Hour), Priority: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := tk.View()
	if v.Status != serve.StatusRejected {
		t.Fatalf("status = %q, want rejected", v.Status)
	}
	for i, rv := range v.Requests {
		if rv.Status != serve.StatusRejected || !strings.Contains(rv.Reason, "no cut link") {
			t.Errorf("request %d: status %q reason %q, want rejected with a no-cut-link reason", i, rv.Status, rv.Reason)
		}
	}
	if n := len(svc.Schedule().Transfers); n != 0 {
		t.Fatalf("rejected round committed %d transfers", n)
	}
}

// TestCrossShardLateDestSalvage: when the cut transfer arrives past the cut
// receiver's own deadline, only that destination is dropped — the rest of
// the group still rides the round (cut + leg B) instead of failing whole.
func TestCrossShardLateDestSalvage(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<40)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 1e9)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 1e9)
	b.Link(ms[2], ms[3], 0, 24*time.Hour, 1e9)
	b.Link(ms[3], ms[2], 0, 24*time.Hour, 1e9)
	b.Link(ms[0], ms[2], 0, 24*time.Hour, 9000) // cut: ~2.1h for 8MiB
	sc := b.Build("latecut")

	p := &Plan{Shards: [][]model.MachineID{{0, 1}, {2, 3}}}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	svc, err := New(sc, p, Options{Engine: serve.Options{
		Config: cfgShard(obs.New()), VirtualClock: true, MaxBatch: 1, QueueCap: 64,
	}})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := svc.Submit(serve.Submission{
		Name: "late", SizeBytes: 8 << 20,
		Sources: []serve.SourceSpec{{Machine: 0}},
		Requests: []serve.RequestSpec{
			{Machine: 1, Deadline: serve.Instant(12 * time.Hour), Priority: 1},
			{Machine: 2, Deadline: serve.Instant(time.Hour), Priority: 2},
			{Machine: 3, Deadline: serve.Instant(12 * time.Hour), Priority: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := tk.View()
	if v.Status != serve.StatusAdmitted {
		t.Fatalf("status = %q, want admitted; verdicts %+v", v.Status, v.Requests)
	}
	for _, rv := range v.Requests {
		switch rv.Machine {
		case 1, 3:
			if rv.Status != serve.StatusAdmitted {
				t.Errorf("machine %d: %q reason %q, want admitted", rv.Machine, rv.Status, rv.Reason)
			}
		case 2:
			if rv.Status != serve.StatusRejected || !strings.Contains(rv.Reason, "delivers after the deadline") {
				t.Errorf("machine 2: %q reason %q, want rejected past-deadline", rv.Status, rv.Reason)
			}
			if rv.BlamedLink == 0 {
				t.Errorf("machine 2: no blamed link on the late cut verdict")
			}
		}
	}
	sv := svc.Schedule()
	if sv.Satisfied != 2 {
		t.Fatalf("Satisfied = %d, want 2 (machines 1 and 3)", sv.Satisfied)
	}
	if err := validator.Validate(svc.Scenario(), sv.Transfers); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}
}

// TestShardedDifferential replays every builtin workload through a single
// engine and through the sharded service at K=4 over the same topology and
// asserts (a) the merged sharded schedule passes the independent validator
// and (b) the sharded weighted objective stays within diffTolerance of the
// single world's.
func TestShardedDifferential(t *testing.T) {
	const n = 16
	for _, spec := range workload.Builtins() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			arrivals, err := spec.Compile(n)
			if err != nil {
				t.Fatal(err)
			}
			sc := meshNet(t, n, 1e9)
			eo := serve.Options{
				Config: cfgShard(obs.New()), VirtualClock: true,
				MaxBatch: len(arrivals) + 1, QueueCap: len(arrivals) + 1,
			}
			eng, err := serve.New(sc, eo)
			if err != nil {
				t.Fatal(err)
			}
			replayArrivals(t, engineTarget{eng}, arrivals)
			single := eng.Schedule()

			sc2 := meshNet(t, n, 1e9)
			plan := blockPlan(t, sc2, n, 4)
			eo.Config = cfgShard(obs.New())
			svc, err := New(sc2, plan, Options{Engine: eo})
			if err != nil {
				t.Fatal(err)
			}
			replayArrivals(t, serviceTarget{svc}, arrivals)
			sharded := svc.Schedule()

			if err := validator.Validate(svc.Scenario(), sharded.Transfers); err != nil {
				t.Fatalf("merged K=4 schedule invalid: %v", err)
			}
			if single.WeightedValue <= 0 {
				t.Fatalf("single world admitted nothing (%d arrivals)", len(arrivals))
			}
			ratio := sharded.WeightedValue / single.WeightedValue
			t.Logf("%s: %d arrivals; single %d sat / %.1f value; sharded %d sat / %.1f value; ratio %.3f",
				spec.Name, len(arrivals), single.Satisfied, single.WeightedValue,
				sharded.Satisfied, sharded.WeightedValue, ratio)
			if ratio < diffTolerance {
				t.Errorf("sharded objective ratio %.3f below tolerance %.2f", ratio, diffTolerance)
			}
		})
	}
}

// TestCrossShardHammer drives 16 goroutines of mixed local and cross-shard
// submissions against a wall-clock two-shard service and checks that every
// ticket decides and the merged schedule stays validator-clean. Run under
// -race this exercises the xmu → smu → engine lock hierarchy.
func TestCrossShardHammer(t *testing.T) {
	sc := ringNet(t, 8, 1e9)
	p := &Plan{Shards: [][]model.MachineID{{0, 1, 2, 3}, {4, 5, 6, 7}}}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	svc, err := New(sc, p, Options{Engine: serve.Options{
		Config: cfgShard(o), MaxBatch: 4, MaxWait: 2 * time.Millisecond, QueueCap: 4096,
	}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	per := 12
	if testing.Short() {
		per = 4
	}
	var (
		mu      sync.Mutex
		tickets []*Ticket
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := (w % 2) * 4
			for i := 0; i < per; i++ {
				var sub serve.Submission
				if (w+i)%3 == 0 {
					// Cross-shard: source in our block, destination across.
					sub = serve.Submission{
						Name: fmt.Sprintf("x-%d-%d", w, i), SizeBytes: 1 << 20,
						Sources:  []serve.SourceSpec{{Machine: base + i%4}},
						Requests: []serve.RequestSpec{{Machine: (base + 4 + i%4) % 8, Deadline: serve.Instant(8 * time.Hour), Priority: i % 3}},
					}
				} else {
					sub = serve.Submission{
						Name: fmt.Sprintf("l-%d-%d", w, i), SizeBytes: 1 << 20,
						Sources:  []serve.SourceSpec{{Machine: base + i%3}},
						Requests: []serve.RequestSpec{{Machine: base + 3, Deadline: serve.Instant(8 * time.Hour), Priority: i % 3}},
					}
				}
				tk, err := svc.Submit(sub)
				if errors.Is(err, serve.ErrOverloaded) {
					time.Sleep(time.Millisecond)
					i--
					continue
				}
				if err != nil {
					t.Errorf("worker %d submit %d: %v", w, i, err)
					return
				}
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, tk := range tickets {
		select {
		case <-tk.Done():
		case <-ctx.Done():
			t.Fatalf("ticket %s undecided after drain", tk.ID())
		}
		if st := tk.View().Status; st != serve.StatusAdmitted && st != serve.StatusRejected {
			t.Errorf("ticket %s status %q after drain", tk.ID(), st)
		}
	}
	sv := svc.Schedule()
	if err := validator.Validate(svc.Scenario(), sv.Transfers); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}
	lc := o.Counter("shard.admitted_total").Value()
	cc := o.Counter("shard.crossshard_total").Value()
	if lc == 0 || cc == 0 {
		t.Fatalf("hammer exercised local=%d cross=%d rounds; want both > 0", lc, cc)
	}
	t.Logf("hammer: %d tickets, local=%d cross=%d rollbacks=%d, %d transfers, %d satisfied",
		len(tickets), lc, cc, o.Counter("shard.offer_rollbacks_total").Value(), len(sv.Transfers), sv.Satisfied)
}
