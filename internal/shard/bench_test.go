package shard

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/serve"
	"datastaging/internal/testnet"
)

// chordNet is a ring with distance-2 and distance-3 chords: every machine
// links to its three nearest ring successors in both directions, which
// makes the per-epoch planning cost (candidate enumeration, Dijkstra
// sweeps) grow with the region size the way a real replicated mesh does.
func chordNet(b testing.TB, n int, bps int64) *scenario.Scenario {
	b.Helper()
	bd := testnet.NewBuilder()
	ms := bd.Machines(n, 1<<40)
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 2, 3} {
			j := (i + d) % n
			bd.Link(ms[i], ms[j], 0, 24*time.Hour, bps)
			bd.Link(ms[j], ms[i], 0, 24*time.Hour, bps)
		}
	}
	return bd.Build("chordring")
}

// BenchmarkShardedAdmission measures why partitioning pays even on one
// core: every submission is local to a contiguous 12-machine block of the
// 96-machine chord ring, so at any shard count each admission epoch
// replans only its own region's world — fewer links for the Dijkstra
// sweeps, smaller snapshots to copy, and a committed history 1/K the
// size. One timed iteration is a fixed soak of soakLen submissions, each
// flushed as its own epoch (MaxBatch 1, virtual clock), matching
// BenchmarkServeSoak's growing-world shape. The ns/op ratio
// shards1/shards8 is the single-core throughput-scaling figure.
func BenchmarkShardedAdmission(b *testing.B) {
	const (
		machines = 96
		blocks   = 8
		soakLen  = 128
	)
	names := make([]string, soakLen)
	for i := range names {
		names[i] = fmt.Sprintf("b-%d", i)
	}
	sub := func(i int) serve.Submission {
		base := (i % blocks) * (machines / blocks)
		return serve.Submission{
			Name:      names[i],
			SizeBytes: 256 << 10,
			Sources:   []serve.SourceSpec{{Machine: base + i%3}},
			Requests: []serve.RequestSpec{{
				Machine:  base + 3,
				Deadline: serve.Instant(20 * time.Hour),
				Priority: i % 3,
			}},
		}
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", k), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				sc := chordNet(b, machines, 8<<20)
				plan := blockPlan(b, sc, machines, k)
				svc, err := New(sc, plan, Options{Engine: serve.Options{
					Config:        cfgShard(obs.New()),
					VirtualClock:  true,
					MaxBatch:      1,
					QueueCap:      soakLen + 1,
					SkipDiagnosis: true,
				}})
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC() // keep prior iterations' dead worlds out of the timed window
				b.StartTimer()
				for i := 0; i < soakLen; i++ {
					if _, err := svc.Submit(sub(i)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
