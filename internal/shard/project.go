package shard

import (
	"fmt"

	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/serve"
	"datastaging/internal/state"
)

// Projection is one shard's view of the world: the induced sub-network
// (the region's machines, renumbered 0..n-1, and every link whose two
// endpoints are in-region) plus the translation tables between global and
// local coordinates. Cut links are excluded — a shard's engine can never
// plan onto them, which is what makes the coordinator's cut-link ledger
// the single writer of cross-shard capacity.
type Projection struct {
	Shard int
	// ToLocalM maps a global machine ID to its local index, -1 when the
	// machine is outside the region.
	ToLocalM []int
	// ToGlobalM and ToGlobalL map local machine/link indices back.
	ToGlobalM []model.MachineID
	ToGlobalL []model.LinkID
	// Scenario is the projected base scenario: the sub-network plus the
	// global horizon, γ, and serial-transfer mode. Items start empty — a
	// sharded service always starts with an empty request book.
	Scenario *scenario.Scenario
}

// Project builds shard s's projection of the base scenario.
func Project(base *scenario.Scenario, p *Plan, s int) (*Projection, error) {
	ms := p.Shards[s]
	pr := &Projection{
		Shard:     s,
		ToLocalM:  make([]int, base.Network.NumMachines()),
		ToGlobalM: append([]model.MachineID(nil), ms...),
	}
	for i := range pr.ToLocalM {
		pr.ToLocalM[i] = -1
	}
	machines := make([]model.Machine, len(ms))
	for i, gm := range ms {
		pr.ToLocalM[gm] = i
		machines[i] = *base.Network.Machine(gm)
		machines[i].ID = model.MachineID(i)
	}
	var links []model.VirtualLink
	for i := range base.Network.Links {
		l := base.Network.Links[i]
		if p.Assign[l.From] != s || p.Assign[l.To] != s {
			continue
		}
		pr.ToGlobalL = append(pr.ToGlobalL, l.ID)
		l.From = model.MachineID(pr.ToLocalM[l.From])
		l.To = model.MachineID(pr.ToLocalM[l.To])
		l.ID = model.LinkID(len(links))
		links = append(links, l)
	}
	net, err := model.NewNetwork(machines, links)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s, err)
	}
	pr.Scenario = &scenario.Scenario{
		Name:            fmt.Sprintf("%s/shard%d", base.Name, s),
		Network:         net,
		GarbageCollect:  base.GarbageCollect,
		Horizon:         base.Horizon,
		SerialTransfers: base.SerialTransfers,
	}
	return pr, nil
}

// Contains reports whether the global machine is in this shard.
func (pr *Projection) Contains(m int) bool {
	return m >= 0 && m < len(pr.ToLocalM) && pr.ToLocalM[m] != -1
}

// ToLocal translates a whole submission into the shard's coordinates. The
// caller guarantees every referenced machine is in-region (the router's
// classification did that); out-of-region machines error defensively.
func (pr *Projection) ToLocal(sub serve.Submission) (serve.Submission, error) {
	out := sub
	out.Sources = make([]serve.SourceSpec, len(sub.Sources))
	for i, src := range sub.Sources {
		if !pr.Contains(src.Machine) {
			return out, fmt.Errorf("shard %d: source machine %d outside region", pr.Shard, src.Machine)
		}
		out.Sources[i] = src
		out.Sources[i].Machine = pr.ToLocalM[src.Machine]
	}
	out.Requests = make([]serve.RequestSpec, len(sub.Requests))
	for i, rq := range sub.Requests {
		if !pr.Contains(rq.Machine) {
			return out, fmt.Errorf("shard %d: request machine %d outside region", pr.Shard, rq.Machine)
		}
		out.Requests[i] = rq
		out.Requests[i].Machine = pr.ToLocalM[rq.Machine]
	}
	return out, nil
}

// TransferToGlobal translates one committed transfer back to global
// machine/link coordinates and retags it with the global item id.
func (pr *Projection) TransferToGlobal(tr state.Transfer, gid model.ItemID) state.Transfer {
	tr.Item = gid
	tr.Link = pr.ToGlobalL[tr.Link]
	tr.From = pr.ToGlobalM[tr.From]
	tr.To = pr.ToGlobalM[tr.To]
	return tr
}

// ViewToGlobal translates a ticket view into global coordinates: verdict
// machines, route transfers, and the item id. Request IDs inside verdicts
// keep their local item id — the ticket id, not the request id, is the
// external handle.
func (pr *Projection) ViewToGlobal(v serve.TicketView, gid int) serve.TicketView {
	v.Item = gid
	for i := range v.Requests {
		v.Requests[i].Machine = int(pr.ToGlobalM[v.Requests[i].Machine])
		if v.Requests[i].BlamedLink >= 0 {
			v.Requests[i].BlamedLink = int(pr.ToGlobalL[v.Requests[i].BlamedLink])
		}
	}
	for i := range v.Route {
		v.Route[i] = pr.TransferToGlobal(v.Route[i], model.ItemID(gid))
	}
	return v
}
