package shard

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/serve"
	"datastaging/internal/testnet"
)

// newHTTPService boots the two-shard 4-machine service from
// TestCrossShardAdmit behind its HTTP handler, with auditing on so the
// trace endpoints are live.
func newHTTPService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<40)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 1e9)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 1e9)
	b.Link(ms[2], ms[3], 0, 24*time.Hour, 1e9)
	b.Link(ms[3], ms[2], 0, 24*time.Hour, 1e9)
	b.Link(ms[0], ms[2], 0, 24*time.Hour, 1e9)
	sc := b.Build("twoshard")

	p := &Plan{Shards: [][]model.MachineID{{0, 1}, {2, 3}}}
	if err := p.Validate(sc.Network); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	rec := lifecycle.New(lifecycle.Options{Obs: o})
	svc, err := New(sc, p, Options{Engine: serve.Options{
		Config: cfgShard(o), VirtualClock: true, MaxBatch: 1, QueueCap: 64,
		Audit: rec,
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url, body string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}

// TestHTTPSharded drives the full HTTP surface of the sharded service:
// local and cross-shard submissions, ticket and trace lookups, the merged
// schedule, advance, the partition info endpoints, and the error paths.
func TestHTTPSharded(t *testing.T) {
	_, srv := newHTTPService(t)
	base := srv.URL

	getJSON(t, base+"/healthz", http.StatusOK, nil)

	// A local submission admits inside shard 0 with no coordination.
	var local serve.TicketView
	postJSON(t, base+"/v1/requests?wait=1", `{
		"sizeBytes": 1048576,
		"sources":  [{"machine": 0}],
		"requests": [{"machine": 1, "deadline": "2h", "priority": 2}]
	}`, http.StatusAccepted, &local)
	if !strings.HasPrefix(local.ID, "s0-") || local.Status != serve.StatusAdmitted {
		t.Fatalf("local ticket = %q status %q, want a shard-0 admit", local.ID, local.Status)
	}

	// A spanning submission takes the offer/commit path.
	var cross serve.TicketView
	postJSON(t, base+"/v1/requests?wait=1", `{
		"sizeBytes": 1048576,
		"sources":  [{"machine": 0}],
		"requests": [{"machine": 3, "deadline": "2h", "priority": 1}]
	}`, http.StatusAccepted, &cross)
	if cross.ID != "x-0" || cross.Status != serve.StatusAdmitted {
		t.Fatalf("cross ticket = %q status %q, want x-0 admitted", cross.ID, cross.Status)
	}

	// Malformed and invalid submissions map to 400.
	postJSON(t, base+"/v1/requests", `{"unknown": 1}`, http.StatusBadRequest, nil)
	postJSON(t, base+"/v1/requests", `{"sizeBytes": 1}`, http.StatusBadRequest, nil)

	// Ticket lookups for both kinds, and a 404 for a stranger.
	var tv serve.TicketView
	getJSON(t, base+"/v1/requests/"+local.ID, http.StatusOK, &tv)
	if tv.Status != serve.StatusAdmitted {
		t.Fatalf("%s lookup status %q", local.ID, tv.Status)
	}
	getJSON(t, base+"/v1/requests/x-0", http.StatusOK, &tv)
	if tv.Status != serve.StatusAdmitted {
		t.Fatalf("x-0 lookup status %q", tv.Status)
	}
	getJSON(t, base+"/v1/requests/nope", http.StatusNotFound, nil)

	// Trace of a cross ticket concatenates its legs' audit trails.
	var tr serve.TraceView
	getJSON(t, base+"/v1/requests/x-0/trace", http.StatusOK, &tr)
	if tr.ID != "x-0" || len(tr.Records) == 0 {
		t.Fatalf("x-0 trace: id %q, %d records", tr.ID, len(tr.Records))
	}
	getJSON(t, base+"/v1/requests/nope/trace", http.StatusNotFound, nil)

	// The audit stream is NDJSON with one line per record.
	resp, err := http.Get(base + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("audit content type %q", ct)
	}
	if !strings.Contains(string(body), `"ticket"`) {
		t.Fatalf("audit stream has no records: %q", body)
	}

	// The merged schedule covers both shards and the cut.
	var sched serve.ScheduleView
	getJSON(t, base+"/v1/schedule", http.StatusOK, &sched)
	if sched.Satisfied != 2 {
		t.Fatalf("schedule satisfied = %d, want 2", sched.Satisfied)
	}

	// Advance moves every shard's virtual clock; bad bodies are rejected.
	postJSON(t, base+"/v1/advance", `{"to": "1h"}`, http.StatusOK, &sched)
	postJSON(t, base+"/v1/advance", `not json`, http.StatusBadRequest, nil)

	// Partition info: the service-wide view and one shard's own.
	var info serve.Info
	getJSON(t, base+"/v1/info", http.StatusOK, &info)
	if len(info.Shards) != 2 || info.CutLinks != 1 {
		t.Fatalf("info = %+v, want 2 shards / 1 cut link", info)
	}
	getJSON(t, base+"/v1/shards/1/info", http.StatusOK, nil)
	getJSON(t, base+"/v1/shards/9/info", http.StatusNotFound, nil)
	getJSON(t, base+"/v1/shards/x/info", http.StatusNotFound, nil)
}
