package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/serve"
)

// maxBodyBytes bounds a request body; submissions are small documents.
const maxBodyBytes = 1 << 20

// Handler returns the sharded service's HTTP API — the exact surface of a
// single-engine stagesvc (POST /v1/requests, GET /v1/requests/{id}[/trace],
// GET /v1/schedule merged across shards, GET /v1/audit, POST /v1/advance,
// GET /v1/info with the partition summary, GET /healthz) plus
// GET /v1/shards/{shard}/info for one region's own description. When the
// service was built with an introspection server, its endpoints are
// mounted on the same mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", s.handleSubmit)
	mux.HandleFunc("GET /v1/requests/{id}", s.handleTicket)
	mux.HandleFunc("GET /v1/requests/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/audit", s.handleAudit)
	mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/shards/{shard}/info", s.handleShardInfo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if s.opts.Intro != nil {
		s.opts.Intro.Register(mux)
	}
	return mux
}

// The helpers mirror serve's HTTP envelope so clients cannot tell a
// sharded service from a single engine.

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub serve.Submission
	if !decodeBody(w, r, &sub) {
		return
	}
	t, err := s.Submit(sub)
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, serve.ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-t.Done():
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/requests/"+t.ID())
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.View())
}

func (s *Service) handleTicket(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Ticket(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such request %q", r.PathValue("id")))
		return
	}
	writeJSON(w, v)
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := s.opts.Engine.Audit
	if !rec.Enabled() {
		httpError(w, http.StatusNotFound, errors.New("auditing is disabled on this service"))
		return
	}
	if _, ok := s.Ticket(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such request %q", id))
		return
	}
	// A cross ticket's trail is the concatenation of its per-shard legs'
	// trails, each already tagged with its shard.
	var records []lifecycle.Record
	if legs, ok := s.legTickets(id); ok {
		for _, leg := range legs {
			records = append(records, rec.ForTicket(leg)...)
		}
	} else {
		records = rec.ForTicket(id)
	}
	writeJSON(w, serve.TraceView{ID: id, Records: records})
}

func (s *Service) handleAudit(w http.ResponseWriter, _ *http.Request) {
	rec := s.opts.Engine.Audit
	if !rec.Enabled() {
		httpError(w, http.StatusNotFound, errors.New("auditing is disabled on this service"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = rec.WriteJSONL(w)
}

func (s *Service) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Schedule())
}

type advanceBody struct {
	To serve.Instant `json:"to"`
}

func (s *Service) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var body advanceBody
	if !decodeBody(w, r, &body) {
		return
	}
	if err := s.Advance(body.To.Instant()); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, s.Schedule())
}

func (s *Service) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Info())
}

func (s *Service) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || k < 0 || k >= len(s.engines) {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such shard %q", r.PathValue("shard")))
		return
	}
	writeJSON(w, s.engines[k].Info())
}
