package core

import (
	"testing"

	"datastaging/internal/gen"
	"datastaging/internal/model"
)

// TestPlanCacheMatchesParanoidRerun proves the conflict-tracking plan cache
// is exact: for a spread of generated scenarios and every heuristic/
// criterion pair, the cached scheduler and the re-run-everything scheduler
// must produce identical schedules, while the cache does strictly less
// Dijkstra work.
func TestPlanCacheMatchesParanoidRerun(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 5, Max: 7}
	p.RequestsPerMachine = gen.IntRange{Min: 5, Max: 10}
	for seed := int64(1); seed <= 3; seed++ {
		sc := gen.MustGenerate(p, seed)
		for _, pair := range Pairs() {
			cfg := Config{
				Heuristic: pair.Heuristic,
				Criterion: pair.Criterion,
				EU:        EUFromLog10(0),
				Weights:   model.Weights1x10x100,
			}
			cached, err := Schedule(sc, cfg)
			if err != nil {
				t.Fatalf("seed %d %v/%v cached: %v", seed, cfg.Heuristic, cfg.Criterion, err)
			}
			naive, err := scheduleParanoid(sc, cfg)
			if err != nil {
				t.Fatalf("seed %d %v/%v paranoid: %v", seed, cfg.Heuristic, cfg.Criterion, err)
			}
			if len(cached.Transfers) != len(naive.Transfers) {
				t.Fatalf("seed %d %v/%v: %d vs %d transfers",
					seed, cfg.Heuristic, cfg.Criterion, len(cached.Transfers), len(naive.Transfers))
			}
			for i := range cached.Transfers {
				if cached.Transfers[i] != naive.Transfers[i] {
					t.Fatalf("seed %d %v/%v: transfer %d differs: %+v vs %+v",
						seed, cfg.Heuristic, cfg.Criterion, i, cached.Transfers[i], naive.Transfers[i])
				}
			}
			if len(cached.Satisfied) != len(naive.Satisfied) {
				t.Fatalf("seed %d %v/%v: satisfied %d vs %d",
					seed, cfg.Heuristic, cfg.Criterion, len(cached.Satisfied), len(naive.Satisfied))
			}
			if cached.Stats.DijkstraRuns > naive.Stats.DijkstraRuns {
				t.Errorf("seed %d %v/%v: cache ran more Dijkstras (%d) than paranoid (%d)",
					seed, cfg.Heuristic, cfg.Criterion, cached.Stats.DijkstraRuns, naive.Stats.DijkstraRuns)
			}
		}
	}
}

func TestPlannerMarksDeadItems(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 5, Max: 5}
	p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
	sc := gen.MustGenerate(p, 17)
	cfg := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(0), Weights: model.Weights1x10x100}
	pl := newPlanner(sc, cfg)
	// Drain the scheduler fully.
	for {
		cands := pl.candidates()
		if len(cands) == 0 {
			break
		}
		bi, _ := selectBest(cands, cfg)
		if err := pl.commitHop(cands[bi].item, cands[bi].hop); err != nil {
			t.Fatal(err)
		}
	}
	// Every item must be dead once no candidates remain: either its
	// requests are closed or unsatisfiable.
	for i, dead := range pl.dead {
		if !dead {
			t.Errorf("item %d not marked dead after drain", i)
		}
	}
}
