package core

import "datastaging/internal/scenario"

// scheduleParanoid re-runs Dijkstra for every item on every iteration, the
// implementation the paper describes. The plan cache must produce
// byte-identical schedules.
func scheduleParanoid(sc *scenario.Scenario, cfg Config) (*Result, error) {
	cfg.Paranoid = true
	return Schedule(sc, cfg)
}
