package core

import (
	"fmt"
	"testing"

	"datastaging/internal/dijkstra"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/report/utilization"
	"datastaging/internal/state"
)

// BenchmarkScheduleWithPlanCache measures the production scheduler: cached
// shortest-path forests invalidated only on resource conflicts.
func BenchmarkScheduleWithPlanCache(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedule measures the production scheduler at its default
// configuration with allocation reporting: the headline trajectory number
// the interval-kernel work regresses against.
func BenchmarkSchedule(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleSerial measures the same run with the §3 future-work
// per-machine port serialization on, where every relax step intersects
// link, send-port, and receive-port availability. This is the workload the
// fused intersect-fit kernel targets.
func BenchmarkScheduleSerial(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	sc.SerialTransfers = true
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleParanoidRerun is the ablation: the paper's described
// implementation that re-runs Dijkstra for every item on every iteration.
// Results are identical (see TestPlanCacheMatchesParanoidRerun); this
// benchmark quantifies what the exact plan cache buys.
func BenchmarkScheduleParanoidRerun(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduleParanoid(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleParallel measures the production scheduler at several
// replan-parallelism levels on a paper-scale scenario. On a multi-core host
// the higher levels should show a wall-clock speedup over P1; on one core
// they quantify the (small) goroutine overhead. Output is identical at
// every level (TestParallelMatchesSerial).
func BenchmarkScheduleParallel(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", par), func(b *testing.B) {
			cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2),
				Weights: model.Weights1x10x100, Parallelism: par}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Schedule(sc, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleObserved measures the fully instrumented scheduler —
// metrics registry plus tracer with a discard sink — against
// BenchmarkScheduleWithPlanCache (the same run with observability
// disabled). The gap is the total price of enabled observability; the
// disabled run must stay within noise of its pre-obs baseline (the
// acceptance bound BENCH_core.json tracks).
func BenchmarkScheduleObserved(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	o := obs.NewTraced(obs.Discard)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2),
		Weights: model.Weights1x10x100, Obs: o}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleWithUtilization measures a full scheduling run plus the
// exact utilization profile computed from its committed schedule — the
// marginal price of the forensics report. Compare against
// BenchmarkScheduleWithPlanCache (the same run without the profile).
func BenchmarkScheduleWithUtilization(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Schedule(sc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if p := utilization.Compute(sc, res.Transfers); p.TotalBusy <= 0 {
			b.Fatal("empty utilization profile")
		}
	}
}

// BenchmarkDijkstraCompute measures one shortest-path forest computation on
// a paper-scale network, without scratch reuse (the cold path).
func BenchmarkDijkstraCompute(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	st := state.New(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dijkstra.Compute(st, model.ItemID(i%len(sc.Items)))
	}
}

// BenchmarkDijkstraComputeScratch measures the steady-state hot path the
// planner actually runs: a held Scratch and a recycled Plan, which together
// eliminate every per-computation allocation.
func BenchmarkDijkstraComputeScratch(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	st := state.New(sc)
	s := dijkstra.NewScratch()
	var pl *dijkstra.Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl = s.Compute(st, model.ItemID(i%len(sc.Items)), pl)
	}
}

// BenchmarkCandidates measures one candidate-generation pass over a fresh
// planner (all forests computed, first-hop extraction, Drq grouping).
func BenchmarkCandidates(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	cfg := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := newPlanner(sc, cfg)
		b.StartTimer()
		if cands := p.candidates(); len(cands) == 0 {
			b.Fatal("no candidates on a fresh paper-scale scenario")
		}
	}
}

// BenchmarkHeuristics measures a full schedule per heuristic at C4 — the
// execution-time comparison the technical report tabulates.
func BenchmarkHeuristics(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	for _, h := range []Heuristic{PartialPath, FullPathOneDest, FullPathAllDests} {
		b.Run(h.String(), func(b *testing.B) {
			cfg := Config{Heuristic: h, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
			for i := 0; i < b.N; i++ {
				if _, err := Schedule(sc, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCriteria measures cost-criterion overhead at a fixed heuristic.
func BenchmarkCriteria(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	for _, c := range []Criterion{C1, C2, C3, C4} {
		b.Run(c.String(), func(b *testing.B) {
			cfg := Config{Heuristic: PartialPath, Criterion: c, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
			for i := 0; i < b.N; i++ {
				if _, err := Schedule(sc, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
