package core

import (
	"testing"
	"time"

	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/testnet"
)

func smallScenario(seed int64) *gen.Params {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 10, Max: 10}
	return &p
}

func TestRandomDijkstraBasics(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	res, err := RandomDijkstra(sc, model.Weights1x10x100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Satisfied) != 1 {
		t.Errorf("random_Dijkstra on trivial line: satisfied %d, want 1", len(res.Satisfied))
	}
	// Deterministic for a fixed seed.
	res2, err := RandomDijkstra(sc, model.Weights1x10x100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transfers) != len(res2.Transfers) {
		t.Error("same seed should reproduce the schedule")
	}
}

func TestSingleDijkstraRandomBasics(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	res, err := SingleDijkstraRandom(sc, model.Weights1x10x100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Satisfied) != 1 {
		t.Errorf("single_Dij_random on trivial line: satisfied %d, want 1", len(res.Satisfied))
	}
	if res.Stats.DijkstraRuns != 1 {
		t.Errorf("single_Dij_random must run Dijkstra once per item: got %d", res.Stats.DijkstraRuns)
	}
}

func TestSingleDijkstraRandomDropsConflicts(t *testing.T) {
	// Two items, one serial link, both paths precomputed on the pristine
	// network want slot [0, 1.024s). The second commit must conflict and
	// the request is dropped — not rerouted.
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	for i := 0; i < 2; i++ {
		b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
			[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	}
	sc := b.Build("clash")
	res, err := SingleDijkstraRandom(sc, model.Weights1x10x100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Satisfied) != 1 {
		t.Errorf("satisfied %d, want exactly 1 (second dropped on conflict)", len(res.Satisfied))
	}
	// The adaptive heuristics reroute in time instead and satisfy both.
	cfg := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(0), Weights: model.Weights1x10x100}
	adaptive, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Satisfied) != 2 {
		t.Errorf("adaptive heuristic: satisfied %d, want 2", len(adaptive.Satisfied))
	}
}

func TestHeuristicBeatsLowerBoundsOnGenerated(t *testing.T) {
	p := smallScenario(1)
	w := model.Weights1x10x100
	var heurTotal, randTotal, singleTotal float64
	for seed := int64(1); seed <= 4; seed++ {
		sc := gen.MustGenerate(*p, seed)
		cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: w}
		heur, err := Schedule(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := RandomDijkstra(sc, w, seed)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := SingleDijkstraRandom(sc, w, seed)
		if err != nil {
			t.Fatal(err)
		}
		heurTotal += heur.WeightedValue(sc, w)
		randTotal += rd.WeightedValue(sc, w)
		singleTotal += sd.WeightedValue(sc, w)
	}
	if heurTotal < randTotal {
		t.Errorf("heuristic (%v) should beat random_Dijkstra (%v) on average", heurTotal, randTotal)
	}
	if heurTotal < singleTotal {
		t.Errorf("heuristic (%v) should beat single_Dij_random (%v) on average", heurTotal, singleTotal)
	}
}

func TestPriorityFirstSchedulesHighBeforeLow(t *testing.T) {
	sc, low, high := contended()
	res, err := PriorityFirst(sc, model.Weights1x10x100)
	if err != nil {
		t.Fatal(err)
	}
	if !resSatisfied(res, high, 0) {
		t.Error("priority_first must satisfy the high-priority request")
	}
	if resSatisfied(res, low, 0) {
		t.Error("low-priority request cannot fit after high")
	}
}

func TestPriorityFirstIgnoresCrossClassTradeoffs(t *testing.T) {
	// One high-priority request with lots of slack and two medium requests
	// with tight deadlines, all on one serial link fitting two transfers
	// before the medium deadlines. priority_first burns the first slot on
	// the high request; a weighted heuristic can satisfy all three by
	// ordering mediums first.
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<30)
	day := 24 * time.Hour
	// All items sit on machine 0; single serial outgoing link per dest.
	b.Link(ms[0], ms[1], 0, day, 8000) // shared serial bottleneck to 1
	b.Link(ms[1], ms[2], 0, day, 80000)
	b.Link(ms[1], ms[3], 0, day, 80000)
	b.Link(ms[2], ms[0], 0, day, 80000)
	b.Link(ms[3], ms[0], 0, day, 80000)
	hop := 1024 * time.Millisecond
	med1 := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], hop, model.Medium)}) // only fits in slot 1
	med2 := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*hop, model.Medium)}) // fits in slot 2
	hi := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], day, model.High)}) // fits anywhere
	sc := b.Build("crossclass")

	pf, err := PriorityFirst(sc, model.Weights1x10x100)
	if err != nil {
		t.Fatal(err)
	}
	if !resSatisfied(pf, hi, 0) {
		t.Error("priority_first must satisfy the high request")
	}
	if resSatisfied(pf, med1, 0) {
		t.Error("priority_first should sacrifice the tightest medium request")
	}

	cfg := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(0), Weights: model.Weights1x10x100}
	heur, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := model.Weights1x10x100
	if heur.WeightedValue(sc, w) <= pf.WeightedValue(sc, w) {
		t.Errorf("heuristic (%v) should beat priority_first (%v) here",
			heur.WeightedValue(sc, w), pf.WeightedValue(sc, w))
	}
	_ = med2
}
