package core

import (
	"testing"

	"datastaging/internal/gen"
	"datastaging/internal/model"
)

// TestParallelMatchesSerial is the determinism suite for parallel forest
// replanning: for every heuristic/criterion pair over several seeds, the
// serial planner (Parallelism: 1), the parallel planner (Parallelism: 8,
// forcing worker goroutines even on one core), and the paper's paranoid
// re-run must produce identical schedules. The deterministic work counters
// must also match between serial and parallel, since the parallel batch
// computes exactly the forests the lazy path would and counts them at use.
func TestParallelMatchesSerial(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 5, Max: 7}
	p.RequestsPerMachine = gen.IntRange{Min: 5, Max: 10}
	w := model.Weights1x10x100
	for seed := int64(1); seed <= 3; seed++ {
		sc := gen.MustGenerate(p, seed)
		for _, pair := range Pairs() {
			base := Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion,
				EU: EUFromLog10(1), Weights: w}

			serialCfg := base
			serialCfg.Parallelism = 1
			serial, err := Schedule(sc, serialCfg)
			if err != nil {
				t.Fatalf("seed %d %v serial: %v", seed, pair, err)
			}

			parCfg := base
			parCfg.Parallelism = 8
			par, err := Schedule(sc, parCfg)
			if err != nil {
				t.Fatalf("seed %d %v parallel: %v", seed, pair, err)
			}

			naive, err := scheduleParanoid(sc, base)
			if err != nil {
				t.Fatalf("seed %d %v paranoid: %v", seed, pair, err)
			}

			assertSameSchedule(t, "parallel vs serial", seed, pair, par, serial)
			assertSameSchedule(t, "serial vs paranoid", seed, pair, serial, naive)

			if got, want := deterministicStats(par.Stats), deterministicStats(serial.Stats); got != want {
				t.Errorf("seed %d %v: parallel stats %+v differ from serial %+v",
					seed, pair, got, want)
			}
		}
	}
}

// TestParallelMatchesSerialWithPortSerialization repeats the equivalence
// check with the §3 port-serialization extension on, which exercises the
// interval-set intersection path of EarliestTransferSlot under concurrent
// readers.
func TestParallelMatchesSerialWithPortSerialization(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
	w := model.Weights1x10x100
	for seed := int64(1); seed <= 2; seed++ {
		sc := gen.MustGenerate(p, seed)
		sc.SerialTransfers = true
		for _, pair := range Pairs() {
			base := Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion,
				EU: EUFromLog10(2), Weights: w}
			serialCfg, parCfg := base, base
			serialCfg.Parallelism = 1
			parCfg.Parallelism = 8
			serial, err := Schedule(sc, serialCfg)
			if err != nil {
				t.Fatalf("seed %d %v serial: %v", seed, pair, err)
			}
			par, err := Schedule(sc, parCfg)
			if err != nil {
				t.Fatalf("seed %d %v parallel: %v", seed, pair, err)
			}
			assertSameSchedule(t, "parallel vs serial (ports)", seed, pair, par, serial)
		}
	}
}

// deterministicStats projects Stats onto the counters that must be
// identical across Parallelism settings (ReplanWall, ParallelBatches, and
// BatchedRuns are timing- or batching-dependent by design).
func deterministicStats(s Stats) [5]int {
	return [5]int{s.DijkstraRuns, s.CacheHits, s.Invalidations, s.Iterations, s.Commits}
}

func assertSameSchedule(t *testing.T, what string, seed int64, pair Pair, got, want *Result) {
	t.Helper()
	if len(got.Transfers) != len(want.Transfers) {
		t.Fatalf("seed %d %v %s: %d vs %d transfers",
			seed, pair, what, len(got.Transfers), len(want.Transfers))
	}
	for i := range got.Transfers {
		if got.Transfers[i] != want.Transfers[i] {
			t.Fatalf("seed %d %v %s: transfer %d differs: %+v vs %+v",
				seed, pair, what, i, got.Transfers[i], want.Transfers[i])
		}
	}
	if len(got.Satisfied) != len(want.Satisfied) {
		t.Fatalf("seed %d %v %s: satisfied %d vs %d",
			seed, pair, what, len(got.Satisfied), len(want.Satisfied))
	}
	for id, at := range want.Satisfied {
		if gat, ok := got.Satisfied[id]; !ok || gat != at {
			t.Fatalf("seed %d %v %s: request %v satisfied at %v, want %v",
				seed, pair, what, id, gat, at)
		}
	}
}

// TestParallelBatchStats sanity-checks the new counters: with forced
// parallelism on a paper-scale scenario, at least the first iteration
// (recomputing every live forest) must run as a parallel batch, and the
// batched runs must be a subset of all Dijkstra runs.
func TestParallelBatchStats(t *testing.T) {
	sc := gen.MustGenerate(gen.Default(), 7)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2),
		Weights: model.Weights1x10x100, Parallelism: 4}
	res, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ParallelBatches == 0 {
		t.Error("no parallel batches ran with Parallelism: 4")
	}
	if res.Stats.BatchedRuns == 0 || res.Stats.BatchedRuns > res.Stats.DijkstraRuns {
		t.Errorf("batched runs %d out of range (total Dijkstra runs %d)",
			res.Stats.BatchedRuns, res.Stats.DijkstraRuns)
	}
	if res.Stats.ReplanWall <= 0 {
		t.Error("replan wall time not recorded")
	}

	if res.Stats.RelaxBatches == 0 {
		t.Error("no merged relaxation walks ran with batching enabled")
	}

	serialCfg := cfg
	serialCfg.Parallelism = 1
	ser, err := Schedule(sc, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ser.Stats.ParallelBatches != 0 {
		t.Errorf("serial run recorded parallel batches: %+v", ser.Stats)
	}
	if ser.Stats.RelaxBatches == 0 || ser.Stats.BatchedRuns == 0 {
		t.Errorf("serial run recorded no merged relaxation walks: %+v", ser.Stats)
	}

	offCfg := serialCfg
	offCfg.DisableBatch = true
	off, err := Schedule(sc, offCfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.RelaxBatches != 0 || off.Stats.BatchedRuns != 0 || off.Stats.ParallelBatches != 0 {
		t.Errorf("DisableBatch serial run recorded batches: %+v", off.Stats)
	}
}

// TestBatchDisabledMatchesDefault is the planner-level differential oracle
// for the batched relaxation kernel: for every heuristic/criterion pair,
// batching on (the default) and off must produce identical schedules and
// identical deterministic work counters, serially and at forced
// parallelism.
func TestBatchDisabledMatchesDefault(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 5, Max: 7}
	p.RequestsPerMachine = gen.IntRange{Min: 5, Max: 10}
	w := model.Weights1x10x100
	for seed := int64(1); seed <= 2; seed++ {
		for _, serialTransfers := range []bool{false, true} {
			sc := gen.MustGenerate(p, seed)
			sc.SerialTransfers = serialTransfers
			for _, pair := range Pairs() {
				base := Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion,
					EU: EUFromLog10(1), Weights: w}
				for _, par := range []int{1, 8} {
					on, off := base, base
					on.Parallelism, off.Parallelism = par, par
					off.DisableBatch = true
					got, err := Schedule(sc, on)
					if err != nil {
						t.Fatalf("seed %d %v par=%d batched: %v", seed, pair, par, err)
					}
					want, err := Schedule(sc, off)
					if err != nil {
						t.Fatalf("seed %d %v par=%d unbatched: %v", seed, pair, par, err)
					}
					assertSameSchedule(t, "batched vs unbatched", seed, pair, got, want)
					if g, w := deterministicStats(got.Stats), deterministicStats(want.Stats); g != w {
						t.Errorf("seed %d %v par=%d: batched stats %+v differ from unbatched %+v",
							seed, pair, par, g, w)
					}
				}
			}
		}
	}
}

// TestConfigRejectsNegativeParallelism pins the validation rule.
func TestConfigRejectsNegativeParallelism(t *testing.T) {
	cfg := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(0),
		Weights: model.Weights1x10x100, Parallelism: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative Parallelism validated")
	}
}
