package core

import (
	"fmt"

	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Stats counts the work a scheduling run performed.
type Stats struct {
	// DijkstraRuns is how many shortest-path computations ran.
	DijkstraRuns int
	// CacheHits is how many times a cached forest was reused where the
	// paper's described implementation would have re-run Dijkstra.
	CacheHits int
	// Invalidations is how many cached forests a committed transfer
	// conflicted with.
	Invalidations int
	// Iterations is the number of select-and-commit rounds.
	Iterations int
	// Commits is the number of committed transfers (communication steps).
	Commits int
}

// planner owns the resource state and the per-item plan cache for one
// scheduling run.
//
// Cache invariant: a cached forest is exactly the forest Dijkstra would
// produce against the current state. Committing a transfer can only shrink
// resources, so a cached forest stays both feasible and optimal unless the
// transfer overlaps one of its link slots or undercuts the capacity backing
// one of its arrivals — in which case the forest is dropped and recomputed
// on next use. The committed item's own forest is always dropped because it
// gained a holder (its labels can improve).
type planner struct {
	st    *state.State
	cfg   Config
	plans []*dijkstra.Plan
	// dead[i] marks an item with no satisfiable open request; resources
	// only shrink, so dead items never revive and are skipped forever.
	dead  []bool
	stats Stats
	// paranoid drops every cached forest on every commit, reproducing the
	// paper's re-run-Dijkstra-each-iteration implementation. Tests compare
	// it against the conflict-tracking cache to prove they are equivalent.
	paranoid bool
}

func newPlanner(sc *scenario.Scenario, cfg Config) *planner {
	return plannerOn(state.New(sc), cfg)
}

// plannerOn builds a planner over an existing (possibly pre-committed)
// state.
func plannerOn(st *state.State, cfg Config) *planner {
	items := len(st.Scenario().Items)
	return &planner{
		st:    st,
		cfg:   cfg,
		plans: make([]*dijkstra.Plan, items),
		dead:  make([]bool, items),
	}
}

// plan returns the item's current forest, recomputing it if invalidated.
func (p *planner) plan(item model.ItemID) *dijkstra.Plan {
	if p.plans[item] == nil {
		p.plans[item] = dijkstra.Compute(p.st, item)
		p.stats.DijkstraRuns++
	} else {
		p.stats.CacheHits++
	}
	return p.plans[item]
}

// openRequests returns the indices of the item's requests that are neither
// satisfied nor closed by a (possibly late) copy at the destination.
func (p *planner) openRequests(item model.ItemID) []int {
	it := p.st.Scenario().Item(item)
	var open []int
	for k, rq := range it.Requests {
		if p.st.IsSatisfied(model.RequestID{Item: item, Index: k}) {
			continue
		}
		if p.st.Holds(item, rq.Machine) {
			continue // a copy arrived after the deadline; nothing more to do
		}
		open = append(open, k)
	}
	return open
}

// candidates builds every valid next communication step: for each live
// item, the first hops of its forest toward its satisfiable open requests,
// grouped by next machine (the paper's Drq[i, r]). Items that end up with
// no satisfiable destination are marked dead.
func (p *planner) candidates() []candidate {
	sc := p.st.Scenario()
	var out []candidate
	for i := range sc.Items {
		item := model.ItemID(i)
		if p.dead[i] || !p.st.IsReleased(item) {
			continue // never mark withheld items dead: they may be released later
		}
		open := p.openRequests(item)
		if len(open) == 0 {
			p.dead[i] = true
			continue
		}
		pl := p.plan(item)
		it := sc.Item(item)
		firstLen := len(out)
		// byR maps a next machine to its candidate's index in out.
		var byR map[model.MachineID]int
		for _, k := range open {
			rq := &it.Requests[k]
			at := pl.Arrival[rq.Machine]
			if at == simtime.Never || at.After(rq.Deadline) {
				continue // Sat = 0: no resources for this request (§4.8)
			}
			hop, ok := pl.FirstHopTo(rq.Machine)
			if !ok {
				continue
			}
			d := destInfo{
				req:      model.RequestID{Item: item, Index: k},
				machine:  rq.Machine,
				weight:   p.cfg.Weights.Of(rq.Priority),
				slackSec: rq.Deadline.Sub(at).Seconds(),
			}
			if byR == nil {
				byR = make(map[model.MachineID]int, 4)
			}
			idx, seen := byR[hop.To]
			if !seen {
				idx = len(out)
				byR[hop.To] = idx
				out = append(out, candidate{item: item, hop: hop})
			}
			out[idx].dests = append(out[idx].dests, d)
		}
		if len(out) == firstLen {
			// No satisfiable destination now means never: the item's own
			// arrivals improve only when it is scheduled, which requires a
			// candidate, and other commits only consume resources.
			p.dead[i] = true
		}
	}
	return out
}

// commit books one transfer and maintains the plan cache invariant.
func (p *planner) commit(item model.ItemID, link model.LinkID, start simtime.Instant) error {
	tr, err := p.st.Commit(item, link, start)
	if err != nil {
		return err
	}
	p.stats.Commits++
	p.plans[item] = nil // gained a holder; labels can improve
	if p.paranoid {
		for i := range p.plans {
			p.plans[i] = nil
		}
		return nil
	}
	for i, pl := range p.plans {
		if pl == nil || p.dead[i] || model.ItemID(i) == item {
			continue
		}
		if p.planConflicts(pl, tr) {
			p.plans[i] = nil
			p.stats.Invalidations++
		}
	}
	return nil
}

// planConflicts reports whether a committed transfer can have changed the
// cached forest: either it occupies link time one of the forest's hops was
// counting on, or the capacity it consumed at the receiving machine no
// longer backs the forest's planned copy there.
func (p *planner) planConflicts(pl *dijkstra.Plan, tr state.Transfer) bool {
	trSpan := simtime.Span(tr.Start, tr.Duration)
	serial := p.st.SerialTransfers()
	for v := range pl.Via {
		if pl.Via[v] == dijkstra.NoLink {
			continue
		}
		span := simtime.Span(pl.Start[v], pl.Dur[v])
		if pl.Via[v] == tr.Link && span.Overlaps(trSpan) {
			return true
		}
		if serial && span.Overlaps(trSpan) {
			// The committed transfer occupies tr.From's send port and
			// tr.To's receive port; a planned hop sharing either machine
			// in an overlapping span may no longer fit. (Slightly
			// conservative: send vs receive port distinctions are folded
			// into a machine match; over-invalidation only costs a
			// recompute.)
			from, to := pl.Pred[v], model.MachineID(v)
			if from == tr.From || from == tr.To || to == tr.From || to == tr.To {
				return true
			}
		}
	}
	to := tr.To
	if pl.Arrival[to] != simtime.Never && pl.Pred[to] != dijkstra.NoMachine {
		size := p.st.Scenario().Item(pl.Item).SizeBytes
		hold := p.st.HoldInterval(pl.Item, to, pl.Arrival[to])
		if !p.st.Capacity(to).CanReserve(size, hold) {
			return true
		}
	}
	return false
}

// commitHop commits a single hop (the partial path heuristic's step).
func (p *planner) commitHop(item model.ItemID, hop dijkstra.Hop) error {
	return p.commit(item, hop.Link, hop.Start)
}

// commitPath commits every hop from the item's forest root to one
// destination (the full path/one destination heuristic's step).
func (p *planner) commitPath(item model.ItemID, dest model.MachineID) error {
	hops, ok := p.plan(item).PathTo(dest)
	if !ok {
		return fmt.Errorf("core: no path for item %d to machine %d", item, dest)
	}
	for _, h := range hops {
		if err := p.commit(item, h.Link, h.Start); err != nil {
			return err
		}
	}
	return nil
}

// commitTree commits the union of the forest paths to every destination of
// the candidate (the full path/all destinations heuristic's step). The
// union is a tree — each machine has one incoming planned hop — so hops are
// deduplicated by receiving machine and committed in start order.
func (p *planner) commitTree(item model.ItemID, c *candidate) error {
	pl := p.plan(item)
	seen := make(map[model.MachineID]bool, len(c.dests)*2)
	var hops []dijkstra.Hop
	for _, d := range c.dests {
		path, ok := pl.PathTo(d.machine)
		if !ok {
			return fmt.Errorf("core: no path for item %d to machine %d", item, d.machine)
		}
		for _, h := range path {
			if !seen[h.To] {
				seen[h.To] = true
				hops = append(hops, h)
			}
		}
	}
	// Parents always start (strictly) before their children finish, and a
	// hop starts no earlier than its parent's arrival, so start order is a
	// valid commit order.
	sortHops(hops)
	for _, h := range hops {
		if err := p.commit(item, h.Link, h.Start); err != nil {
			if p.st.SerialTransfers() {
				// The forest's branches are individually feasible but may
				// jointly contend for one machine's send or receive port.
				// The shared first hop always commits (the state is
				// unchanged since planning), so progress is guaranteed;
				// a conflicting branch is simply deferred — its
				// destination stays open and is re-planned from the
				// freshly staged copies on a later iteration.
				continue
			}
			return err
		}
	}
	return nil
}

func sortHops(hops []dijkstra.Hop) {
	// Insertion sort: trees are small (bounded by machine count).
	for i := 1; i < len(hops); i++ {
		for j := i; j > 0 && less(hops[j], hops[j-1]); j-- {
			hops[j], hops[j-1] = hops[j-1], hops[j]
		}
	}
}

func less(a, b dijkstra.Hop) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.To < b.To
}
