package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datastaging/internal/arena"
	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Stats counts the work a scheduling run performed.
type Stats struct {
	// DijkstraRuns is how many shortest-path computations ran.
	DijkstraRuns int
	// CacheHits is how many times a cached forest was reused where the
	// paper's described implementation would have re-run Dijkstra.
	CacheHits int
	// Invalidations is how many cached forests a committed transfer
	// conflicted with.
	Invalidations int
	// Iterations is the number of select-and-commit rounds.
	Iterations int
	// Commits is the number of committed transfers (communication steps).
	Commits int
	// ReplanWall is the wall-clock time spent computing shortest-path
	// forests, across both parallel batches and lazy recomputes, as
	// accumulated by the planner's obs.PhaseTimer. Unlike the counters
	// above it is timing-dependent, not deterministic.
	ReplanWall time.Duration
	// ParallelBatches is how many iteration-top replan batches ran on
	// more than one worker goroutine. Zero when Parallelism is 1.
	ParallelBatches int
	// BatchedRuns is how many forests were computed inside merged
	// relaxation walks (dijkstra.ComputeBatch) rather than one-by-one
	// serial Compute calls (a subset of DijkstraRuns). Zero when
	// Config.DisableBatch is set.
	BatchedRuns int
	// RelaxBatches is how many merged relaxation walks ran: a serial
	// prefetch contributes one per iteration-top batch, a parallel
	// prefetch one per worker chunk. Zero when Config.DisableBatch is set.
	RelaxBatches int
}

// planner owns the resource state and the per-item plan cache for one
// scheduling run.
//
// Cache invariant: a cached forest is exactly the forest Dijkstra would
// produce against the current state. Committing a transfer can only shrink
// resources, so a cached forest stays both feasible and optimal unless the
// transfer overlaps one of its link slots or undercuts the capacity backing
// one of its arrivals — in which case the forest is dropped and recomputed
// on next use. The committed item's own forest is always dropped because it
// gained a holder (its labels can improve).
type planner struct {
	st  *state.State
	cfg Config
	// workers is the resolved replan parallelism (cfg.Parallelism, or
	// GOMAXPROCS when that is zero).
	workers int
	plans   []*dijkstra.Plan
	// fresh[i] marks a plan computed by the batched prefetch but not yet
	// consumed by plan(); its Dijkstra run is counted at first use so
	// Stats are identical to the serial path.
	fresh []bool
	// dead[i] marks an item with no satisfiable open request; resources
	// only shrink, so dead items never revive and are skipped forever.
	dead []bool
	// live lists the not-yet-dead items in ascending ID order; candidate
	// passes iterate it (compacting dead entries away) instead of scanning
	// every scenario item, so a long-lived incremental planner pays per
	// epoch for its open backlog, not for the world's whole history.
	// Withheld items stay live until released. Invariant: live is a
	// superset of the items with dead[i] == false, ascending; items that
	// die during a candidates pass linger until the next pass compacts
	// them (their plans are already recycled, so the lingering entries
	// are nil-plan no-ops everywhere live is walked).
	live  []model.ItemID
	stats Stats
	// freePlans recycles invalidated Plan structs: their slices back the
	// next recompute instead of being reallocated.
	freePlans []*dijkstra.Plan
	// scratch backs serial (lazy) computes; workerScratch[w] backs worker
	// w of a parallel batch. Each is owned by one goroutine at a time.
	scratch       *dijkstra.Scratch
	workerScratch []*dijkstra.Scratch
	// batch enables merged-relaxation prefetch (ComputeBatch); see
	// Config.DisableBatch. batchScratch backs serial batches and
	// workerBatch[w] backs worker w's chunk of a parallel batch.
	batch        bool
	batchScratch *dijkstra.BatchScratch
	workerBatch  []*dijkstra.BatchScratch
	// Plan material is carved from grow-only arenas: a new Plan and its
	// five per-machine label slices come from recycled slabs, pre-sized so
	// the compute kernels never reallocate them. The arenas are never
	// Reset — plans live as long as the planner — they only amortize
	// growth into O(log n) slab allocations; steady state is covered by
	// freePlans recycling.
	planArena arena.Arena[dijkstra.Plan]
	instArena arena.Arena[simtime.Instant]
	machArena arena.Arena[model.MachineID]
	linkArena arena.Arena[model.LinkID]
	durArena  arena.Arena[time.Duration]
	// queue, reuse, byR, and cands are per-iteration scratch reused
	// across rounds to keep the select-and-commit loop allocation-free;
	// hops, pathBuf, and seen back the commit paths the same way.
	queue   []model.ItemID
	reuse   []*dijkstra.Plan
	byR     map[model.MachineID]int
	cands   []candidate
	hops    []dijkstra.Hop
	pathBuf []dijkstra.Hop
	seen    []bool
	// candGroups[i] caches item i's candidate groups exactly as the last
	// build produced them; candValid[i] says the cache is current. An
	// item's candidates are a pure function of its forest, its own
	// satisfaction/holder state, and the planning floor — and every event
	// that moves any of those (a commit touching the item, a conflict or
	// floor invalidation, paranoid mode) already goes through invalidate,
	// which clears the bit. So a valid cache entry is bit-identical to
	// what a rebuild would produce, and the per-iteration candidates pass
	// costs O(invalidated) instead of O(live backlog).
	candGroups [][]candidate
	candValid  []bool
	// openCache[i] caches item i's open-request indices. Unlike the
	// forest and candidate caches, the open set moves only when the
	// item's own satisfaction or holders change — that is, on the item's
	// own commit (ReasonOwner) — so conflict and floor invalidations
	// leave it intact and a rebuilt candidates pass skips the
	// per-request satisfaction probes entirely.
	openCache [][]int
	openValid []bool
	// paranoid drops every cached forest on every commit, reproducing the
	// paper's re-run-Dijkstra-each-iteration implementation. Tests compare
	// it against the conflict-tracking cache to prove they are equivalent.
	paranoid bool

	// Observability handles, resolved once from cfg.Obs. With cfg.Obs nil
	// every handle below is nil and each call is a predictable
	// branch-and-return; only Event construction needs an explicit
	// tr.Enabled() guard. replanTimer is always usable — it is how
	// Stats.ReplanWall is accumulated even with observability off.
	tr          *obs.Tracer
	replanTimer *obs.PhaseTimer
	obsOn       bool
	// flushedScratch snapshots the last scratch stats flushed into the
	// registry so repeated flushes (one per incremental epoch) only add
	// deltas to the counters.
	flushedScratch dijkstra.ScratchStats
	mIterations, mCommits, mDijkstra, mCacheHits, mInvalidations,
	mParallelBatches, mBatchedRuns, mRelaxBatches, mCostEvals, mSatisfied *obs.Counter
	hCandidates, hSlack *obs.Histogram
}

func newPlanner(sc *scenario.Scenario, cfg Config) *planner {
	return plannerOn(state.New(sc), cfg)
}

// plannerOn builds a planner over an existing (possibly pre-committed)
// state.
func plannerOn(st *state.State, cfg Config) *planner {
	items := len(st.Scenario().Items)
	p := &planner{
		st:       st,
		cfg:      cfg,
		workers:  cfg.workers(),
		plans:      make([]*dijkstra.Plan, items),
		fresh:      make([]bool, items),
		dead:       make([]bool, items),
		live:       make([]model.ItemID, items),
		candGroups: make([][]candidate, items),
		candValid:  make([]bool, items),
		openCache:  make([][]int, items),
		openValid:  make([]bool, items),
		scratch:  dijkstra.NewScratch(),
		batch:    !cfg.DisableBatch,
		paranoid: cfg.Paranoid,
	}
	for i := range p.live {
		p.live[i] = model.ItemID(i)
	}
	o := cfg.Obs
	p.tr = o.Trace()
	p.replanTimer = o.Phase("core.replan")
	if o != nil {
		p.obsOn = true
		st.SetObs(o)
		p.mIterations = o.Counter("core.iterations_total")
		p.mCommits = o.Counter("core.commits_total")
		p.mDijkstra = o.Counter("core.dijkstra_runs_total")
		p.mCacheHits = o.Counter("core.cache_hits_total")
		p.mInvalidations = o.Counter("core.invalidations_total")
		p.mParallelBatches = o.Counter("core.parallel_batches_total")
		p.mBatchedRuns = o.Counter("core.batched_runs_total")
		p.mRelaxBatches = o.Counter("core.relax_batches_total")
		p.mCostEvals = o.Counter("core.cost_evaluations_total")
		p.mSatisfied = o.Counter("core.requests_satisfied_total")
		p.hCandidates = o.Histogram("core.iteration_candidates", obs.CountBuckets)
		p.hSlack = o.Histogram("core.satisfaction_slack_seconds", obs.SlackBuckets)
	}
	return p
}

// flushScratchMetrics aggregates the Dijkstra scratch counters (reuse
// hits, buffer grows, heap high-water) into the registry at end of run.
// Scratch stats are cumulative over the scratch's lifetime, so a persistent
// planner flushing once per epoch adds only the delta since the last flush
// (the high-water gauge takes the cumulative max either way).
func (p *planner) flushScratchMetrics() {
	if !p.obsOn {
		return
	}
	ds := p.scratch.Stats()
	for _, s := range p.workerScratch {
		ds.Add(s.Stats())
	}
	if p.batchScratch != nil {
		ds.Add(p.batchScratch.Stats())
	}
	for _, s := range p.workerBatch {
		ds.Add(s.Stats())
	}
	prev := p.flushedScratch
	p.flushedScratch = ds
	o := p.cfg.Obs
	o.Counter("dijkstra.computes_total").Add(int64(ds.Computes - prev.Computes))
	o.Counter("dijkstra.scratch_reuse_hits_total").Add(int64(ds.ReuseHits() - prev.ReuseHits()))
	o.Counter("dijkstra.scratch_grows_total").Add(int64(ds.Grows - prev.Grows))
	o.Gauge("dijkstra.heap_high_water").SetMax(float64(ds.HeapHighWater))
}

// takeFree pops a recycled Plan for reuse, or nil when none is available.
func (p *planner) takeFree() *dijkstra.Plan {
	n := len(p.freePlans)
	if n == 0 {
		return nil
	}
	pl := p.freePlans[n-1]
	p.freePlans[n-1] = nil
	p.freePlans = p.freePlans[:n-1]
	return pl
}

// takePlan returns a Plan ready for the compute kernels: a recycled one
// when available, otherwise a fresh one carved from the planner's arenas
// with every label slice pre-sized to the machine count, so the kernels'
// growSlice calls always hit capacity and a growth burst (a new item wave)
// costs a handful of slab allocations instead of six per plan.
func (p *planner) takePlan() *dijkstra.Plan {
	if pl := p.takeFree(); pl != nil {
		return pl
	}
	m := p.st.Scenario().Network.NumMachines()
	pl := &p.planArena.Alloc(1)[0]
	pl.Arrival = p.instArena.Alloc(m)
	pl.Pred = p.machArena.Alloc(m)
	pl.Via = p.linkArena.Alloc(m)
	pl.Start = p.instArena.Alloc(m)
	pl.Dur = p.durArena.Alloc(m)
	return pl
}

// invalidate drops an item's cached forest and recycles the struct. The
// reason is purely observational (traced only when a forest was actually
// dropped).
func (p *planner) invalidate(item model.ItemID, why obs.Reason) {
	p.candValid[item] = false
	if why == obs.ReasonOwner || why == obs.ReasonParanoid {
		p.openValid[item] = false
	}
	if pl := p.plans[item]; pl != nil {
		p.freePlans = append(p.freePlans, pl)
		p.plans[item] = nil
		p.fresh[item] = false
		if p.tr.Enabled() {
			p.tr.Emit(obs.Event{Kind: obs.EvForestInvalidated, Item: int(item), Reason: why})
		}
	}
}

// markDead retires an item forever (resources only shrink, so dead items
// never revive). Its cached forest, if any, is recycled on the spot: a dead
// item's forest is never consulted again, and a long-lived incremental
// planner must not pin one Plan per retired item for the life of the world.
// The next candidates pass drops the item from the live list.
func (p *planner) markDead(item model.ItemID, why obs.Reason) {
	p.dead[item] = true
	p.invalidate(item, why)
	if p.tr.Enabled() {
		p.tr.Emit(obs.Event{Kind: obs.EvItemDead, Item: int(item), Reason: why})
	}
}

// grow extends the per-item planner bookkeeping to cover items appended to
// the scenario since the planner was built (incremental epochs over an
// append-only growing scenario). New items start live with no cached
// forest.
func (p *planner) grow() {
	items := len(p.st.Scenario().Items)
	for i := len(p.plans); i < items; i++ {
		p.plans = append(p.plans, nil)
		p.fresh = append(p.fresh, false)
		p.dead = append(p.dead, false)
		p.live = append(p.live, model.ItemID(i))
		p.candGroups = append(p.candGroups, nil)
		p.candValid = append(p.candValid, false)
		p.openCache = append(p.openCache, nil)
		p.openValid = append(p.openValid, false)
	}
}

// advanceFloor moves the planning floor to at and drops every cached
// forest the advance could reshape: forests that planned a hop starting
// before the new floor, and cap-blocked forests (a failed capacity check
// can flip to success at a later floor because the hold interval shrinks —
// see dijkstra.Plan.CapBlocked). Everything else is exactly what a fresh
// computation would produce (see dijkstra.Plan.EarliestHopStart), so it
// carries across the epoch boundary and its item skips a Dijkstra rerun.
func (p *planner) advanceFloor(at simtime.Instant) {
	if at == p.st.Floor() {
		return
	}
	p.st.SetFloor(at)
	for _, item := range p.live {
		if pl := p.plans[item]; pl != nil && (pl.CapBlocked || pl.EarliestHopStart() < at) {
			p.invalidate(item, obs.ReasonFloor)
		}
	}
}

// plan returns the item's current forest, recomputing it if invalidated.
func (p *planner) plan(item model.ItemID) *dijkstra.Plan {
	if pl := p.plans[item]; pl != nil {
		if p.fresh[item] {
			// Computed by this iteration's parallel batch: count it as the
			// Dijkstra run the serial path would have performed here.
			p.fresh[item] = false
			p.stats.DijkstraRuns++
			p.mDijkstra.Inc()
			if p.tr.Enabled() {
				p.tr.Emit(obs.Event{Kind: obs.EvForestComputed, Item: int(item)})
			}
		} else {
			p.stats.CacheHits++
			p.mCacheHits.Inc()
			if p.tr.Enabled() {
				p.tr.Emit(obs.Event{Kind: obs.EvForestCacheHit, Item: int(item)})
			}
		}
		return pl
	}
	span := p.replanTimer.Start()
	pl := p.scratch.Compute(p.st, item, p.takePlan())
	span.Stop()
	p.plans[item] = pl
	p.stats.DijkstraRuns++
	p.mDijkstra.Inc()
	if p.tr.Enabled() {
		p.tr.Emit(obs.Event{Kind: obs.EvForestComputed, Item: int(item)})
	}
	return pl
}

// prefetch recomputes every invalidated forest the coming candidates pass
// will need. With batching on (the default) the queue is relaxed in merged
// dijkstra.ComputeBatch walks — one walk serially, or one contiguous chunk
// per worker when Parallelism > 1 — so each link timeline is traversed once
// per walk instead of once per (forest, link). With batching off the old
// paths run: lazy one-by-one computes serially, or the work-stealing worker
// pool in parallel. All four paths produce byte-identical forests (Compute
// and ComputeBatch only read the shared state; results are written back by
// item index; no commit happens between prefetch and use), and Stats are
// path-independent because batch-computed forests are charged to
// DijkstraRuns at first use via the fresh flags, exactly where the lazy
// serial path would have computed them.
// mergedMinHistory gates the merged relaxation walk on committed-history
// length. The walk amortizes link-timeline scans across the whole batch,
// which pays once timelines are long enough for scanning to dominate; on a
// short history its deeper heap (k forests' frontiers interleaved) costs
// more than the scans it saves, so below this many committed transfers the
// planner computes forests one at a time instead. Either way the forests
// are bit-identical — this is purely a cost dispatch.
const mergedMinHistory = 64

func (p *planner) prefetch() {
	merged := p.batch && len(p.st.Transfers()) >= mergedMinHistory
	queue := p.queue[:0]
	for _, item := range p.live {
		if p.dead[item] || p.plans[item] != nil || !p.st.IsReleased(item) {
			continue
		}
		if len(p.openRequests(item)) == 0 {
			// Exactly the dead-marking the candidates pass would do before
			// computing this item's forest.
			p.markDead(item, obs.ReasonNoOpenRequests)
			continue
		}
		queue = append(queue, item)
	}
	p.queue = queue
	if len(queue) < 2 {
		return // the lazy path handles a single recompute without batches
	}
	reuse := p.reuse[:0]
	for range queue {
		reuse = append(reuse, p.takePlan())
	}
	p.reuse = reuse

	span := p.replanTimer.Start()
	relaxed := 0 // merged walks run (0 with batching off)
	switch {
	case merged && p.workers <= 1:
		if p.batchScratch == nil {
			p.batchScratch = dijkstra.NewBatchScratch()
		}
		p.batchScratch.ComputeBatch(p.st, queue, reuse)
		relaxed = 1
		if p.tr.Enabled() {
			p.tr.Emit(obs.Event{Kind: obs.EvRelaxBatch, N: len(queue)})
		}
	case merged:
		workers := min(p.workers, len(queue))
		for len(p.workerBatch) < workers {
			p.workerBatch = append(p.workerBatch, dijkstra.NewBatchScratch())
		}
		chunk := (len(queue) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(queue))
			if lo >= hi {
				break
			}
			relaxed++
			if p.tr.Enabled() {
				p.tr.Emit(obs.Event{Kind: obs.EvRelaxBatch, N: hi - lo})
			}
			bs := p.workerBatch[w]
			wg.Add(1)
			// Slices are passed as arguments, not captured: a captured
			// queue/reuse would force the variables onto the heap for
			// every prefetch call, including the empty steady-state ones.
			go func(items []model.ItemID, plans []*dijkstra.Plan) {
				defer wg.Done()
				bs.ComputeBatch(p.st, items, plans)
			}(queue[lo:hi], reuse[lo:hi])
		}
		wg.Wait()
	case p.workers <= 1:
		// Serial without the merged walk: compute the queued forests one
		// at a time with the planner's own scratch — exactly the computes
		// (and compute order) the lazy candidates pass would perform, but
		// under a single phase-timer span instead of one time.Now pair
		// per forest.
		for k, item := range queue {
			reuse[k] = p.scratch.Compute(p.st, item, reuse[k])
		}
	default:
		workers := min(p.workers, len(queue))
		for len(p.workerScratch) < workers {
			p.workerScratch = append(p.workerScratch, dijkstra.NewScratch())
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			s := p.workerScratch[w]
			wg.Add(1)
			go func(items []model.ItemID, plans []*dijkstra.Plan) {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(items) {
						return
					}
					plans[k] = s.Compute(p.st, items[k], plans[k])
				}
			}(queue, reuse)
		}
		wg.Wait()
	}
	span.Stop()
	for k, item := range queue {
		p.plans[item] = reuse[k]
		p.fresh[item] = true
		reuse[k] = nil // drop aliases to plans now owned by the cache
	}
	if relaxed > 0 {
		p.stats.RelaxBatches += relaxed
		p.stats.BatchedRuns += len(queue)
		p.mRelaxBatches.Add(int64(relaxed))
		p.mBatchedRuns.Add(int64(len(queue)))
	}
	if p.workers > 1 {
		p.stats.ParallelBatches++
		p.mParallelBatches.Inc()
		if p.tr.Enabled() {
			p.tr.Emit(obs.Event{Kind: obs.EvParallelBatch, N: len(queue)})
		}
	}
}

// openRequests returns the indices of the item's requests that are neither
// satisfied nor closed by a (possibly late) copy at the destination,
// served from the per-item cache when the item's own satisfaction state
// has not moved since the last build. The returned slice is planner-owned,
// valid until the item's next ReasonOwner invalidation.
func (p *planner) openRequests(item model.ItemID) []int {
	if p.openValid[item] {
		return p.openCache[item]
	}
	it := p.st.Scenario().Item(item)
	open := p.openCache[item][:0]
	for k, rq := range it.Requests {
		if p.st.IsSatisfied(model.RequestID{Item: item, Index: k}) {
			continue
		}
		if p.st.Holds(item, rq.Machine) {
			continue // a copy arrived after the deadline; nothing more to do
		}
		open = append(open, k)
	}
	p.openCache[item] = open
	p.openValid[item] = true
	return open
}

// candidates builds every valid next communication step: for each live
// item, the first hops of its forest toward its satisfiable open requests,
// grouped by next machine (the paper's Drq[i, r]). Items that end up with
// no satisfiable destination are marked dead. The returned slice is
// planner-owned scratch, valid until the next call.
func (p *planner) candidates() []candidate {
	p.prefetch()
	out := p.cands[:0]
	live := p.live
	w := 0
	for _, item := range live {
		if p.dead[item] {
			continue // compacted out of the live list for good
		}
		live[w] = item
		w++
		if !p.st.IsReleased(item) {
			continue // never mark withheld items dead: they may be released later
		}
		if p.candValid[item] {
			// Served from the candidate cache: the forest reuse this
			// replaces is counted exactly where the uncached pass's
			// plan() lookup would have counted it.
			p.stats.CacheHits++
			p.mCacheHits.Inc()
			if p.tr.Enabled() {
				p.tr.Emit(obs.Event{Kind: obs.EvForestCacheHit, Item: int(item)})
			}
		} else {
			p.buildItemCands(item)
		}
		out = append(out, p.candGroups[item]...)
	}
	p.live = live[:w]
	p.cands = out
	return out
}

// buildItemCands rebuilds one item's candidate groups into its cache slot
// (recycling the slot's previous group and dest backing arrays) and marks
// the cache valid, or marks the item dead when no open request remains
// satisfiable.
func (p *planner) buildItemCands(item model.ItemID) {
	groups := p.candGroups[item][:0]
	defer func() { p.candGroups[item] = groups }()
	open := p.openRequests(item)
	if len(open) == 0 {
		p.markDead(item, obs.ReasonNoOpenRequests)
		return
	}
	pl := p.plan(item)
	it := p.st.Scenario().Item(item)
	// byR maps a next machine to its group's index; the map is reused
	// across items and rounds, cleared on first use per item.
	cleared := false
	for _, k := range open {
		rq := &it.Requests[k]
		at := pl.Arrival[rq.Machine]
		if at == simtime.Never || at.After(rq.Deadline) {
			continue // Sat = 0: no resources for this request (§4.8)
		}
		hop, ok := pl.FirstHopTo(rq.Machine)
		if !ok {
			continue
		}
		d := destInfo{
			req:      model.RequestID{Item: item, Index: k},
			machine:  rq.Machine,
			weight:   p.cfg.Weights.Of(rq.Priority),
			slackSec: rq.Deadline.Sub(at).Seconds(),
		}
		if !cleared {
			if p.byR == nil {
				p.byR = make(map[model.MachineID]int, 8)
			} else {
				clear(p.byR)
			}
			cleared = true
		}
		idx, seen := p.byR[hop.To]
		if !seen {
			idx = len(groups)
			p.byR[hop.To] = idx
			groups = appendCandidate(groups, item, hop)
		}
		groups[idx].dests = append(groups[idx].dests, d)
	}
	if len(groups) == 0 {
		// No satisfiable destination now means never: the item's own
		// arrivals improve only when it is scheduled, which requires a
		// candidate, and other commits only consume resources. The one
		// exception is a cap-blocked forest — a later planning floor
		// shortens hold intervals, so a destination unreachable for
		// lack of storage today can open up at a future epoch; such
		// items stay live (with a cached empty group) and are rebuilt
		// when the floor advance invalidates the forest.
		if !pl.CapBlocked {
			p.markDead(item, obs.ReasonUnsatisfiable)
			return
		}
	}
	p.candValid[item] = true
}

// appendCandidate grows the candidate scratch by one slot, recycling the
// slot's previous dests backing array when the capacity allows.
func appendCandidate(out []candidate, item model.ItemID, hop dijkstra.Hop) []candidate {
	n := len(out)
	if n < cap(out) {
		out = out[:n+1]
		out[n].item = item
		out[n].hop = hop
		out[n].dests = out[n].dests[:0]
		return out
	}
	return append(out, candidate{item: item, hop: hop})
}

// commit books one transfer and maintains the plan cache invariant.
func (p *planner) commit(item model.ItemID, link model.LinkID, start simtime.Instant) error {
	tr, err := p.st.Commit(item, link, start)
	if err != nil {
		return err
	}
	p.stats.Commits++
	p.mCommits.Inc()
	if p.obsOn {
		p.observeCommit(item, tr)
	}
	p.invalidate(item, obs.ReasonOwner) // gained a holder; labels can improve
	if p.paranoid {
		for i := range p.plans {
			p.invalidate(model.ItemID(i), obs.ReasonParanoid)
		}
		return nil
	}
	// Only live items can hold a cached forest: markDead recycles the
	// plan, so a nil check covers items that died since the last
	// compaction of the live list.
	trSpan := simtime.Span(tr.Start, tr.Duration)
	serial := p.st.SerialTransfers()
	for _, i := range p.live {
		pl := p.plans[i]
		if pl == nil || i == item {
			continue
		}
		if p.planConflicts(pl, tr, trSpan, serial) {
			p.invalidate(i, obs.ReasonConflict)
			p.stats.Invalidations++
			p.mInvalidations.Inc()
		}
	}
	return nil
}

// observeCommit emits the transfer-booked event plus one request-satisfied
// event per deadline the arrival meets. A machine receives an item at most
// once, so any request at tr.To with deadline ≥ arrival was satisfied by
// exactly this transfer.
func (p *planner) observeCommit(item model.ItemID, tr state.Transfer) {
	if p.tr.Enabled() {
		p.tr.Emit(obs.Event{
			Kind: obs.EvTransferBooked, Item: int(item), Link: int(tr.Link),
			Machine: int(tr.To), At: int64(tr.Start), Value: tr.Duration.Seconds(),
		})
	}
	it := p.st.Scenario().Item(item)
	for k := range it.Requests {
		rq := &it.Requests[k]
		if rq.Machine != tr.To || tr.Arrival.After(rq.Deadline) {
			continue
		}
		slack := rq.Deadline.Sub(tr.Arrival).Seconds()
		p.mSatisfied.Inc()
		p.hSlack.Observe(slack)
		if p.tr.Enabled() {
			p.tr.Emit(obs.Event{
				Kind: obs.EvRequestSatisfied, Item: int(item), Req: k,
				Machine: int(tr.To), At: int64(tr.Arrival), Value: slack,
			})
		}
	}
}

// planConflicts reports whether a committed transfer can have changed the
// cached forest: either it occupies link time one of the forest's hops was
// counting on, or the capacity it consumed at the receiving machine no
// longer backs the forest's planned copy there.
// trSpan and serial are loop invariants of commit's invalidation sweep,
// hoisted to the caller.
func (p *planner) planConflicts(pl *dijkstra.Plan, tr state.Transfer, trSpan simtime.Interval, serial bool) bool {
	for v := range pl.Via {
		if pl.Via[v] == dijkstra.NoLink {
			continue
		}
		span := simtime.Span(pl.Start[v], pl.Dur[v])
		if pl.Via[v] == tr.Link && span.Overlaps(trSpan) {
			return true
		}
		if serial && span.Overlaps(trSpan) {
			// The committed transfer occupies tr.From's send port and
			// tr.To's receive port; a planned hop sharing either machine
			// in an overlapping span may no longer fit. (Slightly
			// conservative: send vs receive port distinctions are folded
			// into a machine match; over-invalidation only costs a
			// recompute.)
			from, to := pl.Pred[v], model.MachineID(v)
			if from == tr.From || from == tr.To || to == tr.From || to == tr.To {
				return true
			}
		}
	}
	to := tr.To
	if pl.Arrival[to] != simtime.Never && pl.Pred[to] != dijkstra.NoMachine {
		size := p.st.Scenario().Item(pl.Item).SizeBytes
		hold := p.st.HoldInterval(pl.Item, to, pl.Arrival[to])
		if !p.st.Capacity(to).CanReserve(size, hold) {
			return true
		}
	}
	return false
}

// commitHop commits a single hop (the partial path heuristic's step).
func (p *planner) commitHop(item model.ItemID, hop dijkstra.Hop) error {
	return p.commit(item, hop.Link, hop.Start)
}

// commitPath commits every hop from the item's forest root to one
// destination (the full path/one destination heuristic's step). The hop
// list lives in planner scratch: hop values are copied out of the forest
// before the first commit invalidates it.
func (p *planner) commitPath(item model.ItemID, dest model.MachineID) error {
	hops, ok := p.plan(item).AppendPathTo(p.hops[:0], dest)
	p.hops = hops
	if !ok {
		return fmt.Errorf("core: no path for item %d to machine %d", item, dest)
	}
	for _, h := range hops {
		if err := p.commit(item, h.Link, h.Start); err != nil {
			return err
		}
	}
	return nil
}

// commitTree commits the union of the forest paths to every destination of
// the candidate (the full path/all destinations heuristic's step). The
// union is a tree — each machine has one incoming planned hop — so hops are
// deduplicated by receiving machine and committed in start order.
func (p *planner) commitTree(item model.ItemID, c *candidate) error {
	pl := p.plan(item)
	m := len(pl.Arrival)
	if cap(p.seen) < m {
		p.seen = make([]bool, m)
	}
	seen := p.seen[:m]
	for i := range seen {
		seen[i] = false
	}
	hops := p.hops[:0]
	path := p.pathBuf
	for _, d := range c.dests {
		var ok bool
		path, ok = pl.AppendPathTo(path[:0], d.machine)
		if !ok {
			p.hops, p.pathBuf = hops, path
			return fmt.Errorf("core: no path for item %d to machine %d", item, d.machine)
		}
		for _, h := range path {
			if !seen[h.To] {
				seen[h.To] = true
				hops = append(hops, h)
			}
		}
	}
	p.hops, p.pathBuf = hops, path
	// Parents always start (strictly) before their children finish, and a
	// hop starts no earlier than its parent's arrival, so start order is a
	// valid commit order.
	sortHops(hops)
	for _, h := range hops {
		if err := p.commit(item, h.Link, h.Start); err != nil {
			if p.st.SerialTransfers() {
				// The forest's branches are individually feasible but may
				// jointly contend for one machine's send or receive port.
				// The shared first hop always commits (the state is
				// unchanged since planning), so progress is guaranteed;
				// a conflicting branch is simply deferred — its
				// destination stays open and is re-planned from the
				// freshly staged copies on a later iteration.
				continue
			}
			return err
		}
	}
	return nil
}

func sortHops(hops []dijkstra.Hop) {
	// Insertion sort: trees are small (bounded by machine count).
	for i := 1; i < len(hops); i++ {
		for j := i; j > 0 && less(hops[j], hops[j-1]); j-- {
			hops[j], hops[j-1] = hops[j-1], hops[j]
		}
	}
}

func less(a, b dijkstra.Hop) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.To < b.To
}
