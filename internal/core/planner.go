package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Stats counts the work a scheduling run performed.
type Stats struct {
	// DijkstraRuns is how many shortest-path computations ran.
	DijkstraRuns int
	// CacheHits is how many times a cached forest was reused where the
	// paper's described implementation would have re-run Dijkstra.
	CacheHits int
	// Invalidations is how many cached forests a committed transfer
	// conflicted with.
	Invalidations int
	// Iterations is the number of select-and-commit rounds.
	Iterations int
	// Commits is the number of committed transfers (communication steps).
	Commits int
	// ReplanWall is the wall-clock time spent computing shortest-path
	// forests, across both parallel batches and lazy recomputes, as
	// accumulated by the planner's obs.PhaseTimer. Unlike the counters
	// above it is timing-dependent, not deterministic.
	ReplanWall time.Duration
	// ParallelBatches is how many iteration-top replan batches ran on
	// more than one worker goroutine. Zero when Parallelism is 1.
	ParallelBatches int
	// BatchedRuns is how many forests were computed inside those parallel
	// batches (a subset of DijkstraRuns).
	BatchedRuns int
}

// planner owns the resource state and the per-item plan cache for one
// scheduling run.
//
// Cache invariant: a cached forest is exactly the forest Dijkstra would
// produce against the current state. Committing a transfer can only shrink
// resources, so a cached forest stays both feasible and optimal unless the
// transfer overlaps one of its link slots or undercuts the capacity backing
// one of its arrivals — in which case the forest is dropped and recomputed
// on next use. The committed item's own forest is always dropped because it
// gained a holder (its labels can improve).
type planner struct {
	st  *state.State
	cfg Config
	// workers is the resolved replan parallelism (cfg.Parallelism, or
	// GOMAXPROCS when that is zero).
	workers int
	plans   []*dijkstra.Plan
	// fresh[i] marks a plan computed by the batched prefetch but not yet
	// consumed by plan(); its Dijkstra run is counted at first use so
	// Stats are identical to the serial path.
	fresh []bool
	// dead[i] marks an item with no satisfiable open request; resources
	// only shrink, so dead items never revive and are skipped forever.
	dead []bool
	// live lists the not-yet-dead items in ascending ID order; candidate
	// passes iterate it (compacting dead entries away) instead of scanning
	// every scenario item, so a long-lived incremental planner pays per
	// epoch for its open backlog, not for the world's whole history.
	// Withheld items stay live until released. Invariant: live is a
	// superset of the items with dead[i] == false, ascending; items that
	// die during a candidates pass linger until the next pass compacts
	// them (their plans are already recycled, so the lingering entries
	// are nil-plan no-ops everywhere live is walked).
	live  []model.ItemID
	stats Stats
	// freePlans recycles invalidated Plan structs: their slices back the
	// next recompute instead of being reallocated.
	freePlans []*dijkstra.Plan
	// scratch backs serial (lazy) computes; workerScratch[w] backs worker
	// w of a parallel batch. Each is owned by one goroutine at a time.
	scratch       *dijkstra.Scratch
	workerScratch []*dijkstra.Scratch
	// queue, reuse, open, byR, and cands are per-iteration scratch reused
	// across rounds to keep the select-and-commit loop allocation-free.
	queue []model.ItemID
	reuse []*dijkstra.Plan
	open  []int
	byR   map[model.MachineID]int
	cands []candidate
	// paranoid drops every cached forest on every commit, reproducing the
	// paper's re-run-Dijkstra-each-iteration implementation. Tests compare
	// it against the conflict-tracking cache to prove they are equivalent.
	paranoid bool

	// Observability handles, resolved once from cfg.Obs. With cfg.Obs nil
	// every handle below is nil and each call is a predictable
	// branch-and-return; only Event construction needs an explicit
	// tr.Enabled() guard. replanTimer is always usable — it is how
	// Stats.ReplanWall is accumulated even with observability off.
	tr          *obs.Tracer
	replanTimer *obs.PhaseTimer
	obsOn       bool
	// flushedScratch snapshots the last scratch stats flushed into the
	// registry so repeated flushes (one per incremental epoch) only add
	// deltas to the counters.
	flushedScratch dijkstra.ScratchStats
	mIterations, mCommits, mDijkstra, mCacheHits, mInvalidations,
	mParallelBatches, mBatchedRuns, mCostEvals, mSatisfied *obs.Counter
	hCandidates, hSlack *obs.Histogram
}

func newPlanner(sc *scenario.Scenario, cfg Config) *planner {
	return plannerOn(state.New(sc), cfg)
}

// plannerOn builds a planner over an existing (possibly pre-committed)
// state.
func plannerOn(st *state.State, cfg Config) *planner {
	items := len(st.Scenario().Items)
	p := &planner{
		st:       st,
		cfg:      cfg,
		workers:  cfg.workers(),
		plans:    make([]*dijkstra.Plan, items),
		fresh:    make([]bool, items),
		dead:     make([]bool, items),
		live:     make([]model.ItemID, items),
		scratch:  dijkstra.NewScratch(),
		paranoid: cfg.Paranoid,
	}
	for i := range p.live {
		p.live[i] = model.ItemID(i)
	}
	o := cfg.Obs
	p.tr = o.Trace()
	p.replanTimer = o.Phase("core.replan")
	if o != nil {
		p.obsOn = true
		st.SetObs(o)
		p.mIterations = o.Counter("core.iterations_total")
		p.mCommits = o.Counter("core.commits_total")
		p.mDijkstra = o.Counter("core.dijkstra_runs_total")
		p.mCacheHits = o.Counter("core.cache_hits_total")
		p.mInvalidations = o.Counter("core.invalidations_total")
		p.mParallelBatches = o.Counter("core.parallel_batches_total")
		p.mBatchedRuns = o.Counter("core.batched_runs_total")
		p.mCostEvals = o.Counter("core.cost_evaluations_total")
		p.mSatisfied = o.Counter("core.requests_satisfied_total")
		p.hCandidates = o.Histogram("core.iteration_candidates", obs.CountBuckets)
		p.hSlack = o.Histogram("core.satisfaction_slack_seconds", obs.SlackBuckets)
	}
	return p
}

// flushScratchMetrics aggregates the Dijkstra scratch counters (reuse
// hits, buffer grows, heap high-water) into the registry at end of run.
// Scratch stats are cumulative over the scratch's lifetime, so a persistent
// planner flushing once per epoch adds only the delta since the last flush
// (the high-water gauge takes the cumulative max either way).
func (p *planner) flushScratchMetrics() {
	if !p.obsOn {
		return
	}
	ds := p.scratch.Stats()
	for _, s := range p.workerScratch {
		ds.Add(s.Stats())
	}
	prev := p.flushedScratch
	p.flushedScratch = ds
	o := p.cfg.Obs
	o.Counter("dijkstra.computes_total").Add(int64(ds.Computes - prev.Computes))
	o.Counter("dijkstra.scratch_reuse_hits_total").Add(int64(ds.ReuseHits() - prev.ReuseHits()))
	o.Counter("dijkstra.scratch_grows_total").Add(int64(ds.Grows - prev.Grows))
	o.Gauge("dijkstra.heap_high_water").SetMax(float64(ds.HeapHighWater))
}

// takeFree pops a recycled Plan for reuse, or nil when none is available.
func (p *planner) takeFree() *dijkstra.Plan {
	n := len(p.freePlans)
	if n == 0 {
		return nil
	}
	pl := p.freePlans[n-1]
	p.freePlans[n-1] = nil
	p.freePlans = p.freePlans[:n-1]
	return pl
}

// invalidate drops an item's cached forest and recycles the struct. The
// reason is purely observational (traced only when a forest was actually
// dropped).
func (p *planner) invalidate(item model.ItemID, why obs.Reason) {
	if pl := p.plans[item]; pl != nil {
		p.freePlans = append(p.freePlans, pl)
		p.plans[item] = nil
		p.fresh[item] = false
		if p.tr.Enabled() {
			p.tr.Emit(obs.Event{Kind: obs.EvForestInvalidated, Item: int(item), Reason: why})
		}
	}
}

// markDead retires an item forever (resources only shrink, so dead items
// never revive). Its cached forest, if any, is recycled on the spot: a dead
// item's forest is never consulted again, and a long-lived incremental
// planner must not pin one Plan per retired item for the life of the world.
// The next candidates pass drops the item from the live list.
func (p *planner) markDead(item model.ItemID, why obs.Reason) {
	p.dead[item] = true
	p.invalidate(item, why)
	if p.tr.Enabled() {
		p.tr.Emit(obs.Event{Kind: obs.EvItemDead, Item: int(item), Reason: why})
	}
}

// grow extends the per-item planner bookkeeping to cover items appended to
// the scenario since the planner was built (incremental epochs over an
// append-only growing scenario). New items start live with no cached
// forest.
func (p *planner) grow() {
	items := len(p.st.Scenario().Items)
	for i := len(p.plans); i < items; i++ {
		p.plans = append(p.plans, nil)
		p.fresh = append(p.fresh, false)
		p.dead = append(p.dead, false)
		p.live = append(p.live, model.ItemID(i))
	}
}

// advanceFloor moves the planning floor to at and drops every cached
// forest the advance could reshape: forests that planned a hop starting
// before the new floor, and cap-blocked forests (a failed capacity check
// can flip to success at a later floor because the hold interval shrinks —
// see dijkstra.Plan.CapBlocked). Everything else is exactly what a fresh
// computation would produce (see dijkstra.Plan.EarliestHopStart), so it
// carries across the epoch boundary and its item skips a Dijkstra rerun.
func (p *planner) advanceFloor(at simtime.Instant) {
	if at == p.st.Floor() {
		return
	}
	p.st.SetFloor(at)
	for _, item := range p.live {
		if pl := p.plans[item]; pl != nil && (pl.CapBlocked || pl.EarliestHopStart() < at) {
			p.invalidate(item, obs.ReasonFloor)
		}
	}
}

// plan returns the item's current forest, recomputing it if invalidated.
func (p *planner) plan(item model.ItemID) *dijkstra.Plan {
	if pl := p.plans[item]; pl != nil {
		if p.fresh[item] {
			// Computed by this iteration's parallel batch: count it as the
			// Dijkstra run the serial path would have performed here.
			p.fresh[item] = false
			p.stats.DijkstraRuns++
			p.mDijkstra.Inc()
			if p.tr.Enabled() {
				p.tr.Emit(obs.Event{Kind: obs.EvForestComputed, Item: int(item)})
			}
		} else {
			p.stats.CacheHits++
			p.mCacheHits.Inc()
			if p.tr.Enabled() {
				p.tr.Emit(obs.Event{Kind: obs.EvForestCacheHit, Item: int(item)})
			}
		}
		return pl
	}
	span := p.replanTimer.Start()
	pl := p.scratch.Compute(p.st, item, p.takeFree())
	span.Stop()
	p.plans[item] = pl
	p.stats.DijkstraRuns++
	p.mDijkstra.Inc()
	if p.tr.Enabled() {
		p.tr.Emit(obs.Event{Kind: obs.EvForestComputed, Item: int(item)})
	}
	return pl
}

// prefetch recomputes every invalidated forest the coming candidates pass
// will need, spreading the work over the configured worker pool. Compute
// only reads the shared state and each worker owns its Scratch, writing
// results back by item index, so the batch is race-free and the resulting
// forests are byte-identical to what the lazy serial path would compute
// one by one (no commit happens between prefetch and use).
func (p *planner) prefetch() {
	if p.workers <= 1 {
		return
	}
	queue := p.queue[:0]
	for _, item := range p.live {
		if p.dead[item] || p.plans[item] != nil || !p.st.IsReleased(item) {
			continue
		}
		if len(p.openRequests(item)) == 0 {
			// Exactly the dead-marking the candidates pass would do before
			// computing this item's forest.
			p.markDead(item, obs.ReasonNoOpenRequests)
			continue
		}
		queue = append(queue, item)
	}
	p.queue = queue
	if len(queue) < 2 {
		return // the lazy path handles a single recompute without goroutines
	}
	reuse := p.reuse[:0]
	for range queue {
		reuse = append(reuse, p.takeFree())
	}
	p.reuse = reuse

	span := p.replanTimer.Start()
	workers := min(p.workers, len(queue))
	for len(p.workerScratch) < workers {
		p.workerScratch = append(p.workerScratch, dijkstra.NewScratch())
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		s := p.workerScratch[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(queue) {
					return
				}
				item := queue[k]
				p.plans[item] = s.Compute(p.st, item, reuse[k])
				p.fresh[item] = true
			}
		}()
	}
	wg.Wait()
	span.Stop()
	p.stats.ParallelBatches++
	p.stats.BatchedRuns += len(queue)
	p.mParallelBatches.Inc()
	p.mBatchedRuns.Add(int64(len(queue)))
	if p.tr.Enabled() {
		p.tr.Emit(obs.Event{Kind: obs.EvParallelBatch, N: len(queue)})
	}
	for k := range reuse {
		reuse[k] = nil // drop aliases to plans now owned by the cache
	}
}

// openRequests returns the indices of the item's requests that are neither
// satisfied nor closed by a (possibly late) copy at the destination. The
// returned slice is planner-owned scratch, valid until the next call.
func (p *planner) openRequests(item model.ItemID) []int {
	it := p.st.Scenario().Item(item)
	open := p.open[:0]
	for k, rq := range it.Requests {
		if p.st.IsSatisfied(model.RequestID{Item: item, Index: k}) {
			continue
		}
		if p.st.Holds(item, rq.Machine) {
			continue // a copy arrived after the deadline; nothing more to do
		}
		open = append(open, k)
	}
	p.open = open
	return open
}

// candidates builds every valid next communication step: for each live
// item, the first hops of its forest toward its satisfiable open requests,
// grouped by next machine (the paper's Drq[i, r]). Items that end up with
// no satisfiable destination are marked dead. The returned slice is
// planner-owned scratch, valid until the next call.
func (p *planner) candidates() []candidate {
	p.prefetch()
	sc := p.st.Scenario()
	out := p.cands[:0]
	live := p.live
	w := 0
	for _, item := range live {
		if p.dead[item] {
			continue // compacted out of the live list for good
		}
		live[w] = item
		w++
		if !p.st.IsReleased(item) {
			continue // never mark withheld items dead: they may be released later
		}
		open := p.openRequests(item)
		if len(open) == 0 {
			p.markDead(item, obs.ReasonNoOpenRequests)
			continue
		}
		pl := p.plan(item)
		it := sc.Item(item)
		firstLen := len(out)
		// byR maps a next machine to its candidate's index in out; the map
		// is reused across items and rounds, cleared on first use per item.
		cleared := false
		for _, k := range open {
			rq := &it.Requests[k]
			at := pl.Arrival[rq.Machine]
			if at == simtime.Never || at.After(rq.Deadline) {
				continue // Sat = 0: no resources for this request (§4.8)
			}
			hop, ok := pl.FirstHopTo(rq.Machine)
			if !ok {
				continue
			}
			d := destInfo{
				req:      model.RequestID{Item: item, Index: k},
				machine:  rq.Machine,
				weight:   p.cfg.Weights.Of(rq.Priority),
				slackSec: rq.Deadline.Sub(at).Seconds(),
			}
			if !cleared {
				if p.byR == nil {
					p.byR = make(map[model.MachineID]int, 8)
				} else {
					clear(p.byR)
				}
				cleared = true
			}
			idx, seen := p.byR[hop.To]
			if !seen {
				idx = len(out)
				p.byR[hop.To] = idx
				out = appendCandidate(out, item, hop)
			}
			out[idx].dests = append(out[idx].dests, d)
		}
		if len(out) == firstLen {
			// No satisfiable destination now means never: the item's own
			// arrivals improve only when it is scheduled, which requires a
			// candidate, and other commits only consume resources. The one
			// exception is a cap-blocked forest — a later planning floor
			// shortens hold intervals, so a destination unreachable for
			// lack of storage today can open up at a future epoch; such
			// items stay live and are re-examined after floor advances.
			if !pl.CapBlocked {
				p.markDead(item, obs.ReasonUnsatisfiable)
			}
		}
	}
	p.live = live[:w]
	p.cands = out
	return out
}

// appendCandidate grows the candidate scratch by one slot, recycling the
// slot's previous dests backing array when the capacity allows.
func appendCandidate(out []candidate, item model.ItemID, hop dijkstra.Hop) []candidate {
	n := len(out)
	if n < cap(out) {
		out = out[:n+1]
		out[n].item = item
		out[n].hop = hop
		out[n].dests = out[n].dests[:0]
		return out
	}
	return append(out, candidate{item: item, hop: hop})
}

// commit books one transfer and maintains the plan cache invariant.
func (p *planner) commit(item model.ItemID, link model.LinkID, start simtime.Instant) error {
	tr, err := p.st.Commit(item, link, start)
	if err != nil {
		return err
	}
	p.stats.Commits++
	p.mCommits.Inc()
	if p.obsOn {
		p.observeCommit(item, tr)
	}
	p.invalidate(item, obs.ReasonOwner) // gained a holder; labels can improve
	if p.paranoid {
		for i := range p.plans {
			p.invalidate(model.ItemID(i), obs.ReasonParanoid)
		}
		return nil
	}
	// Only live items can hold a cached forest: markDead recycles the
	// plan, so a nil check covers items that died since the last
	// compaction of the live list.
	for _, i := range p.live {
		pl := p.plans[i]
		if pl == nil || i == item {
			continue
		}
		if p.planConflicts(pl, tr) {
			p.invalidate(i, obs.ReasonConflict)
			p.stats.Invalidations++
			p.mInvalidations.Inc()
		}
	}
	return nil
}

// observeCommit emits the transfer-booked event plus one request-satisfied
// event per deadline the arrival meets. A machine receives an item at most
// once, so any request at tr.To with deadline ≥ arrival was satisfied by
// exactly this transfer.
func (p *planner) observeCommit(item model.ItemID, tr state.Transfer) {
	if p.tr.Enabled() {
		p.tr.Emit(obs.Event{
			Kind: obs.EvTransferBooked, Item: int(item), Link: int(tr.Link),
			Machine: int(tr.To), At: int64(tr.Start), Value: tr.Duration.Seconds(),
		})
	}
	it := p.st.Scenario().Item(item)
	for k := range it.Requests {
		rq := &it.Requests[k]
		if rq.Machine != tr.To || tr.Arrival.After(rq.Deadline) {
			continue
		}
		slack := rq.Deadline.Sub(tr.Arrival).Seconds()
		p.mSatisfied.Inc()
		p.hSlack.Observe(slack)
		if p.tr.Enabled() {
			p.tr.Emit(obs.Event{
				Kind: obs.EvRequestSatisfied, Item: int(item), Req: k,
				Machine: int(tr.To), At: int64(tr.Arrival), Value: slack,
			})
		}
	}
}

// planConflicts reports whether a committed transfer can have changed the
// cached forest: either it occupies link time one of the forest's hops was
// counting on, or the capacity it consumed at the receiving machine no
// longer backs the forest's planned copy there.
func (p *planner) planConflicts(pl *dijkstra.Plan, tr state.Transfer) bool {
	trSpan := simtime.Span(tr.Start, tr.Duration)
	serial := p.st.SerialTransfers()
	for v := range pl.Via {
		if pl.Via[v] == dijkstra.NoLink {
			continue
		}
		span := simtime.Span(pl.Start[v], pl.Dur[v])
		if pl.Via[v] == tr.Link && span.Overlaps(trSpan) {
			return true
		}
		if serial && span.Overlaps(trSpan) {
			// The committed transfer occupies tr.From's send port and
			// tr.To's receive port; a planned hop sharing either machine
			// in an overlapping span may no longer fit. (Slightly
			// conservative: send vs receive port distinctions are folded
			// into a machine match; over-invalidation only costs a
			// recompute.)
			from, to := pl.Pred[v], model.MachineID(v)
			if from == tr.From || from == tr.To || to == tr.From || to == tr.To {
				return true
			}
		}
	}
	to := tr.To
	if pl.Arrival[to] != simtime.Never && pl.Pred[to] != dijkstra.NoMachine {
		size := p.st.Scenario().Item(pl.Item).SizeBytes
		hold := p.st.HoldInterval(pl.Item, to, pl.Arrival[to])
		if !p.st.Capacity(to).CanReserve(size, hold) {
			return true
		}
	}
	return false
}

// commitHop commits a single hop (the partial path heuristic's step).
func (p *planner) commitHop(item model.ItemID, hop dijkstra.Hop) error {
	return p.commit(item, hop.Link, hop.Start)
}

// commitPath commits every hop from the item's forest root to one
// destination (the full path/one destination heuristic's step).
func (p *planner) commitPath(item model.ItemID, dest model.MachineID) error {
	hops, ok := p.plan(item).PathTo(dest)
	if !ok {
		return fmt.Errorf("core: no path for item %d to machine %d", item, dest)
	}
	for _, h := range hops {
		if err := p.commit(item, h.Link, h.Start); err != nil {
			return err
		}
	}
	return nil
}

// commitTree commits the union of the forest paths to every destination of
// the candidate (the full path/all destinations heuristic's step). The
// union is a tree — each machine has one incoming planned hop — so hops are
// deduplicated by receiving machine and committed in start order.
func (p *planner) commitTree(item model.ItemID, c *candidate) error {
	pl := p.plan(item)
	seen := make(map[model.MachineID]bool, len(c.dests)*2)
	var hops []dijkstra.Hop
	for _, d := range c.dests {
		path, ok := pl.PathTo(d.machine)
		if !ok {
			return fmt.Errorf("core: no path for item %d to machine %d", item, d.machine)
		}
		for _, h := range path {
			if !seen[h.To] {
				seen[h.To] = true
				hops = append(hops, h)
			}
		}
	}
	// Parents always start (strictly) before their children finish, and a
	// hop starts no earlier than its parent's arrival, so start order is a
	// valid commit order.
	sortHops(hops)
	for _, h := range hops {
		if err := p.commit(item, h.Link, h.Start); err != nil {
			if p.st.SerialTransfers() {
				// The forest's branches are individually feasible but may
				// jointly contend for one machine's send or receive port.
				// The shared first hop always commits (the state is
				// unchanged since planning), so progress is guaranteed;
				// a conflicting branch is simply deferred — its
				// destination stays open and is re-planned from the
				// freshly staged copies on a later iteration.
				continue
			}
			return err
		}
	}
	return nil
}

func sortHops(hops []dijkstra.Hop) {
	// Insertion sort: trees are small (bounded by machine count).
	for i := 1; i < len(hops); i++ {
		for j := i; j > 0 && less(hops[j], hops[j-1]); j-- {
			hops[j], hops[j-1] = hops[j-1], hops[j]
		}
	}
}

func less(a, b dijkstra.Hop) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.To < b.To
}
