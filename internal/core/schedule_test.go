package core

import (
	"testing"
	"time"

	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
)

func allHeuristicConfigs(w model.Weights) []Config {
	var out []Config
	for _, pr := range Pairs() {
		out = append(out, Config{
			Heuristic: pr.Heuristic,
			Criterion: pr.Criterion,
			EU:        EUFromLog10(0),
			Weights:   w,
		})
	}
	return out
}

func TestScheduleLineAllPairs(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	for _, cfg := range allHeuristicConfigs(model.Weights1x10x100) {
		res, err := Schedule(sc, cfg)
		if err != nil {
			t.Fatalf("%v/%v: %v", cfg.Heuristic, cfg.Criterion, err)
		}
		if len(res.Satisfied) != 1 {
			t.Errorf("%v/%v: satisfied %d requests, want 1", cfg.Heuristic, cfg.Criterion, len(res.Satisfied))
		}
		if len(res.Transfers) != 3 {
			t.Errorf("%v/%v: %d transfers, want 3", cfg.Heuristic, cfg.Criterion, len(res.Transfers))
		}
		if got := res.WeightedValue(sc, cfg.Weights); got != 100 {
			t.Errorf("%v/%v: weighted value %v, want 100", cfg.Heuristic, cfg.Criterion, got)
		}
	}
}

func TestScheduleRejectsBadConfig(t *testing.T) {
	sc := testnet.Line(2, 1024, 8000, time.Hour)
	if _, err := Schedule(sc, Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
	bad := Config{Heuristic: FullPathAllDests, Criterion: C1, EU: EUFromLog10(0), Weights: model.Weights1x5x10}
	if _, err := Schedule(sc, bad); err == nil {
		t.Error("excluded pairing should be rejected")
	}
}

// contended builds two items racing for one narrow link 0→1: the link
// window only fits one transfer before both deadlines. The high-priority
// item must win under a priority-respecting configuration.
func contended() (*scenario.Scenario, model.ItemID, model.ItemID) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	// 1 KB at 8 kbit/s = 1.024 s per transfer; deadline 2 s fits only the
	// first transfer on the serial link.
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	low := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*time.Second, model.Low)})
	high := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*time.Second, model.High)})
	return b.Build("contended"), low, high
}

func TestScheduleHighPriorityWinsContention(t *testing.T) {
	sc, low, high := contended()
	for _, h := range []Heuristic{PartialPath, FullPathOneDest, FullPathAllDests} {
		cfg := Config{Heuristic: h, Criterion: C4, EU: EUPriorityOnly, Weights: model.Weights1x10x100}
		res, err := Schedule(sc, cfg)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if !resSatisfied(res, high, 0) {
			t.Errorf("%v: high-priority request should be satisfied", h)
		}
		if resSatisfied(res, low, 0) {
			t.Errorf("%v: low-priority request cannot also fit", h)
		}
	}
}

func TestScheduleUrgencyOnlyPrefersTighterDeadline(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	// Low priority but tight deadline vs high priority with slack: with
	// urgency-only weights the tight one goes first; both still fit? No —
	// deadline 2s only fits the first transfer.
	tight := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*time.Second, model.Low)})
	slack := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*time.Second+60*time.Millisecond, model.High)})
	sc := b.Build("urgency")

	cfg := Config{Heuristic: PartialPath, Criterion: C1, EU: EUUrgencyOnly, Weights: model.Weights1x10x100}
	res, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resSatisfied(res, tight, 0) {
		t.Error("urgency-only: tight-deadline request should be scheduled first and satisfied")
	}
	_ = slack // the slack request misses: second slot arrives at 2.048s > 2.06s? It fits barely — don't assert.
}

func resSatisfied(r *Result, item model.ItemID, index int) bool {
	_, ok := r.Satisfied[model.RequestID{Item: item, Index: index}]
	return ok
}

func TestFullAllSatisfiesMultipleDestinationsInOneIteration(t *testing.T) {
	// Star: source 0 → hub 1 → leaves 2,3,4; all three leaves request the
	// item. full_all must schedule the whole tree in a single iteration.
	b := testnet.NewBuilder()
	ms := b.Machines(5, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[1], 0, day, 80000)
	for _, leaf := range []model.MachineID{ms[2], ms[3], ms[4]} {
		b.Link(ms[1], leaf, 0, day, 80000)
		b.Link(leaf, ms[0], 0, day, 80000)
	}
	item := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{
			testnet.Req(ms[2], time.Hour, model.High),
			testnet.Req(ms[3], time.Hour, model.Medium),
			testnet.Req(ms[4], time.Hour, model.Low),
		})
	sc := b.Build("star")

	cfg := Config{Heuristic: FullPathAllDests, Criterion: C4, EU: EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Satisfied) != 3 {
		t.Fatalf("satisfied %d, want 3", len(res.Satisfied))
	}
	if res.Stats.Iterations != 1 {
		t.Errorf("full_all iterations: got %d, want 1", res.Stats.Iterations)
	}
	// Tree has 4 edges: 0→1 shared, then 1→{2,3,4}.
	if len(res.Transfers) != 4 {
		t.Errorf("transfers: got %d, want 4", len(res.Transfers))
	}
	_ = item

	// full_one needs one iteration per destination and re-plans between
	// them, but the shared hop is only committed once.
	cfgOne := cfg
	cfgOne.Heuristic = FullPathOneDest
	resOne, err := Schedule(sc, cfgOne)
	if err != nil {
		t.Fatal(err)
	}
	if len(resOne.Satisfied) != 3 || len(resOne.Transfers) != 4 {
		t.Errorf("full_one: satisfied %d transfers %d, want 3 and 4",
			len(resOne.Satisfied), len(resOne.Transfers))
	}
	if resOne.Stats.Iterations != 3 {
		t.Errorf("full_one iterations: got %d, want 3", resOne.Stats.Iterations)
	}
	if res.Stats.DijkstraRuns >= resOne.Stats.DijkstraRuns {
		t.Errorf("full_all should run Dijkstra less than full_one: %d vs %d",
			res.Stats.DijkstraRuns, resOne.Stats.DijkstraRuns)
	}
}

func TestScheduleOversubscribedGenerated(t *testing.T) {
	// A generated BADD-like case: sanity-check every pair end to end.
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
	sc := gen.MustGenerate(p, 11)
	upper := sc.TotalWeight(model.Weights1x10x100)

	for _, cfg := range allHeuristicConfigs(model.Weights1x10x100) {
		res, err := Schedule(sc, cfg)
		if err != nil {
			t.Fatalf("%v/%v: %v", cfg.Heuristic, cfg.Criterion, err)
		}
		got := res.WeightedValue(sc, cfg.Weights)
		if got <= 0 {
			t.Errorf("%v/%v: weighted value %v, want > 0", cfg.Heuristic, cfg.Criterion, got)
		}
		if got > upper {
			t.Errorf("%v/%v: weighted value %v exceeds upper bound %v", cfg.Heuristic, cfg.Criterion, got, upper)
		}
		if res.Stats.CacheHits == 0 {
			t.Errorf("%v/%v: plan cache never hit", cfg.Heuristic, cfg.Criterion)
		}
	}
}

func TestScheduleStateContinuesExisting(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	cfg := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(0), Weights: model.Weights1x10x100}
	st := state.New(sc)
	// Pre-commit the first hop by hand; ScheduleState must finish the job.
	if _, err := st.Commit(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	res, err := ScheduleState(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Satisfied) != 1 {
		t.Errorf("satisfied: got %d", len(res.Satisfied))
	}
	if len(res.Transfers) != 3 {
		t.Errorf("transfers: got %d, want 3 (1 pre-committed + 2 scheduled)", len(res.Transfers))
	}
	if res.Transfers[0].Link != 0 {
		t.Error("pre-committed transfer missing from the result")
	}
	if _, err := ScheduleState(st, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestC5CompetitiveWithC3AndC4 is the empirical regression for the C5
// extension: on a handful of paper-scale cases its aggregate value stays
// within a few percent of the best paper criteria (in the committed 10-seed
// probe it slightly beat both).
func TestC5CompetitiveWithC3AndC4(t *testing.T) {
	p := gen.Default()
	w := model.Weights1x10x100
	var c3Sum, c4Sum, c5Sum float64
	for seed := int64(1); seed <= 4; seed++ {
		sc := gen.MustGenerate(p, seed)
		run := func(c Criterion, eu EUWeights) float64 {
			res, err := Schedule(sc, Config{Heuristic: FullPathOneDest, Criterion: c, EU: eu, Weights: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.WeightedValue(sc, w)
		}
		c3Sum += run(C3, EUFromLog10(0))
		c4Sum += run(C4, EUFromLog10(2))
		c5Sum += run(C5, EUFromLog10(0))
	}
	if c5Sum < 0.95*c3Sum {
		t.Errorf("C5 (%v) far below C3 (%v)", c5Sum, c3Sum)
	}
	if c5Sum < 0.95*c4Sum {
		t.Errorf("C5 (%v) far below C4 at its best ratio (%v)", c5Sum, c4Sum)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	sc := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 5, Max: 5}
		p.RequestsPerMachine = gen.IntRange{Min: 6, Max: 6}
		return p
	}(), 3)
	cfg := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(1), Weights: model.Weights1x10x100}
	a, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Transfers) != len(b.Transfers) {
		t.Fatalf("non-deterministic transfer count: %d vs %d", len(a.Transfers), len(b.Transfers))
	}
	for i := range a.Transfers {
		if a.Transfers[i] != b.Transfers[i] {
			t.Fatalf("transfer %d differs between identical runs", i)
		}
	}
}
