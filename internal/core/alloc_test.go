package core

import (
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
)

// TestSteadyEpochAllocs gates the admission fast path end to end: once the
// planner has drained its backlog, advancing the floor and re-running the
// heuristic loop must not touch the heap beyond the one Result the API
// returns. Everything else — candidate groups, open-request sets, plan
// slabs, the prefetch queue — lives in recycled scratch, and a regression
// here is exactly the kind of slow leak BENCH_core.json only catches after
// the fact.
func TestSteadyEpochAllocs(t *testing.T) {
	sc := testnet.Line(6, 1<<20, testnet.KBPS(1000), time.Hour)
	st := state.New(sc)
	cfg := Config{
		Heuristic: FullPathAllDests,
		Criterion: C4,
		EU:        EUFromLog10(0),
		Weights:   model.Weights1x10x100,
	}
	pp, err := NewPlannerOn(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the backlog so later epochs are pure steady state.
	if _, err := pp.Epoch(simtime.At(0)); err != nil {
		t.Fatal(err)
	}
	at := simtime.At(time.Hour)
	if _, err := pp.Epoch(at); err != nil {
		t.Fatal(err)
	}
	const budget = 1 // the returned *Result itself
	if a := testing.AllocsPerRun(50, func() {
		at = at.Add(time.Second)
		if _, err := pp.Epoch(at); err != nil {
			t.Fatal(err)
		}
	}); a > budget {
		t.Errorf("steady-state Epoch allocates %.1f per call, want <= %d", a, budget)
	}
}
