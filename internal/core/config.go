// Package core implements the paper's data staging heuristics (§4): the
// partial path heuristic, the full path/one destination heuristic, and the
// full path/all destinations heuristic, each driven by one of the four cost
// criteria C1–C4 built from effective priority and urgency (§4.8).
//
// All three heuristics share the same engine: a plan cache of per-item
// shortest-path forests (internal/dijkstra) over a shared resource state
// (internal/state). Each iteration selects the cheapest valid next
// communication step under the configured cost criterion and commits one
// hop, one full path, or one full tree of paths depending on the heuristic.
//
// The paper notes that re-running Dijkstra for every item on every
// iteration is unnecessary when a committed transfer touches none of the
// resources an item's forest uses, but leaves that optimization
// unimplemented; this package implements it exactly (resources only ever
// shrink, so an unaffected cached forest remains optimal) — results are
// identical to the naive re-run, only faster. Tests in planner_test.go
// cross-check the two.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs"
)

// Heuristic selects which of the paper's three scheduling strategies to run.
type Heuristic int

// The three heuristics of §4.5–§4.7.
const (
	// PartialPath schedules one hop of the single cheapest request per
	// iteration (§4.5, "partial" in the figures).
	PartialPath Heuristic = iota + 1
	// FullPathOneDest schedules every hop needed to bring the cheapest
	// item to its lowest-cost destination (§4.6, "full_one").
	FullPathOneDest
	// FullPathAllDests schedules the whole tree of paths from the cheapest
	// item to every satisfiable destination sharing the chosen next
	// machine (§4.7, "full_all").
	FullPathAllDests
)

// String returns the figure label used in the paper.
func (h Heuristic) String() string {
	switch h {
	case PartialPath:
		return "partial"
	case FullPathOneDest:
		return "full_one"
	case FullPathAllDests:
		return "full_all"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// Criterion selects one of the four cost criteria of §4.8.
type Criterion int

// The four cost criteria. C1 scores one (item, destination) pair; C2–C4
// aggregate over every satisfiable destination whose shortest path shares
// the candidate next machine. C5 is this library's extension: the paper
// observes that C3's priority/urgency ratio lets "one very small Urgency"
// dominate the cost and suggests future criteria "designed to capture the
// original intent" (§5.4); C5 is that criterion — each destination
// contributes its weight scaled by the bounded urgency factor
// τ/(τ + slack), so an urgent request boosts its item by at most its full
// weight instead of without limit. Like C3 it is independent of W_E/W_U.
const (
	C1 Criterion = iota + 1
	C2
	C3
	C4
	C5
)

// String returns the paper's name for the criterion (C5 is the extension).
func (c Criterion) String() string {
	if c >= C1 && c <= C5 {
		return fmt.Sprintf("C%d", int(c))
	}
	return fmt.Sprintf("criterion(%d)", int(c))
}

// EUWeights carries the relative weights W_E (effective priority) and W_U
// (urgency) of §4.8. Only the ratio matters for C1, C2, and C4; C3 ignores
// both. The paper sweeps log10(W_E/W_U) from -3 to 5 plus the two extremes.
type EUWeights struct {
	WE float64
	WU float64
}

// The two extreme points of the paper's E-U sweep: "inf" considers only
// effective priority, "-inf" only urgency.
var (
	EUPriorityOnly = EUWeights{WE: 1, WU: 0}
	EUUrgencyOnly  = EUWeights{WE: 0, WU: 1}
)

// EUFromLog10 returns the weights for one interior sweep point:
// W_E = 10^l, W_U = 1.
func EUFromLog10(l float64) EUWeights {
	return EUWeights{WE: math.Pow(10, l), WU: 1}
}

// IsExtreme reports whether the weights are one of the two sweep extremes.
func (eu EUWeights) IsExtreme() bool { return eu.WU == 0 || eu.WE == 0 }

// Label renders the weights as the paper's sweep axis value: the log10 of
// the E-U ratio, rounded to shed floating-point noise from Pow/Log10 round
// trips.
func (eu EUWeights) Label() string {
	switch {
	case eu.WU == 0:
		return "inf"
	case eu.WE == 0:
		return "-inf"
	default:
		l := math.Log10(eu.WE / eu.WU)
		return fmt.Sprintf("%g", math.Round(l*1e6)/1e6)
	}
}

// Config selects a heuristic/cost-criterion pair with its weightings.
type Config struct {
	Heuristic Heuristic
	Criterion Criterion
	// EU weights the effective-priority and urgency terms. Ignored by C3
	// and C5.
	EU EUWeights
	// Weights maps priorities to W[p]; required.
	Weights model.Weights
	// C5Tau is the urgency scale of the C5 extension: a request with zero
	// slack contributes its full weight, one with τ of slack half of it.
	// Zero selects the default of ten minutes. Ignored by C1–C4.
	C5Tau time.Duration
	// Parallelism caps the worker goroutines used to recompute invalidated
	// shortest-path forests at the top of each select-and-commit iteration.
	// Zero (the default) uses GOMAXPROCS; 1 forces the fully serial path.
	// The schedule produced is identical for every value — shortest-path
	// computations only read the shared state and results are written back
	// by item index — so this is purely a wall-clock knob. Callers that
	// already fan out across whole scheduling runs (internal/experiment)
	// should leave their per-run configs at 1 to avoid oversubscription.
	Parallelism int
	// DisableBatch turns off the batched relaxation kernel: invalidated
	// forests are then recomputed one by one (serially, or by the
	// work-stealing worker pool when Parallelism > 1) instead of in merged
	// dijkstra.ComputeBatch walks that visit each link timeline once per
	// batch. The schedule produced is identical either way — the batched
	// kernel is bit-exact against serial Compute (the equivalence suites
	// and FuzzBatchComputeEquivalence prove it) — so like Paranoid this is
	// a debugging and differential-testing knob, never a production
	// setting.
	DisableBatch bool
	// Paranoid drops every cached forest on every commit, reproducing the
	// paper's re-run-Dijkstra-each-iteration implementation. The schedule
	// produced is identical to the conflict-tracking cache (the
	// equivalence suites prove it), only slower; this is a debugging and
	// testing knob, never a production setting.
	Paranoid bool
	// Obs, when non-nil, receives the run's metrics, phase timings, and
	// scheduling events (see internal/obs and DESIGN.md "Observability").
	// Purely observational: it never changes the schedule. Nil disables
	// instrumentation at approximately zero cost. An Obs may be shared by
	// concurrent runs; all instruments are atomic.
	Obs *obs.Obs
}

// workers resolves the replan parallelism: Parallelism, or GOMAXPROCS when
// it is zero.
func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Validate rejects malformed configurations, including the twelfth pairing
// the paper rules out: FullPathAllDests with C1 "did not make sense and was
// not examined" (§6), because C1 cannot express sending one item to
// multiple destinations.
func (c Config) Validate() error {
	if c.Heuristic < PartialPath || c.Heuristic > FullPathAllDests {
		return fmt.Errorf("core: unknown heuristic %d", c.Heuristic)
	}
	if c.Criterion < C1 || c.Criterion > C5 {
		return fmt.Errorf("core: unknown criterion %d", c.Criterion)
	}
	if c.Heuristic == FullPathAllDests && c.Criterion == C1 {
		return errors.New("core: full_all with C1 is the excluded pairing (paper §6)")
	}
	if len(c.Weights) == 0 {
		return errors.New("core: no priority weights")
	}
	if c.Criterion != C3 && c.Criterion != C5 {
		if c.EU.WE < 0 || c.EU.WU < 0 {
			return errors.New("core: negative E-U weights")
		}
		if c.EU.WE == 0 && c.EU.WU == 0 {
			return errors.New("core: both E-U weights zero")
		}
	}
	if c.C5Tau < 0 {
		return errors.New("core: negative C5 tau")
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative parallelism %d", c.Parallelism)
	}
	return nil
}

// Pair names one heuristic/cost-criterion combination.
type Pair struct {
	Heuristic Heuristic
	Criterion Criterion
}

// String returns the paper-style label, e.g. "full_one/C4".
func (p Pair) String() string { return p.Heuristic.String() + "/" + p.Criterion.String() }

// Pairs enumerates the paper's eleven meaningful heuristic/criterion pairs
// (C5, the extension criterion, is not included; see PairsWithExtensions).
func Pairs() []Pair {
	return pairs([]Criterion{C1, C2, C3, C4})
}

// PairsWithExtensions enumerates the paper's pairs plus the C5 extension
// under every heuristic: fourteen pairs.
func PairsWithExtensions() []Pair {
	return pairs([]Criterion{C1, C2, C3, C4, C5})
}

func pairs(criteria []Criterion) []Pair {
	var out []Pair
	for _, h := range []Heuristic{PartialPath, FullPathOneDest, FullPathAllDests} {
		for _, c := range criteria {
			if h == FullPathAllDests && c == C1 {
				continue
			}
			out = append(out, Pair{Heuristic: h, Criterion: c})
		}
	}
	return out
}
