package core

import (
	"math"
	"testing"
	"time"

	"datastaging/internal/model"
)

func TestHeuristicAndCriterionStrings(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want string
	}{
		{PartialPath.String(), "partial"},
		{FullPathOneDest.String(), "full_one"},
		{FullPathAllDests.String(), "full_all"},
		{Heuristic(9).String(), "heuristic(9)"},
		{C1.String(), "C1"},
		{C4.String(), "C4"},
		{C5.String(), "C5"},
		{Criterion(9).String(), "criterion(9)"},
	} {
		if tc.s != tc.want {
			t.Errorf("got %q, want %q", tc.s, tc.want)
		}
	}
}

func TestEUWeights(t *testing.T) {
	eu := EUFromLog10(2)
	if eu.WE != 100 || eu.WU != 1 {
		t.Errorf("EUFromLog10(2): got %+v", eu)
	}
	if eu.IsExtreme() {
		t.Error("interior point reported extreme")
	}
	if !EUPriorityOnly.IsExtreme() || !EUUrgencyOnly.IsExtreme() {
		t.Error("extremes not reported extreme")
	}
	for _, tc := range []struct {
		eu   EUWeights
		want string
	}{
		{EUPriorityOnly, "inf"},
		{EUUrgencyOnly, "-inf"},
		{EUFromLog10(0), "0"},
		{EUFromLog10(-3), "-3"},
		{EUFromLog10(5), "5"},
	} {
		if got := tc.eu.Label(); got != tc.want {
			t.Errorf("Label(%+v): got %q, want %q", tc.eu, got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Heuristic: PartialPath, Criterion: C4, EU: EUFromLog10(1), Weights: model.Weights1x10x100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"zero heuristic", func(c *Config) { c.Heuristic = 0 }},
		{"big heuristic", func(c *Config) { c.Heuristic = 9 }},
		{"zero criterion", func(c *Config) { c.Criterion = 0 }},
		{"big criterion", func(c *Config) { c.Criterion = 9 }},
		{"excluded pairing", func(c *Config) { c.Heuristic = FullPathAllDests; c.Criterion = C1 }},
		{"no weights", func(c *Config) { c.Weights = nil }},
		{"negative WE", func(c *Config) { c.EU = EUWeights{WE: -1, WU: 1} }},
		{"both zero", func(c *Config) { c.EU = EUWeights{} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := good
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate should have failed")
			}
		})
	}
	// C3 and C5 ignore the EU weights entirely.
	for _, crit := range []Criterion{C3, C5} {
		c := Config{Heuristic: PartialPath, Criterion: crit, Weights: model.Weights1x5x10}
		if err := c.Validate(); err != nil {
			t.Errorf("%v with zero EU weights should validate: %v", crit, err)
		}
	}
}

func TestPairsEnumeratesEleven(t *testing.T) {
	pairs := Pairs()
	if len(pairs) != 11 {
		t.Fatalf("Pairs: got %d, want 11", len(pairs))
	}
	for _, pr := range pairs {
		if pr.Heuristic == FullPathAllDests && pr.Criterion == C1 {
			t.Error("excluded pairing present in Pairs()")
		}
		if pr.Criterion == C5 {
			t.Error("extension criterion present in the paper's Pairs()")
		}
	}
	ext := PairsWithExtensions()
	if len(ext) != 14 {
		t.Fatalf("PairsWithExtensions: got %d, want 14", len(ext))
	}
	c5s := 0
	for _, pr := range ext {
		if pr.Criterion == C5 {
			c5s++
		}
	}
	if c5s != 3 {
		t.Errorf("PairsWithExtensions: %d C5 pairs, want 3", c5s)
	}
}

func TestPairString(t *testing.T) {
	p := Pair{Heuristic: FullPathOneDest, Criterion: C4}
	if got := p.String(); got != "full_one/C4" {
		t.Errorf("Pair.String: got %q", got)
	}
}

func TestC5BoundedUrgency(t *testing.T) {
	// A candidate with one zero-slack low-weight destination must not
	// dominate a candidate with several relaxed high-weight destinations —
	// the exact failure mode the paper attributes to C3.
	tinySlack := candidate{dests: []destInfo{{weight: 1, slackSec: 0}}}
	heavy := candidate{dests: []destInfo{
		{weight: 100, slackSec: 1200},
		{weight: 100, slackSec: 1200},
	}}
	cfg5 := Config{Criterion: C5}
	tinyCost, _ := tinySlack.cost(cfg5)
	heavyCost, _ := heavy.cost(cfg5)
	if !(heavyCost < tinyCost) {
		t.Errorf("C5 should prefer the heavy candidate: %v vs %v", heavyCost, tinyCost)
	}
	// Under C3 the tiny-slack candidate wins on the unbounded ratio.
	cfg3 := Config{Criterion: C3}
	tinyCost3, _ := tinySlack.cost(cfg3)
	heavyCost3, _ := heavy.cost(cfg3)
	if !(tinyCost3 < heavyCost3) {
		t.Errorf("C3 fixture should show the blowup: %v vs %v", tinyCost3, heavyCost3)
	}
	// The urgency factor is bounded in (0, 1].
	for _, slack := range []float64{-5, 0, 1, 600, 1e9} {
		f := urgencyFactor(slack, defaultC5Tau)
		if f <= 0 || f > 1 {
			t.Errorf("urgencyFactor(%v) = %v outside (0,1]", slack, f)
		}
	}
	if urgencyFactor(0, defaultC5Tau) != 1 {
		t.Errorf("zero slack should give factor 1")
	}
	if got := urgencyFactor(defaultC5Tau, defaultC5Tau); got != 0.5 {
		t.Errorf("slack=τ should give 0.5, got %v", got)
	}
	// C5Tau is configurable; zero selects the default, negatives are
	// rejected by Validate.
	if (Config{}).c5TauSeconds() != defaultC5Tau {
		t.Error("zero C5Tau should select the default")
	}
	if (Config{C5Tau: 2 * time.Minute}).c5TauSeconds() != 120 {
		t.Error("explicit C5Tau ignored")
	}
	bad := Config{Heuristic: PartialPath, Criterion: C5, Weights: model.Weights1x5x10, C5Tau: -time.Second}
	if err := bad.Validate(); err == nil {
		t.Error("negative C5Tau accepted")
	}
}

func TestDestInfoCost1(t *testing.T) {
	d := destInfo{weight: 10, slackSec: 60}
	eu := EUWeights{WE: 2, WU: 1}
	if got := d.cost1(eu); got != -2*10+60 {
		t.Errorf("cost1: got %v, want 40", got)
	}
	if got := d.urgency(); got != -60 {
		t.Errorf("urgency: got %v, want -60", got)
	}
}

func TestCandidateCostCriteria(t *testing.T) {
	c := candidate{dests: []destInfo{
		{weight: 10, slackSec: 100},
		{weight: 1, slackSec: 5},
	}}
	eu := EUWeights{WE: 1, WU: 1}

	// C1: min over per-dest costs: min(-10+100, -1+5) = 4.
	cost, bestDest := c.cost(Config{Criterion: C1, EU: eu})
	if cost != 4 || bestDest != 1 {
		t.Errorf("C1: got (%v, %d), want (4, 1)", cost, bestDest)
	}
	// C2: -ΣW - max urgency = -11 - (-5) = -6.
	if cost, _ := c.cost(Config{Criterion: C2, EU: eu}); cost != -6 {
		t.Errorf("C2: got %v, want -6", cost)
	}
	// C3: Σ w/urgency = 10/-100 + 1/-5 = -0.3.
	if cost, _ := c.cost(Config{Criterion: C3, EU: eu}); math.Abs(cost-(-0.3)) > 1e-12 {
		t.Errorf("C3: got %v, want -0.3", cost)
	}
	// C4: -ΣW - Σurgency = -11 - (-105) = 94.
	if cost, _ := c.cost(Config{Criterion: C4, EU: eu}); cost != 94 {
		t.Errorf("C4: got %v, want 94", cost)
	}
}

func TestC3ZeroSlackFinite(t *testing.T) {
	c := candidate{dests: []destInfo{{weight: 10, slackSec: 0}}}
	cost, _ := c.cost(Config{Criterion: C3})
	if math.IsInf(cost, 0) || math.IsNaN(cost) {
		t.Errorf("C3 with zero slack must be finite, got %v", cost)
	}
	if cost >= 0 {
		t.Errorf("C3 with zero slack should be hugely negative (most preferred), got %v", cost)
	}
}

func TestC2VsC4PaperExample(t *testing.T) {
	// Paper §4.8: item A has four identically urgent destinations, item B
	// has one urgent and three relaxed. C2 cannot differentiate; C4 must
	// prefer item A.
	urgent, relaxed := 10.0, 1000.0
	a := candidate{item: 0, dests: []destInfo{
		{weight: 5, slackSec: urgent}, {weight: 5, slackSec: urgent},
		{weight: 5, slackSec: urgent}, {weight: 5, slackSec: urgent},
	}}
	bCand := candidate{item: 1, dests: []destInfo{
		{weight: 5, slackSec: urgent}, {weight: 5, slackSec: relaxed},
		{weight: 5, slackSec: relaxed}, {weight: 5, slackSec: relaxed},
	}}
	eu := EUWeights{WE: 1, WU: 1}

	costA2, _ := a.cost(Config{Criterion: C2, EU: eu})
	costB2, _ := bCand.cost(Config{Criterion: C2, EU: eu})
	if costA2 != costB2 {
		t.Errorf("C2 should not differentiate: %v vs %v", costA2, costB2)
	}
	costA4, _ := a.cost(Config{Criterion: C4, EU: eu})
	costB4, _ := bCand.cost(Config{Criterion: C4, EU: eu})
	if !(costA4 < costB4) {
		t.Errorf("C4 should prefer the uniformly urgent item: %v vs %v", costA4, costB4)
	}
}

func TestSelectBestTieBreaks(t *testing.T) {
	mk := func(item model.ItemID, to model.MachineID, link model.LinkID) candidate {
		c := candidate{item: item, dests: []destInfo{{weight: 1, slackSec: 10}}}
		c.hop.To = to
		c.hop.Link = link
		return c
	}
	cfg := Config{Criterion: C1, EU: EUWeights{WE: 1, WU: 1}}
	// All equal cost; lowest (item, machine, link) wins regardless of order.
	cands := []candidate{mk(2, 0, 0), mk(1, 3, 2), mk(1, 3, 1), mk(1, 5, 0)}
	bi, _ := selectBest(cands, cfg)
	if cands[bi].item != 1 || cands[bi].hop.To != 3 || cands[bi].hop.Link != 1 {
		t.Errorf("tie-break: got item %d to %d link %d",
			cands[bi].item, cands[bi].hop.To, cands[bi].hop.Link)
	}
	// A strictly cheaper candidate wins no matter its ids.
	cheap := mk(9, 9, 9)
	cheap.dests[0].weight = 100
	cands = append(cands, cheap)
	bi, _ = selectBest(cands, cfg)
	if cands[bi].item != 9 {
		t.Errorf("cheapest should win: got item %d", cands[bi].item)
	}
}
