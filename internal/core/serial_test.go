package core

import (
	"testing"

	"datastaging/internal/gen"
	"datastaging/internal/model"
)

// TestSerialTransfersEndToEnd runs every pair with the §3 future-work port
// serialization enabled: the plan cache must stay exact (identical output
// to the paranoid re-run, including the conservative machine-port conflict
// tracking) and serialization can only reduce the achieved value.
func TestSerialTransfersEndToEnd(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
	w := model.Weights1x10x100
	for seed := int64(1); seed <= 2; seed++ {
		parallel := gen.MustGenerate(p, seed)
		serial := gen.MustGenerate(p, seed)
		serial.SerialTransfers = true
		for _, pair := range Pairs() {
			cfg := Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion,
				EU: EUFromLog10(2), Weights: w}

			cached, err := Schedule(serial, cfg)
			if err != nil {
				t.Fatalf("seed %d %v serial: %v", seed, pair, err)
			}
			naive, err := scheduleParanoid(serial, cfg)
			if err != nil {
				t.Fatalf("seed %d %v serial paranoid: %v", seed, pair, err)
			}
			if len(cached.Transfers) != len(naive.Transfers) {
				t.Fatalf("seed %d %v: serial cache diverged: %d vs %d transfers",
					seed, pair, len(cached.Transfers), len(naive.Transfers))
			}
			for i := range cached.Transfers {
				if cached.Transfers[i] != naive.Transfers[i] {
					t.Fatalf("seed %d %v: serial transfer %d differs", seed, pair, i)
				}
			}

			free, err := Schedule(parallel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if cached.WeightedValue(serial, w) > free.WeightedValue(parallel, w) {
				t.Errorf("seed %d %v: serialization increased value (%v > %v)",
					seed, pair, cached.WeightedValue(serial, w), free.WeightedValue(parallel, w))
			}
		}
	}
}

// TestSerialScheduleHasExclusivePorts spot-checks the schedule itself: no
// machine sends (or receives) two transfers at once.
func TestSerialScheduleHasExclusivePorts(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 10, Max: 10}
	sc := gen.MustGenerate(p, 5)
	sc.SerialTransfers = true
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	res, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Transfers {
		for _, b := range res.Transfers[i+1:] {
			overlap := a.Start < b.Arrival && b.Start < a.Arrival
			if !overlap {
				continue
			}
			if a.From == b.From {
				t.Fatalf("machine %d double-sends: %+v and %+v", a.From, a, b)
			}
			if a.To == b.To {
				t.Fatalf("machine %d double-receives: %+v and %+v", a.To, a, b)
			}
		}
	}
}
