package core

import (
	"fmt"
	"math/rand"
	"time"

	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/state"
)

// RandomDijkstra is the paper's tighter lower bound (§5.2,
// "random_Dijkstra"): identical to the partial path heuristic except that
// each iteration commits an arbitrary valid communication step instead of
// the cheapest one. It demonstrates the value of cost-guided selection.
func RandomDijkstra(sc *scenario.Scenario, weights model.Weights, seed int64) (*Result, error) {
	begin := time.Now()
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{Heuristic: PartialPath, Criterion: C1, EU: EUFromLog10(0), Weights: weights}
	p := newPlanner(sc, cfg)
	for {
		cands := p.candidates()
		if len(cands) == 0 {
			break
		}
		c := &cands[rng.Intn(len(cands))]
		if err := p.commitHop(c.item, c.hop); err != nil {
			return nil, fmt.Errorf("core: random_Dijkstra iteration %d: %w", p.stats.Iterations, err)
		}
		p.stats.Iterations++
	}
	return p.result(cfg, begin), nil
}

// SingleDijkstraRandom is the paper's looser lower bound (§5.2,
// "single_Dij_random"): Dijkstra runs once per item against the pristine
// network (as if the item were alone), then the precomputed paths are
// committed item by item in an arbitrary order; any transfer that no longer
// fits — its link slot taken, the capacity consumed, or the staged copy
// missing — drops the request. It demonstrates the value of re-running
// Dijkstra with updated resource information.
func SingleDijkstraRandom(sc *scenario.Scenario, weights model.Weights, seed int64) (*Result, error) {
	begin := time.Now()
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{Heuristic: PartialPath, Criterion: C1, EU: EUFromLog10(0), Weights: weights}
	st := state.New(sc)
	pristine := state.New(sc)
	var stats Stats
	for _, idx := range rng.Perm(len(sc.Items)) {
		item := model.ItemID(idx)
		it := sc.Item(item)
		pl := dijkstra.Compute(pristine, item)
		stats.DijkstraRuns++
		for k := range it.Requests {
			rq := &it.Requests[k]
			at := pl.Arrival[rq.Machine]
			if !pl.Reachable(rq.Machine) || at.After(rq.Deadline) {
				continue // unsatisfiable even alone in the network
			}
			hops, ok := pl.PathTo(rq.Machine)
			if !ok {
				continue
			}
			for _, h := range hops {
				if st.Holds(item, h.To) {
					continue // shared prefix with an earlier request's path
				}
				if _, err := st.Commit(item, h.Link, h.Start); err != nil {
					break // conflict: the request is dropped (§5.2)
				}
				stats.Commits++
			}
			stats.Iterations++
		}
	}
	return &Result{
		Config:    cfg,
		Transfers: st.Transfers(),
		Satisfied: st.Satisfied(),
		Stats:     stats,
		Elapsed:   time.Since(begin),
	}, nil
}

// PriorityFirst is the simplified scheme of §5.4: every high-priority
// request is scheduled (as a full path, with up-to-date shortest-path
// information) before any medium-priority one, and every medium before any
// low. Scheduling decisions are based *only* on the priority of individual
// requests: within one class, satisfiable requests are served in a fixed
// arbitrary order (item, then destination), blind to urgency. This is the
// paper's "cost-guided (versus arbitrary)" comparison scheme — cost-guided
// because it still routes along current shortest paths and skips
// unsatisfiable requests (unlike random_Dijkstra), but priority-only in its
// ordering. The paper reports that the heuristic/cost-criterion pairs beat
// it in all cases.
func PriorityFirst(sc *scenario.Scenario, weights model.Weights) (*Result, error) {
	begin := time.Now()
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C1, EU: EUPriorityOnly, Weights: weights}
	p := newPlanner(sc, cfg)
	maxPri := model.Priority(len(weights) - 1)
	for class := maxPri; class >= 0; class-- {
		for {
			cands := p.candidates()
			item, dest, found := firstOfClass(sc, cands, class)
			if !found {
				break
			}
			if err := p.commitPath(item, dest); err != nil {
				return nil, fmt.Errorf("core: priority_first class %v: %w", class, err)
			}
			p.stats.Iterations++
		}
	}
	return p.result(cfg, begin), nil
}

// firstOfClass finds the satisfiable destination of the given priority
// class that comes first in (item, destination machine) order.
func firstOfClass(sc *scenario.Scenario, cands []candidate, class model.Priority) (model.ItemID, model.MachineID, bool) {
	var (
		bestItem model.ItemID
		bestDest model.MachineID
		found    bool
	)
	for i := range cands {
		for _, d := range cands[i].dests {
			if sc.Request(d.req).Priority != class {
				continue
			}
			if !found || cands[i].item < bestItem ||
				(cands[i].item == bestItem && d.machine < bestDest) {
				bestItem = cands[i].item
				bestDest = d.machine
				found = true
			}
		}
	}
	return bestItem, bestDest, found
}
