package core

import (
	"testing"
	"testing/quick"

	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/obs"
)

func smallParams() gen.Params {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 5, Max: 7}
	p.RequestsPerMachine = gen.IntRange{Min: 3, Max: 6}
	return p
}

// statsFromTrace re-derives every deterministic Stats counter from the
// emitted event stream. This is the trace/stats equivalence oracle: the
// two are maintained independently (counters inline in the planner, events
// through the tracer), so agreement means the trace is a faithful record
// of the run.
func statsFromTrace(events []obs.Event) Stats {
	var st Stats
	for _, e := range events {
		switch e.Kind {
		case obs.EvIteration:
			st.Iterations++
		case obs.EvForestComputed:
			st.DijkstraRuns++
		case obs.EvForestCacheHit:
			st.CacheHits++
		case obs.EvForestInvalidated:
			if e.Reason == obs.ReasonConflict {
				st.Invalidations++
			}
		case obs.EvTransferBooked:
			st.Commits++
		case obs.EvParallelBatch:
			st.ParallelBatches++
		case obs.EvRelaxBatch:
			st.RelaxBatches++
			st.BatchedRuns += e.N
		}
	}
	return st
}

// TestQuickTraceStatsEquivalence: for any generated scenario and any
// heuristic/criterion pair (at any replan parallelism, cached or
// paranoid), the counters re-derived from the event trace must equal the
// counters the scheduler reports.
func TestQuickTraceStatsEquivalence(t *testing.T) {
	params := smallParams()
	pairs := PairsWithExtensions()
	sweep := []EUWeights{EUUrgencyOnly, EUFromLog10(0), EUFromLog10(2), EUPriorityOnly}
	parallelism := []int{1, 2, 4}

	property := func(seed int64, pairIdx, euIdx, parIdx uint8, paranoid bool) bool {
		sc := gen.MustGenerate(params, seed%4096)
		pair := pairs[int(pairIdx)%len(pairs)]
		mem := &obs.MemorySink{}
		cfg := Config{
			Heuristic:   pair.Heuristic,
			Criterion:   pair.Criterion,
			EU:          sweep[int(euIdx)%len(sweep)],
			Weights:     model.Weights1x10x100,
			Parallelism: parallelism[int(parIdx)%len(parallelism)],
			Paranoid:    paranoid,
			Obs:         obs.NewTraced(mem),
		}
		res, err := Schedule(sc, cfg)
		if err != nil {
			t.Errorf("seed %d %v: %v", seed, pair, err)
			return false
		}
		got := statsFromTrace(mem.Events())
		want := res.Stats
		want.ReplanWall = 0 // timing-dependent, not part of the oracle
		if got != want {
			t.Errorf("seed %d %v par=%d paranoid=%v:\n  trace-derived %+v\n  reported      %+v",
				seed, pair, cfg.Parallelism, paranoid, got, want)
			return false
		}
		// The registry must agree with both.
		snap := cfg.Obs.Snapshot()
		if snap.Counters["core.commits_total"] != int64(want.Commits) ||
			snap.Counters["core.dijkstra_runs_total"] != int64(want.DijkstraRuns) ||
			snap.Counters["core.cache_hits_total"] != int64(want.CacheHits) ||
			snap.Counters["core.invalidations_total"] != int64(want.Invalidations) ||
			snap.Counters["core.iterations_total"] != int64(want.Iterations) ||
			snap.Counters["core.parallel_batches_total"] != int64(want.ParallelBatches) ||
			snap.Counters["core.batched_runs_total"] != int64(want.BatchedRuns) ||
			snap.Counters["core.relax_batches_total"] != int64(want.RelaxBatches) {
			t.Errorf("seed %d %v: registry counters disagree with Stats: %+v vs %+v",
				seed, pair, snap.Counters, want)
			return false
		}
		// Satisfaction events must match the result's satisfied set.
		if n := mem.Count(obs.EvRequestSatisfied); n != len(res.Satisfied) {
			t.Errorf("seed %d %v: %d request_satisfied events, %d satisfied requests",
				seed, pair, n, len(res.Satisfied))
			return false
		}
		return true
	}
	maxCount := 40
	if testing.Short() {
		maxCount = 10
	}
	if err := quick.Check(property, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// TestObsDisabledIsInert pins the zero-config contract: a nil Obs changes
// nothing about the schedule or the stats.
func TestObsDisabledIsInert(t *testing.T) {
	sc := gen.MustGenerate(smallParams(), 3)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}
	plain, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewTraced(&obs.MemorySink{})
	traced, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Transfers) != len(traced.Transfers) {
		t.Fatalf("observability changed the schedule: %d vs %d transfers",
			len(plain.Transfers), len(traced.Transfers))
	}
	for i := range plain.Transfers {
		if plain.Transfers[i] != traced.Transfers[i] {
			t.Fatalf("transfer %d differs under observation", i)
		}
	}
	p, tr := plain.Stats, traced.Stats
	p.ReplanWall, tr.ReplanWall = 0, 0
	if p != tr {
		t.Fatalf("observability changed the stats: %+v vs %+v", p, tr)
	}
	if plain.Stats.ReplanWall <= 0 {
		t.Error("ReplanWall not accumulated with observability disabled")
	}
}

// TestObsSlotQueryCounters checks the state layer's slot-query counters:
// every run issues slot queries, and in serialized-transfer mode every one
// of them must take the fused intersect-fit fast path (no intersection
// sets are ever materialized).
func TestObsSlotQueryCounters(t *testing.T) {
	sc := gen.MustGenerate(smallParams(), 9)
	cfg := Config{Heuristic: FullPathOneDest, Criterion: C4, EU: EUFromLog10(2), Weights: model.Weights1x10x100}

	o := obs.New()
	cfg.Obs = o
	if _, err := Schedule(sc, cfg); err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()
	queries := snap.Counters["state.slot_query_total"]
	fast := snap.Counters["state.slot_fastpath_total"]
	if queries <= 0 {
		t.Fatal("no slot queries counted")
	}
	if fast < 0 || fast > queries {
		t.Fatalf("fastpath count %d out of range [0, %d]", fast, queries)
	}

	serial := *sc
	serial.SerialTransfers = true
	o2 := obs.New()
	cfg.Obs = o2
	if _, err := Schedule(&serial, cfg); err != nil {
		t.Fatal(err)
	}
	snap2 := o2.Snapshot()
	queries2 := snap2.Counters["state.slot_query_total"]
	fast2 := snap2.Counters["state.slot_fastpath_total"]
	if queries2 <= 0 {
		t.Fatal("no slot queries counted in serialized mode")
	}
	if fast2 != queries2 {
		t.Fatalf("serialized mode: %d of %d slot queries took the fused fast path, want all", fast2, queries2)
	}
}

// TestObsSatisfactionSlack checks the slack histogram sees exactly the
// satisfied requests, with plausible values.
func TestObsSatisfactionSlack(t *testing.T) {
	sc := gen.MustGenerate(smallParams(), 11)
	o := obs.New()
	cfg := Config{Heuristic: FullPathAllDests, Criterion: C4, EU: EUFromLog10(2),
		Weights: model.Weights1x10x100, Obs: o}
	res, err := Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()
	h := snap.Histograms["core.satisfaction_slack_seconds"]
	if h.Count != int64(len(res.Satisfied)) {
		t.Errorf("slack observations %d != satisfied %d", h.Count, len(res.Satisfied))
	}
	if h.Count > 0 && h.Sum < 0 {
		t.Errorf("negative total slack %v", h.Sum)
	}
	if got := snap.Counters["core.requests_satisfied_total"]; got != int64(len(res.Satisfied)) {
		t.Errorf("requests_satisfied_total = %d, want %d", got, len(res.Satisfied))
	}
	// Scratch metrics flushed at end of run.
	if snap.Counters["dijkstra.computes_total"] <= 0 {
		t.Error("dijkstra.computes_total not flushed")
	}
	if snap.Gauges["dijkstra.heap_high_water"] <= 0 {
		t.Error("dijkstra.heap_high_water not flushed")
	}
	// Replan phase timer must land in the registry and match ReplanWall.
	rh := snap.Histograms["core.replan_seconds"]
	if rh.Count == 0 {
		t.Error("core.replan_seconds histogram empty")
	}
	if want := res.Stats.ReplanWall.Seconds(); rh.Sum < 0.5*want || rh.Sum > 2*want+1e-6 {
		t.Errorf("replan histogram sum %v far from ReplanWall %v", rh.Sum, want)
	}
}
