package core

import (
	"fmt"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Result is the outcome of one scheduling run.
type Result struct {
	// Config echoes the pair that produced the schedule.
	Config Config
	// Transfers is the committed communication schedule in commit order.
	Transfers []state.Transfer
	// Satisfied maps every satisfied request to its arrival instant.
	Satisfied map[model.RequestID]simtime.Instant
	// Stats counts the work performed.
	Stats Stats
	// Elapsed is the wall-clock heuristic execution time.
	Elapsed time.Duration
}

// WeightedValue returns the paper's objective -E[S]: the sum of W[priority]
// over satisfied requests under the given weights.
func (r *Result) WeightedValue(sc *scenario.Scenario, w model.Weights) float64 {
	var sum float64
	for id := range r.Satisfied {
		sum += w.Of(sc.Request(id).Priority)
	}
	return sum
}

// Schedule runs the configured heuristic/cost-criterion pair on the
// scenario and returns the resulting communication schedule. The scenario
// is only read; every run starts from the pristine resource state.
func Schedule(sc *scenario.Scenario, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	begin := time.Now()
	p := newPlanner(sc, cfg)
	return p.run(cfg, begin)
}

// ScheduleState runs the heuristic loop against an existing state,
// extending whatever is already committed there. The dynamic simulator
// uses this to re-plan at each event epoch: the state carries prior
// transfers, the planning floor, withheld items, and link outages.
func ScheduleState(st *state.State, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	begin := time.Now()
	p := plannerOn(st, cfg)
	return p.run(cfg, begin)
}

func (p *planner) run(cfg Config, begin time.Time) (*Result, error) {
	for {
		cands := p.candidates()
		if len(cands) == 0 {
			break
		}
		p.hCandidates.Observe(float64(len(cands)))
		p.mCostEvals.Add(int64(len(cands)))
		bi, bd := selectBest(cands, cfg)
		c := &cands[bi]
		var err error
		switch cfg.Heuristic {
		case PartialPath:
			err = p.commitHop(c.item, c.hop)
		case FullPathOneDest:
			err = p.commitPath(c.item, c.dests[bd].machine)
		case FullPathAllDests:
			err = p.commitTree(c.item, c)
		}
		if err != nil {
			// The planner only proposes steps its forests prove feasible;
			// a commit failure is an invariant violation, not a scheduling
			// outcome.
			return nil, fmt.Errorf("core: %v iteration %d: %w", cfg.Heuristic, p.stats.Iterations, err)
		}
		p.stats.Iterations++
		p.mIterations.Inc()
		if p.tr.Enabled() {
			p.tr.Emit(obs.Event{Kind: obs.EvIteration, N: len(cands)})
		}
	}
	return p.result(cfg, begin), nil
}

func (p *planner) result(cfg Config, begin time.Time) *Result {
	p.stats.ReplanWall = p.replanTimer.Total()
	p.flushScratchMetrics()
	return &Result{
		Config:    cfg,
		Transfers: p.st.Transfers(),
		Satisfied: p.st.Satisfied(),
		Stats:     p.stats,
		Elapsed:   time.Since(begin),
	}
}
