package core

import (
	"math"

	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
)

// minSlackSeconds floors the magnitude of the urgency term in C3's ratio so
// a zero-slack request divides by a tiny negative number instead of zero
// (the paper itself observes C3 suffers from "one very small Urgency"
// dominating the cost — we keep that behavior but make it finite).
const minSlackSeconds = 1e-9

// destInfo is one satisfiable, not-yet-satisfied request reachable through
// a candidate's next machine: the ingredients of Efp and Urgency (§4.8).
type destInfo struct {
	req     model.RequestID
	machine model.MachineID
	// weight is W[Priority[i,j]]; with Sat = 1 this is Efp[i,r](j).
	weight float64
	// slackSec is Rft[i,j] - A_T[i,j] in seconds, >= 0 for a satisfiable
	// request; Urgency[i,r](j) = -slackSec.
	slackSec float64
}

func (d destInfo) urgency() float64 { return -d.slackSec }

// cost1 is C1 for this single destination:
// -W_E*Efp - W_U*Urgency = -W_E*weight + W_U*slack.
func (d destInfo) cost1(eu EUWeights) float64 {
	return -eu.WE*d.weight + eu.WU*d.slackSec
}

// candidate is one valid next communication step: the first hop of item's
// current shortest-path forest toward the next machine hop.To, annotated
// with Drq[i, r] — every satisfiable destination whose path starts with
// that hop.
type candidate struct {
	item  model.ItemID
	hop   dijkstra.Hop
	dests []destInfo
}

// cost evaluates the configured criterion for the candidate and returns the
// criterion value together with the index of the candidate's best single
// destination — the criterion's own value restricted to that destination —
// which FullPathOneDest uses as its "lowest cost destination". Ranking
// destinations by the criterion itself keeps C3 and C5 independent of the
// E-U ratio under every heuristic, the property the paper highlights for
// C3 (§5.4).
func (c *candidate) cost(cfg Config) (float64, int) {
	best := 0
	bestSingle := math.Inf(1)
	for j, d := range c.dests {
		var v float64
		switch cfg.Criterion {
		case C3:
			urg := d.urgency()
			if urg > -minSlackSeconds {
				urg = -minSlackSeconds
			}
			v = d.weight / urg
		case C5:
			v = -d.weight * urgencyFactor(d.slackSec, cfg.c5TauSeconds())
		default:
			v = d.cost1(cfg.EU)
		}
		if v < bestSingle {
			bestSingle = v
			best = j
		}
	}
	switch cfg.Criterion {
	case C1:
		// C1 scores a single (item, destination) pair; the candidate's C1
		// value is its best pair.
		return bestSingle, best
	case C2:
		// -W_E * ΣEfp - W_U * max Urgency: the most urgent satisfiable
		// destination carries the urgency term.
		var sumW float64
		maxUrg := math.Inf(-1)
		for _, d := range c.dests {
			sumW += d.weight
			if u := d.urgency(); u > maxUrg {
				maxUrg = u
			}
		}
		return -cfg.EU.WE*sumW - cfg.EU.WU*maxUrg, best
	case C3:
		// Σ Efp/Urgency: priority normalized by urgency, summed over the
		// satisfiable destinations; independent of W_E and W_U.
		var sum float64
		for _, d := range c.dests {
			urg := d.urgency()
			if urg > -minSlackSeconds {
				urg = -minSlackSeconds
			}
			sum += d.weight / urg
		}
		return sum, best
	case C4:
		// -W_E * ΣEfp - W_U * ΣUrgency: both terms summed.
		var sumW, sumUrg float64
		for _, d := range c.dests {
			sumW += d.weight
			sumUrg += d.urgency()
		}
		return -cfg.EU.WE*sumW - cfg.EU.WU*sumUrg, best
	case C5:
		// Extension: -Σ Efp · τ/(τ + slack) — C3's priority-urgency
		// association with the urgency influence bounded, so one
		// near-zero slack scales its own weight by at most 1 instead of
		// dominating the whole sum. E-U independent, like C3.
		tau := cfg.c5TauSeconds()
		var sum float64
		for _, d := range c.dests {
			sum += d.weight * urgencyFactor(d.slackSec, tau)
		}
		return -sum, best
	default:
		return math.Inf(1), best
	}
}

// defaultC5Tau is the default slack scale of the C5 urgency factor: a
// request with ten minutes of slack contributes half its weight, a
// zero-slack request its full weight.
const defaultC5Tau = 600.0 // seconds

func (c Config) c5TauSeconds() float64 {
	if c.C5Tau > 0 {
		return c.C5Tau.Seconds()
	}
	return defaultC5Tau
}

func urgencyFactor(slackSec, tau float64) float64 {
	if slackSec < 0 {
		slackSec = 0
	}
	return tau / (tau + slackSec)
}

// selectBest returns the index of the minimum-cost candidate, breaking ties
// deterministically by (item, next machine, link) so runs are reproducible.
// The second result is the best-destination index within that candidate.
func selectBest(cands []candidate, cfg Config) (int, int) {
	bestIdx, bestDest := -1, 0
	bestCost := math.Inf(1)
	for i := range cands {
		cost, destIdx := cands[i].cost(cfg)
		if bestIdx >= 0 && !(cost < bestCost) {
			if cost > bestCost {
				continue
			}
			// Tie: keep the earlier (item, machine, link) triple.
			a, b := &cands[i], &cands[bestIdx]
			if a.item > b.item ||
				(a.item == b.item && a.hop.To > b.hop.To) ||
				(a.item == b.item && a.hop.To == b.hop.To && a.hop.Link >= b.hop.Link) {
				continue
			}
		}
		bestIdx, bestDest, bestCost = i, destIdx, cost
	}
	return bestIdx, bestDest
}
