package core

import (
	"fmt"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Planner is a persistent planner for incremental admission epochs: unlike
// Schedule/ScheduleState, which build a fresh plan cache per call, a Planner
// keeps its state, plan cache, dead-item flags, and scratch memory alive
// across any number of Epoch calls, so each epoch costs O(delta) — the new
// arrivals plus whatever cached forests the epoch genuinely disturbed — not
// O(world age).
//
// The carried caches stay exact because epochs only move the world forward:
// the planning floor advances monotonically (forests whose planned hops all
// start at or after the new floor recompute bit-identically, see
// dijkstra.Plan.EarliestHopStart), resources only shrink (so dead items
// stay dead and cached forests obey the usual conflict-invalidation rule),
// and the scenario only grows by appended items (Epoch picks them up via
// State.GrowItems). Anything that rewrites the past — link failure
// backdated before committed transfers, history splices, rollbacks — is
// outside this contract; callers (internal/dynamic.Engine) must rebuild the
// Planner from a replayed state instead.
//
// A Planner is not safe for concurrent use.
type Planner struct {
	p *planner
}

// NewPlannerOn builds a persistent planner over an existing state. The
// state is owned by the planner from here on: the caller may still read it
// (and apply withhold/release/commit deltas between epochs) but must not
// rewind it.
func NewPlannerOn(st *state.State, cfg Config) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Planner{p: plannerOn(st, cfg)}, nil
}

// State returns the live state the planner schedules against.
func (pp *Planner) State() *state.State { return pp.p.st }

// ItemRetired reports whether the planner has permanently retired the item:
// every open request is either satisfied or proven unsatisfiable at all
// future floors (resources only shrink, so dead items never revive).
// Capacity-blocked items are never retired — a later floor can shorten a
// hold interval back into feasibility — so a false result means the item
// may still be scheduled by a future epoch. Items the planner has not yet
// tracked are not retired.
func (pp *Planner) ItemRetired(item model.ItemID) bool {
	p := pp.p
	return int(item) < len(p.dead) && p.dead[item]
}

// Epoch advances the planning floor to at and runs the heuristic loop over
// the current backlog. The returned Result sees the whole world (Transfers
// and Satisfied are cumulative, like a full replay would produce) but its
// Stats count only this epoch's work. at must not precede the current
// floor.
func (pp *Planner) Epoch(at simtime.Instant) (*Result, error) {
	p := pp.p
	if at < p.st.Floor() {
		return nil, fmt.Errorf("core: epoch at %v precedes planning floor %v", at, p.st.Floor())
	}
	begin := time.Now()
	p.st.GrowItems()
	p.grow()
	p.advanceFloor(at)
	prev := p.stats
	res, err := p.run(p.cfg, begin)
	if err != nil {
		return nil, err
	}
	res.Stats = subStats(res.Stats, prev)
	return res, nil
}

// subStats returns the field-wise difference cur − prev. Every Stats field
// is an additive accumulator (ReplanWall is the phase timer's cumulative
// total), so the difference is exactly one epoch's work.
func subStats(cur, prev Stats) Stats {
	return Stats{
		DijkstraRuns:    cur.DijkstraRuns - prev.DijkstraRuns,
		CacheHits:       cur.CacheHits - prev.CacheHits,
		Invalidations:   cur.Invalidations - prev.Invalidations,
		Iterations:      cur.Iterations - prev.Iterations,
		Commits:         cur.Commits - prev.Commits,
		ReplanWall:      cur.ReplanWall - prev.ReplanWall,
		ParallelBatches: cur.ParallelBatches - prev.ParallelBatches,
		BatchedRuns:     cur.BatchedRuns - prev.BatchedRuns,
		RelaxBatches:    cur.RelaxBatches - prev.RelaxBatches,
	}
}
