// Package scenario bundles a complete instance of the basic data staging
// problem — the network, every requested data item, and the global
// scheduling parameters — together with JSON serialization so instances can
// be generated once and replayed across schedulers.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

// Scenario is one instance of the basic data staging problem (paper §3).
type Scenario struct {
	// Name labels the instance in reports (e.g. "badd-seed42").
	Name string `json:"name,omitempty"`
	// Network is the communication system: machines and virtual links.
	Network *model.Network `json:"network"`
	// Items are the requested data items with their sources and requests.
	Items []model.Item `json:"items"`
	// GarbageCollect is γ: how long after an item's latest deadline
	// intermediate copies are removed (§4.4). The paper's evaluation uses
	// six minutes.
	GarbageCollect time.Duration `json:"garbageCollect"`
	// Horizon is the end of the simulated period (the paper's link windows
	// span a 24 h day). Informational; copies at sources and destinations
	// are modeled as held forever.
	Horizon simtime.Instant `json:"horizon"`
	// SerialTransfers, when true, relaxes the paper's §3 simultaneity
	// assumption: each machine can send at most one item at a time and
	// receive at most one at a time, so a transfer occupies the sender's
	// send port and the receiver's receive port for its whole duration in
	// addition to the link. The paper's model (and evaluation) has this
	// off; it is this library's implementation of the §3 future work.
	SerialTransfers bool `json:"serialTransfers,omitempty"`
}

// Validate checks the whole instance: a valid network plus item invariants —
// positional IDs, positive sizes, at least one source and one request each,
// machines in range, a destination is never also a source of the same item
// (§5.3), at most one request per machine per item (§3), non-negative
// priorities, and deadlines after the epoch.
func (s *Scenario) Validate() error {
	if s.Network == nil {
		return fmt.Errorf("scenario: nil network")
	}
	if err := s.Network.Validate(); err != nil {
		return err
	}
	m := s.Network.NumMachines()
	for i := range s.Items {
		if err := s.validateItem(i, m); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scenario) validateItem(i, numMachines int) error {
	it := &s.Items[i]
	if int(it.ID) != i {
		return fmt.Errorf("scenario: item at index %d has ID %d", i, it.ID)
	}
	if it.SizeBytes <= 0 {
		return fmt.Errorf("scenario: item %d has non-positive size %d", i, it.SizeBytes)
	}
	if len(it.Sources) == 0 {
		return fmt.Errorf("scenario: item %d has no sources", i)
	}
	if len(it.Requests) == 0 {
		return fmt.Errorf("scenario: item %d has no requests", i)
	}
	sourceMachines := make(map[model.MachineID]bool, len(it.Sources))
	for _, src := range it.Sources {
		if int(src.Machine) < 0 || int(src.Machine) >= numMachines {
			return fmt.Errorf("scenario: item %d source machine %d out of range", i, src.Machine)
		}
		if sourceMachines[src.Machine] {
			return fmt.Errorf("scenario: item %d has duplicate source machine %d", i, src.Machine)
		}
		sourceMachines[src.Machine] = true
	}
	destMachines := make(map[model.MachineID]bool, len(it.Requests))
	for k, rq := range it.Requests {
		if int(rq.Machine) < 0 || int(rq.Machine) >= numMachines {
			return fmt.Errorf("scenario: item %d request %d machine out of range", i, k)
		}
		if sourceMachines[rq.Machine] {
			return fmt.Errorf("scenario: item %d request %d destination %d is also a source", i, k, rq.Machine)
		}
		if destMachines[rq.Machine] {
			return fmt.Errorf("scenario: item %d has two requests from machine %d", i, rq.Machine)
		}
		destMachines[rq.Machine] = true
		if rq.Priority < 0 {
			return fmt.Errorf("scenario: item %d request %d has negative priority", i, k)
		}
		if rq.Deadline <= 0 {
			return fmt.Errorf("scenario: item %d request %d deadline %v not after epoch", i, k, rq.Deadline)
		}
	}
	return nil
}

// NumRequests returns the total number of data requests across all items.
func (s *Scenario) NumRequests() int {
	total := 0
	for i := range s.Items {
		total += len(s.Items[i].Requests)
	}
	return total
}

// TotalWeight returns the sum of W[priority] over every request: the
// paper's loose upper bound (everything satisfied).
func (s *Scenario) TotalWeight(w model.Weights) float64 {
	var sum float64
	for i := range s.Items {
		for _, rq := range s.Items[i].Requests {
			sum += w.Of(rq.Priority)
		}
	}
	return sum
}

// Requests enumerates every RequestID in the scenario in (item, index)
// order.
func (s *Scenario) Requests() []model.RequestID {
	out := make([]model.RequestID, 0, s.NumRequests())
	for i := range s.Items {
		for k := range s.Items[i].Requests {
			out = append(out, model.RequestID{Item: model.ItemID(i), Index: k})
		}
	}
	return out
}

// Request resolves a RequestID to the underlying request.
func (s *Scenario) Request(id model.RequestID) *model.Request {
	return &s.Items[id.Item].Requests[id.Index]
}

// Item returns the item with the given ID.
func (s *Scenario) Item(id model.ItemID) *model.Item { return &s.Items[id] }

// GCInstant returns the garbage-collection instant for item it: γ after its
// latest deadline. Copies at intermediate machines are reserved until this
// instant.
func (s *Scenario) GCInstant(it *model.Item) simtime.Instant {
	return it.LatestDeadline().Add(s.GarbageCollect)
}

// Stats summarizes an instance for reports and tooling.
type Stats struct {
	Machines      int `json:"machines"`
	PhysicalLinks int `json:"physicalLinks"`
	VirtualLinks  int `json:"virtualLinks"`
	Items         int `json:"items"`
	Requests      int `json:"requests"`
	// RequestsByPriority counts requests per priority class, indexed by
	// priority.
	RequestsByPriority []int `json:"requestsByPriority"`
	// TotalItemBytes, MinItemBytes, and MaxItemBytes describe item sizes.
	TotalItemBytes int64 `json:"totalItemBytes"`
	MinItemBytes   int64 `json:"minItemBytes"`
	MaxItemBytes   int64 `json:"maxItemBytes"`
	// TotalCapacityBytes sums machine storage.
	TotalCapacityBytes int64 `json:"totalCapacityBytes"`
	// EarliestDeadline and LatestDeadline bound the active period.
	EarliestDeadline simtime.Instant `json:"earliestDeadline"`
	LatestDeadline   simtime.Instant `json:"latestDeadline"`
}

// Stats computes summary statistics of the instance.
func (s *Scenario) Stats() Stats {
	st := Stats{
		Machines: s.Network.NumMachines(),
		Items:    len(s.Items),
	}
	phys := make(map[int]bool)
	for _, l := range s.Network.Links {
		st.VirtualLinks++
		phys[l.Physical] = true
	}
	st.PhysicalLinks = len(phys)
	for _, m := range s.Network.Machines {
		st.TotalCapacityBytes += m.CapacityBytes
	}
	st.EarliestDeadline = simtime.Never
	maxPri := 0
	for i := range s.Items {
		it := &s.Items[i]
		st.TotalItemBytes += it.SizeBytes
		if st.MinItemBytes == 0 || it.SizeBytes < st.MinItemBytes {
			st.MinItemBytes = it.SizeBytes
		}
		if it.SizeBytes > st.MaxItemBytes {
			st.MaxItemBytes = it.SizeBytes
		}
		for _, rq := range it.Requests {
			st.Requests++
			if int(rq.Priority) > maxPri {
				maxPri = int(rq.Priority)
			}
			if rq.Deadline.Before(st.EarliestDeadline) {
				st.EarliestDeadline = rq.Deadline
			}
			if rq.Deadline.After(st.LatestDeadline) {
				st.LatestDeadline = rq.Deadline
			}
		}
	}
	st.RequestsByPriority = make([]int, maxPri+1)
	for i := range s.Items {
		for _, rq := range s.Items[i].Requests {
			st.RequestsByPriority[rq.Priority]++
		}
	}
	if st.Requests == 0 {
		st.EarliestDeadline = 0
	}
	return st
}

// Encode writes the scenario as indented JSON.
func (s *Scenario) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	return nil
}

// Decode reads a scenario from JSON and validates it.
func Decode(r io.Reader) (*Scenario, error) {
	var s Scenario
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
