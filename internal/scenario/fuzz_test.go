package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode checks that arbitrary bytes never panic the decoder and that
// anything it accepts round-trips to an equivalent accepted scenario.
func FuzzDecode(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	valid := `{
	  "network": {
	    "machines": [
	      {"id": 0, "capacityBytes": 1000},
	      {"id": 1, "capacityBytes": 1000}
	    ],
	    "links": [
	      {"id": 0, "from": 0, "to": 1, "window": {"start": 0, "end": 1000000000}, "bandwidthBPS": 8000},
	      {"id": 1, "from": 1, "to": 0, "window": {"start": 0, "end": 1000000000}, "bandwidthBPS": 8000}
	    ]
	  },
	  "items": [
	    {"id": 0, "sizeBytes": 10, "sources": [{"machine": 0, "available": 0}],
	     "requests": [{"machine": 1, "deadline": 900000000, "priority": 2}]}
	  ],
	  "garbageCollect": 360000000000,
	  "horizon": 86400000000000
	}`
	f.Add(valid)
	f.Add(`{}`)
	f.Add(`{"network": null}`)
	f.Add(strings.ReplaceAll(valid, `"id": 0`, `"id": -1`))
	f.Add(strings.ReplaceAll(valid, `"sizeBytes": 10`, `"sizeBytes": -10`))
	f.Add(strings.ReplaceAll(valid, `"bandwidthBPS": 8000`, `"bandwidthBPS": 0`))
	f.Add(`[1,2,3]`)
	f.Add(`not json at all`)

	f.Fuzz(func(t *testing.T, data string) {
		sc, err := Decode(strings.NewReader(data))
		if err != nil {
			return // rejected is always fine; panics are the bug
		}
		// Whatever was accepted must re-validate and re-encode.
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := sc.Encode(&buf); err != nil {
			t.Fatalf("accepted scenario fails Encode: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumRequests() != sc.NumRequests() || len(back.Items) != len(sc.Items) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.NumRequests(), len(back.Items), sc.NumRequests(), len(sc.Items))
		}
		// Stats must never panic on accepted scenarios.
		_ = sc.Stats()
	})
}
