package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

func validScenario(t *testing.T) *Scenario {
	t.Helper()
	machines := []model.Machine{
		{ID: 0, CapacityBytes: 1 << 20},
		{ID: 1, CapacityBytes: 1 << 20},
		{ID: 2, CapacityBytes: 1 << 20},
	}
	w := simtime.Interval{Start: 0, End: simtime.At(2 * time.Hour)}
	links := []model.VirtualLink{
		{ID: 0, From: 0, To: 1, Window: w, BandwidthBPS: 1 << 20, Physical: 0},
		{ID: 1, From: 1, To: 2, Window: w, BandwidthBPS: 1 << 20, Physical: 1},
		{ID: 2, From: 2, To: 0, Window: w, BandwidthBPS: 1 << 20, Physical: 2},
	}
	net, err := model.NewNetwork(machines, links)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return &Scenario{
		Name:    "unit",
		Network: net,
		Items: []model.Item{
			{
				ID:        0,
				Name:      "map-a",
				SizeBytes: 1024,
				Sources:   []model.Source{{Machine: 0, Available: simtime.At(time.Minute)}},
				Requests: []model.Request{
					{Machine: 1, Deadline: simtime.At(30 * time.Minute), Priority: model.High},
					{Machine: 2, Deadline: simtime.At(45 * time.Minute), Priority: model.Low},
				},
			},
			{
				ID:        1,
				Name:      "map-b",
				SizeBytes: 2048,
				Sources:   []model.Source{{Machine: 1, Available: 0}},
				Requests: []model.Request{
					{Machine: 0, Deadline: simtime.At(20 * time.Minute), Priority: model.Medium},
				},
			},
		},
		GarbageCollect: 6 * time.Minute,
		Horizon:        simtime.At(24 * time.Hour),
	}
}

func TestValidScenarioValidates(t *testing.T) {
	s := validScenario(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.NumRequests(); got != 3 {
		t.Errorf("NumRequests: got %d, want 3", got)
	}
	if got := s.TotalWeight(model.Weights1x10x100); got != 100+1+10 {
		t.Errorf("TotalWeight: got %v, want 111", got)
	}
	ids := s.Requests()
	if len(ids) != 3 || ids[0] != (model.RequestID{Item: 0, Index: 0}) || ids[2] != (model.RequestID{Item: 1, Index: 0}) {
		t.Errorf("Requests: got %v", ids)
	}
	if got := s.Request(ids[1]).Priority; got != model.Low {
		t.Errorf("Request resolve: got %v", got)
	}
	if got := s.Item(1).SizeBytes; got != 2048 {
		t.Errorf("Item resolve: got %d", got)
	}
	wantGC := simtime.At(45*time.Minute + 6*time.Minute)
	if got := s.GCInstant(s.Item(0)); got != wantGC {
		t.Errorf("GCInstant: got %v, want %v", got, wantGC)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(s *Scenario)
		substr string
	}{
		{"nil network", func(s *Scenario) { s.Network = nil }, "nil network"},
		{"bad item id", func(s *Scenario) { s.Items[1].ID = 7 }, "has ID"},
		{"zero size", func(s *Scenario) { s.Items[0].SizeBytes = 0 }, "non-positive size"},
		{"no sources", func(s *Scenario) { s.Items[0].Sources = nil }, "no sources"},
		{"no requests", func(s *Scenario) { s.Items[0].Requests = nil }, "no requests"},
		{"source out of range", func(s *Scenario) { s.Items[0].Sources[0].Machine = 9 }, "out of range"},
		{"dup source", func(s *Scenario) {
			s.Items[0].Sources = append(s.Items[0].Sources, s.Items[0].Sources[0])
		}, "duplicate source"},
		{"request out of range", func(s *Scenario) { s.Items[0].Requests[0].Machine = -1 }, "out of range"},
		{"dest is source", func(s *Scenario) { s.Items[0].Requests[0].Machine = 0 }, "also a source"},
		{"dup dest", func(s *Scenario) { s.Items[0].Requests[1].Machine = 1 }, "two requests"},
		{"negative priority", func(s *Scenario) { s.Items[0].Requests[0].Priority = -1 }, "negative priority"},
		{"deadline at epoch", func(s *Scenario) { s.Items[0].Requests[0].Deadline = 0 }, "not after epoch"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := validScenario(t)
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate should have failed")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not contain %q", err, tc.substr)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := validScenario(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name != s.Name || got.GarbageCollect != s.GarbageCollect || got.Horizon != s.Horizon {
		t.Errorf("scalar fields differ: got %+v", got)
	}
	if got.Network.NumMachines() != 3 || len(got.Network.Links) != 3 {
		t.Errorf("network differs: %d machines, %d links",
			got.Network.NumMachines(), len(got.Network.Links))
	}
	if len(got.Items) != 2 || got.Items[0].Requests[0].Deadline != s.Items[0].Requests[0].Deadline {
		t.Errorf("items differ: %+v", got.Items)
	}
	// Adjacency must be rebuilt lazily after decode.
	if out := got.Network.Outgoing(0); len(out) != 1 {
		t.Errorf("Outgoing after decode: got %v", out)
	}
}

func TestStats(t *testing.T) {
	s := validScenario(t)
	st := s.Stats()
	if st.Machines != 3 || st.VirtualLinks != 3 || st.Items != 2 || st.Requests != 3 {
		t.Errorf("counts: %+v", st)
	}
	if st.PhysicalLinks != 3 {
		t.Errorf("physical links: got %d", st.PhysicalLinks)
	}
	if st.TotalItemBytes != 1024+2048 || st.MinItemBytes != 1024 || st.MaxItemBytes != 2048 {
		t.Errorf("sizes: %+v", st)
	}
	if st.TotalCapacityBytes != 3<<20 {
		t.Errorf("capacity: got %d", st.TotalCapacityBytes)
	}
	if len(st.RequestsByPriority) != 3 || st.RequestsByPriority[model.High] != 1 ||
		st.RequestsByPriority[model.Low] != 1 || st.RequestsByPriority[model.Medium] != 1 {
		t.Errorf("by priority: %v", st.RequestsByPriority)
	}
	if st.EarliestDeadline != simtime.At(20*time.Minute) || st.LatestDeadline != simtime.At(45*time.Minute) {
		t.Errorf("deadline span: %v..%v", st.EarliestDeadline, st.LatestDeadline)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"network":null}`)); err == nil {
		t.Error("Decode of invalid scenario should fail")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("Decode of malformed JSON should fail")
	}
}
