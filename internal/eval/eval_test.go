package eval

import (
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/testnet"
)

func TestMeasureLine(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(sc, res, model.Weights1x10x100)
	if m.WeightedValue != 100 {
		t.Errorf("WeightedValue: got %v, want 100", m.WeightedValue)
	}
	if m.SatisfiedCount != 1 || m.TotalRequests != 1 {
		t.Errorf("counts: got %d/%d", m.SatisfiedCount, m.TotalRequests)
	}
	if m.Transfers != 3 {
		t.Errorf("Transfers: got %d, want 3", m.Transfers)
	}
	if m.MeanHops != 3 {
		t.Errorf("MeanHops: got %v, want 3 (source to destination across the chain)", m.MeanHops)
	}
	if m.ByPriority[model.High].Satisfied != 1 || m.ByPriority[model.High].Total != 1 {
		t.Errorf("ByPriority[High]: got %+v", m.ByPriority[model.High])
	}
	if m.ByPriority[model.Low].Total != 0 {
		t.Errorf("ByPriority[Low]: got %+v", m.ByPriority[model.Low])
	}
	if m.DijkstraRuns == 0 {
		t.Error("DijkstraRuns should be counted")
	}
	if m.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestMeasureCrossWeighting(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	cfg := core.Config{Heuristic: core.FullPathOneDest, Criterion: core.C2,
		EU: core.EUPriorityOnly, Weights: model.Weights1x5x10}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduled under 1/5/10 but measured under 1/10/100.
	m := Measure(sc, res, model.Weights1x10x100)
	if m.WeightedValue != 100 {
		t.Errorf("cross-weighted value: got %v, want 100", m.WeightedValue)
	}
}

func TestMeasureMeanHopsMultipleDests(t *testing.T) {
	// Star through a hub: dests at distance 2; one extra dest adjacent to
	// the source at distance 1.
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[1], 0, day, 80000)
	b.Link(ms[1], ms[2], 0, day, 80000)
	b.Link(ms[1], ms[3], 0, day, 80000)
	b.Link(ms[2], ms[0], 0, day, 80000)
	b.Link(ms[3], ms[0], 0, day, 80000)
	b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{
			testnet.Req(ms[1], time.Hour, model.High), // 1 hop
			testnet.Req(ms[2], time.Hour, model.High), // 2 hops
			testnet.Req(ms[3], time.Hour, model.High), // 2 hops
		})
	sc := b.Build("hops")
	cfg := core.Config{Heuristic: core.FullPathAllDests, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(sc, res, model.Weights1x10x100)
	if m.SatisfiedCount != 3 {
		t.Fatalf("satisfied: got %d, want 3", m.SatisfiedCount)
	}
	want := (1.0 + 2.0 + 2.0) / 3.0
	if m.MeanHops != want {
		t.Errorf("MeanHops: got %v, want %v", m.MeanHops, want)
	}
}

func TestMeasureEmptySchedule(t *testing.T) {
	// Impossible deadline: nothing satisfiable.
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Minute, model.High)})
	sc := b.Build("hopeless")
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C1,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(sc, res, model.Weights1x10x100)
	if m.WeightedValue != 0 || m.SatisfiedCount != 0 || m.MeanHops != 0 || m.Transfers != 0 {
		t.Errorf("empty schedule metrics: %+v", m)
	}
	if m.ByPriority[model.High].Total != 1 {
		t.Errorf("totals should still count: %+v", m.ByPriority)
	}
}
