// Package eval measures schedules: the paper's global objective (the
// weighted sum of priorities of satisfied requests, §3), per-priority
// satisfaction counts (§5.4's weighting-scheme comparison), and the
// technical-report extras — mean links traversed per satisfied request and
// heuristic execution time.
package eval

import (
	"fmt"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/state"
)

// PriorityCount is satisfied-vs-total for one priority class.
type PriorityCount struct {
	Satisfied int
	Total     int
}

// Metrics summarizes one scheduling run.
type Metrics struct {
	// WeightedValue is the objective: Σ W[priority] over satisfied
	// requests.
	WeightedValue float64
	// SatisfiedCount and TotalRequests count requests.
	SatisfiedCount int
	TotalRequests  int
	// ByPriority indexes satisfaction counts by priority class.
	ByPriority []PriorityCount
	// Transfers is the number of committed communication steps.
	Transfers int
	// MeanHops is the mean number of links a satisfied request's copy
	// traversed from its originating source to the destination.
	MeanHops float64
	// Elapsed is the heuristic's wall-clock execution time.
	Elapsed time.Duration
	// DijkstraRuns counts shortest-path executions.
	DijkstraRuns int
}

// Measure computes the metrics of a scheduling result under the given
// weights (which may differ from the weights the scheduler optimized for —
// that is exactly the §5.4 cross-weighting comparison).
func Measure(sc *scenario.Scenario, res *core.Result, w model.Weights) Metrics {
	maxPri := 0
	for i := range sc.Items {
		for _, rq := range sc.Items[i].Requests {
			if int(rq.Priority) > maxPri {
				maxPri = int(rq.Priority)
			}
		}
	}
	m := Metrics{
		ByPriority:   make([]PriorityCount, maxPri+1),
		Transfers:    len(res.Transfers),
		Elapsed:      res.Elapsed,
		DijkstraRuns: res.Stats.DijkstraRuns,
	}
	hops := deliveryHops(sc, res.Transfers)
	var hopTotal int
	for i := range sc.Items {
		for k, rq := range sc.Items[i].Requests {
			m.TotalRequests++
			m.ByPriority[rq.Priority].Total++
			id := model.RequestID{Item: model.ItemID(i), Index: k}
			if _, ok := res.Satisfied[id]; !ok {
				continue
			}
			m.SatisfiedCount++
			m.ByPriority[rq.Priority].Satisfied++
			m.WeightedValue += w.Of(rq.Priority)
			hopTotal += hops[deliveryKey{item: model.ItemID(i), machine: rq.Machine}]
		}
	}
	if m.SatisfiedCount > 0 {
		m.MeanHops = float64(hopTotal) / float64(m.SatisfiedCount)
	}
	return m
}

type deliveryKey struct {
	item    model.ItemID
	machine model.MachineID
}

// deliveryHops computes, for every (item, machine) copy created by the
// schedule, how many links the copy traversed from an original source:
// each machine receives at most one copy of an item, so the chain of
// incoming transfers is unique.
func deliveryHops(sc *scenario.Scenario, transfers []state.Transfer) map[deliveryKey]int {
	incoming := make(map[deliveryKey]*state.Transfer, len(transfers))
	for i := range transfers {
		tr := &transfers[i]
		incoming[deliveryKey{item: tr.Item, machine: tr.To}] = tr
	}
	hops := make(map[deliveryKey]int, len(transfers))
	var chase func(k deliveryKey) int
	chase = func(k deliveryKey) int {
		if h, ok := hops[k]; ok {
			return h
		}
		tr, ok := incoming[k]
		if !ok {
			return 0 // original source
		}
		h := 1 + chase(deliveryKey{item: k.item, machine: tr.From})
		hops[k] = h
		return h
	}
	for k := range incoming {
		chase(k)
	}
	return hops
}

// String renders the metrics as a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("value=%.0f satisfied=%d/%d transfers=%d meanHops=%.2f dijkstras=%d elapsed=%v",
		m.WeightedValue, m.SatisfiedCount, m.TotalRequests, m.Transfers, m.MeanHops, m.DijkstraRuns, m.Elapsed)
}
