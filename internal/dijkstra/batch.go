package dijkstra

import (
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// durMemo caches the last TransferDuration evaluation for one item's
// computation. Links within a physical group (and usually across a whole
// scenario) repeat the same (bandwidth, latency) pair, and the duration of
// a fixed-size item over such a pair is a pure function, so the innermost
// relax loop can skip the div/round sequence almost every time. A zero
// memo is ready to use: no real link has zero bandwidth (validation
// rejects it), so the first call always misses.
type durMemo struct {
	bps int64
	lat time.Duration
	dur time.Duration
}

func (m *durMemo) transferDuration(l *model.VirtualLink, size int64) time.Duration {
	if l.BandwidthBPS != m.bps || l.Latency != m.lat {
		m.bps, m.lat = l.BandwidthBPS, l.Latency
		m.dur = l.TransferDuration(size)
	}
	return m.dur
}

// batchEntry is one tentative label in the merged priority queue of a
// batched computation: lane i is the i-th item's forest. Ordering is
// (at, lane, machine); restricted to one lane that is exactly the serial
// heap's (at, machine) order, so each lane's pop sequence — and therefore
// its forest — is bit-identical to a serial Compute (lanes never read each
// other's labels, and the state is read-only during the batch).
type batchEntry struct {
	at      simtime.Instant
	lane    int32
	machine model.MachineID
}

func batchEntryLess(a, b batchEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	return a.machine < b.machine
}

// lane is the per-item working set of one forest inside a batch.
type lane struct {
	plan    *Plan
	size    int64
	holdEnd []simtime.Instant
	done    []bool
	dm      durMemo
}

// BatchScratch is the reusable working memory of ComputeBatch: per-lane
// label slabs, the merged priority queue, and the private slot cursors.
// Like Scratch, it is owned by exactly one goroutine at a time and can
// back any number of sequential batches without reallocating.
type BatchScratch struct {
	lanes    []lane
	pq       []batchEntry
	cur      state.SlotCursors
	holdSlab []simtime.Instant
	doneSlab []bool
	stats    ScratchStats
	batches  int
}

// NewBatchScratch returns an empty BatchScratch; buffers grow on first use.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// Stats returns the scratch's lifetime counters. Computes counts forests
// (one per item per batch), so the planner's differential accounting is
// identical whether forests came from Compute or ComputeBatch.
func (s *BatchScratch) Stats() ScratchStats { return s.stats }

// Batches returns how many ComputeBatch calls this scratch has served.
func (s *BatchScratch) Batches() int { return s.batches }

// ComputeBatch computes the shortest-path forest of every listed item in
// one merged relaxation walk and returns plans[i] filled for items[i]. A
// nil plans[i] is replaced; a non-nil one is recycled exactly as
// Scratch.Compute recycles its reuse argument. len(plans) must equal
// len(items). The state is only read.
//
// Why a merged walk: the global pop order is ascending in arrival time, so
// every slot query against a given link (or port pair) is issued with a
// non-decreasing ready time across ALL lanes, not just within one. The
// batch's private cursors (state.SlotCursors) therefore stay valid from
// lane to lane and each timeline is walked once end to end per batch
// instead of once per (forest, link) — the k-fold re-walk that serial
// recomputation of k invalidated forests pays. Correctness never depends
// on the cursors (a stale one falls back to the indexed search), and the
// forests are bit-identical to k serial Compute calls; see batchEntry.
func (s *BatchScratch) ComputeBatch(st *state.State, items []model.ItemID, plans []*Plan) {
	if len(items) != len(plans) {
		panic("dijkstra: ComputeBatch items/plans length mismatch")
	}
	k := len(items)
	if k == 0 {
		return
	}
	sc := st.Scenario()
	net := sc.Network
	m := net.NumMachines()
	floor := st.Floor()

	s.batches++
	s.stats.Computes += k
	if cap(s.holdSlab) < k*m {
		s.stats.Grows++
	}
	s.lanes = growSlice(s.lanes, k)
	s.holdSlab = growSlice(s.holdSlab, k*m)
	s.doneSlab = growSlice(s.doneSlab, k*m)
	s.pq = s.pq[:0]
	if cap(s.pq) < k*m {
		// The merged frontier peaks near one entry per (forest, machine);
		// reserving it up front keeps the push path free of grow-copies
		// on a cold scratch.
		s.pq = make([]batchEntry, 0, k*m)
	}
	st.ResetSlotCursors(&s.cur)

	for i := range s.lanes {
		ln := &s.lanes[i]
		item := items[i]
		p := plans[i]
		if p == nil {
			p = &Plan{}
			plans[i] = p
		}
		p.Item = item
		p.CapBlocked = false
		p.Arrival = growSlice(p.Arrival, m)
		p.Pred = growSlice(p.Pred, m)
		p.Via = growSlice(p.Via, m)
		p.Start = growSlice(p.Start, m)
		p.Dur = growSlice(p.Dur, m)
		ln.plan = p
		ln.size = sc.Item(item).SizeBytes
		ln.holdEnd = s.holdSlab[i*m : (i+1)*m]
		ln.done = s.doneSlab[i*m : (i+1)*m]
		ln.dm = durMemo{}
		for u := range p.Arrival {
			p.Arrival[u] = simtime.Never
			p.Pred[u] = NoMachine
			p.Via[u] = NoLink
			ln.done[u] = false
		}
		for _, h := range st.Holders(item) {
			p.Arrival[h.Machine] = h.Avail
			ln.holdEnd[h.Machine] = h.End
			s.push(batchEntry{at: h.Avail, lane: int32(i), machine: h.Machine})
		}
	}

	for len(s.pq) > 0 {
		e := s.pop()
		ln := &s.lanes[e.lane]
		p := ln.plan
		done := ln.done
		u := e.machine
		if done[u] || e.at != p.Arrival[u] {
			continue // stale entry
		}
		done[u] = true
		ready := simtime.MaxInstant(e.at, floor)
		endU := ln.holdEnd[u]
		for _, g := range st.PhysGroups(u) {
			v := g.To
			if done[v] || (p.Arrival[v] != simtime.Never && p.Pred[v] == NoMachine) {
				continue
			}
			for _, id := range g.Links {
				l := net.Link(id)
				if l.Window.Start >= endU || l.Window.Start >= p.Arrival[v] {
					break
				}
				d := ln.dm.transferDuration(l, ln.size)
				slot, ok := st.EarliestTransferSlotCursors(&s.cur, id, ready, d)
				if !ok {
					continue
				}
				arrival := slot.Add(d)
				if arrival > endU {
					continue
				}
				if arrival >= p.Arrival[v] {
					continue
				}
				hold := st.HoldInterval(p.Item, v, arrival)
				if !st.Capacity(v).CanReserve(ln.size, hold) {
					p.CapBlocked = true
					continue
				}
				p.Arrival[v] = arrival
				p.Pred[v] = u
				p.Via[v] = id
				p.Start[v] = slot
				p.Dur[v] = d
				ln.holdEnd[v] = hold.End
				s.push(batchEntry{at: arrival, lane: e.lane, machine: v})
			}
		}
	}
	// Drop plan pointers so recycled lanes don't pin dead plans alive.
	for i := range s.lanes {
		s.lanes[i].plan = nil
	}
}

// push and pop mirror Scratch's hand-rolled binary min-heap for the merged
// queue; see the comment there for why container/heap is avoided.
func (s *BatchScratch) push(e batchEntry) {
	h := append(s.pq, e)
	if len(h) > s.stats.HeapHighWater {
		s.stats.HeapHighWater = len(h)
	}
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !batchEntryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.pq = h
}

func (s *BatchScratch) pop() batchEntry {
	h := s.pq
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && batchEntryLess(h[r], h[l]) {
			least = r
		}
		if !batchEntryLess(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	s.pq = h
	return top
}
