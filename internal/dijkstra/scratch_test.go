package dijkstra_test

import (
	"testing"

	"datastaging/internal/dijkstra"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/state"
)

// TestScratchComputeMatchesFresh proves the allocation-lean path is exact:
// recomputing every item through one Scratch with aggressive Plan recycling
// yields forests identical to independent fresh computations, in any order.
func TestScratchComputeMatchesFresh(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		sc := gen.MustGenerate(gen.Default(), seed)
		st := state.New(sc)
		s := dijkstra.NewScratch()
		var recycled *dijkstra.Plan
		for item := range sc.Items {
			id := model.ItemID(item)
			fresh := dijkstra.Compute(st, id)
			recycled = s.Compute(st, id, recycled)
			assertPlansEqual(t, seed, id, recycled, fresh)
		}
		// Second sweep in reverse order through the same scratch: stale
		// contents from the previous computation must never leak.
		for item := len(sc.Items) - 1; item >= 0; item-- {
			id := model.ItemID(item)
			fresh := dijkstra.Compute(st, id)
			recycled = s.Compute(st, id, recycled)
			assertPlansEqual(t, seed, id, recycled, fresh)
		}
	}
}

func assertPlansEqual(t *testing.T, seed int64, item model.ItemID, got, want *dijkstra.Plan) {
	t.Helper()
	if got.Item != want.Item {
		t.Fatalf("seed %d item %d: plan item %d", seed, item, got.Item)
	}
	if len(got.Arrival) != len(want.Arrival) {
		t.Fatalf("seed %d item %d: %d machines, want %d", seed, item, len(got.Arrival), len(want.Arrival))
	}
	for m := range want.Arrival {
		if got.Arrival[m] != want.Arrival[m] || got.Pred[m] != want.Pred[m] ||
			got.Via[m] != want.Via[m] {
			t.Fatalf("seed %d item %d machine %d: recycled forest differs: "+
				"(%v, %d, %d) vs (%v, %d, %d)", seed, item, m,
				got.Arrival[m], got.Pred[m], got.Via[m],
				want.Arrival[m], want.Pred[m], want.Via[m])
		}
		if want.Via[m] != dijkstra.NoLink &&
			(got.Start[m] != want.Start[m] || got.Dur[m] != want.Dur[m]) {
			t.Fatalf("seed %d item %d machine %d: hop timing differs", seed, item, m)
		}
	}
}

// TestScratchStats pins the observability counters: the first compute on a
// fresh scratch grows, subsequent same-size computes are reuse hits, and
// the heap high-water mark is positive whenever any label was pushed.
func TestScratchStats(t *testing.T) {
	sc := gen.MustGenerate(gen.Default(), 7)
	st := state.New(sc)
	s := dijkstra.NewScratch()
	var pl *dijkstra.Plan
	const rounds = 5
	for i := 0; i < rounds; i++ {
		pl = s.Compute(st, model.ItemID(i%len(sc.Items)), pl)
	}
	stats := s.Stats()
	if stats.Computes != rounds {
		t.Errorf("Computes = %d, want %d", stats.Computes, rounds)
	}
	if stats.Grows != 1 {
		t.Errorf("Grows = %d, want 1 (machine count is constant)", stats.Grows)
	}
	if stats.ReuseHits() != rounds-1 {
		t.Errorf("ReuseHits = %d, want %d", stats.ReuseHits(), rounds-1)
	}
	if stats.HeapHighWater <= 0 {
		t.Errorf("HeapHighWater = %d, want > 0", stats.HeapHighWater)
	}
	if stats.HeapHighWater > sc.Network.NumMachines()*len(sc.Network.Links) {
		t.Errorf("HeapHighWater = %d is implausibly large", stats.HeapHighWater)
	}

	var agg dijkstra.ScratchStats
	agg.Add(stats)
	agg.Add(dijkstra.ScratchStats{Computes: 2, Grows: 1, HeapHighWater: 1})
	if agg.Computes != rounds+2 || agg.Grows != 2 || agg.HeapHighWater != stats.HeapHighWater {
		t.Errorf("Add aggregated to %+v", agg)
	}
}

// TestFirstHopToMatchesPathTo pins the pred-chain walk against the full
// path materialization across a paper-scale scenario.
func TestFirstHopToMatchesPathTo(t *testing.T) {
	sc := gen.MustGenerate(gen.Default(), 11)
	st := state.New(sc)
	for item := range sc.Items {
		p := dijkstra.Compute(st, model.ItemID(item))
		for m := range p.Arrival {
			id := model.MachineID(m)
			hops, pok := p.PathTo(id)
			hop, fok := p.FirstHopTo(id)
			wantOK := pok && len(hops) > 0
			if fok != wantOK {
				t.Fatalf("item %d machine %d: FirstHopTo ok=%v, PathTo gives %v", item, m, fok, wantOK)
			}
			if fok && hop != hops[0] {
				t.Fatalf("item %d machine %d: first hop %+v, want %+v", item, m, hop, hops[0])
			}
		}
	}
}
