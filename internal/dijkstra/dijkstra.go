// Package dijkstra implements the paper's adaptation of Dijkstra's
// multiple-source shortest-path algorithm (§4.2) to the data staging model.
//
// For one requested data item, every machine currently holding a copy is a
// source labeled with the instant its copy becomes available. The label of
// any other machine is the earliest instant a copy could *arrive* there,
// where traversing a virtual link means finding the earliest free slot on
// that link at or after the copy is ready at the sending machine, entirely
// inside the link's availability window, short enough that the sending
// machine still holds its copy when the transfer completes, and such that
// the receiving machine can store the copy until its own hold end (garbage
// collection for intermediates, forever for destinations).
//
// Earliest-slot queries are monotone in the ready time, so label-setting
// Dijkstra remains exact for arrival times: when a machine is popped its
// label is the true earliest arrival achievable in the current resource
// state (given the model decision that capacity feasibility is checked at
// the earliest arrival — see DESIGN.md §2).
package dijkstra

import (
	"container/heap"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// NoMachine and NoLink mark the absence of a predecessor in a Plan.
const (
	NoMachine model.MachineID = -1
	NoLink    model.LinkID    = -1
)

// Plan is the shortest-path forest for one item in one resource state: per
// machine, the earliest achievable arrival and the final hop that achieves
// it. Machines holding the item are roots (Pred == NoMachine) labeled with
// their copy's availability; unreachable machines have Arrival == Never.
type Plan struct {
	Item    model.ItemID
	Arrival []simtime.Instant
	Pred    []model.MachineID
	Via     []model.LinkID
	Start   []simtime.Instant
	Dur     []time.Duration
}

// Hop is one transfer along a planned path.
type Hop struct {
	Link  model.LinkID
	From  model.MachineID
	To    model.MachineID
	Start simtime.Instant
	Dur   time.Duration
}

// Compute runs the adapted Dijkstra for one item against the current state.
// The state is only read.
func Compute(st *state.State, item model.ItemID) *Plan {
	sc := st.Scenario()
	net := sc.Network
	m := net.NumMachines()
	size := sc.Item(item).SizeBytes

	p := &Plan{
		Item:    item,
		Arrival: make([]simtime.Instant, m),
		Pred:    make([]model.MachineID, m),
		Via:     make([]model.LinkID, m),
		Start:   make([]simtime.Instant, m),
		Dur:     make([]time.Duration, m),
	}
	// holdEnd[u] is when u's copy (existing or planned) disappears; the
	// latest instant a transfer out of u may still be in flight.
	holdEnd := make([]simtime.Instant, m)
	for u := range p.Arrival {
		p.Arrival[u] = simtime.Never
		p.Pred[u] = NoMachine
		p.Via[u] = NoLink
	}
	pq := &instantHeap{}
	for _, h := range st.Holders(item) {
		p.Arrival[h.Machine] = h.Avail
		holdEnd[h.Machine] = h.End
		heap.Push(pq, heapEntry{at: h.Avail, machine: h.Machine})
	}

	done := make([]bool, m)
	for pq.Len() > 0 {
		e := heap.Pop(pq).(heapEntry)
		u := e.machine
		if done[u] || e.at != p.Arrival[u] {
			continue // stale entry
		}
		done[u] = true
		// A copy may predate the planning floor, but new transfers cannot.
		ready := simtime.MaxInstant(p.Arrival[u], st.Floor())
		endU := holdEnd[u]
		for _, g := range st.PhysGroups(u) {
			v := g.To
			if done[v] || st.Holds(item, v) {
				continue
			}
			for _, id := range g.Links {
				l := net.Link(id)
				// Windows are sorted by start: once a window opens at or
				// after u's copy disappears or after v's current best
				// arrival, no later window of this physical link helps.
				if l.Window.Start >= endU || l.Window.Start >= p.Arrival[v] {
					break
				}
				d := l.TransferDuration(size)
				slot, ok := st.EarliestTransferSlot(id, ready, d)
				if !ok {
					continue
				}
				arrival := slot.Add(d)
				if arrival > endU { // sending copy garbage-collected mid-flight
					continue
				}
				if arrival >= p.Arrival[v] {
					continue
				}
				hold := st.HoldInterval(item, v, arrival)
				if !st.Capacity(v).CanReserve(size, hold) {
					continue
				}
				p.Arrival[v] = arrival
				p.Pred[v] = u
				p.Via[v] = id
				p.Start[v] = slot
				p.Dur[v] = d
				holdEnd[v] = hold.End
				heap.Push(pq, heapEntry{at: arrival, machine: v})
			}
		}
	}
	return p
}

// Reachable reports whether a copy can reach machine m in the current
// state (holders are trivially reachable).
func (p *Plan) Reachable(m model.MachineID) bool { return p.Arrival[m] != simtime.Never }

// IsRoot reports whether machine m holds the item in the planned forest.
func (p *Plan) IsRoot(m model.MachineID) bool {
	return p.Arrival[m] != simtime.Never && p.Pred[m] == NoMachine
}

// PathTo returns the hops from the root holder to machine m in planned
// order. It returns (nil, true) when m already holds the item and
// (nil, false) when m is unreachable.
func (p *Plan) PathTo(m model.MachineID) ([]Hop, bool) {
	if !p.Reachable(m) {
		return nil, false
	}
	var rev []Hop
	for v := m; p.Pred[v] != NoMachine; v = p.Pred[v] {
		rev = append(rev, Hop{
			Link:  p.Via[v],
			From:  p.Pred[v],
			To:    v,
			Start: p.Start[v],
			Dur:   p.Dur[v],
		})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// FirstHopTo returns the first transfer on the planned path to machine m:
// the hop out of the root holder. ok is false when m is unreachable or
// already holds the item.
func (p *Plan) FirstHopTo(m model.MachineID) (Hop, bool) {
	hops, ok := p.PathTo(m)
	if !ok || len(hops) == 0 {
		return Hop{}, false
	}
	return hops[0], true
}

type heapEntry struct {
	at      simtime.Instant
	machine model.MachineID
}

type instantHeap []heapEntry

func (h instantHeap) Len() int { return len(h) }
func (h instantHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].machine < h[j].machine
}
func (h instantHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *instantHeap) Push(x any) { *h = append(*h, x.(heapEntry)) }

func (h *instantHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
