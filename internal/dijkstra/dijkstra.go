// Package dijkstra implements the paper's adaptation of Dijkstra's
// multiple-source shortest-path algorithm (§4.2) to the data staging model.
//
// For one requested data item, every machine currently holding a copy is a
// source labeled with the instant its copy becomes available. The label of
// any other machine is the earliest instant a copy could *arrive* there,
// where traversing a virtual link means finding the earliest free slot on
// that link at or after the copy is ready at the sending machine, entirely
// inside the link's availability window, short enough that the sending
// machine still holds its copy when the transfer completes, and such that
// the receiving machine can store the copy until its own hold end (garbage
// collection for intermediates, forever for destinations).
//
// Earliest-slot queries are monotone in the ready time, so label-setting
// Dijkstra remains exact for arrival times: when a machine is popped its
// label is the true earliest arrival achievable in the current resource
// state (given the model decision that capacity feasibility is checked at
// the earliest arrival — see DESIGN.md §2). The same monotonicity is what
// the interval kernels under each relax step exploit: the slot query rides
// a per-link cursor hint (serialized mode fuses link, send-port, and
// receive-port availability without materializing intersection sets) and
// the capacity check is a segment-min index lookup, so one relaxation
// performs zero heap allocations and no from-zero timeline scans — see
// DESIGN.md "Interval kernels".
//
// Compute only reads the state, so any number of Compute calls may run
// concurrently against the same State (the planner in internal/core
// recomputes invalidated forests in parallel). The per-computation working
// memory lives in a Scratch, which is owned by exactly one goroutine at a
// time; see DESIGN.md "Concurrency model".
package dijkstra

import (
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// NoMachine and NoLink mark the absence of a predecessor in a Plan.
const (
	NoMachine model.MachineID = -1
	NoLink    model.LinkID    = -1
)

// Plan is the shortest-path forest for one item in one resource state: per
// machine, the earliest achievable arrival and the final hop that achieves
// it. Machines holding the item are roots (Pred == NoMachine) labeled with
// their copy's availability; unreachable machines have Arrival == Never.
type Plan struct {
	Item    model.ItemID
	Arrival []simtime.Instant
	Pred    []model.MachineID
	Via     []model.LinkID
	Start   []simtime.Instant
	Dur     []time.Duration
	// CapBlocked records that some relaxation failed its storage-capacity
	// check during the computation. Capacity is the one feasibility gate
	// that is NOT monotone in the planning floor: a later floor delays the
	// arrival, which SHORTENS the hold interval [arrival, gc end], so a
	// failed CanReserve can flip to success when the floor advances. Every
	// other gate (slot fit, copy lifetime, label domination) only gets
	// harder. A cap-blocked forest therefore cannot be carried across a
	// floor advance, and an item whose forest is cap-blocked cannot be
	// written off as permanently unsatisfiable; see the incremental
	// planner in internal/core.
	CapBlocked bool
}

// Hop is one transfer along a planned path.
type Hop struct {
	Link  model.LinkID
	From  model.MachineID
	To    model.MachineID
	Start simtime.Instant
	Dur   time.Duration
}

// Scratch is the reusable working memory of one shortest-path computation:
// the hold-end and visited labels plus the priority-queue backing array.
// None of it survives into the returned Plan, so a Scratch can back any
// number of sequential Compute calls without reallocating. A Scratch must
// not be shared between concurrent computations; give each worker its own.
type Scratch struct {
	holdEnd []simtime.Instant
	done    []bool
	pq      []heapEntry
	stats   ScratchStats
}

// NewScratch returns an empty Scratch; its buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// ScratchStats counts what a Scratch's lifetime of computations cost: how
// many Compute calls ran, how many of those had to grow a label buffer
// (the complement is the allocation-free reuse hits the planner's
// steady-state depends on), and the high-water mark of the priority queue
// (the forest computation's only dynamic working set). The planner
// aggregates these into the obs registry after a run.
type ScratchStats struct {
	// Computes is the number of Compute calls served.
	Computes int
	// Grows is how many of those calls reallocated a label buffer; the
	// first call on a fresh Scratch always grows.
	Grows int
	// HeapHighWater is the largest priority-queue length ever reached.
	HeapHighWater int
}

// ReuseHits is Computes minus Grows: calls served entirely from recycled
// buffers.
func (s ScratchStats) ReuseHits() int { return s.Computes - s.Grows }

// Add accumulates other into s (high-water marks take the max).
func (s *ScratchStats) Add(other ScratchStats) {
	s.Computes += other.Computes
	s.Grows += other.Grows
	s.HeapHighWater = max(s.HeapHighWater, other.HeapHighWater)
}

// Stats returns the Scratch's lifetime counters.
func (s *Scratch) Stats() ScratchStats { return s.stats }

// Compute runs the adapted Dijkstra for one item against the current state.
// The state is only read. It is shorthand for NewScratch().Compute with no
// recycled plan; hot paths should hold a Scratch and recycle Plans instead.
func Compute(st *state.State, item model.ItemID) *Plan {
	var s Scratch
	return s.Compute(st, item, nil)
}

// Compute runs the adapted Dijkstra for one item against the current state,
// drawing working memory from the Scratch. The state is only read. If reuse
// is non-nil its slices are recycled for the returned Plan (which may or
// may not be reuse itself); the caller must no longer use reuse afterwards.
func (s *Scratch) Compute(st *state.State, item model.ItemID, reuse *Plan) *Plan {
	sc := st.Scenario()
	net := sc.Network
	m := net.NumMachines()
	size := sc.Item(item).SizeBytes

	s.stats.Computes++
	if cap(s.holdEnd) < m {
		s.stats.Grows++
	}

	p := reuse
	if p == nil {
		p = &Plan{}
	}
	p.Item = item
	p.CapBlocked = false
	p.Arrival = growSlice(p.Arrival, m)
	p.Pred = growSlice(p.Pred, m)
	p.Via = growSlice(p.Via, m)
	p.Start = growSlice(p.Start, m)
	p.Dur = growSlice(p.Dur, m)

	// holdEnd[u] is when u's copy (existing or planned) disappears; the
	// latest instant a transfer out of u may still be in flight.
	s.holdEnd = growSlice(s.holdEnd, m)
	s.done = growSlice(s.done, m)
	s.pq = s.pq[:0]
	holdEnd, done := s.holdEnd, s.done
	var dm durMemo

	for u := range p.Arrival {
		p.Arrival[u] = simtime.Never
		p.Pred[u] = NoMachine
		p.Via[u] = NoLink
		done[u] = false
	}
	for _, h := range st.Holders(item) {
		p.Arrival[h.Machine] = h.Avail
		holdEnd[h.Machine] = h.End
		s.push(heapEntry{at: h.Avail, machine: h.Machine})
	}

	for len(s.pq) > 0 {
		e := s.pop()
		u := e.machine
		if done[u] || e.at != p.Arrival[u] {
			continue // stale entry
		}
		done[u] = true
		// A copy may predate the planning floor, but new transfers cannot.
		ready := simtime.MaxInstant(p.Arrival[u], st.Floor())
		endU := holdEnd[u]
		for _, g := range st.PhysGroups(u) {
			v := g.To
			// Roots are exactly the machines holding the item (Pred stays
			// NoMachine and this guard keeps it that way), so the root test
			// is st.Holds answered from the labels — two array reads on the
			// innermost loop instead of a holder-list lookup.
			if done[v] || (p.Arrival[v] != simtime.Never && p.Pred[v] == NoMachine) {
				continue
			}
			for _, id := range g.Links {
				l := net.Link(id)
				// Windows are sorted by start: once a window opens at or
				// after u's copy disappears or after v's current best
				// arrival, no later window of this physical link helps.
				if l.Window.Start >= endU || l.Window.Start >= p.Arrival[v] {
					break
				}
				d := dm.transferDuration(l, size)
				slot, ok := st.EarliestTransferSlot(id, ready, d)
				if !ok {
					continue
				}
				arrival := slot.Add(d)
				if arrival > endU { // sending copy garbage-collected mid-flight
					continue
				}
				if arrival >= p.Arrival[v] {
					continue
				}
				hold := st.HoldInterval(item, v, arrival)
				if !st.Capacity(v).CanReserve(size, hold) {
					p.CapBlocked = true
					continue
				}
				p.Arrival[v] = arrival
				p.Pred[v] = u
				p.Via[v] = id
				p.Start[v] = slot
				p.Dur[v] = d
				holdEnd[v] = hold.End
				s.push(heapEntry{at: arrival, machine: v})
			}
		}
	}
	return p
}

// growSlice returns s resized to n elements, reusing its backing array when
// it is large enough. Contents are unspecified; callers reinitialize.
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Reachable reports whether a copy can reach machine m in the current
// state (holders are trivially reachable).
func (p *Plan) Reachable(m model.MachineID) bool { return p.Arrival[m] != simtime.Never }

// EarliestHopStart returns the earliest start instant of any planned hop in
// the forest, or simtime.Forever when the forest plans no hop at all. A
// non-CapBlocked forest computed under planning floor f stays exactly the
// forest a fresh computation would produce for any floor f' in
// (f, EarliestHopStart]: every relaxation clamps its ready time to the
// floor, raising the clamp below the earliest slot actually found changes
// no successful label (slot queries are monotone in the ready time and the
// free sets are unchanged), and every failed or dominated relaxation fails
// the same monotone gate again at the higher floor — except a failed
// capacity check, which CapBlocked flags. The incremental planner in
// internal/core uses this pair to decide which cached forests survive a
// floor advance.
func (p *Plan) EarliestHopStart() simtime.Instant {
	earliest := simtime.Forever
	for v := range p.Via {
		if p.Via[v] != NoLink && p.Start[v] < earliest {
			earliest = p.Start[v]
		}
	}
	return earliest
}

// IsRoot reports whether machine m holds the item in the planned forest.
func (p *Plan) IsRoot(m model.MachineID) bool {
	return p.Arrival[m] != simtime.Never && p.Pred[m] == NoMachine
}

// PathTo returns the hops from the root holder to machine m in planned
// order. It returns (nil, true) when m already holds the item and
// (nil, false) when m is unreachable.
func (p *Plan) PathTo(m model.MachineID) ([]Hop, bool) {
	hops, ok := p.AppendPathTo(nil, m)
	if len(hops) == 0 {
		return nil, ok
	}
	return hops, ok
}

// AppendPathTo appends the hops from the root holder to machine m onto dst
// in planned order and returns the extended slice. ok is false when m is
// unreachable; a machine already holding the item appends nothing. Hot
// paths keep a reusable dst so path extraction never allocates.
func (p *Plan) AppendPathTo(dst []Hop, m model.MachineID) (_ []Hop, ok bool) {
	if !p.Reachable(m) {
		return dst, false
	}
	n := 0
	for v := m; p.Pred[v] != NoMachine; v = p.Pred[v] {
		n++
	}
	base := len(dst)
	if cap(dst)-base < n {
		grown := make([]Hop, base, base+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+n]
	i := base + n
	for v := m; p.Pred[v] != NoMachine; v = p.Pred[v] {
		i--
		dst[i] = Hop{
			Link:  p.Via[v],
			From:  p.Pred[v],
			To:    v,
			Start: p.Start[v],
			Dur:   p.Dur[v],
		}
	}
	return dst, true
}

// FirstHopTo returns the first transfer on the planned path to machine m:
// the hop out of the root holder. ok is false when m is unreachable or
// already holds the item. It walks the predecessor chain directly and never
// allocates.
func (p *Plan) FirstHopTo(m model.MachineID) (Hop, bool) {
	if !p.Reachable(m) || p.Pred[m] == NoMachine {
		return Hop{}, false
	}
	v := m
	for p.Pred[p.Pred[v]] != NoMachine {
		v = p.Pred[v]
	}
	return Hop{
		Link:  p.Via[v],
		From:  p.Pred[v],
		To:    v,
		Start: p.Start[v],
		Dur:   p.Dur[v],
	}, true
}

// heapEntry is one tentative label in the priority queue. Entries are
// totally ordered — a machine is re-pushed only when its arrival strictly
// improves, so (at, machine) pairs are unique — which makes the pop order
// (and therefore the forest) independent of the heap implementation.
type heapEntry struct {
	at      simtime.Instant
	machine model.MachineID
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.machine < b.machine
}

// push and pop implement a binary min-heap directly on the Scratch's
// backing array: container/heap would box every entry into an interface,
// allocating once per push on the hottest loop in the scheduler.
func (s *Scratch) push(e heapEntry) {
	h := append(s.pq, e)
	if len(h) > s.stats.HeapHighWater {
		s.stats.HeapHighWater = len(h)
	}
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.pq = h
}

func (s *Scratch) pop() heapEntry {
	h := s.pq
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && entryLess(h[r], h[l]) {
			least = r
		}
		if !entryLess(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	s.pq = h
	return top
}
