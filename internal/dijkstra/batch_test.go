package dijkstra_test

import (
	"testing"
	"time"

	"datastaging/internal/dijkstra"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

func batchParams() gen.Params {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 4, Max: 8}
	p.RequestsPerMachine = gen.IntRange{Min: 2, Max: 6}
	return p
}

// batchAgainstSerial computes every item's forest twice — once per serial
// Compute, once through a single ComputeBatch over all items — and fails
// unless the forests are bit-identical, CapBlocked flags included.
func batchAgainstSerial(t *testing.T, seed int64, st *state.State, bs *dijkstra.BatchScratch, plans []*dijkstra.Plan) []*dijkstra.Plan {
	t.Helper()
	sc := st.Scenario()
	items := make([]model.ItemID, len(sc.Items))
	for i := range items {
		items[i] = model.ItemID(i)
	}
	if plans == nil {
		plans = make([]*dijkstra.Plan, len(items))
	}
	bs.ComputeBatch(st, items, plans)
	for i, id := range items {
		fresh := dijkstra.Compute(st, id)
		assertPlansEqual(t, seed, id, plans[i], fresh)
		if plans[i].CapBlocked != fresh.CapBlocked {
			t.Fatalf("seed %d item %d: batched CapBlocked %v, serial %v",
				seed, id, plans[i].CapBlocked, fresh.CapBlocked)
		}
	}
	return plans
}

// commitSome mutates the state by committing the first hop of up to n
// reachable plans, fragmenting link and port timelines so subsequent
// batches run against dirty cursor territory.
func commitSome(t *testing.T, st *state.State, plans []*dijkstra.Plan, n int) {
	t.Helper()
	committed := 0
	for _, p := range plans {
		if committed >= n {
			return
		}
		for m := 0; m < len(p.Arrival) && committed < n; m++ {
			mid := model.MachineID(m)
			h, ok := p.FirstHopTo(mid)
			if !ok {
				continue
			}
			if _, err := st.Commit(p.Item, h.Link, h.Start); err == nil {
				committed++
			}
			break // plans are stale after a commit; move to the next item
		}
	}
}

// TestBatchComputeMatchesSerial is the tentpole's differential oracle: on
// random scenarios, one merged batch over every item must produce forests
// bit-identical to serial recomputation — on a fresh state, after commits
// have fragmented the timelines, and after the planning floor advanced —
// with the same BatchScratch and plan set recycled throughout.
func TestBatchComputeMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		sc := gen.MustGenerate(batchParams(), seed)
		st := state.New(sc)
		bs := dijkstra.NewBatchScratch()
		plans := batchAgainstSerial(t, seed, st, bs, nil)
		commitSome(t, st, plans, 3)
		plans = batchAgainstSerial(t, seed, st, bs, plans)
		st.SetFloor(simtime.At(30 * time.Minute))
		plans = batchAgainstSerial(t, seed, st, bs, plans)
		commitSome(t, st, plans, 2)
		batchAgainstSerial(t, seed, st, bs, plans)
	}
}

// TestBatchComputeStats pins the accounting contract the planner's
// differential stats depend on: a batch of k items counts k Computes (so
// DijkstraRuns is path-independent), one batch, and at most one grow per
// slab sizing.
func TestBatchComputeStats(t *testing.T) {
	sc := gen.MustGenerate(batchParams(), 3)
	st := state.New(sc)
	bs := dijkstra.NewBatchScratch()
	items := make([]model.ItemID, len(sc.Items))
	for i := range items {
		items[i] = model.ItemID(i)
	}
	plans := make([]*dijkstra.Plan, len(items))
	const rounds = 4
	for r := 0; r < rounds; r++ {
		bs.ComputeBatch(st, items, plans)
	}
	stats := bs.Stats()
	if stats.Computes != rounds*len(items) {
		t.Errorf("Computes = %d, want %d", stats.Computes, rounds*len(items))
	}
	if stats.Grows != 1 {
		t.Errorf("Grows = %d, want 1 (slabs recycle across batches)", stats.Grows)
	}
	if bs.Batches() != rounds {
		t.Errorf("Batches = %d, want %d", bs.Batches(), rounds)
	}
	if stats.HeapHighWater == 0 {
		t.Error("HeapHighWater = 0 after non-trivial batches")
	}
}

// TestBatchComputeZeroAllocs gates the admission fast path: once slabs and
// plans are warm, a whole batch must not allocate.
func TestBatchComputeZeroAllocs(t *testing.T) {
	sc := gen.MustGenerate(batchParams(), 5)
	st := state.New(sc)
	bs := dijkstra.NewBatchScratch()
	items := make([]model.ItemID, len(sc.Items))
	for i := range items {
		items[i] = model.ItemID(i)
	}
	plans := make([]*dijkstra.Plan, len(items))
	bs.ComputeBatch(st, items, plans) // warm slabs and plans
	allocs := testing.AllocsPerRun(20, func() {
		bs.ComputeBatch(st, items, plans)
	})
	if allocs != 0 {
		t.Errorf("warm ComputeBatch allocated %.1f times per batch, want 0", allocs)
	}
}

// FuzzBatchComputeEquivalence drives the batched kernel against serial
// Compute on fuzzer-chosen scenarios, floors, and commit interleavings.
// Any divergence in any label, hop, or CapBlocked flag is a crash.
func FuzzBatchComputeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(0))
	f.Add(int64(42), uint8(3), uint16(1800))
	f.Add(int64(7), uint8(7), uint16(60))
	f.Fuzz(func(t *testing.T, seed int64, commits uint8, floorMin uint16) {
		sc, err := gen.Generate(batchParams(), seed%100000)
		if err != nil {
			t.Skip()
		}
		st := state.New(sc)
		bs := dijkstra.NewBatchScratch()
		plans := batchAgainstSerial(t, seed, st, bs, nil)
		commitSome(t, st, plans, int(commits%8))
		plans = batchAgainstSerial(t, seed, st, bs, plans)
		st.SetFloor(simtime.At(time.Duration(floorMin) * time.Minute))
		batchAgainstSerial(t, seed, st, bs, plans)
	})
}
