package dijkstra

import (
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
)

func at(d time.Duration) simtime.Instant { return simtime.At(d) }

func TestComputeLinePath(t *testing.T) {
	// 4 machines in a chain, 1 KB item at 0 → requested at 3.
	// 8000 bit/s ⇒ each hop is 1.024 s.
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	st := state.New(sc)
	p := Compute(st, 0)

	hop := 1024 * time.Millisecond
	wants := []simtime.Instant{0, at(hop), at(2 * hop), at(3 * hop)}
	for m, want := range wants {
		if p.Arrival[m] != want {
			t.Errorf("Arrival[%d]: got %v, want %v", m, p.Arrival[m], want)
		}
	}
	if !p.IsRoot(0) || p.IsRoot(1) {
		t.Error("root flags wrong")
	}
	hops, ok := p.PathTo(3)
	if !ok || len(hops) != 3 {
		t.Fatalf("PathTo(3): got %v, %v", hops, ok)
	}
	if hops[0].From != 0 || hops[0].To != 1 || hops[2].To != 3 {
		t.Errorf("path order wrong: %+v", hops)
	}
	if hops[1].Start != at(hop) || hops[1].Dur != hop {
		t.Errorf("hop timing: %+v", hops[1])
	}
	first, ok := p.FirstHopTo(3)
	if !ok || first != hops[0] {
		t.Errorf("FirstHopTo: got %+v, %v", first, ok)
	}
	if hops, ok := p.PathTo(0); !ok || len(hops) != 0 {
		t.Errorf("PathTo(holder): got %v, %v", hops, ok)
	}
	if _, ok := p.FirstHopTo(0); ok {
		t.Error("FirstHopTo(holder) should be !ok")
	}
}

func TestComputeChoosesFasterOfTwoPaths(t *testing.T) {
	sc := testnet.Diamond(1000*1000, time.Hour) // 1 MB; fast path 1 Mbit/s
	st := state.New(sc)
	p := Compute(st, 0)
	// Fast path: 8 Mbit over 1 Mbit/s = 8 s per hop, 16 s total.
	if p.Pred[3] != 1 {
		t.Errorf("Pred[3]: got %d, want 1 (fast path)", p.Pred[3])
	}
	if p.Arrival[3] != at(16*time.Second) {
		t.Errorf("Arrival[3]: got %v, want 16s", p.Arrival[3])
	}
}

func TestComputeMultipleSources(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(4, 1<<30)
	day := 24 * time.Hour
	// 0→1→2 and 3→2; back links for connectivity.
	b.Link(ms[0], ms[1], 0, day, 8000)
	b.Link(ms[1], ms[2], 0, day, 8000)
	b.Link(ms[3], ms[2], 0, day, 8000)
	b.Link(ms[2], ms[0], 0, day, 8000)
	b.Link(ms[2], ms[3], 0, day, 8000)
	b.Link(ms[1], ms[0], 0, day, 8000)
	// Two sources: machine 0 available immediately, machine 3 at 30 m.
	item := b.Item(1024,
		[]model.Source{testnet.Src(ms[0], 0), testnet.Src(ms[3], 30*time.Minute)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.High)})
	st := state.New(b.Build("multisrc"))
	p := Compute(st, item)

	// Early source wins despite the extra hop: 2×1.024 s ≪ 30 m.
	if p.Pred[2] != 1 {
		t.Errorf("Pred[2]: got %d, want 1", p.Pred[2])
	}
	if !p.IsRoot(3) || !p.IsRoot(0) {
		t.Error("both sources should be roots")
	}
	// Late source still labeled with its own availability.
	if p.Arrival[3] != at(30*time.Minute) {
		t.Errorf("Arrival[3]: got %v", p.Arrival[3])
	}
}

func TestComputeWaitsForWindow(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 10*time.Minute, 20*time.Minute, 8000)
	b.Link(ms[1], ms[0], 0, time.Hour, 8000)
	item := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	st := state.New(b.Build("window"))
	p := Compute(st, item)

	if p.Start[1] != at(10*time.Minute) {
		t.Errorf("Start[1]: got %v, want window open at 10m", p.Start[1])
	}
	if p.Arrival[1] != at(10*time.Minute+1024*time.Millisecond) {
		t.Errorf("Arrival[1]: got %v", p.Arrival[1])
	}
}

func TestComputePicksLaterWindowWhenFirstTooShort(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	// One physical link with two windows: the first too short for the
	// transfer (0.5 s), the second long enough.
	b.LinkWindows(ms[0], ms[1], 8000,
		simtime.Interval{Start: 0, End: at(500 * time.Millisecond)},
		simtime.Interval{Start: at(time.Minute), End: at(2 * time.Minute)},
	)
	b.Link(ms[1], ms[0], 0, time.Hour, 8000)
	item := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	st := state.New(b.Build("short-window"))
	p := Compute(st, item)

	if p.Start[1] != at(time.Minute) {
		t.Errorf("Start[1]: got %v, want 1m (second window)", p.Start[1])
	}
}

func TestComputeRoutesAroundBusyLink(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[2], 0, day, 8000)  // direct, 1.024 s
	b.Link(ms[0], ms[1], 0, day, 80000) // detour, 0.1024 s per hop
	b.Link(ms[1], ms[2], 0, day, 80000)
	b.Link(ms[2], ms[0], 0, day, 8000)
	itemA := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.High)})
	itemB := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.Low)})
	st := state.New(b.Build("busy"))

	// Occupy the direct link with itemA for its first second.
	if _, err := st.Commit(itemA, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := Compute(st, itemB)
	// Direct link busy until 1.024 s; detour delivers at ~0.205 s.
	if p.Pred[2] != 1 {
		t.Errorf("Pred[2]: got %d, want detour via 1", p.Pred[2])
	}
	if p.Arrival[2] >= at(time.Second) {
		t.Errorf("Arrival[2]: got %v, want < 1s", p.Arrival[2])
	}
}

func TestComputeSkipsCapacityStarvedMachine(t *testing.T) {
	b := testnet.NewBuilder()
	m0 := b.Machine(1 << 30)
	m1 := b.Machine(100) // cannot hold the 1 KB item
	m2 := b.Machine(1 << 30)
	day := 24 * time.Hour
	b.Link(m0, m1, 0, day, 80000)
	b.Link(m1, m2, 0, day, 80000)
	b.Link(m0, m2, 0, day, 800) // slow but feasible direct link
	b.Link(m2, m0, 0, day, 800)
	item := b.Item(1024, []model.Source{testnet.Src(m0, 0)},
		[]model.Request{testnet.Req(m2, time.Hour, model.High)})
	st := state.New(b.Build("starved"))
	p := Compute(st, item)

	if p.Reachable(m1) {
		t.Error("capacity-starved machine should be unreachable")
	}
	if p.Pred[m2] != m0 {
		t.Errorf("Pred[m2]: got %d, want direct from m0", p.Pred[m2])
	}
}

func TestComputeHoldEndBlocksSlowOnwardTransfer(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[1], 0, day, 8000)
	b.Link(ms[1], ms[2], 0, day, 8) // 1 KB at 8 bit/s ≈ 17 m — longer than the copy's life
	b.Link(ms[2], ms[0], 0, day, 8000)
	// Deadline 10 m ⇒ intermediate copy at 1 lives until 16 m.
	item := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 10*time.Minute, model.High)})
	st := state.New(b.Build("gcblock"))
	p := Compute(st, item)

	if !p.Reachable(1) {
		t.Fatal("machine 1 should be reachable")
	}
	if p.Reachable(2) {
		t.Errorf("machine 2 should be unreachable (transfer outlives the copy), got arrival %v", p.Arrival[2])
	}
}

func TestComputeUnreachableWhenNoWindowFits(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	// Window shorter than the transfer.
	b.Link(ms[0], ms[1], 0, time.Second, 800) // 1 KB at 800 bit/s = 10.24 s
	b.Link(ms[1], ms[0], 0, time.Hour, 800)
	item := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	st := state.New(b.Build("nofit"))
	p := Compute(st, item)

	if p.Reachable(1) {
		t.Error("machine 1 should be unreachable")
	}
	if _, ok := p.PathTo(1); ok {
		t.Error("PathTo(unreachable) should be !ok")
	}
}

func TestComputeDoesNotRelaxIntoHolders(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[1], 0, day, 80000)
	b.Link(ms[1], ms[2], 0, day, 80000)
	b.Link(ms[2], ms[0], 0, day, 80000)
	// Machine 1 is a source available only at 50 m; a transfer from 0 could
	// reach it in a fraction of a second, but holders are final.
	item := b.Item(1024,
		[]model.Source{testnet.Src(ms[0], 0), testnet.Src(ms[1], 50*time.Minute)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.High)})
	st := state.New(b.Build("holderfinal"))
	p := Compute(st, item)

	if p.Arrival[1] != at(50*time.Minute) {
		t.Errorf("Arrival[1]: got %v, want the source availability 50m", p.Arrival[1])
	}
	// Machine 2 is nevertheless served from machine 0 around the cycle? No
	// link 0→2 exists, so it must wait for 1's copy... or route 0→1 is
	// forbidden, so the only path to 2 is from 1 at 50 m.
	if p.Arrival[2] < at(50*time.Minute) {
		t.Errorf("Arrival[2]: got %v, want >= 50m", p.Arrival[2])
	}
	if p.Pred[2] != 1 {
		t.Errorf("Pred[2]: got %d, want 1", p.Pred[2])
	}
}
