package dijkstra_test

import (
	"testing"

	"datastaging/internal/dijkstra"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/state"
)

// benchSetup returns a paper-scale state and a (plan, destination) pair
// with a multi-hop path, so FirstHopTo has a chain to walk.
func benchSetup(tb testing.TB) (*state.State, *dijkstra.Plan, []model.MachineID) {
	tb.Helper()
	sc := gen.MustGenerate(gen.Default(), 42)
	st := state.New(sc)
	for item := range sc.Items {
		p := dijkstra.Compute(st, model.ItemID(item))
		var dests []model.MachineID
		for m := range p.Arrival {
			id := model.MachineID(m)
			if p.Reachable(id) && !p.IsRoot(id) {
				dests = append(dests, id)
			}
		}
		if len(dests) > 0 {
			return st, p, dests
		}
	}
	tb.Fatal("no item with a reachable non-root destination")
	return nil, nil, nil
}

// BenchmarkDijkstraComputeSerial measures one forest computation with
// serialized transfers on: every edge relaxation runs the fused three-way
// intersect-fit slot query (link ∧ send port ∧ receive port), the direct
// consumer of simtime.EarliestFitN.
func BenchmarkDijkstraComputeSerial(b *testing.B) {
	sc := gen.MustGenerate(gen.Default(), 42)
	sc.SerialTransfers = true
	st := state.New(sc)
	s := dijkstra.NewScratch()
	var pl *dijkstra.Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl = s.Compute(st, model.ItemID(i%len(sc.Items)), pl)
	}
}

// BenchmarkFirstHopTo measures first-hop extraction, the per-candidate
// query candidates() issues for every open request on every iteration.
// It walks the predecessor chain directly and must not allocate (the old
// implementation materialized and reversed the full path per call).
func BenchmarkFirstHopTo(b *testing.B) {
	_, p, dests := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.FirstHopTo(dests[i%len(dests)]); !ok {
			b.Fatal("destination became unreachable")
		}
	}
}

// BenchmarkPathTo measures full path materialization (used only when a
// path is actually committed, not per candidate).
func BenchmarkPathTo(b *testing.B) {
	_, p, dests := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.PathTo(dests[i%len(dests)]); !ok {
			b.Fatal("destination became unreachable")
		}
	}
}

// TestFirstHopToDoesNotAllocate pins the allocation contract.
func TestFirstHopToDoesNotAllocate(t *testing.T) {
	_, p, dests := benchSetup(t)
	allocs := testing.AllocsPerRun(100, func() {
		for _, d := range dests {
			p.FirstHopTo(d)
		}
	})
	if allocs != 0 {
		t.Errorf("FirstHopTo allocates %.1f times per sweep, want 0", allocs)
	}
}
