package dijkstra

import (
	"testing"
	"testing/quick"

	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

func quickParams() gen.Params {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 4, Max: 8}
	p.RequestsPerMachine = gen.IntRange{Min: 2, Max: 6}
	return p
}

// TestQuickPlansAreFeasible: for random scenarios, every planned path to a
// reachable machine must commit hop by hop against a fresh state without
// violating any constraint, and the committed arrival must equal the label.
func TestQuickPlansAreFeasible(t *testing.T) {
	property := func(seed int64) bool {
		sc := gen.MustGenerate(quickParams(), seed%100000)
		// One item at a time against a pristine state, like
		// possible_satisfy: reach every machine the plan claims.
		for i := range sc.Items {
			item := model.ItemID(i)
			st := state.New(sc)
			pl := Compute(st, item)
			for m := 0; m < sc.Network.NumMachines(); m++ {
				mid := model.MachineID(m)
				if !pl.Reachable(mid) || pl.IsRoot(mid) {
					continue
				}
				// Commit the whole path on a dedicated state.
				fresh := state.New(sc)
				hops, ok := pl.PathTo(mid)
				if !ok || len(hops) == 0 {
					t.Logf("seed %d item %d machine %d: reachable but no path", seed, i, m)
					return false
				}
				var last state.Transfer
				for _, h := range hops {
					tr, err := fresh.Commit(item, h.Link, h.Start)
					if err != nil {
						t.Logf("seed %d item %d machine %d: hop %+v rejected: %v", seed, i, m, h, err)
						return false
					}
					last = tr
				}
				if last.Arrival != pl.Arrival[mid] {
					t.Logf("seed %d item %d machine %d: arrival %v != label %v",
						seed, i, m, last.Arrival, pl.Arrival[mid])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickLabelsMonotoneAlongPaths: along any planned path, transfer
// starts are at or after the sender's label and arrivals strictly increase.
func TestQuickLabelsMonotoneAlongPaths(t *testing.T) {
	property := func(seed int64) bool {
		sc := gen.MustGenerate(quickParams(), seed%100000)
		st := state.New(sc)
		for i := range sc.Items {
			item := model.ItemID(i)
			pl := Compute(st, item)
			for m := 0; m < sc.Network.NumMachines(); m++ {
				mid := model.MachineID(m)
				hops, ok := pl.PathTo(mid)
				if !ok {
					continue
				}
				prev := simtime.Instant(-1)
				for _, h := range hops {
					if h.Start < pl.Arrival[h.From] {
						t.Logf("seed %d: hop starts before sender label", seed)
						return false
					}
					arr := h.Start.Add(h.Dur)
					if arr != pl.Arrival[h.To] {
						t.Logf("seed %d: hop arrival != label", seed)
						return false
					}
					if arr <= prev {
						t.Logf("seed %d: arrivals not increasing along path", seed)
						return false
					}
					prev = arr
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickLabelsLowerBoundSingleLink: a label can never beat the best
// single direct transfer from an original source — a cheap admissibility
// cross-check of the relaxation.
func TestQuickLabelsLowerBoundSingleLink(t *testing.T) {
	property := func(seed int64) bool {
		sc := gen.MustGenerate(quickParams(), seed%100000)
		st := state.New(sc)
		for i := range sc.Items {
			item := model.ItemID(i)
			it := sc.Item(item)
			pl := Compute(st, item)
			for _, src := range it.Sources {
				for _, lid := range sc.Network.Outgoing(src.Machine) {
					l := sc.Network.Link(lid)
					if st.Holds(item, l.To) {
						continue
					}
					d := l.TransferDuration(it.SizeBytes)
					slot, ok := st.LinkTimeline(lid).EarliestSlot(src.Available, d)
					if !ok {
						continue
					}
					arrival := slot.Add(d)
					hold := st.HoldInterval(item, l.To, arrival)
					if !st.Capacity(l.To).CanReserve(it.SizeBytes, hold) {
						continue
					}
					if arrival > st.HoldEnd(item, src.Machine) {
						continue
					}
					if pl.Arrival[l.To] > arrival {
						t.Logf("seed %d item %d: label %v beats.. is beaten by direct %v",
							seed, i, pl.Arrival[l.To], arrival)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
