package resource

import (
	"errors"
	"testing"
	"time"

	"datastaging/internal/simtime"
)

func at(d time.Duration) simtime.Instant { return simtime.At(d) }

func span(start, end time.Duration) simtime.Interval {
	return simtime.Interval{Start: at(start), End: at(end)}
}

func TestCapacityFreshProfile(t *testing.T) {
	c := NewCapacity(1000)
	if got := c.AvailableAt(at(0)); got != 1000 {
		t.Errorf("AvailableAt(0): got %d, want 1000", got)
	}
	if got := c.MinAvailable(span(0, time.Hour)); got != 1000 {
		t.Errorf("MinAvailable: got %d, want 1000", got)
	}
	if !c.CanReserve(1000, span(0, time.Hour)) {
		t.Error("should be able to reserve full capacity")
	}
	if c.CanReserve(1001, span(0, time.Hour)) {
		t.Error("should not be able to over-reserve")
	}
}

func TestCapacityReserveAndQuery(t *testing.T) {
	c := NewCapacity(1000)
	if err := c.Reserve(400, span(10*time.Minute, 20*time.Minute)); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	for _, tc := range []struct {
		at   time.Duration
		want int64
	}{
		{0, 1000}, {10 * time.Minute, 600}, {15 * time.Minute, 600},
		{20 * time.Minute, 1000}, {time.Hour, 1000},
	} {
		if got := c.AvailableAt(at(tc.at)); got != tc.want {
			t.Errorf("AvailableAt(%v): got %d, want %d", tc.at, got, tc.want)
		}
	}
	if got := c.MinAvailable(span(0, time.Hour)); got != 600 {
		t.Errorf("MinAvailable across reservation: got %d, want 600", got)
	}
	if got := c.MinAvailable(span(20*time.Minute, time.Hour)); got != 1000 {
		t.Errorf("MinAvailable after reservation: got %d, want 1000", got)
	}
}

func TestCapacityOverlappingReservations(t *testing.T) {
	c := NewCapacity(1000)
	if err := c.Reserve(400, span(0, 30*time.Minute)); err != nil {
		t.Fatalf("first Reserve: %v", err)
	}
	if err := c.Reserve(400, span(15*time.Minute, 45*time.Minute)); err != nil {
		t.Fatalf("second Reserve: %v", err)
	}
	if got := c.AvailableAt(at(20 * time.Minute)); got != 200 {
		t.Errorf("overlap region: got %d, want 200", got)
	}
	// A third 400-byte reservation over the overlap must fail atomically.
	err := c.Reserve(400, span(10*time.Minute, 40*time.Minute))
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("third Reserve: got %v, want ErrInsufficient", err)
	}
	// Profile unchanged by the failed reservation.
	if got := c.AvailableAt(at(5 * time.Minute)); got != 600 {
		t.Errorf("after failed reserve: got %d, want 600", got)
	}
	// But it fits where only one reservation is active.
	if err := c.Reserve(400, span(30*time.Minute, 40*time.Minute)); err != nil {
		t.Errorf("non-overlapping Reserve: %v", err)
	}
}

func TestCapacityReserveForever(t *testing.T) {
	c := NewCapacity(100)
	iv := simtime.Interval{Start: at(time.Minute), End: simtime.Forever}
	if err := c.Reserve(60, iv); err != nil {
		t.Fatalf("Reserve to Forever: %v", err)
	}
	if got := c.AvailableAt(at(0)); got != 100 {
		t.Errorf("before reservation: got %d, want 100", got)
	}
	if got := c.AvailableAt(at(24 * time.Hour * 365)); got != 40 {
		t.Errorf("far future: got %d, want 40", got)
	}
	if c.CanReserve(50, span(2*time.Minute, 3*time.Minute)) {
		t.Error("should not fit 50 after permanent reservation of 60")
	}
}

func TestCapacityReserveEdgeCases(t *testing.T) {
	c := NewCapacity(100)
	if err := c.Reserve(0, span(0, time.Minute)); err != nil {
		t.Errorf("zero reserve: %v", err)
	}
	if err := c.Reserve(50, span(time.Minute, time.Minute)); err != nil {
		t.Errorf("empty interval reserve: %v", err)
	}
	if got := c.MinAvailable(span(0, time.Hour)); got != 100 {
		t.Errorf("no-op reserves changed profile: got %d", got)
	}
	if err := c.Reserve(-1, span(0, time.Minute)); err == nil {
		t.Error("negative reserve should fail")
	}
	// Empty MinAvailable interval samples the start instant.
	if got := c.MinAvailable(span(time.Minute, time.Minute)); got != 100 {
		t.Errorf("point MinAvailable: got %d, want 100", got)
	}
}

func TestCapacityReleaseInvertsReserve(t *testing.T) {
	c := NewCapacity(500)
	iv := span(10*time.Minute, 50*time.Minute)
	if err := c.Reserve(200, iv); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	c.Release(200, iv)
	if got := c.MinAvailable(span(0, time.Hour)); got != 500 {
		t.Errorf("after release: got %d, want 500", got)
	}
	if got := c.Segments(); got != 1 {
		t.Errorf("segments did not coalesce: got %d, want 1", got)
	}
}

func TestCapacityReleaseNoOps(t *testing.T) {
	c := NewCapacity(100)
	c.Release(50, span(time.Minute, time.Minute)) // empty interval
	c.Release(0, span(0, time.Minute))            // zero amount
	c.Release(-5, span(0, time.Minute))           // negative amount
	if got := c.MinAvailable(span(0, time.Hour)); got != 100 {
		t.Errorf("no-op releases changed the profile: %d", got)
	}
}

func TestCapacityCloneIsolation(t *testing.T) {
	c := NewCapacity(100)
	cl := c.Clone()
	if err := cl.Reserve(100, span(0, time.Minute)); err != nil {
		t.Fatalf("Reserve on clone: %v", err)
	}
	if got := c.AvailableAt(at(30 * time.Second)); got != 100 {
		t.Errorf("original mutated by clone: got %d, want 100", got)
	}
}

func TestCapacityAbuttingReservationsCoalesce(t *testing.T) {
	c := NewCapacity(100)
	if err := c.Reserve(40, span(0, 10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(40, span(10*time.Minute, 20*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := c.MinAvailable(span(0, 20*time.Minute)); got != 60 {
		t.Errorf("abutting reservations: got %d, want 60", got)
	}
	if got := c.AvailableAt(at(10 * time.Minute)); got != 60 {
		t.Errorf("at boundary: got %d, want 60", got)
	}
	if c.String() == "" {
		t.Error("String should be non-empty")
	}
}
