package resource

import (
	"testing"
	"time"

	"datastaging/internal/simtime"
)

// benchCapacity returns a profile with ~n segments: n staggered
// reservations whose start and end instants never coincide, the shape of a
// storage-constrained machine late in a large run.
func benchCapacity(n int) *Capacity {
	c := NewCapacity(int64(n) * 100)
	for i := 0; i < n; i++ {
		start := simtime.At(time.Duration(i) * 3 * time.Second)
		iv := simtime.Interval{Start: start, End: start.Add(7 * time.Second)}
		if err := c.Reserve(10, iv); err != nil {
			panic(err)
		}
	}
	return c
}

// capacityBenchQueries returns query windows spread across a benchCapacity(n)
// profile, alternating a short probe with the dominant real shape: a hold
// interval running from the candidate arrival to the item's garbage-collection
// instant near the end of the horizon, which crosses most of the profile's
// segments.
func capacityBenchQueries(n int) []simtime.Interval {
	seed := uint64(0x9e3779b97f4a7c15)
	span := int64(n) * int64(3*time.Second)
	out := make([]simtime.Interval, 1024)
	for i := range out {
		seed = seed*6364136223846793005 + 1442695040888963407
		start := simtime.Instant(int64(seed>>1) % span)
		end := start.Add(30 * time.Second)
		if i%2 == 1 {
			end = simtime.Instant(span)
		}
		out[i] = simtime.Interval{Start: start, End: end}
	}
	return out
}

// BenchmarkCapacityMinAvailable measures the interval-minimum query on a
// dense ~1k-segment profile: the segment-min indexed kernel, O(1) per query
// after the lazily rebuilt index. BenchmarkCapacityMinAvailableSlow is the
// same workload on the linear reference walk — the before/after pair in
// BENCH_core.json.
func BenchmarkCapacityMinAvailable(b *testing.B) {
	const n = 1000
	c := benchCapacity(n)
	queries := capacityBenchQueries(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.MinAvailable(queries[i%len(queries)]) < 0 {
			b.Fatal("negative availability")
		}
	}
}

// BenchmarkCapacityMinAvailableSlow runs the identical workload through the
// pre-index linear reference (the differential-test oracle), so the cost the
// index removes stays measured in BENCH_core.json.
func BenchmarkCapacityMinAvailableSlow(b *testing.B) {
	const n = 1000
	c := benchCapacity(n)
	queries := capacityBenchQueries(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.minAvailableSlow(queries[i%len(queries)]) < 0 {
			b.Fatal("negative availability")
		}
	}
}
