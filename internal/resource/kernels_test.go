package resource

import (
	"math/rand"
	"testing"
	"time"

	"datastaging/internal/simtime"
)

func randIv(rng *rand.Rand) simtime.Interval {
	start := simtime.At(time.Duration(rng.Intn(600)) * time.Second)
	return simtime.Interval{Start: start, End: start.Add(time.Duration(rng.Intn(120)+1) * time.Second)}
}

// TestMinAvailableMatchesSlow interleaves mutations (which dirty the
// segment-min index) with query bursts (which rebuild and use it) and
// requires the indexed answer to match the linear reference on every
// query, on profiles from one segment to far past the index cutoff.
func TestMinAvailableMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCapacity(1 << 40)
	var held []struct {
		amount int64
		iv     simtime.Interval
	}
	for step := 0; step < 400; step++ {
		if rng.Intn(4) > 0 || len(held) == 0 {
			amount := int64(rng.Intn(1000) + 1)
			iv := randIv(rng)
			if rng.Intn(20) == 0 {
				iv.End = simtime.Forever
			}
			if err := c.Reserve(amount, iv); err != nil {
				t.Fatalf("step %d: reserve: %v", step, err)
			}
			held = append(held, struct {
				amount int64
				iv     simtime.Interval
			}{amount, iv})
		} else {
			k := rng.Intn(len(held))
			c.Release(held[k].amount, held[k].iv)
			held = append(held[:k], held[k+1:]...)
		}
		for q := 0; q < 5; q++ {
			iv := randIv(rng)
			switch rng.Intn(8) {
			case 0:
				iv.End = iv.Start // empty
			case 1:
				iv.End = simtime.Forever
			}
			got, want := c.MinAvailable(iv), c.MinAvailableSlow(iv)
			if got != want {
				t.Fatalf("step %d (%d segments): MinAvailable(%v) = %d, want %d",
					step, c.Segments(), iv, got, want)
			}
		}
	}
	if c.Segments() <= MinIndexCutoff {
		t.Fatalf("profile never crossed the index cutoff (%d segments); the fast path went untested", c.Segments())
	}
}

func TestMinAvailableSteadyStateZeroAllocs(t *testing.T) {
	c := benchCapacity(200)
	iv := simtime.Interval{Start: simtime.At(100 * time.Second), End: simtime.At(400 * time.Second)}
	c.MinAvailable(iv) // trigger the one post-mutation rebuild
	allocs := testing.AllocsPerRun(100, func() {
		c.MinAvailable(iv)
	})
	if allocs != 0 {
		t.Errorf("MinAvailable allocated %.1f times per query on a clean index, want 0", allocs)
	}
}

func TestMinAvailableIndexRebuildReusesBuffers(t *testing.T) {
	c := benchCapacity(200)
	iv := simtime.Interval{Start: simtime.At(100 * time.Second), End: simtime.At(400 * time.Second)}
	c.MinAvailable(iv)
	// A release/re-reserve cycle keeps the segment count stable, so the
	// rebuild after each mutation must reuse the index's backing arrays.
	rsv := simtime.Interval{Start: simtime.At(10 * time.Second), End: simtime.At(11 * time.Second)}
	if err := c.Reserve(1, rsv); err != nil {
		t.Fatal(err)
	}
	c.MinAvailable(iv)
	allocs := testing.AllocsPerRun(20, func() {
		c.Release(1, rsv)
		if err := c.Reserve(1, rsv); err != nil {
			t.Fatal(err)
		}
		c.MinAvailable(iv)
	})
	if allocs > 0 {
		t.Errorf("rebuild cycle allocated %.1f times per mutation+query, want 0", allocs)
	}
}

// TestLinkEarliestSlotHinted pins the cursor-hint protocol: monotone
// queries ride the hint, Commit and Block invalidate it, and results are
// always identical to the hintless reference.
func TestLinkEarliestSlotHinted(t *testing.T) {
	window := simtime.Interval{Start: 0, End: simtime.At(1000 * time.Second)}
	l := NewLinkTimeline(window)
	for i := 0; i < 20; i++ {
		if err := l.Commit(simtime.At(time.Duration(i)*50*time.Second), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var prevReady simtime.Instant
	hintedCount := 0
	for q := 0; q < 30; q++ {
		ready := prevReady.Add(25 * time.Second)
		prevReady = ready
		got, ok, hinted := l.EarliestSlotHinted(ready, 5*time.Second)
		// Set.EarliestFit is itself pinned against the linear reference by
		// the simtime differential tests; here it is the hintless oracle.
		want, wantOK := l.Free().EarliestFit(ready, 5*time.Second)
		if got != want || ok != wantOK {
			t.Fatalf("query %d: got (%v, %v), want (%v, %v)", q, got, ok, want, wantOK)
		}
		if hinted {
			hintedCount++
		}
	}
	if hintedCount < 25 {
		t.Errorf("monotone query stream hit the hint only %d/30 times", hintedCount)
	}
	// Commit invalidates: the next query must fall back (and still be right).
	start, ok := l.EarliestSlot(0, time.Second)
	if !ok {
		t.Fatal("no slot after partial commits")
	}
	if err := l.Commit(start, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, hinted := l.EarliestSlotHinted(start, time.Second); hinted {
		t.Error("hint survived a Commit")
	}
	l.Block(simtime.Interval{Start: simtime.At(990 * time.Second), End: simtime.At(995 * time.Second)})
	if _, _, hinted := l.EarliestSlotHinted(0, time.Second); hinted {
		t.Error("hint survived a Block")
	}
}

func TestLinkEarliestSlotZeroAllocs(t *testing.T) {
	window := simtime.Interval{Start: 0, End: simtime.At(1000 * time.Second)}
	l := NewLinkTimeline(window)
	for i := 0; i < 50; i++ {
		if err := l.Commit(simtime.At(time.Duration(i)*20*time.Second), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := l.EarliestSlot(simtime.At(500*time.Second), time.Second); !ok {
			t.Fatal("no slot")
		}
	})
	if allocs != 0 {
		t.Errorf("EarliestSlot allocated %.1f times per query, want 0", allocs)
	}
}

// FuzzKernelEquivalence drives an arbitrary reserve/release/query script
// against one Capacity and requires the indexed MinAvailable to agree with
// the linear reference after every operation.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{10, 0, 50, 3, 200, 8, 90, 1})
	f.Add([]byte{255, 255, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCapacity(1 << 30)
		type rsv struct {
			amount int64
			iv     simtime.Interval
		}
		var held []rsv
		for i := 0; i+2 < len(data); i += 3 {
			start := simtime.At(time.Duration(data[i]) * time.Second)
			iv := simtime.Interval{Start: start, End: start.Add(time.Duration(data[i+1]%60+1) * time.Second)}
			amount := int64(data[i+2])
			switch data[i] % 3 {
			case 0, 1:
				if err := c.Reserve(amount, iv); err == nil {
					held = append(held, rsv{amount, iv})
				}
			case 2:
				if len(held) > 0 {
					k := int(data[i+1]) % len(held)
					c.Release(held[k].amount, held[k].iv)
					held = append(held[:k], held[k+1:]...)
				}
			}
			q := simtime.Interval{Start: start.Add(-30 * time.Second), End: start.Add(time.Duration(data[i+2]%90) * time.Second)}
			if got, want := c.MinAvailable(q), c.MinAvailableSlow(q); got != want {
				t.Fatalf("op %d (%d segments): MinAvailable(%v) = %d, want %d", i/3, c.Segments(), q, got, want)
			}
		}
	})
}
