// Package resource provides the two consumable-resource timelines of the
// data staging model: per-machine storage capacity (a piecewise-constant
// profile of available bytes over simulated time) and per-virtual-link
// transmission timelines (a serial resource available inside one window).
//
// Both are pure bookkeeping structures: the scheduling heuristics query them
// for feasibility ("can machine r hold |d| bytes from arrival until garbage
// collection?", "when is the earliest slot on this link?") and commit
// reservations as communication steps are chosen.
package resource

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"datastaging/internal/simtime"
)

// ErrInsufficient is returned by Capacity.Reserve when the requested amount
// is not available over the whole requested interval.
var ErrInsufficient = errors.New("resource: insufficient capacity over interval")

// Capacity tracks the available storage of one machine as a piecewise-
// constant function of time, Cap[i](t) in the paper's notation. A
// reservation of b bytes over [start, end) decrements the available amount
// on that interval; the end instant is how the model expresses garbage
// collection (intermediate copies are reserved until γ after the item's
// latest deadline, copies at sources and destinations until
// simtime.Forever).
type Capacity struct {
	// segs are sorted by start; segs[k] is in effect on
	// [segs[k].start, segs[k+1].start), and the last segment extends to
	// the end of time. There is always at least one segment.
	segs []capSegment

	// idx is the sparse-table range-minimum index over the segments'
	// avail values, valid only while dirty is false. Mutations (Reserve,
	// Release) mark it dirty; the first MinAvailable on a large profile
	// afterwards rebuilds it under mu, so the rebuild cost is amortized
	// over the many feasibility queries between commits. Queries may run
	// concurrently with each other (the planner's parallel replanning
	// does), but never concurrently with a mutation — the same contract
	// the rest of the state bookkeeping already has.
	idx   minTable
	dirty atomic.Bool
	mu    sync.Mutex
}

type capSegment struct {
	start simtime.Instant
	avail int64
}

// minIndexCutoff is the profile size below which MinAvailable stays a
// plain linear walk: for a handful of segments the scan beats the index
// lookup and nothing is ever rebuilt.
const minIndexCutoff = 32

// NewCapacity returns a profile with total bytes available at all times.
func NewCapacity(total int64) *Capacity {
	c := &Capacity{segs: []capSegment{{start: simtime.Instant(math.MinInt64), avail: total}}}
	c.dirty.Store(true)
	return c
}

// MinAvailable returns the minimum available bytes over the interval iv.
// An empty interval yields the availability at iv.Start.
//
// On profiles larger than minIndexCutoff the query is served from the
// segment-min index in O(log n): two binary searches for the boundary
// segments and one constant-time sparse-table lookup. minAvailableSlow is
// the linear reference the differential tests pin this against.
func (c *Capacity) MinAvailable(iv simtime.Interval) int64 {
	if iv.End <= iv.Start {
		return c.segs[c.segIndex(iv.Start)].avail
	}
	if len(c.segs) <= minIndexCutoff {
		return c.minAvailableSlow(iv)
	}
	c.ensureIndex()
	i := c.segIndex(iv.Start)
	// The last segment in effect before iv.End: greatest start <= End-1,
	// i.e. start < End (End > Start > MinInt64, so End-1 cannot wrap).
	j := c.segIndex(iv.End - 1)
	return c.idx.min(i, j)
}

// minAvailableSlow is the pre-index reference implementation: a linear
// walk over every segment the interval touches. Kept as the oracle for
// the differential kernel tests and FuzzKernelEquivalence (exported to
// tests via export_test.go).
func (c *Capacity) minAvailableSlow(iv simtime.Interval) int64 {
	if iv.End < iv.Start {
		iv.End = iv.Start
	}
	i := c.segIndex(iv.Start)
	minAvail := c.segs[i].avail
	for i++; i < len(c.segs) && c.segs[i].start < iv.End; i++ {
		if c.segs[i].avail < minAvail {
			minAvail = c.segs[i].avail
		}
	}
	return minAvail
}

// ensureIndex rebuilds the segment-min index if a mutation invalidated
// it. Safe for concurrent queries: the atomic dirty flag is double-checked
// under mu, and a reader only touches idx after observing dirty == false,
// which orders it after the rebuild that cleared the flag.
func (c *Capacity) ensureIndex() {
	if !c.dirty.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty.Load() {
		c.idx.rebuild(c.segs)
		c.dirty.Store(false)
	}
}

// minTable is a sparse table for range-minimum queries over the segment
// availabilities: level[k][i] is the minimum over segs[i : i+2^k]. Build
// is O(n log n); queries are O(1). Rebuilds reuse the backing arrays, so
// the steady state allocates nothing.
type minTable struct {
	level [][]int64
}

func (m *minTable) rebuild(segs []capSegment) {
	n := len(segs)
	levels := bits.Len(uint(n)) // 2^(levels-1) <= n
	if cap(m.level) < levels {
		m.level = append(m.level[:cap(m.level)], make([][]int64, levels-cap(m.level))...)
	}
	m.level = m.level[:levels]
	// Profiles grow a few segments per commit, so size fresh rows with
	// slack: without it every rebuild of a growing profile reallocates
	// every level.
	grow := func(s []int64, n int) []int64 {
		if cap(s) < n {
			return make([]int64, n, 2*n)
		}
		return s[:n]
	}
	m.level[0] = grow(m.level[0], n)
	for i, s := range segs {
		m.level[0][i] = s.avail
	}
	for k := 1; k < levels; k++ {
		width := 1 << k
		rows := n - width + 1
		m.level[k] = grow(m.level[k], rows)
		prev := m.level[k-1]
		for i := 0; i < rows; i++ {
			a, b := prev[i], prev[i+width/2]
			if b < a {
				a = b
			}
			m.level[k][i] = a
		}
	}
}

// min returns the minimum availability over segment indices [i, j], j >= i.
func (m *minTable) min(i, j int) int64 {
	k := bits.Len(uint(j-i+1)) - 1
	a, b := m.level[k][i], m.level[k][j+1-1<<k]
	if b < a {
		return b
	}
	return a
}

// AvailableAt returns the available bytes at instant t.
func (c *Capacity) AvailableAt(t simtime.Instant) int64 {
	return c.segs[c.segIndex(t)].avail
}

// CanReserve reports whether amount bytes are available over all of iv.
func (c *Capacity) CanReserve(amount int64, iv simtime.Interval) bool {
	return c.MinAvailable(iv) >= amount
}

// Reserve decrements the available capacity by amount over iv. It fails
// with ErrInsufficient (leaving the profile unchanged) if the amount is not
// available over the whole interval. Reserving over an empty interval is a
// no-op. A negative amount is rejected.
func (c *Capacity) Reserve(amount int64, iv simtime.Interval) error {
	if amount < 0 {
		return fmt.Errorf("resource: negative reservation %d", amount)
	}
	if iv.IsEmpty() || amount == 0 {
		return nil
	}
	if !c.CanReserve(amount, iv) {
		return ErrInsufficient
	}
	c.adjust(-amount, iv)
	return nil
}

// Release returns amount bytes to the profile over iv. It is the inverse of
// Reserve and is used by what-if rollbacks in tests; the scheduler itself
// encodes garbage collection in reservation end instants instead.
func (c *Capacity) Release(amount int64, iv simtime.Interval) {
	if iv.IsEmpty() || amount <= 0 {
		return
	}
	c.adjust(amount, iv)
}

// adjust adds delta to the available amount over iv, splitting segments at
// the interval boundaries as needed.
func (c *Capacity) adjust(delta int64, iv simtime.Interval) {
	c.splitAt(iv.Start)
	if iv.End != simtime.Forever {
		c.splitAt(iv.End)
	}
	for k := range c.segs {
		if c.segs[k].start >= iv.Start && (iv.End == simtime.Forever || c.segs[k].start < iv.End) {
			c.segs[k].avail += delta
		}
	}
	c.coalesce()
	c.dirty.Store(true)
}

// splitAt ensures a segment boundary exists exactly at t.
func (c *Capacity) splitAt(t simtime.Instant) {
	i := c.segIndex(t)
	if c.segs[i].start == t {
		return
	}
	c.segs = append(c.segs, capSegment{})
	copy(c.segs[i+2:], c.segs[i+1:])
	c.segs[i+1] = capSegment{start: t, avail: c.segs[i].avail}
}

// coalesce merges adjacent segments with equal availability.
func (c *Capacity) coalesce() {
	out := c.segs[:1]
	for _, s := range c.segs[1:] {
		if s.avail == out[len(out)-1].avail {
			continue
		}
		out = append(out, s)
	}
	c.segs = out
}

// segIndex returns the index of the segment in effect at t.
func (c *Capacity) segIndex(t simtime.Instant) int {
	lo, hi := 0, len(c.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.segs[mid].start <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Clone returns a deep copy of the profile. The segment-min index is not
// copied; the clone rebuilds its own on first use.
func (c *Capacity) Clone() *Capacity {
	segs := make([]capSegment, len(c.segs))
	copy(segs, c.segs)
	out := &Capacity{segs: segs}
	out.dirty.Store(true)
	return out
}

// Segments returns the number of internal segments (exported for tests and
// diagnostics; a healthy profile stays small because reservations share
// garbage-collection boundaries).
func (c *Capacity) Segments() int { return len(c.segs) }

// String renders the profile for diagnostics.
func (c *Capacity) String() string {
	out := ""
	for i, s := range c.segs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("[%v→%d]", s.start, s.avail)
	}
	return out
}
