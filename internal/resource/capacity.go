// Package resource provides the two consumable-resource timelines of the
// data staging model: per-machine storage capacity (a piecewise-constant
// profile of available bytes over simulated time) and per-virtual-link
// transmission timelines (a serial resource available inside one window).
//
// Both are pure bookkeeping structures: the scheduling heuristics query them
// for feasibility ("can machine r hold |d| bytes from arrival until garbage
// collection?", "when is the earliest slot on this link?") and commit
// reservations as communication steps are chosen.
package resource

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"datastaging/internal/simtime"
)

// ErrInsufficient is returned by Capacity.Reserve when the requested amount
// is not available over the whole requested interval.
var ErrInsufficient = errors.New("resource: insufficient capacity over interval")

// Capacity tracks the available storage of one machine as a piecewise-
// constant function of time, Cap[i](t) in the paper's notation. A
// reservation of b bytes over [start, end) decrements the available amount
// on that interval; the end instant is how the model expresses garbage
// collection (intermediate copies are reserved until γ after the item's
// latest deadline, copies at sources and destinations until
// simtime.Forever).
type Capacity struct {
	// segs are sorted by start; segs[k] is in effect on
	// [segs[k].start, segs[k+1].start), and the last segment extends to
	// the end of time. There is always at least one segment.
	segs []capSegment

	// idx is the sparse-table range-minimum index over the segments'
	// avail values, valid only while dirty is false. Mutations (Reserve,
	// Release) mark it dirty; the first MinAvailable on a large profile
	// afterwards rebuilds it under mu, so the rebuild cost is amortized
	// over the many feasibility queries between commits. Queries may run
	// concurrently with each other (the planner's parallel replanning
	// does), but never concurrently with a mutation — the same contract
	// the rest of the state bookkeeping already has.
	idx   minTable
	dirty atomic.Bool
	mu    sync.Mutex

	// minEver caches the minimum availability over the entire timeline:
	// the fast accept for CanReserve, where any amount at or below it
	// fits on every interval without a range query. Rebuilt lazily (one
	// O(n) scan after a mutation, amortized over the many feasibility
	// probes between commits) under the same mutations-never-race-queries
	// contract as idx: a reader touches minEver only after observing
	// minEverDirty == false, which orders it after the scan that cleared
	// the flag.
	minEver      int64
	minEverDirty atomic.Bool

	// dirtyFrom is the lowest segment index a mutation has touched since
	// the last index rebuild (len(segs) when the index is clean). Segment
	// indices below it are byte-identical to what the last rebuild saw —
	// inserts, removals, and avail changes all happen at or after the
	// mark — so the rebuild only recomputes table entries whose window
	// reaches into the dirty suffix. Under the scheduler's frontier-
	// biased mutation pattern (reservations start near the planning
	// floor, i.e. near the end of the timeline) this turns the O(n log n)
	// full rebuild into a near-O(log n) touch-up. Written only by
	// mutators, read only under mu; covered by the mutations-never-race-
	// queries contract above.
	dirtyFrom int
}

type capSegment struct {
	start simtime.Instant
	avail int64
}

// minIndexCutoff is the profile size below which MinAvailable stays a
// plain linear walk: for a handful of segments the scan beats the index
// lookup and nothing is ever rebuilt.
const minIndexCutoff = 32

// NewCapacity returns a profile with total bytes available at all times.
func NewCapacity(total int64) *Capacity {
	c := &Capacity{segs: []capSegment{{start: simtime.Instant(math.MinInt64), avail: total}}}
	c.dirty.Store(true)
	c.minEverDirty.Store(true)
	return c
}

// MinAvailable returns the minimum available bytes over the interval iv.
// An empty interval yields the availability at iv.Start.
//
// On profiles larger than minIndexCutoff the query is served from the
// segment-min index in O(log n): two binary searches for the boundary
// segments and one constant-time sparse-table lookup. minAvailableSlow is
// the linear reference the differential tests pin this against.
func (c *Capacity) MinAvailable(iv simtime.Interval) int64 {
	if iv.End <= iv.Start {
		return c.segs[c.segIndex(iv.Start)].avail
	}
	if len(c.segs) <= minIndexCutoff {
		return c.minAvailableSlow(iv)
	}
	c.ensureIndex()
	i := c.segIndex(iv.Start)
	// The last segment in effect before iv.End: greatest start <= End-1,
	// i.e. start < End (End > Start > MinInt64, so End-1 cannot wrap).
	j := c.segIndex(iv.End - 1)
	return c.idx.min(i, j)
}

// minAvailableSlow is the pre-index reference implementation: a linear
// walk over every segment the interval touches. Kept as the oracle for
// the differential kernel tests and FuzzKernelEquivalence (exported to
// tests via export_test.go).
func (c *Capacity) minAvailableSlow(iv simtime.Interval) int64 {
	if iv.End < iv.Start {
		iv.End = iv.Start
	}
	i := c.segIndex(iv.Start)
	minAvail := c.segs[i].avail
	for i++; i < len(c.segs) && c.segs[i].start < iv.End; i++ {
		if c.segs[i].avail < minAvail {
			minAvail = c.segs[i].avail
		}
	}
	return minAvail
}

// ensureIndex rebuilds the segment-min index if a mutation invalidated
// it. Safe for concurrent queries: the atomic dirty flag is double-checked
// under mu, and a reader only touches idx after observing dirty == false,
// which orders it after the rebuild that cleared the flag.
func (c *Capacity) ensureIndex() {
	if !c.dirty.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty.Load() {
		c.idx.rebuild(c.segs, c.dirtyFrom)
		c.dirtyFrom = len(c.segs)
		c.dirty.Store(false)
	}
}

// markDirty records that segment indices >= i may have changed since the
// last rebuild.
func (c *Capacity) markDirty(i int) {
	c.minEverDirty.Store(true)
	if !c.dirty.Load() {
		c.dirtyFrom = i
		c.dirty.Store(true)
	} else if i < c.dirtyFrom {
		c.dirtyFrom = i
	}
}

// minTable is a sparse table for range-minimum queries over the segment
// availabilities: level[k][i] is the minimum over segs[i : i+2^k]. A full
// build is O(n log n); queries are O(1). Rebuilds are incremental: given
// the lowest segment index mutated since the last build, only entries
// whose window reaches into that suffix are recomputed, and backing
// arrays are reused, so the steady state allocates nothing.
type minTable struct {
	level [][]int64
	// built[k] is how many leading entries of level[k] were valid after
	// the last rebuild. Rows dropped when the profile shrank below a
	// power of two are marked stale (built = 0) so a later regrowth
	// rebuilds them from scratch instead of trusting values computed
	// against a long-gone segment layout.
	built []int
}

// rebuild refreshes the table for segs, where segment indices below
// `from` are unchanged since the last rebuild. A level-k entry at i
// covers segs[i : i+2^k]; it stays valid iff that window lies entirely
// in the unchanged prefix AND the entry was valid last time, so the scan
// restarts at min(from-2^k+1, built[k]).
func (m *minTable) rebuild(segs []capSegment, from int) {
	n := len(segs)
	if from < 0 {
		from = 0
	}
	if from > n {
		from = n
	}
	levels := bits.Len(uint(n)) // 2^(levels-1) <= n
	for len(m.level) < levels {
		m.level = append(m.level, nil)
		m.built = append(m.built, 0)
	}
	for k := levels; k < len(m.built); k++ {
		m.built[k] = 0
	}
	// Profiles grow a few segments per commit, so size fresh rows with
	// slack: without it every rebuild of a growing profile reallocates
	// every level. Reallocation copies the old row so the valid prefix
	// survives.
	grow := func(s []int64, n int) []int64 {
		if cap(s) < n {
			ns := make([]int64, n, 2*n)
			copy(ns, s)
			return ns
		}
		return s[:n]
	}
	for k := 0; k < levels; k++ {
		width := 1 << k
		rows := n - width + 1
		start := from - width + 1
		if start < 0 {
			start = 0
		}
		if start > m.built[k] {
			start = m.built[k]
		}
		if start > rows {
			start = rows
		}
		m.level[k] = grow(m.level[k], rows)
		if k == 0 {
			for i := start; i < rows; i++ {
				m.level[0][i] = segs[i].avail
			}
		} else {
			prev, half := m.level[k-1], width/2
			for i := start; i < rows; i++ {
				a, b := prev[i], prev[i+half]
				if b < a {
					a = b
				}
				m.level[k][i] = a
			}
		}
		m.built[k] = rows
	}
}

// min returns the minimum availability over segment indices [i, j], j >= i.
func (m *minTable) min(i, j int) int64 {
	k := bits.Len(uint(j-i+1)) - 1
	a, b := m.level[k][i], m.level[k][j+1-1<<k]
	if b < a {
		return b
	}
	return a
}

// AvailableAt returns the available bytes at instant t.
func (c *Capacity) AvailableAt(t simtime.Instant) int64 {
	return c.segs[c.segIndex(t)].avail
}

// CanReserve reports whether amount bytes are available over all of iv.
func (c *Capacity) CanReserve(amount int64, iv simtime.Interval) bool {
	if amount <= c.MinEver() {
		return true // fits at the profile's all-time low, so on any interval
	}
	return c.MinAvailable(iv) >= amount
}

// MinEver returns the minimum available bytes over the entire timeline —
// the strongest interval-independent guarantee the profile can give. The
// value is cached across queries and rescanned only after a mutation.
func (c *Capacity) MinEver() int64 {
	if c.minEverDirty.Load() {
		c.mu.Lock()
		if c.minEverDirty.Load() {
			m := c.segs[0].avail
			for _, s := range c.segs[1:] {
				if s.avail < m {
					m = s.avail
				}
			}
			c.minEver = m
			c.minEverDirty.Store(false)
		}
		c.mu.Unlock()
	}
	return c.minEver
}

// Reserve decrements the available capacity by amount over iv. It fails
// with ErrInsufficient (leaving the profile unchanged) if the amount is not
// available over the whole interval. Reserving over an empty interval is a
// no-op. A negative amount is rejected.
func (c *Capacity) Reserve(amount int64, iv simtime.Interval) error {
	if amount < 0 {
		return fmt.Errorf("resource: negative reservation %d", amount)
	}
	if iv.IsEmpty() || amount == 0 {
		return nil
	}
	if !c.CanReserve(amount, iv) {
		return ErrInsufficient
	}
	c.adjust(-amount, iv)
	return nil
}

// Release returns amount bytes to the profile over iv. It is the inverse of
// Reserve and is used by what-if rollbacks in tests; the scheduler itself
// encodes garbage collection in reservation end instants instead.
func (c *Capacity) Release(amount int64, iv simtime.Interval) {
	if iv.IsEmpty() || amount <= 0 {
		return
	}
	c.adjust(amount, iv)
}

// adjust adds delta to the available amount over iv, splitting segments at
// the interval boundaries as needed. The whole operation is local to the
// segments the interval touches: only [lo, hi) is modified, and only the
// two edges of that range can newly merge with an outside neighbor
// (interior neighbors moved by the same delta, so an already-coalesced
// profile stays coalesced there). Nothing below lo changes, which is what
// lets the index rebuild skip the unchanged prefix.
func (c *Capacity) adjust(delta int64, iv simtime.Interval) {
	c.splitAt(iv.Start)
	lo := c.segIndex(iv.Start) // first adjusted segment, starts exactly at iv.Start
	hi := len(c.segs)          // one past the last adjusted segment
	if iv.End != simtime.Forever {
		c.splitAt(iv.End) // inserts strictly after lo, so lo stays valid
		hi = c.segIndex(iv.End)
	}
	for k := lo; k < hi; k++ {
		c.segs[k].avail += delta
	}
	// Edge coalescing, right edge first so removing at lo cannot shift hi.
	if hi < len(c.segs) && c.segs[hi].avail == c.segs[hi-1].avail {
		c.segs = append(c.segs[:hi], c.segs[hi+1:]...)
	}
	if lo > 0 && c.segs[lo].avail == c.segs[lo-1].avail {
		c.segs = append(c.segs[:lo], c.segs[lo+1:]...)
	}
	c.markDirty(lo)
}

// splitAt ensures a segment boundary exists exactly at t.
func (c *Capacity) splitAt(t simtime.Instant) {
	i := c.segIndex(t)
	if c.segs[i].start == t {
		return
	}
	c.segs = append(c.segs, capSegment{})
	copy(c.segs[i+2:], c.segs[i+1:])
	c.segs[i+1] = capSegment{start: t, avail: c.segs[i].avail}
}

// segIndex returns the index of the segment in effect at t.
func (c *Capacity) segIndex(t simtime.Instant) int {
	lo, hi := 0, len(c.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.segs[mid].start <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Clone returns a deep copy of the profile. The segment-min index is not
// copied; the clone rebuilds its own on first use.
func (c *Capacity) Clone() *Capacity {
	segs := make([]capSegment, len(c.segs))
	copy(segs, c.segs)
	out := &Capacity{segs: segs}
	out.dirty.Store(true)
	out.minEverDirty.Store(true)
	return out
}

// Segments returns the number of internal segments (exported for tests and
// diagnostics; a healthy profile stays small because reservations share
// garbage-collection boundaries).
func (c *Capacity) Segments() int { return len(c.segs) }

// String renders the profile for diagnostics.
func (c *Capacity) String() string {
	out := ""
	for i, s := range c.segs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("[%v→%d]", s.start, s.avail)
	}
	return out
}
