package resource

import (
	"testing"
	"time"

	"datastaging/internal/simtime"
)

// TestSlotQueryAllocs gates the admission fast path's slot queries at zero
// allocations: a regression here used to drift silently in BENCH_core.json
// until a trajectory run noticed; now it fails the suite.
func TestSlotQueryAllocs(t *testing.T) {
	lt := NewLinkTimeline(simtime.Interval{Start: 0, End: simtime.Forever})
	at := simtime.At(0)
	for i := 0; i < 64; i++ {
		if err := lt.Commit(at, time.Second); err != nil {
			t.Fatal(err)
		}
		at = at.Add(2 * time.Second)
	}
	if a := testing.AllocsPerRun(100, func() {
		if _, ok := lt.EarliestSlot(simtime.At(time.Second), time.Second); !ok {
			t.Fatal("no slot on a mostly-free timeline")
		}
	}); a != 0 {
		t.Errorf("EarliestSlot allocates %.1f per query, want 0", a)
	}
	var cur int32
	if a := testing.AllocsPerRun(100, func() {
		if _, ok, _ := lt.EarliestSlotCursor(&cur, simtime.At(time.Second), time.Second); !ok {
			t.Fatal("no slot on a mostly-free timeline")
		}
	}); a != 0 {
		t.Errorf("EarliestSlotCursor allocates %.1f per query, want 0", a)
	}
}

// TestCapacityQueryAllocs gates the feasibility probes: once the segment-min
// caches are warm, CanReserve and MinAvailable are allocation-free no matter
// how fragmented the profile is.
func TestCapacityQueryAllocs(t *testing.T) {
	c := NewCapacity(1 << 20)
	at := simtime.At(0)
	for i := 0; i < 64; i++ { // well past minIndexCutoff: exercises the index path
		if err := c.Reserve(64, simtime.Interval{Start: at, End: simtime.Forever}); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	iv := simtime.Interval{Start: simtime.At(5 * time.Second), End: simtime.Forever}
	c.MinAvailable(iv) // warm the sparse table and the MinEver cache
	if a := testing.AllocsPerRun(100, func() {
		if !c.CanReserve(64, iv) {
			t.Fatal("reservation should fit")
		}
		c.MinAvailable(iv)
	}); a != 0 {
		t.Errorf("capacity queries allocate %.1f per probe, want 0", a)
	}
}
