package resource

import (
	"fmt"
	"sync/atomic"
	"time"

	"datastaging/internal/simtime"
)

// LinkTimeline tracks the occupancy of one virtual communication link: a
// serial transmission resource that exists only inside its availability
// window [Lst, Let) (paper §3). A transfer occupies the link exclusively for
// its whole duration, and a transfer must fit entirely inside the window —
// transfers are never split across virtual links.
type LinkTimeline struct {
	window simtime.Interval
	free   simtime.Set

	// hint is the monotone EarliestSlot cursor: the free-set interval
	// index the last query landed on. Dijkstra relaxations query each
	// link with non-decreasing ready times, so the next query usually
	// starts exactly where the last one ended; a stale hint is detected
	// and falls back to the indexed search, so correctness never depends
	// on it. Commit and Block invalidate it (the free set changed).
	// Atomic because concurrent forest recomputations share the timeline
	// read-only; the hint is the one cell they may both touch.
	hint atomic.Int64
}

// NewLinkTimeline returns an idle timeline for a link available over window.
func NewLinkTimeline(window simtime.Interval) *LinkTimeline {
	return &LinkTimeline{window: window, free: simtime.NewSet(window)}
}

// NewLinkTimelines returns one idle timeline per window. The timelines and
// their free sets are drawn from batched backing allocations (see
// simtime.NewSets): a scenario's state holds one timeline per virtual link
// — thousands — so per-timeline allocation would dominate state
// construction.
func NewLinkTimelines(windows []simtime.Interval) []*LinkTimeline {
	tls := make([]LinkTimeline, len(windows))
	sets := simtime.NewSets(windows)
	out := make([]*LinkTimeline, len(windows))
	for i := range tls {
		tls[i].window = windows[i]
		tls[i].free = sets[i]
		out[i] = &tls[i]
	}
	return out
}

// Window returns the link's availability window.
func (l *LinkTimeline) Window() simtime.Interval { return l.window }

// Free exposes the link's free-time set for read-only composition (e.g.
// intersecting link, send-port, and receive-port availability). Callers
// must not mutate it.
func (l *LinkTimeline) Free() *simtime.Set { return &l.free }

// EarliestSlot returns the earliest instant t >= ready at which a transfer
// of duration d can start so that [t, t+d) is free link time inside the
// window. ok is false when no such slot exists. A zero or negative d asks
// for the first free instant (a zero-length transfer still has to happen
// while the link exists).
func (l *LinkTimeline) EarliestSlot(ready simtime.Instant, d time.Duration) (start simtime.Instant, ok bool) {
	start, ok, _ = l.EarliestSlotHinted(ready, d)
	return start, ok
}

// EarliestSlotHinted is EarliestSlot, additionally reporting whether the
// link's monotone cursor hint was valid for this query — the fast path
// that skips even the binary search into the free set.
func (l *LinkTimeline) EarliestSlotHinted(ready simtime.Instant, d time.Duration) (start simtime.Instant, ok, hinted bool) {
	start, next, ok, hinted := l.free.EarliestFitHint(int(l.hint.Load()), ready, d)
	l.hint.Store(int64(next))
	return start, ok, hinted
}

// EarliestSlotCursor is EarliestSlotHinted with a caller-owned cursor in
// place of the timeline's shared hint cell. The batched relaxation kernel
// issues queries with globally non-decreasing ready times across many
// forests at once; giving the batch private cursors lets it walk each
// timeline once end to end without disturbing (or being disturbed by) the
// shared hint other computations ride. Any cursor value is legal — a stale
// one falls back to the indexed search — and *cur is updated for the next
// query.
func (l *LinkTimeline) EarliestSlotCursor(cur *int32, ready simtime.Instant, d time.Duration) (start simtime.Instant, ok, hinted bool) {
	start, next, ok, hinted := l.free.EarliestFitHint(int(*cur), ready, d)
	*cur = int32(next)
	return start, ok, hinted
}

// CanCommit reports whether [start, start+d) is currently free link time.
func (l *LinkTimeline) CanCommit(start simtime.Instant, d time.Duration) bool {
	if d < 0 {
		return false
	}
	if d == 0 {
		return l.free.Contains(start)
	}
	return l.free.ContainsInterval(simtime.Span(start, d))
}

// Commit reserves [start, start+d) on the link. It fails, leaving the
// timeline unchanged, if that span is not entirely free.
func (l *LinkTimeline) Commit(start simtime.Instant, d time.Duration) error {
	if !l.CanCommit(start, d) {
		return fmt.Errorf("resource: link slot %v+%v not free (window %v)", start, d, l.window)
	}
	l.free.Subtract(simtime.Span(start, d))
	l.hint.Store(-1)
	return nil
}

// Block removes iv from the link's free time without a transfer: an
// administrative outage. Free time already consumed by commits is
// unaffected (it is already gone).
func (l *LinkTimeline) Block(iv simtime.Interval) {
	l.free.Subtract(iv)
	l.hint.Store(-1)
}

// BusyTime returns the total committed transmission time on the link.
func (l *LinkTimeline) BusyTime() time.Duration {
	return l.window.Length() - l.free.Total()
}

// FreeWithin reports whether any free instant remains at or after ready.
func (l *LinkTimeline) FreeWithin(ready simtime.Instant) bool {
	_, ok := l.free.EarliestFit(ready, 0)
	return ok
}

// Clone returns a deep copy of the timeline. The cursor hint resets; the
// clone re-establishes its own.
func (l *LinkTimeline) Clone() *LinkTimeline {
	return &LinkTimeline{window: l.window, free: l.free.Clone()}
}

// String renders the timeline for diagnostics.
func (l *LinkTimeline) String() string {
	return fmt.Sprintf("link window=%v free=%v", l.window, l.free.String())
}
