package resource

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"datastaging/internal/simtime"
)

// capScript is a random sequence of reservation attempts over a small
// discrete time domain.
type capScript struct {
	total int64
	ops   []capOp
}

type capOp struct {
	amount     int64
	start, end int16
}

// Generate implements quick.Generator.
func (capScript) Generate(r *rand.Rand, size int) reflect.Value {
	s := capScript{
		total: int64(r.Intn(500) + 1),
		ops:   make([]capOp, r.Intn(size+1)),
	}
	for i := range s.ops {
		a, b := int16(r.Intn(100)), int16(r.Intn(100))
		if a > b {
			a, b = b, a
		}
		s.ops[i] = capOp{
			amount: int64(r.Intn(300)),
			start:  a,
			end:    b,
		}
	}
	return reflect.ValueOf(s)
}

// naiveCap models capacity as an explicit per-instant usage array.
type naiveCap struct {
	total int64
	used  [110]int64
}

func (n *naiveCap) canReserve(amount int64, start, end int16) bool {
	for t := start; t < end; t++ {
		if n.used[t]+amount > n.total {
			return false
		}
	}
	return true
}

func (n *naiveCap) reserve(amount int64, start, end int16) {
	for t := start; t < end; t++ {
		n.used[t] += amount
	}
}

// TestQuickCapacityMatchesNaiveModel replays random reservation scripts
// against the segment-based profile and a brute-force per-instant model:
// accept/reject decisions and the resulting availability must agree
// everywhere.
func TestQuickCapacityMatchesNaiveModel(t *testing.T) {
	property := func(script capScript) bool {
		c := NewCapacity(script.total)
		ref := naiveCap{total: script.total}
		for _, op := range script.ops {
			iv := simtime.Interval{Start: simtime.Instant(op.start), End: simtime.Instant(op.end)}
			wantOK := ref.canReserve(op.amount, op.start, op.end) || iv.IsEmpty() || op.amount == 0
			err := c.Reserve(op.amount, iv)
			if (err == nil) != wantOK {
				t.Logf("Reserve(%d, [%d,%d)): got err=%v, naive ok=%v", op.amount, op.start, op.end, err, wantOK)
				return false
			}
			if err == nil && !iv.IsEmpty() {
				ref.reserve(op.amount, op.start, op.end)
			}
		}
		for tm := int16(0); tm < 105; tm++ {
			want := script.total - ref.used[tm]
			if got := c.AvailableAt(simtime.Instant(tm)); got != want {
				t.Logf("AvailableAt(%d): got %d, want %d", tm, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickCapacityNeverNegative: whatever sequence of accepted
// reservations happens, availability never dips below zero and Segments
// stays bounded by the breakpoint count.
func TestQuickCapacityNeverNegative(t *testing.T) {
	property := func(script capScript) bool {
		c := NewCapacity(script.total)
		accepted := 0
		for _, op := range script.ops {
			iv := simtime.Interval{Start: simtime.Instant(op.start), End: simtime.Instant(op.end)}
			if c.Reserve(op.amount, iv) == nil && !iv.IsEmpty() && op.amount > 0 {
				accepted++
			}
		}
		for tm := int16(0); tm < 105; tm++ {
			if c.AvailableAt(simtime.Instant(tm)) < 0 {
				return false
			}
		}
		// Each accepted reservation introduces at most two breakpoints.
		return c.Segments() <= 2*accepted+1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickLinkTimelineSerializes: commit random accepted slots and verify
// via EarliestSlot that the timeline never double-books and never books
// outside the window.
func TestQuickLinkTimelineSerializes(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		window := simtime.Interval{Start: 10, End: 90}
		l := NewLinkTimeline(window)
		type slot struct{ start, end simtime.Instant }
		var committed []slot
		for i := 0; i < 30; i++ {
			start := simtime.Instant(r.Intn(100))
			d := time.Duration(r.Intn(20))
			if l.CanCommit(start, d) {
				if err := l.Commit(start, d); err != nil {
					return false
				}
				committed = append(committed, slot{start, start + simtime.Instant(d)})
			}
		}
		// No two committed slots with positive length overlap and all lie
		// inside the window. Zero-length commits occupy no link time and
		// never conflict.
		for i, a := range committed {
			if a.start < window.Start || a.end > window.End {
				return false
			}
			if a.start == a.end {
				continue
			}
			for _, b := range committed[i+1:] {
				if b.start == b.end {
					continue
				}
				if a.start < b.end && b.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
