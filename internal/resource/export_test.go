package resource

import "datastaging/internal/simtime"

// MinAvailableSlow exposes the linear-walk reference implementation to the
// differential kernel tests and FuzzKernelEquivalence.
func (c *Capacity) MinAvailableSlow(iv simtime.Interval) int64 {
	return c.minAvailableSlow(iv)
}

// MinIndexCutoff exposes the profile size above which MinAvailable uses
// the segment-min index, so tests can build profiles on both sides of it.
const MinIndexCutoff = minIndexCutoff
