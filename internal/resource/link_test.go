package resource

import (
	"testing"
	"time"
)

func TestLinkTimelineEarliestSlot(t *testing.T) {
	l := NewLinkTimeline(span(10*time.Minute, 40*time.Minute))
	tests := []struct {
		name  string
		ready time.Duration
		d     time.Duration
		want  time.Duration
		ok    bool
	}{
		{"before window", 0, 5 * time.Minute, 10 * time.Minute, true},
		{"inside window", 15 * time.Minute, 5 * time.Minute, 15 * time.Minute, true},
		{"exact tail fit", 35 * time.Minute, 5 * time.Minute, 35 * time.Minute, true},
		{"too late", 36 * time.Minute, 5 * time.Minute, 0, false},
		{"too long", 0, 31 * time.Minute, 0, false},
		{"whole window", 0, 30 * time.Minute, 10 * time.Minute, true},
		{"zero duration", 0, 0, 10 * time.Minute, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := l.EarliestSlot(at(tc.ready), tc.d)
			if ok != tc.ok || (ok && got != at(tc.want)) {
				t.Errorf("EarliestSlot(%v, %v): got (%v, %v), want (%v, %v)",
					tc.ready, tc.d, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestLinkTimelineCommitSerializes(t *testing.T) {
	l := NewLinkTimeline(span(0, time.Hour))
	if err := l.Commit(at(10*time.Minute), 20*time.Minute); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Overlapping commit rejected.
	if err := l.Commit(at(25*time.Minute), 10*time.Minute); err == nil {
		t.Error("overlapping Commit should fail")
	}
	// A transfer ready at 15m must wait until the link frees at 30m.
	got, ok := l.EarliestSlot(at(15*time.Minute), 10*time.Minute)
	if !ok || got != at(30*time.Minute) {
		t.Errorf("EarliestSlot after commit: got (%v, %v), want 30m", got, ok)
	}
	// An earlier gap still serves short transfers.
	got, ok = l.EarliestSlot(at(0), 10*time.Minute)
	if !ok || got != at(0) {
		t.Errorf("EarliestSlot in leading gap: got (%v, %v), want 0", got, ok)
	}
	if got := l.BusyTime(); got != 20*time.Minute {
		t.Errorf("BusyTime: got %v, want 20m", got)
	}
}

func TestLinkTimelineCommitOutsideWindow(t *testing.T) {
	l := NewLinkTimeline(span(10*time.Minute, 20*time.Minute))
	if err := l.Commit(at(5*time.Minute), 2*time.Minute); err == nil {
		t.Error("Commit before window should fail")
	}
	if err := l.Commit(at(15*time.Minute), 10*time.Minute); err == nil {
		t.Error("Commit extending past window should fail")
	}
	if err := l.Commit(at(12*time.Minute), -time.Minute); err == nil {
		t.Error("negative duration Commit should fail")
	}
	if err := l.Commit(at(12*time.Minute), 0); err != nil {
		t.Errorf("zero duration Commit inside window: %v", err)
	}
	if got := l.BusyTime(); got != 0 {
		t.Errorf("failed commits consumed time: %v", got)
	}
}

func TestLinkTimelineBackToBack(t *testing.T) {
	l := NewLinkTimeline(span(0, 30*time.Minute))
	if err := l.Commit(at(0), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(at(10*time.Minute), 10*time.Minute); err != nil {
		t.Fatalf("abutting Commit should succeed: %v", err)
	}
	if err := l.Commit(at(20*time.Minute), 10*time.Minute); err != nil {
		t.Fatalf("filling Commit should succeed: %v", err)
	}
	if _, ok := l.EarliestSlot(at(0), time.Nanosecond); ok {
		t.Error("fully busy link should have no slot")
	}
	if l.FreeWithin(at(0)) {
		t.Error("FreeWithin on a full link should be false")
	}
}

func TestLinkTimelineBlock(t *testing.T) {
	l := NewLinkTimeline(span(0, time.Hour))
	l.Block(span(30*time.Minute, time.Hour))
	if _, ok := l.EarliestSlot(at(31*time.Minute), time.Minute); ok {
		t.Error("slot found inside blocked region")
	}
	if slot, ok := l.EarliestSlot(at(0), 10*time.Minute); !ok || slot != at(0) {
		t.Errorf("pre-block slot: got (%v, %v)", slot, ok)
	}
	// Free exposes the remaining availability.
	if got := l.Free().Total(); got != 30*time.Minute {
		t.Errorf("Free total: got %v, want 30m", got)
	}
}

func TestLinkTimelineCloneIsolation(t *testing.T) {
	l := NewLinkTimeline(span(0, time.Hour))
	cl := l.Clone()
	if err := cl.Commit(at(0), time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := l.BusyTime(); got != 0 {
		t.Errorf("original mutated by clone commit: busy %v", got)
	}
	if l.Window() != span(0, time.Hour) {
		t.Errorf("Window: got %v", l.Window())
	}
	if l.String() == "" {
		t.Error("String should be non-empty")
	}
}
