package gen

import (
	"fmt"
	"math/rand"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

// generateNetwork builds the machines, physical topology, and virtual links.
//
// Strong connectivity is guaranteed by construction: a random Hamiltonian
// cycle is laid down first, then each machine's out-degree is padded up to
// its drawn target with random distinct neighbors (the paper only states
// that its generator "guarantees that the generated communication system is
// strongly connected" without giving the mechanism).
func generateNetwork(p Params, rng *rand.Rand) (*model.Network, error) {
	m := p.Machines.draw(rng)
	machines := make([]model.Machine, m)
	for i := range machines {
		machines[i] = model.Machine{
			ID:            model.MachineID(i),
			Name:          fmt.Sprintf("m%d", i),
			CapacityBytes: p.CapacityBytes.draw(rng),
		}
	}

	// neighbors[u] is the set of machines u has physical links toward.
	neighbors := make([]map[model.MachineID]bool, m)
	for i := range neighbors {
		neighbors[i] = make(map[model.MachineID]bool)
	}

	// Hamiltonian cycle over a random permutation.
	perm := rng.Perm(m)
	for i := 0; i < m; i++ {
		u := model.MachineID(perm[i])
		v := model.MachineID(perm[(i+1)%m])
		neighbors[u][v] = true
	}

	// Pad out-degrees.
	for u := 0; u < m; u++ {
		target := p.OutDegree.draw(rng)
		if target > m-1 {
			target = m - 1
		}
		for len(neighbors[u]) < target {
			v := model.MachineID(rng.Intn(m))
			if int(v) == u {
				continue
			}
			neighbors[u][v] = true
		}
	}

	// Expand each connected ordered pair into 1..MaxPhysicalPerPair
	// physical links, and each physical link into its virtual links.
	var links []model.VirtualLink
	physical := 0
	for u := 0; u < m; u++ {
		// Iterate neighbors in machine order for determinism.
		for v := 0; v < m; v++ {
			if !neighbors[u][model.MachineID(v)] {
				continue
			}
			nphys := 1 + rng.Intn(p.MaxPhysicalPerPair)
			for pl := 0; pl < nphys; pl++ {
				windows := generateWindows(p, rng)
				bw := p.BandwidthBPS.draw(rng)
				lat := p.Latency.draw(rng)
				for _, w := range windows {
					links = append(links, model.VirtualLink{
						ID:           model.LinkID(len(links)),
						From:         model.MachineID(u),
						To:           model.MachineID(v),
						Window:       w,
						BandwidthBPS: bw,
						Latency:      lat,
						Physical:     physical,
					})
				}
				physical++
			}
		}
	}

	net, err := model.NewNetwork(machines, links)
	if err != nil {
		return nil, fmt.Errorf("gen: network construction: %w", err)
	}
	if !net.StronglyConnected() {
		// Unreachable given the Hamiltonian cycle, but fail loudly if the
		// construction is ever changed carelessly.
		return nil, model.ErrNotStronglyConnected
	}
	return net, nil
}

// generateWindows lays one physical link's virtual-link windows across the
// day (§5.3): draw a window duration and an availability percentage, derive
// the window count, place the first window within the first third of the
// total unavailable time, and spread the remaining slack randomly across the
// inter-window gaps and the tail.
func generateWindows(p Params, rng *rand.Rand) []simtime.Interval {
	dur := p.WindowDurations[rng.Intn(len(p.WindowDurations))]
	pct := p.AvailablePercents[rng.Intn(len(p.AvailablePercents))]
	availTotal := p.Day * time.Duration(pct) / 100
	n := int(availTotal / dur)
	if n < 1 {
		n = 1
	}
	// With n windows of length dur, the unavailable time is what remains of
	// the day.
	unavailable := p.Day - time.Duration(n)*dur
	if unavailable < 0 {
		unavailable = 0
	}
	var first time.Duration
	if unavailable > 0 {
		first = time.Duration(rng.Int63n(int64(unavailable/3) + 1))
	}
	// Split the remaining slack over n-1 inter-window gaps plus the tail.
	slack := unavailable - first
	gaps := splitDuration(rng, slack, n) // gaps[k] precedes window k+1; gaps[n-1] is tail slack (unused)
	windows := make([]simtime.Interval, 0, n)
	start := first
	for k := 0; k < n; k++ {
		windows = append(windows, simtime.Interval{
			Start: simtime.At(start),
			End:   simtime.At(start + dur),
		})
		start += dur + gaps[k]
	}
	return windows
}

// splitDuration partitions total into n non-negative parts uniformly at
// random (stick-breaking over integer nanoseconds).
func splitDuration(rng *rand.Rand, total time.Duration, n int) []time.Duration {
	parts := make([]time.Duration, n)
	if n == 0 {
		return parts
	}
	if total <= 0 {
		return parts
	}
	// Draw n-1 cut points in [0, total] and sort them implicitly by
	// repeatedly drawing remaining shares; a simple sequential split keeps
	// this deterministic and unbiased enough for workload generation.
	remaining := total
	for k := 0; k < n-1; k++ {
		share := time.Duration(rng.Int63n(int64(remaining) + 1))
		// Temper the first draws so early gaps don't swallow everything.
		share /= 2
		parts[k] = share
		remaining -= share
	}
	parts[n-1] = remaining
	return parts
}
