package gen

import (
	"fmt"
	"math/rand"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

// generateItems builds data items until the total request count reaches the
// drawn target of RequestsPerMachine × machines (§5.3). Each item draws its
// source count, destination count, size, per-source availability times, and
// per-request deadlines and priorities; sources and destinations are
// disjoint machine sets.
func generateItems(p Params, rng *rand.Rand, numMachines int) []model.Item {
	targetRequests := p.RequestsPerMachine.draw(rng) * numMachines
	var items []model.Item
	total := 0
	for total < targetRequests {
		it := generateItem(p, rng, numMachines, model.ItemID(len(items)), targetRequests-total)
		items = append(items, it)
		total += len(it.Requests)
	}
	return items
}

func generateItem(p Params, rng *rand.Rand, numMachines int, id model.ItemID, budget int) model.Item {
	ns := p.SourcesPerItem.draw(rng)
	nd := p.DestsPerItem.draw(rng)
	if nd > budget {
		nd = budget
	}
	// Sources and destinations must be disjoint and each unique, so we need
	// ns+nd distinct machines.
	if ns+nd > numMachines {
		// Shrink sources first (one source is always enough), then dests.
		if ns > numMachines-nd {
			ns = numMachines - nd
		}
		if ns < 1 {
			ns = 1
			nd = numMachines - 1
		}
	}
	perm := rng.Perm(numMachines)
	srcMachines := perm[:ns]
	dstMachines := perm[ns : ns+nd]

	sources := make([]model.Source, ns)
	earliest := simtime.Never
	for k, sm := range srcMachines {
		avail := simtime.At(p.ItemStart.draw(rng))
		sources[k] = model.Source{Machine: model.MachineID(sm), Available: avail}
		if avail.Before(earliest) {
			earliest = avail
		}
	}
	requests := make([]model.Request, nd)
	for k, dm := range dstMachines {
		requests[k] = model.Request{
			Machine:  model.MachineID(dm),
			Deadline: earliest.Add(p.DeadlineAfterStart.draw(rng)),
			Priority: model.Priority(rng.Intn(p.Priorities)),
		}
	}
	return model.Item{
		ID:        id,
		Name:      fmt.Sprintf("item%d", id),
		SizeBytes: p.SizeBytes.draw(rng),
		Sources:   sources,
		Requests:  requests,
	}
}
