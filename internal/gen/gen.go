// Package gen generates random data staging scenarios with the exact
// parameterization of the paper's simulation study (§5.3): 10–12 machines,
// out-degrees of 4–7, at most two physical links per ordered machine pair,
// virtual-link windows carved out of a 24-hour day, request loads of 20–40
// requests per machine, and so on. Every knob is a field of Params so that
// the congestion sweep and the unit tests can deviate deliberately.
//
// Generation is fully deterministic given a seed; the experiment harness
// derives one seed per test case so the same 40 instances are replayed for
// every heuristic/cost-criterion pair, exactly as in the paper.
package gen

import (
	"fmt"
	"math/rand"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
)

// IntRange is an inclusive integer range [Min, Max] drawn uniformly.
type IntRange struct {
	Min, Max int
}

func (r IntRange) draw(rng *rand.Rand) int {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + rng.Intn(r.Max-r.Min+1)
}

// Int64Range is an inclusive int64 range [Min, Max] drawn uniformly.
type Int64Range struct {
	Min, Max int64
}

func (r Int64Range) draw(rng *rand.Rand) int64 {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + rng.Int63n(r.Max-r.Min+1)
}

// DurRange is an inclusive duration range [Min, Max] drawn uniformly.
type DurRange struct {
	Min, Max time.Duration
}

func (r DurRange) draw(rng *rand.Rand) time.Duration {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + time.Duration(rng.Int63n(int64(r.Max-r.Min)+1))
}

// Params holds every generator knob. The zero value is useless; start from
// Default and override.
type Params struct {
	// Machines is the machine count range (paper: 10–12).
	Machines IntRange
	// CapacityBytes is the per-machine storage range (paper: 10 MB–20 GB).
	CapacityBytes Int64Range
	// OutDegree is the per-machine outbound degree range: the number of
	// distinct machines it has physical links toward (paper: 4–7, capped
	// at machines-1).
	OutDegree IntRange
	// MaxPhysicalPerPair caps the physical links for one ordered machine
	// pair (paper: 2). Each pair that is connected gets 1..Max links.
	MaxPhysicalPerPair int
	// BandwidthBPS is the physical-link bandwidth range in bits/second
	// (paper: 10 Kbit/s–1.5 Mbit/s).
	BandwidthBPS Int64Range
	// Latency is the fixed per-transfer overhead range (paper: unspecified,
	// default zero).
	Latency DurRange
	// WindowDurations are the virtual-link window lengths, one of which is
	// drawn per physical link (paper: 30 m, 1 h, 2 h, 4 h).
	WindowDurations []time.Duration
	// AvailablePercents are the candidate percentages of the day a
	// physical link is up (paper: 50–100 in steps of 10).
	AvailablePercents []int
	// Day is the period windows are laid out in (paper: 24 h).
	Day time.Duration
	// RequestsPerMachine scales the total request count: total requests is
	// drawn from this range times the machine count (paper: 20–40).
	RequestsPerMachine IntRange
	// SourcesPerItem and DestsPerItem bound the fan-in/fan-out of one item
	// (paper: at most 5 of each).
	SourcesPerItem IntRange
	DestsPerItem   IntRange
	// SizeBytes is the data item size range (paper: 10 KB–100 MB).
	SizeBytes Int64Range
	// ItemStart is the range of item availability times (paper: 0–60 min).
	ItemStart DurRange
	// DeadlineAfterStart is how long after the item's earliest
	// availability a request's deadline falls (paper: 15–60 min).
	DeadlineAfterStart DurRange
	// GarbageCollect is γ (paper: 6 min).
	GarbageCollect time.Duration
	// Priorities is the number of priority classes drawn uniformly
	// (paper: 3).
	Priorities int
	// SerialTransfers enables per-machine port serialization in generated
	// scenarios (the §3 future-work relaxation; the paper's evaluation
	// assumes parallel sends, so the default is off).
	SerialTransfers bool
}

// Default returns the paper's §5.3 parameterization.
func Default() Params {
	return Params{
		Machines:           IntRange{Min: 10, Max: 12},
		CapacityBytes:      Int64Range{Min: 10 << 20, Max: 20 << 30},
		OutDegree:          IntRange{Min: 4, Max: 7},
		MaxPhysicalPerPair: 2,
		BandwidthBPS:       Int64Range{Min: 10_000, Max: 1_500_000},
		Latency:            DurRange{},
		WindowDurations: []time.Duration{
			30 * time.Minute, time.Hour, 2 * time.Hour, 4 * time.Hour,
		},
		AvailablePercents:  []int{50, 60, 70, 80, 90, 100},
		Day:                24 * time.Hour,
		RequestsPerMachine: IntRange{Min: 20, Max: 40},
		SourcesPerItem:     IntRange{Min: 1, Max: 5},
		DestsPerItem:       IntRange{Min: 1, Max: 5},
		SizeBytes:          Int64Range{Min: 10 << 10, Max: 100 << 20},
		ItemStart:          DurRange{Min: 0, Max: time.Hour},
		DeadlineAfterStart: DurRange{Min: 15 * time.Minute, Max: time.Hour},
		GarbageCollect:     6 * time.Minute,
		Priorities:         model.NumPriorities,
	}
}

// Generate builds one scenario from the parameters, deterministically for a
// given seed. The returned scenario always validates and its network is
// always strongly connected.
func Generate(p Params, seed int64) (*scenario.Scenario, error) {
	if err := checkParams(p); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	net, err := generateNetwork(p, rng)
	if err != nil {
		return nil, err
	}
	items := generateItems(p, rng, net.NumMachines())
	s := &scenario.Scenario{
		Name:            fmt.Sprintf("gen-seed%d", seed),
		Network:         net,
		Items:           items,
		GarbageCollect:  p.GarbageCollect,
		Horizon:         simtime.At(p.Day),
		SerialTransfers: p.SerialTransfers,
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated scenario invalid: %w", err)
	}
	return s, nil
}

// NetworkOnly generates just the network side of a scenario — machines,
// links, horizon, γ — with an empty request book. For a given seed the
// network is identical to Generate's (items are drawn after the network,
// so dropping them does not disturb the stream). This is the base the
// workload layer materializes arrival traces over: topology from the
// paper's generator, traffic from a multi-phase spec.
func NetworkOnly(p Params, seed int64) (*scenario.Scenario, error) {
	if err := checkParams(p); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	net, err := generateNetwork(p, rng)
	if err != nil {
		return nil, err
	}
	s := &scenario.Scenario{
		Name:            fmt.Sprintf("net-seed%d", seed),
		Network:         net,
		GarbageCollect:  p.GarbageCollect,
		Horizon:         simtime.At(p.Day),
		SerialTransfers: p.SerialTransfers,
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated network invalid: %w", err)
	}
	return s, nil
}

// MustGenerate is Generate for tests and benchmarks with known-good params.
func MustGenerate(p Params, seed int64) *scenario.Scenario {
	s, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return s
}

func checkParams(p Params) error {
	switch {
	case p.Machines.Min < 2:
		return fmt.Errorf("gen: need at least 2 machines, got min %d", p.Machines.Min)
	case p.MaxPhysicalPerPair < 1:
		return fmt.Errorf("gen: MaxPhysicalPerPair must be >= 1")
	case p.BandwidthBPS.Min <= 0:
		return fmt.Errorf("gen: bandwidth must be positive")
	case len(p.WindowDurations) == 0:
		return fmt.Errorf("gen: no window durations")
	case len(p.AvailablePercents) == 0:
		return fmt.Errorf("gen: no availability percentages")
	case p.Day <= 0:
		return fmt.Errorf("gen: non-positive day length")
	case p.SizeBytes.Min <= 0:
		return fmt.Errorf("gen: item sizes must be positive")
	case p.Priorities < 1:
		return fmt.Errorf("gen: need at least one priority class")
	case p.SourcesPerItem.Min < 1 || p.DestsPerItem.Min < 1:
		return fmt.Errorf("gen: items need at least one source and one destination")
	}
	for _, d := range p.WindowDurations {
		if d <= 0 || d > p.Day {
			return fmt.Errorf("gen: window duration %v outside (0, day]", d)
		}
	}
	for _, pct := range p.AvailablePercents {
		if pct < 1 || pct > 100 {
			return fmt.Errorf("gen: availability percent %d outside [1,100]", pct)
		}
	}
	return nil
}
