package gen

import (
	"math/rand"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

func TestGenerateDefaultIsValidAndInRanges(t *testing.T) {
	p := Default()
	for seed := int64(1); seed <= 5; seed++ {
		s, err := Generate(p, seed)
		if err != nil {
			t.Fatalf("Generate(seed=%d): %v", seed, err)
		}
		m := s.Network.NumMachines()
		if m < 10 || m > 12 {
			t.Errorf("seed %d: machine count %d outside [10,12]", seed, m)
		}
		if !s.Network.StronglyConnected() {
			t.Errorf("seed %d: not strongly connected", seed)
		}
		nrq := s.NumRequests()
		if nrq < 20*m || nrq > 40*m {
			t.Errorf("seed %d: %d requests outside [%d,%d]", seed, nrq, 20*m, 40*m)
		}
		for _, mach := range s.Network.Machines {
			if mach.CapacityBytes < 10<<20 || mach.CapacityBytes > 20<<30 {
				t.Errorf("seed %d: capacity %d out of range", seed, mach.CapacityBytes)
			}
		}
		checkDegreesAndLinks(t, s.Network, seed)
	}
}

func checkDegreesAndLinks(t *testing.T, net *model.Network, seed int64) {
	t.Helper()
	m := net.NumMachines()
	// Distinct out-neighbors per machine within [4, min(7, m-1)].
	outN := make([]map[model.MachineID]bool, m)
	physPairs := make(map[[2]model.MachineID]map[int]bool)
	for i := range outN {
		outN[i] = make(map[model.MachineID]bool)
	}
	for _, l := range net.Links {
		outN[l.From][l.To] = true
		key := [2]model.MachineID{l.From, l.To}
		if physPairs[key] == nil {
			physPairs[key] = make(map[int]bool)
		}
		physPairs[key][l.Physical] = true
		if l.BandwidthBPS < 10_000 || l.BandwidthBPS > 1_500_000 {
			t.Errorf("seed %d: bandwidth %d out of range", seed, l.BandwidthBPS)
		}
		if l.Window.Start < 0 || l.Window.End > simtime.At(24*time.Hour) {
			t.Errorf("seed %d: window %v outside the day", seed, l.Window)
		}
	}
	for u, ns := range outN {
		if len(ns) < 4 || len(ns) > 7 {
			t.Errorf("seed %d: machine %d out-degree %d outside [4,7]", seed, u, len(ns))
		}
	}
	for key, phys := range physPairs {
		if len(phys) > 2 {
			t.Errorf("seed %d: pair %v has %d physical links (max 2)", seed, key, len(phys))
		}
	}
}

func TestGeneratedItemProperties(t *testing.T) {
	s := MustGenerate(Default(), 42)
	for _, it := range s.Items {
		if len(it.Sources) < 1 || len(it.Sources) > 5 {
			t.Errorf("item %d: %d sources", it.ID, len(it.Sources))
		}
		if len(it.Requests) < 1 || len(it.Requests) > 5 {
			t.Errorf("item %d: %d requests", it.ID, len(it.Requests))
		}
		if it.SizeBytes < 10<<10 || it.SizeBytes > 100<<20 {
			t.Errorf("item %d: size %d out of range", it.ID, it.SizeBytes)
		}
		earliest := it.EarliestAvailable()
		if earliest > simtime.At(time.Hour) {
			t.Errorf("item %d: earliest availability %v past 60m", it.ID, earliest)
		}
		for k, rq := range it.Requests {
			delta := rq.Deadline.Sub(earliest)
			if delta < 15*time.Minute || delta > time.Hour {
				t.Errorf("item %d request %d: deadline offset %v outside [15m,60m]", it.ID, k, delta)
			}
			if rq.Priority < 0 || rq.Priority >= model.NumPriorities {
				t.Errorf("item %d request %d: priority %v", it.ID, k, rq.Priority)
			}
		}
	}
}

func TestVirtualLinksOfOnePhysicalLinkDisjoint(t *testing.T) {
	s := MustGenerate(Default(), 7)
	byPhys := make(map[int][]simtime.Interval)
	for _, l := range s.Network.Links {
		byPhys[l.Physical] = append(byPhys[l.Physical], l.Window)
	}
	for phys, windows := range byPhys {
		for i := 0; i < len(windows); i++ {
			for j := i + 1; j < len(windows); j++ {
				if windows[i].Overlaps(windows[j]) {
					t.Errorf("physical link %d: windows %v and %v overlap", phys, windows[i], windows[j])
				}
			}
		}
		// All windows of one physical link share a duration (§5.3).
		for _, w := range windows[1:] {
			if w.Length() != windows[0].Length() {
				t.Errorf("physical link %d: mixed window durations %v vs %v", phys, w.Length(), windows[0].Length())
			}
		}
	}
}

func TestGenerateWithLatencyAndSerial(t *testing.T) {
	p := Default()
	p.Latency = DurRange{Min: time.Millisecond, Max: 20 * time.Millisecond}
	p.SerialTransfers = true
	sc := MustGenerate(p, 13)
	if !sc.SerialTransfers {
		t.Error("SerialTransfers not propagated")
	}
	for _, l := range sc.Network.Links {
		if l.Latency < time.Millisecond || l.Latency > 20*time.Millisecond {
			t.Fatalf("link %d latency %v out of range", l.ID, l.Latency)
		}
	}
	// Latency lengthens transfers.
	l := sc.Network.Link(0)
	base := l.TransferDuration(0)
	if base != l.Latency {
		t.Errorf("zero-size transfer should cost exactly the latency: %v vs %v", base, l.Latency)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Default(), 99)
	b := MustGenerate(Default(), 99)
	if a.Network.NumMachines() != b.Network.NumMachines() ||
		len(a.Network.Links) != len(b.Network.Links) ||
		len(a.Items) != len(b.Items) {
		t.Fatal("same seed produced structurally different scenarios")
	}
	for i := range a.Network.Links {
		if a.Network.Links[i] != b.Network.Links[i] {
			t.Fatalf("link %d differs between same-seed runs", i)
		}
	}
	c := MustGenerate(Default(), 100)
	if len(a.Items) == len(c.Items) && a.Network.NumMachines() == c.Network.NumMachines() &&
		len(a.Network.Links) == len(c.Network.Links) {
		// Extremely unlikely for all three to coincide; treat as suspicious.
		same := true
		for i := range a.Network.Links {
			if a.Network.Links[i] != c.Network.Links[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical networks")
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(p *Params)
	}{
		{"too few machines", func(p *Params) { p.Machines = IntRange{Min: 1, Max: 1} }},
		{"zero physical per pair", func(p *Params) { p.MaxPhysicalPerPair = 0 }},
		{"zero bandwidth", func(p *Params) { p.BandwidthBPS = Int64Range{} }},
		{"no window durations", func(p *Params) { p.WindowDurations = nil }},
		{"no percents", func(p *Params) { p.AvailablePercents = nil }},
		{"zero day", func(p *Params) { p.Day = 0 }},
		{"zero item size", func(p *Params) { p.SizeBytes = Int64Range{} }},
		{"zero priorities", func(p *Params) { p.Priorities = 0 }},
		{"zero sources", func(p *Params) { p.SourcesPerItem = IntRange{} }},
		{"window longer than day", func(p *Params) { p.WindowDurations = []time.Duration{48 * time.Hour} }},
		{"bad percent", func(p *Params) { p.AvailablePercents = []int{150} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.mutate(&p)
			if _, err := Generate(p, 1); err == nil {
				t.Error("Generate should have failed")
			}
		})
	}
}

func TestWindowsCoverRequestedPercent(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		windows := generateWindows(p, rng)
		if len(windows) == 0 {
			t.Fatal("no windows generated")
		}
		var total time.Duration
		last := simtime.Instant(-1)
		for _, w := range windows {
			if w.Start < last {
				t.Fatalf("windows out of order or overlapping: %v", windows)
			}
			last = w.End
			total += w.Length()
			if w.End > simtime.At(p.Day) {
				t.Fatalf("window %v extends past the day", w)
			}
		}
		// Coverage is n*dur where n = floor(pct*day/dur): at most the drawn
		// percent and at least half the day less one window (pct >= 50).
		if total > p.Day {
			t.Fatalf("total window time %v exceeds the day", total)
		}
		if total < p.Day/2-4*time.Hour {
			t.Fatalf("total window time %v implausibly small", total)
		}
	}
}

func TestSplitDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 10} {
		parts := splitDuration(rng, time.Hour, n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(parts))
		}
		var sum time.Duration
		for _, p := range parts {
			if p < 0 {
				t.Fatalf("negative part %v", p)
			}
			sum += p
		}
		if sum != time.Hour {
			t.Fatalf("n=%d: parts sum to %v, want 1h", n, sum)
		}
	}
	parts := splitDuration(rng, 0, 3)
	for _, p := range parts {
		if p != 0 {
			t.Fatal("zero total should yield zero parts")
		}
	}
	if got := splitDuration(rng, time.Hour, 0); len(got) != 0 {
		t.Fatal("n=0 should yield empty slice")
	}
}

func TestRangeDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if v := (IntRange{Min: 3, Max: 7}).draw(rng); v < 3 || v > 7 {
			t.Fatalf("IntRange draw %d out of range", v)
		}
		if v := (Int64Range{Min: 10, Max: 20}).draw(rng); v < 10 || v > 20 {
			t.Fatalf("Int64Range draw %d out of range", v)
		}
		if v := (DurRange{Min: time.Second, Max: time.Minute}).draw(rng); v < time.Second || v > time.Minute {
			t.Fatalf("DurRange draw %v out of range", v)
		}
	}
	if v := (IntRange{Min: 5, Max: 5}).draw(rng); v != 5 {
		t.Fatalf("degenerate IntRange: got %d", v)
	}
	if v := (DurRange{}).draw(rng); v != 0 {
		t.Fatalf("zero DurRange: got %v", v)
	}
}
