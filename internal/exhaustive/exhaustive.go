// Package exhaustive finds provably optimal-within-its-policy-class
// schedules for tiny data staging instances by branch-and-bound over
// request commit orders. The paper observes that exhaustive search is
// intractable at realistic sizes (§5.1) and therefore evaluates against
// bounds instead; on toy instances, however, an exhaustive pass is feasible
// and gives the tests a ground truth to measure the heuristics' optimality
// gap against.
//
// The search space is the set of schedules obtainable by serving requests
// one at a time, each along a currently shortest path (the same move
// repertoire the heuristics use, in every possible order, with every
// possible subset of requests skipped). This explores a superset of the
// orderings any of the heuristic/cost-criterion pairs can produce, so its
// optimum is an upper bound on every heuristic's value — though not
// necessarily the global optimum over arbitrary schedules, since non-greedy
// detours (deliberately slower paths that decongest a link) are outside the
// repertoire. Tests treat it as the "best greedy-order schedule".
package exhaustive

import (
	"fmt"

	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/state"
)

// MaxRequests caps the instance size Search accepts: the search explores
// service orders, which is factorial in the request count.
const MaxRequests = 8

// Result is the best schedule the search found.
type Result struct {
	// Value is the weighted sum of priorities of satisfied requests.
	Value float64
	// Satisfied lists the requests the best schedule satisfies.
	Satisfied []model.RequestID
	// Explored counts the search-tree nodes visited.
	Explored int
}

// Search exhaustively explores request service orders and returns the best
// achievable weighted value. It fails on instances with more than
// MaxRequests requests.
func Search(sc *scenario.Scenario, w model.Weights) (*Result, error) {
	reqs := sc.Requests()
	if len(reqs) > MaxRequests {
		return nil, fmt.Errorf("exhaustive: %d requests exceeds the %d-request cap", len(reqs), MaxRequests)
	}
	// Sort requests by descending weight so the bound prunes early.
	byWeight := make([]model.RequestID, len(reqs))
	copy(byWeight, reqs)
	for i := 1; i < len(byWeight); i++ {
		for j := i; j > 0; j-- {
			a := w.Of(sc.Request(byWeight[j]).Priority)
			b := w.Of(sc.Request(byWeight[j-1]).Priority)
			if a <= b {
				break
			}
			byWeight[j], byWeight[j-1] = byWeight[j-1], byWeight[j]
		}
	}
	s := &searcher{sc: sc, w: w, reqs: byWeight}
	s.dfs(state.New(sc), nil, 0)
	return &Result{Value: s.bestValue, Satisfied: s.bestSet, Explored: s.explored}, nil
}

type searcher struct {
	sc        *scenario.Scenario
	w         model.Weights
	reqs      []model.RequestID
	bestValue float64
	bestSet   []model.RequestID
	explored  int
}

// dfs extends the schedule by serving one more pending request along its
// current shortest path, trying every pending request at every level —
// i.e., all service orders of all subsets, with branch-and-bound pruning.
func (s *searcher) dfs(st *state.State, chosen []model.RequestID, value float64) {
	s.explored++
	if value > s.bestValue {
		s.bestValue = value
		s.bestSet = append([]model.RequestID(nil), chosen...)
	}
	// Bound: even satisfying every remaining request cannot beat the best.
	remaining := 0.0
	for _, id := range s.reqs {
		if !st.IsSatisfied(id) {
			remaining += s.w.Of(s.sc.Request(id).Priority)
		}
	}
	if value+remaining <= s.bestValue {
		return
	}
	for _, id := range s.reqs {
		if st.IsSatisfied(id) {
			continue
		}
		branch, gained, ok := s.serve(st, id)
		if !ok {
			continue
		}
		s.dfs(branch, append(chosen, id), value+gained)
	}
}

// serve clones the state and commits the request's current shortest path.
func (s *searcher) serve(st *state.State, id model.RequestID) (*state.State, float64, bool) {
	rq := s.sc.Request(id)
	pl := dijkstra.Compute(st, id.Item)
	at := pl.Arrival[rq.Machine]
	if !pl.Reachable(rq.Machine) || at.After(rq.Deadline) {
		return nil, 0, false
	}
	hops, ok := pl.PathTo(rq.Machine)
	if !ok {
		return nil, 0, false
	}
	branch := clone(s.sc, st)
	var gained float64
	before := len(branch.Satisfied())
	for _, h := range hops {
		if _, err := branch.Commit(id.Item, h.Link, h.Start); err != nil {
			return nil, 0, false
		}
	}
	// Serving one request can incidentally satisfy others at machines along
	// the path; count everything newly satisfied.
	if len(branch.Satisfied()) <= before {
		return nil, 0, false
	}
	for sid := range branch.Satisfied() {
		if !st.IsSatisfied(sid) {
			gained += s.w.Of(s.sc.Request(sid).Priority)
		}
	}
	return branch, gained, true
}

// clone rebuilds a state by replaying the transfers; states are small on
// the tiny instances this package accepts.
func clone(sc *scenario.Scenario, st *state.State) *state.State {
	out := state.New(sc)
	for _, tr := range st.Transfers() {
		if _, err := out.Commit(tr.Item, tr.Link, tr.Start); err != nil {
			// Replaying a committed schedule cannot fail; treat as a bug.
			panic(fmt.Sprintf("exhaustive: replay: %v", err))
		}
	}
	return out
}
