package exhaustive

import (
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/testnet"
)

func TestSearchTrivialLine(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	res, err := Search(sc, model.Weights1x10x100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 100 {
		t.Errorf("Value: got %v, want 100", res.Value)
	}
	if len(res.Satisfied) != 1 {
		t.Errorf("Satisfied: got %v", res.Satisfied)
	}
	if res.Explored < 2 {
		t.Errorf("Explored: got %d", res.Explored)
	}
}

func TestSearchRejectsLargeInstances(t *testing.T) {
	sc := gen.MustGenerate(gen.Default(), 1)
	if _, err := Search(sc, model.Weights1x10x100); err == nil {
		t.Error("paper-scale instance should be rejected")
	}
}

func TestSearchFindsOrderDependentOptimum(t *testing.T) {
	// One serial link fits two transfers before t=2.05s but the deadlines
	// differ: serving the loose-deadline item first wastes the early slot.
	// Greedy priority order (high first) is suboptimal; the search must
	// find the order that satisfies both.
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000) // 1.024 s per 1 KB transfer
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	hop := 1024 * time.Millisecond
	tight := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], hop+time.Millisecond, model.Low)})
	loose := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*hop+time.Millisecond, model.High)})
	sc := b.Build("order")

	res, err := Search(sc, model.Weights1x10x100)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: tight (low, 1) first then loose (high, 100) = 101.
	if res.Value != 101 {
		t.Errorf("Value: got %v, want 101", res.Value)
	}
	_ = tight
	_ = loose
}

// TestHeuristicsNeverBeatExhaustive: the exhaustive optimum over greedy
// orders dominates every heuristic/cost-criterion pair on small random
// instances, and the best pairs come close.
func TestHeuristicsNeverBeatExhaustive(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 4, Max: 5}
	p.RequestsPerMachine = gen.IntRange{Min: 1, Max: 1}
	p.DestsPerItem = gen.IntRange{Min: 1, Max: 2}
	w := model.Weights1x10x100
	var optSum, bestHeurSum float64
	for seed := int64(1); seed <= 6; seed++ {
		sc := gen.MustGenerate(p, seed)
		if sc.NumRequests() > MaxRequests {
			continue
		}
		opt, err := Search(sc, w)
		if err != nil {
			t.Fatal(err)
		}
		optSum += opt.Value
		best := 0.0
		for _, pair := range core.Pairs() {
			for _, eu := range []core.EUWeights{core.EUUrgencyOnly, core.EUFromLog10(2)} {
				cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu, Weights: w}
				res, err := core.Schedule(sc, cfg)
				if err != nil {
					t.Fatal(err)
				}
				v := res.WeightedValue(sc, w)
				if v > opt.Value+1e-9 {
					t.Errorf("seed %d: %v@%s achieved %v above exhaustive %v",
						seed, pair, eu.Label(), v, opt.Value)
				}
				if v > best {
					best = v
				}
			}
		}
		bestHeurSum += best
	}
	if optSum == 0 {
		t.Skip("all generated instances exceeded the request cap")
	}
	if bestHeurSum < 0.8*optSum {
		t.Errorf("best heuristic sum %v below 80%% of exhaustive %v", bestHeurSum, optSum)
	}
}
