// Package experiment reproduces the paper's simulation study (§5): a set of
// randomly generated test cases replayed across every heuristic/cost-
// criterion pair and every point of the E-U ratio sweep, with the two lower
// bounds, two upper bounds, and the priority-first baseline measured on the
// same cases. Runs are embarrassingly parallel and spread across a worker
// pool; all randomness is seeded so results are reproducible.
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"datastaging/internal/bounds"
	"datastaging/internal/core"
	"datastaging/internal/eval"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/report/utilization"
	"datastaging/internal/scenario"
)

// SweepPoint is one x-axis value of the E-U ratio sweep.
type SweepPoint struct {
	Label string
	EU    core.EUWeights
}

// StandardSweep returns the paper's eleven sweep points: -inf, log10
// ratios -3 through 5, and inf (§5.4).
func StandardSweep() []SweepPoint {
	out := []SweepPoint{{Label: "-inf", EU: core.EUUrgencyOnly}}
	for l := -3; l <= 5; l++ {
		eu := core.EUFromLog10(float64(l))
		out = append(out, SweepPoint{Label: eu.Label(), EU: eu})
	}
	return append(out, SweepPoint{Label: "inf", EU: core.EUPriorityOnly})
}

// Options configures a study run.
type Options struct {
	// Params generates the test cases; defaults to gen.Default().
	Params gen.Params
	// NumCases is the number of random test cases (paper: 40).
	NumCases int
	// BaseSeed seeds case i with BaseSeed + i.
	BaseSeed int64
	// Weights is the priority weighting scheme.
	Weights model.Weights
	// Sweep lists the E-U points; defaults to StandardSweep().
	Sweep []SweepPoint
	// Pairs lists the heuristic/criterion pairs; defaults to core.Pairs().
	Pairs []core.Pair
	// Parallelism caps concurrent scheduler runs; defaults to GOMAXPROCS.
	Parallelism int
	// PlanParallelism is the worker count each individual run uses to
	// recompute invalidated shortest-path forests (core.Config.Parallelism).
	// Defaults to 1: the study already fans whole runs out across
	// Parallelism workers, so nesting more goroutines inside each run only
	// adds overhead there. The single-threaded sweeps (gamma, failures,
	// arrivals, congestion, serial comparison) do benefit from raising it.
	PlanParallelism int
	// Progress, if set, is called after each completed run with the done
	// and total counts. It must be safe for concurrent use.
	Progress func(done, total int)
	// Obs, if set, collects metrics across the study: every scheduler run
	// shares it (the registry is concurrency-safe), so counters like
	// core.dijkstra_runs_total aggregate over the whole sweep, plus
	// experiment.runs_total and the experiment.run_seconds histogram. If it
	// carries a tracer, events from concurrent runs interleave in emission
	// order (the tracer is mutex-protected); set Parallelism to 1 when a
	// readable per-run trace matters more than throughput.
	Obs *obs.Obs
}

func (o *Options) fillDefaults() error {
	if o.NumCases <= 0 {
		o.NumCases = 40
	}
	if len(o.Weights) == 0 {
		return fmt.Errorf("experiment: no priority weights")
	}
	if o.Params.Day == 0 {
		o.Params = gen.Default()
	}
	if len(o.Sweep) == 0 {
		o.Sweep = StandardSweep()
	}
	if len(o.Pairs) == 0 {
		o.Pairs = core.Pairs()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.PlanParallelism <= 0 {
		o.PlanParallelism = 1
	}
	return nil
}

// Stat aggregates one measured quantity over the test cases.
type Stat struct {
	Mean float64
	Min  float64
	Max  float64
	N    int
}

// StatOf reduces a sample to its aggregate.
func StatOf(values []float64) Stat {
	if len(values) == 0 {
		return Stat{}
	}
	s := Stat{Min: values[0], Max: values[0], N: len(values)}
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	return s
}

// PointAggregate is the cross-case aggregation of one (pair, sweep point)
// cell.
type PointAggregate struct {
	// Value aggregates the weighted sum of satisfied priorities.
	Value Stat
	// SatisfiedByPriority is the mean satisfied count per priority class.
	SatisfiedByPriority []float64
	// MeanHops is the mean links traversed per satisfied request.
	MeanHops float64
	// MeanElapsed is the mean heuristic execution time.
	MeanElapsed time.Duration
	// MeanDijkstraRuns is the mean number of shortest-path executions.
	MeanDijkstraRuns float64
	// MeanSatisfied and MeanTransfers are mean counts.
	MeanSatisfied float64
	MeanTransfers float64
	// MeanBottleneckBusy is the mean (over cases) busy fraction of each
	// run's most-utilized link — how saturated the schedule's bottleneck
	// was at this sweep point.
	MeanBottleneckBusy float64
}

// PairSweep is one pair's full E-U sweep.
type PairSweep struct {
	Pair   core.Pair
	Points []PointAggregate // indexed like Result.SweepLabels
}

// BestPoint returns the index of the sweep point with the highest mean
// value.
func (ps *PairSweep) BestPoint() int {
	best := 0
	for i := range ps.Points {
		if ps.Points[i].Value.Mean > ps.Points[best].Value.Mean {
			best = i
		}
	}
	return best
}

// Result is the complete study output.
type Result struct {
	Weights     model.Weights
	SweepLabels []string
	Pairs       []PairSweep
	// The four bounds of §5.2 and the §5.4 baseline, aggregated over the
	// same cases (none depend on the E-U ratio).
	Upper                Stat
	PossibleSatisfy      Stat
	RandomDijkstra       Stat
	SingleDijkstraRandom Stat
	PriorityFirst        Stat
	// PriorityFirstByPriority is the baseline's mean satisfied count per
	// class, for the §5.4 comparison.
	PriorityFirstByPriority []float64
	// Cases records how many test cases were averaged.
	Cases int
	// Elapsed is the wall-clock time of the whole study.
	Elapsed time.Duration
}

// PairByName returns the sweep for one heuristic/criterion pair.
func (r *Result) PairByName(h core.Heuristic, c core.Criterion) (*PairSweep, bool) {
	for i := range r.Pairs {
		if r.Pairs[i].Pair.Heuristic == h && r.Pairs[i].Pair.Criterion == c {
			return &r.Pairs[i], true
		}
	}
	return nil, false
}

// Run executes the study.
func Run(opts Options) (*Result, error) {
	begin := time.Now()
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	cases, err := generateCases(opts)
	if err != nil {
		return nil, err
	}

	nP, nS, nC := len(opts.Pairs), len(opts.Sweep), opts.NumCases
	runs := make([]eval.Metrics, nP*nS*nC)
	bneck := make([]float64, nP*nS*nC)
	caseBounds := make([]boundsRow, nC)
	mRuns := opts.Obs.Counter("experiment.runs_total")
	hRunSeconds := opts.Obs.Histogram("experiment.run_seconds", obs.DurationBuckets)

	total := nP*nS*nC + nC
	var done int64
	report := func() {
		if opts.Progress != nil {
			opts.Progress(int(atomic.AddInt64(&done, 1)), total)
		}
	}

	jobs := make(chan func() error)
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if err := job(); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
				report()
			}
		}()
	}
	for ci := 0; ci < nC; ci++ {
		ci := ci
		jobs <- func() error { return runBounds(cases[ci], opts, int64(ci), &caseBounds[ci]) }
		for pi := range opts.Pairs {
			for si := range opts.Sweep {
				pi, si := pi, si
				jobs <- func() error {
					cfg := core.Config{
						Heuristic:   opts.Pairs[pi].Heuristic,
						Criterion:   opts.Pairs[pi].Criterion,
						EU:          opts.Sweep[si].EU,
						Weights:     opts.Weights,
						Parallelism: opts.PlanParallelism,
						Obs:         opts.Obs,
					}
					res, err := core.Schedule(cases[ci], cfg)
					if err != nil {
						return fmt.Errorf("case %d %v@%s: %w", ci, opts.Pairs[pi], opts.Sweep[si].Label, err)
					}
					mRuns.Inc()
					hRunSeconds.Observe(res.Elapsed.Seconds())
					runs[(pi*nS+si)*nC+ci] = eval.Measure(cases[ci], res, opts.Weights)
					bneck[(pi*nS+si)*nC+ci] = utilization.Compute(cases[ci], res.Transfers).MaxLinkBusyFraction
					return nil
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	return aggregate(opts, cases, runs, bneck, caseBounds, begin), nil
}

func generateCases(opts Options) ([]*scenario.Scenario, error) {
	cases := make([]*scenario.Scenario, opts.NumCases)
	for i := range cases {
		sc, err := gen.Generate(opts.Params, opts.BaseSeed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("experiment: case %d: %w", i, err)
		}
		cases[i] = sc
	}
	return cases, nil
}

type boundsRow struct {
	upper     float64
	possible  float64
	randomDij eval.Metrics
	singleDij eval.Metrics
	priFirst  eval.Metrics
}

func runBounds(sc *scenario.Scenario, opts Options, seed int64, row *boundsRow) error {
	row.upper = bounds.Upper(sc, opts.Weights)
	row.possible, _ = bounds.PossibleSatisfy(sc, opts.Weights)
	rd, err := bounds.RandomDijkstra(sc, opts.Weights, seed)
	if err != nil {
		return err
	}
	row.randomDij = eval.Measure(sc, rd, opts.Weights)
	sd, err := bounds.SingleDijkstraRandom(sc, opts.Weights, seed)
	if err != nil {
		return err
	}
	row.singleDij = eval.Measure(sc, sd, opts.Weights)
	pf, err := bounds.PriorityFirst(sc, opts.Weights)
	if err != nil {
		return err
	}
	row.priFirst = eval.Measure(sc, pf, opts.Weights)
	return nil
}

func aggregate(opts Options, cases []*scenario.Scenario, runs []eval.Metrics, bneck []float64, caseBounds []boundsRow, begin time.Time) *Result {
	nP, nS, nC := len(opts.Pairs), len(opts.Sweep), opts.NumCases
	out := &Result{
		Weights:     opts.Weights,
		SweepLabels: make([]string, nS),
		Pairs:       make([]PairSweep, nP),
		Cases:       nC,
	}
	for i, sp := range opts.Sweep {
		out.SweepLabels[i] = sp.Label
	}
	for pi := range opts.Pairs {
		ps := PairSweep{Pair: opts.Pairs[pi], Points: make([]PointAggregate, nS)}
		for si := 0; si < nS; si++ {
			base := (pi*nS + si) * nC
			ps.Points[si] = aggregatePoint(runs[base:base+nC], bneck[base:base+nC])
		}
		out.Pairs[pi] = ps
	}
	rows := func(get func(*boundsRow) float64) []float64 {
		vals := make([]float64, nC)
		for i := range caseBounds {
			vals[i] = get(&caseBounds[i])
		}
		return vals
	}
	out.Upper = StatOf(rows(func(r *boundsRow) float64 { return r.upper }))
	out.PossibleSatisfy = StatOf(rows(func(r *boundsRow) float64 { return r.possible }))
	out.RandomDijkstra = StatOf(rows(func(r *boundsRow) float64 { return r.randomDij.WeightedValue }))
	out.SingleDijkstraRandom = StatOf(rows(func(r *boundsRow) float64 { return r.singleDij.WeightedValue }))
	out.PriorityFirst = StatOf(rows(func(r *boundsRow) float64 { return r.priFirst.WeightedValue }))
	pfMetrics := make([]eval.Metrics, nC)
	for i := range caseBounds {
		pfMetrics[i] = caseBounds[i].priFirst
	}
	out.PriorityFirstByPriority = meanByPriority(pfMetrics)
	out.Elapsed = time.Since(begin)
	return out
}

func aggregatePoint(ms []eval.Metrics, bneck []float64) PointAggregate {
	values := make([]float64, len(ms))
	var hops, dijkstras, satisfied, transfers, busy float64
	var elapsed time.Duration
	for i := range ms {
		values[i] = ms[i].WeightedValue
		hops += ms[i].MeanHops
		dijkstras += float64(ms[i].DijkstraRuns)
		satisfied += float64(ms[i].SatisfiedCount)
		transfers += float64(ms[i].Transfers)
		elapsed += ms[i].Elapsed
		busy += bneck[i]
	}
	n := float64(len(ms))
	return PointAggregate{
		Value:               StatOf(values),
		SatisfiedByPriority: meanByPriority(ms),
		MeanHops:            hops / n,
		MeanElapsed:         elapsed / time.Duration(len(ms)),
		MeanDijkstraRuns:    dijkstras / n,
		MeanSatisfied:       satisfied / n,
		MeanTransfers:       transfers / n,
		MeanBottleneckBusy:  busy / n,
	}
}

func meanByPriority(ms []eval.Metrics) []float64 {
	classes := 0
	for i := range ms {
		if len(ms[i].ByPriority) > classes {
			classes = len(ms[i].ByPriority)
		}
	}
	out := make([]float64, classes)
	for i := range ms {
		for p, pc := range ms[i].ByPriority {
			out[p] += float64(pc.Satisfied)
		}
	}
	for p := range out {
		out[p] /= float64(len(ms))
	}
	return out
}
