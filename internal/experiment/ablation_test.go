package experiment

import (
	"testing"
	"time"

	"datastaging/internal/core"
)

func TestGammaSweep(t *testing.T) {
	opts := tinyOptions()
	opts.NumCases = 2
	pair := core.Pair{Heuristic: core.FullPathOneDest, Criterion: core.C4}
	points, err := GammaSweep(opts, []time.Duration{0, 6 * time.Minute, time.Hour}, pair, core.EUFromLog10(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points: got %d", len(points))
	}
	for _, pt := range points {
		if pt.Value.Mean <= 0 {
			t.Errorf("gamma %v: non-positive value %v", pt.Gamma, pt.Value.Mean)
		}
		if pt.MeanSatisfied <= 0 {
			t.Errorf("gamma %v: no satisfied requests", pt.Gamma)
		}
	}
	if _, err := GammaSweep(opts, nil, pair, core.EUFromLog10(2)); err == nil {
		t.Error("empty gamma list should fail")
	}
	if _, err := GammaSweep(opts, []time.Duration{-time.Second}, pair, core.EUFromLog10(2)); err == nil {
		t.Error("negative gamma should fail")
	}
}

func TestArrivalSweep(t *testing.T) {
	opts := tinyOptions()
	opts.NumCases = 2
	pair := core.Pair{Heuristic: core.FullPathOneDest, Criterion: core.C4}
	points, err := ArrivalSweep(opts, []float64{0, 1}, pair, core.EUFromLog10(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: got %d", len(points))
	}
	zero, all := points[0], points[1]
	// Everything known upfront ⇒ online equals offline exactly.
	if zero.OnlineValue != zero.OfflineValue || zero.RetainedFraction != 1 {
		t.Errorf("fraction 0: %+v", zero)
	}
	if zero.MeanReplans != 1 {
		t.Errorf("fraction 0: replans %v", zero.MeanReplans)
	}
	// Late knowledge can only hurt, and must trigger re-plans.
	if all.OnlineValue.Mean > all.OfflineValue.Mean {
		t.Errorf("fraction 1: online %v above offline %v", all.OnlineValue.Mean, all.OfflineValue.Mean)
	}
	if all.MeanReplans <= 1 {
		t.Errorf("fraction 1: replans %v, want > 1", all.MeanReplans)
	}
	if all.RetainedFraction <= 0 || all.RetainedFraction > 1.0001 {
		t.Errorf("fraction 1: retained %v", all.RetainedFraction)
	}

	if _, err := ArrivalSweep(opts, nil, pair, core.EUFromLog10(2)); err == nil {
		t.Error("empty fraction list should fail")
	}
	if _, err := ArrivalSweep(opts, []float64{1.5}, pair, core.EUFromLog10(2)); err == nil {
		t.Error("out-of-range fraction should fail")
	}
}

func TestSerialComparison(t *testing.T) {
	opts := tinyOptions()
	opts.NumCases = 2
	pair := core.Pair{Heuristic: core.FullPathOneDest, Criterion: core.C4}
	pt, err := SerialComparison(opts, pair, core.EUFromLog10(2))
	if err != nil {
		t.Fatal(err)
	}
	if pt.Serial.Mean > pt.Parallel.Mean {
		t.Errorf("serialization should not increase value: %v vs %v", pt.Serial.Mean, pt.Parallel.Mean)
	}
	if pt.RetainedFraction <= 0 || pt.RetainedFraction > 1.0001 {
		t.Errorf("fraction %v outside (0,1]", pt.RetainedFraction)
	}
}

func TestFailureSweep(t *testing.T) {
	opts := tinyOptions()
	opts.NumCases = 2
	pair := core.Pair{Heuristic: core.FullPathOneDest, Criterion: core.C4}
	points, err := FailureSweep(opts, []int{0, 5}, pair, core.EUFromLog10(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: got %d", len(points))
	}
	zero, five := points[0], points[1]
	// With no failures the dynamic run equals the static run exactly.
	if zero.DynamicValue != zero.StaticValue {
		t.Errorf("0 failures: dynamic %+v != static %+v", zero.DynamicValue, zero.StaticValue)
	}
	if zero.RetainedFraction != 1 || zero.MeanAborted != 0 {
		t.Errorf("0 failures: fraction %v aborted %v", zero.RetainedFraction, zero.MeanAborted)
	}
	if zero.MeanReplans != 1 {
		t.Errorf("0 failures: replans %v, want 1", zero.MeanReplans)
	}
	// Failures can only take value away (recoveries are best-effort) and
	// must trigger re-plans.
	if five.DynamicValue.Mean > five.StaticValue.Mean {
		t.Errorf("5 failures: dynamic %v above static %v", five.DynamicValue.Mean, five.StaticValue.Mean)
	}
	if five.RetainedFraction > 1.0001 || five.RetainedFraction <= 0 {
		t.Errorf("5 failures: fraction %v outside (0,1]", five.RetainedFraction)
	}
	if five.MeanReplans < 2 {
		t.Errorf("5 failures: replans %v, want >= 2", five.MeanReplans)
	}

	if _, err := FailureSweep(opts, nil, pair, core.EUFromLog10(2)); err == nil {
		t.Error("empty failure list should fail")
	}
	if _, err := FailureSweep(opts, []int{-1}, pair, core.EUFromLog10(2)); err == nil {
		t.Error("negative failure count should fail")
	}
}
