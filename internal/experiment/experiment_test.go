package experiment

import (
	"sync"
	"testing"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/obs"
)

func tinyParams() gen.Params {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 5, Max: 5}
	p.RequestsPerMachine = gen.IntRange{Min: 4, Max: 6}
	return p
}

func tinyOptions() Options {
	return Options{
		Params:   tinyParams(),
		NumCases: 3,
		BaseSeed: 1,
		Weights:  model.Weights1x10x100,
		Sweep: []SweepPoint{
			{Label: "-inf", EU: core.EUUrgencyOnly},
			{Label: "0", EU: core.EUFromLog10(0)},
			{Label: "inf", EU: core.EUPriorityOnly},
		},
	}
}

func TestStandardSweep(t *testing.T) {
	sw := StandardSweep()
	if len(sw) != 11 {
		t.Fatalf("StandardSweep: got %d points, want 11", len(sw))
	}
	if sw[0].Label != "-inf" || sw[10].Label != "inf" {
		t.Errorf("extremes: got %q, %q", sw[0].Label, sw[10].Label)
	}
	if sw[1].Label != "-3" || sw[9].Label != "5" {
		t.Errorf("interior labels: got %q..%q", sw[1].Label, sw[9].Label)
	}
	if sw[4].EU.WE != 1 || sw[4].EU.WU != 1 {
		t.Errorf("log10=0 point: got %+v", sw[4].EU)
	}
}

func TestStatOf(t *testing.T) {
	s := StatOf([]float64{3, 1, 2})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.N != 3 {
		t.Errorf("StatOf: got %+v", s)
	}
	if z := StatOf(nil); z != (Stat{}) {
		t.Errorf("StatOf(nil): got %+v", z)
	}
}

func TestRunStudy(t *testing.T) {
	opts := tinyOptions()
	var mu sync.Mutex
	var calls int
	opts.Progress = func(done, total int) {
		mu.Lock()
		calls++
		mu.Unlock()
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 3 {
		t.Errorf("Cases: got %d", res.Cases)
	}
	if len(res.Pairs) != 11 {
		t.Fatalf("Pairs: got %d, want 11", len(res.Pairs))
	}
	if len(res.SweepLabels) != 3 {
		t.Fatalf("SweepLabels: got %v", res.SweepLabels)
	}
	wantCalls := 11*3*3 + 3
	if calls != wantCalls {
		t.Errorf("Progress calls: got %d, want %d", calls, wantCalls)
	}
	// Bound sanity on aggregates.
	if res.Upper.Mean < res.PossibleSatisfy.Mean {
		t.Errorf("upper (%v) below possible_satisfy (%v)", res.Upper.Mean, res.PossibleSatisfy.Mean)
	}
	for _, ps := range res.Pairs {
		for si, pt := range ps.Points {
			if pt.Value.Mean < 0 || pt.Value.Mean > res.PossibleSatisfy.Max {
				t.Errorf("%v point %d: mean %v outside [0, possible max %v]",
					ps.Pair, si, pt.Value.Mean, res.PossibleSatisfy.Max)
			}
			if pt.Value.Min > pt.Value.Mean || pt.Value.Mean > pt.Value.Max {
				t.Errorf("%v point %d: min/mean/max disordered: %+v", ps.Pair, si, pt.Value)
			}
			if pt.MeanSatisfied > 0 && pt.MeanHops <= 0 {
				t.Errorf("%v point %d: satisfied requests but zero hops", ps.Pair, si)
			}
			if pt.MeanBottleneckBusy < 0 || pt.MeanBottleneckBusy > 1 {
				t.Errorf("%v point %d: bottleneck busy %v outside [0,1]", ps.Pair, si, pt.MeanBottleneckBusy)
			}
			if pt.MeanTransfers > 0 && pt.MeanBottleneckBusy == 0 {
				t.Errorf("%v point %d: transfers committed but bottleneck busy is zero", ps.Pair, si)
			}
		}
	}
	// Lookup helper.
	ps, ok := res.PairByName(core.FullPathOneDest, core.C4)
	if !ok {
		t.Fatal("PairByName(full_one, C4) missing")
	}
	best := ps.BestPoint()
	if best < 0 || best >= 3 {
		t.Errorf("BestPoint: got %d", best)
	}
	if _, ok := res.PairByName(core.FullPathAllDests, core.C1); ok {
		t.Error("excluded pairing should not be present")
	}
}

func TestRunStudyDeterministic(t *testing.T) {
	opts := tinyOptions()
	opts.Pairs = []core.Pair{{Heuristic: core.PartialPath, Criterion: core.C4}}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Pairs[0].Points {
		if a.Pairs[0].Points[si].Value != b.Pairs[0].Points[si].Value {
			t.Errorf("point %d differs across identical runs", si)
		}
	}
	if a.Upper != b.Upper || a.RandomDijkstra != b.RandomDijkstra {
		t.Error("bounds differ across identical runs")
	}
}

func TestRunStudyPropagatesSchedulerErrors(t *testing.T) {
	opts := tinyOptions()
	// The excluded pairing fails config validation inside the worker; Run
	// must surface it instead of hanging or dropping it.
	opts.Pairs = []core.Pair{{Heuristic: core.FullPathAllDests, Criterion: core.C1}}
	if _, err := Run(opts); err == nil {
		t.Error("Run should surface the scheduler's config error")
	}
}

func TestRunStudyRejectsMissingWeights(t *testing.T) {
	opts := tinyOptions()
	opts.Weights = nil
	if _, err := Run(opts); err == nil {
		t.Error("Run without weights should fail")
	}
}

func TestCongestionSweep(t *testing.T) {
	opts := tinyOptions()
	opts.NumCases = 2
	pair := core.Pair{Heuristic: core.FullPathOneDest, Criterion: core.C4}
	res, err := CongestionSweep(opts, []int{3, 10}, pair, core.EUFromLog10(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points: got %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.SatisfiedFraction < 0 || pt.SatisfiedFraction > 1.0001 {
			t.Errorf("load %d: fraction %v outside [0,1]", pt.RequestsPerMachine, pt.SatisfiedFraction)
		}
		if pt.Upper.Mean < pt.PossibleSatisfy.Mean {
			t.Errorf("load %d: upper below possible", pt.RequestsPerMachine)
		}
	}
	// Heavier load must offer at least as much total weight upstream.
	if res.Points[1].Upper.Mean <= res.Points[0].Upper.Mean {
		t.Errorf("upper bound should grow with load: %v vs %v",
			res.Points[0].Upper.Mean, res.Points[1].Upper.Mean)
	}
	// Contention can only hurt the satisfiable fraction, up to noise; allow
	// equality plus slack rather than asserting strict monotonicity.
	if res.Points[1].SatisfiedFraction > res.Points[0].SatisfiedFraction+0.25 {
		t.Errorf("fraction rose sharply with congestion: %v -> %v",
			res.Points[0].SatisfiedFraction, res.Points[1].SatisfiedFraction)
	}

	if _, err := CongestionSweep(opts, nil, pair, core.EUFromLog10(0)); err == nil {
		t.Error("empty load list should fail")
	}
	if _, err := CongestionSweep(opts, []int{0}, pair, core.EUFromLog10(0)); err == nil {
		t.Error("zero load should fail")
	}
}

// TestRunStudyObsAggregates checks the shared-registry contract: one Obs
// threaded through a study counts every scheduler run exactly once, times
// each of them, and accumulates the per-run core counters across workers.
func TestRunStudyObsAggregates(t *testing.T) {
	opts := tinyOptions()
	opts.Pairs = []core.Pair{{Heuristic: core.FullPathOneDest, Criterion: core.C4}}
	opts.Obs = obs.New()
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := int64(len(opts.Pairs) * len(opts.Sweep) * res.Cases)
	snap := opts.Obs.Snapshot()
	if got := snap.Counters["experiment.runs_total"]; got != wantRuns {
		t.Errorf("experiment.runs_total = %d, want %d", got, wantRuns)
	}
	h := snap.Histograms["experiment.run_seconds"]
	if h.Count != wantRuns {
		t.Errorf("experiment.run_seconds observations = %d, want %d", h.Count, wantRuns)
	}
	if got := snap.Counters["core.iterations_total"]; got <= 0 {
		t.Errorf("core.iterations_total = %d, want > 0 (shared registry not threaded into runs)", got)
	}
}
