package experiment

import (
	"fmt"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/workload"
)

// SaturationAggPoint is one load point of the cross-case saturation
// aggregate.
type SaturationAggPoint struct {
	Load float64 `json:"load"`
	// MeanOffered is the mean offered request count at this load.
	MeanOffered float64 `json:"meanOffered"`
	// AdmissionRate and Efficiency aggregate the per-case values.
	AdmissionRate Stat `json:"admissionRate"`
	Efficiency    Stat `json:"efficiency"`
	// MeanP99 is the mean (over cases) p99 decision latency.
	MeanP99 time.Duration `json:"meanP99DecisionLatency"`
}

// SaturationAggregate is a saturation sweep averaged over NumCases
// generated networks, the cross-case counterpart of
// workload.SaturationResult.
type SaturationAggregate struct {
	Spec   string               `json:"spec"`
	Cases  int                  `json:"cases"`
	Points []SaturationAggPoint `json:"points"`
	// KneeIndex/KneeLoad locate the knee on the mean admission-rate
	// curve (-1/0 when the sweep never saturates).
	KneeIndex int     `json:"kneeIndex"`
	KneeLoad  float64 `json:"kneeLoad"`
}

// SaturationSweep runs the saturation analyzer over NumCases base networks
// (generated from Params with seeds BaseSeed+i, items stripped) and
// aggregates admission rate, weighted-value efficiency, and decision
// latency per load point. Case i compiles the spec with seed Spec.Seed+i so
// the cases see different-but-deterministic arrival streams.
func SaturationSweep(opts Options, spec workload.Spec, loads []float64, pair core.Pair, eu core.EUWeights) (*SaturationAggregate, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("experiment: no saturation loads")
	}
	cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu,
		Weights: opts.Weights, Parallelism: opts.PlanParallelism, Obs: opts.Obs}

	perCase := make([]*workload.SaturationResult, opts.NumCases)
	for ci := 0; ci < opts.NumCases; ci++ {
		base, err := gen.NetworkOnly(opts.Params, opts.BaseSeed+int64(ci))
		if err != nil {
			return nil, err
		}
		caseSpec := spec
		caseSpec.Seed += int64(ci)
		res, err := workload.Saturate(workload.SaturationOptions{
			Spec: caseSpec, Loads: loads, Base: base, Config: cfg,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: saturation case %d: %w", ci, err)
		}
		perCase[ci] = res
		if opts.Progress != nil {
			opts.Progress(ci+1, opts.NumCases)
		}
	}

	agg := &SaturationAggregate{Spec: spec.Name, Cases: opts.NumCases, KneeIndex: -1}
	for li, load := range loads {
		rates := make([]float64, opts.NumCases)
		effs := make([]float64, opts.NumCases)
		var offered float64
		var p99 time.Duration
		for ci, res := range perCase {
			pt := res.Points[li]
			rates[ci] = pt.AdmissionRate
			effs[ci] = pt.Efficiency
			offered += float64(pt.Requests)
			p99 += pt.P99
		}
		agg.Points = append(agg.Points, SaturationAggPoint{
			Load:          load,
			MeanOffered:   offered / float64(opts.NumCases),
			AdmissionRate: StatOf(rates),
			Efficiency:    StatOf(effs),
			MeanP99:       p99 / time.Duration(opts.NumCases),
		})
	}
	if base := agg.Points[0].AdmissionRate.Mean; base > 0 {
		for i := range agg.Points {
			if agg.Points[i].AdmissionRate.Mean < 0.9*base {
				agg.KneeIndex = i
				agg.KneeLoad = agg.Points[i].Load
				break
			}
		}
	}
	return agg, nil
}
