package experiment

import (
	"math"
	"testing"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
)

// TestPaperShapes is the reproduction regression: on a moderate-scale
// seeded study it asserts every qualitative ordering the paper reports.
// If a refactor silently changes scheduler behavior, this is the test that
// should notice.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (reduced-size) study")
	}
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 8, Max: 8}
	p.RequestsPerMachine = gen.IntRange{Min: 15, Max: 15}
	res, err := Run(Options{
		Params:   p,
		NumCases: 6,
		BaseSeed: 1,
		Weights:  model.Weights1x10x100,
	})
	if err != nil {
		t.Fatal(err)
	}

	best := func(h core.Heuristic, c core.Criterion) float64 {
		ps, ok := res.PairByName(h, c)
		if !ok {
			t.Fatalf("pair %v/%v missing", h, c)
		}
		return ps.Points[ps.BestPoint()].Value.Mean
	}

	// Figure 2 ordering: single_Dij_random < random_Dijkstra < heuristics
	// <= possible_satisfy <= upper_bound.
	if !(res.SingleDijkstraRandom.Mean < res.RandomDijkstra.Mean) {
		t.Errorf("single_Dij_random (%v) should be below random_Dijkstra (%v)",
			res.SingleDijkstraRandom.Mean, res.RandomDijkstra.Mean)
	}
	for _, h := range []core.Heuristic{core.PartialPath, core.FullPathOneDest, core.FullPathAllDests} {
		v := best(h, core.C4)
		if !(v > res.RandomDijkstra.Mean) {
			t.Errorf("%v/C4 best (%v) should beat random_Dijkstra (%v)", h, v, res.RandomDijkstra.Mean)
		}
		if v > res.PossibleSatisfy.Mean {
			t.Errorf("%v/C4 best (%v) above possible_satisfy (%v)", h, v, res.PossibleSatisfy.Mean)
		}
	}
	if res.PossibleSatisfy.Mean > res.Upper.Mean {
		t.Errorf("possible_satisfy (%v) above upper_bound (%v)", res.PossibleSatisfy.Mean, res.Upper.Mean)
	}

	// §5.4: every pair's best beats priority_first.
	for i := range res.Pairs {
		ps := &res.Pairs[i]
		v := ps.Points[ps.BestPoint()].Value.Mean
		if v <= res.PriorityFirst.Mean {
			t.Errorf("%v best (%v) does not beat priority_first (%v)", ps.Pair, v, res.PriorityFirst.Mean)
		}
	}

	// C3 is flat across the E-U sweep (it ignores W_E/W_U).
	for _, h := range []core.Heuristic{core.PartialPath, core.FullPathOneDest, core.FullPathAllDests} {
		ps, _ := res.PairByName(h, core.C3)
		first := ps.Points[0].Value.Mean
		for si, pt := range ps.Points {
			if math.Abs(pt.Value.Mean-first) > 1e-9 {
				t.Errorf("%v/C3 varies across the sweep at point %d: %v vs %v", h, si, pt.Value.Mean, first)
			}
		}
	}

	// The urgency-only extreme underperforms the best point for the
	// ratio-sensitive criteria (the figures' rising shape).
	for _, h := range []core.Heuristic{core.PartialPath, core.FullPathOneDest} {
		for _, c := range []core.Criterion{core.C1, core.C2, core.C4} {
			ps, _ := res.PairByName(h, c)
			bestV := ps.Points[ps.BestPoint()].Value.Mean
			urgOnly := ps.Points[0].Value.Mean // "-inf" is the first sweep point
			if !(urgOnly < bestV) {
				t.Errorf("%v/%v: urgency-only (%v) should trail the best point (%v)", h, c, urgOnly, bestV)
			}
		}
	}

	// full_all needs the fewest Dijkstra executions, partial the most
	// (§4.7's motivation), comparing each pair at C4's best point.
	dij := func(h core.Heuristic) float64 {
		ps, _ := res.PairByName(h, core.C4)
		return ps.Points[ps.BestPoint()].MeanDijkstraRuns
	}
	if !(dij(core.FullPathAllDests) < dij(core.FullPathOneDest)) ||
		!(dij(core.FullPathOneDest) < dij(core.PartialPath)) {
		t.Errorf("Dijkstra-run ordering violated: full_all %v, full_one %v, partial %v",
			dij(core.FullPathAllDests), dij(core.FullPathOneDest), dij(core.PartialPath))
	}
}
