package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/dynamic"
	"datastaging/internal/eval"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
)

// GammaPoint is one garbage-collection-delay level of the γ ablation.
type GammaPoint struct {
	Gamma time.Duration
	// Value aggregates the weighted value over the cases.
	Value Stat
	// MeanSatisfied is the mean satisfied-request count.
	MeanSatisfied float64
}

// GammaSweep ablates the garbage-collection delay γ (§4.4): longer
// retention keeps intermediate copies around as extra sources and for fault
// tolerance, but occupies storage that other items may need. The paper
// fixes γ at six minutes; this sweep measures the static-schedule cost of
// that choice across retention levels.
func GammaSweep(opts Options, gammas []time.Duration, pair core.Pair, eu core.EUWeights) ([]GammaPoint, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	if len(gammas) == 0 {
		return nil, fmt.Errorf("experiment: no gamma levels")
	}
	out := make([]GammaPoint, 0, len(gammas))
	for _, g := range gammas {
		if g < 0 {
			return nil, fmt.Errorf("experiment: negative gamma %v", g)
		}
		p := opts.Params
		p.GarbageCollect = g
		values := make([]float64, opts.NumCases)
		var satisfied float64
		for ci := 0; ci < opts.NumCases; ci++ {
			sc, err := gen.Generate(p, opts.BaseSeed+int64(ci))
			if err != nil {
				return nil, fmt.Errorf("experiment: gamma %v case %d: %w", g, ci, err)
			}
			cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu, Weights: opts.Weights, Parallelism: opts.PlanParallelism, Obs: opts.Obs}
			res, err := core.Schedule(sc, cfg)
			if err != nil {
				return nil, err
			}
			m := eval.Measure(sc, res, opts.Weights)
			values[ci] = m.WeightedValue
			satisfied += float64(m.SatisfiedCount)
		}
		out = append(out, GammaPoint{
			Gamma:         g,
			Value:         StatOf(values),
			MeanSatisfied: satisfied / float64(opts.NumCases),
		})
	}
	return out, nil
}

// FailurePoint is one link-failure-rate level of the resilience sweep.
type FailurePoint struct {
	// FailedLinks is how many random virtual links fail per case.
	FailedLinks int
	// StaticValue is the no-failure weighted value on the same cases.
	StaticValue Stat
	// DynamicValue is the value achieved after failures and re-planning.
	DynamicValue Stat
	// RetainedFraction is the mean of dynamic/static value: how much of
	// the schedule survives, including re-planned recoveries.
	RetainedFraction float64
	// MeanAborted is the mean number of cascade-aborted transfers.
	MeanAborted float64
	// MeanReplans is the mean number of scheduler invocations.
	MeanReplans float64
}

// FailureSweep measures resilience under random link failures (the paper's
// §1 fault-tolerance motivation, as an extension): for each level, every
// test case runs statically and then dynamically with k random virtual
// links failing at random instants inside the active period, re-planning
// after each failure.
func FailureSweep(opts Options, failureCounts []int, pair core.Pair, eu core.EUWeights) ([]FailurePoint, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	if len(failureCounts) == 0 {
		return nil, fmt.Errorf("experiment: no failure levels")
	}
	cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu, Weights: opts.Weights, Parallelism: opts.PlanParallelism, Obs: opts.Obs}
	out := make([]FailurePoint, 0, len(failureCounts))
	for _, k := range failureCounts {
		if k < 0 {
			return nil, fmt.Errorf("experiment: negative failure count %d", k)
		}
		static := make([]float64, opts.NumCases)
		dyn := make([]float64, opts.NumCases)
		var fracSum, abortSum, replanSum float64
		for ci := 0; ci < opts.NumCases; ci++ {
			seed := opts.BaseSeed + int64(ci)
			sc, err := gen.Generate(opts.Params, seed)
			if err != nil {
				return nil, fmt.Errorf("experiment: failures %d case %d: %w", k, ci, err)
			}
			sres, err := core.Schedule(sc, cfg)
			if err != nil {
				return nil, err
			}
			static[ci] = sres.WeightedValue(sc, opts.Weights)

			events := randomFailures(sc, k, seed)
			dres, err := dynamic.Simulate(sc, cfg, events)
			if err != nil {
				return nil, err
			}
			var dv float64
			for id := range dres.Satisfied {
				dv += opts.Weights.Of(sc.Request(id).Priority)
			}
			dyn[ci] = dv
			if static[ci] > 0 {
				fracSum += dv / static[ci]
			} else {
				fracSum++
			}
			abortSum += float64(len(dres.Aborted))
			replanSum += float64(dres.Replans)
		}
		n := float64(opts.NumCases)
		out = append(out, FailurePoint{
			FailedLinks:      k,
			StaticValue:      StatOf(static),
			DynamicValue:     StatOf(dyn),
			RetainedFraction: fracSum / n,
			MeanAborted:      abortSum / n,
			MeanReplans:      replanSum / n,
		})
	}
	return out, nil
}

// SerialPoint compares the paper's parallel-send model against the §3
// future-work port serialization on the same cases.
type SerialPoint struct {
	Parallel Stat
	Serial   Stat
	// RetainedFraction is the mean serial/parallel value ratio.
	RetainedFraction float64
}

// SerialComparison measures what the paper's "each machine can send
// different data items simultaneously" assumption is worth: the same pair
// runs on the same cases with and without per-machine port serialization.
func SerialComparison(opts Options, pair core.Pair, eu core.EUWeights) (*SerialPoint, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu, Weights: opts.Weights, Parallelism: opts.PlanParallelism, Obs: opts.Obs}
	par := make([]float64, opts.NumCases)
	ser := make([]float64, opts.NumCases)
	var fracSum float64
	for ci := 0; ci < opts.NumCases; ci++ {
		seed := opts.BaseSeed + int64(ci)
		free, err := gen.Generate(opts.Params, seed)
		if err != nil {
			return nil, err
		}
		locked, err := gen.Generate(opts.Params, seed)
		if err != nil {
			return nil, err
		}
		locked.SerialTransfers = true
		fres, err := core.Schedule(free, cfg)
		if err != nil {
			return nil, err
		}
		lres, err := core.Schedule(locked, cfg)
		if err != nil {
			return nil, err
		}
		par[ci] = fres.WeightedValue(free, opts.Weights)
		ser[ci] = lres.WeightedValue(locked, opts.Weights)
		if par[ci] > 0 {
			fracSum += ser[ci] / par[ci]
		} else {
			fracSum++
		}
	}
	return &SerialPoint{
		Parallel:         StatOf(par),
		Serial:           StatOf(ser),
		RetainedFraction: fracSum / float64(opts.NumCases),
	}, nil
}

// ArrivalPoint is one level of the online-arrival sweep.
type ArrivalPoint struct {
	// DynamicFraction is the share of items whose requests are only
	// revealed at a random instant instead of being known at time zero.
	DynamicFraction float64
	// OfflineValue is the everything-known-upfront value on the same
	// cases; OnlineValue is what event-driven re-planning achieves.
	OfflineValue Stat
	OnlineValue  Stat
	// RetainedFraction is the mean online/offline ratio — an empirical
	// competitive ratio of the re-planning scheduler.
	RetainedFraction float64
	// MeanReplans counts scheduler invocations per case.
	MeanReplans float64
}

// ArrivalSweep measures the cost of late knowledge (the paper's dynamic
// future work, §1/§6): for each level, a fraction of the items become known
// only at an instant drawn uniformly from the first half of their lead time
// (between time zero and their earliest deadline), and the event-driven
// simulator re-plans on each arrival. The offline scheduler on the same
// cases is the clairvoyant baseline.
func ArrivalSweep(opts Options, fractions []float64, pair core.Pair, eu core.EUWeights) ([]ArrivalPoint, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("experiment: no arrival fractions")
	}
	cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu, Weights: opts.Weights, Parallelism: opts.PlanParallelism, Obs: opts.Obs}
	out := make([]ArrivalPoint, 0, len(fractions))
	for _, frac := range fractions {
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("experiment: arrival fraction %v outside [0,1]", frac)
		}
		offline := make([]float64, opts.NumCases)
		online := make([]float64, opts.NumCases)
		var fracSum, replanSum float64
		for ci := 0; ci < opts.NumCases; ci++ {
			seed := opts.BaseSeed + int64(ci)
			sc, err := gen.Generate(opts.Params, seed)
			if err != nil {
				return nil, err
			}
			sres, err := core.Schedule(sc, cfg)
			if err != nil {
				return nil, err
			}
			offline[ci] = sres.WeightedValue(sc, opts.Weights)

			events := randomArrivals(sc, frac, seed)
			dres, err := dynamic.Simulate(sc, cfg, events)
			if err != nil {
				return nil, err
			}
			var ov float64
			for id := range dres.Satisfied {
				ov += opts.Weights.Of(sc.Request(id).Priority)
			}
			online[ci] = ov
			if offline[ci] > 0 {
				fracSum += ov / offline[ci]
			} else {
				fracSum++
			}
			replanSum += float64(dres.Replans)
		}
		n := float64(opts.NumCases)
		out = append(out, ArrivalPoint{
			DynamicFraction:  frac,
			OfflineValue:     StatOf(offline),
			OnlineValue:      StatOf(online),
			RetainedFraction: fracSum / n,
			MeanReplans:      replanSum / n,
		})
	}
	return out, nil
}

// randomArrivals releases a deterministic random fraction of the items at
// instants drawn uniformly from [0, earliestDeadline/2) — late enough to
// hurt, early enough that satisfying them remains possible.
func randomArrivals(sc *scenario.Scenario, fraction float64, seed int64) []dynamic.Event {
	rng := rand.New(rand.NewSource(seed * 104729))
	var events []dynamic.Event
	for i := range sc.Items {
		if rng.Float64() >= fraction {
			continue
		}
		var earliest simtime.Instant
		for k, rq := range sc.Items[i].Requests {
			if k == 0 || rq.Deadline < earliest {
				earliest = rq.Deadline
			}
		}
		if earliest <= 0 {
			continue
		}
		at := simtime.Instant(rng.Int63n(int64(earliest) / 2))
		events = append(events, dynamic.Event{At: at, Kind: dynamic.ItemRelease, Item: model.ItemID(i)})
	}
	return events
}

// randomFailures draws k distinct virtual links failing at uniform instants
// within the scenario's active period (first two hours, matching the §5.3
// deadline horizon), deterministically per seed.
func randomFailures(sc *scenario.Scenario, k int, seed int64) []dynamic.Event {
	rng := rand.New(rand.NewSource(seed * 7919))
	n := len(sc.Network.Links)
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	events := make([]dynamic.Event, 0, k)
	for i := 0; i < k; i++ {
		events = append(events, dynamic.Event{
			At:   simtime.At(time.Duration(rng.Int63n(int64(2 * time.Hour)))),
			Kind: dynamic.LinkFail,
			Link: model.LinkID(perm[i]),
		})
	}
	return events
}
