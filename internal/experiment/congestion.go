package experiment

import (
	"fmt"
	"time"

	"datastaging/internal/bounds"
	"datastaging/internal/core"
	"datastaging/internal/eval"
	"datastaging/internal/gen"
)

// CongestionPoint is one network-load level of the congestion sweep: the
// request load in requests per machine, the achieved weighted value, and
// the same-case upper bounds for normalization.
type CongestionPoint struct {
	RequestsPerMachine int
	Value              Stat
	PossibleSatisfy    Stat
	Upper              Stat
	// SatisfiedFraction is the mean of value/possible_satisfy per case:
	// how much of the individually achievable weight survives contention.
	SatisfiedFraction float64
}

// CongestionResult is the full congestion sweep for one pair.
type CongestionResult struct {
	Pair    core.Pair
	EU      core.EUWeights
	Points  []CongestionPoint
	Cases   int
	Elapsed time.Duration
}

// CongestionSweep runs the paper's stated future work (§6): the same
// heuristic/cost-criterion pair across increasing network load. Each load
// level fixes RequestsPerMachine to a single value and regenerates the test
// cases.
func CongestionSweep(opts Options, loads []int, pair core.Pair, eu core.EUWeights) (*CongestionResult, error) {
	begin := time.Now()
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("experiment: no load levels")
	}
	out := &CongestionResult{Pair: pair, EU: eu, Cases: opts.NumCases}
	for _, load := range loads {
		if load <= 0 {
			return nil, fmt.Errorf("experiment: non-positive load %d", load)
		}
		p := opts.Params
		p.RequestsPerMachine = gen.IntRange{Min: load, Max: load}
		values := make([]float64, opts.NumCases)
		possibles := make([]float64, opts.NumCases)
		uppers := make([]float64, opts.NumCases)
		var fracSum float64
		for ci := 0; ci < opts.NumCases; ci++ {
			sc, err := gen.Generate(p, opts.BaseSeed+int64(ci))
			if err != nil {
				return nil, fmt.Errorf("experiment: congestion load %d case %d: %w", load, ci, err)
			}
			cfg := core.Config{Heuristic: pair.Heuristic, Criterion: pair.Criterion, EU: eu, Weights: opts.Weights, Parallelism: opts.PlanParallelism, Obs: opts.Obs}
			res, err := core.Schedule(sc, cfg)
			if err != nil {
				return nil, err
			}
			m := eval.Measure(sc, res, opts.Weights)
			values[ci] = m.WeightedValue
			possibles[ci], _ = bounds.PossibleSatisfy(sc, opts.Weights)
			uppers[ci] = bounds.Upper(sc, opts.Weights)
			if possibles[ci] > 0 {
				fracSum += values[ci] / possibles[ci]
			}
		}
		out.Points = append(out.Points, CongestionPoint{
			RequestsPerMachine: load,
			Value:              StatOf(values),
			PossibleSatisfy:    StatOf(possibles),
			Upper:              StatOf(uppers),
			SatisfiedFraction:  fracSum / float64(opts.NumCases),
		})
	}
	out.Elapsed = time.Since(begin)
	return out, nil
}
