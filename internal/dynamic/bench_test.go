package dynamic

import (
	"testing"
	"time"

	"datastaging/internal/gen"
	"datastaging/internal/simtime"
)

// BenchmarkEngineIncremental measures one steady-state admission epoch over
// a pre-grown world: the first epoch commits the whole scenario, then every
// timed iteration advances the planning floor by one second and replans.
// The incremental path does O(delta) work (here, delta is empty); the
// fullreplay sub-benchmark pins the old rebuild-from-history cost as the
// frozen baseline the incremental engine is judged against.
func BenchmarkEngineIncremental(b *testing.B) {
	sc := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 8, Max: 8}
		p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
		return p
	}(), 7)

	for _, mode := range []struct {
		name string
		full bool
	}{
		{"incremental", false},
		{"fullreplay", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng, err := NewEngine(sc, cfgC4())
			if err != nil {
				b.Fatal(err)
			}
			eng.SetFullReplay(mode.full)
			if _, err := eng.ReplanAt(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			at := simtime.Instant(0)
			for i := 0; i < b.N; i++ {
				at = at.Add(time.Second)
				if _, err := eng.ReplanAt(at); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
