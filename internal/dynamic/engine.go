package dynamic

import (
	"fmt"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Engine is the epoch re-planning seam shared by the offline simulator
// (Simulate) and the online admission service (internal/serve). It owns the
// event-world bookkeeping — which items are withheld, which links are down,
// the surviving transfer history — and turns it into one scheduling epoch at
// a time: ReplanAt rebuilds a fresh state at the epoch instant, replays the
// surviving history (losses cascade), and runs the configured heuristic
// with the planning floor advanced so the past cannot be rewritten.
//
// The Engine is not safe for concurrent use; callers that take submissions
// from many goroutines (internal/serve) serialize access themselves.
type Engine struct {
	cfg core.Config
	sc  *scenario.Scenario
	st  *state.State

	withheld map[model.ItemID]bool
	outages  map[model.LinkID]simtime.Instant

	// history is the committed schedule surviving the last epoch; ReplanAt
	// replays it into the rebuilt state before planning.
	history []state.Transfer
	aborted []state.Transfer
	replans int
	elapsed time.Duration
}

// NewEngine returns an engine planning for sc under cfg. No epoch has run
// yet: Transfers is empty until the first ReplanAt.
func NewEngine(sc *scenario.Scenario, cfg core.Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		sc:       sc,
		withheld: make(map[model.ItemID]bool),
		outages:  make(map[model.LinkID]simtime.Instant),
	}, nil
}

// Scenario returns the instance the engine currently plans for.
func (e *Engine) Scenario() *scenario.Scenario { return e.sc }

// SetScenario replaces the planning instance. The item list of the new
// scenario must be an append-only extension of the old one (same network,
// existing item IDs unchanged), so that the committed history keeps
// referring to the right items; internal/serve uses this to admit data
// items that did not exist when the engine was created.
func (e *Engine) SetScenario(sc *scenario.Scenario) { e.sc = sc }

// Withhold hides items from the scheduler until Release: dynamic requests
// that have not arrived yet.
func (e *Engine) Withhold(items ...model.ItemID) {
	for _, it := range items {
		e.withheld[it] = true
	}
}

// Release makes withheld items schedulable from the next epoch on.
func (e *Engine) Release(items ...model.ItemID) {
	for _, it := range items {
		delete(e.withheld, it)
	}
}

// FailLink takes a virtual link down permanently from instant t. Idempotent;
// an earlier failure time wins.
func (e *Engine) FailLink(link model.LinkID, t simtime.Instant) {
	if prev, ok := e.outages[link]; !ok || t < prev {
		e.outages[link] = t
	}
}

// ReplanAt runs one scheduling epoch at instant at: rebuild the world
// (current outages, withheld items, surviving history replayed — transfers
// that no longer commit are aborted and the loss cascades), advance the
// planning floor to at, and run the heuristic over everything still open.
func (e *Engine) ReplanAt(at simtime.Instant) (*core.Result, error) {
	abortedBefore := len(e.aborted)
	st := state.New(e.sc)
	for item := range e.withheld {
		st.WithholdItem(item)
	}
	for link, t := range e.outages {
		st.FailLink(link, t)
	}
	for _, tr := range e.history {
		if _, err := st.Commit(tr.Item, tr.Link, tr.Start); err != nil {
			e.aborted = append(e.aborted, tr)
		}
	}
	st.SetFloor(at)

	res, err := core.ScheduleState(st, e.cfg)
	if err != nil {
		return nil, fmt.Errorf("dynamic: replan %d: %w", e.replans, err)
	}
	e.st = st
	e.history = st.Transfers()
	e.replans++
	e.elapsed += res.Elapsed
	observeEpoch(e.cfg.Obs, at, len(e.aborted)-abortedBefore)
	return res, nil
}

// State returns the resource state of the last epoch (nil before the first
// ReplanAt).
func (e *Engine) State() *state.State { return e.st }

// Transfers returns the surviving committed schedule in commit order. The
// slice is shared; do not mutate.
func (e *Engine) Transfers() []state.Transfer { return e.history }

// Satisfied returns the satisfied requests of the last epoch (nil before
// the first ReplanAt). The map is shared; do not mutate.
func (e *Engine) Satisfied() map[model.RequestID]simtime.Instant {
	if e.st == nil {
		return nil
	}
	return e.st.Satisfied()
}

// Aborted lists transfers lost so far (in flight on a failed link, causally
// downstream of a lost copy, or dropped via DropHistory and never
// re-committed). The slice is shared; do not mutate.
func (e *Engine) Aborted() []state.Transfer { return e.aborted }

// Replans counts completed epochs.
func (e *Engine) Replans() int { return e.replans }

// Elapsed is the total scheduling time across epochs.
func (e *Engine) Elapsed() time.Duration { return e.elapsed }

// DropHistory removes every committed transfer matching drop from the
// history and returns how many were removed. The state is not touched; the
// caller must run ReplanAt afterwards to rebuild the world without the
// dropped transfers (anything causally downstream of a dropped copy will
// cascade-abort during the replay). internal/serve uses this to preempt
// not-yet-started transfers of lower-priority items.
func (e *Engine) DropHistory(drop func(state.Transfer) bool) int {
	kept := e.history[:0:0]
	dropped := 0
	for _, tr := range e.history {
		if drop(tr) {
			dropped++
			continue
		}
		kept = append(kept, tr)
	}
	if dropped > 0 {
		e.history = kept
	}
	return dropped
}

// Checkpoint captures the engine's epoch bookkeeping so a speculative
// DropHistory + ReplanAt can be undone with Rollback.
type Checkpoint struct {
	history []state.Transfer
	aborted int
}

// Checkpoint snapshots the current history.
func (e *Engine) Checkpoint() Checkpoint {
	h := make([]state.Transfer, len(e.history))
	copy(h, e.history)
	return Checkpoint{history: h, aborted: len(e.aborted)}
}

// Rollback restores a checkpoint's history and discards aborts recorded
// since. It does not rebuild the state: the caller must ReplanAt the same
// epoch instant, which deterministically reproduces the pre-speculation
// schedule (the replay and the heuristics are deterministic).
func (e *Engine) Rollback(cp Checkpoint) {
	e.history = cp.history
	e.aborted = e.aborted[:cp.aborted]
}
