package dynamic

import (
	"fmt"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Engine is the epoch re-planning seam shared by the offline simulator
// (Simulate) and the online admission service (internal/serve). It owns the
// event-world bookkeeping — which items are withheld, which links are down,
// the surviving transfer history — and turns it into one scheduling epoch
// at a time.
//
// Committed state persists across epochs: the engine keeps one live
// state.State whose planning floor advances monotonically and one
// persistent core.Planner whose plan cache carries forward, so an ordinary
// epoch (new arrivals released, floor advanced, heuristic run over the open
// backlog) costs O(epoch delta), independent of how much history has
// accumulated. Only events that rewrite the past — a link failure that
// invalidates already-committed transfers, a DropHistory preemption, a
// Rollback — mark the engine dirty and force the next ReplanAt through
// replanFull, the original rebuild-and-replay path, which doubles as the
// correctness oracle for the incremental path (see engine_diff_test.go).
//
// The Engine is not safe for concurrent use; callers that take submissions
// from many goroutines (internal/serve) serialize access themselves.
type Engine struct {
	cfg core.Config
	sc  *scenario.Scenario
	st  *state.State
	pl  *core.Planner

	withheld map[model.ItemID]bool
	outages  map[model.LinkID]simtime.Instant

	// history is the committed schedule surviving the last epoch. On the
	// incremental path it aliases the live state's append-only transfer
	// log; replanFull replays it into a rebuilt state (losses cascade).
	history []state.Transfer
	aborted []state.Transfer
	replans int
	elapsed time.Duration

	// dirty records that the past was rewritten (link failure, history
	// splice, rollback) since the last epoch; the next ReplanAt must take
	// the full-replay path. forceFull pins every epoch to that path — the
	// differential harness and benchmarks use it as the oracle knob.
	dirty     bool
	forceFull bool
	last      EpochStats
}

// EpochStats describes how the engine executed its most recent epoch.
type EpochStats struct {
	// At is the epoch instant.
	At simtime.Instant
	// Full reports whether the epoch took the full-replay path (first
	// epoch, after a past-rewriting event, or forced).
	Full bool
	// ReplayedTransfers is how many historical transfers the epoch
	// re-committed into a rebuilt state; always zero on the incremental
	// path — that is the point.
	ReplayedTransfers int
	// DeltaItems is how many scenario items this epoch saw for the first
	// time (appended since the previous epoch).
	DeltaItems int
	// Aborted is how many transfers this epoch's replay lost.
	Aborted int
}

// NewEngine returns an engine planning for sc under cfg. No epoch has run
// yet: Transfers is empty until the first ReplanAt.
func NewEngine(sc *scenario.Scenario, cfg core.Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		sc:       sc,
		withheld: make(map[model.ItemID]bool),
		outages:  make(map[model.LinkID]simtime.Instant),
	}, nil
}

// Scenario returns the instance the engine currently plans for.
func (e *Engine) Scenario() *scenario.Scenario { return e.sc }

// SetScenario replaces the planning instance. The new scenario must be an
// append-only extension of the old one — same network, existing items
// unchanged, new items only appended — because the committed history and
// the live state refer to items by ID. Passing the pointer the engine
// already holds (the caller appended to the shared scenario in place, as
// internal/serve does) is trusted and O(1); a different pointer is verified
// structurally against the current scenario and rejected with an error when
// the extension is not append-only.
func (e *Engine) SetScenario(sc *scenario.Scenario) error {
	if sc == e.sc {
		return nil
	}
	if err := checkAppendOnly(e.sc, sc); err != nil {
		return err
	}
	e.sc = sc
	if e.st != nil {
		e.st.AdoptScenario(sc)
	}
	return nil
}

// checkAppendOnly verifies that next extends prev without rewriting it.
func checkAppendOnly(prev, next *scenario.Scenario) error {
	if next == nil {
		return fmt.Errorf("dynamic: SetScenario: nil scenario")
	}
	if next.Network != prev.Network {
		return fmt.Errorf("dynamic: SetScenario: network replaced; engine state refers to the old network")
	}
	if len(next.Items) < len(prev.Items) {
		return fmt.Errorf("dynamic: SetScenario: item list shrank from %d to %d", len(prev.Items), len(next.Items))
	}
	for i := range prev.Items {
		if !sameItem(&prev.Items[i], &next.Items[i]) {
			return fmt.Errorf("dynamic: SetScenario: item %d changed; extension must be append-only", i)
		}
	}
	return nil
}

// sameItem reports whether two items are structurally identical.
func sameItem(a, b *model.Item) bool {
	if a.ID != b.ID || a.Name != b.Name || a.SizeBytes != b.SizeBytes ||
		len(a.Sources) != len(b.Sources) || len(a.Requests) != len(b.Requests) {
		return false
	}
	for k := range a.Sources {
		if a.Sources[k] != b.Sources[k] {
			return false
		}
	}
	for k := range a.Requests {
		if a.Requests[k] != b.Requests[k] {
			return false
		}
	}
	return true
}

// Withhold hides items from the scheduler until Release: dynamic requests
// that have not arrived yet. Applied to the live state immediately; no
// replay needed.
func (e *Engine) Withhold(items ...model.ItemID) {
	for _, it := range items {
		e.withheld[it] = true
		if e.st != nil {
			e.st.WithholdItem(it)
		}
	}
}

// Release makes withheld items schedulable from the next epoch on. Applied
// to the live state immediately; no replay needed.
func (e *Engine) Release(items ...model.ItemID) {
	for _, it := range items {
		delete(e.withheld, it)
		if e.st != nil {
			e.st.ReleaseItem(it)
		}
	}
}

// FailLink takes a virtual link down permanently from instant t. Idempotent;
// an earlier failure time wins. A failure can strand transfers that were
// already committed (and anything causally downstream of them), so it
// rewrites the past: the next ReplanAt takes the full-replay path.
func (e *Engine) FailLink(link model.LinkID, t simtime.Instant) {
	if prev, ok := e.outages[link]; !ok || t < prev {
		e.outages[link] = t
		e.dirty = true
	}
}

// SetFullReplay pins (or unpins) every subsequent epoch to the full-replay
// path. The differential tests and benchmarks use it to run the replay
// oracle against the incremental fast path.
func (e *Engine) SetFullReplay(on bool) { e.forceFull = on }

// ReplanAt runs one scheduling epoch at instant at. The fast path applies
// the epoch delta to the persistent world — new items grown in, floor
// advanced, heuristic run over the open backlog — and is O(delta). The
// engine falls back to a full rebuild-and-replay only when no epoch has run
// yet, when the past was rewritten since the last epoch (link failure,
// DropHistory, Rollback), when at precedes the current floor, or when
// forced via SetFullReplay.
func (e *Engine) ReplanAt(at simtime.Instant) (*core.Result, error) {
	deltaItems := len(e.sc.Items)
	if e.st != nil {
		deltaItems -= e.st.NumTrackedItems()
	}
	if e.pl == nil || e.dirty || e.forceFull || at < e.st.Floor() {
		return e.replanFull(at, deltaItems)
	}
	return e.replanIncremental(at, deltaItems)
}

// replanFull rebuilds the world from scratch: fresh state, current outages
// and withholds re-applied, surviving history replayed (transfers that no
// longer commit are aborted and the loss cascades), floor advanced, then
// one epoch of the heuristic. It also rebuilds the persistent planner the
// incremental path continues from.
func (e *Engine) replanFull(at simtime.Instant, deltaItems int) (*core.Result, error) {
	abortedBefore := len(e.aborted)
	st := state.New(e.sc)
	for item := range e.withheld {
		st.WithholdItem(item)
	}
	for link, t := range e.outages {
		st.FailLink(link, t)
	}
	replayed := 0
	for _, tr := range e.history {
		if _, err := st.Commit(tr.Item, tr.Link, tr.Start); err != nil {
			e.aborted = append(e.aborted, tr)
		} else {
			replayed++
		}
	}
	st.SetFloor(at)

	pl, err := core.NewPlannerOn(st, e.cfg)
	if err != nil {
		return nil, fmt.Errorf("dynamic: replan %d: %w", e.replans, err)
	}
	res, err := pl.Epoch(at)
	if err != nil {
		return nil, fmt.Errorf("dynamic: replan %d: %w", e.replans, err)
	}
	e.st, e.pl = st, pl
	e.dirty = false
	e.finishEpoch(res, EpochStats{
		At: at, Full: true, ReplayedTransfers: replayed,
		DeltaItems: deltaItems, Aborted: len(e.aborted) - abortedBefore,
	})
	return res, nil
}

// replanIncremental runs one epoch against the persistent world. Nothing is
// replayed: committed transfers, satisfied requests, dead items, and cached
// forests all survive from the previous epoch, and only the delta (newly
// appended items, newly released items, the floor advance) is processed.
func (e *Engine) replanIncremental(at simtime.Instant, deltaItems int) (*core.Result, error) {
	res, err := e.pl.Epoch(at)
	if err != nil {
		return nil, fmt.Errorf("dynamic: replan %d: %w", e.replans, err)
	}
	e.finishEpoch(res, EpochStats{At: at, DeltaItems: deltaItems})
	return res, nil
}

func (e *Engine) finishEpoch(res *core.Result, es EpochStats) {
	e.history = e.st.Transfers()
	e.replans++
	e.elapsed += res.Elapsed
	e.last = es
	observeEpoch(e.cfg.Obs, es)
}

// LastEpoch describes the most recent ReplanAt: which path it took and how
// big its delta was. Zero value before the first epoch.
func (e *Engine) LastEpoch() EpochStats { return e.last }

// State returns the live resource state (nil before the first ReplanAt).
func (e *Engine) State() *state.State { return e.st }

// Transfers returns the surviving committed schedule in commit order. The
// slice is shared; do not mutate.
func (e *Engine) Transfers() []state.Transfer { return e.history }

// Satisfied returns the satisfied requests of the last epoch (nil before
// the first ReplanAt). The map is shared; do not mutate.
func (e *Engine) Satisfied() map[model.RequestID]simtime.Instant {
	if e.st == nil {
		return nil
	}
	return e.st.Satisfied()
}

// ItemRetired reports whether the planner has permanently retired the
// item: every request is satisfied or proven unsatisfiable at all future
// floors, so no later epoch can schedule more of it — short of a history
// rewrite, after which the rebuilt planner re-derives retirement from
// scratch. False before the first ReplanAt, for untracked items, and for
// capacity-blocked items (a later floor can bring those back).
func (e *Engine) ItemRetired(item model.ItemID) bool {
	return e.pl != nil && e.pl.ItemRetired(item)
}

// Aborted lists transfers lost so far (in flight on a failed link, causally
// downstream of a lost copy, or dropped via DropHistory and never
// re-committed). The slice is shared; do not mutate.
func (e *Engine) Aborted() []state.Transfer { return e.aborted }

// Replans counts completed epochs.
func (e *Engine) Replans() int { return e.replans }

// Elapsed is the total scheduling time across epochs.
func (e *Engine) Elapsed() time.Duration { return e.elapsed }

// DropHistory removes every committed transfer matching drop from the
// history and returns how many were removed. The live state is not touched;
// dropping rewrites the past, so the next ReplanAt takes the full-replay
// path (anything causally downstream of a dropped copy cascade-aborts
// during that replay). internal/serve uses this to preempt not-yet-started
// transfers of lower-priority items.
//
// The splice copies the kept transfers into a fresh backing array, never
// mutating the shared history in place — that is what makes Checkpoint O(1).
func (e *Engine) DropHistory(drop func(state.Transfer) bool) int {
	kept := e.history[:0:0]
	dropped := 0
	for _, tr := range e.history {
		if drop(tr) {
			dropped++
			continue
		}
		kept = append(kept, tr)
	}
	if dropped > 0 {
		e.history = kept
		e.dirty = true
	}
	return dropped
}

// Checkpoint captures the engine's epoch bookkeeping so a speculative
// DropHistory + ReplanAt can be undone with Rollback.
type Checkpoint struct {
	history []state.Transfer
	aborted int
}

// Checkpoint snapshots the current history in O(1). No copy is needed: the
// history grows append-only (epochs append to the state's transfer log,
// which never mutates the prefix this checkpoint's slice header covers) and
// DropHistory splices copy-on-write, so the snapshot's backing array can
// never be rewritten underneath it.
func (e *Engine) Checkpoint() Checkpoint {
	return Checkpoint{history: e.history, aborted: len(e.aborted)}
}

// Rollback restores a checkpoint's history and discards aborts recorded
// since. Rolling back rewrites the past, so the next ReplanAt takes the
// full-replay path, which deterministically reproduces the pre-speculation
// schedule (the replay and the heuristics are deterministic).
func (e *Engine) Rollback(cp Checkpoint) {
	e.history = cp.history
	e.aborted = e.aborted[:cp.aborted]
	e.dirty = true
}
