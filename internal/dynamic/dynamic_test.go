package dynamic

import (
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
	"datastaging/internal/validator"
)

func cfgC4() core.Config {
	return core.Config{
		Heuristic: core.FullPathOneDest,
		Criterion: core.C4,
		EU:        core.EUFromLog10(2),
		Weights:   model.Weights1x10x100,
	}
}

func TestSimulateNoEventsMatchesStatic(t *testing.T) {
	sc := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 6, Max: 6}
		p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
		return p
	}(), 5)
	dyn, err := Simulate(sc, cfgC4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	static, err := core.Schedule(sc, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.Transfers) != len(static.Transfers) {
		t.Fatalf("transfers: dynamic %d vs static %d", len(dyn.Transfers), len(static.Transfers))
	}
	for i := range dyn.Transfers {
		if dyn.Transfers[i] != static.Transfers[i] {
			t.Fatalf("transfer %d differs", i)
		}
	}
	if dyn.Replans != 1 || len(dyn.Aborted) != 0 {
		t.Errorf("no-event outcome: %d replans, %d aborted", dyn.Replans, len(dyn.Aborted))
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	if _, err := Simulate(sc, core.Config{}, nil); err == nil {
		t.Error("invalid config accepted")
	}
	for _, ev := range []Event{
		{Kind: ItemRelease, Item: 99},
		{Kind: LinkFail, Link: 99},
		{Kind: EventKind(9)},
		{Kind: LinkFail, Link: 0, At: -1},
	} {
		if _, err := Simulate(sc, cfgC4(), []Event{ev}); err == nil {
			t.Errorf("bad event %+v accepted", ev)
		}
	}
}

func TestSimulateLateReleaseSchedulesAfterArrival(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	release := simtime.At(10 * time.Minute)
	out, err := Simulate(sc, cfgC4(), []Event{{At: release, Kind: ItemRelease, Item: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Satisfied) != 1 {
		t.Fatalf("satisfied %d, want 1 (deadline 1h leaves room)", len(out.Satisfied))
	}
	if out.Replans != 2 {
		t.Errorf("replans: got %d, want 2", out.Replans)
	}
	for _, tr := range out.Transfers {
		if tr.Start.Before(release) {
			t.Errorf("transfer starts %v before the request was known (%v)", tr.Start, release)
		}
	}
	if err := validator.Validate(sc, out.Transfers); err != nil {
		t.Errorf("dynamic schedule invalid: %v", err)
	}
}

func TestSimulateReleaseAfterDeadlineUnsatisfiable(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, 30*time.Minute)
	out, err := Simulate(sc, cfgC4(), []Event{{At: simtime.At(time.Hour), Kind: ItemRelease, Item: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Satisfied) != 0 {
		t.Error("request released after its deadline cannot be satisfied")
	}
	if len(out.Transfers) != 0 {
		t.Errorf("no transfers should be committed, got %d", len(out.Transfers))
	}
}

// failureFixture: source 0 → intermediate 1 → destination 2 over two
// parallel physical links 1→2 (primary and backup). The backhaul 0→1 link
// has a window that closes early, so after a failure the only viable
// source for re-delivery is the copy retained at the intermediate.
func failureFixture(t *testing.T) (*scenario.Scenario, model.LinkID) {
	t.Helper()
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	// 0→1 available only during the first 2 minutes.
	b.Link(ms[0], ms[1], 0, 2*time.Minute, 80_000) // 1 MB item: ~105 s
	primary := b.Link(ms[1], ms[2], 0, 24*time.Hour, 80_000)
	b.Link(ms[1], ms[2], 0, 24*time.Hour, 40_000) // backup, slower
	b.Link(ms[2], ms[0], 0, 24*time.Hour, 80_000)
	b.Item(1_000_000, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.High)})
	return b.Build("failover"), primary
}

func TestLinkFailureRecoversFromIntermediateCopy(t *testing.T) {
	sc, primary := failureFixture(t)
	// Fail the primary 1→2 link while the second hop is in flight
	// (first hop ends ~105 s; second hop runs ~105 s more).
	fail := simtime.At(3 * time.Minute)
	out, err := Simulate(sc, cfgC4(), []Event{{At: fail, Kind: LinkFail, Link: primary}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Aborted) == 0 {
		t.Fatal("expected the in-flight transfer to abort")
	}
	if len(out.Satisfied) != 1 {
		t.Fatalf("request should be re-satisfied from the intermediate copy; satisfied=%d", len(out.Satisfied))
	}
	// The recovery transfer must depart the intermediate (machine 1), not
	// the source: the 0→1 window is long gone.
	last := out.Transfers[len(out.Transfers)-1]
	if last.From != 1 || last.To != 2 {
		t.Errorf("recovery hop: got %d→%d, want 1→2", last.From, last.To)
	}
	if last.Start.Before(fail) {
		t.Errorf("recovery starts %v, before the failure at %v", last.Start, fail)
	}
}

func TestLinkFailureWithoutIntermediateCopyLosesRequest(t *testing.T) {
	// Same network but the item is requested straight off the source and
	// the only 0→... wait: fail the 0→1 link itself mid-flight — there is
	// no staged copy anywhere, and the window never reopens.
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	first := b.Link(ms[0], ms[1], 0, 2*time.Minute, 80_000)
	b.Link(ms[1], ms[2], 0, 24*time.Hour, 80_000)
	b.Link(ms[2], ms[0], 0, 24*time.Hour, 80_000)
	b.Item(1_000_000, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.High)})
	sc := b.Build("lost")

	out, err := Simulate(sc, cfgC4(), []Event{{At: simtime.At(time.Minute), Kind: LinkFail, Link: first}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Satisfied) != 0 {
		t.Error("request should be lost: the only copy never left the source")
	}
	if len(out.Aborted) < 1 {
		t.Error("the in-flight first hop should abort")
	}
}

func TestCascadingAbort(t *testing.T) {
	// Fail the first-hop link mid-flight; the downstream second hop that
	// depended on the staged copy must cascade-abort even though its own
	// link is healthy.
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	first := b.Link(ms[0], ms[1], 0, 24*time.Hour, 80_000)
	b.Link(ms[1], ms[2], 0, 24*time.Hour, 80_000)
	b.Link(ms[2], ms[0], 0, 24*time.Hour, 80_000)
	b.Item(1_000_000, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 10*time.Minute, model.High)})
	sc := b.Build("cascade")

	// First hop spans [0, ~105s). Fail at 60 s.
	out, err := Simulate(sc, cfgC4(), []Event{{At: simtime.At(time.Minute), Kind: LinkFail, Link: first}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Aborted) != 2 {
		t.Fatalf("aborted: got %d, want 2 (hop and its downstream)", len(out.Aborted))
	}
	// The link is gone for good, so nothing can be satisfied.
	if len(out.Satisfied) != 0 {
		t.Error("satisfied should be empty after losing the only path")
	}
}

// TestHarmlessFailureLeavesScheduleIntact: failing a link the schedule
// never uses must reproduce the static schedule exactly, transfer for
// transfer, across the replay-and-replan cycle.
func TestHarmlessFailureLeavesScheduleIntact(t *testing.T) {
	sc := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 5, Max: 5}
		p.RequestsPerMachine = gen.IntRange{Min: 6, Max: 6}
		return p
	}(), 9)
	static, err := core.Schedule(sc, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[model.LinkID]bool)
	for _, tr := range static.Transfers {
		used[tr.Link] = true
	}
	var unused model.LinkID = -1
	for id := range sc.Network.Links {
		if !used[model.LinkID(id)] {
			unused = model.LinkID(id)
			break
		}
	}
	if unused < 0 {
		t.Skip("every link used; pick another seed")
	}
	out, err := Simulate(sc, cfgC4(), []Event{{At: simtime.At(time.Minute), Kind: LinkFail, Link: unused}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Aborted) != 0 {
		t.Fatalf("harmless failure aborted %d transfers", len(out.Aborted))
	}
	if len(out.Transfers) != len(static.Transfers) {
		t.Fatalf("transfers: %d vs static %d", len(out.Transfers), len(static.Transfers))
	}
	for i := range out.Transfers {
		if out.Transfers[i] != static.Transfers[i] {
			t.Fatalf("transfer %d differs from static", i)
		}
	}
}

func TestSimultaneousEventsOneEpoch(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	at := simtime.At(5 * time.Minute)
	out, err := Simulate(sc, cfgC4(), []Event{
		{At: at, Kind: ItemRelease, Item: 0},
		{At: at, Kind: LinkFail, Link: 5}, // reverse link, harmless
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Replans != 2 {
		t.Errorf("simultaneous events should share one epoch: %d replans", out.Replans)
	}
	if len(out.Satisfied) != 1 {
		t.Errorf("satisfied %d, want 1", len(out.Satisfied))
	}
}

// TestSimulateParallelismMatchesSerial proves epoch replanning is
// unaffected by the planner's replan parallelism: the whole event-driven
// simulation — releases and failures included — produces the identical
// outcome with one worker and with eight.
func TestSimulateParallelismMatchesSerial(t *testing.T) {
	sc := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 6, Max: 6}
		p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
		return p
	}(), 9)
	events := []Event{
		{At: simtime.At(30 * time.Minute), Kind: ItemRelease, Item: 0},
		{At: simtime.At(2 * time.Hour), Kind: LinkFail, Link: 0},
		{At: simtime.At(4 * time.Hour), Kind: LinkFail, Link: 3},
	}
	serialCfg := cfgC4()
	serialCfg.Parallelism = 1
	parCfg := cfgC4()
	parCfg.Parallelism = 8

	serial, err := Simulate(sc, serialCfg, events)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Simulate(sc, parCfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Transfers) != len(serial.Transfers) {
		t.Fatalf("transfers: parallel %d vs serial %d", len(par.Transfers), len(serial.Transfers))
	}
	for i := range par.Transfers {
		if par.Transfers[i] != serial.Transfers[i] {
			t.Fatalf("transfer %d differs: %+v vs %+v", i, par.Transfers[i], serial.Transfers[i])
		}
	}
	if len(par.Satisfied) != len(serial.Satisfied) {
		t.Fatalf("satisfied: parallel %d vs serial %d", len(par.Satisfied), len(serial.Satisfied))
	}
	for id, at := range serial.Satisfied {
		if got, ok := par.Satisfied[id]; !ok || got != at {
			t.Fatalf("request %v: parallel %v, serial %v", id, got, at)
		}
	}
	if len(par.Aborted) != len(serial.Aborted) {
		t.Fatalf("aborted: parallel %d vs serial %d", len(par.Aborted), len(serial.Aborted))
	}
	if err := validator.Validate(sc, par.Transfers); err != nil {
		t.Fatalf("parallel outcome failed validation: %v", err)
	}
}
