package dynamic

import "testing"

// FuzzEngineIncrementalEquivalence fuzzes the differential harness: the
// scenario seed varies the world (network shape, item sizes, deadlines) and
// the trace seed varies arrival order, scenario growth points, link-failure
// times, and speculative preemption decisions (victim and keep/rollback).
// Every epoch the incremental engine must match the full-replay oracle
// bit-for-bit on transfers, satisfied requests, aborts, and the weighted
// objective, and the final schedule must be validator-clean.
func FuzzEngineIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(2), int64(99))
	f.Add(int64(7), int64(123456))
	f.Add(int64(42), int64(-1))
	f.Fuzz(func(t *testing.T, scSeed, traceSeed int64) {
		runDifferential(t, scSeed, traceSeed)
	})
}
