package dynamic

import (
	"strings"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
)

// TestSetScenarioAppendOnlyContract pins the SetScenario contract: the
// engine's persistent state refers to items and links by ID, so a scenario
// swap must be an append-only extension. Same-pointer swaps (the caller
// appended in place) are trusted; different pointers are verified
// structurally and rejected when they rewrite existing entries.
func TestSetScenarioAppendOnlyContract(t *testing.T) {
	base := testnet.Line(4, 64<<10, 1<<20, time.Hour)

	extend := func(mut func(sc *scenario.Scenario)) *scenario.Scenario {
		next := *base
		next.Items = base.Items[:len(base.Items):len(base.Items)]
		mut(&next)
		return &next
	}

	cases := []struct {
		name    string
		swap    func() *scenario.Scenario
		wantErr string
	}{
		{
			name: "same pointer trusted",
			swap: func() *scenario.Scenario { return base },
		},
		{
			name: "append-only extension accepted",
			swap: func() *scenario.Scenario {
				return extend(func(sc *scenario.Scenario) {
					sc.Items = append(sc.Items, model.Item{
						ID: model.ItemID(len(sc.Items)), SizeBytes: 1 << 10,
						Sources:  []model.Source{{Machine: 0}},
						Requests: []model.Request{{Machine: 1, Deadline: simtime.At(time.Hour)}},
					})
				})
			},
		},
		{
			name:    "nil scenario rejected",
			swap:    func() *scenario.Scenario { return nil },
			wantErr: "nil scenario",
		},
		{
			name: "network swap rejected",
			swap: func() *scenario.Scenario {
				return extend(func(sc *scenario.Scenario) {
					other := *base.Network
					sc.Network = &other
				})
			},
			wantErr: "network replaced",
		},
		{
			name: "shrunk item list rejected",
			swap: func() *scenario.Scenario {
				return extend(func(sc *scenario.Scenario) {
					sc.Items = sc.Items[:len(sc.Items)-1]
				})
			},
			wantErr: "shrank",
		},
		{
			name: "resized existing item rejected",
			swap: func() *scenario.Scenario {
				return extend(func(sc *scenario.Scenario) {
					items := append([]model.Item(nil), sc.Items...)
					items[0].SizeBytes++
					sc.Items = items
				})
			},
			wantErr: "item 0 changed",
		},
		{
			name: "retargeted request rejected",
			swap: func() *scenario.Scenario {
				return extend(func(sc *scenario.Scenario) {
					items := append([]model.Item(nil), sc.Items...)
					items[0].Requests = append([]model.Request(nil), items[0].Requests...)
					items[0].Requests[0].Deadline = items[0].Requests[0].Deadline.Add(time.Minute)
					sc.Items = items
				})
			},
			wantErr: "item 0 changed",
		},
		{
			name: "added source on existing item rejected",
			swap: func() *scenario.Scenario {
				return extend(func(sc *scenario.Scenario) {
					items := append([]model.Item(nil), sc.Items...)
					items[0].Sources = append(append([]model.Source(nil), items[0].Sources...),
						model.Source{Machine: 2})
					sc.Items = items
				})
			},
			wantErr: "item 0 changed",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(base, cfgC4())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.ReplanAt(0); err != nil {
				t.Fatal(err)
			}
			err = eng.SetScenario(tc.swap())
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("SetScenario: %v", err)
				}
				if _, err := eng.ReplanAt(simtime.At(time.Minute)); err != nil {
					t.Fatalf("replan after accepted swap: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("SetScenario error = %v, want substring %q", err, tc.wantErr)
			}
			if eng.Scenario() != base {
				t.Error("rejected swap replaced the engine's scenario")
			}
		})
	}
}

// TestCheckpointIsConstantTime pins the O(1) checkpoint: the snapshot
// aliases the live history's backing array instead of copying it, and stays
// intact across both append-only epochs and copy-on-write DropHistory
// splices.
func TestCheckpointIsConstantTime(t *testing.T) {
	sc := testnet.Line(5, 64<<10, 1<<20, time.Hour)
	eng, err := NewEngine(sc, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	h := eng.Transfers()
	if len(h) == 0 {
		t.Fatal("schedule committed no transfers")
	}
	cp := eng.Checkpoint()
	if len(cp.history) != len(h) || &cp.history[0] != &h[0] {
		t.Fatal("checkpoint copied the history instead of aliasing it")
	}
	before := append(cp.history[:0:0], cp.history...)

	// A splice must not disturb the aliased snapshot.
	dropped := eng.DropHistory(func(state.Transfer) bool { return true })
	if dropped != len(h) {
		t.Fatalf("dropped %d of %d", dropped, len(h))
	}
	for i := range before {
		if cp.history[i] != before[i] {
			t.Fatalf("DropHistory mutated checkpointed transfer %d", i)
		}
	}

	// Rollback + replay must reproduce the pre-speculation schedule.
	if _, err := eng.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	eng.Rollback(cp)
	if _, err := eng.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	got := eng.Transfers()
	if len(got) != len(before) {
		t.Fatalf("replay after rollback: %d transfers, want %d", len(got), len(before))
	}
	for i := range got {
		if got[i] != before[i] {
			t.Fatalf("replay after rollback: transfer %d differs", i)
		}
	}
}
