package dynamic

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/validator"
)

// The differential harness: the incremental engine and the full-replay
// oracle walk the same randomized trace of arrivals, scenario growth, link
// failures, and speculative preemptions, and must agree bit-for-bit on
// transfers, satisfied requests, weighted objective, and aborts after every
// epoch. FuzzEngineIncrementalEquivalence (fuzz_test.go) drives the same
// harness from fuzzed inputs.

// diffOp is one epoch of a randomized trace.
type diffOp struct {
	at      simtime.Instant
	release []model.ItemID
	fail    []model.LinkID
	// grow, when non-nil, is an append-only scenario extension applied
	// before the epoch (the online service's arrival mechanism).
	grow *scenario.Scenario
	// preempt, when non-nil, runs a speculative Checkpoint + DropHistory
	// + ReplanAt cycle; keep decides whether it sticks or rolls back.
	preempt *preemptOp
}

type preemptOp struct {
	victim model.ItemID
	keep   bool
}

// genDiffTrace derives a base scenario (a prefix of full's items) and a
// time-sorted op trace from the rng. Items beyond the base arrive through
// scenario growth; a random subset of base items is withheld at time zero
// and released over time (the simulator's arrival mechanism).
func genDiffTrace(r *rand.Rand, full *scenario.Scenario) (*scenario.Scenario, []model.ItemID, []diffOp) {
	n := len(full.Items)
	g := 1 + n/2 + r.Intn(n/2) // items known before the first growth step
	if g > n {
		g = n
	}
	base := *full
	base.Items = full.Items[:g:g]

	var withheld []model.ItemID
	for i := 0; i < g; i++ {
		if r.Intn(3) == 0 {
			withheld = append(withheld, model.ItemID(i))
		}
	}

	at := simtime.Instant(0)
	step := func() simtime.Instant {
		at = at.Add(time.Duration(1+r.Intn(1800)) * time.Second)
		return at
	}
	var ops []diffOp

	// Releases of the withheld base items, in random group sizes.
	for i := 0; i < len(withheld); {
		k := 1 + r.Intn(3)
		if i+k > len(withheld) {
			k = len(withheld) - i
		}
		ops = append(ops, diffOp{at: step(), release: withheld[i : i+k]})
		i += k
	}
	// One or two growth steps extending toward the full item list.
	if g < n {
		mid := g + (n-g)/2
		if mid > g {
			sc1 := *full
			sc1.Items = full.Items[:mid:mid]
			ops = append(ops, diffOp{at: step(), grow: &sc1})
		}
		ops = append(ops, diffOp{at: step(), grow: full})
	}
	// Up to two link failures.
	for i, k := 0, r.Intn(3); i < k; i++ {
		ops = append(ops, diffOp{at: step(),
			fail: []model.LinkID{model.LinkID(r.Intn(len(full.Network.Links)))}})
	}
	// Up to two speculative preemptions.
	for i, k := 0, r.Intn(3); i < k; i++ {
		ops = append(ops, diffOp{at: step(), preempt: &preemptOp{
			victim: model.ItemID(r.Intn(n)), keep: r.Intn(2) == 0,
		}})
	}

	// step() already made times strictly increasing; shuffle only the
	// payloads so op kinds interleave across the timeline.
	r.Shuffle(len(ops), func(i, j int) { ops[i].at, ops[j].at = ops[j].at, ops[i].at })
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].at < ops[j-1].at; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	// Growth steps must stay in extension order; re-assign the grow
	// payloads along the timeline smallest-first.
	var grows []*scenario.Scenario
	for i := range ops {
		if ops[i].grow != nil {
			grows = append(grows, ops[i].grow)
		}
	}
	sort.Slice(grows, func(a, b int) bool { return len(grows[a].Items) < len(grows[b].Items) })
	gi := 0
	for i := range ops {
		if ops[i].grow != nil {
			ops[i].grow = grows[gi]
			gi++
		}
	}
	return &base, withheld, ops
}

// applyOp drives one engine through one epoch of the trace.
func applyOp(t *testing.T, eng *Engine, op diffOp) *core.Result {
	t.Helper()
	if op.grow != nil {
		if err := eng.SetScenario(op.grow); err != nil {
			t.Fatalf("SetScenario: %v", err)
		}
	}
	if len(op.release) > 0 {
		eng.Release(op.release...)
	}
	for _, l := range op.fail {
		eng.FailLink(l, op.at)
	}
	if op.preempt != nil {
		cp := eng.Checkpoint()
		at, victim := op.at, op.preempt.victim
		eng.DropHistory(func(tr state.Transfer) bool {
			return tr.Item == victim && tr.Start >= at
		})
		if _, err := eng.ReplanAt(op.at); err != nil {
			t.Fatalf("speculative replan at %v: %v", op.at, err)
		}
		if op.preempt.keep {
			return nil // speculation already landed
		}
		eng.Rollback(cp)
	}
	res, err := eng.ReplanAt(op.at)
	if err != nil {
		t.Fatalf("replan at %v: %v", op.at, err)
	}
	return res
}

// weightedObjective is the paper's -E[S] over an engine's satisfied set.
func weightedObjective(sc *scenario.Scenario, sat map[model.RequestID]simtime.Instant, w model.Weights) float64 {
	var sum float64
	for id := range sat {
		sum += w.Of(sc.Request(id).Priority)
	}
	return sum
}

// compareEngines asserts the two engines are in bit-identical scheduling
// states.
func compareEngines(t *testing.T, label string, inc, oracle *Engine) {
	t.Helper()
	it, ot := inc.Transfers(), oracle.Transfers()
	if len(it) != len(ot) {
		t.Fatalf("%s: %d transfers incremental vs %d full-replay", label, len(it), len(ot))
	}
	for i := range it {
		if it[i] != ot[i] {
			t.Fatalf("%s: transfer %d differs:\n  incremental %+v\n  full-replay %+v", label, i, it[i], ot[i])
		}
	}
	is, os := inc.Satisfied(), oracle.Satisfied()
	if len(is) != len(os) {
		t.Fatalf("%s: %d satisfied incremental vs %d full-replay", label, len(is), len(os))
	}
	for id, at := range os {
		if got, ok := is[id]; !ok || got != at {
			t.Fatalf("%s: request %v satisfied at %v in full-replay, %v (%v) in incremental", label, id, at, got, ok)
		}
	}
	ia, oa := inc.Aborted(), oracle.Aborted()
	if len(ia) != len(oa) {
		t.Fatalf("%s: %d aborted incremental vs %d full-replay", label, len(ia), len(oa))
	}
	for i := range ia {
		if ia[i] != oa[i] {
			t.Fatalf("%s: aborted %d differs", label, i)
		}
	}
	sc, w := inc.Scenario(), model.Weights1x10x100
	if iv, ov := weightedObjective(sc, is, w), weightedObjective(sc, os, w); iv != ov {
		t.Fatalf("%s: weighted objective %v incremental vs %v full-replay", label, iv, ov)
	}
}

// runDifferential walks one seeded trace through both engines and compares
// after every epoch; the final schedule must also be validator-clean. It
// reports whether the trace exercised the incremental path at all (a
// degenerate trace may not; deterministic callers assert it, the fuzzer
// cannot).
func runDifferential(t *testing.T, scSeed, traceSeed int64) bool {
	t.Helper()
	r := rand.New(rand.NewSource(traceSeed))
	full := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 6, Max: 8}
		p.RequestsPerMachine = gen.IntRange{Min: 4, Max: 8}
		return p
	}(), scSeed)
	base, withheld, ops := genDiffTrace(r, full)

	inc, err := NewEngine(base, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEngine(base, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	oracle.SetFullReplay(true)

	inc.Withhold(withheld...)
	oracle.Withhold(withheld...)
	if _, err := inc.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	compareEngines(t, "epoch 0", inc, oracle)
	if inc.LastEpoch().Full != true {
		t.Error("first epoch must take the full path")
	}

	sawIncremental := false
	for i, op := range ops {
		applyOp(t, inc, op)
		applyOp(t, oracle, op)
		compareEngines(t, op.at.String(), inc, oracle)
		if le := inc.LastEpoch(); le.At != op.at {
			t.Fatalf("op %d: LastEpoch.At = %v, want %v", i, le.At, op.at)
		} else if !le.Full {
			sawIncremental = true
			if le.ReplayedTransfers != 0 {
				t.Fatalf("op %d: incremental epoch replayed %d transfers", i, le.ReplayedTransfers)
			}
		}
		if !oracle.LastEpoch().Full {
			t.Fatalf("op %d: forced-full oracle took the incremental path", i)
		}
	}
	if err := validator.Validate(inc.Scenario(), inc.Transfers()); err != nil {
		t.Fatalf("incremental schedule invalid: %v", err)
	}
	return sawIncremental
}

func TestEngineIncrementalMatchesFullReplay(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			if !runDifferential(t, seed, seed*1000+7) {
				t.Error("trace never exercised the incremental path")
			}
		})
	}
}

// TestEngineIncrementalPathTaken pins the dispatch rules: ordinary epochs
// after the first are incremental; link failure, DropHistory, and Rollback
// each force exactly the next epoch onto the full-replay path.
func TestEngineIncrementalPathTaken(t *testing.T) {
	sc := gen.MustGenerate(func() gen.Params {
		p := gen.Default()
		p.Machines = gen.IntRange{Min: 6, Max: 6}
		p.RequestsPerMachine = gen.IntRange{Min: 6, Max: 6}
		return p
	}(), 3)
	eng, err := NewEngine(sc, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	mustReplan := func(at simtime.Instant, wantFull bool) {
		t.Helper()
		if _, err := eng.ReplanAt(at); err != nil {
			t.Fatal(err)
		}
		if got := eng.LastEpoch().Full; got != wantFull {
			t.Fatalf("epoch at %v: Full = %v, want %v", at, got, wantFull)
		}
	}
	mustReplan(0, true)                        // first epoch builds the world
	mustReplan(simtime.At(time.Minute), false) // plain floor advance
	mustReplan(simtime.At(time.Minute), false) // same-instant re-epoch

	eng.FailLink(0, simtime.At(2*time.Minute))
	mustReplan(simtime.At(2*time.Minute), true) // failure rewrote the past
	mustReplan(simtime.At(3*time.Minute), false)

	if eng.DropHistory(func(state.Transfer) bool { return false }) != 0 {
		t.Fatal("dropped something with an always-false predicate")
	}
	mustReplan(simtime.At(4*time.Minute), false) // no-op drop stays fast

	cp := eng.Checkpoint()
	if eng.DropHistory(func(state.Transfer) bool { return true }) == 0 {
		t.Fatal("schedule committed no transfers to drop")
	}
	mustReplan(simtime.At(4*time.Minute), true) // splice forces replay
	eng.Rollback(cp)
	mustReplan(simtime.At(4*time.Minute), true) // rollback forces replay
	mustReplan(simtime.At(5*time.Minute), false)

	eng.SetFullReplay(true)
	mustReplan(simtime.At(6*time.Minute), true)
	eng.SetFullReplay(false)
	mustReplan(simtime.At(7*time.Minute), false)
}
