package dynamic

import (
	"fmt"
	"testing"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
)

// determinismEvents builds a mixed event script — staggered releases plus
// a couple of link failures — that exercises every replan path: withheld
// items entering, in-flight aborts, and downstream cascades.
func determinismEvents(sc *scenario.Scenario) []Event {
	evs := []Event{
		{At: simtime.Instant(600), Kind: ItemRelease, Item: model.ItemID(len(sc.Items) / 3)},
		{At: simtime.Instant(1200), Kind: ItemRelease, Item: model.ItemID(2 * len(sc.Items) / 3)},
		{At: simtime.Instant(900), Kind: LinkFail, Link: 0},
	}
	if len(sc.Network.Links) > 1 {
		evs = append(evs, Event{At: simtime.Instant(1500), Kind: LinkFail,
			Link: model.LinkID(len(sc.Network.Links) / 2)})
	}
	return evs
}

func outcomeKey(out *Outcome) string {
	return fmt.Sprintf("%d transfers %d satisfied %d aborted %d replans %v %v",
		len(out.Transfers), len(out.Satisfied), len(out.Aborted), out.Replans,
		out.Transfers, out.Aborted)
}

// TestSimulateDeterministicAcrossParallelism pins the concurrency
// contract for the dynamic simulator: epoch replans executed with a
// serial planner, a 4-worker replan pool, and the paranoid
// recompute-everything ablation must all produce byte-identical
// outcomes. Run under -race this also shakes out data races in the
// parallel replan path across repeated epochs.
func TestSimulateDeterministicAcrossParallelism(t *testing.T) {
	params := gen.Default()
	params.Machines = gen.IntRange{Min: 6, Max: 8}
	params.RequestsPerMachine = gen.IntRange{Min: 4, Max: 6}

	seeds := []int64{1, 7, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"serial", func(cfg *core.Config) { cfg.Parallelism = 1 }},
		{"parallel4", func(cfg *core.Config) { cfg.Parallelism = 4 }},
		{"paranoid-parallel", func(cfg *core.Config) { cfg.Parallelism = 4; cfg.Paranoid = true }},
	}

	for _, seed := range seeds {
		sc := gen.MustGenerate(params, seed)
		events := determinismEvents(sc)

		var want string
		for i, v := range variants {
			cfg := cfgC4()
			v.mutate(&cfg)
			out, err := Simulate(sc, cfg, events)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			got := outcomeKey(out)
			if i == 0 {
				want = got
				if out.Replans < 2 {
					t.Errorf("seed %d: only %d replans; event script did not trigger epochs", seed, out.Replans)
				}
				continue
			}
			if got != want {
				t.Errorf("seed %d: %s outcome diverges from serial:\n  serial: %s\n  %s: %s",
					seed, v.name, want, v.name, got)
			}
		}
	}
}

// TestSimulateObsCountsEpochs checks the dynamic instrumentation:
// dynamic.replans_total matches Outcome.Replans, the aborted counter
// matches len(Outcome.Aborted), and one EvEpochReplan event is emitted
// per epoch with abort counts that sum to the same total.
func TestSimulateObsCountsEpochs(t *testing.T) {
	params := gen.Default()
	params.Machines = gen.IntRange{Min: 6, Max: 8}
	params.RequestsPerMachine = gen.IntRange{Min: 4, Max: 6}
	sc := gen.MustGenerate(params, 7)

	mem := &obs.MemorySink{}
	cfg := cfgC4()
	cfg.Obs = obs.NewTraced(mem)
	out, err := Simulate(sc, cfg, determinismEvents(sc))
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Snapshot()
	if got := snap.Counters["dynamic.replans_total"]; got != int64(out.Replans) {
		t.Errorf("dynamic.replans_total = %d, want %d", got, out.Replans)
	}
	if got := snap.Counters["dynamic.aborted_transfers_total"]; got != int64(len(out.Aborted)) {
		t.Errorf("dynamic.aborted_transfers_total = %d, want %d", got, len(out.Aborted))
	}
	epochs, abortSum := 0, 0
	for _, e := range mem.Events() {
		if e.Kind == obs.EvEpochReplan {
			epochs++
			abortSum += e.N
		}
	}
	if epochs != out.Replans {
		t.Errorf("%d EvEpochReplan events, want %d", epochs, out.Replans)
	}
	if abortSum != len(out.Aborted) {
		t.Errorf("epoch abort counts sum to %d, want %d", abortSum, len(out.Aborted))
	}
}
