package dynamic

import (
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
	"datastaging/internal/validator"
)

// TestCheckEventRejections covers every rejection path of checkEvent, one
// table row per reason.
func TestCheckEventRejections(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour) // 1 item, links 0..len-1

	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown item (too large)", Event{Kind: ItemRelease, Item: model.ItemID(len(sc.Items))}, "unknown item"},
		{"unknown item (negative)", Event{Kind: ItemRelease, Item: -1}, "unknown item"},
		{"unknown link (too large)", Event{Kind: LinkFail, Link: model.LinkID(len(sc.Network.Links))}, "unknown link"},
		{"unknown link (negative)", Event{Kind: LinkFail, Link: -2}, "unknown link"},
		{"unknown event kind", Event{Kind: EventKind(42)}, "unknown event kind"},
		{"zero event kind", Event{}, "unknown event kind"},
		{"event before epoch (release)", Event{Kind: ItemRelease, Item: 0, At: -1}, "negative event time"},
		{"event before epoch (failure)", Event{Kind: LinkFail, Link: 0, At: simtime.At(-time.Minute)}, "negative event time"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkEvent(sc, tc.ev)
			if err == nil {
				t.Fatalf("event %+v accepted", tc.ev)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The same rejection must surface through Simulate, wrapped with
			// the event index.
			if _, serr := Simulate(sc, cfgC4(), []Event{tc.ev}); serr == nil {
				t.Fatalf("Simulate accepted event %+v", tc.ev)
			} else if !strings.Contains(serr.Error(), "event 0") {
				t.Fatalf("Simulate error %q does not name the offending event", serr)
			}
		})
	}

	// Sanity: a well-formed event passes.
	if err := checkEvent(sc, Event{Kind: ItemRelease, Item: 0, At: simtime.At(time.Minute)}); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
}

// TestEngineMatchesSimulate drives an Engine by hand through the same event
// sequence Simulate would derive and checks both land on the identical
// outcome — the refactor's contract that Simulate is a thin driver.
func TestEngineMatchesSimulate(t *testing.T) {
	sc := testnet.Line(4, 1024, 8000, time.Hour)
	release := simtime.At(10 * time.Minute)
	events := []Event{{At: release, Kind: ItemRelease, Item: 0}}

	out, err := Simulate(sc, cfgC4(), events)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(sc, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	eng.Withhold(0)
	if _, err := eng.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	eng.Release(0)
	if _, err := eng.ReplanAt(release); err != nil {
		t.Fatal(err)
	}

	if len(eng.Transfers()) != len(out.Transfers) {
		t.Fatalf("transfers: engine %d vs simulate %d", len(eng.Transfers()), len(out.Transfers))
	}
	for i := range out.Transfers {
		if eng.Transfers()[i] != out.Transfers[i] {
			t.Fatalf("transfer %d differs", i)
		}
	}
	if eng.Replans() != out.Replans {
		t.Errorf("replans: engine %d vs simulate %d", eng.Replans(), out.Replans)
	}
	if len(eng.Satisfied()) != len(out.Satisfied) {
		t.Errorf("satisfied: engine %d vs simulate %d", len(eng.Satisfied()), len(out.Satisfied))
	}
}

// TestEngineRejectsBadConfig: the constructor validates like Simulate does.
func TestEngineRejectsBadConfig(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	if _, err := NewEngine(sc, core.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestEngineDropHistoryAndRollback: dropping a committed transfer reopens
// its request on the next replan; rolling the checkpoint back and
// replanning reproduces the original schedule bit for bit.
func TestEngineDropHistoryAndRollback(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	eng, err := NewEngine(sc, cfgC4())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	orig := append([]state.Transfer(nil), eng.Transfers()...)
	if len(orig) == 0 {
		t.Fatal("expected a committed schedule")
	}

	cp := eng.Checkpoint()
	// Drop everything: the floor is still 0, so the replan can rebuild the
	// same schedule from scratch.
	if n := eng.DropHistory(func(state.Transfer) bool { return true }); n != len(orig) {
		t.Fatalf("dropped %d, want %d", n, len(orig))
	}
	if _, err := eng.ReplanAt(0); err != nil {
		t.Fatal(err)
	}

	eng.Rollback(cp)
	if _, err := eng.ReplanAt(0); err != nil {
		t.Fatal(err)
	}
	if len(eng.Transfers()) != len(orig) {
		t.Fatalf("after rollback: %d transfers, want %d", len(eng.Transfers()), len(orig))
	}
	for i := range orig {
		if eng.Transfers()[i] != orig[i] {
			t.Fatalf("transfer %d differs after rollback", i)
		}
	}
	if err := validator.Validate(sc, eng.Transfers()); err != nil {
		t.Fatalf("rolled-back schedule invalid: %v", err)
	}
}
