// Package dynamic extends the static data staging scheduler toward the
// paper's stated future work (§1, §6): ad-hoc data requests that arrive
// over time and communication links that fail. It is an event-driven
// re-planning simulator built on the same heuristics:
//
//   - At time 0 the scheduler plans for every request known at time 0.
//   - When new requests arrive (an ItemRelease event), the scheduler
//     re-plans with the already-committed schedule locked in — exactly the
//     paper's rule that "the scheduled transfers remain in the system"
//     (§4.5) — and new transfers may only start at or after the event.
//   - When a virtual link fails (a LinkFail event), the transfer in flight
//     on it is lost along with everything causally downstream of the lost
//     copy; the surviving schedule is replayed against the degraded
//     network and the scheduler re-plans the rest. Requests whose
//     deliveries were lost become open again.
//
// Each epoch replan is one core.ScheduleState call and inherits the
// Config's Parallelism: invalidated shortest-path forests are recomputed
// on a worker pool, so re-planning latency — the quantity that bounds how
// fast the simulator can react to events — scales with cores while the
// resulting schedule stays byte-identical (see DESIGN.md, "Concurrency
// model").
//
// Link failures are where the paper's garbage-collection policy (§4.4)
// earns its keep: copies retained at intermediate machines for γ after an
// item's latest deadline are alternative sources for re-delivery, which is
// exactly the fault-tolerance rationale the paper gives for keeping them.
// TestGammaRetentionEnablesRecovery demonstrates the effect.
package dynamic

import (
	"fmt"
	"sort"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// EventKind discriminates dynamic events.
type EventKind int

// The two event kinds.
const (
	// ItemRelease makes an item's requests known to the scheduler. Items
	// never mentioned in any ItemRelease event are known at time 0.
	ItemRelease EventKind = iota + 1
	// LinkFail takes a virtual link down permanently at the event time.
	LinkFail
)

// Event is one dynamic occurrence.
type Event struct {
	At   simtime.Instant
	Kind EventKind
	// Item is the released item (ItemRelease).
	Item model.ItemID
	// Link is the failed link (LinkFail).
	Link model.LinkID
}

// Outcome is the result of a dynamic simulation.
type Outcome struct {
	// Transfers is the surviving committed schedule.
	Transfers []state.Transfer
	// Satisfied maps satisfied requests to delivery instants, after all
	// failures.
	Satisfied map[model.RequestID]simtime.Instant
	// Aborted lists transfers lost to link failures (in flight or
	// causally downstream of a lost copy).
	Aborted []state.Transfer
	// Replans counts scheduler invocations (one at time 0 plus one per
	// event epoch).
	Replans int
	// Elapsed is total scheduling time across re-plans.
	Elapsed time.Duration
}

// Simulate runs the event-driven re-planning loop. Events may be given in
// any order; simultaneous events are applied together (releases before
// failures at the same instant would be arbitrary, so all events of one
// epoch apply before the epoch's re-plan). It is a thin driver over Engine:
// the admission service (internal/serve) walks the very same epoch code
// path online.
func Simulate(sc *scenario.Scenario, cfg core.Config, events []Event) (*Outcome, error) {
	eng, err := NewEngine(sc, cfg)
	if err != nil {
		return nil, err
	}
	for i, ev := range events {
		if err := checkEvent(sc, ev); err != nil {
			return nil, fmt.Errorf("dynamic: event %d: %w", i, err)
		}
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })

	for _, ev := range evs {
		if ev.Kind == ItemRelease && ev.At > 0 {
			eng.Withhold(ev.Item)
		}
	}

	begin := time.Now()
	// Epoch 0: schedule everything known at time zero.
	if _, err := eng.ReplanAt(0); err != nil {
		return nil, err
	}

	for i := 0; i < len(evs); {
		at := evs[i].At
		for ; i < len(evs) && evs[i].At == at; i++ {
			switch evs[i].Kind {
			case ItemRelease:
				eng.Release(evs[i].Item)
			case LinkFail:
				eng.FailLink(evs[i].Link, at)
			}
		}
		if _, err := eng.ReplanAt(at); err != nil {
			return nil, err
		}
	}

	return &Outcome{
		Transfers: eng.Transfers(),
		Satisfied: eng.Satisfied(),
		Aborted:   eng.Aborted(),
		Replans:   eng.Replans(),
		Elapsed:   time.Since(begin),
	}, nil
}

func checkEvent(sc *scenario.Scenario, ev Event) error {
	switch ev.Kind {
	case ItemRelease:
		if int(ev.Item) < 0 || int(ev.Item) >= len(sc.Items) {
			return fmt.Errorf("unknown item %d", ev.Item)
		}
	case LinkFail:
		if int(ev.Link) < 0 || int(ev.Link) >= len(sc.Network.Links) {
			return fmt.Errorf("unknown link %d", ev.Link)
		}
	default:
		return fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	if ev.At < 0 {
		return fmt.Errorf("negative event time %v", ev.At)
	}
	return nil
}

// observeEpoch records one completed epoch replan: a counter per replan
// (split by incremental vs full-replay path), a counter for transfers
// newly aborted at this epoch, one for transfers the epoch had to replay
// (always zero on the incremental path), a gauge holding the current epoch
// instant (so a live /metrics scrape shows how far the simulation has
// advanced), and an EvEpochReplan event carrying the epoch instant and the
// abort count. A nil Obs makes every call a no-op.
func observeEpoch(o *obs.Obs, es EpochStats) {
	if o == nil {
		return
	}
	o.Counter("dynamic.replans_total").Inc()
	if es.Full {
		o.Counter("dynamic.replans_full_total").Inc()
	} else {
		o.Counter("dynamic.replans_incremental_total").Inc()
	}
	o.Counter("dynamic.replayed_transfers_total").Add(int64(es.ReplayedTransfers))
	o.Counter("dynamic.aborted_transfers_total").Add(int64(es.Aborted))
	o.Gauge("dynamic.current_epoch_seconds").Set(es.At.Seconds())
	if tr := o.Trace(); tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.EvEpochReplan, At: int64(es.At), N: es.Aborted})
	}
}
