// Package cliconf holds the flag-value parsing shared by the command-line
// tools: scheduler configuration (-heuristic/-criterion/-eu), priority
// weights (-weights), and scenario loading (-in/-seed). The flag spellings
// are part of the CLI contract, so they live in one place instead of one
// copy per command.
package cliconf

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
)

// LoadScenario reads a scenario JSON file, or generates the paper's default
// parameterization from seed when path is empty.
func LoadScenario(path string, seed int64) (*scenario.Scenario, error) {
	if path == "" {
		return gen.Generate(gen.Default(), seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scenario.Decode(f)
}

// BuildConfig assembles a validated core.Config from the CLI spellings:
// h one of partial/full_one/full_all, c one of C1..C5 (case-insensitive),
// eu a log10 ratio or inf/-inf.
func BuildConfig(h, c, eu string, w model.Weights) (core.Config, error) {
	cfg := core.Config{Weights: w}
	switch h {
	case "partial":
		cfg.Heuristic = core.PartialPath
	case "full_one":
		cfg.Heuristic = core.FullPathOneDest
	case "full_all":
		cfg.Heuristic = core.FullPathAllDests
	default:
		return cfg, fmt.Errorf("unknown -heuristic %q", h)
	}
	switch strings.ToUpper(c) {
	case "C1":
		cfg.Criterion = core.C1
	case "C2":
		cfg.Criterion = core.C2
	case "C3":
		cfg.Criterion = core.C3
	case "C4":
		cfg.Criterion = core.C4
	case "C5":
		cfg.Criterion = core.C5
	default:
		return cfg, fmt.Errorf("unknown -criterion %q", c)
	}
	switch eu {
	case "inf":
		cfg.EU = core.EUPriorityOnly
	case "-inf":
		cfg.EU = core.EUUrgencyOnly
	default:
		l, err := strconv.ParseFloat(eu, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad -eu %q: %w", eu, err)
		}
		cfg.EU = core.EUFromLog10(l)
	}
	return cfg, cfg.Validate()
}

// ParseWeights parses a -weights flag: the paper's named ladders, or any
// comma-separated per-priority weight list.
func ParseWeights(s string) (model.Weights, error) {
	switch s {
	case "1,10,100":
		return model.Weights1x10x100, nil
	case "1,5,10":
		return model.Weights1x5x10, nil
	}
	parts := strings.Split(s, ",")
	w := make(model.Weights, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -weights %q: %w", s, err)
		}
		w = append(w, v)
	}
	return w, nil
}
