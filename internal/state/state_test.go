package state

import (
	"strings"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
)

// chainScenario: 0→1→2 with generous links, one 1 KB item at machine 0
// requested by machine 2 (deadline 30 m, high) — 1 KB at 8 kbit/s is a
// 1-second hop.
func chainScenario() (*State, model.ItemID) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<20)
	b.Link(ms[0], ms[1], 0, 2*time.Hour, 8000)
	b.Link(ms[1], ms[2], 0, 2*time.Hour, 8000)
	b.Link(ms[2], ms[0], 0, 2*time.Hour, 8000)
	item := b.Item(1024,
		[]model.Source{testnet.Src(ms[0], time.Minute)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.High)})
	return New(b.Build("chain")), item
}

func TestNewStateInitialHolders(t *testing.T) {
	st, item := chainScenario()
	if !st.Holds(item, 0) {
		t.Error("source machine should hold the item")
	}
	if st.Holds(item, 1) || st.Holds(item, 2) {
		t.Error("non-source machines should not hold the item")
	}
	h, ok := st.Holder(item, 0)
	if !ok || h.Avail != simtime.At(time.Minute) || h.End != simtime.Forever {
		t.Errorf("source holder: got %+v", h)
	}
	if len(st.Holders(item)) != 1 {
		t.Errorf("Holders: got %d, want 1", len(st.Holders(item)))
	}
	if st.IsDestination(item, 0) || !st.IsDestination(item, 2) {
		t.Error("IsDestination wrong")
	}
	if len(st.Transfers()) != 0 || len(st.Satisfied()) != 0 {
		t.Error("fresh state should have no transfers or satisfied requests")
	}
}

func TestHoldEndAndInterval(t *testing.T) {
	st, item := chainScenario()
	// Intermediate machine 1: held until latest deadline (30m) + γ (6m).
	wantGC := simtime.At(36 * time.Minute)
	if got := st.HoldEnd(item, 1); got != wantGC {
		t.Errorf("HoldEnd(intermediate): got %v, want %v", got, wantGC)
	}
	if got := st.HoldEnd(item, 2); got != simtime.Forever {
		t.Errorf("HoldEnd(destination): got %v, want Forever", got)
	}
	iv := st.HoldInterval(item, 1, simtime.At(10*time.Minute))
	if iv.Start != simtime.At(10*time.Minute) || iv.End != wantGC {
		t.Errorf("HoldInterval: got %v", iv)
	}
}

func TestCommitHappyPath(t *testing.T) {
	st, item := chainScenario()
	tr, err := st.Commit(item, 0, simtime.At(time.Minute))
	if err != nil {
		t.Fatalf("Commit hop 1: %v", err)
	}
	if tr.Duration != 1024*time.Millisecond { // 8192 bits at 8 kbit/s
		t.Errorf("Duration: got %v, want 1.024s", tr.Duration)
	}
	if tr.Arrival != simtime.At(time.Minute+1024*time.Millisecond) {
		t.Errorf("Arrival: got %v", tr.Arrival)
	}
	if !st.Holds(item, 1) {
		t.Error("machine 1 should hold the item after the hop")
	}
	h, _ := st.Holder(item, 1)
	if h.End != simtime.At(36*time.Minute) {
		t.Errorf("intermediate copy end: got %v, want 36m", h.End)
	}
	// Capacity at machine 1 reserved during the hold.
	if got := st.Capacity(1).AvailableAt(simtime.At(10 * time.Minute)); got != 1<<20-1024 {
		t.Errorf("capacity during hold: got %d", got)
	}
	if got := st.Capacity(1).AvailableAt(simtime.At(40 * time.Minute)); got != 1<<20 {
		t.Errorf("capacity after gc: got %d", got)
	}

	// Second hop reaches the destination and satisfies the request.
	tr2, err := st.Commit(item, 1, tr.Arrival)
	if err != nil {
		t.Fatalf("Commit hop 2: %v", err)
	}
	id := model.RequestID{Item: item, Index: 0}
	if !st.IsSatisfied(id) {
		t.Error("request should be satisfied")
	}
	if got := st.Satisfied()[id]; got != tr2.Arrival {
		t.Errorf("satisfied arrival: got %v, want %v", got, tr2.Arrival)
	}
	h2, _ := st.Holder(item, 2)
	if h2.End != simtime.Forever {
		t.Errorf("destination copy end: got %v, want Forever", h2.End)
	}
	if len(st.Transfers()) != 2 {
		t.Errorf("Transfers: got %d, want 2", len(st.Transfers()))
	}
}

func TestCommitLateArrivalDoesNotSatisfy(t *testing.T) {
	st, item := chainScenario()
	// Start the final hop after the 30-minute deadline.
	if _, err := st.Commit(item, 0, simtime.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(item, 1, simtime.At(31*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if st.IsSatisfied(model.RequestID{Item: item, Index: 0}) {
		t.Error("late delivery must not satisfy the request")
	}
	// The copy still lands at the destination and is held forever.
	if h, ok := st.Holder(item, 2); !ok || h.End != simtime.Forever {
		t.Errorf("late destination copy: %+v ok=%v", h, ok)
	}
}

func TestCommitRejections(t *testing.T) {
	st, item := chainScenario()
	for _, tc := range []struct {
		name   string
		link   model.LinkID
		start  time.Duration
		substr string
	}{
		{"sender lacks copy", 1, 2 * time.Minute, "does not hold"},
		{"before copy available", 0, 30 * time.Second, "before copy"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := st.Commit(item, tc.link, simtime.At(tc.start))
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("got %v, want error containing %q", err, tc.substr)
			}
		})
	}
	// Receiver already holds.
	if _, err := st.Commit(item, 0, simtime.At(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(item, 0, simtime.At(10*time.Minute)); err == nil ||
		!strings.Contains(err.Error(), "already holds") {
		t.Errorf("re-delivery: got %v", err)
	}
	// Link busy: overlapping slot on link 1 after committing one.
	if _, err := st.Commit(item, 1, simtime.At(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestCommitLinkBusyAndWindow(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<20)
	// Two items at 0; a single narrow link 0→1 (window fits one transfer).
	b.Link(ms[0], ms[1], 0, 2*time.Second, 8000) // 1 KB takes ~1.02s at 8kbps
	b.Link(ms[1], ms[2], 0, time.Hour, 8000)
	b.Link(ms[2], ms[0], 0, time.Hour, 8000)
	itemA := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	itemB := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.Low)})
	st := New(b.Build("narrow"))

	if _, err := st.Commit(itemA, 0, 0); err != nil {
		t.Fatalf("first transfer: %v", err)
	}
	if _, err := st.Commit(itemB, 0, 0); err == nil {
		t.Error("overlapping slot on a serial link must be rejected")
	}
	if _, err := st.Commit(itemB, 0, simtime.At(3*time.Second)); err == nil {
		t.Error("transfer outside the link window must be rejected")
	}
}

func TestCommitCapacityExhaustion(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1500) // machine capacity fits one 1 KB item only
	b.Link(ms[0], ms[1], 0, time.Hour, 80000)
	b.Link(ms[1], ms[2], 0, time.Hour, 80000)
	b.Link(ms[2], ms[0], 0, time.Hour, 80000)
	itemA := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.High)})
	itemB := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.Low)})
	st := New(b.Build("tight"))

	if _, err := st.Commit(itemA, 0, 0); err != nil {
		t.Fatalf("itemA hop: %v", err)
	}
	// itemB cannot stage at machine 1 while itemA's copy occupies it.
	if _, err := st.Commit(itemB, 0, simtime.At(time.Minute)); err == nil ||
		!strings.Contains(err.Error(), "lacks") {
		t.Error("capacity exhaustion must reject the transfer")
	}
	// After itemA's copy is garbage collected (30m deadline + 6m γ), itemB fits.
	if _, err := st.Commit(itemB, 0, simtime.At(37*time.Minute)); err != nil {
		t.Errorf("post-gc transfer should fit: %v", err)
	}
}

func TestTransferOutlivingIntermediateCopyRejected(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<20)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000)
	// Slow onward link: 1 KB at 8 kbit/s = 1.024s, fine; but we start the
	// onward transfer just before garbage collection.
	b.Link(ms[1], ms[2], 0, 24*time.Hour, 8)
	b.Link(ms[2], ms[0], 0, 24*time.Hour, 8000)
	item := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 10*time.Minute, model.High)})
	st := New(b.Build("gc-race"))

	if _, err := st.Commit(item, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Copy at machine 1 lives until 16m. A transfer at 8 kbit/s... the slow
	// link at 8 bit/s needs 1024s ≈ 17m > remaining hold time.
	_, err := st.Commit(item, 1, simtime.At(2*time.Minute))
	if err == nil || !strings.Contains(err.Error(), "outlives") {
		t.Errorf("transfer outliving source copy: got %v", err)
	}
}

func TestFloorBlocksPastTransfers(t *testing.T) {
	st, item := chainScenario()
	if st.Floor() != 0 {
		t.Errorf("fresh floor: %v", st.Floor())
	}
	st.SetFloor(simtime.At(10 * time.Minute))
	if _, err := st.Commit(item, 0, simtime.At(5*time.Minute)); err == nil ||
		!strings.Contains(err.Error(), "floor") {
		t.Errorf("pre-floor commit: got %v", err)
	}
	if _, err := st.Commit(item, 0, simtime.At(10*time.Minute)); err != nil {
		t.Errorf("at-floor commit: %v", err)
	}
}

func TestWithholdAndRelease(t *testing.T) {
	st, item := chainScenario()
	if !st.IsReleased(item) {
		t.Error("items are released by default")
	}
	st.WithholdItem(item)
	if st.IsReleased(item) {
		t.Error("withheld item reported released")
	}
	st.ReleaseItem(item)
	if !st.IsReleased(item) {
		t.Error("released item reported withheld")
	}
}

func TestFailLink(t *testing.T) {
	st, item := chainScenario()
	if _, ok := st.Outage(0); ok {
		t.Error("fresh link reports an outage")
	}
	st.FailLink(0, simtime.At(5*time.Minute))
	if at, ok := st.Outage(0); !ok || at != simtime.At(5*time.Minute) {
		t.Errorf("Outage: got (%v, %v)", at, ok)
	}
	// A later failure time does not overwrite an earlier one.
	st.FailLink(0, simtime.At(10*time.Minute))
	if at, _ := st.Outage(0); at != simtime.At(5*time.Minute) {
		t.Errorf("earlier outage overwritten: %v", at)
	}
	// Transfers overlapping the outage are rejected; earlier ones fit.
	if _, err := st.Commit(item, 0, simtime.At(6*time.Minute)); err == nil {
		t.Error("commit into failed link accepted")
	}
	if _, err := st.Commit(item, 0, simtime.At(time.Minute)); err != nil {
		t.Errorf("pre-failure commit: %v", err)
	}
	if st.LinkTimeline(0) == nil {
		t.Error("LinkTimeline accessor broken")
	}
}

func TestPhysGroups(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<20)
	w1 := simtime.Interval{Start: simtime.At(time.Hour), End: simtime.At(2 * time.Hour)}
	w2 := simtime.Interval{Start: 0, End: simtime.At(30 * time.Minute)}
	b.LinkWindows(ms[0], ms[1], 8000, w1, w2) // one physical link, two windows
	b.Link(ms[0], ms[1], 0, time.Hour, 16000) // second physical link
	b.Link(ms[1], ms[0], 0, time.Hour, 8000)
	b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	st := New(b.Build("phys"))

	groups := st.PhysGroups(0)
	if len(groups) != 2 {
		t.Fatalf("PhysGroups(0): got %d groups, want 2", len(groups))
	}
	if len(groups[0].Links) != 2 {
		t.Fatalf("first group: got %d links, want 2", len(groups[0].Links))
	}
	// Windows within a group sorted by start.
	net := st.Scenario().Network
	if net.Link(groups[0].Links[0]).Window.Start != 0 {
		t.Error("group links not sorted by window start")
	}
	if got := st.PhysGroups(1); len(got) != 1 {
		t.Errorf("PhysGroups(1): got %d groups", len(got))
	}
}
