// Package state holds the mutable resource picture the scheduling
// heuristics work against: per-virtual-link occupancy, per-machine capacity
// profiles, the set of machines currently holding a copy of each item, and
// the transfers committed so far. The heuristics in internal/core decide
// *what* to transfer; this package enforces *whether it fits* and keeps the
// books.
package state

import (
	"fmt"
	"sort"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/resource"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
)

// Holder records one copy of an item: the machine that has it, when it
// becomes available there, and when the copy disappears (simtime.Forever for
// initial sources and final destinations, the item's garbage-collection
// instant for intermediates — paper §4.4, §5.3).
type Holder struct {
	Machine model.MachineID
	Avail   simtime.Instant
	End     simtime.Instant
}

// Transfer is one committed communication step: item moved across one
// virtual link.
type Transfer struct {
	Item     model.ItemID
	Link     model.LinkID
	From     model.MachineID
	To       model.MachineID
	Start    simtime.Instant
	Duration time.Duration
	Arrival  simtime.Instant
}

// State is the live resource bookkeeping for one scheduling run.
type State struct {
	sc    *scenario.Scenario
	links []*resource.LinkTimeline
	caps  []*resource.Capacity

	// sendPort and recvPort serialize per-machine transfers when the
	// scenario enables SerialTransfers (§3 future work); nil otherwise.
	sendPort []*resource.LinkTimeline
	recvPort []*resource.LinkTimeline

	// holders[i] lists the copies of item i in the order they appeared
	// (sources first, then staged copies in commit order). Membership tests
	// scan the slice: a holder list is bounded by the item's staging route,
	// a handful of machines, so a linear scan beats a per-item map — and,
	// unlike a map, costs zero allocations to set up, which matters because
	// the online service initializes items on the admission path.
	holders [][]Holder

	transfers []Transfer
	// trOf[i] indexes transfers by item: the positions of item i's
	// transfers in commit order, so TransfersFor is O(route length) instead
	// of a scan over the whole committed history.
	trOf      [][]int32
	satisfied map[model.RequestID]simtime.Instant
	// satLog records satisfied requests in satisfaction order, append-only
	// for the lifetime of the state. Incremental consumers (the serve
	// layer's weighted-value tracker) remember how much of the log they
	// have folded in and walk only the new suffix each epoch.
	satLog []model.RequestID

	// floor is the earliest instant new transfers may start; the dynamic
	// simulator advances it to "now" so re-planning cannot rewrite the
	// past. Zero (the epoch) for static scheduling.
	floor simtime.Instant
	// unreleased marks items the scheduler must not yet see (dynamic
	// ad-hoc requests). nil for static scheduling, where every item is
	// known at time zero.
	unreleased map[model.ItemID]bool
	// outages records virtual links forced down from an instant onward
	// (dynamic link failures).
	outages map[model.LinkID]simtime.Instant

	// physOut[u] groups machine u's outgoing virtual links by physical
	// link, each group sorted by window start; the shortest-path relaxation
	// walks these groups with early exit.
	physOut [][]PhysGroup

	// Slot-query metrics, wired by SetObs (nil — disabled — otherwise;
	// obs instruments are nil-safe and atomic, so the hot path calls them
	// unconditionally and concurrent forest recomputations may share
	// them).
	mSlotQuery, mSlotFast *obs.Counter
}

// PhysGroup is the virtual links of one physical link u→v, sorted by window
// start. All virtual links of one physical link share bandwidth and latency
// by construction, but the scheduler does not rely on that.
type PhysGroup struct {
	To    model.MachineID
	Links []model.LinkID
}

// New builds the initial state for a scenario: idle links, full capacity,
// and each item held by its initial sources.
func New(sc *scenario.Scenario) *State {
	st := &State{
		sc:        sc,
		caps:      make([]*resource.Capacity, sc.Network.NumMachines()),
		holders:   make([][]Holder, len(sc.Items)),
		trOf:      make([][]int32, len(sc.Items)),
		satisfied: make(map[model.RequestID]simtime.Instant),
	}
	windows := make([]simtime.Interval, len(sc.Network.Links))
	for i, l := range sc.Network.Links {
		windows[i] = l.Window
	}
	st.links = resource.NewLinkTimelines(windows)
	for i, m := range sc.Network.Machines {
		st.caps[i] = resource.NewCapacity(m.CapacityBytes)
	}
	if sc.SerialTransfers {
		always := simtime.Interval{Start: 0, End: simtime.Forever}
		m := sc.Network.NumMachines()
		pw := make([]simtime.Interval, 2*m)
		for i := range pw {
			pw[i] = always
		}
		ports := resource.NewLinkTimelines(pw)
		st.sendPort = ports[:m]
		st.recvPort = ports[m:]
	}
	for i := range sc.Items {
		st.initItem(i)
	}
	st.buildPhysOut()
	return st
}

// initItem sets up the per-item bookkeeping (the initial source copies) for
// item i of the scenario.
func (st *State) initItem(i int) {
	it := &st.sc.Items[i]
	// Pre-size for the copies a typical schedule adds: the sources plus a
	// few committed hops. Keeps the per-commit bookkeeping off the
	// grow-reallocate path for the common item.
	st.holders[i] = make([]Holder, 0, len(it.Sources)+4)
	st.trOf[i] = make([]int32, 0, 4)
	for _, src := range it.Sources {
		st.addHolder(model.ItemID(i), Holder{
			Machine: src.Machine,
			Avail:   src.Available,
			End:     simtime.Forever,
		})
	}
}

// NumTrackedItems returns how many scenario items the state currently keeps
// books for. It can lag len(Scenario().Items) when the scenario has grown
// (the online service appends admitted items); GrowItems catches up.
func (st *State) NumTrackedItems() int { return len(st.holders) }

// GrowItems extends the per-item bookkeeping to cover items appended to the
// scenario since the state was built (or last grown): new items gain their
// destination sets and initial source copies, exactly as New would have
// created them. Existing bookkeeping is untouched, so a live state can
// follow an append-only growing scenario without a rebuild. Returns the
// number of items added.
func (st *State) GrowItems() int {
	n := len(st.sc.Items)
	added := 0
	for i := len(st.holders); i < n; i++ {
		st.holders = append(st.holders, nil)
		st.trOf = append(st.trOf, nil)
		st.initItem(i)
		added++
	}
	return added
}

func (st *State) buildPhysOut() {
	net := st.sc.Network
	st.physOut = make([][]PhysGroup, net.NumMachines())
	for u := 0; u < net.NumMachines(); u++ {
		byPhys := make(map[int][]model.LinkID)
		var order []int
		for _, id := range net.Outgoing(model.MachineID(u)) {
			p := net.Link(id).Physical
			if _, seen := byPhys[p]; !seen {
				order = append(order, p)
			}
			byPhys[p] = append(byPhys[p], id)
		}
		sort.Ints(order)
		groups := make([]PhysGroup, 0, len(order))
		for _, p := range order {
			ids := byPhys[p]
			sort.Slice(ids, func(a, b int) bool {
				return net.Link(ids[a]).Window.Start < net.Link(ids[b]).Window.Start
			})
			groups = append(groups, PhysGroup{To: net.Link(ids[0]).To, Links: ids})
		}
		st.physOut[u] = groups
	}
}

// Scenario returns the immutable problem instance.
func (st *State) Scenario() *scenario.Scenario { return st.sc }

// AdoptScenario switches the state to a new scenario value that extends the
// current one append-only: identical network, existing items unchanged, new
// items only appended (callers — dynamic.Engine.SetScenario — validate
// this). Existing bookkeeping stays valid because it is keyed by item and
// machine IDs, which the extension preserves; the appended items become
// tracked on the next GrowItems.
func (st *State) AdoptScenario(sc *scenario.Scenario) { st.sc = sc }

// LinkTimeline returns the occupancy timeline of one virtual link. Callers
// must not commit to it directly; use Commit.
func (st *State) LinkTimeline(id model.LinkID) *resource.LinkTimeline { return st.links[id] }

// SerialTransfers reports whether per-machine port serialization is on.
func (st *State) SerialTransfers() bool { return st.sendPort != nil }

// SendPortTimeline returns the occupancy timeline of one machine's send
// port, or nil when the scenario does not serialize transfers. Callers
// must not commit to it directly; use Commit.
func (st *State) SendPortTimeline(m model.MachineID) *resource.LinkTimeline {
	if st.sendPort == nil {
		return nil
	}
	return st.sendPort[m]
}

// RecvPortTimeline is SendPortTimeline for the receive port.
func (st *State) RecvPortTimeline(m model.MachineID) *resource.LinkTimeline {
	if st.recvPort == nil {
		return nil
	}
	return st.recvPort[m]
}

// SetObs wires the state's slot-query counters into the registry:
// state.slot_query_total counts every EarliestTransferSlot call and
// state.slot_fastpath_total the calls served without materializing an
// intersection set or re-searching the timeline (the fused kernel in
// serialized mode, a valid cursor hint otherwise). A nil Obs (the
// default) leaves the counters disabled at the cost of one branch.
func (st *State) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	st.mSlotQuery = o.Counter("state.slot_query_total")
	st.mSlotFast = o.Counter("state.slot_fastpath_total")
}

// EarliestTransferSlot returns the earliest instant t >= ready at which a
// transfer of duration d can start on the link: free link time inside the
// window, and — when the scenario serializes transfers — a free send port
// at the sender and a free receive port at the receiver for the whole
// duration.
//
// This is the innermost primitive of every edge relaxation in the
// resource-aware Dijkstra, so both paths are allocation-free: the
// single-link query rides the link's monotone cursor hint, and the
// serialized query is the fused three-way intersect-fit kernel
// (simtime.EarliestFitN), bit-identical to intersecting the three free
// sets first (earliestTransferSlotSlow, which the differential tests pin
// it against) without building them.
func (st *State) EarliestTransferSlot(id model.LinkID, ready simtime.Instant, d time.Duration) (simtime.Instant, bool) {
	st.mSlotQuery.Inc()
	if st.sendPort == nil {
		t, ok, hinted := st.links[id].EarliestSlotHinted(ready, d)
		if hinted {
			st.mSlotFast.Inc()
		}
		return t, ok
	}
	st.mSlotFast.Inc()
	l := st.sc.Network.Link(id)
	return simtime.EarliestFitN(ready, d,
		st.links[id].Free(), st.sendPort[l.From].Free(), st.recvPort[l.To].Free())
}

// SlotCursors is a private set of per-timeline cursor hints for one batched
// relaxation walk: one cursor per virtual link plus, in serialized mode, one
// per send and receive port. The batched Dijkstra kernel issues slot queries
// with globally non-decreasing ready times across all the forests of an
// epoch, so each timeline's cursor advances monotonically and the timeline
// is walked once per batch instead of re-searched per query. The cursors are
// caller-owned — nothing here touches the timelines' shared atomic hints —
// so any number of batches with their own SlotCursors may run concurrently
// against one State. The zero value is ready to use; Reset recycles the
// backing arrays, so steady-state use allocates nothing.
type SlotCursors struct {
	link []int32
	send []int32
	recv []int32
}

// ResetSlotCursors sizes the cursors for this state's timelines and
// invalidates every hint (the first query per timeline falls back to the
// indexed search; later ones ride the cursor). Call once per batch — a
// commit between batches moves free time, which the validity check would
// catch anyway, but a fresh seed skips the doomed validations.
func (st *State) ResetSlotCursors(c *SlotCursors) {
	c.link = resetCursors(c.link, len(st.links))
	if st.sendPort != nil {
		c.send = resetCursors(c.send, len(st.sendPort))
		c.recv = resetCursors(c.recv, len(st.recvPort))
	}
}

func resetCursors(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = -1
	}
	return s
}

// EarliestTransferSlotCursors is EarliestTransferSlot with the query riding
// the caller's SlotCursors instead of the timelines' shared hints. Results
// are bit-identical for any cursor contents; only the search cost differs.
func (st *State) EarliestTransferSlotCursors(c *SlotCursors, id model.LinkID, ready simtime.Instant, d time.Duration) (simtime.Instant, bool) {
	st.mSlotQuery.Inc()
	if st.sendPort == nil {
		t, ok, hinted := st.links[id].EarliestSlotCursor(&c.link[id], ready, d)
		if hinted {
			st.mSlotFast.Inc()
		}
		return t, ok
	}
	st.mSlotFast.Inc() // the fused kernel never materializes a set
	l := st.sc.Network.Link(id)
	var cur [3]int32
	cur[0], cur[1], cur[2] = c.link[id], c.send[l.From], c.recv[l.To]
	t, ok, _ := simtime.EarliestFitNHint(ready, d, cur[:],
		st.links[id].Free(), st.sendPort[l.From].Free(), st.recvPort[l.To].Free())
	c.link[id], c.send[l.From], c.recv[l.To] = cur[0], cur[1], cur[2]
	return t, ok
}

// earliestTransferSlotSlow is the pre-kernel reference implementation of
// EarliestTransferSlot: in serialized mode it materializes the
// intersection of the three availability sets (two intermediate Set
// allocations per query) and runs the earliest-fit on the result. Kept as
// the oracle for the differential tests (exported via export_test.go).
func (st *State) earliestTransferSlotSlow(id model.LinkID, ready simtime.Instant, d time.Duration) (simtime.Instant, bool) {
	if st.sendPort == nil {
		return st.links[id].Free().EarliestFit(ready, d)
	}
	l := st.sc.Network.Link(id)
	free := st.links[id].Free().IntersectSet(st.sendPort[l.From].Free())
	free = free.IntersectSet(st.recvPort[l.To].Free())
	return free.EarliestFit(ready, d)
}

// Capacity returns the capacity profile of one machine. Callers must not
// reserve on it directly; use Commit.
func (st *State) Capacity(m model.MachineID) *resource.Capacity { return st.caps[m] }

// PhysGroups returns machine u's outgoing virtual links grouped by physical
// link, each group sorted by window start.
func (st *State) PhysGroups(u model.MachineID) []PhysGroup { return st.physOut[u] }

// Holders returns the copies of an item. The slice is shared; do not
// mutate.
func (st *State) Holders(item model.ItemID) []Holder { return st.holders[item] }

// Holds reports whether machine m has (or is scheduled to receive) a copy
// of the item.
func (st *State) Holds(item model.ItemID, m model.MachineID) bool {
	for i := range st.holders[item] {
		if st.holders[item][i].Machine == m {
			return true
		}
	}
	return false
}

// Holder returns machine m's copy of the item.
func (st *State) Holder(item model.ItemID, m model.MachineID) (Holder, bool) {
	for i := range st.holders[item] {
		if st.holders[item][i].Machine == m {
			return st.holders[item][i], true
		}
	}
	return Holder{}, false
}

// IsDestination reports whether m is a requesting machine of the item.
func (st *State) IsDestination(item model.ItemID, m model.MachineID) bool {
	rqs := st.sc.Item(item).Requests
	for i := range rqs {
		if rqs[i].Machine == m {
			return true
		}
	}
	return false
}

// HoldEnd returns when a copy of the item delivered to machine m would be
// removed: never for a final destination, γ after the item's latest
// deadline for an intermediate (§4.4).
func (st *State) HoldEnd(item model.ItemID, m model.MachineID) simtime.Instant {
	if st.IsDestination(item, m) {
		return simtime.Forever
	}
	return st.sc.GCInstant(st.sc.Item(item))
}

// HoldInterval returns the capacity reservation a copy of the item arriving
// at machine m at the given instant requires.
func (st *State) HoldInterval(item model.ItemID, m model.MachineID, arrival simtime.Instant) simtime.Interval {
	return simtime.Interval{Start: arrival, End: st.HoldEnd(item, m)}
}

func (st *State) addHolder(item model.ItemID, h Holder) {
	st.holders[item] = append(st.holders[item], h)
}

// Commit schedules the transfer of an item over one virtual link starting
// at the given instant. It verifies every model constraint — the sending
// machine holds a copy covering the whole transfer, the link slot is free
// inside the window, the receiving machine does not already hold the item
// and can store it until its hold end — then books the link slot and the
// capacity, records the receiving machine as a new holder, and marks any
// request at that machine satisfied if the copy arrives by its deadline.
func (st *State) Commit(item model.ItemID, link model.LinkID, start simtime.Instant) (Transfer, error) {
	l := st.sc.Network.Link(link)
	it := st.sc.Item(item)
	d := l.TransferDuration(it.SizeBytes)
	arrival := start.Add(d)

	if start.Before(st.floor) {
		return Transfer{}, fmt.Errorf("state: transfer start %v before planning floor %v", start, st.floor)
	}
	src, ok := st.Holder(item, l.From)
	if !ok {
		return Transfer{}, fmt.Errorf("state: machine %d does not hold item %d", l.From, item)
	}
	if start.Before(src.Avail) {
		return Transfer{}, fmt.Errorf("state: transfer of item %d starts %v before copy at %d is available (%v)",
			item, start, l.From, src.Avail)
	}
	if src.End != simtime.Forever && arrival.After(src.End) {
		return Transfer{}, fmt.Errorf("state: transfer of item %d outlives copy at %d (ends %v)",
			item, l.From, src.End)
	}
	if st.Holds(item, l.To) {
		return Transfer{}, fmt.Errorf("state: machine %d already holds item %d", l.To, item)
	}
	hold := st.HoldInterval(item, l.To, arrival)
	if !st.caps[l.To].CanReserve(it.SizeBytes, hold) {
		return Transfer{}, fmt.Errorf("state: machine %d lacks %d bytes over %v for item %d",
			l.To, it.SizeBytes, hold, item)
	}
	if st.sendPort != nil {
		if !st.sendPort[l.From].CanCommit(start, d) {
			return Transfer{}, fmt.Errorf("state: machine %d send port busy at %v", l.From, start)
		}
		if !st.recvPort[l.To].CanCommit(start, d) {
			return Transfer{}, fmt.Errorf("state: machine %d receive port busy at %v", l.To, start)
		}
	}
	if err := st.links[link].Commit(start, d); err != nil {
		return Transfer{}, fmt.Errorf("state: item %d on link %d: %w", item, link, err)
	}
	if st.sendPort != nil {
		// CanCommit was verified above; these cannot fail.
		if err := st.sendPort[l.From].Commit(start, d); err != nil {
			return Transfer{}, fmt.Errorf("state: send port raced: %w", err)
		}
		if err := st.recvPort[l.To].Commit(start, d); err != nil {
			return Transfer{}, fmt.Errorf("state: receive port raced: %w", err)
		}
	}
	if err := st.caps[l.To].Reserve(it.SizeBytes, hold); err != nil {
		// Unreachable after CanReserve, but keep the books consistent.
		return Transfer{}, fmt.Errorf("state: capacity reservation raced: %w", err)
	}

	st.addHolder(item, Holder{Machine: l.To, Avail: arrival, End: hold.End})
	tr := Transfer{
		Item: item, Link: link, From: l.From, To: l.To,
		Start: start, Duration: d, Arrival: arrival,
	}
	if st.transfers == nil {
		// First booking: reserve room for a few transfers per item so the
		// epoch's commits extend in place instead of re-copying the log.
		st.transfers = make([]Transfer, 0, 4*len(st.sc.Items))
	}
	st.trOf[item] = append(st.trOf[item], int32(len(st.transfers)))
	st.transfers = append(st.transfers, tr)

	for k, rq := range it.Requests {
		if rq.Machine == l.To && !arrival.After(rq.Deadline) {
			id := model.RequestID{Item: item, Index: k}
			if _, done := st.satisfied[id]; !done {
				st.satisfied[id] = arrival
				st.satLog = append(st.satLog, id)
			}
		}
	}
	return tr, nil
}

// SetFloor forbids new transfers from starting before t. Used by the
// dynamic simulator after replaying history: planning happens at time t and
// cannot occupy the past.
func (st *State) SetFloor(t simtime.Instant) { st.floor = t }

// Floor returns the earliest instant new transfers may start.
func (st *State) Floor() simtime.Instant { return st.floor }

// WithholdItem hides an item from the scheduler until ReleaseItem is
// called: a dynamic request that has not arrived yet.
func (st *State) WithholdItem(item model.ItemID) {
	if st.unreleased == nil {
		st.unreleased = make(map[model.ItemID]bool)
	}
	st.unreleased[item] = true
}

// ReleaseItem makes a withheld item schedulable.
func (st *State) ReleaseItem(item model.ItemID) { delete(st.unreleased, item) }

// IsReleased reports whether the scheduler may plan for the item.
func (st *State) IsReleased(item model.ItemID) bool { return !st.unreleased[item] }

// FailLink removes the virtual link's availability from instant t onward:
// no new transfer can be booked into [t, ∞), and a replayed transfer still
// in flight at t will fail to commit. Idempotent; an earlier failure time
// wins.
func (st *State) FailLink(id model.LinkID, t simtime.Instant) {
	if st.outages == nil {
		st.outages = make(map[model.LinkID]simtime.Instant)
	}
	if prev, ok := st.outages[id]; !ok || t < prev {
		st.outages[id] = t
	}
	st.links[id].Block(simtime.Interval{Start: t, End: simtime.Forever})
}

// Outage returns the instant the link was forced down, if it was.
func (st *State) Outage(id model.LinkID) (simtime.Instant, bool) {
	t, ok := st.outages[id]
	return t, ok
}

// Transfers returns the committed schedule in commit order. The slice is
// shared; do not mutate.
func (st *State) Transfers() []Transfer { return st.transfers }

// TransfersFor returns the committed transfers of one item in commit order —
// the item's staging route through the network. The admission service
// reports this as an admitted request's committed route. Served from the
// per-item index, so the cost is the route length, not the history length.
// The returned slice is freshly allocated.
func (st *State) TransfersFor(item model.ItemID) []Transfer {
	idx := st.trOf[item]
	if len(idx) == 0 {
		return nil
	}
	out := make([]Transfer, len(idx))
	for k, i := range idx {
		out[k] = st.transfers[i]
	}
	return out
}

// Satisfied returns the arrival instant of every satisfied request. The map
// is shared; do not mutate.
func (st *State) Satisfied() map[model.RequestID]simtime.Instant { return st.satisfied }

// IsSatisfied reports whether the request has been satisfied.
func (st *State) IsSatisfied(id model.RequestID) bool {
	_, ok := st.satisfied[id]
	return ok
}

// SatisfiedLog returns every satisfied request in satisfaction order. The
// slice is shared and append-only: entries once returned never change, so a
// caller may remember an offset and later re-read only the suffix beyond it
// (as long as it is reading the same State — a rebuilt state starts a fresh
// log).
func (st *State) SatisfiedLog() []model.RequestID { return st.satLog }
