package state

import (
	"strings"
	"testing"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
)

// serialScenario: machine 0 has two independent outgoing links to machines
// 1 and 2 and holds two items; with SerialTransfers the paper's
// parallel-send assumption is off, so the sends must not overlap.
func serialScenario() (*State, model.ItemID, model.ItemID) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[1], 0, day, 8000)
	b.Link(ms[0], ms[2], 0, day, 8000)
	b.Link(ms[1], ms[0], 0, day, 8000)
	b.Link(ms[2], ms[0], 0, day, 8000)
	a := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.High)})
	c := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.Low)})
	sc := b.Build("serial")
	sc.SerialTransfers = true
	return New(sc), a, c
}

func TestSerialTransfersSendPortExclusive(t *testing.T) {
	st, a, c := serialScenario()
	if !st.SerialTransfers() {
		t.Fatal("serial mode should be on")
	}
	if _, err := st.Commit(a, 0, 0); err != nil {
		t.Fatalf("first send: %v", err)
	}
	// Different link, same sender, overlapping time: rejected.
	_, err := st.Commit(c, 1, simtime.At(500*time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "send port busy") {
		t.Errorf("overlapping send: got %v", err)
	}
	// After the first send completes it fits.
	if _, err := st.Commit(c, 1, simtime.At(1024*time.Millisecond)); err != nil {
		t.Errorf("sequential send: %v", err)
	}
}

func TestSerialTransfersReceivePortExclusive(t *testing.T) {
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<30)
	day := 24 * time.Hour
	b.Link(ms[0], ms[2], 0, day, 8000)
	b.Link(ms[1], ms[2], 0, day, 8000)
	b.Link(ms[2], ms[0], 0, day, 8000)
	b.Link(ms[2], ms[1], 0, day, 8000)
	a := b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.High)})
	c := b.Item(1024, []model.Source{testnet.Src(ms[1], 0)},
		[]model.Request{testnet.Req(ms[2], time.Hour, model.Low)})
	sc := b.Build("serial-recv")
	sc.SerialTransfers = true
	st := New(sc)

	if _, err := st.Commit(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	_, err := st.Commit(c, 1, simtime.At(100*time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "receive port busy") {
		t.Errorf("overlapping receive: got %v", err)
	}
}

func TestEarliestTransferSlotHonorsPorts(t *testing.T) {
	st, a, c := serialScenario()
	if _, err := st.Commit(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Link 1 is idle, but machine 0's send port is busy until 1.024 s.
	d := st.Scenario().Network.Link(1).TransferDuration(st.Scenario().Item(c).SizeBytes)
	slot, ok := st.EarliestTransferSlot(1, 0, d)
	if !ok || slot != simtime.At(1024*time.Millisecond) {
		t.Errorf("slot: got (%v, %v), want 1.024s", slot, ok)
	}
	// With serial mode off the same query is immediate.
	parallel := testnet.Line(3, 1024, 8000, time.Hour)
	stOff := New(parallel)
	if slot, ok := stOff.EarliestTransferSlot(0, 0, d); !ok || slot != 0 {
		t.Errorf("parallel slot: got (%v, %v), want 0", slot, ok)
	}
}

// TestEarliestTransferSlotMatchesSlow pins the fused three-way kernel (and
// the hinted single-link path) bit-identical to the set-materializing
// reference across a grid of links, ready instants, and durations, with
// commits mutating the timelines between sweeps.
func TestEarliestTransferSlotMatchesSlow(t *testing.T) {
	for _, serial := range []bool{false, true} {
		st, a, c := serialScenario()
		if !serial {
			st.sendPort, st.recvPort = nil, nil
		}
		sweep := func(phase string) {
			links := len(st.Scenario().Network.Links)
			for id := 0; id < links; id++ {
				for readyMS := -100; readyMS < 3000; readyMS += 37 {
					ready := simtime.At(time.Duration(readyMS) * time.Millisecond)
					for _, d := range []time.Duration{0, 100 * time.Millisecond, 1024 * time.Millisecond, 48 * time.Hour} {
						got, gotOK := st.EarliestTransferSlot(model.LinkID(id), ready, d)
						want, wantOK := st.EarliestTransferSlotSlow(model.LinkID(id), ready, d)
						if got != want || gotOK != wantOK {
							t.Fatalf("serial=%v %s: slot(link %d, %v, %v) = (%v, %v), want (%v, %v)",
								serial, phase, id, ready, d, got, gotOK, want, wantOK)
						}
					}
				}
			}
		}
		sweep("fresh")
		if _, err := st.Commit(a, 0, 0); err != nil {
			t.Fatal(err)
		}
		sweep("after first commit")
		if _, err := st.Commit(c, 1, simtime.At(2*1024*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		sweep("after second commit")
	}
}

// TestEarliestTransferSlotCursorsMatches pins the batch-cursor query
// bit-identical to the shared-hint query in both modes, including under
// cursor abuse: the sweep's ready times go backwards between links (every
// seed goes stale) and commits move free time between sweeps without the
// cursors being reset.
func TestEarliestTransferSlotCursorsMatches(t *testing.T) {
	for _, serial := range []bool{false, true} {
		st, a, c := serialScenario()
		if !serial {
			st.sendPort, st.recvPort = nil, nil
		}
		var cur SlotCursors
		st.ResetSlotCursors(&cur)
		sweep := func(phase string) {
			links := len(st.Scenario().Network.Links)
			for id := 0; id < links; id++ {
				for readyMS := -100; readyMS < 3000; readyMS += 37 {
					ready := simtime.At(time.Duration(readyMS) * time.Millisecond)
					for _, d := range []time.Duration{0, 100 * time.Millisecond, 1024 * time.Millisecond, 48 * time.Hour} {
						got, gotOK := st.EarliestTransferSlotCursors(&cur, model.LinkID(id), ready, d)
						want, wantOK := st.EarliestTransferSlot(model.LinkID(id), ready, d)
						if got != want || gotOK != wantOK {
							t.Fatalf("serial=%v %s: cursor slot(link %d, %v, %v) = (%v, %v), want (%v, %v)",
								serial, phase, id, ready, d, got, gotOK, want, wantOK)
						}
					}
				}
			}
		}
		sweep("fresh")
		if _, err := st.Commit(a, 0, 0); err != nil {
			t.Fatal(err)
		}
		sweep("after commit, stale cursors")
		st.ResetSlotCursors(&cur)
		if _, err := st.Commit(c, 1, simtime.At(2*1024*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		sweep("after second commit")
	}
}

// TestSlotCursorQueryZeroAllocs gates the admission fast path: a batched
// slot query must not allocate in either mode, and ResetSlotCursors must
// recycle its arrays after the first sizing.
func TestSlotCursorQueryZeroAllocs(t *testing.T) {
	st, a, _ := serialScenario()
	if _, err := st.Commit(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	var cur SlotCursors
	st.ResetSlotCursors(&cur)
	d := 500 * time.Millisecond
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := st.EarliestTransferSlotCursors(&cur, 1, 0, d); !ok {
			t.Fatal("no slot")
		}
	})
	if allocs != 0 {
		t.Errorf("serialized EarliestTransferSlotCursors allocated %.1f times per query, want 0", allocs)
	}
	st.sendPort, st.recvPort = nil, nil
	st.ResetSlotCursors(&cur)
	allocs = testing.AllocsPerRun(100, func() {
		if _, ok := st.EarliestTransferSlotCursors(&cur, 1, 0, d); !ok {
			t.Fatal("no slot")
		}
	})
	if allocs != 0 {
		t.Errorf("single-link EarliestTransferSlotCursors allocated %.1f times per query, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() { st.ResetSlotCursors(&cur) })
	if allocs != 0 {
		t.Errorf("ResetSlotCursors allocated %.1f times per call, want 0", allocs)
	}
}

// TestSerializedSlotQueryZeroAllocs is the acceptance bound of the fused
// kernel: the serialized-transfer slot query — which used to materialize
// two intersection sets per call — must not allocate at all.
func TestSerializedSlotQueryZeroAllocs(t *testing.T) {
	st, a, _ := serialScenario()
	if _, err := st.Commit(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	d := 500 * time.Millisecond
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := st.EarliestTransferSlot(1, 0, d); !ok {
			t.Fatal("no slot")
		}
	})
	if allocs != 0 {
		t.Errorf("serialized EarliestTransferSlot allocated %.1f times per query, want 0", allocs)
	}
	// The single-link path must be allocation-free too.
	st.sendPort, st.recvPort = nil, nil
	allocs = testing.AllocsPerRun(100, func() {
		if _, ok := st.EarliestTransferSlot(1, 0, d); !ok {
			t.Fatal("no slot")
		}
	})
	if allocs != 0 {
		t.Errorf("single-link EarliestTransferSlot allocated %.1f times per query, want 0", allocs)
	}
}
