package state

import (
	"time"

	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

// EarliestTransferSlotSlow exposes the set-materializing reference
// implementation to the differential kernel tests.
func (st *State) EarliestTransferSlotSlow(id model.LinkID, ready simtime.Instant, d time.Duration) (simtime.Instant, bool) {
	return st.earliestTransferSlotSlow(id, ready, d)
}
