package state

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/simtime"
)

// TestQuickCommitNeverViolatesInvariants hammers a state with random
// commit attempts (valid and invalid alike) and checks the global
// invariants that must survive any interleaving: every accepted transfer's
// sender held a live copy, no machine receives an item twice, link slots
// never overlap, and the satisfied set only contains on-time arrivals.
func TestQuickCommitNeverViolatesInvariants(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 4, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 3, Max: 6}
	property := func(seed int64) bool {
		sc := gen.MustGenerate(p, seed%10000)
		st := New(sc)
		rng := rand.New(rand.NewSource(seed))
		accepted := 0
		for i := 0; i < 300; i++ {
			item := model.ItemID(rng.Intn(len(sc.Items)))
			link := model.LinkID(rng.Intn(len(sc.Network.Links)))
			start := simtime.At(time.Duration(rng.Int63n(int64(3 * time.Hour))))
			if _, err := st.Commit(item, link, start); err == nil {
				accepted++
			}
		}
		if accepted == 0 {
			return true // nothing to check, still fine
		}
		return checkInvariants(t, st)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func checkInvariants(t *testing.T, st *State) bool {
	sc := st.Scenario()
	trs := st.Transfers()
	// No duplicate deliveries and sender-copy liveness.
	delivered := make(map[[2]int]simtime.Instant)
	for i := range sc.Items {
		for _, src := range sc.Items[i].Sources {
			delivered[[2]int{i, int(src.Machine)}] = src.Available
		}
	}
	for _, tr := range trs {
		key := [2]int{int(tr.Item), int(tr.To)}
		if _, dup := delivered[key]; dup {
			t.Logf("duplicate delivery of item %d to %d", tr.Item, tr.To)
			return false
		}
		avail, held := delivered[[2]int{int(tr.Item), int(tr.From)}]
		if !held || tr.Start.Before(avail) {
			t.Logf("transfer without live sender copy: %+v", tr)
			return false
		}
		delivered[key] = tr.Arrival
	}
	// Link exclusivity.
	byLink := make(map[model.LinkID][]Transfer)
	for _, tr := range trs {
		byLink[tr.Link] = append(byLink[tr.Link], tr)
	}
	for _, slot := range byLink {
		for i := range slot {
			for j := i + 1; j < len(slot); j++ {
				a, b := slot[i], slot[j]
				if a.Start < b.Arrival && b.Start < a.Arrival {
					t.Logf("link overlap: %+v vs %+v", a, b)
					return false
				}
			}
		}
	}
	// Satisfaction only for on-time arrivals at the right machine.
	for id, at := range st.Satisfied() {
		rq := sc.Request(id)
		if at.After(rq.Deadline) {
			t.Logf("late satisfaction: %v at %v", id, at)
			return false
		}
		got, ok := delivered[[2]int{int(id.Item), int(rq.Machine)}]
		if !ok || got != at {
			t.Logf("satisfied without matching delivery: %v", id)
			return false
		}
	}
	return true
}
