// Package arena provides a slab allocator for the scheduler's hot paths.
//
// The admission path allocates many short, same-shaped slices (per-machine
// label arrays, plan buffers). Allocating each one separately costs a
// malloc and a GC scan apiece; an Arena carves them out of large recycled
// slabs instead, so steady state performs zero allocations and the garbage
// collector sees a handful of long-lived backing arrays rather than
// thousands of small objects.
package arena

// Arena is a slab allocator for []T carvings. Alloc returns slices whose
// contents are unspecified — callers reinitialize, exactly as with the
// scheduler's growSlice idiom. Reset recycles every slab for reuse; it must
// only be called when no carving from the arena is still live (the typical
// pattern is one Reset per epoch for per-epoch scratch, or never for
// grow-only pools whose carvings live as long as the arena).
//
// An Arena is owned by one goroutine at a time; it performs no locking.
// The zero value is ready to use.
type Arena[T any] struct {
	slabs [][]T
	// cur indexes the slab being carved; off is the carve offset within it.
	cur int
	off int
	// slabSize is the minimum size of newly grown slabs; it doubles as the
	// arena grows so long-lived arenas converge to O(log n) slabs.
	slabSize int
}

// minSlab is the initial slab size in elements. Deliberately small: a
// planner over a toy world (tests, per-iteration benchmark engines) should
// not pay for a four-digit slab up front. Doubling converges long-lived
// arenas to big slabs within a handful of grows anyway.
const minSlab = 64

// Alloc carves a slice of n elements. Contents are unspecified (a recycled
// slab retains old values). The carving is capacity-clamped so appending to
// it cannot alias the next carving.
func (a *Arena[T]) Alloc(n int) []T {
	if n < 0 {
		panic("arena: negative Alloc")
	}
	for a.cur < len(a.slabs) {
		s := a.slabs[a.cur]
		if a.off+n <= len(s) {
			out := s[a.off : a.off+n : a.off+n]
			a.off += n
			return out
		}
		a.cur++
		a.off = 0
	}
	if a.slabSize < minSlab {
		a.slabSize = minSlab
	}
	for a.slabSize < n {
		a.slabSize *= 2
	}
	s := make([]T, a.slabSize)
	a.slabSize *= 2
	a.slabs = append(a.slabs, s)
	a.off = n
	return s[0:n:n]
}

// Reset makes every slab available for carving again. Carvings handed out
// before the Reset alias the recycled memory; the caller asserts none of
// them is still live.
func (a *Arena[T]) Reset() {
	a.cur = 0
	a.off = 0
}

// Slabs returns how many backing slabs the arena holds (an observability
// aid: steady state means this stops growing).
func (a *Arena[T]) Slabs() int { return len(a.slabs) }
