package arena

import "testing"

func TestAllocDisjoint(t *testing.T) {
	var a Arena[int]
	s1 := a.Alloc(10)
	s2 := a.Alloc(10)
	for i := range s1 {
		s1[i] = 1
	}
	for i := range s2 {
		s2[i] = 2
	}
	for i, v := range s1 {
		if v != 1 {
			t.Fatalf("s1[%d] = %d, carvings overlap", i, v)
		}
	}
	if len(s1) != 10 || cap(s1) != 10 {
		t.Fatalf("carving len/cap = %d/%d, want 10/10", len(s1), cap(s1))
	}
	// Appending to a full carving must not scribble on the next one.
	_ = append(s1, 99)
	if s2[0] != 2 {
		t.Fatal("append to carving aliased the next carving")
	}
}

func TestAllocLargerThanSlab(t *testing.T) {
	var a Arena[byte]
	big := a.Alloc(3 * minSlab)
	if len(big) != 3*minSlab {
		t.Fatalf("len = %d", len(big))
	}
	if a.Slabs() != 1 {
		t.Fatalf("slabs = %d, want 1", a.Slabs())
	}
}

func TestResetRecyclesSlabs(t *testing.T) {
	var a Arena[int64]
	const n, rounds = 64, 200
	for i := 0; i < minSlab/n; i++ {
		a.Alloc(n)
	}
	slabs := a.Slabs()
	allocs := testing.AllocsPerRun(rounds, func() {
		a.Reset()
		for i := 0; i < minSlab/n; i++ {
			a.Alloc(n)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Alloc allocated %.1f times per epoch, want 0", allocs)
	}
	if a.Slabs() != slabs {
		t.Errorf("slabs grew from %d to %d across Resets", slabs, a.Slabs())
	}
}

func TestZeroValueReady(t *testing.T) {
	var a Arena[struct{ x, y int }]
	s := a.Alloc(5)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	a.Reset()
	if s2 := a.Alloc(5); len(s2) != 5 {
		t.Fatalf("post-reset len = %d", len(s2))
	}
}

func TestSlabGrowthDoubles(t *testing.T) {
	var a Arena[byte]
	total := 0
	for i := 0; i < 20; i++ {
		a.Alloc(minSlab)
		total += minSlab
	}
	// Doubling slabs: 20 slab-sized carvings must fit in far fewer slabs.
	if a.Slabs() > 6 {
		t.Errorf("%d bytes used %d slabs, doubling broken", total, a.Slabs())
	}
}
