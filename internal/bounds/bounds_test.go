package bounds

import (
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/testnet"
)

func TestUpper(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	if got := Upper(sc, model.Weights1x10x100); got != 100 {
		t.Errorf("Upper: got %v, want 100", got)
	}
}

func TestPossibleSatisfyTrivial(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	sum, n := PossibleSatisfy(sc, model.Weights1x10x100)
	if sum != 100 || n != 1 {
		t.Errorf("PossibleSatisfy: got (%v, %d), want (100, 1)", sum, n)
	}
}

func TestPossibleSatisfyExcludesInfeasible(t *testing.T) {
	// Deadline shorter than the only link's transfer time: even alone the
	// request cannot be satisfied.
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8) // 1 KB at 8 bit/s ≈ 17 m
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Minute, model.High)})
	b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Hour, model.Low)})
	sc := b.Build("infeasible")

	sum, n := PossibleSatisfy(sc, model.Weights1x10x100)
	if sum != 1 || n != 1 {
		t.Errorf("PossibleSatisfy: got (%v, %d), want (1, 1)", sum, n)
	}
	if up := Upper(sc, model.Weights1x10x100); up != 101 {
		t.Errorf("Upper: got %v, want 101", up)
	}
}

// TestBoundOrdering verifies the paper's Figure 2 ordering on generated
// cases: single_Dij_random <= possible_satisfy <= upper_bound, and the
// heuristics land between the lower bounds and possible_satisfy.
func TestBoundOrdering(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 10, Max: 10}
	w := model.Weights1x10x100
	for seed := int64(1); seed <= 3; seed++ {
		sc := gen.MustGenerate(p, seed)
		upper := Upper(sc, w)
		possible, _ := PossibleSatisfy(sc, w)
		if possible > upper {
			t.Errorf("seed %d: possible_satisfy %v exceeds upper_bound %v", seed, possible, upper)
		}
		sd, err := SingleDijkstraRandom(sc, w, seed)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := RandomDijkstra(sc, w, seed)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := PriorityFirst(sc, w)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{Heuristic: core.FullPathOneDest, Criterion: core.C4, EU: core.EUFromLog10(2), Weights: w}
		heur, err := core.Schedule(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			name  string
			value float64
		}{
			{"single_Dij_random", sd.WeightedValue(sc, w)},
			{"random_Dijkstra", rd.WeightedValue(sc, w)},
			{"priority_first", pf.WeightedValue(sc, w)},
			{"full_one/C4", heur.WeightedValue(sc, w)},
		} {
			if tc.value > possible {
				t.Errorf("seed %d: %s achieved %v above possible_satisfy %v", seed, tc.name, tc.value, possible)
			}
			if tc.value < 0 {
				t.Errorf("seed %d: %s negative value", seed, tc.name)
			}
		}
		if heur.WeightedValue(sc, w) < sd.WeightedValue(sc, w) {
			t.Errorf("seed %d: heuristic below single_Dij_random", seed)
		}
	}
}
