// Package bounds computes the paper's two upper bounds on the weighted sum
// of satisfied priorities (§5.2). The two lower bounds — the random-search
// scheduling procedures — live in internal/core because they share the
// heuristics' planning machinery; this package re-exports convenience
// wrappers so callers find all four bounds in one place.
package bounds

import (
	"datastaging/internal/core"
	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/state"
)

// Upper returns the loose upper bound ("upper_bound" in Figure 2): the
// total weighted sum of the priorities of every request, as if all could be
// satisfied.
func Upper(sc *scenario.Scenario, w model.Weights) float64 {
	return sc.TotalWeight(w)
}

// PossibleSatisfy returns the tighter upper bound ("possible_satisfy" in
// Figure 2): the weighted sum over requests that could be satisfied if each
// were the only request in the system. It runs one Dijkstra per item
// against a pristine network. The second result is the number of such
// requests.
func PossibleSatisfy(sc *scenario.Scenario, w model.Weights) (float64, int) {
	st := state.New(sc) // pristine; never committed to
	var sum float64
	var count int
	for i := range sc.Items {
		item := model.ItemID(i)
		pl := dijkstra.Compute(st, item)
		for _, rq := range sc.Item(item).Requests {
			at := pl.Arrival[rq.Machine]
			if pl.Reachable(rq.Machine) && !at.After(rq.Deadline) {
				sum += w.Of(rq.Priority)
				count++
			}
		}
	}
	return sum, count
}

// RandomDijkstra is the tighter lower bound: the partial path loop with
// random step selection. See core.RandomDijkstra.
func RandomDijkstra(sc *scenario.Scenario, w model.Weights, seed int64) (*core.Result, error) {
	return core.RandomDijkstra(sc, w, seed)
}

// SingleDijkstraRandom is the looser lower bound: one pristine Dijkstra per
// item, conflicts drop requests. See core.SingleDijkstraRandom.
func SingleDijkstraRandom(sc *scenario.Scenario, w model.Weights, seed int64) (*core.Result, error) {
	return core.SingleDijkstraRandom(sc, w, seed)
}

// PriorityFirst is the §5.4 strict-priority-order baseline. See
// core.PriorityFirst.
func PriorityFirst(sc *scenario.Scenario, w model.Weights) (*core.Result, error) {
	return core.PriorityFirst(sc, w)
}
