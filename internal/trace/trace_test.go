package trace

import (
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/gen"
	"datastaging/internal/model"
	"datastaging/internal/state"
	"datastaging/internal/testnet"
)

func TestTimelineRendersActivity(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := Timeline(sc, res.Transfers, 40)
	if !strings.Contains(out, "2 transfers") {
		t.Errorf("header missing transfer count:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 machines
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Machine 0 only sends, machine 2 only receives, machine 1 does both
	// (sequentially, so S and R marks but no forced '#').
	if !strings.Contains(lines[1], "S") || strings.Contains(lines[1], "R") {
		t.Errorf("machine 0 row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "R") || strings.Contains(lines[3], "S") {
		t.Errorf("machine 2 row wrong: %q", lines[3])
	}
	if !strings.Contains(lines[2], "S") || !strings.Contains(lines[2], "R") {
		t.Errorf("machine 1 row should both send and receive: %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	sc := testnet.Line(2, 1024, 8000, time.Hour)
	if out := Timeline(sc, nil, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty timeline: %q", out)
	}
}

func TestLinkUtilization(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := LinkUtilization(sc, res.Transfers)
	if len(stats) != 2 {
		t.Fatalf("got %d used links, want 2", len(stats))
	}
	for _, s := range stats {
		if s.Transfers != 1 {
			t.Errorf("link %d: %d transfers", s.Link, s.Transfers)
		}
		if s.Busy != 1024*time.Millisecond {
			t.Errorf("link %d: busy %v", s.Link, s.Busy)
		}
		if s.Utilization <= 0 || s.Utilization > 1 {
			t.Errorf("link %d: utilization %v", s.Link, s.Utilization)
		}
	}
	// Sorted descending by utilization.
	if stats[0].Utilization < stats[1].Utilization {
		t.Error("not sorted by utilization")
	}
}

func TestMachineActivityAndPeak(t *testing.T) {
	// Two items staged through machine 1 with overlapping holds.
	b := testnet.NewBuilder()
	ms := b.Machines(3, 1<<20)
	day := 24 * time.Hour
	b.Link(ms[0], ms[1], 0, day, 80000)
	b.Link(ms[1], ms[2], 0, day, 80000)
	b.Link(ms[2], ms[0], 0, day, 80000)
	itemA := b.Item(1000, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.High)})
	itemB := b.Item(2000, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[2], 30*time.Minute, model.Low)})
	sc := b.Build("peak")
	st := state.New(sc)
	// Serialize the two items' first hops on the shared link.
	start := st.Holders(itemA)[0].Avail
	for _, item := range []model.ItemID{itemA, itemB} {
		tr, err := st.Commit(item, 0, start)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Commit(item, 1, tr.Arrival); err != nil {
			t.Fatal(err)
		}
		start = tr.Arrival
	}
	acts := MachineActivity(sc, st.Transfers())
	if acts[0].Sends != 2 || acts[0].BytesOut != 3000 || acts[0].Receives != 0 {
		t.Errorf("machine 0: %+v", acts[0])
	}
	if acts[1].Sends != 2 || acts[1].Receives != 2 || acts[1].BytesIn != 3000 {
		t.Errorf("machine 1: %+v", acts[1])
	}
	// Both copies overlap at machine 1 until garbage collection.
	if acts[1].PeakStored != 3000 {
		t.Errorf("machine 1 peak: got %d, want 3000", acts[1].PeakStored)
	}
	// Destination copies persist forever.
	if acts[2].PeakStored != 3000 {
		t.Errorf("machine 2 peak: got %d, want 3000", acts[2].PeakStored)
	}
}

func TestActivityOnGeneratedScenario(t *testing.T) {
	p := gen.Default()
	p.Machines = gen.IntRange{Min: 6, Max: 6}
	p.RequestsPerMachine = gen.IntRange{Min: 8, Max: 8}
	sc := gen.MustGenerate(p, 3)
	cfg := core.Config{Heuristic: core.FullPathOneDest, Criterion: core.C4,
		EU: core.EUFromLog10(2), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := Timeline(sc, res.Transfers, 60)
	if len(strings.Split(out, "\n")) < 7 {
		t.Errorf("timeline too short:\n%s", out)
	}
	var totalSends int
	for _, a := range MachineActivity(sc, res.Transfers) {
		totalSends += a.Sends
		if a.PeakStored > sc.Network.Machine(a.Machine).CapacityBytes {
			t.Errorf("machine %d peak %d exceeds capacity", a.Machine, a.PeakStored)
		}
	}
	if totalSends != len(res.Transfers) {
		t.Errorf("sends %d != transfers %d", totalSends, len(res.Transfers))
	}
	for _, s := range LinkUtilization(sc, res.Transfers) {
		if s.Utilization > 1.0000001 {
			t.Errorf("link %d over 100%% utilized", s.Link)
		}
	}
}
