// Package trace renders committed schedules for human inspection: an ASCII
// per-machine activity timeline (who is sending/receiving when), per-link
// utilization, and per-machine traffic statistics. stagerun uses it behind
// the -timeline flag; it is also handy in tests when a schedule looks
// wrong.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Timeline renders each machine as a row of time buckets spanning the
// schedule's active period. Bucket marks: 'S' sending only, 'R' receiving
// only, '#' both, '.' idle.
func Timeline(sc *scenario.Scenario, transfers []state.Transfer, width int) string {
	if width < 10 {
		width = 10
	}
	if len(transfers) == 0 {
		return "(empty schedule)\n"
	}
	var span simtime.Interval
	span.Start = transfers[0].Start
	for _, tr := range transfers {
		if tr.Start < span.Start {
			span.Start = tr.Start
		}
		if tr.Arrival > span.End {
			span.End = tr.Arrival
		}
	}
	total := span.Length()
	if total <= 0 {
		total = time.Nanosecond
	}
	bucket := func(t simtime.Instant) int {
		b := int(int64(t.Sub(span.Start)) * int64(width) / int64(total))
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}

	m := sc.Network.NumMachines()
	rows := make([][]byte, m)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	mark := func(machine model.MachineID, from, to int, send bool) {
		for b := from; b <= to; b++ {
			cur := rows[machine][b]
			switch {
			case send && (cur == 'R' || cur == '#'):
				rows[machine][b] = '#'
			case !send && (cur == 'S' || cur == '#'):
				rows[machine][b] = '#'
			case send:
				rows[machine][b] = 'S'
			default:
				rows[machine][b] = 'R'
			}
		}
	}
	for _, tr := range transfers {
		b0, b1 := bucket(tr.Start), bucket(tr.Arrival)
		mark(tr.From, b0, b1, true)
		mark(tr.To, b0, b1, false)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "schedule timeline %v .. %v (%d transfers; S=send R=receive #=both)\n",
		span.Start, span.End, len(transfers))
	for i := 0; i < m; i++ {
		name := sc.Network.Machine(model.MachineID(i)).Name
		if name == "" {
			name = fmt.Sprintf("m%d", i)
		}
		fmt.Fprintf(&b, "%12s |%s|\n", name, rows[i])
	}
	return b.String()
}

// LinkStats is the utilization of one virtual link under a schedule.
type LinkStats struct {
	Link        model.LinkID
	From, To    model.MachineID
	Transfers   int
	Busy        time.Duration
	Window      time.Duration
	Utilization float64
}

// LinkUtilization aggregates busy time per virtual link, most utilized
// first. Links that carried nothing are omitted.
func LinkUtilization(sc *scenario.Scenario, transfers []state.Transfer) []LinkStats {
	agg := make(map[model.LinkID]*LinkStats)
	for _, tr := range transfers {
		s := agg[tr.Link]
		if s == nil {
			l := sc.Network.Link(tr.Link)
			s = &LinkStats{Link: tr.Link, From: l.From, To: l.To, Window: l.Window.Length()}
			agg[tr.Link] = s
		}
		s.Transfers++
		s.Busy += tr.Duration
	}
	out := make([]LinkStats, 0, len(agg))
	for _, s := range agg {
		if s.Window > 0 {
			s.Utilization = float64(s.Busy) / float64(s.Window)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utilization != out[j].Utilization {
			return out[i].Utilization > out[j].Utilization
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// MachineStats is one machine's traffic under a schedule.
type MachineStats struct {
	Machine  model.MachineID
	Sends    int
	Receives int
	BytesIn  int64
	BytesOut int64
	// PeakStored is the largest total size of schedule-delivered copies
	// simultaneously resident (source copies excluded, matching the
	// net-capacity convention).
	PeakStored int64
}

// MachineActivity aggregates per-machine traffic, indexed by machine ID.
func MachineActivity(sc *scenario.Scenario, transfers []state.Transfer) []MachineStats {
	out := make([]MachineStats, sc.Network.NumMachines())
	for i := range out {
		out[i].Machine = model.MachineID(i)
	}
	type change struct {
		at    simtime.Instant
		delta int64
	}
	changes := make([][]change, len(out))
	for _, tr := range transfers {
		size := sc.Item(tr.Item).SizeBytes
		out[tr.From].Sends++
		out[tr.From].BytesOut += size
		out[tr.To].Receives++
		out[tr.To].BytesIn += size
		end := gcEnd(sc, tr.Item, tr.To)
		changes[tr.To] = append(changes[tr.To], change{at: tr.Arrival, delta: size})
		if end != simtime.Forever {
			changes[tr.To] = append(changes[tr.To], change{at: end, delta: -size})
		}
	}
	for mi := range changes {
		cs := changes[mi]
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].at != cs[b].at {
				return cs[a].at < cs[b].at
			}
			return cs[a].delta < cs[b].delta // releases before arrivals at ties
		})
		var cur, peak int64
		for _, c := range cs {
			cur += c.delta
			if cur > peak {
				peak = cur
			}
		}
		out[mi].PeakStored = peak
	}
	return out
}

func gcEnd(sc *scenario.Scenario, item model.ItemID, m model.MachineID) simtime.Instant {
	for _, rq := range sc.Item(item).Requests {
		if rq.Machine == m {
			return simtime.Forever
		}
	}
	return sc.GCInstant(sc.Item(item))
}
