package explain

import (
	"strings"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/testnet"
)

func TestDiagnoseSatisfied(t *testing.T) {
	sc := testnet.Line(3, 1024, 8000, time.Hour)
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUFromLog10(0), Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Diagnose(sc, res.Transfers, model.RequestID{Item: 0, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Satisfied {
		t.Fatalf("verdict: got %v", rep.Verdict)
	}
	if rep.Arrival == 0 || rep.Arrival.After(rep.Deadline) {
		t.Errorf("arrival: %v", rep.Arrival)
	}
	out := rep.Format(sc)
	if !strings.Contains(out, "satisfied") || !strings.Contains(out, "delivered at") {
		t.Errorf("format:\n%s", out)
	}
}

func TestDiagnoseInfeasibleAlone(t *testing.T) {
	// Link too slow for the deadline even on an idle network.
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8) // 1 KB ≈ 17 m
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], time.Minute, model.High)})
	sc := b.Build("slow")
	rep, err := Diagnose(sc, nil, model.RequestID{Item: 0, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != InfeasibleAlone {
		t.Fatalf("verdict: got %v", rep.Verdict)
	}
	if !strings.Contains(rep.Format(sc), "past the deadline") {
		t.Errorf("format:\n%s", rep.Format(sc))
	}

	// Unreachable outright: window shorter than the transfer.
	b2 := testnet.NewBuilder()
	ns := b2.Machines(2, 1<<30)
	b2.Link(ns[0], ns[1], 0, time.Second, 8)
	b2.Link(ns[1], ns[0], 0, 24*time.Hour, 8000)
	b2.Item(1024, []model.Source{testnet.Src(ns[0], 0)},
		[]model.Request{testnet.Req(ns[1], time.Hour, model.High)})
	sc2 := b2.Build("unreach")
	rep2, err := Diagnose(sc2, nil, model.RequestID{Item: 0, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verdict != InfeasibleAlone || rep2.IdealArrival != simtime.Never {
		t.Fatalf("verdict: %v arrival %v", rep2.Verdict, rep2.IdealArrival)
	}
	if !strings.Contains(rep2.Format(sc2), "unreachable") {
		t.Errorf("format:\n%s", rep2.Format(sc2))
	}
}

func TestDiagnoseStarvedNamesBlockers(t *testing.T) {
	sc, low, high := contendedPair()
	cfg := core.Config{Heuristic: core.PartialPath, Criterion: core.C4,
		EU: core.EUPriorityOnly, Weights: model.Weights1x10x100}
	res, err := core.Schedule(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Diagnose(sc, res.Transfers, model.RequestID{Item: low, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Starved {
		t.Fatalf("low-priority verdict: got %v", rep.Verdict)
	}
	if len(rep.Blockers) == 0 {
		t.Fatal("starved request should name its blockers")
	}
	if rep.Blockers[0].Item != high {
		t.Errorf("blocker: got item %d, want the high-priority item %d", rep.Blockers[0].Item, high)
	}
	out := rep.Format(sc)
	if !strings.Contains(out, "blocked by item") {
		t.Errorf("format:\n%s", out)
	}
}

// contendedPair: two items racing for one serial link where only the first
// transfer meets the shared deadline.
func contendedPair() (sc *scenario.Scenario, low, high model.ItemID) {
	b := testnet.NewBuilder()
	ms := b.Machines(2, 1<<30)
	b.Link(ms[0], ms[1], 0, 24*time.Hour, 8000)
	b.Link(ms[1], ms[0], 0, 24*time.Hour, 8000)
	low = b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*time.Second, model.Low)})
	high = b.Item(1024, []model.Source{testnet.Src(ms[0], 0)},
		[]model.Request{testnet.Req(ms[1], 2*time.Second, model.High)})
	return b.Build("contended"), low, high
}

func TestDiagnoseRejectsBadIDs(t *testing.T) {
	sc := testnet.Line(2, 1024, 8000, time.Hour)
	if _, err := Diagnose(sc, nil, model.RequestID{Item: 9}); err == nil {
		t.Error("unknown item accepted")
	}
	if _, err := Diagnose(sc, nil, model.RequestID{Item: 0, Index: 5}); err == nil {
		t.Error("unknown request index accepted")
	}
}

func TestVerdictString(t *testing.T) {
	for _, tc := range []struct {
		v    Verdict
		want string
	}{
		{Satisfied, "satisfied"},
		{InfeasibleAlone, "infeasible-even-alone"},
		{Starved, "starved-by-contention"},
		{DeliveredLate, "delivered-late"},
		{Verdict(9), "verdict(9)"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("got %q want %q", got, tc.want)
		}
	}
}
