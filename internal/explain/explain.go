// Package explain diagnoses scheduling outcomes: given a finished run and a
// request, it reports why the request was or was not satisfied — infeasible
// even on an idle network, starved of resources by other transfers (and by
// which), or simply delivered. stagerun exposes it as -explain; it is also
// a debugging aid when a workload behaves unexpectedly.
package explain

import (
	"fmt"
	"strings"
	"time"

	"datastaging/internal/dijkstra"
	"datastaging/internal/model"
	"datastaging/internal/scenario"
	"datastaging/internal/simtime"
	"datastaging/internal/state"
)

// Verdict classifies a request's outcome.
type Verdict int

// The possible outcomes.
const (
	// Satisfied: the schedule delivered the item by the deadline.
	Satisfied Verdict = iota + 1
	// InfeasibleAlone: even on an idle network the item cannot reach the
	// destination by the deadline (no window/bandwidth/capacity
	// combination works) — the request is outside possible_satisfy.
	InfeasibleAlone
	// Starved: feasible alone, but the committed schedule consumed
	// resources its best path needed.
	Starved
	// DeliveredLate: the schedule moved the item to the destination, but
	// after the deadline.
	DeliveredLate
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Satisfied:
		return "satisfied"
	case InfeasibleAlone:
		return "infeasible-even-alone"
	case Starved:
		return "starved-by-contention"
	case DeliveredLate:
		return "delivered-late"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Report is the full diagnosis of one request.
type Report struct {
	Request model.RequestID
	Verdict Verdict
	// Deadline and Arrival (when a copy reached the destination; zero
	// otherwise).
	Deadline simtime.Instant
	Arrival  simtime.Instant
	// IdealArrival is the arrival on an idle network (possible_satisfy's
	// view); Never if unreachable even alone.
	IdealArrival simtime.Instant
	// IdealPath is the idle-network path (empty when unreachable).
	IdealPath []dijkstra.Hop
	// Blockers are the committed transfers that occupy the ideal path's
	// links around the times the request needed them (only for Starved).
	Blockers []state.Transfer
}

// Diagnose explains one request's outcome under a committed schedule.
func Diagnose(sc *scenario.Scenario, transfers []state.Transfer, id model.RequestID) (*Report, error) {
	if int(id.Item) < 0 || int(id.Item) >= len(sc.Items) {
		return nil, fmt.Errorf("explain: unknown item %d", id.Item)
	}
	it := sc.Item(id.Item)
	if id.Index < 0 || id.Index >= len(it.Requests) {
		return nil, fmt.Errorf("explain: item %d has no request %d", id.Item, id.Index)
	}
	rq := it.Requests[id.Index]
	rep := &Report{Request: id, Deadline: rq.Deadline}

	// Idle-network view.
	idle := state.New(sc)
	ideal := dijkstra.Compute(idle, id.Item)
	rep.IdealArrival = ideal.Arrival[rq.Machine]
	if hops, ok := ideal.PathTo(rq.Machine); ok {
		rep.IdealPath = hops
	}

	// Actual delivery, reconstructed from the schedule.
	for _, tr := range transfers {
		if tr.Item == id.Item && tr.To == rq.Machine {
			rep.Arrival = tr.Arrival
			break
		}
	}

	switch {
	case rep.Arrival != 0 && !rep.Arrival.After(rq.Deadline):
		rep.Verdict = Satisfied
	case rep.Arrival != 0:
		rep.Verdict = DeliveredLate
	case rep.IdealArrival == simtime.Never || rep.IdealArrival.After(rq.Deadline):
		rep.Verdict = InfeasibleAlone
	default:
		rep.Verdict = Starved
		rep.Blockers = blockers(rep.IdealPath, transfers, id.Item)
	}
	return rep, nil
}

// BlamedLink picks the single link a starved request's failure is charged
// to: the ideal-path link whose blockers overlapped the request's ideal
// slot the longest (ties: lowest link ID), along with the total overlap.
// ok is false when the report has no overlapping blockers (starved purely
// by capacity or windows, not link contention) — including for any verdict
// other than Starved, where Blockers is empty by construction.
func (r *Report) BlamedLink() (link model.LinkID, blocked time.Duration, ok bool) {
	overlap := make(map[model.LinkID]time.Duration)
	for _, h := range r.IdealPath {
		want := simtime.Span(h.Start, h.Dur)
		for _, tr := range r.Blockers {
			if tr.Link != h.Link {
				continue
			}
			overlap[h.Link] += simtime.Span(tr.Start, tr.Duration).Intersect(want).Length()
		}
	}
	for l, d := range overlap {
		if d == 0 {
			continue
		}
		if !ok || d > blocked || (d == blocked && l < link) {
			link, blocked, ok = l, d, true
		}
	}
	return link, blocked, ok
}

// blockers collects other items' transfers that occupy the ideal path's
// links at or before the times the ideal plan wanted them — the contention
// that displaced this request.
func blockers(path []dijkstra.Hop, transfers []state.Transfer, self model.ItemID) []state.Transfer {
	var out []state.Transfer
	for _, h := range path {
		want := simtime.Span(h.Start, h.Dur)
		for _, tr := range transfers {
			if tr.Item == self || tr.Link != h.Link {
				continue
			}
			if simtime.Span(tr.Start, tr.Duration).Overlaps(want) {
				out = append(out, tr)
			}
		}
	}
	return out
}

// Format renders the report as human-readable text.
func (r *Report) Format(sc *scenario.Scenario) string {
	var b strings.Builder
	rq := sc.Request(r.Request)
	fmt.Fprintf(&b, "%v (%s, item %q → machine %d, deadline %v): %v\n",
		r.Request, rq.Priority, sc.Item(r.Request.Item).Name, rq.Machine, r.Deadline, r.Verdict)
	switch r.Verdict {
	case Satisfied:
		fmt.Fprintf(&b, "  delivered at %v, %v before the deadline\n",
			r.Arrival, r.Deadline.Sub(r.Arrival).Round(time.Second))
	case DeliveredLate:
		fmt.Fprintf(&b, "  delivered at %v, %v after the deadline\n",
			r.Arrival, r.Arrival.Sub(r.Deadline).Round(time.Second))
	case InfeasibleAlone:
		if r.IdealArrival == simtime.Never {
			fmt.Fprintf(&b, "  unreachable even on an idle network: no window/capacity path admits the item\n")
		} else {
			fmt.Fprintf(&b, "  even alone the item arrives at %v, %v past the deadline\n",
				r.IdealArrival, r.IdealArrival.Sub(r.Deadline).Round(time.Second))
		}
	case Starved:
		fmt.Fprintf(&b, "  feasible alone (ideal arrival %v) but displaced by contention\n", r.IdealArrival)
		for _, h := range r.IdealPath {
			fmt.Fprintf(&b, "  ideal hop m%d→m%d via link %d at %v\n", h.From, h.To, h.Link, h.Start)
		}
		for _, tr := range r.Blockers {
			fmt.Fprintf(&b, "  blocked by item %d on link %d during [%v, %v)\n",
				tr.Item, tr.Link, tr.Start, tr.Arrival)
		}
	}
	return b.String()
}
