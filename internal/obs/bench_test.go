package obs

import "testing"

// BenchmarkDisabledInstruments quantifies the disabled fast path the
// scheduler relies on: nil counters, gauges, and tracer must cost a
// predictable branch each (single-digit nanoseconds), so instrumentation
// left in the hot path is free when no Obs is configured.
func BenchmarkDisabledInstruments(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		var g *Gauge
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.SetMax(float64(i))
		}
	})
	b.Run("tracer", func(b *testing.B) {
		var t *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if t.Enabled() {
				t.Emit(Event{Kind: EvIteration, N: i})
			}
		}
	})
}

// BenchmarkEnabledInstruments is the cost when observability is on.
func BenchmarkEnabledInstruments(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("h", DurationBuckets)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(1e-4)
		}
	})
	b.Run("tracer-discard", func(b *testing.B) {
		t := NewTracer(DefaultRingSize, Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.Emit(Event{Kind: EvIteration, N: i})
		}
	})
}
