// Package obs is the scheduler's observability layer: a typed metrics
// registry (counters, gauges, histograms with fixed bucket layouts), a
// structured event tracer with pluggable sinks, and wall-clock phase
// timers. It is stdlib-only and designed so that a *disabled* instrument
// costs approximately nothing: every instrument method is safe on a nil
// receiver and returns immediately, so instrumented packages hold possibly
// nil handles and call them unconditionally. All enabled operations are
// atomic and safe under the planner's replan worker pool and the
// experiment package's run pool.
//
// See DESIGN.md "Observability" for the event taxonomy and the metric
// names each package registers.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding the latest (or largest) observed
// value. The value is stored bit-exactly: what Set records is what Value
// and the snapshot report.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax records v only if it exceeds the current value (a high-water
// mark). No-op on a nil receiver.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed cumulative-style bucket
// layout: counts[i] is the number of observations ≤ bounds[i], and
// counts[len(bounds)] the overflow. Sum and Count are tracked exactly.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (zero on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot freezes this one histogram. Concurrent observations during the
// copy are individually atomic. A nil (disabled) histogram snapshots as
// empty.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	hs := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// The fixed bucket layouts. Registering a histogram with one of these
// keeps snapshots comparable across runs and packages.
var (
	// DurationBuckets is for phase timings, in seconds: 1µs to 10s,
	// decade steps.
	DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	// CountBuckets is for per-iteration sizes (candidates, batch sizes).
	CountBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}
	// SlackBuckets is for deadline slack at satisfaction, in seconds:
	// zero slack to a day.
	SlackBuckets = []float64{0, 1, 10, 60, 300, 900, 3600, 4 * 3600, 24 * 3600}
)

// Registry is a named collection of metrics. Lookups get-or-create, so any
// number of packages (and goroutines) can register the same name and share
// the instrument.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil (disabled) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// BoundsConflictCounter counts Histogram re-registrations whose bucket
// bounds disagree with the instrument already registered under that name.
// The original bounds always win; a silent winner used to make the loser's
// observations land in surprising buckets with no trail, so the conflict is
// now visible in every snapshot.
const BoundsConflictCounter = "obs.histogram_bounds_conflict_total"

// Histogram returns the named histogram, creating it with the given bucket
// bounds (which must be sorted ascending) on first use; an existing
// histogram keeps its original bounds, and a re-registration with different
// bounds increments BoundsConflictCounter. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	} else if !equalBounds(h.bounds, bounds) {
		// r.mu is held: get-or-create the conflict counter directly rather
		// than through Counter, which would deadlock.
		c, have := r.counts[BoundsConflictCounter]
		if !have {
			c = &Counter{}
			r.counts[BoundsConflictCounter] = c
		}
		c.Inc()
	}
	return h
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// entry.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the mean observation, or zero when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear
// interpolation within the bucket holding the q-th observation, the same
// estimate Prometheus's histogram_quantile computes. The first bucket
// interpolates from zero when its upper bound is positive (the metrics
// here — durations, counts — are non-negative); observations beyond the
// last bound cannot be interpolated and report the last bound itself, a
// deliberate underestimate that keeps the result finite. An empty
// histogram reports zero.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, n := range h.Counts {
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1] // overflow bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			} else if h.Bounds[0] <= 0 {
				lo = h.Bounds[0]
			}
			hi := h.Bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.Bounds[len(h.Bounds)-1]
}

// SnapshotValues builds a HistogramSnapshot directly from a value slice
// over the given bucket bounds, without going through a live registry.
// Offline analyzers (the saturation sweep, the audit summarizer) use it to
// report the same interpolated Quantile estimates /metrics exports instead
// of bespoke percentile code.
func SnapshotValues(bounds []float64, values []float64) HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
	for _, v := range values {
		s.Counts[sort.SearchFloat64s(s.Bounds, v)]++
		s.Count++
		s.Sum += v
	}
	return s
}

// Snapshot is a point-in-time copy of every metric in a registry,
// marshalable to JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. Concurrent updates during the snapshot
// are individually atomic but not mutually consistent (this is telemetry,
// not a barrier). A nil registry snapshots as empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// PhaseTimer accumulates wall-clock time spent in one phase (e.g. forest
// replanning). The total is exact and cheap to read back; if the timer was
// registered with a histogram, every span is also observed there in
// seconds. The zero-cost pattern is a Span on the caller's stack:
//
//	span := timer.Start()
//	... phase work ...
//	span.Stop()
type PhaseTimer struct {
	total atomic.Int64 // nanoseconds
	hist  *Histogram
}

// NewPhaseTimer returns a timer feeding the optional histogram.
func NewPhaseTimer(h *Histogram) *PhaseTimer {
	return &PhaseTimer{hist: h}
}

// Phase returns the named phase timer backed by the registry: every span
// feeds a DurationBuckets histogram "<name>_seconds", whose Sum is the
// phase's total wall-clock seconds in snapshots. Nil-safe: a nil registry
// returns a working (but unregistered) timer, so callers can keep exact
// totals with observability disabled.
func (r *Registry) Phase(name string) *PhaseTimer {
	if r == nil {
		return NewPhaseTimer(nil)
	}
	return NewPhaseTimer(r.Histogram(name+"_seconds", DurationBuckets))
}

// Total returns the accumulated wall-clock time.
func (t *PhaseTimer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Span is one in-flight phase measurement.
type Span struct {
	t     *PhaseTimer
	begin time.Time
}

// Start begins a span. Safe on a nil timer (Stop becomes a no-op).
func (t *PhaseTimer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, begin: time.Now()}
}

// Stop ends the span, accumulates it, and returns its duration.
func (s Span) Stop() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.begin)
	s.t.total.Add(int64(d))
	s.t.hist.Observe(d.Seconds())
	return d
}
