package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// EventKind discriminates scheduling events.
type EventKind uint8

// The event taxonomy. Field semantics per kind are documented in DESIGN.md
// "Observability"; unused fields are zero.
const (
	// EvIteration ends one select-and-commit round; N is the number of
	// candidate communication steps considered.
	EvIteration EventKind = iota + 1
	// EvForestComputed is one Dijkstra run charged to the schedule: Item
	// is the item whose forest was (re)computed. Forests prefetched by a
	// parallel batch emit this at first use, exactly where the serial
	// path would have computed them.
	EvForestComputed
	// EvForestCacheHit is a reuse of a cached forest where the paper's
	// described implementation would have re-run Dijkstra.
	EvForestCacheHit
	// EvForestInvalidated is a dropped cached forest; Reason says why and
	// Item whose.
	EvForestInvalidated
	// EvParallelBatch is one iteration-top replan batch run on the worker
	// pool; N is the number of forests computed in the batch.
	EvParallelBatch
	// EvTransferBooked is a committed transfer: Item over Link arriving
	// at Machine, At the start instant (ns), Value the duration in
	// seconds.
	EvTransferBooked
	// EvRequestSatisfied is a request deadline met: Item/Req identify the
	// request, Machine the destination, At the arrival instant (ns), and
	// Value the deadline slack in seconds.
	EvRequestSatisfied
	// EvItemDead marks an item the planner will never consider again;
	// Reason distinguishes no-open-requests from unreachable.
	EvItemDead
	// EvEpochReplan is one dynamic-simulator re-planning epoch: At the
	// epoch instant (ns), N the transfers newly aborted by this epoch's
	// event batch.
	EvEpochReplan
	// EvRelaxBatch is one merged-relaxation walk (dijkstra.ComputeBatch):
	// N is the number of forests relaxed together in the walk. A parallel
	// prefetch emits one per worker chunk; a serial prefetch emits one per
	// iteration-top batch.
	EvRelaxBatch
)

var eventKindNames = map[EventKind]string{
	EvIteration:         "iteration",
	EvForestComputed:    "forest_computed",
	EvForestCacheHit:    "forest_cache_hit",
	EvForestInvalidated: "forest_invalidated",
	EvParallelBatch:     "parallel_batch",
	EvTransferBooked:    "transfer_booked",
	EvRequestSatisfied:  "request_satisfied",
	EvItemDead:          "item_dead",
	EvEpochReplan:       "epoch_replan",
	EvRelaxBatch:        "relax_batch",
}

// String returns the snake_case event name used in JSONL traces.
func (k EventKind) String() string {
	if n, ok := eventKindNames[k]; ok {
		return n
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Reason qualifies an event (invalidations and item deaths).
type Reason uint8

// The reasons.
const (
	ReasonNone Reason = iota
	// ReasonOwner: the committed item's own forest is always dropped (it
	// gained a holder, so its labels can improve).
	ReasonOwner
	// ReasonConflict: a committed transfer overlapped a resource the
	// cached forest was counting on. These are the invalidations
	// Stats.Invalidations counts.
	ReasonConflict
	// ReasonParanoid: paranoid mode drops every cached forest on every
	// commit.
	ReasonParanoid
	// ReasonNoOpenRequests: every request of the item is satisfied or
	// closed by a late copy.
	ReasonNoOpenRequests
	// ReasonUnsatisfiable: the item has open requests but no satisfiable
	// destination in the current resource state.
	ReasonUnsatisfiable
	// ReasonFloor: the planning floor advanced past a hop the cached
	// forest had planned, so the forest may no longer be achievable
	// (incremental epochs carry the plan cache across floor advances).
	ReasonFloor
)

var reasonNames = map[Reason]string{
	ReasonNone:           "",
	ReasonOwner:          "owner",
	ReasonConflict:       "conflict",
	ReasonParanoid:       "paranoid",
	ReasonNoOpenRequests: "no_open_requests",
	ReasonUnsatisfiable:  "unsatisfiable",
	ReasonFloor:          "floor",
}

// String returns the snake_case reason name ("" for none).
func (r Reason) String() string { return reasonNames[r] }

// MarshalJSON renders the reason as its name.
func (r Reason) MarshalJSON() ([]byte, error) { return json.Marshal(r.String()) }

// Event is one structured scheduling occurrence. Only the fields the kind
// documents are meaningful; the rest are zero.
type Event struct {
	Kind EventKind `json:"kind"`
	// At is a simulation instant in nanoseconds (the scheduler's clock,
	// not wall time).
	At int64 `json:"at,omitempty"`
	// Item, Req, Link, and Machine identify model entities.
	Item    int `json:"item"`
	Req     int `json:"req,omitempty"`
	Link    int `json:"link,omitempty"`
	Machine int `json:"machine,omitempty"`
	// N is a generic count (candidates, batch size, aborted transfers).
	N int `json:"n,omitempty"`
	// Value is a generic magnitude (seconds of slack or duration).
	Value  float64 `json:"value,omitempty"`
	Reason Reason  `json:"reason,omitempty"`
}

// Sink receives emitted events. Implementations need not be goroutine-safe
// when driven through a Tracer (the tracer serializes); MemorySink and
// JSONLSink lock anyway so they are safe standalone.
type Sink interface {
	Emit(Event)
}

// Discard drops every event.
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Emit(Event) {}

// MemorySink retains every event in order; for tests and the trace/stats
// equivalence oracle.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Count returns how many events of the kind were emitted.
func (m *MemorySink) Count(k EventKind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for i := range m.events {
		if m.events[i].Kind == k {
			n++
		}
	}
	return n
}

// SumN returns the sum of the N field over events of the kind.
func (m *MemorySink) SumN(k EventKind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for i := range m.events {
		if m.events[i].Kind == k {
			n += m.events[i].N
		}
	}
	return n
}

// JSONLSink writes one JSON object per event. Writes are buffered; call
// Close (or Flush) when done. The first write error is sticky and
// reported by Close.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSONL to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit encodes the event as one line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Close flushes the buffer and returns the first error encountered. It
// does not close the underlying writer.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// Tee returns a sink fanning every event out to each of sinks in order.
// Nil sinks are skipped; with zero (or all-nil) sinks the result behaves
// like Discard. A single non-nil sink is returned unwrapped.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return Discard
	case 1:
		return kept[0]
	}
	return teeSink(kept)
}

type teeSink []Sink

func (t teeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// DefaultRingSize is how many recent events a Tracer retains for
// post-mortem inspection.
const DefaultRingSize = 4096

// Tracer emits scheduling events: each event goes to the sink (if any) and
// into a fixed ring buffer of recent events. A nil *Tracer is the disabled
// tracer — Emit returns immediately — and instrumented code guards event
// construction with Enabled so a disabled run never even builds the Event
// value (the fast path the BenchmarkScheduleWithPlanCache acceptance bound
// holds against).
type Tracer struct {
	mu      sync.Mutex
	sink    Sink
	ring    []Event
	next    int
	total   uint64
	dropped uint64

	// droppedCounter, when set (NewTraced wires it to the registry's
	// trace.dropped_events_total), mirrors the dropped count into the
	// metrics snapshot so ring truncation is visible alongside every
	// other metric.
	droppedCounter *Counter
}

// NewTracer returns a tracer with the given ring capacity (DefaultRingSize
// when ≤ 0) forwarding to sink (which may be nil to only ring-buffer).
func NewTracer(ringSize int, sink Sink) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{sink: sink, ring: make([]Event, 0, ringSize)}
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. Safe on a nil receiver (no-op) and for
// concurrent use.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % cap(t.ring)
		t.dropped++
		t.droppedCounter.Inc()
	}
	t.total++
	if t.sink != nil {
		t.sink.Emit(e)
	}
	t.mu.Unlock()
}

// Total returns how many events were emitted over the tracer's lifetime
// (zero on a nil receiver).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events have been overwritten out of the ring —
// emitted, forwarded to the sink, but no longer retrievable via Recent.
// Zero on a nil receiver.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// RingSize returns the ring capacity (zero on a nil receiver).
func (t *Tracer) RingSize() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// Recent returns the ring-buffered events, oldest first (nil on a nil
// receiver).
func (t *Tracer) Recent() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}
