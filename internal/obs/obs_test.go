package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("same name returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Errorf("gauge = %v, want 3.25", got)
	}
	g.SetMax(1)
	if got := g.Value(); got != 3.25 {
		t.Errorf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(7.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("SetMax = %v, want 7.5", got)
	}
	// Bit-exactness: an awkward float must round-trip through the gauge.
	v := math.Nextafter(1234.5, 2000)
	g.Set(v)
	if got := g.Value(); got != v {
		t.Errorf("gauge not bit-exact: %v != %v", got, v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	want := []int64{2, 2, 1, 1} // ≤1: {0.5, 1}; ≤10: {2, 10}; ≤100: {11}; over: {1000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if got := s.Sum; got != 0.5+1+2+10+11+1000 {
		t.Errorf("sum = %v", got)
	}
	if got := s.Mean(); got != s.Sum/6 {
		t.Errorf("mean = %v", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("g")
	g.Set(1)
	g.SetMax(2)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("h", CountBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram observed")
	}
	var tr *Tracer
	tr.Emit(Event{Kind: EvIteration})
	if tr.Enabled() || tr.Total() != 0 || tr.Recent() != nil {
		t.Error("nil tracer not disabled")
	}
	var o *Obs
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x", CountBuckets).Observe(1)
	if o.Trace().Enabled() {
		t.Error("nil obs tracer enabled")
	}
	span := o.Phase("p").Start()
	if span.Stop() < 0 {
		t.Error("negative span")
	}
	snap := o.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil obs snapshot not empty")
	}
	if s := r.Snapshot(); s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Error("nil registry snapshot has nil maps")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("c").Inc()
				r.Gauge("hw").SetMax(float64(w*each + i))
				r.Histogram("h", CountBuckets).Observe(1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("hw").Value(); got != workers*each-1 {
		t.Errorf("high water = %v, want %d", got, workers*each-1)
	}
	if got := r.Histogram("h", CountBuckets).Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
}

func TestPhaseTimerAccumulates(t *testing.T) {
	r := NewRegistry()
	p := r.Phase("replan")
	span := p.Start()
	time.Sleep(time.Millisecond)
	d := span.Stop()
	if d <= 0 || p.Total() < d {
		t.Errorf("span %v, total %v", d, p.Total())
	}
	s := r.Snapshot()
	h, ok := s.Histograms["replan_seconds"]
	if !ok || h.Count != 1 {
		t.Fatalf("phase histogram missing or empty: %+v", s.Histograms)
	}
	if math.Abs(h.Sum-p.Total().Seconds()) > 1e-9 {
		t.Errorf("histogram sum %v != timer total %v", h.Sum, p.Total().Seconds())
	}
}

func TestTracerRingAndSinks(t *testing.T) {
	mem := &MemorySink{}
	tr := NewTracer(4, mem)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Kind: EvIteration, N: i})
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d, want 6", tr.Total())
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(recent))
	}
	for i, e := range recent {
		if e.N != i+2 {
			t.Errorf("ring[%d].N = %d, want %d (oldest-first)", i, e.N, i+2)
		}
	}
	if got := mem.Count(EvIteration); got != 6 {
		t.Errorf("memory sink saw %d events, want all 6", got)
	}
	if got := mem.SumN(EvIteration); got != 0+1+2+3+4+5 {
		t.Errorf("SumN = %d", got)
	}
	Discard.Emit(Event{Kind: EvItemDead})
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Kind: EvTransferBooked, Item: 3, Link: 7, Machine: 2, At: 42, Value: 1.5})
	s.Emit(Event{Kind: EvForestInvalidated, Item: 1, Reason: ReasonConflict})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "transfer_booked" || first["item"] != float64(3) || first["link"] != float64(7) {
		t.Errorf("first line decoded to %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["reason"] != "conflict" {
		t.Errorf("reason = %v, want conflict", second["reason"])
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	o := New()
	o.Counter("core.commits_total").Add(12)
	o.Gauge("run.weighted_value").Set(987.5)
	o.Histogram("core.replan_seconds", DurationBuckets).Observe(0.003)
	var buf bytes.Buffer
	if err := o.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Counters["core.commits_total"] != 12 {
		t.Errorf("counter lost: %+v", back.Counters)
	}
	if back.Gauges["run.weighted_value"] != 987.5 {
		t.Errorf("gauge lost: %+v", back.Gauges)
	}
	if h := back.Histograms["core.replan_seconds"]; h.Count != 1 {
		t.Errorf("histogram lost: %+v", h)
	}
}

func TestWithRingSizeAndDroppedCounter(t *testing.T) {
	o := NewTraced(Discard, WithRingSize(2))
	if got := o.Tracer.RingSize(); got != 2 {
		t.Fatalf("ring size = %d, want 2", got)
	}
	for i := 0; i < 5; i++ {
		o.Tracer.Emit(Event{Kind: EvIteration, N: i})
	}
	if got := o.Tracer.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if got := o.Snapshot().Counters["trace.dropped_events_total"]; got != 3 {
		t.Errorf("trace.dropped_events_total = %d, want 3", got)
	}
	if got := o.Tracer.Total(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	if got := len(o.Tracer.Recent()); got != 2 {
		t.Errorf("recent = %d events, want 2", got)
	}

	// Default size when the option is omitted or non-positive.
	if got := NewTraced(Discard).Tracer.RingSize(); got != DefaultRingSize {
		t.Errorf("default ring size = %d, want %d", got, DefaultRingSize)
	}
	if got := NewTraced(Discard, WithRingSize(-1)).Tracer.RingSize(); got != DefaultRingSize {
		t.Errorf("ring size with -1 = %d, want %d", got, DefaultRingSize)
	}
	var nilT *Tracer
	if nilT.Dropped() != 0 || nilT.RingSize() != 0 {
		t.Error("nil tracer reports dropped events or a ring")
	}
}

func TestTeeSink(t *testing.T) {
	a, b := &MemorySink{}, &MemorySink{}
	tee := Tee(a, nil, b)
	tee.Emit(Event{Kind: EvIteration})
	tee.Emit(Event{Kind: EvItemDead})
	if a.Count(EvIteration) != 1 || b.Count(EvIteration) != 1 || b.Count(EvItemDead) != 1 {
		t.Errorf("tee did not fan out: a=%v b=%v", a.Events(), b.Events())
	}
	if got := Tee(); got != Discard {
		t.Error("empty Tee should be Discard")
	}
	if got := Tee(nil, a); got != Sink(a) {
		t.Error("single-sink Tee should unwrap")
	}
}

func TestWritePrometheus(t *testing.T) {
	o := New()
	o.Counter("state.slot_query_total").Add(42)
	v := math.Nextafter(987.5, 1000) // awkward float: must round-trip bit-exactly
	o.Gauge("run.weighted_value").Set(v)
	h := o.Histogram("h", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(x)
	}
	var buf bytes.Buffer
	if err := o.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	wantLines := []string{
		"# TYPE state_slot_query_total counter",
		"state_slot_query_total 42",
		"# TYPE run_weighted_value gauge",
		"# TYPE h histogram",
		`h_bucket{le="1"} 2`,   // cumulative: {0.5, 1}
		`h_bucket{le="10"} 4`,  // + {2, 10}
		`h_bucket{le="100"} 5`, // + {11}
		`h_bucket{le="+Inf"} 6`,
		"h_count 6",
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Bit-exact gauge round-trip through the text format.
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "run_weighted_value ") {
			continue
		}
		back, err := strconv.ParseFloat(strings.TrimPrefix(line, "run_weighted_value "), 64)
		if err != nil {
			t.Fatalf("gauge value does not parse: %v", err)
		}
		if back != v {
			t.Errorf("gauge round-trip %v != %v", back, v)
		}
	}

	// Every non-comment line must match "name value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"run.weighted_value":         "run_weighted_value",
		"trace.dropped_events_total": "trace_dropped_events_total",
		"ok_name":                    "ok_name",
		"9leading":                   "_leading",
		"a-b c":                      "a_b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEventKindNames(t *testing.T) {
	kinds := []EventKind{EvIteration, EvForestComputed, EvForestCacheHit, EvForestInvalidated,
		EvParallelBatch, EvTransferBooked, EvRequestSatisfied, EvItemDead, EvEpochReplan}
	seen := map[string]bool{}
	for _, k := range kinds {
		n := k.String()
		if n == "unknown" || seen[n] {
			t.Errorf("kind %d has bad or duplicate name %q", k, n)
		}
		seen[n] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
	if fmt.Sprint(ReasonConflict) != "conflict" {
		t.Error("reason name")
	}
}
