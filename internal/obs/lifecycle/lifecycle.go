// Package lifecycle is the admission service's request-scoped audit
// pipeline: one wide, schema-versioned record per admission decision,
// carrying the submission's whole lifecycle timeline (received → enqueued
// → epoch-start → planned → decided → settled, on both the virtual and the
// wall clock), the context at each hop (intake queue depth at arrival,
// epoch path, batch size, replayed-transfer count), and the outcome detail
// (per-request verdicts with blame, the objective delta of a kept
// preemption, the retry-after of a shed submission).
//
// Records are emitted as JSONL — one line per decision, canonical field
// order — and kept in memory indexed by ticket, so a running service can
// answer "why was request 4711 rejected and how long did it queue" live
// (GET /v1/requests/{id}/trace), stream the full log (GET /v1/audit), and
// persist it (stagesvc -audit-out). In deterministic mode (the virtual
// clock) every wall-clock field is omitted, which makes the audit stream
// byte-stable across replays of the same canonical trace — the property
// the replay golden test pins.
//
// The recorder also aggregates: every decided request feeds a
// per-priority-class decision-latency histogram plus live p50/p99 gauges
// (via obs.HistogramSnapshot.Quantile), and an optional SLO budget counts
// violations in serve.slo_decision_latency_violations_total. A nil
// *Recorder is the disabled state: every method no-ops, so the admission
// hot path stays allocation-free when auditing is off.
package lifecycle

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"datastaging/internal/obs"
)

// SchemaVersion is stamped into every record; consumers reject lines whose
// schema they do not understand instead of misparsing them.
const SchemaVersion = 1

// Kind classifies a record.
type Kind string

const (
	// KindDecision: the submission's first verdict, assigned by its
	// admission epoch.
	KindDecision Kind = "decision"
	// KindRevision: a later epoch changed an earlier verdict (late
	// admission, preemption).
	KindRevision Kind = "revision"
	// KindBackpressure: the submission was shed at the door with a full
	// intake queue (HTTP 429); it never received a ticket.
	KindBackpressure Kind = "backpressure"
)

// The lifecycle stages, in timeline order.
const (
	StageReceived   = "received"
	StageEnqueued   = "enqueued"
	StageEpochStart = "epoch_start"
	StagePlanned    = "planned"
	StageDecided    = "decided"
	StageSettled    = "settled"
)

// Hop is one timeline entry: where the submission was at a virtual
// instant, and — in wall-clock mode — how many wall seconds after receipt
// it got there. WallS is omitted in deterministic mode so replayed audit
// streams are byte-stable.
type Hop struct {
	Stage string `json:"stage"`
	// V is the virtual instant, nanoseconds since the scheduling epoch.
	V int64 `json:"v"`
	// WallS is wall-clock seconds since the received hop (0 there).
	WallS float64 `json:"wallS,omitempty"`
}

// RequestOutcome is the verdict of one request of the submission.
type RequestOutcome struct {
	Item     int    `json:"item"`
	Index    int    `json:"index"`
	Machine  int    `json:"machine"`
	Priority int    `json:"priority"`
	Status   string `json:"status"`
	Deadline int64  `json:"deadline"`
	// Completion is the committed delivery instant (admitted only).
	Completion int64 `json:"completion,omitempty"`
	// Reason classifies a rejection or preemption.
	Reason string `json:"reason,omitempty"`
	// BlamedLink is the explain blame of a starved rejection (-1 none).
	BlamedLink int `json:"blamedLink"`
}

// Record is one wide audit event: everything known about one admission
// decision, on one JSONL line.
type Record struct {
	Schema int    `json:"schema"`
	Seq    int    `json:"seq"`
	Kind   Kind   `json:"kind"`
	Ticket string `json:"ticket,omitempty"`
	// Item is the scenario item id assigned at admission (-1 for
	// backpressure records, which never got one).
	Item int    `json:"item"`
	Name string `json:"name,omitempty"`
	// Timeline is the lifecycle, in stage order with non-decreasing
	// virtual and wall stamps.
	Timeline []Hop `json:"timeline"`
	// QueueDepth is the intake depth when the submission arrived (the
	// number of submissions already pending ahead of it).
	QueueDepth int `json:"queueDepth"`
	// Epoch context: the ordinal and instant of the deciding admission
	// epoch, whether it replanned incrementally or via full history
	// replay, how many submissions flushed with this one, and the
	// full-replay cost actually paid.
	Epoch             int    `json:"epoch,omitempty"`
	EpochAt           int64  `json:"epochAt,omitempty"`
	EpochPath         string `json:"epochPath,omitempty"`
	BatchSize         int    `json:"batchSize,omitempty"`
	ReplayedTransfers int    `json:"replayedTransfers,omitempty"`
	DeltaItems        int    `json:"deltaItems,omitempty"`
	// Status aggregates the per-request verdicts (admitted / rejected /
	// preempted), or "backpressure" for a shed submission.
	Status   string           `json:"status"`
	Requests []RequestOutcome `json:"requests,omitempty"`
	// ObjectiveDelta is the weighted-objective gain of the kept
	// preemption displacement in the deciding epoch (present only when
	// one happened).
	ObjectiveDelta float64 `json:"objectiveDelta,omitempty"`
	// RetryAfterS echoes the backpressure retry hint, seconds.
	RetryAfterS float64 `json:"retryAfterS,omitempty"`
	// Shard is the admission shard that decided the submission, present
	// only when the record came from a sharded service (stagesvc -shards):
	// several per-shard engines share one recorder there, and machine and
	// link indices inside the record are local to this shard's projected
	// sub-network.
	Shard *int `json:"shard,omitempty"`
	// DecisionLatencyS is the wall-clock seconds from receipt to verdict.
	// Omitted in deterministic mode (see DecisionLatency).
	DecisionLatencyS float64 `json:"decisionLatencyS,omitempty"`
}

// DecisionLatency returns the latency the per-class histograms observe
// for this record: the wall-clock receipt→verdict duration when recorded,
// otherwise the virtual queue wait (epoch instant minus received instant)
// — the deterministic stand-in a virtual-clock run measures. Zero when the
// record carries neither (backpressure).
func (r *Record) DecisionLatency() float64 {
	if r.DecisionLatencyS > 0 {
		return r.DecisionLatencyS
	}
	if len(r.Timeline) == 0 || r.EpochAt == 0 {
		return 0
	}
	if d := r.EpochAt - r.Timeline[0].V; d > 0 {
		return float64(d) / float64(time.Second)
	}
	return 0
}

// knownStatuses mirrors serve's verdict vocabulary without importing it
// (serve imports lifecycle).
var knownStatuses = map[string]bool{
	"queued": true, "admitted": true, "rejected": true,
	"preempted": true, "backpressure": true,
}

// Validate checks the record against the schema contract the audit smoke
// validates on every line: version match, known kind and status, a
// non-empty timeline with canonical stage order and monotone virtual and
// wall stamps, and per-request outcomes with known statuses.
func (r *Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("lifecycle: schema %d, want %d", r.Schema, SchemaVersion)
	}
	switch r.Kind {
	case KindDecision, KindRevision, KindBackpressure:
	default:
		return fmt.Errorf("lifecycle: unknown kind %q", r.Kind)
	}
	if !knownStatuses[r.Status] {
		return fmt.Errorf("lifecycle: unknown status %q", r.Status)
	}
	if len(r.Timeline) == 0 {
		return fmt.Errorf("lifecycle: empty timeline")
	}
	for i, hop := range r.Timeline {
		if hop.Stage == "" {
			return fmt.Errorf("lifecycle: timeline[%d] has no stage", i)
		}
		if i == 0 {
			continue
		}
		prev := r.Timeline[i-1]
		if hop.V < prev.V {
			return fmt.Errorf("lifecycle: timeline %s..%s goes back in virtual time (%d < %d)",
				prev.Stage, hop.Stage, hop.V, prev.V)
		}
		if hop.WallS < prev.WallS {
			return fmt.Errorf("lifecycle: timeline %s..%s goes back in wall time (%g < %g)",
				prev.Stage, hop.Stage, hop.WallS, prev.WallS)
		}
	}
	if r.Kind != KindBackpressure && r.Ticket == "" {
		return fmt.Errorf("lifecycle: %s record without a ticket", r.Kind)
	}
	for i, rq := range r.Requests {
		if !knownStatuses[rq.Status] {
			return fmt.Errorf("lifecycle: request %d has unknown status %q", i, rq.Status)
		}
	}
	return nil
}

// Encode renders the record as its canonical JSONL line (single line,
// fixed field order, trailing newline) — the exact bytes the sink stream,
// the bulk export, and the byte-stability test all share.
func Encode(r *Record) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Options configures a Recorder.
type Options struct {
	// Obs receives the per-class latency histograms, quantile gauges, SLO
	// counters, and the audit.records_total counter. May be nil.
	Obs *obs.Obs
	// Sink, when non-nil, receives every record as a JSONL line at append
	// time (stagesvc -audit-out). Write errors are sticky; see SinkErr.
	Sink io.Writer
	// Deterministic omits every wall-clock field so the stream is
	// byte-stable across replays. serve.New forces it on for
	// virtual-clock engines.
	Deterministic bool
	// SLO is the per-request decision-latency budget; a decided request
	// whose latency exceeds it increments
	// serve.slo_decision_latency_violations_total (and its class
	// counter). Zero disables SLO accounting.
	SLO time.Duration
}

// classInst is the per-priority-class instrument set.
type classInst struct {
	hist       *obs.Histogram
	p50, p99   *obs.Gauge
	violations *obs.Counter
}

// Recorder is the audit pipeline: appends records, streams them to the
// sink, indexes them by ticket, and feeds the per-class latency
// aggregates. All methods are safe on a nil receiver (the disabled state)
// and safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	opts Options

	seq      int
	all      []*Record
	byTicket map[string][]*Record
	sink     *bufio.Writer
	sinkErr  error

	classes     map[int]*classInst
	mRecords    *obs.Counter
	mViolations *obs.Counter
}

// New returns an enabled recorder.
func New(opts Options) *Recorder {
	r := &Recorder{
		opts:     opts,
		byTicket: make(map[string][]*Record),
		classes:  make(map[int]*classInst),
		mRecords: opts.Obs.Counter("audit.records_total"),
		mViolations: opts.Obs.Counter(
			"serve.slo_decision_latency_violations_total"),
	}
	if opts.Sink != nil {
		r.sink = bufio.NewWriter(opts.Sink)
	}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SetDeterministic switches wall-field omission; serve.New calls it so the
// stream's determinism always matches the engine's clock mode.
func (r *Recorder) SetDeterministic(on bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.opts.Deterministic = on
	r.mu.Unlock()
}

// Deterministic reports whether wall-clock fields are omitted.
func (r *Recorder) Deterministic() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Deterministic
}

// Append stamps the record (schema, sequence number; wall fields cleared
// in deterministic mode), stores it, streams it to the sink, and folds
// every decided request into its priority class's latency histogram,
// quantile gauges, and SLO counters. The record must not be mutated by the
// caller afterwards.
func (r *Recorder) Append(rec *Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec.Schema = SchemaVersion
	rec.Seq = r.seq
	r.seq++
	if r.opts.Deterministic {
		rec.DecisionLatencyS = 0
		for i := range rec.Timeline {
			rec.Timeline[i].WallS = 0
		}
	}
	r.all = append(r.all, rec)
	if rec.Ticket != "" {
		r.byTicket[rec.Ticket] = append(r.byTicket[rec.Ticket], rec)
	}
	r.mRecords.Inc()
	if r.sink != nil && r.sinkErr == nil {
		line, err := Encode(rec)
		if err == nil {
			_, err = r.sink.Write(line)
		}
		if err == nil {
			err = r.sink.Flush()
		}
		r.sinkErr = err
	}
	if rec.Kind != KindDecision {
		// Backpressure sheds never got a decision; revisions re-report a
		// ticket whose decision latency was already observed.
		return
	}
	lat := rec.DecisionLatency()
	for i := range rec.Requests {
		r.observeLocked(rec.Requests[i].Priority, lat)
	}
}

// observeLocked feeds one decided request's latency into its class
// instruments. Call with r.mu held.
func (r *Recorder) observeLocked(class int, lat float64) {
	ci, ok := r.classes[class]
	if !ok {
		ci = &classInst{
			hist: r.opts.Obs.Histogram(
				fmt.Sprintf("serve.decision_latency_class%d_seconds", class),
				obs.DurationBuckets),
			p50: r.opts.Obs.Gauge(
				fmt.Sprintf("serve.decision_latency_class%d_p50_seconds", class)),
			p99: r.opts.Obs.Gauge(
				fmt.Sprintf("serve.decision_latency_class%d_p99_seconds", class)),
			violations: r.opts.Obs.Counter(
				fmt.Sprintf("serve.slo_decision_latency_class%d_violations_total", class)),
		}
		r.classes[class] = ci
	}
	ci.hist.Observe(lat)
	if ci.hist != nil {
		s := ci.hist.Snapshot()
		ci.p50.Set(s.Quantile(0.50))
		ci.p99.Set(s.Quantile(0.99))
	}
	if r.opts.SLO > 0 && lat > r.opts.SLO.Seconds() {
		r.mViolations.Inc()
		ci.violations.Inc()
	}
}

// Len returns the number of records appended so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.all)
}

// SinkErr reports the first sink write error, if any.
func (r *Recorder) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// ForTicket returns every record of one ticket, in append order. Nil when
// the ticket has none (or the recorder is disabled).
func (r *Recorder) ForTicket(id string) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	recs := r.byTicket[id]
	if len(recs) == 0 {
		return nil
	}
	out := make([]Record, len(recs))
	for i, rec := range recs {
		out[i] = *rec
	}
	return out
}

// Records returns a copy of every record, in sequence order.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.all))
	for i, rec := range r.all {
		out[i] = *rec
	}
	return out
}

// WriteJSONL streams every record to w as canonical JSONL, the GET
// /v1/audit bulk export. The bytes are identical to what a sink received
// line by line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, rec := range r.Records() {
		line, err := Encode(&rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses an audit stream (the sink file or the /v1/audit body),
// validating every line. It is the strict counterpart of WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("lifecycle: line %d: %w", len(out), err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("lifecycle: line %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ClassSummary aggregates the audit stream per priority class: how many
// requests of that class were offered, how each fared after every
// revision, and the decision-latency quantiles (interpolated from
// DurationBuckets exactly like the /metrics gauges).
type ClassSummary struct {
	Class         int
	Requests      int
	Admitted      int
	Rejected      int
	Preempted     int
	AdmissionRate float64
	P50, P99      time.Duration
}

// Summarize folds an audit stream into per-class summaries, sorted by
// class. Verdicts come from each ticket's latest record (so a late
// admission or preemption counts at its final state); latencies from each
// ticket's decision record (the wait the submitter actually experienced).
func Summarize(recs []Record) []ClassSummary {
	latest := make(map[string]*Record)
	latency := make(map[string]float64)
	for i := range recs {
		rec := &recs[i]
		if rec.Kind == KindBackpressure {
			continue
		}
		if cur, ok := latest[rec.Ticket]; !ok || rec.Seq >= cur.Seq {
			latest[rec.Ticket] = rec
		}
		if rec.Kind == KindDecision {
			latency[rec.Ticket] = rec.DecisionLatency()
		}
	}
	counts := make(map[int]*ClassSummary)
	lats := make(map[int][]float64)
	class := func(p int) *ClassSummary {
		cs, ok := counts[p]
		if !ok {
			cs = &ClassSummary{Class: p}
			counts[p] = cs
		}
		return cs
	}
	for ticket, rec := range latest {
		for _, rq := range rec.Requests {
			cs := class(rq.Priority)
			cs.Requests++
			switch rq.Status {
			case "admitted":
				cs.Admitted++
			case "preempted":
				cs.Preempted++
			default:
				cs.Rejected++
			}
			lats[rq.Priority] = append(lats[rq.Priority], latency[ticket])
		}
	}
	out := make([]ClassSummary, 0, len(counts))
	for p, cs := range counts {
		if cs.Requests > 0 {
			cs.AdmissionRate = float64(cs.Admitted) / float64(cs.Requests)
		}
		s := obs.SnapshotValues(obs.DurationBuckets, lats[p])
		cs.P50 = time.Duration(s.Quantile(0.50) * float64(time.Second))
		cs.P99 = time.Duration(s.Quantile(0.99) * float64(time.Second))
		out = append(out, *cs)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Class < out[b].Class })
	return out
}
