package lifecycle

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"datastaging/internal/obs"
)

func decisionRecord(ticket string, class int, latS float64) *Record {
	return &Record{
		Kind:   KindDecision,
		Ticket: ticket,
		Item:   7,
		Timeline: []Hop{
			{Stage: StageReceived, V: 1000},
			{Stage: StageEnqueued, V: 1000},
			{Stage: StageEpochStart, V: 2000, WallS: latS / 2},
			{Stage: StagePlanned, V: 2000, WallS: latS * 0.75},
			{Stage: StageDecided, V: 2000, WallS: latS},
			{Stage: StageSettled, V: 2000, WallS: latS},
		},
		EpochAt: 2000,
		Epoch:   1,
		Status:  "admitted",
		Requests: []RequestOutcome{{
			Item: 7, Index: 0, Machine: 3, Priority: class,
			Status: "admitted", Deadline: 9000, Completion: 5000, BlamedLink: -1,
		}},
		DecisionLatencyS: latS,
	}
}

func TestAppendStoreAndSink(t *testing.T) {
	var sink bytes.Buffer
	o := obs.New()
	r := New(Options{Obs: o, Sink: &sink})

	r.Append(decisionRecord("r-0", 2, 0.010))
	r.Append(decisionRecord("r-1", 0, 0.020))
	rev := decisionRecord("r-0", 2, 0.030)
	rev.Kind = KindRevision
	r.Append(rev)

	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if got := r.ForTicket("r-0"); len(got) != 2 ||
		got[0].Kind != KindDecision || got[1].Kind != KindRevision {
		t.Fatalf("ForTicket(r-0) = %+v, want decision then revision", got)
	}
	if got := r.ForTicket("nope"); got != nil {
		t.Fatalf("ForTicket(nope) = %+v, want nil", got)
	}
	for i, rec := range r.Records() {
		if rec.Seq != i {
			t.Errorf("record %d has seq %d", i, rec.Seq)
		}
		if rec.Schema != SchemaVersion {
			t.Errorf("record %d has schema %d", i, rec.Schema)
		}
		if err := rec.Validate(); err != nil {
			t.Errorf("record %d invalid: %v", i, err)
		}
	}

	// The sink stream and the bulk export are byte-identical.
	var bulk bytes.Buffer
	if err := r.WriteJSONL(&bulk); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(), bulk.Bytes()) {
		t.Errorf("sink stream != bulk export:\n%s\n----\n%s", sink.String(), bulk.String())
	}
	if err := r.SinkErr(); err != nil {
		t.Errorf("SinkErr = %v", err)
	}

	// And the stream parses back, validated line by line.
	recs, err := ReadJSONL(&bulk)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("ReadJSONL returned %d records, want 3", len(recs))
	}

	if got := o.Counter("audit.records_total").Value(); got != 3 {
		t.Errorf("audit.records_total = %d, want 3", got)
	}
}

func TestDeterministicOmitsWallClock(t *testing.T) {
	var sink bytes.Buffer
	r := New(Options{Sink: &sink, Deterministic: true})
	r.Append(decisionRecord("r-0", 1, 0.5))

	line := sink.String()
	for _, banned := range []string{"wallS", "decisionLatencyS"} {
		if strings.Contains(line, banned) {
			t.Errorf("deterministic record leaks %q: %s", banned, line)
		}
	}
	// The latency the aggregates observe falls back to the virtual wait.
	rec := r.Records()[0]
	want := float64(rec.EpochAt-rec.Timeline[0].V) / float64(time.Second)
	if got := rec.DecisionLatency(); got != want {
		t.Errorf("deterministic DecisionLatency = %v, want virtual wait %v", got, want)
	}
}

func TestClassAggregates(t *testing.T) {
	o := obs.New()
	r := New(Options{Obs: o, SLO: 15 * time.Millisecond})
	// Two class-2 decisions (10ms, 30ms) and one class-0 (20ms): two of the
	// three exceed the 15ms SLO.
	r.Append(decisionRecord("r-0", 2, 0.010))
	r.Append(decisionRecord("r-1", 2, 0.030))
	r.Append(decisionRecord("r-2", 0, 0.020))

	snap := o.Snapshot()
	h2, ok := snap.Histograms["serve.decision_latency_class2_seconds"]
	if !ok || h2.Count != 2 {
		t.Fatalf("class-2 histogram missing or wrong count: %+v", h2)
	}
	if got := snap.Gauges["serve.decision_latency_class2_p99_seconds"]; got != h2.Quantile(0.99) {
		t.Errorf("class-2 p99 gauge = %v, want %v", got, h2.Quantile(0.99))
	}
	if got := snap.Counters["serve.slo_decision_latency_violations_total"]; got != 2 {
		t.Errorf("slo violations total = %d, want 2", got)
	}
	if got := snap.Counters["serve.slo_decision_latency_class2_violations_total"]; got != 1 {
		t.Errorf("class-2 slo violations = %d, want 1", got)
	}
	if got := snap.Counters["serve.slo_decision_latency_class0_violations_total"]; got != 1 {
		t.Errorf("class-0 slo violations = %d, want 1", got)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{}
	add := func(r *Record) {
		r.Schema = SchemaVersion
		r.Seq = len(recs)
		recs = append(recs, *r)
	}
	add(decisionRecord("r-0", 2, 0.010)) // admitted
	rej := decisionRecord("r-1", 2, 0.030)
	rej.Status = "rejected"
	rej.Requests[0].Status = "rejected"
	add(rej)
	add(decisionRecord("r-2", 0, 0.020)) // admitted...
	rev := decisionRecord("r-2", 0, 0.040)
	rev.Kind = KindRevision
	rev.Status = "preempted"
	rev.Requests[0].Status = "preempted"
	add(rev) // ...then preempted: final state wins
	add(&Record{Kind: KindBackpressure, Item: -1, Status: "backpressure",
		Timeline: []Hop{{Stage: StageReceived, V: 5}}, RetryAfterS: 1})

	sums := Summarize(recs)
	if len(sums) != 2 {
		t.Fatalf("got %d classes, want 2: %+v", len(sums), sums)
	}
	c0, c2 := sums[0], sums[1]
	if c0.Class != 0 || c2.Class != 2 {
		t.Fatalf("classes out of order: %+v", sums)
	}
	if c0.Requests != 1 || c0.Preempted != 1 || c0.Admitted != 0 {
		t.Errorf("class 0 = %+v, want 1 request preempted", c0)
	}
	if c2.Requests != 2 || c2.Admitted != 1 || c2.Rejected != 1 {
		t.Errorf("class 2 = %+v, want 1 admitted + 1 rejected", c2)
	}
	if c2.AdmissionRate != 0.5 {
		t.Errorf("class 2 admission rate %v, want 0.5", c2.AdmissionRate)
	}
	if c2.P50 <= 0 || c2.P99 < c2.P50 {
		t.Errorf("class 2 quantiles out of order: p50=%v p99=%v", c2.P50, c2.P99)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	good := decisionRecord("r-0", 0, 0.01)
	good.Schema = SchemaVersion
	if err := good.Validate(); err != nil {
		t.Fatalf("good record invalid: %v", err)
	}
	cases := map[string]func(*Record){
		"bad schema":        func(r *Record) { r.Schema = 99 },
		"bad kind":          func(r *Record) { r.Kind = "whatever" },
		"bad status":        func(r *Record) { r.Status = "maybe" },
		"empty timeline":    func(r *Record) { r.Timeline = nil },
		"unnamed stage":     func(r *Record) { r.Timeline[2].Stage = "" },
		"virtual regress":   func(r *Record) { r.Timeline[2].V = 10 },
		"wall regress":      func(r *Record) { r.Timeline[3].WallS = 0.0001 },
		"missing ticket":    func(r *Record) { r.Ticket = "" },
		"bad request state": func(r *Record) { r.Requests[0].Status = "meh" },
	}
	for name, mutate := range cases {
		rec := decisionRecord("r-0", 0, 0.01)
		rec.Schema = SchemaVersion
		mutate(rec)
		if err := rec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the mutant", name)
		}
	}
}

// TestDisabledRecorderZeroAlloc pins the zero-cost-when-disabled contract:
// every hook the admission hot path calls on a nil recorder must not
// allocate.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	rec := decisionRecord("r-0", 0, 0.01)
	allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			t.Fatal("nil recorder claims enabled")
		}
		r.Append(rec)
		_ = r.ForTicket("r-0")
		_ = r.Records()
		_ = r.Len()
		_ = r.Deterministic()
		_ = r.SinkErr()
	})
	if allocs != 0 {
		t.Errorf("nil recorder allocates %.1f per run, want 0", allocs)
	}
}
