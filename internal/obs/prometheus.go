package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric names are mangled to the Prometheus
// grammar — '.' becomes '_', any other invalid rune likewise — so the
// registry's "run.weighted_value" gauge is exposed as
// "run_weighted_value". Values round-trip bit-exactly: floats are
// formatted with the shortest representation that parses back to the same
// float64. Output is deterministic (names sorted within each metric
// family kind).
//
// Histograms are registered with per-bucket counts (counts[i] is the
// number of observations in (bounds[i-1], bounds[i]]); Prometheus buckets
// are cumulative, so the renderer accumulates them and appends the
// mandatory le="+Inf" bucket, _sum, and _count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " counter\n")
		bw.WriteString(pn + " " + strconv.FormatInt(s.Counters[name], 10) + "\n")
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + " " + promFloat(s.Gauges[name]) + "\n")
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " histogram\n")
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			bw.WriteString(pn + `_bucket{le="` + promFloat(bound) + `"} ` +
				strconv.FormatInt(cum, 10) + "\n")
		}
		bw.WriteString(pn + `_bucket{le="+Inf"} ` + strconv.FormatInt(h.Count, 10) + "\n")
		bw.WriteString(pn + "_sum " + promFloat(h.Sum) + "\n")
		bw.WriteString(pn + "_count " + strconv.FormatInt(h.Count, 10) + "\n")
	}

	return bw.Flush()
}

// promName maps a registry metric name onto the Prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with '_'.
func promName(name string) string {
	out := []byte(name)
	for i := 0; i < len(out); i++ {
		c := out[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}

// promFloat formats v with the shortest decimal representation that
// parses back to the identical float64, so scraped values match reported
// ones bit for bit.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
