package obs

import (
	"math"
	"testing"
)

func snapFrom(bounds []float64, values ...float64) HistogramSnapshot {
	r := NewRegistry()
	h := r.Histogram("q", bounds)
	for _, v := range values {
		h.Observe(v)
	}
	return r.Snapshot().Histograms["q"]
}

func TestQuantileInterpolation(t *testing.T) {
	bounds := []float64{1, 2, 4}

	// 10 observations spread evenly through (1, 2]: the median sits 50%
	// into that bucket.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 1.5
	}
	s := snapFrom(bounds, vals...)
	if got, want := s.Quantile(0.5), 1.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	// All mass in one bucket: q walks linearly across it.
	if got, want := s.Quantile(0.1), 1.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.1) = %v, want %v", got, want)
	}
	if got, want := s.Quantile(1), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(1) = %v, want %v", got, want)
	}

	// Mass split across buckets: 5 in (0,1], 5 in (2,4]. The 0.25 point is
	// halfway through the first bucket, which interpolates from zero.
	s = snapFrom(bounds, 0.5, 0.5, 0.5, 0.5, 0.5, 3, 3, 3, 3, 3)
	if got, want := s.Quantile(0.25), 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.25) = %v, want %v", got, want)
	}
	if got, want := s.Quantile(0.75), 3.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.75) = %v, want %v", got, want)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// Observations beyond the last bound clamp to it rather than inventing
	// an upper edge.
	s := snapFrom([]float64{1, 2}, 100, 200, 300)
	if got := s.Quantile(0.99); got != 2 {
		t.Errorf("overflow Quantile = %v, want the last bound 2", got)
	}
	// Out-of-range q is clamped.
	s = snapFrom([]float64{1, 2}, 0.5)
	if got := s.Quantile(-3); got != s.Quantile(0) {
		t.Errorf("Quantile(-3) = %v, want Quantile(0) = %v", got, s.Quantile(0))
	}
	if got := s.Quantile(42); got != s.Quantile(1) {
		t.Errorf("Quantile(42) = %v, want Quantile(1) = %v", got, s.Quantile(1))
	}
	// A first bucket with a non-positive bound does not interpolate from 0.
	s = snapFrom([]float64{-2, -1, 0}, -2, -2)
	if got := s.Quantile(0.5); got > -1 {
		t.Errorf("negative-bucket Quantile = %v, want within [-2,-2]", got)
	}
}

func TestHistogramBoundsConflict(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("dup", []float64{1, 2, 3})
	if got := r.Counter(BoundsConflictCounter).Value(); got != 0 {
		t.Fatalf("conflict counter = %d before any conflict", got)
	}
	// Same bounds: shared instrument, no conflict.
	if h2 := r.Histogram("dup", []float64{1, 2, 3}); h2 != h1 {
		t.Fatal("same-bounds re-register did not return the shared instrument")
	}
	if got := r.Counter(BoundsConflictCounter).Value(); got != 0 {
		t.Fatalf("conflict counter = %d after a same-bounds re-register", got)
	}
	// Conflicting bounds: the original instrument wins, the conflict is
	// counted once per offending call.
	if h3 := r.Histogram("dup", []float64{5, 10}); h3 != h1 {
		t.Fatal("conflicting re-register did not keep the original instrument")
	}
	r.Histogram("dup", nil)
	if got := r.Counter(BoundsConflictCounter).Value(); got != 2 {
		t.Fatalf("conflict counter = %d, want 2", got)
	}
	// The counter itself appears in snapshots.
	if got := r.Snapshot().Counters[BoundsConflictCounter]; got != 2 {
		t.Fatalf("snapshot conflict counter = %d, want 2", got)
	}
}
