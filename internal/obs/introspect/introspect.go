// Package introspect serves a live view into a running scheduler over
// HTTP: the metrics registry in Prometheus text exposition format, the
// tracer's recent-event ring as JSON, a run-information summary with the
// current execution phase, and the standard net/http/pprof profiling
// endpoints — all on one mux, so a single -introspect-addr gives
// dashboards, curl, and profilers the same door. Long stagesim sweeps and
// dynamic runs can be watched while they execute instead of only
// post-mortem.
//
// The server is read-only and purely observational: handlers take
// snapshots of atomic instruments and never block the scheduler. It is
// stdlib-only, like the rest of the obs layer.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"datastaging/internal/obs"
)

// RunInfo summarizes what a process is working on; the CLIs fill it once
// per run. All fields are optional.
type RunInfo struct {
	// Scenario identification.
	Scenario string `json:"scenario,omitempty"`
	Machines int    `json:"machines,omitempty"`
	Links    int    `json:"links,omitempty"`
	Items    int    `json:"items,omitempty"`
	Requests int    `json:"requests,omitempty"`
	// Scheduler is the configured scheduler, e.g. "full_one/C4 at E-U 2".
	Scheduler string `json:"scheduler,omitempty"`
	// Config carries any further key/value configuration worth exposing
	// (weights, parallelism, sweep shape, ...).
	Config map[string]string `json:"config,omitempty"`
}

// Server is the introspection endpoint of one process. A nil *Server is
// disabled: SetPhase and SetRunInfo are no-ops, so callers can thread an
// optional server unconditionally.
type Server struct {
	o *obs.Obs

	mu    sync.Mutex
	info  RunInfo
	phase string
	stats map[string]string
	live  map[string]func() string
}

// NewServer returns a server exposing the given observability handles
// (o may be nil — endpoints then serve empty documents).
func NewServer(o *obs.Obs) *Server {
	return &Server{o: o}
}

// SetRunInfo replaces the run summary served at /runinfo.
func (s *Server) SetRunInfo(info RunInfo) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.info = info
	s.mu.Unlock()
}

// SetPhase updates the live execution phase ("planning", "sweep 3/44",
// "epoch 17", ...) served at /runinfo.
func (s *Server) SetPhase(phase string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.phase = phase
	s.mu.Unlock()
}

// SetStat publishes one live key/value statistic under "stats" in
// /runinfo — small, frequently-updated facts that don't fit the static
// RunInfo (the admission service uses it for the last epoch's
// incremental-vs-full path and delta sizes).
func (s *Server) SetStat(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stats == nil {
		s.stats = make(map[string]string)
	}
	s.stats[key] = value
	s.mu.Unlock()
}

// SetLiveStat registers a computed statistic: fn is evaluated at /runinfo
// render time and its result appears under "stats" alongside SetStat
// values (which a live stat of the same key shadows). Functions must be
// safe to call from the serving goroutine and should read lock-free
// snapshots; the sharded admission service uses this for per-shard epoch
// counters that change on every flush.
func (s *Server) SetLiveStat(key string, fn func() string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.live == nil {
		s.live = make(map[string]func() string)
	}
	s.live[key] = fn
	s.mu.Unlock()
}

// Handler returns the mux serving every introspection endpoint:
//
//	/metrics       Prometheus text exposition of the metrics registry
//	/events        recent tracer events as JSON (ring, total, dropped)
//	/runinfo       run summary, config, and live phase as JSON
//	/debug/pprof/  standard net/http/pprof profiling endpoints
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	s.Register(mux)
	return mux
}

// Register mounts the introspection endpoints (everything Handler serves
// except the index) onto an existing mux, so daemons with their own API
// surface — stagesvc — expose /metrics, /events, /runinfo, and /debug/pprof
// alongside it on one listener.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/events", s.events)
	mux.HandleFunc("/runinfo", s.runinfo)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Start listens on addr and serves the introspection endpoints in the
// background until the listener is closed. It returns the bound listener
// so callers can report the actual address (addr may use port 0) and
// close it on shutdown.
func (s *Server) Start(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, s.Handler()) //nolint:errcheck // best-effort debug endpoint
	return ln, nil
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "datastaging introspection\n\n"+
		"/metrics       metrics registry (Prometheus text format)\n"+
		"/events        recent scheduling events (JSON)\n"+
		"/runinfo       scenario, config, live phase (JSON)\n"+
		"/debug/pprof/  profiling\n")
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.o.Snapshot().WritePrometheus(w); err != nil {
		// Headers are gone; nothing useful to do beyond logging territory.
		_ = err
	}
}

// eventsResponse is the /events document.
type eventsResponse struct {
	// Total events emitted over the process lifetime; Dropped of those
	// overwritten out of the ring (visible only via trace.dropped_events_total
	// and here). RingSize is the ring capacity.
	Total    uint64      `json:"total"`
	Dropped  uint64      `json:"dropped"`
	RingSize int         `json:"ringSize"`
	Events   []obs.Event `json:"events"`
}

func (s *Server) events(w http.ResponseWriter, _ *http.Request) {
	var tr *obs.Tracer
	if s.o != nil {
		tr = s.o.Trace()
	}
	resp := eventsResponse{
		Total:    tr.Total(),
		Dropped:  tr.Dropped(),
		RingSize: tr.RingSize(),
		Events:   tr.Recent(),
	}
	if resp.Events == nil {
		resp.Events = []obs.Event{}
	}
	writeJSON(w, resp)
}

// runinfoResponse is the /runinfo document.
type runinfoResponse struct {
	RunInfo
	Phase string            `json:"phase,omitempty"`
	Stats map[string]string `json:"stats,omitempty"`
}

func (s *Server) runinfo(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := runinfoResponse{RunInfo: s.info, Phase: s.phase}
	if len(s.stats)+len(s.live) > 0 {
		resp.Stats = make(map[string]string, len(s.stats)+len(s.live))
		for k, v := range s.stats {
			resp.Stats[k] = v
		}
	}
	live := make(map[string]func() string, len(s.live))
	for k, fn := range s.live {
		live[k] = fn
	}
	s.mu.Unlock()
	// Live stats are evaluated outside the lock: the functions read their
	// own snapshots and must not be able to deadlock against SetStat.
	for k, fn := range live {
		resp.Stats[k] = fn()
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
