package introspect

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"datastaging/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestMetricsEndpointBitExact(t *testing.T) {
	o := obs.New()
	v := math.Nextafter(1234.5, 2000)
	o.Gauge("run.weighted_value").Set(v)
	o.Counter("core.commits_total").Add(3)

	resp, body := get(t, NewServer(o).Handler(), "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "run_weighted_value ") {
			continue
		}
		found = true
		back, err := strconv.ParseFloat(strings.TrimPrefix(line, "run_weighted_value "), 64)
		if err != nil {
			t.Fatalf("value does not parse: %v", err)
		}
		if back != v {
			t.Errorf("run_weighted_value round-trip %v != %v", back, v)
		}
	}
	if !found {
		t.Errorf("run_weighted_value missing:\n%s", body)
	}
	if !strings.Contains(string(body), "core_commits_total 3\n") {
		t.Errorf("counter missing:\n%s", body)
	}
}

func TestEventsEndpoint(t *testing.T) {
	o := obs.NewTraced(obs.Discard, obs.WithRingSize(2))
	for i := 0; i < 5; i++ {
		o.Tracer.Emit(obs.Event{Kind: obs.EvIteration, N: i})
	}
	_, body := get(t, NewServer(o).Handler(), "/events")
	var resp struct {
		Total    uint64           `json:"total"`
		Dropped  uint64           `json:"dropped"`
		RingSize int              `json:"ringSize"`
		Events   []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("events not JSON: %v\n%s", err, body)
	}
	if resp.Total != 5 || resp.Dropped != 3 || resp.RingSize != 2 || len(resp.Events) != 2 {
		t.Errorf("events response = %+v", resp)
	}
	if resp.Events[0]["kind"] != "iteration" {
		t.Errorf("event kind = %v", resp.Events[0]["kind"])
	}
}

func TestEventsEndpointNoTracer(t *testing.T) {
	_, body := get(t, NewServer(obs.New()).Handler(), "/events")
	var resp struct {
		Events []any `json:"events"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("events not JSON without a tracer: %v\n%s", err, body)
	}
	if len(resp.Events) != 0 {
		t.Errorf("expected empty events, got %v", resp.Events)
	}
}

func TestRunInfoAndPhase(t *testing.T) {
	s := NewServer(obs.New())
	s.SetRunInfo(RunInfo{
		Scenario: "badd-seed42", Machines: 40, Requests: 160,
		Scheduler: "full_one/C4",
		Config:    map[string]string{"weights": "1,10,100"},
	})
	s.SetPhase("sweep 3/44")
	_, body := get(t, s.Handler(), "/runinfo")
	var resp map[string]any
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("runinfo not JSON: %v\n%s", err, body)
	}
	if resp["scenario"] != "badd-seed42" || resp["phase"] != "sweep 3/44" {
		t.Errorf("runinfo = %v", resp)
	}
	if resp["machines"] != float64(40) {
		t.Errorf("machines = %v", resp["machines"])
	}

	// A nil server swallows updates without panicking.
	var nilS *Server
	nilS.SetPhase("x")
	nilS.SetRunInfo(RunInfo{})
}

func TestIndexAndPprofMounted(t *testing.T) {
	h := NewServer(obs.New()).Handler()
	resp, body := get(t, h, "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "/metrics") {
		t.Errorf("index: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get(t, h, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
	resp, _ = get(t, h, "/no-such")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", resp.StatusCode)
	}
}

func TestStartServes(t *testing.T) {
	s := NewServer(obs.New())
	ln, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
