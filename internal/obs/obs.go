package obs

// Obs bundles the two halves of the observability layer. A nil *Obs is the
// disabled state; every accessor is nil-safe and returns disabled
// instruments, so instrumented packages thread a possibly nil *Obs and
// never branch on it themselves (except to skip Event construction, via
// Trace().Enabled()).
type Obs struct {
	// Metrics is the shared registry.
	Metrics *Registry
	// Tracer receives scheduling events; nil disables tracing while
	// keeping metrics.
	Tracer *Tracer
}

// Option configures an Obs at construction time.
type Option func(*options)

type options struct {
	ringSize int
}

// WithRingSize sets the tracer's recent-event ring capacity (default
// DefaultRingSize). Values ≤ 0 keep the default. Only meaningful with
// NewTraced; New has no tracer.
func WithRingSize(n int) Option {
	return func(o *options) { o.ringSize = n }
}

// New returns an Obs with a fresh registry and no tracer.
func New(opts ...Option) *Obs {
	applyOptions(opts)
	return &Obs{Metrics: NewRegistry()}
}

// NewTraced returns an Obs with a fresh registry and a tracer forwarding
// to sink (Discard and MemorySink are common choices). Events that fall
// out of the tracer's recent-event ring increment the registry's
// trace.dropped_events_total counter, so a truncated ring is visible in
// every snapshot rather than silent.
func NewTraced(sink Sink, opts ...Option) *Obs {
	cfg := applyOptions(opts)
	o := &Obs{Metrics: NewRegistry(), Tracer: NewTracer(cfg.ringSize, sink)}
	o.Tracer.droppedCounter = o.Metrics.Counter("trace.dropped_events_total")
	return o
}

func applyOptions(opts []Option) options {
	var cfg options
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Counter returns the named counter (disabled when o is nil).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge (disabled when o is nil).
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram (disabled when o is nil).
func (o *Obs) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, bounds)
}

// Phase returns the named phase timer. Always usable: with o nil the timer
// still accumulates an exact total, it is just not registered anywhere.
func (o *Obs) Phase(name string) *PhaseTimer {
	if o == nil {
		return NewPhaseTimer(nil)
	}
	return o.Metrics.Phase(name)
}

// Trace returns the tracer (nil — disabled — when o is nil).
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Snapshot freezes the registry (empty when o is nil).
func (o *Obs) Snapshot() Snapshot {
	if o == nil {
		return (*Registry)(nil).Snapshot()
	}
	return o.Metrics.Snapshot()
}
