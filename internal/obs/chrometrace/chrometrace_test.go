package chrometrace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"datastaging/internal/core"
	"datastaging/internal/model"
	"datastaging/internal/obs"
	"datastaging/internal/obs/lifecycle"
	"datastaging/internal/testnet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// lineTrace schedules the canonical line fixture deterministically and
// renders it: schedule from the Result, planner track from the captured
// event stream.
func lineTrace(t *testing.T) ([]byte, *core.Result) {
	t.Helper()
	sc := testnet.Line(3, 1<<20, testnet.KBPS(1000), time.Hour)
	mem := &obs.MemorySink{}
	res, err := core.Schedule(sc, core.Config{
		Heuristic:   core.PartialPath,
		Criterion:   core.C3,
		Weights:     model.Weights1x5x10,
		Parallelism: 1,
		Obs:         obs.NewTraced(mem),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, sc, res, mem.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func TestGoldenLine(t *testing.T) {
	got, _ := lineTrace(t)
	golden := filepath.Join("testdata", "line3.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden %s (run with -update to regenerate)\ngot:\n%s", golden, got)
	}
}

// traceFile mirrors the subset of the Chrome trace format the validator
// and viewer rely on.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceStructure(t *testing.T) {
	raw, res := lineTrace(t)
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// The line fixture commits two hops: each must appear as a complete
	// event on its own link track, time-ordered and non-overlapping.
	type track struct{ pid, tid int }
	lastEnd := map[track]float64{}
	lastTs := map[track]float64{}
	transfers := 0
	linkTracks := map[int]bool{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		k := track{e.Pid, e.Tid}
		if e.Ts < lastTs[k] {
			t.Errorf("track %v not time-ordered: ts %v after %v", k, e.Ts, lastTs[k])
		}
		lastTs[k] = e.Ts
		if e.Cat == "transfer" {
			transfers++
			linkTracks[e.Tid] = true
			if e.Ph != "X" || e.Dur <= 0 {
				t.Errorf("transfer event %q not a complete span: ph=%q dur=%v", e.Name, e.Ph, e.Dur)
			}
			if e.Ts < lastEnd[k] {
				t.Errorf("transfers overlap on track %v: start %v before previous end %v", k, e.Ts, lastEnd[k])
			}
			lastEnd[k] = e.Ts + e.Dur
		}
	}
	if want := len(res.Transfers); transfers != want {
		t.Errorf("trace has %d transfer events, schedule committed %d", transfers, want)
	}
	if len(linkTracks) != 2 {
		t.Errorf("expected 2 distinct link tracks for the 2-hop line, got %d", len(linkTracks))
	}

	// The satisfied request must be visible both as a planner instant and
	// as a slack arg on the final transfer.
	sawSatisfied, sawSlack := false, false
	for _, e := range tf.TraceEvents {
		if e.Ph == "i" && e.Name == "satisfied rq[0,0]" {
			sawSatisfied = true
		}
		if e.Cat == "transfer" {
			if _, ok := e.Args["satisfies"]; ok {
				sawSlack = true
			}
		}
	}
	if !sawSatisfied || !sawSlack {
		t.Errorf("request outcome missing: planner instant %v, transfer slack args %v", sawSatisfied, sawSlack)
	}
}

func TestAddEventsOnly(t *testing.T) {
	// A stagesim-style trace: no Result, only the event ring. Booked
	// transfers must reconstruct the link tracks.
	sc := testnet.Line(3, 1<<20, testnet.KBPS(1000), time.Hour)
	mem := &obs.MemorySink{}
	if _, err := core.Schedule(sc, core.Config{
		Heuristic: core.PartialPath, Criterion: core.C3,
		Weights: model.Weights1x5x10, Parallelism: 1,
		Obs: obs.NewTraced(mem),
	}); err != nil {
		t.Fatal(err)
	}
	tr := New()
	tr.AddEvents(sc, mem.Events())
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	transfers := 0
	for _, e := range tf.TraceEvents {
		if e.Cat == "transfer" {
			transfers++
		}
	}
	if transfers != 2 {
		t.Errorf("events-only trace has %d transfers, want 2", transfers)
	}
}

func TestAddLifecycle(t *testing.T) {
	sec := func(s int64) int64 { return s * int64(time.Second) }
	recs := []lifecycle.Record{
		{
			Schema: lifecycle.SchemaVersion, Kind: lifecycle.KindDecision,
			Ticket: "r-0", Item: 0, Name: "bulk",
			Timeline: []lifecycle.Hop{
				{Stage: lifecycle.StageReceived, V: sec(10)},
				{Stage: lifecycle.StageEnqueued, V: sec(10)},
				{Stage: lifecycle.StageEpochStart, V: sec(30)},
				{Stage: lifecycle.StagePlanned, V: sec(30)},
				{Stage: lifecycle.StageDecided, V: sec(30)},
				{Stage: lifecycle.StageSettled, V: sec(30)},
			},
			Epoch: 1, EpochAt: sec(30), EpochPath: "incremental", BatchSize: 2,
			Status: "admitted",
			Requests: []lifecycle.RequestOutcome{{
				Item: 0, Index: 0, Machine: 1, Priority: 2,
				Status: "admitted", Deadline: sec(90), Completion: sec(61), BlamedLink: -1,
			}},
		},
		{
			Schema: lifecycle.SchemaVersion, Kind: lifecycle.KindRevision,
			Ticket: "r-0", Item: 0,
			Timeline: []lifecycle.Hop{
				{Stage: lifecycle.StageReceived, V: sec(10)},
				{Stage: lifecycle.StageEnqueued, V: sec(10)},
				{Stage: lifecycle.StageEpochStart, V: sec(45)},
				{Stage: lifecycle.StagePlanned, V: sec(45)},
				{Stage: lifecycle.StageDecided, V: sec(45)},
				{Stage: lifecycle.StageSettled, V: sec(45)},
			},
			Epoch: 2, EpochAt: sec(45), EpochPath: "full", BatchSize: 1,
			Status: "preempted", ObjectiveDelta: 90,
			Requests: []lifecycle.RequestOutcome{{
				Item: 0, Index: 0, Machine: 1, Priority: 2,
				Status: "preempted", Deadline: sec(90), BlamedLink: -1,
			}},
		},
		{
			Schema: lifecycle.SchemaVersion, Kind: lifecycle.KindBackpressure,
			Item: -1, Status: "backpressure", QueueDepth: 4, RetryAfterS: 1,
			Timeline: []lifecycle.Hop{{Stage: lifecycle.StageReceived, V: sec(50)}},
		},
	}

	encode := func() []byte {
		tr := New()
		tr.AddLifecycle(recs)
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	raw := encode()
	if !bytes.Equal(raw, encode()) {
		t.Error("lifecycle trace is not deterministic across encodes")
	}

	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("lifecycle trace is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"queued":              false, // span 10s→30s on the ticket track
		"decision: admitted":  false,
		"deliver r0.0":        false, // span 30s→61s
		"revised: preempted":  false,
		"shed (backpressure)": false,
	}
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Pid != pidRequests {
			t.Errorf("lifecycle event %q on pid %d, want %d", e.Name, e.Pid, pidRequests)
		}
		if _, ok := want[e.Name]; ok {
			want[e.Name] = true
		}
		switch e.Name {
		case "queued":
			if e.Ts != 10e6 || e.Dur != 20e6 || e.Tid != 1 {
				t.Errorf("queued span = ts %v dur %v tid %d", e.Ts, e.Dur, e.Tid)
			}
		case "deliver r0.0":
			if e.Ts != 30e6 || e.Dur != 31e6 {
				t.Errorf("deliver span = ts %v dur %v", e.Ts, e.Dur)
			}
		case "revised: preempted":
			if e.Args["objective_delta"] != 90.0 {
				t.Errorf("revision args = %v", e.Args)
			}
		case "shed (backpressure)":
			if e.Tid != 0 {
				t.Errorf("shed instant on tid %d, want 0", e.Tid)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("lifecycle trace missing %q event", name)
		}
	}
}
